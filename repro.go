// Package repro is a Go reproduction of "Exploring the Vision
// Processing Unit as Co-processor for Inference" (Rivas-Gomez, Peña,
// Moloney, Laure, Markidis — IPPS 2018): the NCSw inference framework,
// a calibrated discrete-event model of the Movidius Myriad 2 VPU /
// Intel Neural Compute Stick platform it runs on, the GoogLeNet
// workload, CPU and GPU baselines, and the full experiment harness
// that regenerates every figure of the paper's evaluation.
//
// This file is the public facade: it re-exports the pieces a
// downstream user composes, so typical programs only import this
// package. The building blocks live in internal packages (one per
// subsystem; see DESIGN.md for the inventory).
//
// The primary entry point is the declarative session API: describe
// the dataset and the device groups, and the Session owns the whole
// environment/testbed/compile/collect lifecycle. A heterogeneous run
// — §III's device groups, with a CPU, a GPU and four Neural Compute
// Sticks splitting one validation set — is:
//
//	sess, _ := repro.NewSession(
//		repro.WithImages(400),
//		repro.WithCPU(8),
//		repro.WithGPU(8),
//		repro.WithVPUs(4),
//		repro.WithRouting(repro.WeightedByThroughput),
//	)
//	report, _ := sess.Run()
//	fmt.Print(report) // per-group and aggregate throughput, img/W, accuracy
//
// The paper's Listing-1 NCAPI workflow remains available for
// hand-wired sessions:
//
//	env := repro.NewEnv()
//	devices, _ := repro.NewNCSTestbed(env, 1, repro.Seed(1))
//	net := repro.NewMicroGoogLeNet(repro.DefaultMicroConfig(), repro.Seed(42))
//	blob, _ := repro.CompileGraph(net)
//	env.Process("host", func(p *repro.Proc) {
//		dev := devices[0]
//		dev.Open(p)
//		graph, _ := dev.AllocateGraph(p, blob, repro.GraphOptions{Functional: true})
//		graph.LoadTensor(p, img, nil) // returns once queued; host is free
//		res, _ := graph.GetResult(p)  // blocks until the inference lands
//		dev.Close(p)
//		_ = res
//	})
//	env.Run()
//
// Performance numbers come from simulated (virtual) time, so
// experiments are deterministic and machine-independent; functional
// inference is real arithmetic (FP32 or emulated FP16).
package repro

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/fault"
	"repro/internal/graphfile"
	"repro/internal/imagenet"
	"repro/internal/ncs"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/usb"
	"repro/internal/vpu"
)

// Simulation kernel.
type (
	// Env is a discrete-event simulation universe.
	Env = sim.Env
	// Proc is a simulated process handle.
	Proc = sim.Proc
)

// NewEnv creates an empty simulation at time zero.
func NewEnv() *Env { return sim.NewEnv() }

// Randomness.

// Rand is the deterministic random source seeding every stochastic
// component (weights, datasets, timing jitter).
type Rand = rng.Source

// Seed returns a deterministic random source.
func Seed(seed uint64) *Rand { return rng.New(seed) }

// Tensors and networks.
type (
	// Tensor is a dense NCHW float32 tensor.
	Tensor = tensor.T
	// Shape is a tensor shape.
	Shape = tensor.Shape
	// Graph is an inference network.
	Graph = nn.Graph
	// Precision selects FP32, FP16 or FP16-strict execution.
	Precision = nn.Precision
	// MicroConfig parameterizes the scaled-down inception network.
	MicroConfig = nn.MicroConfig
)

// Precision modes.
const (
	FP32       = nn.FP32
	FP16       = nn.FP16
	FP16Strict = nn.FP16Strict
)

// NewTensor allocates a zero tensor.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// NewGoogLeNet builds the full BVLC GoogLeNet (Inception-v1)
// architecture with deterministic pseudo-random weights.
func NewGoogLeNet(src *Rand) *Graph { return nn.NewGoogLeNet(src) }

// NewMicroGoogLeNet builds the scaled inception network used by the
// accuracy experiments.
func NewMicroGoogLeNet(cfg MicroConfig, src *Rand) *Graph { return nn.NewMicroGoogLeNet(cfg, src) }

// DefaultMicroConfig returns the experiment defaults (100 classes,
// 32×32 input).
func DefaultMicroConfig() MicroConfig { return nn.DefaultMicroConfig() }

// DefaultClassifierTemperature is the softmax logit scale the accuracy
// experiments were calibrated with (see internal/bench).
const DefaultClassifierTemperature = 150.0

// CalibratePrototypeClassifier rewrites the micro network's classifier
// so it performs nearest-prototype classification over the dataset's
// class prototypes — the reproduction's stand-in for loading
// pre-trained BVLC weights (DESIGN.md §2). Call it once after
// NewMicroGoogLeNet and before CompileGraph.
func CalibratePrototypeClassifier(g *Graph, ds *Dataset, temperature float32) error {
	return nn.CalibrateClassifier(g, nn.MicroClassifierName, nn.MicroPoolName,
		ds.PreprocessedPrototypes(), temperature)
}

// CompileGraph serializes a network into an NCS graph blob
// (weights converted to FP16), the analogue of mvNCCompile.
func CompileGraph(g *Graph) ([]byte, error) { return graphfile.Compile(g) }

// ParseGraph reconstructs a network from a compiled blob.
func ParseGraph(blob []byte) (*Graph, error) {
	g, _, err := graphfile.Parse(blob)
	return g, err
}

// Neural Compute Stick devices (the NCAPI surface).
type (
	// NCSDevice is one simulated Neural Compute Stick.
	NCSDevice = ncs.Device
	// NCSGraph is a network allocated on a stick.
	NCSGraph = ncs.Graph
	// NCSResult is one completed inference.
	NCSResult = ncs.Result
	// GraphOptions configures AllocateGraph.
	GraphOptions = ncs.GraphOptions
	// NCSConfig models the stick around the VPU.
	NCSConfig = ncs.Config
	// VPUConfig models the Myriad 2 chip.
	VPUConfig = vpu.Config
)

// DefaultNCSConfig returns the calibrated stick model.
func DefaultNCSConfig() NCSConfig { return ncs.DefaultConfig() }

// DefaultVPUConfig returns the calibrated Myriad 2 model.
func DefaultVPUConfig() VPUConfig { return vpu.DefaultConfig() }

// NewNCSTestbed assembles n Neural Compute Sticks on the paper's
// Fig. 5 USB topology (two sticks on motherboard ports, the rest
// behind two USB 3.0 hubs) inside env.
//
// Deprecated: NewSession(WithVPUs(n)) owns testbed assembly; use this
// only for hand-wired NCAPI experiments.
func NewNCSTestbed(env *Env, n int, seed *Rand) ([]*NCSDevice, error) {
	_, ports, err := usb.Testbed(env, usb.DefaultConfig(), n)
	if err != nil {
		return nil, err
	}
	devices := make([]*NCSDevice, n)
	for i, port := range ports {
		d, err := ncs.NewDevice(env, port.Name(), port, ncs.DefaultConfig(), seed)
		if err != nil {
			return nil, err
		}
		devices[i] = d
	}
	return devices, nil
}

// The NCSw framework (sources × targets).
type (
	// Item is one unit of classification work.
	Item = core.Item
	// Source produces items.
	Source = core.Source
	// Result is one completed inference with timing and prediction.
	Result = core.Result
	// Target consumes a source on one device configuration.
	Target = core.Target
	// Job tracks a running target.
	Job = core.Job
	// Collector aggregates results.
	Collector = core.Collector
	// VPUOptions configures the multi-VPU target.
	VPUOptions = core.VPUOptions
	// BatchTarget is a Caffe-style CPU/GPU batch device.
	BatchTarget = core.BatchTarget
	// VPUTarget is the parallel multi-VPU pipeline.
	VPUTarget = core.VPUTarget
	// StreamSource is the MPI-stream-style push source.
	StreamSource = core.StreamSource
	// FolderSource serves .ppm images from a directory.
	FolderSource = core.FolderSource
	// Scheduling selects round-robin or dynamic dispatch.
	Scheduling = core.Scheduling
	// Arrivals is an open-loop arrival process (deterministic,
	// Poisson, bursty, trace replay) for serving-mode runs.
	Arrivals = core.Arrivals
	// ArrivalSource makes a wrapped source's items visible only at
	// their arrival instants.
	ArrivalSource = core.ArrivalSource
	// LatencySummary is a per-item serving-latency distribution:
	// exact tail quantiles plus the queue-wait/service-time split.
	LatencySummary = core.LatencySummary
	// AdmissionQueue is a bounded serving ingress: arrivals beyond
	// its depth are handled by an OverloadPolicy, items queued past
	// their deadline are dropped as expired.
	AdmissionQueue = core.AdmissionQueue
	// AdmissionOptions configures an AdmissionQueue.
	AdmissionOptions = core.AdmissionOptions
	// AdmissionStats counts arrivals, admissions, sheds, expiries and
	// dispatches at the admission edge.
	AdmissionStats = core.AdmissionStats
	// OverloadPolicy selects what a full admission queue does with a
	// new arrival.
	OverloadPolicy = core.OverloadPolicy
	// DropReason says why the admission edge dropped an item.
	DropReason = core.DropReason
	// BatchAssembly configures adaptive batch assembly on a
	// BatchTarget (max-wait partial batches, backlog-sized batches).
	BatchAssembly = core.BatchAssembly
	// HedgeConfig configures speculative hedged requests: trigger
	// (fixed delay or live latency quantile), hedge budget, and the
	// dedup accounting hooks.
	HedgeConfig = core.HedgeConfig
	// HealthAware is implemented by targets that report device-health
	// transitions (VPUTarget, Pool); health-aware admission and
	// failover routing subscribe to it.
	HealthAware = core.HealthAware
)

// HedgeNever is a hedge trigger that never fires: hedging armed, no
// duplicate ever launched, bit-identical to hedging disabled — the
// control configuration of the hedge experiments.
const HedgeNever = core.HedgeNever

// Overload policies for bounded admission.
const (
	// ShedNewest rejects the arriving item when the queue is full.
	ShedNewest = core.ShedNewest
	// ShedOldest evicts the stalest queued item to admit the arrival.
	ShedOldest = core.ShedOldest
	// BlockOnFull applies backpressure instead of shedding.
	BlockOnFull = core.Block
)

// Drop reasons (AdmissionOptions.OnDrop, RecoveryConfig.OnDrop,
// Collector.NoteDrop).
const (
	DropShed    = core.DropShed
	DropExpired = core.DropExpired
	// DropFailed marks an item lost to device failure after its
	// redelivery budget ran out.
	DropFailed = core.DropFailed
	// DropQuota marks an arrival rejected by its tenant's quota (max
	// in-flight or admitted-rate) before reaching any queue.
	DropQuota = core.DropQuota
)

// Multi-tenant serving (internal/tenant + core.TenantMux).
type (
	// TenantConfig is the multi-tenant session description: the
	// admission-edge scheduler plus the tenant registry (traffic
	// classes with weights, priorities, SLOs, quotas, shed policies).
	TenantConfig = tenant.Config
	// TenantClass declares one traffic class of a multi-tenant
	// session.
	TenantClass = tenant.Tenant
	// TenantScheduler selects the admission-edge scheduling policy
	// (TenantFIFO, TenantWeightedFair, TenantStrictPriority).
	TenantScheduler = tenant.Scheduler
	// TenantMux is the core multi-tenant scheduler for hand-wired
	// experiments: per-tenant arrival pumps over a shared source,
	// deficit-round-robin or priority dispatch, quota gates.
	TenantMux = core.TenantMux
	// TenantLane configures one tenant's lane of a hand-wired
	// TenantMux.
	TenantLane = core.TenantLane
	// TenantMuxOptions configures a hand-wired TenantMux.
	TenantMuxOptions = core.TenantMuxOptions
	// TenantStats counts one tenant's arrivals, admissions, drops and
	// completions at the scheduling edge.
	TenantStats = core.TenantStats
	// TenantReport is the per-tenant slice of a multi-tenant session
	// Report.
	TenantReport = pipeline.TenantReport
)

// Tenant admission-edge schedulers.
const (
	// TenantFIFO multiplexes every tenant into one shared queue in
	// arrival order — no isolation; the control configuration.
	TenantFIFO = tenant.FIFO
	// TenantWeightedFair drains per-tenant queues by deficit-round-
	// robin over the tenant weights.
	TenantWeightedFair = tenant.WeightedFair
	// TenantStrictPriority serves lower-priority-class tenants first,
	// deficit-round-robin within a class.
	TenantStrictPriority = tenant.Priority
)

// NewTenantMux wraps a source with the multi-tenant scheduler for
// hand-wired experiments; sessions use WithTenants instead.
func NewTenantMux(env *Env, inner Source, opts TenantMuxOptions) (*TenantMux, error) {
	return core.NewTenantMux(env, inner, opts)
}

// Fault injection and self-healing (internal/fault + core recovery).
type (
	// FaultPlan is a deterministic failure scenario: scripted events
	// plus seeded-stochastic fault processes.
	FaultPlan = fault.Plan
	// FaultEvent is one scripted fault (device, kind, instant).
	FaultEvent = fault.Event
	// FaultProcess is a seeded Poisson fault generator over a window.
	FaultProcess = fault.Process
	// FaultKind identifies a fault class (StickHang, LinkDrop,
	// TransientError, Slowdown).
	FaultKind = fault.Kind
	// FaultRegistry maps device names to their injection hooks.
	FaultRegistry = fault.Registry
	// FaultInjection is one applied fault (log/trace record).
	FaultInjection = fault.Injection
	// FaultLog records every fault a driver injected.
	FaultLog = fault.Log
	// RecoveryConfig is the health-monitoring and self-healing policy
	// of the multi-VPU pipeline: completion-timeout detection, reboot-
	// priced recovery (or fail-stop), and a per-item redelivery budget.
	RecoveryConfig = core.RecoveryConfig
)

// Fault kinds.
const (
	// StickHang freezes a device's firmware until the host resets it.
	StickHang = fault.StickHang
	// LinkDrop severs a device's USB link (MVNC_GONE).
	LinkDrop = fault.LinkDrop
	// TransientError fails single inferences recoverably.
	TransientError = fault.TransientError
	// Slowdown stretches a device's service time ×factor for a window.
	Slowdown = fault.Slowdown
	// BatchOOM fails a batch engine's next submissions allocator-style;
	// the batch target splits and retries (items delayed, never lost).
	BatchOOM = fault.BatchOOM
)

// DefaultRecoveryConfig returns the standard self-healing policy (2 s
// completion heartbeat, recovery on, 3 delivery attempts per item).
func DefaultRecoveryConfig() RecoveryConfig { return core.DefaultRecoveryConfig() }

// ApplyFaults drives a fault plan into registered devices for
// hand-wired experiments; sessions use WithFaults instead. observe
// (optional) sees each injection as it is applied.
func ApplyFaults(env *Env, plan FaultPlan, seed *Rand, reg FaultRegistry, observe func(FaultInjection)) (*FaultLog, error) {
	return fault.Apply(env, plan, seed, reg, observe)
}

// NewAdmissionQueue wraps a source with bounded admission for
// hand-wired serving experiments; sessions use WithAdmission instead.
func NewAdmissionQueue(env *Env, inner Source, opts AdmissionOptions) (*AdmissionQueue, error) {
	return core.NewAdmissionQueue(env, inner, opts)
}

// Scheduling policies (the multi-VPU target's internal dispatch).
const (
	RoundRobin = core.RoundRobin
	Dynamic    = core.Dynamic
)

// Device groups and routing (the Pool composite target).
type (
	// Pool is a Target over N child targets — a composite device
	// group with a pluggable scheduler. Pools nest: a pool of (CPU,
	// pool of VPUs) is just another target.
	Pool = core.Pool
	// PoolOptions configures a Pool.
	PoolOptions = core.PoolOptions
	// Routing selects how work is distributed across device groups.
	Routing = core.Routing
)

// Routing policies for device groups.
const (
	// StaticSplit partitions a finite source into contiguous
	// per-group blocks sized by the weights.
	StaticSplit = core.RouteStatic
	// RoundRobinSplit deals item k to group k mod N — the pool-level
	// analogue of the paper's static multi-VPU scheduling.
	RoundRobinSplit = core.RouteRoundRobin
	// WorkStealing lets every group pull from the shared source;
	// whichever device is free takes the next item.
	WorkStealing = core.RouteWorkStealing
	// WeightedByThroughput deals items in proportion to each group's
	// weight — explicit weights when configured, otherwise weights
	// that adapt to observed completion rates.
	WeightedByThroughput = core.RouteWeighted
	// RouteLatency deals each item to the group expected to finish it
	// soonest (EWMA service time × queued items) — the serving policy
	// for open-loop traffic, minimizing tail latency instead of
	// balancing a deal ratio.
	RouteLatency = core.RouteLatency
)

// NewPool builds a device group over child targets.
func NewPool(children []Target, opts PoolOptions) (*Pool, error) {
	return core.NewPool(children, opts)
}

// Split inference (model parallelism): the Pipeline composite target.
type (
	// Pipeline is a Target over a serial chain of stages: each stage
	// consumes the previous stage's output activations from a bounded
	// in-flight window, with credit-based backpressure end to end.
	// Pipelines nest like pools — a stage can itself be a Pool.
	Pipeline = core.Pipeline
	// StageTarget is the streaming stage contract: a Target that also
	// knows how to forward its Results downstream as typed Items.
	// Plain Targets gain the standard hop via AsStage.
	StageTarget = core.StageTarget
	// PipelineOptions configures a Pipeline (per-boundary in-flight
	// windows, per-stage result hooks).
	PipelineOptions = core.PipelineOptions
)

// NewPipeline composes a serial stage chain over the given targets
// (adapted via AsStage as needed). The resulting composite is itself
// a Target: the first stage pulls from the source, the last stage's
// results reach the sink, and a job finishes only when every stage
// has drained.
func NewPipeline(stages []Target, opts PipelineOptions) (*Pipeline, error) {
	return core.NewPipeline(stages, opts)
}

// AsStage adapts a plain Target into a StageTarget using the standard
// activation hop (output tensor becomes the downstream input, arrival
// stamp and label carried through). Targets that already implement
// StageTarget pass through unchanged.
func AsStage(t Target) StageTarget { return core.AsStage(t) }

// Sessions: the declarative front door.
type (
	// Session owns one classification run end to end: environment,
	// dataset, network, compiled graph, devices, targets, collection.
	Session = pipeline.Session
	// SessionConfig is the resolved session description (the options
	// build one; NewSessionFromConfig accepts one directly).
	SessionConfig = pipeline.Config
	// SessionOption customizes a session under construction.
	SessionOption = pipeline.Option
	// DeviceGroup declares one device group of a session.
	DeviceGroup = pipeline.Group
	// GroupKind identifies a group's device family.
	GroupKind = pipeline.GroupKind
	// StageConfig declares one stage of a split (model-parallel)
	// session: the device group running one network segment and the
	// bounded in-flight window to the next stage. Mirrors
	// SessionConfig: WithStages builds the chain, Config.Stages holds
	// it.
	StageConfig = pipeline.Stage
	// Report is the unified outcome of a session run.
	Report = pipeline.Report
	// TargetReport is the per-group slice of a Report.
	TargetReport = pipeline.TargetReport
)

// Device group kinds.
const (
	CPUGroup    = pipeline.GroupCPU
	GPUGroup    = pipeline.GroupGPU
	VPUGroup    = pipeline.GroupVPU
	CustomGroup = pipeline.GroupCustom
)

// NewSession builds a declarative classification session. At least
// one device group option (WithCPU, WithGPU, WithVPUs, WithTarget,
// WithGroup) is required.
func NewSession(opts ...SessionOption) (*Session, error) { return pipeline.New(opts...) }

// NewSessionFromConfig builds a session from an explicit config.
func NewSessionFromConfig(cfg SessionConfig) (*Session, error) { return pipeline.NewFromConfig(cfg) }

// CPUStage declares a split-session stage on the Caffe-MKL CPU at the
// given batch size.
func CPUStage(batch int) StageConfig { return pipeline.CPUStage(batch) }

// GPUStage declares a split-session stage on the Caffe-cuDNN GPU at
// the given batch size.
func GPUStage(batch int) StageConfig { return pipeline.GPUStage(batch) }

// VPUStage declares a split-session stage on n Neural Compute Sticks
// running the parallel NCSw pipeline over the stage's segment.
func VPUStage(n int) StageConfig { return pipeline.VPUStage(n) }

// CustomStage declares a split-session stage on a caller-provided
// target, used as-is with an empty network span (the target prices
// whatever cost model it implements).
func CustomStage(t Target) StageConfig { return pipeline.CustomStage(t) }

// Session options — workload. What is classified, which network does
// it, and the seeds that make the run reproducible.

// WithDataset sets the synthetic dataset configuration.
func WithDataset(cfg DatasetConfig) SessionOption { return pipeline.WithDataset(cfg) }

// WithImages limits the run to the first n dataset images.
func WithImages(n int) SessionOption { return pipeline.WithImages(n) }

// WithFunctional toggles real numeric inference (default off: pure
// performance, devices pay full simulated costs but skip arithmetic).
func WithFunctional(on bool) SessionOption { return pipeline.WithFunctional(on) }

// WithGoogLeNet forces the full BVLC GoogLeNet workload.
func WithGoogLeNet() SessionOption { return pipeline.WithGoogLeNet() }

// WithMicroNet forces the scaled-down inception network with the
// given geometry.
func WithMicroNet(cfg MicroConfig) SessionOption { return pipeline.WithMicroNet(cfg) }

// WithNetwork supplies a prebuilt workload network, used as-is (no
// construction or classifier calibration) — share one network across
// several sessions.
func WithNetwork(g *Graph) SessionOption { return pipeline.WithNetwork(g) }

// WithBlob supplies a precompiled NCS graph file for the VPU groups,
// skipping per-session compilation; pair with WithNetwork. Not
// applicable to split sessions, whose stage segments compile
// per stage.
func WithBlob(blob []byte) SessionOption { return pipeline.WithBlob(blob) }

// WithTemperature overrides the prototype-classifier softmax scale.
func WithTemperature(t float32) SessionOption { return pipeline.WithTemperature(t) }

// WithSeed sets the simulation seed for every stochastic component.
func WithSeed(seed uint64) SessionOption { return pipeline.WithSeed(seed) }

// WithNetSeed sets the network weight seed (default 42).
func WithNetSeed(seed uint64) SessionOption { return pipeline.WithNetSeed(seed) }

// Session options — fleet. Which devices run the workload and how
// work is distributed across them: dealt device groups (every group
// runs whole inferences) or a model-parallel stage chain (each stage
// runs one network segment).

// WithCPU adds a Caffe-MKL CPU group at the given batch size.
func WithCPU(batch int) SessionOption { return pipeline.WithCPU(batch) }

// WithGPU adds a Caffe-cuDNN GPU group at the given batch size.
func WithGPU(batch int) SessionOption { return pipeline.WithGPU(batch) }

// WithVPUs adds a group of n Neural Compute Sticks running the
// parallel NCSw pipeline.
func WithVPUs(n int) SessionOption { return pipeline.WithVPUs(n) }

// WithVPUOptions adds a VPU group with explicit pipeline options
// (scheduling, overlap, host overhead).
//
// Deprecated: use WithGroup(DeviceGroup{Kind: VPUGroup, Devices: n,
// VPUOptions: &opts}) — or, in a split session, a StageConfig whose
// Group carries the options. The group/stage structs subsume this
// wrapper; it remains for compatibility.
func WithVPUOptions(n int, opts VPUOptions) SessionOption { return pipeline.WithVPUOptions(n, opts) }

// WithTarget adds a custom Target as its own device group.
func WithTarget(t Target) SessionOption { return pipeline.WithTarget(t) }

// WithGroup adds a fully specified device group (explicit weights,
// VPU overrides).
func WithGroup(g DeviceGroup) SessionOption { return pipeline.WithGroup(g) }

// WithStages runs the session as a model-parallel pipeline: the
// workload network is split at the WithCut boundaries into one
// segment per stage, each stage runs its segment on its own device
// group (CPUStage/GPUStage/VPUStage/CustomStage), and intermediate
// activations stream between stages under bounded in-flight windows
// with backpressure end to end. Mutually exclusive with the
// device-group options above.
func WithStages(stages ...StageConfig) SessionOption { return pipeline.WithStages(stages...) }

// WithCut sets the whole-network layer boundaries partitioning the
// workload across the WithStages chain (one fewer cut than stages,
// ascending; Graph.ValidCuts enumerates the legal interior
// boundaries). A degenerate cut (0 or the layer count) collapses its
// empty stage, and a single surviving stage runs bit-identical to the
// classic single-group session.
func WithCut(cuts ...int) SessionOption { return pipeline.WithCut(cuts...) }

// WithRouting selects the device-group scheduler (default
// WeightedByThroughput). Pipeline sessions are serial and ignore it.
func WithRouting(r Routing) SessionOption { return pipeline.WithRouting(r) }

// WithQueueDepth bounds the per-group feed queues of the dealt
// routing policies, and the default per-boundary in-flight window of
// a split session (default 2).
func WithQueueDepth(d int) SessionOption { return pipeline.WithQueueDepth(d) }

// Session options — serving. How work arrives and is admitted: open-
// loop arrivals, deadlines, bounded ingress, adaptive batch assembly.

// WithArrivals wraps the session source in an open-loop arrival
// process, turning the run into a serving measurement: items become
// visible at their arrival instants, the report's latency
// distributions measure real queueing against offered load, and
// work conservation holds per arrival rather than per drain.
func WithArrivals(a Arrivals) SessionOption { return pipeline.WithArrivals(a) }

// WithSLO sets the per-item serving deadline the session measures
// goodput against: the report gains per-group and aggregate goodput,
// and a bounded ingress (WithAdmission) drops items whose deadline
// lapses while queued.
func WithSLO(target time.Duration) SessionOption { return pipeline.WithSLO(target) }

// WithAdmission bounds the session ingress with an admission queue of
// the given depth under the overload policy (ShedNewest, ShedOldest,
// BlockOnFull) — tail latency is capped by design instead of growing
// without bound past the saturation knee.
func WithAdmission(depth int, policy OverloadPolicy) SessionOption {
	return pipeline.WithAdmission(depth, policy)
}

// WithAdmissionShrink extends WithAdmission with health-aware depth:
// during a device outage the admission bound shrinks proportionally
// to healthy capacity (floored at minDepth; 0 = 1), so queued work
// cannot all expire waiting for devices that are gone, and restores
// on rejoin.
func WithAdmissionShrink(minDepth int) SessionOption {
	return pipeline.WithAdmissionShrink(minDepth)
}

// WithAdaptiveBatching makes every CPU/GPU group assemble batches
// adaptively: batch size tracks the observed backlog and a partial
// batch closes at most maxWait after its first item was pulled, so
// lightly loaded batch devices serve at single-item latency.
func WithAdaptiveBatching(maxWait time.Duration) SessionOption {
	return pipeline.WithAdaptiveBatching(maxWait)
}

// WithStream replaces the dataset source with a push-style stream of
// the given buffer capacity (0 = unbounded); feed it via
// Session.Stream from a producer process on Session.Env.
func WithStream(capacity int) SessionOption { return pipeline.WithStream(capacity) }

// WithTenants runs the session multi-tenant: each declared tenant
// drives its own open-loop arrival process, the configured scheduler
// (TenantFIFO, TenantWeightedFair, TenantStrictPriority) multiplexes
// the per-tenant queues at the admission edge under each tenant's
// quotas and shed policy, and the report gains a per-tenant section
// (Report.Tenants) — throughput, latency tails, goodput against the
// tenant's own SLO, sheds, expiries, quota rejections. Mutually
// exclusive with WithArrivals, WithAdmission and WithStream, which it
// subsumes. An empty TenantConfig leaves the session single-tenant,
// bit-identical to never having called this.
func WithTenants(tc TenantConfig) SessionOption { return pipeline.WithTenants(tc) }

// Session options — reliability. What goes wrong and what the session
// does about it: fault injection, self-healing, hedged requests.

// WithFaults injects a deterministic fault plan into the session's
// devices as the run unfolds: stick hangs, USB link drops, transient
// inference errors, straggler slowdowns — scripted or seeded, always
// bit-for-bit reproducible. Sticks are named "ncs0".."ncsN" in
// testbed port order, batch groups "cpu"/"gpu". The report gains
// availability metrics (outages, MTTR, retries, fault-attributed
// drops, uptime).
func WithFaults(plan FaultPlan) SessionOption { return pipeline.WithFaults(plan) }

// WithRecovery sets the health-monitoring and self-healing policy of
// every VPU group: completion-timeout detection, reboot-priced device
// recovery (or fail-stop abandonment), and a bounded per-item
// redelivery budget whose exhausted items count against goodput. With
// a fault plan that can kill inferences and no explicit policy, the
// session defaults to DefaultRecoveryConfig().
func WithRecovery(rc RecoveryConfig) SessionOption { return pipeline.WithRecovery(rc) }

// WithHedging arms speculative hedged requests — the tail-at-scale
// defense: an item in flight past the trigger (fixed delay, or a live
// latency quantile) is duplicated onto a different healthy device
// group or stick, the first completion wins, and the loser is
// cancelled in-queue or discarded with full dedup accounting
// (Report.Hedged/HedgeWins/HedgeWaste). Not applicable to split
// sessions: hedging duplicates whole inferences, which does not
// compose with serial stages.
func WithHedging(hc HedgeConfig) SessionOption { return pipeline.WithHedging(hc) }

// Session options — observability. What the run records beyond the
// aggregate report.

// WithRetain keeps every per-inference Result on the report.
func WithRetain(on bool) SessionOption { return pipeline.WithRetain(on) }

// WithTimeline attaches a Fig. 4 execution timeline to every group.
func WithTimeline(tl *Timeline) SessionOption { return pipeline.WithTimeline(tl) }

// NewCollector creates a result collector; retain keeps every result.
func NewCollector(retain bool) *Collector { return core.NewCollector(retain) }

// DefaultVPUOptions returns the paper-faithful multi-VPU settings.
func DefaultVPUOptions() VPUOptions { return core.DefaultVPUOptions() }

// NewVPUTarget builds the parallel multi-VPU target over devices.
//
// Deprecated: NewSession(WithVPUs(n)) builds and runs this target;
// use this only when hand-wiring targets to sources.
func NewVPUTarget(devices []*NCSDevice, blob []byte, opts VPUOptions) (*VPUTarget, error) {
	return core.NewVPUTarget(devices, blob, opts)
}

// NewCPUTarget builds the Caffe-MKL-style CPU target for the graph's
// workload at the given batch size.
//
// Deprecated: NewSession(WithCPU(batch)) builds and runs this target;
// use this only when hand-wiring targets to sources.
func NewCPUTarget(g *Graph, batch int, functional bool, seed *Rand) (*BatchTarget, error) {
	eng, err := devsim.NewCPU(devsim.DefaultCPUConfig(), devsim.WorkloadOf(g), seed)
	if err != nil {
		return nil, err
	}
	return core.NewCPUTarget(eng, g, batch, functional)
}

// NewGPUTarget builds the Caffe-cuDNN-style GPU target.
//
// Deprecated: NewSession(WithGPU(batch)) builds and runs this target;
// use this only when hand-wiring targets to sources.
func NewGPUTarget(g *Graph, batch int, functional bool, seed *Rand) (*BatchTarget, error) {
	eng, err := devsim.NewGPU(devsim.DefaultGPUConfig(), devsim.WorkloadOf(g), seed)
	if err != nil {
		return nil, err
	}
	return core.NewGPUTarget(eng, g, batch, functional)
}

// NewDatasetSource serves images [lo, hi) of a synthetic dataset.
//
// Deprecated: sessions build their own dataset source (WithImages);
// use this only when hand-wiring targets to sources.
func NewDatasetSource(ds *Dataset, lo, hi int, functional bool) (Source, error) {
	return core.NewDatasetSource(ds, lo, hi, functional)
}

// NewStreamSource creates a push-style source with the given buffer
// capacity (0 = unbounded).
func NewStreamSource(env *Env, capacity int) *StreamSource {
	return core.NewStreamSource(env, capacity)
}

// Open-loop arrival processes for serving-mode runs (WithArrivals or
// NewArrivalSource).

// DeterministicArrivals is a constant-rate arrival process.
func DeterministicArrivals(ratePerSec float64) Arrivals {
	return core.DeterministicArrivals(ratePerSec)
}

// PoissonArrivals is a memoryless arrival process at the given mean
// rate — the standard model for aggregate traffic from many
// independent users.
func PoissonArrivals(ratePerSec float64) Arrivals { return core.PoissonArrivals(ratePerSec) }

// BurstyArrivals alternates deterministic arrivals at ratePerSec for
// on with silence for off.
func BurstyArrivals(ratePerSec float64, on, off time.Duration) Arrivals {
	return core.BurstyArrivals(ratePerSec, on, off)
}

// TraceArrivals replays explicit absolute arrival instants.
func TraceArrivals(instants []time.Duration) Arrivals { return core.TraceArrivals(instants) }

// DelayedArrivals shifts every instant of arr by delay — e.g. to
// start offered load only after a device group's one-time setup.
func DelayedArrivals(arr Arrivals, delay time.Duration) Arrivals {
	return core.DelayedArrivals(arr, delay)
}

// NewArrivalSource wraps a source with an arrival process for
// hand-wired serving experiments; sessions use WithArrivals instead.
func NewArrivalSource(env *Env, inner Source, arr Arrivals, seed *Rand) (*ArrivalSource, error) {
	return core.NewArrivalSource(env, inner, arr, seed)
}

// NewFolderSource loads .ppm images (with optional .xml annotations)
// from a directory.
func NewFolderSource(dir string, size int, means []float32, labelOf func(wnid string) (int, bool)) (*FolderSource, error) {
	return core.NewFolderSource(dir, size, means, labelOf)
}

// Dataset: the synthetic ILSVRC stand-in.
type (
	// Dataset is the synthetic validation set.
	Dataset = imagenet.Dataset
	// DatasetConfig parameterizes the dataset.
	DatasetConfig = imagenet.Config
)

// DefaultDatasetConfig mirrors the paper's 50 000-image, 5-subset
// evaluation shape at the calibrated noise level.
func DefaultDatasetConfig() DatasetConfig { return imagenet.DefaultConfig() }

// NewDataset generates a synthetic validation dataset.
func NewDataset(cfg DatasetConfig) (*Dataset, error) { return imagenet.New(cfg) }

// Timeline tracing (Fig. 4).
type Timeline = trace.Timeline

// NewTimeline returns an enabled execution timeline.
func NewTimeline() *Timeline { return trace.New() }

// Declarative scenarios.
type (
	// Scenario is a declarative serving scenario: fleet topology,
	// traffic, faults, SLO and mid-run knob reloads as one JSON file
	// (internal/scenario; the committed corpus lives in scenarios/).
	Scenario = scenario.Scenario
	// ScenarioResult is one scenario run: the scenario plus the
	// session report it produced.
	ScenarioResult = scenario.Result
	// ScenarioPoint is the machine-readable summary of one scenario
	// run (the -scenario -json output of cmd/ncsw-bench).
	ScenarioPoint = scenario.Point
)

// LoadScenario parses and validates one scenario file.
func LoadScenario(path string) (*Scenario, error) { return scenario.LoadFile(path) }

// LoadScenarios loads a scenario file or every *.json scenario in a
// directory, in name order.
func LoadScenarios(path string) ([]*Scenario, error) { return scenario.LoadPath(path) }

// DefaultScenarioCorpus locates the repository's committed scenarios/
// corpus by walking up from the working directory to go.mod.
func DefaultScenarioCorpus() (string, error) { return scenario.DefaultCorpusDir() }

// Experiments.
type (
	// BenchConfig scales the experiment harness.
	BenchConfig = bench.Config
	// BenchTable is one regenerated figure/table.
	BenchTable = bench.Table
	// Benchmarks is the experiment harness regenerating the paper's
	// figures.
	Benchmarks = bench.Harness
	// ServingPoint is one (configuration, offered load) measurement of
	// the serving experiment (Benchmarks.ServingPoints).
	ServingPoint = bench.ServingPoint
	// SLOPoint is one (configuration, serving-edge variant, offered
	// load) measurement of the slo experiment (Benchmarks.SLOPoints):
	// fixed vs adaptive batch assembly, open vs bounded admission.
	SLOPoint = bench.SLOPoint
	// ResiliencePoint is one (configuration, fault level, recovery
	// policy) measurement of the resilience experiment
	// (Benchmarks.ResiliencePoints): goodput, tail latency and
	// availability under injected faults, self-healing vs fail-stop.
	ResiliencePoint = bench.ResiliencePoint
	// HedgePoint is one (configuration, fault level, hedge variant)
	// measurement of the hedge experiment (Benchmarks.HedgePoints):
	// p99 and goodput vs hedge trigger, with the hedge volume and
	// waste that bought them.
	HedgePoint = bench.HedgePoint
	// KernelPoint is one simulation-kernel microbench measurement
	// (Benchmarks.KernelPoints): wall-clock ops/sec and exact allocs/op
	// for a kernel hot path, paired with the committed pre-rewrite
	// baseline.
	KernelPoint = bench.KernelPoint
	// SplitPoint is one measurement of the split-inference experiment
	// (Benchmarks.SplitPoints): throughput and tail latency per
	// partition point for a 4-VPU head feeding a CPU/GPU tail, against
	// whole-inference baselines at equal fleet, plus a boundary-window
	// sweep at the best cut.
	SplitPoint = bench.SplitPoint
	// TenantPoint is one (scheduler, aggregate load, tenant)
	// measurement of the multi-tenant experiment
	// (Benchmarks.TenantPoints): per-tenant goodput, tails and drops
	// under a flash-crowd mix, FIFO vs weighted-fair vs priority.
	TenantPoint = bench.TenantPoint
)

// DefaultBenchConfig returns the paper-scale experiment configuration.
func DefaultBenchConfig() BenchConfig { return bench.DefaultConfig() }

// QuickBenchConfig returns a CI-sized experiment configuration.
func QuickBenchConfig() BenchConfig { return bench.QuickConfig() }

// NewBenchmarks builds the experiment harness.
func NewBenchmarks(cfg BenchConfig) (*Benchmarks, error) { return bench.NewHarness(cfg) }

// ExperimentIDs lists the regenerable artefacts.
func ExperimentIDs() []string { return bench.ExperimentIDs() }

// Version identifies this reproduction.
const Version = "1.0.0"

// About returns a one-line description.
func About() string {
	return fmt.Sprintf("ncsw-go %s — reproduction of Rivas-Gomez et al., "+
		"\"Exploring the Vision Processing Unit as Co-processor for Inference\" (IPPS 2018)", Version)
}
