// Package repro is a Go reproduction of "Exploring the Vision
// Processing Unit as Co-processor for Inference" (Rivas-Gomez, Peña,
// Moloney, Laure, Markidis — IPPS 2018): the NCSw inference framework,
// a calibrated discrete-event model of the Movidius Myriad 2 VPU /
// Intel Neural Compute Stick platform it runs on, the GoogLeNet
// workload, CPU and GPU baselines, and the full experiment harness
// that regenerates every figure of the paper's evaluation.
//
// This file is the public facade: it re-exports the pieces a
// downstream user composes, so typical programs only import this
// package. The building blocks live in internal packages (one per
// subsystem; see DESIGN.md for the inventory).
//
// A minimal classification session, in the style of the paper's
// Listing 1:
//
//	env := repro.NewEnv()
//	devices, _ := repro.NewNCSTestbed(env, 1, repro.Seed(1))
//	net := repro.NewMicroGoogLeNet(repro.DefaultMicroConfig(), repro.Seed(42))
//	blob, _ := repro.CompileGraph(net)
//	env.Process("host", func(p *repro.Proc) {
//		dev := devices[0]
//		dev.Open(p)
//		graph, _ := dev.AllocateGraph(p, blob, repro.GraphOptions{Functional: true})
//		graph.LoadTensor(p, img, nil) // returns once queued; host is free
//		res, _ := graph.GetResult(p)  // blocks until the inference lands
//		dev.Close(p)
//		_ = res
//	})
//	env.Run()
//
// Performance numbers come from simulated (virtual) time, so
// experiments are deterministic and machine-independent; functional
// inference is real arithmetic (FP32 or emulated FP16).
package repro

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/graphfile"
	"repro/internal/imagenet"
	"repro/internal/ncs"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/usb"
	"repro/internal/vpu"
)

// Simulation kernel.
type (
	// Env is a discrete-event simulation universe.
	Env = sim.Env
	// Proc is a simulated process handle.
	Proc = sim.Proc
)

// NewEnv creates an empty simulation at time zero.
func NewEnv() *Env { return sim.NewEnv() }

// Randomness.

// Rand is the deterministic random source seeding every stochastic
// component (weights, datasets, timing jitter).
type Rand = rng.Source

// Seed returns a deterministic random source.
func Seed(seed uint64) *Rand { return rng.New(seed) }

// Tensors and networks.
type (
	// Tensor is a dense NCHW float32 tensor.
	Tensor = tensor.T
	// Shape is a tensor shape.
	Shape = tensor.Shape
	// Graph is an inference network.
	Graph = nn.Graph
	// Precision selects FP32, FP16 or FP16-strict execution.
	Precision = nn.Precision
	// MicroConfig parameterizes the scaled-down inception network.
	MicroConfig = nn.MicroConfig
)

// Precision modes.
const (
	FP32       = nn.FP32
	FP16       = nn.FP16
	FP16Strict = nn.FP16Strict
)

// NewTensor allocates a zero tensor.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// NewGoogLeNet builds the full BVLC GoogLeNet (Inception-v1)
// architecture with deterministic pseudo-random weights.
func NewGoogLeNet(src *Rand) *Graph { return nn.NewGoogLeNet(src) }

// NewMicroGoogLeNet builds the scaled inception network used by the
// accuracy experiments.
func NewMicroGoogLeNet(cfg MicroConfig, src *Rand) *Graph { return nn.NewMicroGoogLeNet(cfg, src) }

// DefaultMicroConfig returns the experiment defaults (100 classes,
// 32×32 input).
func DefaultMicroConfig() MicroConfig { return nn.DefaultMicroConfig() }

// DefaultClassifierTemperature is the softmax logit scale the accuracy
// experiments were calibrated with (see internal/bench).
const DefaultClassifierTemperature = 150.0

// CalibratePrototypeClassifier rewrites the micro network's classifier
// so it performs nearest-prototype classification over the dataset's
// class prototypes — the reproduction's stand-in for loading
// pre-trained BVLC weights (DESIGN.md §2). Call it once after
// NewMicroGoogLeNet and before CompileGraph.
func CalibratePrototypeClassifier(g *Graph, ds *Dataset, temperature float32) error {
	return nn.CalibrateClassifier(g, nn.MicroClassifierName, nn.MicroPoolName,
		ds.PreprocessedPrototypes(), temperature)
}

// CompileGraph serializes a network into an NCS graph blob
// (weights converted to FP16), the analogue of mvNCCompile.
func CompileGraph(g *Graph) ([]byte, error) { return graphfile.Compile(g) }

// ParseGraph reconstructs a network from a compiled blob.
func ParseGraph(blob []byte) (*Graph, error) {
	g, _, err := graphfile.Parse(blob)
	return g, err
}

// Neural Compute Stick devices (the NCAPI surface).
type (
	// NCSDevice is one simulated Neural Compute Stick.
	NCSDevice = ncs.Device
	// NCSGraph is a network allocated on a stick.
	NCSGraph = ncs.Graph
	// NCSResult is one completed inference.
	NCSResult = ncs.Result
	// GraphOptions configures AllocateGraph.
	GraphOptions = ncs.GraphOptions
	// NCSConfig models the stick around the VPU.
	NCSConfig = ncs.Config
	// VPUConfig models the Myriad 2 chip.
	VPUConfig = vpu.Config
)

// DefaultNCSConfig returns the calibrated stick model.
func DefaultNCSConfig() NCSConfig { return ncs.DefaultConfig() }

// DefaultVPUConfig returns the calibrated Myriad 2 model.
func DefaultVPUConfig() VPUConfig { return vpu.DefaultConfig() }

// NewNCSTestbed assembles n Neural Compute Sticks on the paper's
// Fig. 5 USB topology (two sticks on motherboard ports, the rest
// behind two USB 3.0 hubs) inside env.
func NewNCSTestbed(env *Env, n int, seed *Rand) ([]*NCSDevice, error) {
	_, ports, err := usb.Testbed(env, usb.DefaultConfig(), n)
	if err != nil {
		return nil, err
	}
	devices := make([]*NCSDevice, n)
	for i, port := range ports {
		d, err := ncs.NewDevice(env, port.Name(), port, ncs.DefaultConfig(), seed)
		if err != nil {
			return nil, err
		}
		devices[i] = d
	}
	return devices, nil
}

// The NCSw framework (sources × targets).
type (
	// Item is one unit of classification work.
	Item = core.Item
	// Source produces items.
	Source = core.Source
	// Result is one completed inference with timing and prediction.
	Result = core.Result
	// Target consumes a source on one device configuration.
	Target = core.Target
	// Job tracks a running target.
	Job = core.Job
	// Collector aggregates results.
	Collector = core.Collector
	// VPUOptions configures the multi-VPU target.
	VPUOptions = core.VPUOptions
	// BatchTarget is a Caffe-style CPU/GPU batch device.
	BatchTarget = core.BatchTarget
	// VPUTarget is the parallel multi-VPU pipeline.
	VPUTarget = core.VPUTarget
	// StreamSource is the MPI-stream-style push source.
	StreamSource = core.StreamSource
	// FolderSource serves .ppm images from a directory.
	FolderSource = core.FolderSource
	// Scheduling selects round-robin or dynamic dispatch.
	Scheduling = core.Scheduling
)

// Scheduling policies.
const (
	RoundRobin = core.RoundRobin
	Dynamic    = core.Dynamic
)

// NewCollector creates a result collector; retain keeps every result.
func NewCollector(retain bool) *Collector { return core.NewCollector(retain) }

// DefaultVPUOptions returns the paper-faithful multi-VPU settings.
func DefaultVPUOptions() VPUOptions { return core.DefaultVPUOptions() }

// NewVPUTarget builds the parallel multi-VPU target over devices.
func NewVPUTarget(devices []*NCSDevice, blob []byte, opts VPUOptions) (*VPUTarget, error) {
	return core.NewVPUTarget(devices, blob, opts)
}

// NewCPUTarget builds the Caffe-MKL-style CPU target for the graph's
// workload at the given batch size.
func NewCPUTarget(g *Graph, batch int, functional bool, seed *Rand) (*BatchTarget, error) {
	eng, err := devsim.NewCPU(devsim.DefaultCPUConfig(), devsim.WorkloadOf(g), seed)
	if err != nil {
		return nil, err
	}
	return core.NewCPUTarget(eng, g, batch, functional)
}

// NewGPUTarget builds the Caffe-cuDNN-style GPU target.
func NewGPUTarget(g *Graph, batch int, functional bool, seed *Rand) (*BatchTarget, error) {
	eng, err := devsim.NewGPU(devsim.DefaultGPUConfig(), devsim.WorkloadOf(g), seed)
	if err != nil {
		return nil, err
	}
	return core.NewGPUTarget(eng, g, batch, functional)
}

// NewDatasetSource serves images [lo, hi) of a synthetic dataset.
func NewDatasetSource(ds *Dataset, lo, hi int, functional bool) (Source, error) {
	return core.NewDatasetSource(ds, lo, hi, functional)
}

// NewStreamSource creates a push-style source with the given buffer
// capacity (0 = unbounded).
func NewStreamSource(env *Env, capacity int) *StreamSource {
	return core.NewStreamSource(env, capacity)
}

// NewFolderSource loads .ppm images (with optional .xml annotations)
// from a directory.
func NewFolderSource(dir string, size int, means []float32, labelOf func(wnid string) (int, bool)) (*FolderSource, error) {
	return core.NewFolderSource(dir, size, means, labelOf)
}

// Dataset: the synthetic ILSVRC stand-in.
type (
	// Dataset is the synthetic validation set.
	Dataset = imagenet.Dataset
	// DatasetConfig parameterizes the dataset.
	DatasetConfig = imagenet.Config
)

// DefaultDatasetConfig mirrors the paper's 50 000-image, 5-subset
// evaluation shape at the calibrated noise level.
func DefaultDatasetConfig() DatasetConfig { return imagenet.DefaultConfig() }

// NewDataset generates a synthetic validation dataset.
func NewDataset(cfg DatasetConfig) (*Dataset, error) { return imagenet.New(cfg) }

// Timeline tracing (Fig. 4).
type Timeline = trace.Timeline

// NewTimeline returns an enabled execution timeline.
func NewTimeline() *Timeline { return trace.New() }

// Experiments.
type (
	// BenchConfig scales the experiment harness.
	BenchConfig = bench.Config
	// BenchTable is one regenerated figure/table.
	BenchTable = bench.Table
	// Benchmarks is the experiment harness regenerating the paper's
	// figures.
	Benchmarks = bench.Harness
)

// DefaultBenchConfig returns the paper-scale experiment configuration.
func DefaultBenchConfig() BenchConfig { return bench.DefaultConfig() }

// QuickBenchConfig returns a CI-sized experiment configuration.
func QuickBenchConfig() BenchConfig { return bench.QuickConfig() }

// NewBenchmarks builds the experiment harness.
func NewBenchmarks(cfg BenchConfig) (*Benchmarks, error) { return bench.NewHarness(cfg) }

// ExperimentIDs lists the regenerable artefacts.
func ExperimentIDs() []string { return bench.ExperimentIDs() }

// Version identifies this reproduction.
const Version = "1.0.0"

// About returns a one-line description.
func About() string {
	return fmt.Sprintf("ncsw-go %s — reproduction of Rivas-Gomez et al., "+
		"\"Exploring the Vision Processing Unit as Co-processor for Inference\" (IPPS 2018)", Version)
}
