package repro

import (
	"math"
	"testing"
	"time"
)

// echoTarget is a custom device group implemented entirely outside
// internal/core — the extension point WithTarget/NewPool exposes.
type echoTarget struct{ latency time.Duration }

func (t *echoTarget) Name() string      { return "echo" }
func (t *echoTarget) TDPWatts() float64 { return 1 }

func (t *echoTarget) Start(env *Env, src Source, sink func(Result)) *Job {
	job := &Job{}
	env.Process("echo", func(p *Proc) {
		job.StartedAt = p.Now()
		job.ReadyAt = p.Now()
		for {
			item, ok := src.Next(p)
			if !ok {
				break
			}
			start := p.Now()
			p.Sleep(t.latency)
			sink(Result{Index: item.Index, Label: item.Label, Pred: -1,
				Start: start, End: p.Now(),
				ArrivedAt: item.ArrivedAt, DispatchedAt: start, Device: "echo"})
			job.Images++
		}
		job.Finish(p) // the completion signal composite targets join on
	})
	return job
}

// TestSessionCustomTarget: a Target implemented outside the framework
// packages must be able to complete a multi-group session — Job.Finish
// is the exported completion contract.
func TestSessionCustomTarget(t *testing.T) {
	const images = 40
	sess, err := NewSession(
		WithImages(images),
		WithCPU(8),
		WithTarget(&echoTarget{latency: 2 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Images != images {
		t.Errorf("classified %d images, want %d", rep.Images, images)
	}
	var echo *TargetReport
	for i := range rep.Targets {
		if rep.Targets[i].Name == "echo" {
			echo = &rep.Targets[i]
		}
	}
	if echo == nil || echo.Images == 0 {
		t.Errorf("custom target processed nothing: %+v", echo)
	}
}

// TestSessionAcceptance is the issue's acceptance scenario: a
// heterogeneous session (CPU + GPU + 4 VPUs over one dataset source)
// in under 10 lines of user code must classify every item exactly
// once, with per-target throughputs matching the equivalent
// hand-wired setup within 1%.
func TestSessionAcceptance(t *testing.T) {
	const images = 120

	// The declarative session — 7 lines of user code.
	sess, err := NewSession(
		WithImages(images),
		WithCPU(8),
		WithGPU(8),
		WithVPUs(4),
		WithRetain(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Every item classified exactly once.
	if rep.Images != images {
		t.Errorf("session classified %d images, want %d", rep.Images, images)
	}
	seen := map[int]int{}
	for _, r := range rep.Results {
		seen[r.Index]++
	}
	if len(seen) != images {
		t.Errorf("%d distinct items classified, want %d", len(seen), images)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("item %d classified %d times", idx, n)
		}
	}

	// The equivalent hand-wired setup: same seeds, same models, same
	// pool — built through the pre-session constructors.
	env := NewEnv()
	net := NewGoogLeNet(Seed(42))
	blob, err := CompileGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	sticks, err := NewNCSTestbed(env, 4, Seed(1))
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewCPUTarget(net, 8, false, Seed(1))
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := NewGPUTarget(net, 8, false, Seed(1))
	if err != nil {
		t.Fatal(err)
	}
	vpu, err := NewVPUTarget(sticks, blob, DefaultVPUOptions())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool([]Target{cpu, gpu, vpu}, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataset(DefaultDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(ds, 0, images, false)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(false)
	job := pool.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if job.Images != images {
		t.Errorf("hand-wired pool classified %d images, want %d", job.Images, images)
	}

	// Per-target throughputs within 1% of the hand-wired run.
	hand := pool.ChildJobs()
	if len(rep.Targets) != len(hand) {
		t.Fatalf("%d session groups vs %d hand-wired jobs", len(rep.Targets), len(hand))
	}
	for i, tr := range rep.Targets {
		want := hand[i].Throughput()
		if want == 0 && tr.Throughput == 0 {
			continue
		}
		if diff := math.Abs(tr.Throughput-want) / want; diff > 0.01 {
			t.Errorf("group %s throughput %.2f img/s vs hand-wired %.2f (%.2f%% apart)",
				tr.Name, tr.Throughput, want, diff*100)
		}
	}
}

// TestSessionVPUScalingMatchesTarget: a single-group session must
// reproduce the hand-wired multi-VPU numbers exactly — the session
// layer adds no timing overhead.
func TestSessionVPUScalingMatchesTarget(t *testing.T) {
	const images = 100
	for _, n := range []int{1, 2} {
		sess, err := NewSession(WithImages(images), WithVPUs(n), WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}

		env := NewEnv()
		sticks, err := NewNCSTestbed(env, n, Seed(7))
		if err != nil {
			t.Fatal(err)
		}
		net := NewGoogLeNet(Seed(42))
		blob, err := CompileGraph(net)
		if err != nil {
			t.Fatal(err)
		}
		target, err := NewVPUTarget(sticks, blob, DefaultVPUOptions())
		if err != nil {
			t.Fatal(err)
		}
		ds, err := NewDataset(DefaultDatasetConfig())
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewDatasetSource(ds, 0, images, false)
		if err != nil {
			t.Fatal(err)
		}
		col := NewCollector(false)
		job := target.Start(env, src, col.Sink())
		env.Run()
		if job.Err != nil {
			t.Fatal(job.Err)
		}
		if got, want := rep.Throughput, job.Throughput(); got != want {
			t.Errorf("%d sticks: session %.4f img/s != hand-wired %.4f", n, got, want)
		}
	}
}
