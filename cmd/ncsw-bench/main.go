// Command ncsw-bench regenerates the paper's evaluation artefacts:
// every figure of §IV–§V, the headline-claim summary, and the two
// beyond-the-paper ablations. Output is a paper-vs-measured table per
// artefact.
//
// Usage:
//
//	ncsw-bench                         # quick scale, all experiments
//	ncsw-bench -full                   # paper scale (50 000 images)
//	ncsw-bench -experiment fig6a       # one artefact
//	ncsw-bench -markdown > tables.md   # EXPERIMENTS.md fragments
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncsw-bench: ")

	experiment := flag.String("experiment", "all",
		"experiment to run: all, "+strings.Join(bench.ExperimentIDs(), ", "))
	full := flag.Bool("full", false, "paper-scale workload (10000 images per subset)")
	images := flag.Int("images", 0, "override images per subset for performance runs")
	funcImages := flag.Int("functional-images", 0, "override images per subset for accuracy runs")
	subsets := flag.Int("subsets", 0, "override subset count")
	markdown := flag.Bool("markdown", false, "emit GitHub markdown instead of aligned text")
	flag.Parse()

	cfg := bench.QuickConfig()
	if *full {
		cfg = bench.DefaultConfig()
	}
	if *images > 0 {
		cfg.ImagesPerSubset = *images
	}
	if *funcImages > 0 {
		cfg.FunctionalImagesPerSubset = *funcImages
	}
	if *subsets > 0 {
		cfg.Subsets = *subsets
	}

	h, err := bench.NewHarness(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ids := bench.ExperimentIDs()
	if *experiment != "all" {
		ids = strings.Split(*experiment, ",")
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := h.Experiment(strings.TrimSpace(id))
		if err != nil {
			log.Fatal(err)
		}
		if *markdown {
			fmt.Print(tbl.Markdown())
		} else {
			fmt.Println(tbl.String())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", tbl.ID, time.Since(start).Round(time.Millisecond))
	}
}
