// Command ncsw-bench regenerates the paper's evaluation artefacts:
// every figure of §IV–§V, the headline-claim summary, and the two
// beyond-the-paper ablations. Output is a paper-vs-measured table per
// artefact. It drives the public repro facade end to end.
//
// Usage:
//
//	ncsw-bench                         # quick scale, all experiments
//	ncsw-bench -full                   # paper scale (50 000 images)
//	ncsw-bench -experiment fig6a       # one artefact
//	ncsw-bench -markdown > tables.md   # EXPERIMENTS.md fragments
//	ncsw-bench -hetero                 # device-group session demo
//	ncsw-bench -serve                  # tail latency vs offered load
//	ncsw-bench -serve -json            # machine-readable serving points
//	ncsw-bench -slo                    # adaptive batching + admission vs baseline
//	ncsw-bench -slo -json              # machine-readable slo points (BENCH_PR3.json)
//	ncsw-bench -faults                 # goodput under injected faults, recovery vs fail-stop
//	ncsw-bench -faults -json           # machine-readable resilience points (BENCH_PR4.json)
//	ncsw-bench -hedge                  # p99/goodput vs hedge trigger, with and without faults
//	ncsw-bench -hedge -json            # machine-readable hedge points (BENCH_PR5.json)
//	ncsw-bench -kernel                 # simulation-kernel microbenchmarks vs pre-rewrite baseline
//	ncsw-bench -kernel -json           # machine-readable kernel points (BENCH_PR7.json)
//	ncsw-bench -split                  # split inference: throughput vs partition point
//	ncsw-bench -split -json            # machine-readable split points (BENCH_PR8.json)
//	ncsw-bench -tenants                # multi-tenant isolation: per-tenant goodput vs admission scheduler
//	ncsw-bench -tenants -json          # machine-readable tenant points (BENCH_PR9.json)
//	ncsw-bench -scenario scenarios/    # replay every declarative scenario in a directory
//	ncsw-bench -scenario f.json        # replay one scenario file
//	ncsw-bench -scenario scenarios/ -json  # machine-readable scenario points (BENCH_PR10.json)
//	ncsw-bench -cpuprofile cpu.pprof   # write a CPU profile of the run (any mode)
//	ncsw-bench -memprofile mem.pprof   # write an allocation profile at exit (any mode)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncsw-bench: ")

	experiment := flag.String("experiment", "all",
		"experiment to run: all, "+strings.Join(repro.ExperimentIDs(), ", "))
	full := flag.Bool("full", false, "paper-scale workload (10000 images per subset)")
	images := flag.Int("images", 0, "override images per subset for performance runs")
	funcImages := flag.Int("functional-images", 0, "override images per subset for accuracy runs")
	subsets := flag.Int("subsets", 0, "override subset count")
	markdown := flag.Bool("markdown", false, "emit GitHub markdown instead of aligned text")
	hetero := flag.Bool("hetero", false,
		"run the heterogeneous device-group session (CPU + GPU + 4 VPUs) instead of the figures")
	serve := flag.Bool("serve", false,
		"run the serving experiment (tail latency vs offered load per device group)")
	slo := flag.Bool("slo", false,
		"run the slo experiment (adaptive batching + admission control vs the fixed/open baseline)")
	faults := flag.Bool("faults", false,
		"run the resilience experiment (goodput/p99 under injected faults, self-healing recovery vs fail-stop)")
	hedge := flag.Bool("hedge", false,
		"run the hedge experiment (p99/goodput vs hedge trigger, with and without faults)")
	kernel := flag.Bool("kernel", false,
		"run the simulation-kernel microbenchmarks (ops/sec and allocs/op per hot path vs the committed pre-rewrite baseline)")
	split := flag.Bool("split", false,
		"run the split-inference experiment (pipeline throughput vs partition point and boundary window, against whole-inference baselines)")
	tenants := flag.Bool("tenants", false,
		"run the multi-tenant experiment (per-tenant goodput under a flash-crowd mix: FIFO vs weighted-fair vs priority admission)")
	scenarioPath := flag.String("scenario", "",
		"replay the declarative scenario(s) in this file or directory (each pins its own scale; -json for machine-readable points)")
	jsonOut := flag.Bool("json", false,
		"with -serve, -slo, -faults, -hedge, -kernel, -split or -tenants: emit the experiment's points as JSON (the BENCH_PR*.json format)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // surface live heap accurately
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *scenarioPath != "" {
		if *hetero || *serve || *slo || *faults || *hedge || *kernel || *split || *tenants || *experiment != "all" {
			log.Fatal("-scenario replays scenario files on their own terms (drop the other mode flags)")
		}
		runScenarios(*scenarioPath, *jsonOut)
		return
	}

	if *hetero {
		n := *images
		if n == 0 {
			n = 400
		}
		runHetero(n)
		return
	}

	cfg := repro.QuickBenchConfig()
	if *full {
		cfg = repro.DefaultBenchConfig()
	}
	if *images > 0 {
		cfg.ImagesPerSubset = *images
	}
	if *funcImages > 0 {
		cfg.FunctionalImagesPerSubset = *funcImages
	}
	if *subsets > 0 {
		cfg.Subsets = *subsets
	}

	h, err := repro.NewBenchmarks(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ids := repro.ExperimentIDs()
	if *experiment != "all" {
		if *serve || *slo || *faults || *hedge || *kernel || *split || *tenants {
			log.Fatal("-serve/-slo/-faults/-hedge/-kernel/-split/-tenants and -experiment are mutually exclusive (use -experiment serving,slo,resilience,hedge,kernel,split,tenants to mix)")
		}
		ids = strings.Split(*experiment, ",")
	}
	modes := 0
	for _, on := range []bool{*serve, *slo, *faults, *hedge, *kernel, *split, *tenants} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		log.Fatal("-serve, -slo, -faults, -hedge, -kernel, -split and -tenants are mutually exclusive")
	}
	if *jsonOut && modes == 0 {
		log.Fatal("-json requires -serve, -slo, -faults, -hedge, -kernel, -split or -tenants (only their points have a JSON form)")
	}
	if *serve {
		if *jsonOut {
			emitServingJSON(h)
			return
		}
		ids = []string{"serving"}
	}
	if *slo {
		if *jsonOut {
			emitSLOJSON(h)
			return
		}
		ids = []string{"slo"}
	}
	if *faults {
		if *jsonOut {
			emitResilienceJSON(h)
			return
		}
		ids = []string{"resilience"}
	}
	if *hedge {
		if *jsonOut {
			emitHedgeJSON(h)
			return
		}
		ids = []string{"hedge"}
	}
	if *kernel {
		if *jsonOut {
			emitKernelJSON(h)
			return
		}
		ids = []string{"kernel"}
	}
	if *split {
		if *jsonOut {
			emitSplitJSON(h)
			return
		}
		ids = []string{"split"}
	}
	if *tenants {
		if *jsonOut {
			emitTenantsJSON(h)
			return
		}
		ids = []string{"tenants"}
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := h.Experiment(strings.TrimSpace(id))
		if err != nil {
			log.Fatal(err)
		}
		if *markdown {
			fmt.Print(tbl.Markdown())
		} else {
			fmt.Println(tbl.String())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", tbl.ID, time.Since(start).Round(time.Millisecond))
	}
}

// emitServingJSON runs the serving experiment and emits the
// machine-readable points (per device group: achieved img/s and tail
// latency per offered load) in the BENCH_PR*.json format (PR 2's
// snapshot used this experiment; scripts/bench.sh now snapshots the
// slo experiment). The human-readable table goes through the regular
// experiment dispatch ("serving").
// runScenarios replays the declarative scenario(s) at path — one
// file, or every *.json in a directory — printing each report (or,
// with -json, the points in the BENCH_PR*.json format). Scenario
// files pin their own scale and seeds, so the run is bit-reproducible
// regardless of the harness flags.
func runScenarios(path string, jsonOut bool) {
	scs, err := repro.LoadScenarios(path)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		points := make([]repro.ScenarioPoint, 0, len(scs))
		for _, sc := range scs {
			res, err := sc.Run()
			if err != nil {
				log.Fatal(err)
			}
			points = append(points, res.Point())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Experiment string                `json:"experiment"`
			Points     []repro.ScenarioPoint `json:"points"`
		}{Experiment: "scenarios", Points: points}); err != nil {
			log.Fatal(err)
		}
		return
	}
	for _, sc := range scs {
		start := time.Now()
		res, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.String())
		fmt.Fprintf(os.Stderr, "[scenario %s done in %v]\n", res.Scenario.Name, time.Since(start).Round(time.Millisecond))
	}
}

func emitServingJSON(h *repro.Benchmarks) {
	points, err := h.ServingPoints()
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Experiment string               `json:"experiment"`
		Points     []repro.ServingPoint `json:"points"`
	}{Experiment: "serving", Points: points}); err != nil {
		log.Fatal(err)
	}
}

// emitSLOJSON runs the slo experiment and emits the machine-readable
// points (per device group and serving-edge variant: goodput, shed
// rate and tail latency per offered load) that scripts/bench.sh
// stores as the current PR's BENCH_PR*.json snapshot.
func emitSLOJSON(h *repro.Benchmarks) {
	points, err := h.SLOPoints()
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Experiment string           `json:"experiment"`
		Points     []repro.SLOPoint `json:"points"`
	}{Experiment: "slo", Points: points}); err != nil {
		log.Fatal(err)
	}
}

// emitResilienceJSON runs the resilience experiment and emits the
// machine-readable points (per configuration and fault level: goodput,
// tail latency, retries, drops, outages, MTTR and uptime for the
// self-healing and fail-stop policies) that scripts/bench.sh stores as
// the current PR's BENCH_PR*.json snapshot.
func emitResilienceJSON(h *repro.Benchmarks) {
	points, err := h.ResiliencePoints()
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Experiment string                  `json:"experiment"`
		Points     []repro.ResiliencePoint `json:"points"`
	}{Experiment: "resilience", Points: points}); err != nil {
		log.Fatal(err)
	}
}

// emitHedgeJSON runs the hedge experiment and emits the
// machine-readable points (per configuration, fault level and hedge
// variant: p99, goodput, hedge volume and waste) that scripts/bench.sh
// stores as the current PR's BENCH_PR*.json snapshot.
func emitHedgeJSON(h *repro.Benchmarks) {
	points, err := h.HedgePoints()
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Experiment string             `json:"experiment"`
		Points     []repro.HedgePoint `json:"points"`
	}{Experiment: "hedge", Points: points}); err != nil {
		log.Fatal(err)
	}
}

// emitKernelJSON runs the simulation-kernel microbenchmarks and emits
// the machine-readable points (per hot path: measured ops/sec and
// exact allocs/op next to the committed pre-rewrite baseline) that
// scripts/bench.sh stores as the current PR's BENCH_PR*.json snapshot.
// Unlike the simulated experiments these are wall-clock numbers: two
// emissions differ, and cross-machine comparisons are apples to
// oranges — the committed snapshot documents one machine's
// before/after.
func emitKernelJSON(h *repro.Benchmarks) {
	points, err := h.KernelPoints()
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Experiment string              `json:"experiment"`
		Points     []repro.KernelPoint `json:"points"`
	}{Experiment: "kernel", Points: points}); err != nil {
		log.Fatal(err)
	}
}

// emitSplitJSON runs the split-inference experiment and emits the
// machine-readable points (per partition point and boundary window:
// pipeline throughput and tail latency against the whole-inference
// baselines at equal fleet) that scripts/bench.sh stores as the
// current PR's BENCH_PR*.json snapshot. Fully simulated: two
// emissions at the same seed are byte-identical.
func emitSplitJSON(h *repro.Benchmarks) {
	points, err := h.SplitPoints()
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Experiment string             `json:"experiment"`
		Points     []repro.SplitPoint `json:"points"`
	}{Experiment: "split", Points: points}); err != nil {
		log.Fatal(err)
	}
}

// emitTenantsJSON runs the multi-tenant experiment and emits the
// machine-readable points (per scheduler, aggregate load and tenant:
// offered vs achieved rate, tails, goodput against the tenant's own
// SLO, and shed/expired/quota drops) that scripts/bench.sh stores as
// the current PR's BENCH_PR*.json snapshot. Fully simulated: two
// emissions at the same seed are byte-identical.
func emitTenantsJSON(h *repro.Benchmarks) {
	points, err := h.TenantPoints()
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Experiment string              `json:"experiment"`
		Points     []repro.TenantPoint `json:"points"`
	}{Experiment: "tenants", Points: points}); err != nil {
		log.Fatal(err)
	}
}

// runHetero demonstrates §III's device groups beyond the paper's
// figures: one dataset split across every device family at once,
// under each routing policy.
func runHetero(images int) {
	fmt.Printf("heterogeneous device groups: CPU + GPU + 4 VPUs over %d images\n\n", images)
	net := repro.NewGoogLeNet(repro.Seed(42))
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}
	for _, route := range []repro.Routing{
		repro.StaticSplit, repro.RoundRobinSplit, repro.WorkStealing, repro.WeightedByThroughput,
	} {
		sess, err := repro.NewSession(
			repro.WithImages(images),
			repro.WithCPU(8),
			repro.WithGPU(8),
			repro.WithVPUs(4),
			repro.WithNetwork(net),
			repro.WithBlob(blob),
			repro.WithRouting(route),
		)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		report, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("── routing: %v ──\n%s\n", route, report)
		fmt.Fprintf(os.Stderr, "[%v done in %v]\n", route, time.Since(start).Round(time.Millisecond))
	}
}
