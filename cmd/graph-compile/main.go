// Command graph-compile compiles a network into an NCS graph blob and
// prints its layer summary — the role mvNCCompile plays in the NCSDK.
// With -profile it additionally prints the simulated per-layer
// execution costs on the Myriad 2 (the mvNCProfile report).
//
// Examples:
//
//	graph-compile -net googlenet -o googlenet.graph
//	graph-compile -net micro -profile
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/graphfile"
	"repro/internal/rng"
	"repro/internal/vpu"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graph-compile: ")

	netName := flag.String("net", "googlenet", "network to compile: googlenet or micro")
	out := flag.String("o", "", "write the compiled blob to this file")
	profile := flag.Bool("profile", false, "print the simulated per-layer Myriad 2 cost profile")
	seed := flag.Uint64("seed", 1, "weight seed")
	flag.Parse()

	var net *repro.Graph
	switch *netName {
	case "googlenet":
		net = repro.NewGoogLeNet(repro.Seed(*seed))
	case "micro":
		net = repro.NewMicroGoogLeNet(repro.DefaultMicroConfig(), repro.Seed(*seed))
	default:
		log.Fatalf("unknown network %q (want googlenet or micro)", *netName)
	}

	fmt.Print(net.Summary())

	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}
	_, info, err := graphfile.Parse(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled blob: %d bytes (%.2f MB), %d layers, %.3f GMACs, %.2f M params (FP16)\n",
		info.Bytes, float64(info.Bytes)/(1<<20), info.Layers,
		float64(info.MACs)/1e9, float64(info.Params)/1e6)

	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *profile {
		engine, err := vpu.NewEngine(vpu.DefaultConfig(), net, rng.New(*seed))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nMyriad 2 per-layer profile (12 SHAVEs @ 600 MHz):\n")
		fmt.Printf("%-26s %-9s %12s %12s %8s\n", "layer", "kind", "compute", "memory", "bound")
		for _, lc := range engine.LayerProfile() {
			fmt.Printf("%-26s %-9s %12v %12v %8s\n", lc.Name, lc.Kind, lc.Compute, lc.Memory, lc.Bound)
		}
		fmt.Printf("total on-device execution: %v per inference\n", engine.BaseExecDuration())
	}
}
