// Command calib-noise recalibrates the synthetic dataset's noise level
// against the paper's ~32% top-1 error target (Fig. 7a). Run it after
// changing the micro network architecture, seeds or dataset geometry,
// then update imagenet.CalibratedNoiseSigma with the printed value.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/imagenet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calib-noise: ")
	target := flag.Float64("target", 0.32, "target top-1 error rate")
	images := flag.Int("images", 4000, "calibration images per measurement")
	iters := flag.Int("iters", 12, "bisection iterations")
	verify := flag.Bool("verify", false, "only verify the current calibrated sigma")
	flag.Parse()

	if *verify {
		got, err := bench.MeasureErrorAt(imagenet.CalibratedNoiseSigma, *images)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sigma=%.2f top1-err=%.4f (target %.4f)\n",
			imagenet.CalibratedNoiseSigma, got, *target)
		return
	}
	sigma, achieved, err := bench.CalibrateNoise(*target, *images, *iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated sigma=%.2f achieves top1-err=%.4f (target %.4f)\n", sigma, achieved, *target)
	fmt.Println("update imagenet.CalibratedNoiseSigma with this value")
}
