// Command ncsw-vet runs the repository's determinism and API-hygiene
// analyzer suite (internal/lint) over the packages matched by its
// arguments — `go run ./cmd/ncsw-vet ./...` checks the whole module —
// and exits non-zero when any finding survives suppression.
//
// The five analyzers and the //ncsw:allow directive are documented in
// DESIGN.md §8; -help lists them.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ncsw-vet [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the ncsw determinism & API-hygiene analyzers:\n\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nSuppress one finding with `//ncsw:allow <analyzer> <reason>`\n")
		fmt.Fprintf(os.Stderr, "on the flagged line or the line above it; the reason is mandatory.\n")
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := lint.Vet(os.Stdout, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncsw-vet: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "ncsw-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
