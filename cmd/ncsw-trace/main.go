// Command ncsw-trace renders the paper's Fig. 4: the execution
// timeline of the parallel multi-VPU pipeline — forked host workers
// loading inputs, SHAVE execution overlapping across sticks, and
// result reads — as an ASCII chart or CSV. With -faults it overlays a
// scripted failure scenario (slowdown, stick hang, link drop) and the
// self-healing pipeline's response: `!` marks injections, `X` marks
// each outage from detection to rejoin, so failure scenarios are
// visually debuggable. With -tenants it runs a small multi-tenant
// serving session under weighted-fair scheduling and adds one lane
// per tenant below the device tracks — queue wait and service spans
// per delivered item — so per-tenant isolation is visually
// debuggable too.
//
// Examples:
//
//	ncsw-trace -devices 4 -images 12
//	ncsw-trace -devices 8 -images 32 -csv
//	ncsw-trace -devices 4 -faults
//	ncsw-trace -devices 2 -images 80 -tenants
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncsw-trace: ")

	devices := flag.Int("devices", 4, "NCS devices")
	images := flag.Int("images", 12, "inferences to trace")
	width := flag.Int("width", 100, "chart width in columns")
	csv := flag.Bool("csv", false, "emit CSV spans instead of the ASCII chart")
	seed := flag.Uint64("seed", 1, "simulation seed")
	faults := flag.Bool("faults", false,
		"inject a scripted failure scenario (slowdown, hang, link drop) with recovery enabled and annotate the chart")
	tenants := flag.Bool("tenants", false,
		"run a multi-tenant serving session (weighted-fair, three traffic classes) and add one timeline lane per tenant")
	flag.Parse()

	if *tenants && *faults {
		log.Fatal("-tenants and -faults are separate scenarios; pick one")
	}
	if *tenants {
		out, err := tenantsTrace(*devices, *images, *seed, *width, *csv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}

	env := repro.NewEnv()
	sticks, err := repro.NewNCSTestbed(env, *devices, repro.Seed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	net := repro.NewGoogLeNet(repro.Seed(*seed))
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}

	tl := repro.NewTimeline()
	opts := repro.DefaultVPUOptions()
	opts.Timeline = tl
	var faultLog *repro.FaultLog
	if *faults {
		// Size the scenario so the faults land mid-steady-state: the
		// main process opens sticks sequentially (~1.05 s each: firmware
		// upload, RTOS boot, graph allocation), then each stick serves
		// ~101 ms per image.
		if *images < 30**devices {
			*images = 30 * *devices
		}
		setup := time.Duration(*devices) * 1100 * time.Millisecond
		opts.Recovery = repro.RecoveryConfig{Timeout: 500 * time.Millisecond, Recover: true}
		reg := repro.FaultRegistry{}
		for _, d := range sticks {
			reg.Add(d.Name(), d)
		}
		plan := repro.FaultPlan{Events: []repro.FaultEvent{
			{Device: sticks[0].Name(), Kind: repro.Slowdown, At: setup + 200*time.Millisecond,
				Factor: 3, Duration: time.Second},
			{Device: sticks[len(sticks)-1].Name(), Kind: repro.StickHang, At: setup + 300*time.Millisecond},
		}}
		if len(sticks) > 2 {
			plan.Events = append(plan.Events, repro.FaultEvent{
				Device: sticks[1].Name(), Kind: repro.LinkDrop, At: setup + 600*time.Millisecond})
		}
		faultLog, err = repro.ApplyFaults(env, plan, repro.Seed(*seed), reg,
			func(inj repro.FaultInjection) {
				tl.Add(inj.Device, trace.Fault, inj.At, inj.Until, inj.Kind.String())
			})
		if err != nil {
			log.Fatal(err)
		}
	}
	target, err := repro.NewVPUTarget(sticks, blob, opts)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.DefaultDatasetConfig()
	cfg.Images = *images
	ds, err := repro.NewDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	src, err := repro.NewDatasetSource(ds, 0, *images, false)
	if err != nil {
		log.Fatal(err)
	}
	col := repro.NewCollector(false)
	job := target.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		log.Fatal(job.Err)
	}

	// Drop the one-time setup (firmware boot, graph allocation) so the
	// chart shows the steady-state pipeline of Fig. 4.
	steady := tl.After(job.ReadyAt)
	if *csv {
		fmt.Print(steady.CSV())
		return
	}
	fmt.Printf("multi-VPU execution timeline: %d inferences on %d devices (GoogLeNet)\n", *images, *devices)
	fmt.Printf("steady-state throughput: %.1f img/s\n\n", job.Throughput())
	fmt.Print(steady.Render(*width))
	fmt.Printf("\nexec overlap across devices: %v of %v steady-state\n",
		steady.Overlap(trace.Exec), job.DoneAt-job.ReadyAt)
	if faultLog != nil {
		fmt.Printf("\ninjected faults (%d):\n", faultLog.Count())
		for _, inj := range faultLog.Injections {
			fmt.Printf("  %v\n", inj)
		}
		fmt.Printf("outage spans (X) run from detection (completion timeout %v) to rejoin after the\n",
			opts.Recovery.Timeout)
		fmt.Println("reboot-priced recovery: reset, firmware re-upload, RTOS boot, graph re-allocation")
	}
}

// tenantsTrace runs a small multi-tenant serving session — two steady
// interactive classes and one bursty batch class under weighted-fair
// scheduling on a VPU fleet — and renders the execution timeline with
// one lane per tenant appended below the device tracks. Each
// delivered item contributes a queue-wait span (arrival to service
// start) and a service span (noted with the device that ran it), so
// the chart shows who waited while whom was served. Deterministic for
// a fixed (devices, images, seed): the golden test pins its output.
func tenantsTrace(devices, images int, seed uint64, width int, csv bool) (string, error) {
	tl := repro.NewTimeline()
	// Arrivals start after the sequential stick bring-up (~1.05 s per
	// device: firmware upload, RTOS boot, graph allocation), and are
	// sized against the fleet's approximate closed-loop capacity
	// (~9.9 img/s per stick) to ~70% aggregate load.
	setup := time.Duration(devices) * 1100 * time.Millisecond
	capacity := 9.9 * float64(devices)
	tc := repro.TenantConfig{
		Scheduler: repro.TenantWeightedFair,
		Tenants: []repro.TenantClass{
			{ID: "gold", Weight: 3,
				Arrivals: repro.DelayedArrivals(repro.PoissonArrivals(0.25*capacity), setup)},
			{ID: "silver", Weight: 1,
				Arrivals: repro.DelayedArrivals(repro.PoissonArrivals(0.25*capacity), setup)},
			{ID: "batch", Weight: 1,
				Arrivals: repro.DelayedArrivals(repro.BurstyArrivals(0.4*capacity, time.Second, time.Second), setup)},
		},
	}
	cfg := repro.DefaultDatasetConfig()
	cfg.Images = images
	sess, err := repro.NewSession(
		repro.WithDataset(cfg),
		repro.WithVPUs(devices),
		repro.WithSeed(seed),
		repro.WithSLO(500*time.Millisecond),
		repro.WithTenants(tc),
		repro.WithTimeline(tl),
		repro.WithRetain(true),
	)
	if err != nil {
		return "", err
	}
	rep, err := sess.Run()
	if err != nil {
		return "", err
	}
	// One lane per tenant, in declaration order (the timeline renders
	// tracks first-seen first, so the device tracks stay on top).
	for _, tr := range rep.Tenants {
		lane := "ten:" + tr.ID
		for _, r := range rep.Results {
			if r.Tenant != tr.ID {
				continue
			}
			if r.Start > r.ArrivedAt {
				tl.Add(lane, trace.Load, r.ArrivedAt, r.Start, "wait")
			}
			tl.Add(lane, trace.Exec, r.Start, r.End, r.Device)
		}
	}
	steady := tl.After(rep.Job.ReadyAt)
	if csv {
		return steady.CSV(), nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "multi-tenant serving timeline: %d inferences on %d devices (GoogLeNet)\n", images, devices)
	fmt.Fprintf(&b, "scheduler: %s; slo: %v\n", rep.TenantScheduler, 500*time.Millisecond)
	for _, tr := range rep.Tenants {
		fmt.Fprintf(&b, "  %-8s weight-fair lane: arrived %3d  served %3d  shed %d  goodput %.1f%%\n",
			tr.ID, tr.Arrived, tr.Completed, tr.Shed+tr.Expired, tr.Goodput*100)
	}
	b.WriteByte('\n')
	b.WriteString(steady.Render(width))
	fmt.Fprintf(&b, "\ntenant lanes: L = queue wait (arrival to service start), # = service span on a device\n")
	return b.String(), nil
}
