// Command ncsw-trace renders the paper's Fig. 4: the execution
// timeline of the parallel multi-VPU pipeline — forked host workers
// loading inputs, SHAVE execution overlapping across sticks, and
// result reads — as an ASCII chart or CSV.
//
// Examples:
//
//	ncsw-trace -devices 4 -images 12
//	ncsw-trace -devices 8 -images 32 -csv
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncsw-trace: ")

	devices := flag.Int("devices", 4, "NCS devices")
	images := flag.Int("images", 12, "inferences to trace")
	width := flag.Int("width", 100, "chart width in columns")
	csv := flag.Bool("csv", false, "emit CSV spans instead of the ASCII chart")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	env := repro.NewEnv()
	sticks, err := repro.NewNCSTestbed(env, *devices, repro.Seed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	net := repro.NewGoogLeNet(repro.Seed(*seed))
	blob, err := repro.CompileGraph(net)
	if err != nil {
		log.Fatal(err)
	}

	tl := repro.NewTimeline()
	opts := repro.DefaultVPUOptions()
	opts.Timeline = tl
	target, err := repro.NewVPUTarget(sticks, blob, opts)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.DefaultDatasetConfig()
	cfg.Images = *images
	ds, err := repro.NewDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	src, err := repro.NewDatasetSource(ds, 0, *images, false)
	if err != nil {
		log.Fatal(err)
	}
	col := repro.NewCollector(false)
	job := target.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		log.Fatal(job.Err)
	}

	// Drop the one-time setup (firmware boot, graph allocation) so the
	// chart shows the steady-state pipeline of Fig. 4.
	steady := tl.After(job.ReadyAt)
	if *csv {
		fmt.Print(steady.CSV())
		return
	}
	fmt.Printf("multi-VPU execution timeline: %d inferences on %d devices (GoogLeNet)\n", *images, *devices)
	fmt.Printf("steady-state throughput: %.1f img/s\n\n", job.Throughput())
	fmt.Print(steady.Render(*width))
	fmt.Printf("\nexec overlap across devices: %v of %v steady-state\n",
		steady.Overlap(trace.Exec), job.DoneAt-job.ReadyAt)
}
