package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTenantsTraceGolden pins the -tenants timeline byte for byte: a
// fixed (devices, images, seed) session renders per-tenant lanes
// identically on every run and platform — the chart is simulator
// output, not wall-clock measurement. Regenerate with
// `go test ./cmd/ncsw-trace -run Golden -update` after an intentional
// scheduling or pricing change.
func TestTenantsTraceGolden(t *testing.T) {
	got, err := tenantsTrace(2, 80, 1, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	again, err := tenantsTrace(2, 80, 1, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if got != again {
		t.Fatal("tenants trace differs across reruns of the same configuration")
	}
	golden := filepath.Join("testdata", "tenants.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("tenants trace diverged from golden:\n--- got\n%s--- want\n%s", got, want)
	}
}

// TestTenantsTraceCSV sanity-checks the machine-readable form: every
// tenant declared by the scenario owns at least one lane span.
func TestTenantsTraceCSV(t *testing.T) {
	out, err := tenantsTrace(2, 40, 1, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"ten:gold", "ten:silver", "ten:batch"} {
		if !containsTrack(out, id) {
			t.Errorf("CSV output has no spans for %s:\n%s", id, out)
		}
	}
}

// containsTrack reports whether any CSV record names the given track.
func containsTrack(csv, track string) bool {
	for _, line := range strings.Split(csv, "\n") {
		if strings.HasPrefix(line, track+",") {
			return true
		}
	}
	return false
}
