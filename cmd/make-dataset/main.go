// Command make-dataset materializes a slice of the synthetic ILSVRC
// validation set to disk: one .ppm image plus one ILSVRC-style .xml
// bounding-box annotation per sample. The output folder feeds
// ncsw-classify -folder, exercising the file-based ImageFolder source
// of the NCSw class diagram (Fig. 3).
//
// Example:
//
//	make-dataset -out ./val-data -n 50
//	ncsw-classify -target vpu -devices 2 -folder ./val-data
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("make-dataset: ")

	out := flag.String("out", "val-data", "output directory")
	n := flag.Int("n", 50, "number of validation images to write")
	offset := flag.Int("offset", 0, "first validation image index")
	flag.Parse()

	cfg := repro.DefaultDatasetConfig()
	if *offset+*n > cfg.Images {
		cfg.Images = *offset + *n
	}
	ds, err := repro.NewDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.WriteSampleFolder(ds, *out, *offset, *offset+*n); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d images (+annotations) to %s\n", *n, *out)
	fmt.Printf("classify them with: ncsw-classify -target vpu -folder %s\n", *out)
}
