// Command ncsw-classify is the NCSw command-line front end: it
// classifies images from a source (the synthetic validation set, or a
// folder of .ppm files made with make-dataset) on one or more device
// groups — the simulated CPU, GPU, and groups of Neural Compute
// Sticks — and reports per-group and aggregate accuracy plus
// simulated throughput.
//
// Examples:
//
//	ncsw-classify -target vpu -devices 4 -images 200
//	ncsw-classify -target cpu -batch 8 -images 400
//	ncsw-classify -target cpu,gpu,vpu -devices 4 -routing weighted
//	ncsw-classify -target vpu -folder ./val-data
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncsw-classify: ")

	target := flag.String("target", "vpu",
		"device groups, comma-separated: cpu, gpu and/or vpu (e.g. cpu,gpu,vpu)")
	devices := flag.Int("devices", 1, "NCS devices per vpu group")
	batch := flag.Int("batch", 8, "batch size for cpu/gpu groups")
	images := flag.Int("images", 100, "synthetic validation images to classify")
	folder := flag.String("folder", "", "classify .ppm images from this folder instead")
	routing := flag.String("routing", "weighted",
		"routing across groups: static, roundrobin, stealing or weighted")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	opts := []repro.SessionOption{
		repro.WithFunctional(true),
		repro.WithSeed(*seed),
	}
	if *folder == "" {
		if *images <= 0 {
			log.Fatalf("-images must be positive (got %d)", *images)
		}
		// The synthetic dataset generates images lazily, so the full
		// default set costs nothing; WithImages bounds the run.
		opts = append(opts, repro.WithImages(*images))
	}
	route, err := parseRouting(*routing)
	if err != nil {
		log.Fatal(err)
	}
	opts = append(opts, repro.WithRouting(route))

	for _, kind := range strings.Split(*target, ",") {
		switch strings.TrimSpace(kind) {
		case "cpu":
			opts = append(opts, repro.WithCPU(*batch))
		case "gpu":
			opts = append(opts, repro.WithGPU(*batch))
		case "vpu":
			opts = append(opts, repro.WithVPUs(*devices))
		default:
			log.Fatalf("unknown target %q (want cpu, gpu or vpu)", kind)
		}
	}

	sess, err := repro.NewSession(opts...)
	if err != nil {
		log.Fatal(err)
	}

	total := *images
	if *folder != "" {
		src, n, err := folderSource(sess, *folder)
		if err != nil {
			log.Fatal(err)
		}
		sess.SetSource(src)
		total = n
	}

	report, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report)
	fmt.Printf("images classified:  %d of %d\n", report.Images, total)
	col := report.Collector
	if col.Correct+col.Mispred > 0 {
		fmt.Printf("top-1 error:        %.2f%% (%d/%d wrong)\n",
			report.TopOneError*100, col.Mispred, col.Correct+col.Mispred)
		fmt.Printf("mean confidence:    %.3f\n", report.MeanConfidence)
	}
}

func parseRouting(name string) (repro.Routing, error) {
	switch name {
	case "static":
		return repro.StaticSplit, nil
	case "roundrobin", "rr":
		return repro.RoundRobinSplit, nil
	case "stealing", "dynamic":
		return repro.WorkStealing, nil
	case "weighted", "":
		return repro.WeightedByThroughput, nil
	}
	return 0, fmt.Errorf("unknown routing %q (want static, roundrobin, stealing or weighted)", name)
}

// folderSource loads .ppm images (with optional .xml annotations)
// sized for the session's network, labelled through the session's
// synset table.
func folderSource(sess *repro.Session, dir string) (repro.Source, int, error) {
	ds := sess.Dataset()
	labelOf := func(wnid string) (int, bool) {
		for c := 0; c < ds.Classes(); c++ {
			if ds.Synset(c).WNID == wnid {
				return c, true
			}
		}
		return 0, false
	}
	size := sess.Network().InputShape()[1]
	src, err := repro.NewFolderSource(dir, size, ds.Mean(), labelOf)
	if err != nil {
		return nil, 0, err
	}
	return src, src.Len(), nil
}
