// Command ncsw-classify is the NCSw command-line front end: it
// classifies images from a source (the synthetic validation set, or a
// folder of .ppm files made with make-dataset) on a chosen target —
// the simulated CPU, GPU, or a group of Neural Compute Sticks — and
// reports accuracy plus simulated throughput.
//
// Examples:
//
//	ncsw-classify -target vpu -devices 4 -images 200
//	ncsw-classify -target cpu -batch 8 -images 400
//	ncsw-classify -target vpu -folder ./val-data
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncsw-classify: ")

	target := flag.String("target", "vpu", "target device: cpu, gpu or vpu")
	devices := flag.Int("devices", 1, "NCS devices for the vpu target")
	batch := flag.Int("batch", 8, "batch size for cpu/gpu targets")
	images := flag.Int("images", 100, "synthetic validation images to classify")
	folder := flag.String("folder", "", "classify .ppm images from this folder instead")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	net := repro.NewMicroGoogLeNet(repro.DefaultMicroConfig(), repro.Seed(42))
	ds, err := repro.NewDataset(datasetConfig(*images, *folder))
	if err != nil {
		log.Fatal(err)
	}
	if err := calibrate(net, ds); err != nil {
		log.Fatal(err)
	}

	src, n, err := buildSource(ds, *folder, *images, net)
	if err != nil {
		log.Fatal(err)
	}

	env := repro.NewEnv()
	tgt, err := buildTarget(env, *target, net, *devices, *batch, *seed)
	if err != nil {
		log.Fatal(err)
	}

	col := repro.NewCollector(false)
	job := tgt.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		log.Fatal(job.Err)
	}

	fmt.Printf("target:             %s (TDP %.1f W)\n", tgt.Name(), tgt.TDPWatts())
	fmt.Printf("images classified:  %d of %d\n", job.Images, n)
	fmt.Printf("simulated time:     %v\n", job.DoneAt-job.ReadyAt)
	fmt.Printf("throughput:         %.1f img/s (simulated)\n", job.Throughput())
	if col.Correct+col.Mispred > 0 {
		fmt.Printf("top-1 error:        %.2f%% (%d/%d wrong)\n",
			col.TopOneError()*100, col.Mispred, col.Correct+col.Mispred)
		fmt.Printf("mean confidence:    %.3f\n", col.MeanConfidence())
	}
}

func datasetConfig(images int, folder string) repro.DatasetConfig {
	cfg := repro.DefaultDatasetConfig()
	if folder == "" && images > 0 {
		cfg.Images = images
	}
	return cfg
}

// calibrate installs the prototype classifier so predictions are
// meaningful (the reproduction's stand-in for pre-trained weights).
func calibrate(net *repro.Graph, ds *repro.Dataset) error {
	return repro.CalibratePrototypeClassifier(net, ds, repro.DefaultClassifierTemperature)
}

func buildSource(ds *repro.Dataset, folder string, images int, net *repro.Graph) (repro.Source, int, error) {
	if folder == "" {
		src, err := repro.NewDatasetSource(ds, 0, images, true)
		return src, images, err
	}
	labelOf := func(wnid string) (int, bool) {
		for c := 0; c < ds.Classes(); c++ {
			if ds.Synset(c).WNID == wnid {
				return c, true
			}
		}
		return 0, false
	}
	size := net.InputShape()[1]
	src, err := repro.NewFolderSource(folder, size, ds.Mean(), labelOf)
	if err != nil {
		return nil, 0, err
	}
	return src, src.Len(), nil
}

func buildTarget(env *repro.Env, kind string, net *repro.Graph, devices, batch int, seed uint64) (repro.Target, error) {
	switch kind {
	case "cpu":
		return repro.NewCPUTarget(net, batch, true, repro.Seed(seed))
	case "gpu":
		return repro.NewGPUTarget(net, batch, true, repro.Seed(seed))
	case "vpu":
		sticks, err := repro.NewNCSTestbed(env, devices, repro.Seed(seed))
		if err != nil {
			return nil, err
		}
		blob, err := repro.CompileGraph(net)
		if err != nil {
			return nil, err
		}
		opts := repro.DefaultVPUOptions()
		opts.Functional = true
		return repro.NewVPUTarget(sticks, blob, opts)
	default:
		return nil, fmt.Errorf("unknown target %q (want cpu, gpu or vpu)", kind)
	}
}
