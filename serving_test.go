package repro

import (
	"testing"
	"time"
)

// runServingSession runs the issue's acceptance scenario: open-loop
// Poisson traffic into a heterogeneous CPU + 4-VPU session under
// latency-aware routing.
func runServingSession(t *testing.T, images int) *Report {
	t.Helper()
	sess, err := NewSession(
		WithImages(images),
		WithCPU(8),
		WithVPUs(4),
		WithArrivals(DelayedArrivals(PoissonArrivals(60), 2*time.Second)),
		WithRouting(RouteLatency),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestServingSessionAcceptance: a serving-mode session must classify
// every arrival exactly once and report a coherent per-group latency
// distribution — nonzero tail quantiles ordered p50 <= p95 <= p99 <=
// max, and a queue-wait vs service-time split that adds up to the
// total mean.
func TestServingSessionAcceptance(t *testing.T) {
	const images = 150
	rep := runServingSession(t, images)

	if rep.Images != images {
		t.Errorf("served %d requests, want %d", rep.Images, images)
	}
	check := func(name string, l LatencySummary, n int) {
		if l.N != n {
			t.Errorf("%s: latency over %d items, want %d", name, l.N, n)
		}
		if n == 0 {
			return
		}
		if l.P50 <= 0 || l.P95 < l.P50 || l.P99 < l.P95 || l.Max < l.P99 {
			t.Errorf("%s: inconsistent quantiles %+v", name, l)
		}
		if l.ServiceMean <= 0 {
			t.Errorf("%s: no service time measured", name)
		}
		if diff := l.Mean - (l.QueueMean + l.ServiceMean); diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("%s: mean %v != queue %v + service %v", name, l.Mean, l.QueueMean, l.ServiceMean)
		}
	}
	check("total", rep.Latency, images)
	for _, tr := range rep.Targets {
		check(tr.Name, tr.Latency, tr.Images)
	}
	if rep.Arrivals == nil {
		t.Error("report does not name the arrival process")
	}
}

// TestServingSessionDeterminism: two identically configured serving
// runs must agree bit for bit — same per-group image counts, same
// latency quantiles to the nanosecond. The whole serving stack
// (Poisson arrivals, EWMA routing, device jitter) is driven by seeded
// PRNGs inside the deterministic simulation kernel.
func TestServingSessionDeterminism(t *testing.T) {
	const images = 120
	a := runServingSession(t, images)
	b := runServingSession(t, images)

	if a.Images != b.Images || a.Throughput != b.Throughput || a.SimTime != b.SimTime {
		t.Errorf("aggregate mismatch: %d/%.6f/%v vs %d/%.6f/%v",
			a.Images, a.Throughput, a.SimTime, b.Images, b.Throughput, b.SimTime)
	}
	if a.Latency != b.Latency {
		t.Errorf("merged latency mismatch:\n%+v\n%+v", a.Latency, b.Latency)
	}
	if len(a.Targets) != len(b.Targets) {
		t.Fatalf("group count mismatch: %d vs %d", len(a.Targets), len(b.Targets))
	}
	for i := range a.Targets {
		ta, tb := a.Targets[i], b.Targets[i]
		if ta.Images != tb.Images {
			t.Errorf("group %s: %d vs %d images", ta.Name, ta.Images, tb.Images)
		}
		if ta.Latency != tb.Latency {
			t.Errorf("group %s latency mismatch:\n%+v\n%+v", ta.Name, ta.Latency, tb.Latency)
		}
	}
}
