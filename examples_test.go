package repro

import (
	"os"
	"os/exec"
	"testing"
)

// TestExamplesSmoke builds and runs every example at tiny scale
// (NCSW_EXAMPLE_IMAGES caps the session sizes), asserting a clean
// exit and non-empty output — the examples are the documented entry
// points and previously had zero coverage. Skipped under -short.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	examples := []string{
		"quickstart", "multivpu", "streaming", "precision", "powerstudy", "serving", "slo", "resilience", "hedging", "split",
	}
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Env = append(os.Environ(), "NCSW_EXAMPLE_IMAGES=16")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
