package repro

import (
	"encoding/json"
	"testing"
)

// TestSplitAcceptance drives split inference through the public
// facade: a VPU head and GPU tail partitioned at a valid GoogLeNet
// cut classify every image exactly once through both stages, and the
// report carries the pipeline metadata.
func TestSplitAcceptance(t *testing.T) {
	net := NewGoogLeNet(Seed(42))
	cuts := net.ValidCuts()
	if len(cuts) == 0 {
		t.Fatal("GoogLeNet has no valid cuts")
	}
	cut := cuts[len(cuts)/2]
	sess, err := NewSession(
		WithImages(48),
		WithStages(VPUStage(2), GPUStage(16)),
		WithCut(cut),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Images != 48 {
		t.Errorf("Images = %d, want 48", rep.Images)
	}
	if !rep.Pipeline || len(rep.Cuts) != 1 || rep.Cuts[0] != cut {
		t.Errorf("pipeline metadata: pipeline=%v cuts=%v, want cut %d", rep.Pipeline, rep.Cuts, cut)
	}
	for _, tr := range rep.Targets {
		if tr.Images != 48 {
			t.Errorf("stage %s processed %d images, want 48 (serial stages see every item)", tr.Name, tr.Images)
		}
	}
}

// TestSplitJSONDeterministic locks the -split -json contract: the
// whole split experiment at the same seed emits byte-identical
// machine-readable points across two fresh harnesses.
func TestSplitJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full split sweep")
	}
	emit := func() []byte {
		cfg := QuickBenchConfig()
		cfg.ImagesPerSubset = 60
		h, err := NewBenchmarks(cfg)
		if err != nil {
			t.Fatal(err)
		}
		points, err := h.SplitPoints()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(points)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := emit(), emit()
	if string(a) != string(b) {
		t.Error("split experiment emissions differ between identical runs")
	}
}
