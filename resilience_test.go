package repro

import (
	"reflect"
	"testing"
	"time"
)

// The root resilience acceptance tests drive the whole stack through
// the public facade: deterministic fault injection (WithFaults),
// health monitoring and self-healing (WithRecovery), availability
// metrics on the report, and the PR's acceptance bar — recovery holds
// strictly higher goodput than fail-stop under the identical fault
// sequence, and an empty plan changes nothing.

// resilienceSession builds the shared serving scenario: 4 sticks,
// Poisson arrivals past warmup, a hang and a link drop mid-run. The
// window (400 images at 25/s ≈ 16 s of arrivals) leaves time after
// the last recovery (~10 s) for the healed capacity to drain the
// outage backlog — that post-recovery tail is where recovery earns
// its goodput edge over fail-stop.
func resilienceSession(t *testing.T, net *Graph, blob []byte, plan FaultPlan, rc RecoveryConfig) *Report {
	t.Helper()
	sess, err := NewSession(
		WithImages(400),
		WithVPUs(4),
		WithNetwork(net),
		WithBlob(blob),
		WithArrivals(DelayedArrivals(PoissonArrivals(25), 5*time.Second)),
		WithSLO(450*time.Millisecond),
		WithFaults(plan),
		WithRecovery(rc),
	)
	if err != nil {
		t.Fatal(err)
	}
	report, _ := sess.Run() // fail-stop abandonment errors by design
	if report == nil {
		t.Fatal("no report")
	}
	return report
}

func resilienceWorkload(t *testing.T) (*Graph, []byte) {
	t.Helper()
	net := NewGoogLeNet(Seed(42))
	blob, err := CompileGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	return net, blob
}

var resiliencePlan = FaultPlan{Events: []FaultEvent{
	{Device: "ncs1", Kind: StickHang, At: 7 * time.Second},
	{Device: "ncs2", Kind: LinkDrop, At: 9 * time.Second},
}}

// TestResilienceRecoveryBeatsFailStop is the acceptance criterion:
// under the identical injected fault sequence and arrivals, the
// self-healing pipeline holds strictly higher goodput than fail-stop,
// and the availability metrics tell a coherent story.
func TestResilienceRecoveryBeatsFailStop(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience acceptance skipped in -short mode")
	}
	net, blob := resilienceWorkload(t)
	failStop := resilienceSession(t, net, blob, resiliencePlan,
		RecoveryConfig{Timeout: 2 * time.Second, Recover: false, MaxAttempts: 3})
	healed := resilienceSession(t, net, blob, resiliencePlan,
		RecoveryConfig{Timeout: 2 * time.Second, Recover: true, MaxAttempts: 3})

	if healed.Goodput <= failStop.Goodput {
		t.Errorf("recovery goodput %.3f not strictly above fail-stop %.3f",
			healed.Goodput, failStop.Goodput)
	}
	if healed.Recovered != healed.Outages || healed.Outages != 2 {
		t.Errorf("recovery repaired %d of %d outages, want 2/2", healed.Recovered, healed.Outages)
	}
	if failStop.Recovered != 0 || failStop.Outages != 2 {
		t.Errorf("fail-stop outages %d recovered %d, want 2/0", failStop.Outages, failStop.Recovered)
	}
	if healed.Uptime <= failStop.Uptime {
		t.Errorf("recovery uptime %.3f not above fail-stop %.3f", healed.Uptime, failStop.Uptime)
	}
	if healed.MTTR <= 0 {
		t.Errorf("recovery MTTR %v, want > 0 (detection + reboot)", healed.MTTR)
	}
	// Goodput accounting stays honest: everything offered is either
	// served or an accounted fault drop.
	if failStop.Images+failStop.FaultDrops != 400 {
		t.Errorf("fail-stop served %d + dropped %d != 400 offered",
			failStop.Images, failStop.FaultDrops)
	}
	if healed.Images != 400 {
		t.Errorf("recovery served %d of 400 (drops: %d)", healed.Images, healed.FaultDrops)
	}
}

// TestResilienceEmptyPlanIsBaseline: with an empty plan, a session
// with full monitoring and recovery enabled reports exactly what the
// unconfigured session reports.
func TestResilienceEmptyPlanIsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience acceptance skipped in -short mode")
	}
	net, blob := resilienceWorkload(t)
	base := resilienceSession(t, net, blob, FaultPlan{}, RecoveryConfig{})
	monitored := resilienceSession(t, net, blob, FaultPlan{}, DefaultRecoveryConfig())
	if base.Images != monitored.Images || base.Throughput != monitored.Throughput {
		t.Errorf("images/throughput differ: %d/%.4f vs %d/%.4f",
			base.Images, base.Throughput, monitored.Images, monitored.Throughput)
	}
	if base.Goodput != monitored.Goodput || base.Latency.P99 != monitored.Latency.P99 {
		t.Errorf("goodput/p99 differ: %.4f/%v vs %.4f/%v",
			base.Goodput, base.Latency.P99, monitored.Goodput, monitored.Latency.P99)
	}
	if base.SimTime != monitored.SimTime || base.EnergyJoules != monitored.EnergyJoules {
		t.Errorf("simtime/energy differ: %v/%.4f vs %v/%.4f",
			base.SimTime, base.EnergyJoules, monitored.SimTime, monitored.EnergyJoules)
	}
	if monitored.Outages != 0 || monitored.Retries != 0 || monitored.FaultDrops != 0 {
		t.Errorf("monitored fault-free run reports availability events: %+v",
			[]int{monitored.Outages, monitored.Retries, monitored.FaultDrops})
	}
}

// TestResilienceDeterministic: a faulted, stochastic, self-healing
// run replays bit for bit — identical injections and identical
// serving outcomes across two sessions.
func TestResilienceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience acceptance skipped in -short mode")
	}
	net, blob := resilienceWorkload(t)
	plan := resiliencePlan
	plan.Processes = []FaultProcess{{
		Devices: []string{"ncs0", "ncs3"},
		Kinds:   []FaultKind{TransientError, Slowdown},
		Rate:    0.5,
		Start:   6 * time.Second,
		End:     12 * time.Second,
	}}
	run := func() *Report {
		return resilienceSession(t, net, blob, plan, DefaultRecoveryConfig())
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.FaultLog.Injections, b.FaultLog.Injections) {
		t.Errorf("injected fault sequences differ:\n%v\nvs\n%v",
			a.FaultLog.Injections, b.FaultLog.Injections)
	}
	if a.Images != b.Images || a.Goodput != b.Goodput ||
		a.Latency.P99 != b.Latency.P99 || a.SimTime != b.SimTime ||
		a.Retries != b.Retries || a.Outages != b.Outages {
		t.Errorf("two identical faulted runs diverge:\n%+v\nvs\n%+v", a, b)
	}
}
