package repro

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
)

// The repository-level benchmarks regenerate every figure of the
// paper's evaluation, one benchmark per artefact, at a CI-friendly
// scale (QuickConfig: 400 images/subset for performance runs, 200 for
// the functional accuracy runs). For paper-scale output use:
//
//	go run ./cmd/ncsw-bench -full
//
// Each benchmark reports the experiment's headline number as a custom
// metric next to the usual ns/op, and logs the full table under -v.

var (
	benchHarness     *bench.Harness
	benchHarnessOnce sync.Once
)

func sharedHarness(b *testing.B) *bench.Harness {
	b.Helper()
	benchHarnessOnce.Do(func() {
		h, err := bench.NewHarness(bench.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchHarness = h
	})
	return benchHarness
}

// metric extracts the leading float of the cell at (rowKey, col).
func metric(b *testing.B, t *bench.Table, rowKey string, col int) float64 {
	b.Helper()
	for _, row := range t.Rows {
		if row[0] != rowKey {
			continue
		}
		var v float64
		cell := row[col]
		if i := strings.IndexAny(cell, " ("); i > 0 {
			cell = cell[:i]
		}
		cell = strings.TrimSuffix(strings.TrimSuffix(cell, "%"), "x")
		if _, err := fmt.Sscan(cell, &v); err != nil {
			b.Fatalf("cell %q: %v", row[col], err)
		}
		return v
	}
	b.Fatalf("table %s has no row %q", t.ID, rowKey)
	return 0
}

func BenchmarkFig6aThroughputPerSubset(b *testing.B) {
	h := sharedHarness(b)
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = h.Fig6a()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(metric(b, tbl, "mean", 3), "vpu-img/s")
	b.ReportMetric(metric(b, tbl, "mean", 1), "cpu-img/s")
	b.ReportMetric(metric(b, tbl, "mean", 2), "gpu-img/s")
	b.Log("\n" + tbl.String())
}

func BenchmarkFig6bBatchScaling(b *testing.B) {
	h := sharedHarness(b)
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = h.Fig6b()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(metric(b, tbl, "8", 6), "vpu-scale-at-8")
	b.ReportMetric(metric(b, tbl, "8", 2), "cpu-scale-at-8")
	b.ReportMetric(metric(b, tbl, "8", 4), "gpu-scale-at-8")
	b.Log("\n" + tbl.String())
}

func BenchmarkFig7aTop1Error(b *testing.B) {
	h := sharedHarness(b)
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = h.Fig7a()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(metric(b, tbl, "mean", 1), "fp32-err-%")
	b.ReportMetric(metric(b, tbl, "mean", 2), "fp16-err-%")
	b.Log("\n" + tbl.String())
}

func BenchmarkFig7bConfidenceDiff(b *testing.B) {
	h := sharedHarness(b)
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = h.Fig7b()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(metric(b, tbl, "mean", 1)*1000, "conf-diff-x1e3")
	b.Log("\n" + tbl.String())
}

func BenchmarkFig8aImagesPerWatt(b *testing.B) {
	h := sharedHarness(b)
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = h.Fig8a()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(metric(b, tbl, "1", 3), "vpu-img/W")
	b.ReportMetric(metric(b, tbl, "8", 1), "cpu-img/W")
	b.ReportMetric(metric(b, tbl, "8", 2), "gpu-img/W")
	b.Log("\n" + tbl.String())
}

func BenchmarkFig8bProjectedThroughput(b *testing.B) {
	h := sharedHarness(b)
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = h.Fig8b()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(metric(b, tbl, "16", 3), "vpu16-img/s")
	b.ReportMetric(metric(b, tbl, "16", 1), "cpu16-img/s")
	b.ReportMetric(metric(b, tbl, "16", 2), "gpu16-img/s")
	b.Log("\n" + tbl.String())
}

func BenchmarkSummaryHeadlines(b *testing.B) {
	h := sharedHarness(b)
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = h.Summary()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}

func BenchmarkAblation(b *testing.B) {
	h := sharedHarness(b)
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = h.Ablation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(metric(b, tbl, "baseline (paper-faithful)", 1), "base-img/s")
	b.ReportMetric(metric(b, tbl, "overlap (2 in flight per stick)", 1), "overlap-img/s")
	b.Log("\n" + tbl.String())
}

func BenchmarkPrecisionAblation(b *testing.B) {
	h := sharedHarness(b)
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = h.PrecisionAblation(150)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}
