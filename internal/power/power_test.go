package power

import (
	"math"
	"testing"
	"time"
)

func TestImagesPerWattPaperPoints(t *testing.T) {
	// §V: "the throughput is 3.97 img/W when using one VPU" — one NCS
	// at 9.93 img/s (100.7 ms/inference) over 2.5 W.
	got := ImagesPerWatt(1/0.1007, NCSStickPeakWatts)
	if math.Abs(got-3.97) > 0.02 {
		t.Errorf("single-VPU img/W = %.3f, paper reports 3.97", got)
	}
	// "The CPU features a theoretical throughput of 0.55 img/W in the
	// last case" — 44.0 img/s over 80 W.
	if got := ImagesPerWatt(44.0, CPUTDPWatts); math.Abs(got-0.55) > 0.005 {
		t.Errorf("CPU img/W = %.3f, paper reports 0.55", got)
	}
	// "The GPU shows similar results, with 0.93 img/W" — 74.2 over 80.
	if got := ImagesPerWatt(74.2, GPUTDPWatts); math.Abs(got-0.9275) > 0.001 {
		t.Errorf("GPU img/W = %.3f, paper reports 0.93", got)
	}
}

func TestTDPReductionHeadline(t *testing.T) {
	// Abstract: multi-VPU reduces TDP "up to 8x" vs the 80 W devices.
	// 8 sticks x 2.5 W = 20 W missing the 8x? The paper's 8x compares
	// 80 W against 8 sticks' aggregate *chip* behaviour; with the
	// stick figure the reduction is 4x, with chip TDP it is 11x. The
	// defensible claim pinned here: aggregate stick TDP of the full
	// 8-VPU testbed stays at least 4x below either baseline.
	agg := MultiVPUTDP(8)
	if CPUTDPWatts/agg < 4 {
		t.Errorf("TDP reduction = %.1fx, want >= 4x", CPUTDPWatts/agg)
	}
	// And chip-only TDP (the number the abstract quotes against one
	// device) gives > 8x for a single VPU.
	if CPUTDPWatts/VPUChipTDPWatts < 8 {
		t.Errorf("chip TDP ratio = %.1fx, want > 8x", CPUTDPWatts/VPUChipTDPWatts)
	}
}

func TestImagesPerWattPanics(t *testing.T) {
	for _, f := range []func(){
		func() { ImagesPerWatt(1, 0) },
		func() { ImagesPerWatt(-1, 10) },
		func() { MultiVPUTDP(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMeterIntegration(t *testing.T) {
	m := NewMeter("ncs0", 1.0)
	m.SetPower(2*time.Second, 2.5)        // 2 s at 1.0 W = 2 J
	m.SetPower(4*time.Second, 1.0)        // 2 s at 2.5 W = 5 J
	j := m.EnergyJoules(10 * time.Second) // 6 s at 1.0 W = 6 J
	if math.Abs(j-13) > 1e-9 {
		t.Errorf("energy = %g J, want 13", j)
	}
	if p := m.AveragePowerWatts(10 * time.Second); math.Abs(p-1.3) > 1e-9 {
		t.Errorf("avg power = %g W, want 1.3", p)
	}
	if m.PeakWatts() != 2.5 {
		t.Errorf("peak = %g", m.PeakWatts())
	}
	if m.Name() != "ncs0" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestMeterMonotonicTime(t *testing.T) {
	m := NewMeter("x", 1)
	m.SetPower(5*time.Second, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on time reversal")
		}
	}()
	m.SetPower(time.Second, 1)
}

func TestMeterZeroTime(t *testing.T) {
	m := NewMeter("x", 3)
	if m.AveragePowerWatts(0) != 0 {
		t.Error("avg power at t=0 should be 0")
	}
	if m.EnergyJoules(0) != 0 {
		t.Error("energy at t=0 should be 0")
	}
}

func TestMeterValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewMeter("x", -1) },
		func() { NewMeter("x", 1).SetPower(0, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
