// Package power implements the paper's §V power methodology: thermal
// design power (TDP) figures for each device and the throughput-per-
// Watt metric of Eq. (1),
//
//	Throughput/Watt = (images · second⁻¹) / TDP,
//
// plus an energy meter that integrates simulated busy/idle power over
// virtual time — the "actual power measurement" the paper defers to
// future work, available here because the devices are simulated.
package power

import (
	"fmt"
	"time"
)

// TDP values used throughout the paper's §V analysis.
const (
	// CPUTDPWatts is the Intel Xeon E5-2609v2's rated TDP.
	CPUTDPWatts = 80.0
	// GPUTDPWatts is the NVIDIA Quadro K4000's rated TDP.
	GPUTDPWatts = 80.0
	// VPUChipTDPWatts is the Myriad 2 chip's TDP.
	VPUChipTDPWatts = 0.9
	// NCSStickPeakWatts is the full Neural Compute Stick's estimated
	// peak consumption (RISC cores, DDR, USB interface included); the
	// paper's Fig. 8a uses this per-stick figure.
	NCSStickPeakWatts = 2.5
)

// ImagesPerWatt evaluates Eq. (1). It panics on a non-positive TDP:
// TDP tables are static and a bad entry is a programming error.
func ImagesPerWatt(imagesPerSecond, tdpWatts float64) float64 {
	if tdpWatts <= 0 {
		panic(fmt.Sprintf("power: non-positive TDP %g", tdpWatts))
	}
	if imagesPerSecond < 0 {
		panic(fmt.Sprintf("power: negative throughput %g", imagesPerSecond))
	}
	return imagesPerSecond / tdpWatts
}

// MultiVPUTDP returns the aggregate TDP of n NCS sticks, the
// denominator the paper uses for multi-VPU points in Fig. 8a.
func MultiVPUTDP(n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("power: %d sticks", n))
	}
	return float64(n) * NCSStickPeakWatts
}

// Meter integrates a device's power over virtual time through
// piecewise-constant power states. Models call SetPower at state
// transitions; the meter accumulates joules between transitions.
type Meter struct {
	name   string
	now    time.Duration
	watts  float64
	joules float64
	peak   float64
}

// NewMeter creates a meter starting at t=0 in the given state.
func NewMeter(name string, idleWatts float64) *Meter {
	if idleWatts < 0 {
		panic("power: negative idle power")
	}
	return &Meter{name: name, watts: idleWatts, peak: idleWatts}
}

// Name returns the meter's device name.
func (m *Meter) Name() string { return m.name }

// SetPower records a state transition at virtual time t to the given
// draw. t must not move backwards.
func (m *Meter) SetPower(t time.Duration, watts float64) {
	if watts < 0 {
		panic("power: negative power")
	}
	m.advance(t)
	m.watts = watts
	if watts > m.peak {
		m.peak = watts
	}
}

func (m *Meter) advance(t time.Duration) {
	if t < m.now {
		panic(fmt.Sprintf("power: meter %q time went backwards (%v < %v)", m.name, t, m.now))
	}
	m.joules += m.watts * (t - m.now).Seconds()
	m.now = t
}

// EnergyJoules returns the integral of power through time t.
func (m *Meter) EnergyJoules(t time.Duration) float64 {
	m.advance(t)
	return m.joules
}

// AveragePowerWatts returns energy/time through time t (0 at t=0).
func (m *Meter) AveragePowerWatts(t time.Duration) float64 {
	j := m.EnergyJoules(t)
	if t <= 0 {
		return 0
	}
	return j / t.Seconds()
}

// PeakWatts returns the highest power state seen.
func (m *Meter) PeakWatts() float64 { return m.peak }
