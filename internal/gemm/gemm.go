// Package gemm implements the blocked, goroutine-parallel single
// precision matrix multiply that backs every convolution (via im2col)
// and fully connected layer in the inference engine.
//
// The paper's CPU baseline is Caffe linked against Intel MKL; this
// package is the stdlib-only stand-in. It is not competitive with MKL,
// but it is cache-blocked, parallel and deterministic, which is what
// the functional experiments (Fig. 7) need: the *timing* of each
// device comes from the calibrated models in internal/devsim and
// internal/vpu, never from wall-clock measurements of this kernel.
package gemm

import (
	"runtime"
	"sync"
)

// Block sizes tuned for typical L1/L2 sizes; correctness does not
// depend on them (tests sweep odd sizes around the boundaries).
const (
	blockM = 64
	blockN = 64
	blockK = 256
)

// Parallelism caps the number of worker goroutines. It defaults to
// GOMAXPROCS and exists so tests and single-threaded experiments can
// pin it.
var parallelism = runtime.GOMAXPROCS(0)

// SetParallelism sets the worker cap for subsequent calls and returns
// the previous value. n < 1 resets to GOMAXPROCS.
func SetParallelism(n int) int {
	old := parallelism
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	parallelism = n
	return old
}

// Mul computes C = A·B for row-major matrices: A is m×k, B is k×n and
// C is m×n. C is fully overwritten. It panics when the slice lengths
// do not match the stated dimensions.
func Mul(c, a, b []float32, m, k, n int) {
	if m < 0 || k < 0 || n < 0 {
		panic("gemm: negative dimension")
	}
	if m == 0 || n == 0 {
		return
	}
	if len(c) < m*n {
		panic("gemm: buffer too small for stated dimensions")
	}
	clear(c[:m*n])
	if k == 0 {
		return
	}
	if len(a) < m*k || len(b) < k*n {
		panic("gemm: buffer too small for stated dimensions")
	}

	// Parallelize over row blocks of C; each worker owns disjoint rows
	// so no synchronization is needed inside the kernel.
	nBlocks := (m + blockM - 1) / blockM
	workers := parallelism
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 || m*n*k < 1<<15 {
		mulRows(c, a, b, 0, m, k, n)
		return
	}

	var wg sync.WaitGroup
	next := make(chan int, nBlocks)
	for i := 0; i < nBlocks; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for blk := range next {
				i0 := blk * blockM
				i1 := i0 + blockM
				if i1 > m {
					i1 = m
				}
				mulRows(c, a, b, i0, i1, k, n)
			}
		}()
	}
	wg.Wait()
}

// mulRows computes rows [i0, i1) of C with k/n cache blocking.
func mulRows(c, a, b []float32, i0, i1, k, n int) {
	for kk := 0; kk < k; kk += blockK {
		kMax := kk + blockK
		if kMax > k {
			kMax = k
		}
		for jj := 0; jj < n; jj += blockN {
			jMax := jj + blockN
			if jMax > n {
				jMax = n
			}
			for i := i0; i < i1; i++ {
				arow := a[i*k:]
				crow := c[i*n:]
				for kx := kk; kx < kMax; kx++ {
					av := arow[kx]
					if av == 0 {
						continue
					}
					brow := b[kx*n:]
					for j := jj; j < jMax; j++ {
						crow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// MulAddBias computes C = A·B then adds bias[j] to every element of
// column j. This fuses the ubiquitous conv/FC bias step.
func MulAddBias(c, a, b, bias []float32, m, k, n int) {
	if len(bias) < n {
		panic("gemm: bias shorter than n")
	}
	Mul(c, a, b, m, k, n)
	for i := 0; i < m; i++ {
		row := c[i*n : i*n+n]
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// MatVec computes y = A·x for a row-major m×k matrix. It is the
// degenerate n=1 GEMM used by fully connected layers at batch 1.
func MatVec(y, a, x []float32, m, k int) {
	if len(a) < m*k || len(x) < k || len(y) < m {
		panic("gemm: MatVec buffer too small")
	}
	for i := 0; i < m; i++ {
		row := a[i*k : i*k+k]
		var acc float32
		for j, v := range row {
			acc += v * x[j]
		}
		y[i] = acc
	}
}
