package gemm

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// mulNaive is the reference implementation the blocked kernel is
// checked against.
func mulNaive(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for x := 0; x < k; x++ {
				acc += float64(a[i*k+x]) * float64(b[x*n+j])
			}
			c[i*n+j] = float32(acc)
		}
	}
}

func randMat(src *rng.Source, n int) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = src.NormFloat32()
	}
	return m
}

func maxDiff(a, b []float32) float64 {
	var d float64
	for i := range a {
		v := math.Abs(float64(a[i]) - float64(b[i]))
		if v > d {
			d = v
		}
	}
	return d
}

func TestMulIdentity(t *testing.T) {
	n := 7
	id := make([]float32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	a := randMat(rng.New(1), n*n)
	c := make([]float32, n*n)
	Mul(c, a, id, n, n, n)
	if maxDiff(c, a) != 0 {
		t.Error("A·I != A")
	}
	Mul(c, id, a, n, n, n)
	if maxDiff(c, a) != 0 {
		t.Error("I·A != A")
	}
}

func TestMulKnown(t *testing.T) {
	// (1 2; 3 4) · (5 6; 7 8) = (19 22; 43 50)
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := make([]float32, 4)
	Mul(c, a, b, 2, 2, 2)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

func TestMulRectangular(t *testing.T) {
	src := rng.New(2)
	for _, dims := range [][3]int{
		{1, 1, 1}, {3, 5, 7}, {65, 67, 63}, {128, 256, 64}, {1, 300, 1},
		{blockM + 1, blockK + 1, blockN + 1}, {2 * blockM, 10, 2 * blockN},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a := randMat(src, m*k)
			b := randMat(src, k*n)
			got := make([]float32, m*n)
			want := make([]float32, m*n)
			Mul(got, a, b, m, k, n)
			mulNaive(want, a, b, m, k, n)
			// Blocked accumulation reorders sums; allow small tolerance
			// scaled by the reduction length.
			tol := 1e-5 * math.Sqrt(float64(k))
			if d := maxDiff(got, want); d > tol {
				t.Errorf("max diff %g > %g", d, tol)
			}
		})
	}
}

func TestMulOverwritesC(t *testing.T) {
	a := []float32{1, 0, 0, 1}
	c := []float32{99, 99, 99, 99}
	Mul(c, a, a, 2, 2, 2)
	want := []float32{1, 0, 0, 1}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("stale C contents leaked: %v", c)
		}
	}
}

func TestMulZeroDims(t *testing.T) {
	// m==0 and n==0 are no-ops; k==0 zeroes C.
	c := []float32{5, 5}
	Mul(c, nil, nil, 0, 3, 2)
	Mul(c, nil, nil, 1, 3, 0)
	if c[0] != 5 {
		t.Error("m/n==0 should not touch C")
	}
	Mul(c, nil, nil, 1, 0, 2)
	if c[0] != 0 || c[1] != 0 {
		t.Error("k==0 should zero C")
	}
}

func TestMulPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Mul(make([]float32, 1), make([]float32, 1), make([]float32, 1), 2, 2, 2) },
		func() { Mul(nil, nil, nil, -1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	src := rng.New(3)
	m, k, n := 200, 150, 170
	a := randMat(src, m*k)
	b := randMat(src, k*n)

	serial := make([]float32, m*n)
	old := SetParallelism(1)
	Mul(serial, a, b, m, k, n)

	parallel := make([]float32, m*n)
	SetParallelism(8)
	Mul(parallel, a, b, m, k, n)
	SetParallelism(old)

	// Identical blocking => identical FP order => identical bits.
	if d := maxDiff(serial, parallel); d != 0 {
		t.Errorf("parallel result differs from serial by %g; determinism requires bit equality", d)
	}
}

func TestSetParallelism(t *testing.T) {
	old := SetParallelism(4)
	if got := SetParallelism(0); got != 4 {
		t.Errorf("previous parallelism = %d, want 4", got)
	}
	SetParallelism(old)
}

func TestMulAddBias(t *testing.T) {
	a := []float32{1, 0, 0, 1}
	b := []float32{2, 3, 4, 5}
	bias := []float32{10, 20}
	c := make([]float32, 4)
	MulAddBias(c, a, b, bias, 2, 2, 2)
	want := []float32{12, 23, 14, 25}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("short bias should panic")
		}
	}()
	MulAddBias(c, a, b, bias[:1], 2, 2, 2)
}

func TestMatVec(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6} // 2x3
	x := []float32{1, 0, -1}
	y := make([]float32, 2)
	MatVec(y, a, x, 2, 3)
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("y = %v, want [-2 -2]", y)
	}
	defer func() {
		if recover() == nil {
			t.Error("short buffer should panic")
		}
	}()
	MatVec(y[:1], a, x, 2, 3)
}

// Property: Mul agrees with the naive reference on random small shapes.
func TestQuickMulMatchesNaive(t *testing.T) {
	f := func(seed uint64, mr, kr, nr uint8) bool {
		m := int(mr)%12 + 1
		k := int(kr)%12 + 1
		n := int(nr)%12 + 1
		src := rng.New(seed)
		a := randMat(src, m*k)
		b := randMat(src, k*n)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		Mul(got, a, b, m, k, n)
		mulNaive(want, a, b, m, k, n)
		return maxDiff(got, want) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Mul is linear in A — (αA)·B == α(A·B).
func TestQuickMulLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		m, k, n := 5, 6, 4
		a := randMat(src, m*k)
		b := randMat(src, k*n)
		c1 := make([]float32, m*n)
		Mul(c1, a, b, m, k, n)
		a2 := make([]float32, len(a))
		for i := range a {
			a2[i] = 2 * a[i]
		}
		c2 := make([]float32, m*n)
		Mul(c2, a2, b, m, k, n)
		for i := range c1 {
			if math.Abs(float64(c2[i]-2*c1[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul256(b *testing.B) {
	src := rng.New(1)
	n := 256
	x := randMat(src, n*n)
	y := randMat(src, n*n)
	c := make([]float32, n*n)
	b.SetBytes(int64(2 * n * n * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(c, x, y, n, n, n)
	}
}

func BenchmarkMulConvShape(b *testing.B) {
	// The 3x3 conv reduction of GoogLeNet's conv2: 192x(64*9) times
	// (64*9)x(56*56) — the canonical im2col GEMM shape.
	src := rng.New(2)
	m, k, n := 192, 576, 3136
	x := randMat(src, m*k)
	y := randMat(src, k*n)
	c := make([]float32, m*n)
	b.SetBytes(int64(2 * m * k * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(c, x, y, m, k, n)
	}
}
