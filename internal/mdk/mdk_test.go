package mdk

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/vpu"
)

func TestPlanValidation(t *testing.T) {
	cfg := vpu.DefaultConfig()
	if _, err := NewPlan(cfg, 0, 4, 4, 16, 16, FP32); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewPlan(cfg, 4, 4, 4, 0, 16, FP32); err == nil {
		t.Error("tile 0 accepted")
	}
	// A tile that cannot fit CMX (2 MB): 1024x1024 fp32 C tile alone
	// is 4 MB.
	if _, err := NewPlan(cfg, 2048, 2048, 2048, 1024, 1024, FP32); err == nil {
		t.Error("oversized tile accepted")
	}
}

func TestTilesClampToProblem(t *testing.T) {
	cfg := vpu.DefaultConfig()
	p, err := NewPlan(cfg, 8, 8, 8, 256, 256, FP32)
	if err != nil {
		t.Fatal(err)
	}
	if p.TileM != 8 || p.TileN != 8 {
		t.Errorf("tiles not clamped: %dx%d", p.TileM, p.TileN)
	}
}

func TestGoodTilingIsComputeBound(t *testing.T) {
	cfg := vpu.DefaultConfig()
	good, err := NewPlan(cfg, 512, 512, 512, 128, 128, FP16)
	if err != nil {
		t.Fatal(err)
	}
	if good.Bound != "compute" {
		t.Errorf("128x128 tiling is %s-bound; CMX tiling should make GEMM compute-bound", good.Bound)
	}
	bad, err := NewPlan(cfg, 512, 512, 512, 16, 16, FP16)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Bound != "memory" {
		t.Errorf("16x16 tiling is %s-bound; tiny tiles should be memory-bound", bad.Bound)
	}
	if bad.Duration <= good.Duration {
		t.Errorf("tiny tiles (%v) should be slower than good tiles (%v)", bad.Duration, good.Duration)
	}
	if bad.TrafficBytes <= good.TrafficBytes {
		t.Error("tiny tiles should produce more DDR traffic")
	}
}

func TestGflopsInIonicaRange(t *testing.T) {
	// §VI: Ionica & Gregg report GEMM Gflops and Gflops/W on Myriad.
	// The Myriad 2 fp16 peak is 115.2 Gflops; a well-tiled large GEMM
	// at 75% efficiency should land near 86 Gflops and ~96 Gflops/W
	// at the chip's 0.9 W — an order of magnitude beyond the CPU
	// baseline's ~1.8 Gflops/W.
	cfg := vpu.DefaultConfig()
	p, err := BestTiling(cfg, 1024, 1024, 1024, FP16)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Gflops()
	if g < 60 || g > 115 {
		t.Errorf("fp16 GEMM = %.1f Gflops, expected ~86", g)
	}
	gpw := p.GflopsPerWatt()
	if gpw < 60 || gpw > 130 {
		t.Errorf("fp16 GEMM = %.1f Gflops/W, expected ~96", gpw)
	}
	// CPU comparison: 160 Gflops peak at 80 W TDP = 2 Gflops/W. The
	// VPU must be >20x better.
	cpuGpw := 160.0 * 0.905 / 80
	if gpw/cpuGpw < 20 {
		t.Errorf("VPU %.1f Gflops/W only %.1fx the CPU's %.2f", gpw, gpw/cpuGpw, cpuGpw)
	}
}

func TestFP32HalvesThroughput(t *testing.T) {
	cfg := vpu.DefaultConfig()
	p16, err := BestTiling(cfg, 512, 512, 512, FP16)
	if err != nil {
		t.Fatal(err)
	}
	p32, err := BestTiling(cfg, 512, 512, 512, FP32)
	if err != nil {
		t.Fatal(err)
	}
	r := p16.Gflops() / p32.Gflops()
	if r < 1.8 || r > 2.2 {
		t.Errorf("fp16/fp32 ratio = %.2f, want ~2 (VAU lane width)", r)
	}
}

func TestExecuteFunctional(t *testing.T) {
	cfg := vpu.DefaultConfig()
	m, k, n := 16, 24, 12
	p, err := NewPlan(cfg, m, k, n, 16, 16, FP32)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = src.NormFloat32()
	}
	for i := range b {
		b[i] = src.NormFloat32()
	}
	c := make([]float32, m*n)
	if err := p.Execute(c, a, b); err != nil {
		t.Fatal(err)
	}
	// Check one element against a direct dot product.
	var want float64
	for x := 0; x < k; x++ {
		want += float64(a[3*k+x]) * float64(b[x*n+5])
	}
	if math.Abs(float64(c[3*n+5])-want) > 1e-4 {
		t.Errorf("c[3,5] = %g, want %g", c[3*n+5], want)
	}
	if err := p.Execute(c[:1], a, b); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestExecuteFP16Rounds(t *testing.T) {
	cfg := vpu.DefaultConfig()
	m, k, n := 8, 8, 8
	p, err := NewPlan(cfg, m, k, n, 16, 16, FP16)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = 0.1 // not FP16-exact
	}
	for i := range b {
		b[i] = 1
	}
	c := make([]float32, m*n)
	if err := p.Execute(c, a, b); err != nil {
		t.Fatal(err)
	}
	// 8 * round16(0.1): the rounding must show vs exact 0.8.
	exact := float32(0.8)
	if c[0] == exact {
		t.Error("fp16 execute produced the exact fp32 result; rounding missing")
	}
	if math.Abs(float64(c[0]-exact)) > 1e-3 {
		t.Errorf("fp16 result %g too far from %g", c[0], exact)
	}
}

func TestBestTilingPrefersLargerTiles(t *testing.T) {
	cfg := vpu.DefaultConfig()
	p, err := BestTiling(cfg, 1024, 1024, 1024, FP32)
	if err != nil {
		t.Fatal(err)
	}
	if p.TileM < 64 || p.TileN < 64 {
		t.Errorf("best tiling %dx%d suspiciously small", p.TileM, p.TileN)
	}
	if p.Bound != "compute" {
		t.Errorf("best tiling should be compute-bound, got %s", p.Bound)
	}
	// No valid tiling on an impossibly small CMX.
	tiny := cfg
	tiny.CMXBytes = 256
	if _, err := BestTiling(tiny, 1024, 1024, 1024, FP32); err == nil {
		t.Error("256-byte CMX accepted")
	}
}

func TestDTypeString(t *testing.T) {
	if FP32.String() != "fp32" || FP16.String() != "fp16" {
		t.Error("DType.String")
	}
}

func BenchmarkExecute256(b *testing.B) {
	cfg := vpu.DefaultConfig()
	n := 256
	p, err := NewPlan(cfg, n, n, n, 128, 128, FP32)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	a := make([]float32, n*n)
	bb := make([]float32, n*n)
	for i := range a {
		a[i] = src.NormFloat32()
		bb[i] = src.NormFloat32()
	}
	c := make([]float32, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Execute(c, a, bb); err != nil {
			b.Fatal(err)
		}
	}
}
