// Package mdk models the Movidius Development Kit path the paper
// points at for future work (§II-B, §VII): using the Myriad 2 as a
// conventional vector processor for general-purpose computing through
// the MDK's optimized libraries (LAMA, the linear algebra library).
// The concrete workload is the one the related work measures (Ionica &
// Gregg's custom GEMM with CMX tiling, §VI): a blocked matrix multiply
// whose tiles live in the 2 MB CMX scratchpad while panels stream from
// LPDDR3, reported in Gflops and Gflops/W.
//
// As everywhere in this reproduction, the functional computation is
// real (the host executes the GEMM) while the timing comes from the
// calibrated device model: compute time from the SHAVE array's
// effective MAC rate, memory time from the DDR traffic the chosen
// tiling implies. Bad tilings are visibly memory-bound, good ones
// compute-bound — the effect CMX tiling exists to produce.
package mdk

import (
	"fmt"
	"time"

	"repro/internal/gemm"
	"repro/internal/half"
	"repro/internal/vpu"
)

// DType selects the arithmetic width of a GEMM plan.
type DType int

const (
	// FP32 runs single precision (4 lanes per SHAVE VAU).
	FP32 DType = iota
	// FP16 runs half precision (8 lanes, the headline rate).
	FP16
)

// String names the dtype.
func (d DType) String() string {
	if d == FP16 {
		return "fp16"
	}
	return "fp32"
}

func (d DType) bytes() int {
	if d == FP16 {
		return 2
	}
	return 4
}

// gemmEfficiency is the fraction of peak the hand-tiled LAMA kernels
// sustain on large GEMM — dense matrix multiply schedules much better
// on the VLIW pipeline than im2col convolution (cf. the 0.34 the
// inference engine is calibrated at).
const gemmEfficiency = 0.75

// Plan is a validated tiled-GEMM execution plan with its cost
// breakdown on the modelled chip.
type Plan struct {
	M, K, N      int
	TileM, TileN int
	DType        DType
	cfg          vpu.Config

	// Cost breakdown.
	ComputeTime  time.Duration
	MemoryTime   time.Duration
	Duration     time.Duration
	TrafficBytes int64
	Bound        string // "compute" or "memory"
}

// NewPlan validates a tiling for C = A·B (A is m×k, B is k×n) on the
// given chip and prices it. The C tile (tileM×tileN) plus one A panel
// column block and one B panel row block must fit in CMX.
func NewPlan(cfg vpu.Config, m, k, n, tileM, tileN int, dt DType) (*Plan, error) {
	if m <= 0 || k <= 0 || n <= 0 {
		return nil, fmt.Errorf("mdk: invalid GEMM dimensions %dx%dx%d", m, k, n)
	}
	if tileM <= 0 || tileN <= 0 {
		return nil, fmt.Errorf("mdk: invalid tile %dx%d", tileM, tileN)
	}
	if tileM > m {
		tileM = m
	}
	if tileN > n {
		tileN = n
	}
	eb := dt.bytes()
	// CMX residency: the C tile accumulates in CMX; A and B stream
	// through double-buffered panel strips of depth panelK.
	const panelK = 64
	kk := min(panelK, k)
	footprint := (tileM*tileN + 2*(tileM*kk+kk*tileN)) * eb
	if footprint > cfg.CMXBytes {
		return nil, fmt.Errorf("mdk: tile %dx%d needs %d bytes of CMX, chip has %d",
			tileM, tileN, footprint, cfg.CMXBytes)
	}

	lanes := cfg.LanesFP16
	if dt == FP32 {
		lanes /= 2 // the 128-bit VAU holds half as many fp32 lanes
	}
	peakMACs := float64(cfg.NumSHAVEs*lanes) * cfg.ClockHz * gemmEfficiency
	macs := float64(m) * float64(k) * float64(n)
	computeSec := macs / peakMACs

	// DDR traffic: every A panel is re-read once per column of C
	// tiles, every B panel once per row of C tiles, plus writing C.
	tilesM := (m + tileM - 1) / tileM
	tilesN := (n + tileN - 1) / tileN
	trafficElems := int64(m)*int64(k)*int64(tilesN) +
		int64(k)*int64(n)*int64(tilesM) +
		int64(m)*int64(n)
	traffic := trafficElems * int64(eb)
	memSec := float64(traffic) / cfg.DDRBandwidth

	p := &Plan{
		M: m, K: k, N: n,
		TileM: tileM, TileN: tileN,
		DType:        dt,
		cfg:          cfg,
		ComputeTime:  time.Duration(computeSec * float64(time.Second)),
		MemoryTime:   time.Duration(memSec * float64(time.Second)),
		TrafficBytes: traffic,
	}
	if p.ComputeTime >= p.MemoryTime {
		p.Duration = p.ComputeTime
		p.Bound = "compute"
	} else {
		p.Duration = p.MemoryTime
		p.Bound = "memory"
	}
	return p, nil
}

// Gflops returns the plan's modelled throughput (2 flops per MAC).
func (p *Plan) Gflops() float64 {
	return 2 * float64(p.M) * float64(p.K) * float64(p.N) / p.Duration.Seconds() / 1e9
}

// GflopsPerWatt divides Gflops by the chip's active power — the metric
// Ionica & Gregg report (estimated through the TDP).
func (p *Plan) GflopsPerWatt() float64 {
	return p.Gflops() / p.cfg.ActivePowerW
}

// Execute computes C = A·B functionally: row-major A (m×k), B (k×n),
// C (m×n). FP16 plans round inputs through binary16 first and the
// result after, mirroring what the chip's half-precision path returns.
// Virtual time is the caller's concern (use Duration).
func (p *Plan) Execute(c, a, b []float32) error {
	if len(a) < p.M*p.K || len(b) < p.K*p.N || len(c) < p.M*p.N {
		return fmt.Errorf("mdk: buffers too small for %dx%dx%d", p.M, p.K, p.N)
	}
	if p.DType == FP16 {
		ar := half.Rounded(a[:p.M*p.K])
		br := half.Rounded(b[:p.K*p.N])
		gemm.Mul(c, ar, br, p.M, p.K, p.N)
		half.RoundSlice(c[:p.M*p.N])
		return nil
	}
	gemm.Mul(c, a, b, p.M, p.K, p.N)
	return nil
}

// BestTiling searches power-of-two tiles for the fastest valid plan.
func BestTiling(cfg vpu.Config, m, k, n int, dt DType) (*Plan, error) {
	var best *Plan
	for tm := 16; tm <= 1024; tm *= 2 {
		for tn := 16; tn <= 1024; tn *= 2 {
			p, err := NewPlan(cfg, m, k, n, tm, tn, dt)
			if err != nil {
				continue
			}
			if best == nil || p.Duration < best.Duration {
				best = p
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("mdk: no valid tiling for %dx%dx%d in %d bytes of CMX", m, k, n, cfg.CMXBytes)
	}
	return best, nil
}
