// Package tensor implements the dense NCHW float32 tensors that flow
// through the inference engine. It deliberately stores a single dtype:
// the FP16 execution mode of the engine is modelled by rounding every
// element through binary16 (see internal/half), which keeps one code
// path for both the CPU (FP32) and VPU (FP16) targets — the comparison
// at the heart of the paper's Fig. 7.
package tensor

import (
	"fmt"

	"repro/internal/half"
)

// Shape describes tensor dimensions, outermost first. The inference
// engine uses NCHW (batch, channels, height, width) for activations,
// (outC, inC, kH, kW) for convolution weights, and 1-D shapes for
// biases.
type Shape []int

// Elems returns the number of elements the shape spans.
func (s Shape) Elems() int {
	if len(s) == 0 {
		return 0
	}
	n := 1
	for _, d := range s {
		if d <= 0 {
			return 0
		}
		n *= d
	}
	return n
}

// Equal reports whether s and o have identical dimensions.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of s.
func (s Shape) Clone() Shape { return append(Shape(nil), s...) }

// String formats the shape as, e.g., "(1, 3, 224, 224)".
func (s Shape) String() string {
	out := "("
	for i, d := range s {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprint(d)
	}
	return out + ")"
}

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool {
	if len(s) == 0 {
		return false
	}
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// T is a dense tensor: a shape plus a flat float32 buffer in row-major
// (C-contiguous) order.
type T struct {
	ShapeOf Shape
	Data    []float32
}

// New allocates a zero tensor of the given shape. It panics on an
// invalid shape: shapes are static properties of the network graph and
// an invalid one is a programming error.
func New(shape ...int) *T {
	s := Shape(shape)
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &T{ShapeOf: s.Clone(), Data: make([]float32, s.Elems())}
}

// FromSlice wraps data in a tensor of the given shape. The slice is
// used directly (not copied); its length must match the shape.
func FromSlice(data []float32, shape ...int) *T {
	s := Shape(shape)
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	if len(data) != s.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)",
			len(data), s, s.Elems()))
	}
	return &T{ShapeOf: s.Clone(), Data: data}
}

// Clone returns a deep copy of t.
func (t *T) Clone() *T {
	c := &T{ShapeOf: t.ShapeOf.Clone(), Data: make([]float32, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Elems returns the element count.
func (t *T) Elems() int { return len(t.Data) }

// Dim returns dimension i of the shape.
func (t *T) Dim(i int) int { return t.ShapeOf[i] }

// Rank returns the number of dimensions.
func (t *T) Rank() int { return len(t.ShapeOf) }

// Reshape returns a view of t with a new shape spanning the same
// number of elements. The data buffer is shared.
func (t *T) Reshape(shape ...int) *T {
	s := Shape(shape)
	if s.Elems() != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes element count", t.ShapeOf, s))
	}
	return &T{ShapeOf: s.Clone(), Data: t.Data}
}

// At reads the element at the given multi-index.
func (t *T) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set writes the element at the given multi-index.
func (t *T) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *T) offset(idx []int) int {
	if len(idx) != len(t.ShapeOf) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.ShapeOf)))
	}
	off := 0
	for i, ix := range idx {
		d := t.ShapeOf[i]
		if ix < 0 || ix >= d {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", ix, i, d))
		}
		off = off*d + ix
	}
	return off
}

// Fill sets every element to v.
func (t *T) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero resets every element to 0.
func (t *T) Zero() {
	clear(t.Data)
}

// Scale multiplies every element by f in place.
func (t *T) Scale(f float32) {
	for i := range t.Data {
		t.Data[i] *= f
	}
}

// AddScalar adds f to every element in place.
func (t *T) AddScalar(f float32) {
	for i := range t.Data {
		t.Data[i] += f
	}
}

// Add accumulates o into t elementwise. Shapes must match.
func (t *T) Add(o *T) {
	if !t.ShapeOf.Equal(o.ShapeOf) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", t.ShapeOf, o.ShapeOf))
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
}

// ArgMax returns the flat index of the largest element and its value.
// For the classifier output this is the top-1 prediction.
func (t *T) ArgMax() (int, float32) {
	best, bv := 0, t.Data[0]
	for i, v := range t.Data[1:] {
		if v > bv {
			best, bv = i+1, v
		}
	}
	return best, bv
}

// Sum returns the sum of all elements (float64 accumulator).
func (t *T) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// QuantizeFP16 rounds every element through binary16 in place,
// making t an exactly-representable FP16 tensor (stored as float32).
func (t *T) QuantizeFP16() {
	half.RoundSlice(t.Data)
}

// IsFP16Exact reports whether every element is exactly representable
// in binary16, i.e. whether QuantizeFP16 would be a no-op.
func (t *T) IsFP16Exact() bool {
	for _, v := range t.Data {
		if half.FromFloat32(v).Float32() != v {
			return false
		}
	}
	return true
}

// String gives a compact description (shape only; tensors are large).
func (t *T) String() string {
	return fmt.Sprintf("tensor%v", t.ShapeOf)
}
