package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/half"
	"repro/internal/rng"
)

func TestShapeElems(t *testing.T) {
	cases := []struct {
		s    Shape
		want int
	}{
		{Shape{1, 3, 224, 224}, 150528},
		{Shape{8}, 8},
		{Shape{}, 0},
		{Shape{2, 0, 3}, 0},
		{Shape{2, -1}, 0},
	}
	for _, c := range cases {
		if got := c.s.Elems(); got != c.want {
			t.Errorf("Elems(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestShapeEqualCloneString(t *testing.T) {
	a := Shape{1, 2, 3}
	if !a.Equal(Shape{1, 2, 3}) {
		t.Error("Equal(same) = false")
	}
	if a.Equal(Shape{1, 2}) || a.Equal(Shape{1, 2, 4}) {
		t.Error("Equal(different) = true")
	}
	c := a.Clone()
	c[0] = 9
	if a[0] == 9 {
		t.Error("Clone aliases")
	}
	if a.String() != "(1, 2, 3)" {
		t.Errorf("String = %q", a.String())
	}
	empty, zero := Shape{}, Shape{0}
	if !a.Valid() || empty.Valid() || zero.Valid() {
		t.Error("Valid wrong")
	}
}

func TestNewAndAccess(t *testing.T) {
	x := New(2, 3, 4)
	if x.Elems() != 24 || x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatal("basic metadata wrong")
	}
	x.Set(7.5, 1, 2, 3)
	if x.At(1, 2, 3) != 7.5 {
		t.Error("Set/At round trip failed")
	}
	// Flat layout: offset of (1,2,3) in 2x3x4 is 1*12+2*4+3 = 23.
	if x.Data[23] != 7.5 {
		t.Error("row-major layout violated")
	}
}

func TestNewInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(3, 0)
}

func TestAtBoundsPanics(t *testing.T) {
	x := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("index %v should panic", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	x := FromSlice(d, 2, 3)
	if x.At(1, 2) != 6 {
		t.Error("FromSlice layout wrong")
	}
	d[0] = 99
	if x.At(0, 0) != 99 {
		t.Error("FromSlice must not copy")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	FromSlice(d, 7)
}

func TestCloneIndependence(t *testing.T) {
	x := New(2, 2)
	x.Fill(1)
	y := x.Clone()
	y.Set(5, 0, 0)
	if x.At(0, 0) != 1 {
		t.Error("Clone shares data")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	x.Set(3, 1, 0) // flat index 6
	y := x.Reshape(3, 4)
	if y.At(1, 2) != 3 { // flat index 6
		t.Error("Reshape changed layout")
	}
	y.Set(8, 0, 0)
	if x.At(0, 0) != 8 {
		t.Error("Reshape must share the buffer")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad reshape should panic")
		}
	}()
	x.Reshape(5, 5)
}

func TestElementwiseOps(t *testing.T) {
	x := New(4)
	x.Fill(2)
	x.Scale(3)
	x.AddScalar(1)
	for i := range x.Data {
		if x.Data[i] != 7 {
			t.Fatalf("expected 7, got %g", x.Data[i])
		}
	}
	y := New(4)
	y.Fill(3)
	x.Add(y)
	if x.Data[0] != 10 {
		t.Error("Add wrong")
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Error("Zero wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch Add should panic")
		}
	}()
	x.Add(New(5))
}

func TestArgMax(t *testing.T) {
	x := FromSlice([]float32{0.1, 0.9, 0.3, 0.9}, 4)
	i, v := x.ArgMax()
	if i != 1 || v != 0.9 {
		t.Errorf("ArgMax = (%d, %g), want first maximum (1, 0.9)", i, v)
	}
	neg := FromSlice([]float32{-3, -1, -2}, 3)
	if i, _ := neg.ArgMax(); i != 1 {
		t.Error("ArgMax on negatives wrong")
	}
}

func TestQuantizeFP16(t *testing.T) {
	x := FromSlice([]float32{0.1, 1.0 / 3.0, 100.0 / 7.0}, 3)
	if x.IsFP16Exact() {
		t.Fatal("test values should not be FP16-exact")
	}
	x.QuantizeFP16()
	if !x.IsFP16Exact() {
		t.Error("QuantizeFP16 left non-representable values")
	}
	for _, v := range x.Data {
		if v != half.FromFloat32(v).Float32() {
			t.Error("element not representable after quantize")
		}
	}
}

func TestFillXavierStatistics(t *testing.T) {
	src := rng.New(1)
	x := New(64, 64, 3, 3)
	fanIn := 64 * 3 * 3
	x.FillXavier(src, fanIn)
	var sum, sum2 float64
	for _, v := range x.Data {
		sum += float64(v)
		sum2 += float64(v) * float64(v)
	}
	n := float64(x.Elems())
	mean := sum / n
	variance := sum2/n - mean*mean
	want := 1.0 / float64(fanIn)
	if math.Abs(mean) > 0.001 {
		t.Errorf("xavier mean = %g", mean)
	}
	if math.Abs(variance-want)/want > 0.1 {
		t.Errorf("xavier variance = %g, want ~%g", variance, want)
	}
}

func TestFillMSRAVariance(t *testing.T) {
	src := rng.New(2)
	x := New(10000)
	x.FillMSRA(src, 100)
	var sum2 float64
	for _, v := range x.Data {
		sum2 += float64(v) * float64(v)
	}
	variance := sum2 / float64(x.Elems())
	if math.Abs(variance-0.02)/0.02 > 0.1 {
		t.Errorf("msra variance = %g, want ~0.02", variance)
	}
}

func TestFillUniformRange(t *testing.T) {
	src := rng.New(3)
	x := New(1000)
	x.FillUniform(src, -2, 5)
	for _, v := range x.Data {
		if v < -2 || v >= 5 {
			t.Fatalf("uniform out of range: %g", v)
		}
	}
}

func TestFillNormalDeterminism(t *testing.T) {
	a, b := New(100), New(100)
	a.FillNormal(rng.New(9), 1, 0.5)
	b.FillNormal(rng.New(9), 1, 0.5)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestFillPanicsOnBadFanIn(t *testing.T) {
	x := New(4)
	for _, f := range []func(){
		func() { x.FillXavier(rng.New(0), 0) },
		func() { x.FillMSRA(rng.New(0), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: Reshape preserves the flat data for arbitrary factorings.
func TestQuickReshapePreservesData(t *testing.T) {
	f := func(seed uint64, aRaw, bRaw uint8) bool {
		a := int(aRaw)%6 + 1
		b := int(bRaw)%6 + 1
		x := New(a, b)
		x.FillUniform(rng.New(seed), 0, 1)
		y := x.Reshape(b, a).Reshape(a * b)
		for i := range x.Data {
			if x.Data[i] != y.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: QuantizeFP16 is idempotent.
func TestQuickQuantizeIdempotent(t *testing.T) {
	f := func(data []float32) bool {
		if len(data) == 0 {
			return true
		}
		x := FromSlice(append([]float32(nil), data...), len(data))
		x.QuantizeFP16()
		once := append([]float32(nil), x.Data...)
		x.QuantizeFP16()
		for i := range once {
			a, b := once[i], x.Data[i]
			if a != b && !(math.IsNaN(float64(a)) && math.IsNaN(float64(b))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTensorString(t *testing.T) {
	if New(1, 3).String() != "tensor(1, 3)" {
		t.Errorf("String = %q", New(1, 3).String())
	}
}
