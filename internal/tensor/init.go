package tensor

import (
	"math"

	"repro/internal/rng"
)

// Deterministic weight initializers. The paper uses a pre-trained BVLC
// GoogLeNet; real weights are unavailable offline (see DESIGN.md §2),
// and the performance experiments only depend on layer geometry, so
// the full-size network carries reproducible pseudo-random weights
// initialized the way the original was (Xavier/MSRA-style fan-in
// scaling keeps activations in a realistic numeric range, which
// matters for the FP16 path: badly scaled weights would overflow
// halves and distort the Fig. 7 comparison).

// FillXavier initializes t with zero-mean Gaussian weights of variance
// 1/fanIn (Glorot/Caffe "xavier" filler with fan-in averaging).
func (t *T) FillXavier(src *rng.Source, fanIn int) {
	if fanIn <= 0 {
		panic("tensor: FillXavier with non-positive fanIn")
	}
	std := float32(math.Sqrt(1.0 / float64(fanIn)))
	for i := range t.Data {
		t.Data[i] = src.NormFloat32() * std
	}
}

// FillMSRA initializes t with He-style Gaussian weights of variance
// 2/fanIn, appropriate ahead of ReLU activations.
func (t *T) FillMSRA(src *rng.Source, fanIn int) {
	if fanIn <= 0 {
		panic("tensor: FillMSRA with non-positive fanIn")
	}
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	for i := range t.Data {
		t.Data[i] = src.NormFloat32() * std
	}
}

// FillUniform initializes t with uniform values in [lo, hi).
func (t *T) FillUniform(src *rng.Source, lo, hi float32) {
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*src.Float32()
	}
}

// FillNormal initializes t with Gaussian values of the given mean and
// standard deviation.
func (t *T) FillNormal(src *rng.Source, mean, std float32) {
	for i := range t.Data {
		t.Data[i] = mean + std*src.NormFloat32()
	}
}
