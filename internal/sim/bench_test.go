// Kernel microbenchmarks: every number in the reproduction flows
// through internal/sim, so these isolate its hot paths — event
// scheduling, cancellable timers, queue churn, queue timeouts, process
// context switches, and an end-to-end open-loop arrival pipeline. The
// workload definitions live in internal/bench (kernel.go) so the same
// code backs both this go-test suite and the machine-readable kernel
// snapshot (ncsw-bench -kernel -json → BENCH_PR7.json).
//
// Run with:
//
//	go test -run '^$' -bench 'BenchmarkKernel' -benchmem ./internal/sim
package sim_test

import (
	"testing"

	"repro/internal/bench"
)

// One op = one callback event scheduled and dispatched.
func BenchmarkKernelEventSchedule(b *testing.B) {
	b.ReportAllocs()
	if got := bench.KernelEventSchedule(b.N); got != b.N {
		b.Fatalf("fired %d of %d events", got, b.N)
	}
}

// One op = one cancellable timer armed; 3 of 4 are cancelled, the rest
// fire.
func BenchmarkKernelTimerCancelFire(b *testing.B) {
	b.ReportAllocs()
	if got := bench.KernelTimerCancelFire(b.N); got > b.N || got < b.N/8 {
		b.Fatalf("fired %d of %d timers, want ≈ N/4", got, b.N)
	}
}

// One op = one TryPut + TryGet pair at steady-state occupancy.
func BenchmarkKernelQueuePutGet(b *testing.B) {
	b.ReportAllocs()
	if got := bench.KernelQueuePutGet(b.N); got != b.N {
		b.Fatalf("got %d of %d items", got, b.N)
	}
}

// One op = one GetWithin wait; half time out, half receive an item.
func BenchmarkKernelQueueTimeout(b *testing.B) {
	b.ReportAllocs()
	if got := bench.KernelQueueTimeout(b.N); got != b.N/2 {
		b.Fatalf("received %d of %d waits, want N/2", got, b.N)
	}
}

// One op = one schedule + one full park/resume context switch.
func BenchmarkKernelProcessSwitch(b *testing.B) {
	b.ReportAllocs()
	if got := bench.KernelProcessSwitch(b.N); got != b.N {
		b.Fatalf("completed %d of %d sleeps", got, b.N)
	}
}

// One op = one arrival served end to end (scheduling + queueing +
// process switches, four workers at ≈88% utilization).
func BenchmarkKernelArrivals(b *testing.B) {
	b.ReportAllocs()
	if got := bench.KernelArrivals(b.N); got != b.N {
		b.Fatalf("served %d of %d arrivals", got, b.N)
	}
}
