package sim

import "fmt"

// Resource is a counted FCFS resource: up to Capacity holders at once,
// waiters served in arrival order. It models exclusive hardware units
// — a SHAVE array, a USB endpoint, a host CPU slot.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  waitList
	// accounting
	totalAcquisitions int
	busyTime          int64 // integral of inUse over time, in unit·ns
	lastStamp         int64
}

// NewResource creates a resource with the given capacity (>= 1).
func (e *Env) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{env: e, name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of current holders.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of blocked waiters.
func (r *Resource) QueueLen() int { return r.waiters.len() }

func (r *Resource) stamp() {
	now := int64(r.env.now)
	r.busyTime += int64(r.inUse) * (now - r.lastStamp)
	r.lastStamp = now
}

// Acquire blocks p until a unit is available, then holds it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && r.waiters.empty() {
		r.stamp()
		r.inUse++
		r.totalAcquisitions++
		return
	}
	r.waiters.push(p)
	p.blockUnscheduled()
	// Release transferred the unit to us before waking.
}

// TryAcquire takes a unit without blocking; it reports success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && r.waiters.empty() {
		r.stamp()
		r.inUse++
		r.totalAcquisitions++
		return true
	}
	return false
}

// Release returns a unit, waking the oldest waiter if any. Releasing
// an unheld resource panics — it indicates a protocol bug in a model.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	if w := r.waiters.pop(); w != nil {
		// Hand the unit directly to the next waiter: inUse stays
		// constant, so no other process can steal it in between.
		r.totalAcquisitions++
		w.wake()
		return
	}
	r.stamp()
	r.inUse--
}

// Use runs fn while holding one unit.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}

// Utilization returns the time-average fraction of capacity in use
// from t=0 through now.
func (r *Resource) Utilization() float64 {
	r.stamp()
	now := int64(r.env.now)
	if now == 0 {
		return 0
	}
	return float64(r.busyTime) / float64(now) / float64(r.capacity)
}

// Acquisitions returns the total number of grants so far.
func (r *Resource) Acquisitions() int { return r.totalAcquisitions }
