package sim

import "fmt"

// Queue is a FIFO channel between simulated processes, optionally
// bounded. It models the NCS inference FIFO (bounded: the device
// accepts a limited number of queued tensors) and result mailboxes.
type Queue[T any] struct {
	env      *Env
	name     string
	capacity int // 0 = unbounded
	items    []T
	getters  []*Proc
	putters  []*Proc
	// peak tracks the high-water mark for reporting.
	peak int
}

// NewQueue creates a FIFO with the given capacity; capacity 0 means
// unbounded.
func NewQueue[T any](e *Env, name string, capacity int) *Queue[T] {
	if capacity < 0 {
		panic(fmt.Sprintf("sim: queue %q negative capacity", name))
	}
	return &Queue[T]{env: e, name: name, capacity: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Peak returns the high-water mark of the buffer.
func (q *Queue[T]) Peak() int { return q.peak }

// Name returns the queue name.
func (q *Queue[T]) Name() string { return q.name }

// Put appends v, blocking while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.capacity > 0 && len(q.items) >= q.capacity {
		q.putters = append(q.putters, p)
		p.blockUnscheduled()
	}
	q.items = append(q.items, v)
	if len(q.items) > q.peak {
		q.peak = len(q.items)
	}
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.wake()
	}
}

// TryPut appends v without blocking; it reports success.
func (q *Queue[T]) TryPut(v T) bool {
	if q.capacity > 0 && len(q.items) >= q.capacity {
		return false
	}
	q.items = append(q.items, v)
	if len(q.items) > q.peak {
		q.peak = len(q.items)
	}
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.wake()
	}
	return true
}

// Get removes and returns the oldest item, blocking while empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.blockUnscheduled()
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		w.wake()
	}
	return v
}

// TryGet removes the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		w.wake()
	}
	return v, true
}
