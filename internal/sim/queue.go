package sim

import (
	"fmt"
	"time"
)

// Queue is a FIFO channel between simulated processes, optionally
// bounded. It models the NCS inference FIFO (bounded: the device
// accepts a limited number of queued tensors) and result mailboxes.
type Queue[T any] struct {
	env      *Env
	name     string
	capacity int // 0 = unbounded
	items    []T
	getters  []*Proc
	putters  []*Proc
	// peak tracks the high-water mark for reporting.
	peak int
}

// NewQueue creates a FIFO with the given capacity; capacity 0 means
// unbounded.
func NewQueue[T any](e *Env, name string, capacity int) *Queue[T] {
	if capacity < 0 {
		panic(fmt.Sprintf("sim: queue %q negative capacity", name))
	}
	return &Queue[T]{env: e, name: name, capacity: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Capacity returns the current bound (0 = unbounded).
func (q *Queue[T]) Capacity() int { return q.capacity }

// SetCapacity rebounds the queue to capacity n (0 = unbounded).
// Shrinking below the current occupancy evicts nothing — the queue
// stays over-full until consumers drain it, with Put blocking and
// TryPut failing meanwhile. Growing (or unbounding) wakes blocked
// putters for the new room. This is the primitive behind health-aware
// admission: the ingress bound tracks healthy device capacity while
// queued work keeps its place.
func (q *Queue[T]) SetCapacity(n int) {
	if n < 0 {
		panic(fmt.Sprintf("sim: queue %q negative capacity", q.name))
	}
	q.capacity = n
	room := len(q.putters)
	if n > 0 {
		room = n - len(q.items)
	}
	for i := 0; i < room && len(q.putters) > 0; i++ {
		w := q.putters[0]
		q.putters = q.putters[1:]
		w.wake()
	}
}

// RemoveWhere removes and returns the first buffered item satisfying
// pred, waking one blocked putter for the freed slot. It is the
// cancellation primitive behind hedged requests: a speculative
// duplicate still sitting in a feed queue is withdrawn the moment the
// other copy completes, so no device time is spent serving it.
func (q *Queue[T]) RemoveWhere(pred func(T) bool) (T, bool) {
	var zero T
	for i, v := range q.items {
		if pred(v) {
			q.items = append(q.items[:i], q.items[i+1:]...)
			if len(q.putters) > 0 {
				w := q.putters[0]
				q.putters = q.putters[1:]
				w.wake()
			}
			return v, true
		}
	}
	return zero, false
}

// Peak returns the high-water mark of the buffer.
func (q *Queue[T]) Peak() int { return q.peak }

// Name returns the queue name.
func (q *Queue[T]) Name() string { return q.name }

// Put appends v, blocking while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.capacity > 0 && len(q.items) >= q.capacity {
		q.putters = append(q.putters, p)
		p.blockUnscheduled()
	}
	q.items = append(q.items, v)
	if len(q.items) > q.peak {
		q.peak = len(q.items)
	}
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.wake()
	}
}

// TryPut appends v without blocking; it reports success.
func (q *Queue[T]) TryPut(v T) bool {
	if q.capacity > 0 && len(q.items) >= q.capacity {
		return false
	}
	q.items = append(q.items, v)
	if len(q.items) > q.peak {
		q.peak = len(q.items)
	}
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.wake()
	}
	return true
}

// GetWithin removes and returns the oldest item like Get, but waits
// at most d of virtual time: ok=false reports that the deadline
// passed with the queue still empty. d == 0 is a non-blocking poll.
// The timeout is an ordinary scheduled event, so an item put at the
// same instant as the deadline by an earlier-scheduled process still
// wins — deterministic like everything else in the kernel.
func (q *Queue[T]) GetWithin(p *Proc, d time.Duration) (T, bool) {
	var zero T
	if d < 0 {
		panic(fmt.Sprintf("sim: queue %q GetWithin with negative wait %v", q.name, d))
	}
	deadline := p.env.now + d
	for len(q.items) == 0 {
		if p.env.now >= deadline {
			return zero, false
		}
		timedOut := false
		// The timer is cancellable so the usual case — an item arrives
		// well before the deadline — leaves no residue: a stale timer
		// firing later could only wake p spuriously, and one still
		// pending when the run drains would drag the clock (and thus
		// SimTime and energy integrals) past the real end of the run.
		cancel := p.env.AtCancelable(deadline, func() {
			// Fires only if p is still parked as a getter of this
			// queue (a putter may have woken p first; dropGetter then
			// misses).
			if q.dropGetter(p) {
				timedOut = true
				p.wake()
			}
		})
		q.getters = append(q.getters, p)
		p.blockUnscheduled()
		if timedOut {
			return zero, false
		}
		cancel()
		// Woken by a putter; re-check in case another consumer took
		// the item at the same instant.
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		w.wake()
	}
	return v, true
}

// dropGetter removes p from the getter wait list, reporting whether
// it was parked there.
func (q *Queue[T]) dropGetter(p *Proc) bool {
	for i, g := range q.getters {
		if g == p {
			q.getters = append(q.getters[:i], q.getters[i+1:]...)
			return true
		}
	}
	return false
}

// Get removes and returns the oldest item, blocking while empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.blockUnscheduled()
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		w.wake()
	}
	return v
}

// TryGet removes the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		w.wake()
	}
	return v, true
}
