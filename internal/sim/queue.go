package sim

import (
	"fmt"
	"time"
)

// Queue is a FIFO channel between simulated processes, optionally
// bounded. It models the NCS inference FIFO (bounded: the device
// accepts a limited number of queued tensors) and result mailboxes.
//
// Storage is a growable power-of-two ring buffer, so steady-state
// Put/Get churn allocates nothing and never shifts elements; blocked
// getters and putters sit on intrusive wait lists (links embedded in
// Proc), so waiting allocates nothing and timeout removal is O(1).
type Queue[T any] struct {
	env      *Env
	name     string
	capacity int // 0 = unbounded
	// Ring buffer: n items starting at buf[head], wrapping modulo
	// len(buf) (always a power of two; empty until first use).
	buf     []T
	head, n int
	getters waitList
	putters waitList
	// peak tracks the high-water mark for reporting.
	peak int
}

// NewQueue creates a FIFO with the given capacity; capacity 0 means
// unbounded.
func NewQueue[T any](e *Env, name string, capacity int) *Queue[T] {
	if capacity < 0 {
		panic(fmt.Sprintf("sim: queue %q negative capacity", name))
	}
	return &Queue[T]{env: e, name: name, capacity: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return q.n }

// Capacity returns the current bound (0 = unbounded).
func (q *Queue[T]) Capacity() int { return q.capacity }

// grow doubles the ring (min 8 slots), unwrapping into FIFO order.
// Called only when the ring is completely full, so every slot is live.
func (q *Queue[T]) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	k := copy(buf, q.buf[q.head:])
	copy(buf[k:], q.buf[:q.head])
	q.buf = buf
	q.head = 0
}

// pushBack appends v at the tail of the ring and updates the peak.
func (q *Queue[T]) pushBack(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
	if q.n > q.peak {
		q.peak = q.n
	}
}

// popFront removes and returns the oldest item, zeroing the slot so
// the ring never pins dead values.
func (q *Queue[T]) popFront() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// SetCapacity rebounds the queue to capacity n (0 = unbounded).
// Shrinking below the current occupancy evicts nothing — the queue
// stays over-full until consumers drain it, with Put blocking and
// TryPut failing meanwhile. Growing (or unbounding) wakes blocked
// putters for the new room. This is the primitive behind health-aware
// admission: the ingress bound tracks healthy device capacity while
// queued work keeps its place.
func (q *Queue[T]) SetCapacity(n int) {
	if n < 0 {
		panic(fmt.Sprintf("sim: queue %q negative capacity", q.name))
	}
	q.capacity = n
	room := q.putters.len()
	if n > 0 {
		room = n - q.n
	}
	for i := 0; i < room; i++ {
		w := q.putters.pop()
		if w == nil {
			break
		}
		w.wake()
	}
}

// RemoveWhere removes and returns the first buffered item satisfying
// pred, waking one blocked putter for the freed slot. It is the
// cancellation primitive behind hedged requests: a speculative
// duplicate still sitting in a feed queue is withdrawn the moment the
// other copy completes, so no device time is spent serving it.
func (q *Queue[T]) RemoveWhere(pred func(T) bool) (T, bool) {
	var zero T
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		idx := (q.head + i) & mask
		if !pred(q.buf[idx]) {
			continue
		}
		v := q.buf[idx]
		// Close the gap by shifting whichever side is shorter,
		// preserving FIFO order of the survivors.
		if i < q.n-1-i {
			for j := i; j > 0; j-- {
				q.buf[(q.head+j)&mask] = q.buf[(q.head+j-1)&mask]
			}
			q.buf[q.head] = zero
			q.head = (q.head + 1) & mask
		} else {
			for j := i; j < q.n-1; j++ {
				q.buf[(q.head+j)&mask] = q.buf[(q.head+j+1)&mask]
			}
			q.buf[(q.head+q.n-1)&mask] = zero
		}
		q.n--
		if w := q.putters.pop(); w != nil {
			w.wake()
		}
		return v, true
	}
	return zero, false
}

// Peak returns the high-water mark of the buffer.
func (q *Queue[T]) Peak() int { return q.peak }

// Name returns the queue name.
func (q *Queue[T]) Name() string { return q.name }

// Put appends v, blocking while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.capacity > 0 && q.n >= q.capacity {
		q.putters.push(p)
		p.blockUnscheduled()
	}
	q.pushBack(v)
	if g := q.getters.pop(); g != nil {
		g.wake()
	}
}

// TryPut appends v without blocking; it reports success.
func (q *Queue[T]) TryPut(v T) bool {
	if q.capacity > 0 && q.n >= q.capacity {
		return false
	}
	q.pushBack(v)
	if g := q.getters.pop(); g != nil {
		g.wake()
	}
	return true
}

// GetWithin removes and returns the oldest item like Get, but waits
// at most d of virtual time: ok=false reports that the deadline
// passed with the queue still empty. d == 0 is a non-blocking poll.
// The timeout is an ordinary scheduled event, so an item put at the
// same instant as the deadline by an earlier-scheduled process still
// wins — deterministic like everything else in the kernel.
func (q *Queue[T]) GetWithin(p *Proc, d time.Duration) (T, bool) {
	var zero T
	if d < 0 {
		panic(fmt.Sprintf("sim: queue %q GetWithin with negative wait %v", q.name, d))
	}
	deadline := p.env.now + d
	for q.n == 0 {
		if p.env.now >= deadline {
			return zero, false
		}
		// The timeout is an index-cancellable wakeup event: it fires
		// only if p is still parked on the getter list (a putter may
		// have woken p first at the same instant), and the usual case
		// — an item arrives well before the deadline — cancels it so a
		// stale timer cannot wake p spuriously or drag the clock (and
		// thus SimTime and energy integrals) past the real end of the
		// run. The whole wait allocates nothing: slot-recycled timer,
		// intrusive wait list, flag on the Proc itself.
		tm := p.env.timeoutAt(deadline, p)
		q.getters.push(p)
		p.blockUnscheduled()
		if p.timedOut {
			p.timedOut = false
			return zero, false
		}
		p.env.Cancel(tm)
		// Woken by a putter; re-check in case another consumer took
		// the item at the same instant.
	}
	v := q.popFront()
	if w := q.putters.pop(); w != nil {
		w.wake()
	}
	return v, true
}

// Get removes and returns the oldest item, blocking while empty.
func (q *Queue[T]) Get(p *Proc) T {
	for q.n == 0 {
		q.getters.push(p)
		p.blockUnscheduled()
	}
	v := q.popFront()
	if w := q.putters.pop(); w != nil {
		w.wake()
	}
	return v
}

// TryGet removes the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	v := q.popFront()
	if w := q.putters.pop(); w != nil {
		w.wake()
	}
	return v, true
}
