// Package sim is a deterministic discrete-event simulation kernel in
// the style of SimPy: model code runs as ordinary Go functions inside
// simulated processes, blocking on virtual-time primitives (Sleep,
// resource acquisition, queue operations) while a single-threaded
// scheduler advances a virtual clock.
//
// Every performance number in the reproduction comes from this kernel
// (DESIGN.md §4): the NCS devices, the USB fabric, the host threads of
// the NCSw multi-VPU scheduler and the CPU/GPU baselines are all
// processes here, so experiments are fast, deterministic and
// independent of the host machine.
//
// Concurrency model: processes are goroutines, but exactly one runs at
// a time — the scheduler hands control to a process and waits for it
// to park (block on a primitive) or terminate before dispatching the
// next event. Event order is a strict (time, sequence) lexicographic
// order, so simulations are reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Env is one simulation universe: a virtual clock plus an event queue.
// Create with NewEnv; not safe for concurrent use by multiple OS
// threads outside the process protocol.
type Env struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	// parked is signaled by the running process when it blocks or
	// terminates, returning control to the scheduler.
	parked chan struct{}
	// active counts live (started, unterminated) processes, to detect
	// deadlock: events exhausted while processes still wait.
	active int
	// waiting counts processes parked on resources/queues with no
	// pending event (they can only be woken by another process).
	waiting int
}

// NewEnv creates an empty simulation at time zero.
func NewEnv() *Env {
	return &Env{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

type event struct {
	t   time.Duration
	seq uint64
	p   *Proc  // process to resume, if any
	fn  func() // callback to run, if any
	// cancelled, when set and true at dispatch time, skips the event
	// entirely — no callback, and crucially no clock advance, so a
	// cancelled timer left at the end of a run cannot inflate the
	// simulation horizon.
	cancelled *bool
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func (e *Env) schedule(at time.Duration, p *Proc, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{t: at, seq: e.seq, p: p, fn: fn})
}

// At schedules fn to run as a callback at absolute virtual time t
// (t >= Now). Callbacks run on the scheduler and must not block.
func (e *Env) At(t time.Duration, fn func()) { e.schedule(t, nil, fn) }

// AtCancelable schedules fn like At and returns a cancel function.
// Cancelling before the event fires discards it completely: the
// callback never runs and the clock never advances to t on its
// account — the primitive behind timeout timers (Queue.GetWithin)
// whose deadline usually never arrives.
func (e *Env) AtCancelable(t time.Duration, fn func()) (cancel func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	flag := new(bool)
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, fn: fn, cancelled: flag})
	return func() { *flag = true }
}

// After schedules fn to run after delay d.
func (e *Env) After(d time.Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.schedule(e.now+d, nil, fn)
}

// Proc is the handle a simulated process uses to interact with
// virtual time. It is only valid inside the function passed to
// Env.Process.
type Proc struct {
	env    *Env
	resume chan struct{}
	name   string
	done   bool
}

// Name returns the process name (for traces and errors).
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// park returns control to the scheduler and blocks until resumed.
func (p *Proc) park() {
	p.env.parked <- struct{}{}
	<-p.resume
}

// Process starts a new simulated process running fn. The process
// begins at the current virtual time (after the caller yields). fn
// must interact with virtual time only through p.
func (e *Env) Process(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, resume: make(chan struct{}), name: name}
	e.active++
	go func() {
		<-p.resume // wait for the start event
		fn(p)
		p.done = true
		e.active--
		e.parked <- struct{}{}
	}()
	e.schedule(e.now, p, nil)
	return p
}

// Sleep suspends the process for d of virtual time. d < 0 panics;
// d == 0 yields, letting same-time events run in FIFO order.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q sleeping negative duration %v", p.name, d))
	}
	p.env.schedule(p.env.now+d, p, nil)
	p.park()
}

// blockUnscheduled parks the process with no pending event; it must be
// woken via wake() by another process (resource release, queue push).
func (p *Proc) blockUnscheduled() {
	p.env.waiting++
	p.park()
}

// wake schedules p to resume at the current time.
func (p *Proc) wake() {
	p.env.waiting--
	p.env.schedule(p.env.now, p, nil)
}

// Run dispatches events until none remain. It panics if live
// processes are still blocked when the queue drains — that is a
// deadlock in the model, which must fail loudly rather than silently
// truncate an experiment.
func (e *Env) Run() {
	for len(e.events) > 0 {
		e.step()
	}
	if e.active > 0 {
		panic(fmt.Sprintf("sim: deadlock — %d process(es) still blocked at t=%v", e.active, e.now))
	}
}

// RunUntil dispatches events with timestamp <= t, then sets the clock
// to t. Processes may still be live afterwards.
func (e *Env) RunUntil(t time.Duration) {
	for len(e.events) > 0 && e.events[0].t <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *Env) step() {
	ev := heap.Pop(&e.events).(event)
	if ev.cancelled != nil && *ev.cancelled {
		return
	}
	e.now = ev.t
	if ev.fn != nil {
		ev.fn()
	}
	if ev.p != nil {
		ev.p.resume <- struct{}{}
		<-e.parked
	}
}
