// Package sim is a deterministic discrete-event simulation kernel in
// the style of SimPy: model code runs as ordinary Go functions inside
// simulated processes, blocking on virtual-time primitives (Sleep,
// resource acquisition, queue operations) while a single-threaded
// scheduler advances a virtual clock.
//
// Every performance number in the reproduction comes from this kernel
// (DESIGN.md §4): the NCS devices, the USB fabric, the host threads of
// the NCSw multi-VPU scheduler and the CPU/GPU baselines are all
// processes here, so experiments are fast, deterministic and
// independent of the host machine.
//
// Concurrency model: processes are goroutines, but exactly one runs at
// a time — the scheduler hands control to a process and waits for it
// to park (block on a primitive) or terminate before dispatching the
// next event. Event order is a strict (time, sequence) lexicographic
// order, so simulations are reproducible bit-for-bit.
//
// Performance model (DESIGN.md §9): the event queue is a
// hand-specialized 4-ary min-heap over a reused backing array (no
// container/heap, no interface boxing — scheduling is allocation-free
// in steady state), timers cancel through index-based slots instead of
// per-timer heap flags, callback-only events dispatch without touching
// the process machinery, and each process reuses a single rendezvous
// channel for every park/resume handoff of its lifetime.
package sim

import (
	"fmt"
	"math/bits"
	"time"
)

// Env is one simulation universe: a virtual clock plus an event queue.
// Create with NewEnv; not safe for concurrent use by multiple OS
// threads outside the process protocol.
type Env struct {
	now time.Duration
	seq uint64
	// The event queue is a 4-ary min-heap ordered by (t, seq), stored
	// structure-of-arrays: keys (16 bytes — four children fit in one
	// cache line during sift-down) are compared, vals (payload) move
	// alongside. Both backing arrays are reused across the run, so
	// scheduling is allocation-free in steady state.
	keys []eventKey
	vals []eventVal
	// timers holds the cancellation slots of pending cancellable
	// timers; timerFree recycles slots so arming a timer never
	// allocates in steady state.
	timers    []timerSlot
	timerFree []int32
	// active counts live (started, unterminated) processes, to detect
	// deadlock: events exhausted while processes still wait.
	active int
	// waiting counts processes parked on resources/queues with no
	// pending event (they can only be woken by another process); it
	// feeds the deadlock diagnostic.
	waiting int
}

// NewEnv creates an empty simulation at time zero.
func NewEnv() *Env { return &Env{} }

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// eventKey is the heap-ordering half of an event: strict (t, seq)
// lexicographic order, so dispatch is deterministic.
type eventKey struct {
	t   time.Duration
	seq uint64
}

// eventVal is the payload half of an event. Exactly one of p/fn is set
// by internal schedulers: fn-only events are callbacks dispatched
// without touching the process machinery; p-only events resume a
// parked process. An event with timer != 0 is cancellable: timer-1
// indexes the Env.timers slot holding its cancellation flag, and a
// timer event carrying p is a queue-timeout wakeup (it fires only if p
// is still parked on a wait list).
type eventVal struct {
	p     *Proc
	fn    func()
	timer int32
}

// timerSlot is the cancellation state of one pending cancellable
// timer. gen guards handle reuse: a slot is freed (gen bumped) when
// its event dispatches, so a stale Cancel through an old handle is a
// no-op instead of killing an unrelated timer.
type timerSlot struct {
	gen       uint32
	cancelled bool
}

// keyLess reports the strict (t, seq) heap order as one branchless
// 128-bit unsigned compare (t is never negative): the min-child scans
// in pop run on random keys, so an ||/&& formulation would mispredict
// about half its branches — the borrow chain keeps flags out of the
// branch predictor entirely.
func keyLess(a, b eventKey) bool {
	_, borrow := bits.Sub64(a.seq, b.seq, 0)
	_, borrow = bits.Sub64(uint64(a.t), uint64(b.t), borrow)
	return borrow != 0
}

// keyLessMask is keyLess returning an all-ones mask instead of a bool,
// feeding the masked selects below without a conditional move the
// compiler may or may not emit.
func keyLessMask(a, b eventKey) uint64 {
	_, borrow := bits.Sub64(a.seq, b.seq, 0)
	_, borrow = bits.Sub64(uint64(a.t), uint64(b.t), borrow)
	return -borrow
}

// isel returns a (mask == 0) or b (mask == all-ones), branch-free.
func isel(a, b int, mask uint64) int {
	return int(uint64(a) ^ (uint64(a)^uint64(b))&mask)
}

// ksel returns key a (mask == 0) or b (mask == all-ones), branch-free.
func ksel(a, b eventKey, mask uint64) eventKey {
	a.t = time.Duration(uint64(a.t) ^ (uint64(a.t)^uint64(b.t))&mask)
	a.seq = a.seq ^ (a.seq^b.seq)&mask
	return a
}

// push inserts an event into the 4-ary heap, sifting a hole up instead
// of swapping whole elements.
func (e *Env) push(key eventKey, val eventVal) {
	k := append(e.keys, key)
	v := append(e.vals, val)
	i := len(k) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		pk := k[parent]
		if keyLess(pk, key) {
			break
		}
		k[i], v[i] = pk, v[parent]
		i = parent
	}
	k[i], v[i] = key, val
	e.keys, e.vals = k, v
}

// pop removes and returns the minimum event, zeroing the vacated
// payload slot so the backing array never pins dead closures or
// processes. Sift-down compares only the dense key array — the four
// children of a node share a cache line.
func (e *Env) pop() (eventKey, eventVal) {
	k, v := e.keys, e.vals
	topK, topV := k[0], v[0]
	n := len(k) - 1
	lastK, lastV := k[n], v[n]
	v[n] = eventVal{}
	k, v = k[:n], v[:n]
	e.keys, e.vals = k, v
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			var m int
			var mk eventKey
			if c+3 < n {
				// Full node: tournament min of the four children with
				// masked selects — zero data-dependent branches, and the
				// two first-round compares are independent.
				s01 := keyLessMask(k[c+1], k[c])
				m0, k0 := isel(c, c+1, s01), ksel(k[c], k[c+1], s01)
				s23 := keyLessMask(k[c+3], k[c+2])
				m1, k1 := isel(c+2, c+3, s23), ksel(k[c+2], k[c+3], s23)
				s := keyLessMask(k1, k0)
				m, mk = isel(m0, m1, s), ksel(k0, k1, s)
			} else {
				m, mk = c, k[c]
				for j := c + 1; j < n; j++ {
					jk := k[j]
					if keyLess(jk, mk) {
						m, mk = j, jk
					}
				}
			}
			if keyLess(lastK, mk) {
				break
			}
			k[i], v[i] = mk, v[m]
			i = m
		}
		k[i], v[i] = lastK, lastV
	}
	return topK, topV
}

func (e *Env) schedule(at time.Duration, p *Proc, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", at, e.now))
	}
	e.seq++
	e.push(eventKey{t: at, seq: e.seq}, eventVal{p: p, fn: fn})
}

// At schedules fn to run as a callback at absolute virtual time t
// (t >= Now). Callbacks run on the scheduler and must not block.
func (e *Env) At(t time.Duration, fn func()) { e.schedule(t, nil, fn) }

// Timer is an index-based handle to a pending cancellable callback
// (TimerAt) — the allocation-free alternative to AtCancelable's
// closure. The zero value is no timer; Cancel ignores it.
type Timer uint64

// armTimer allocates a cancellation slot and returns its handle.
func (e *Env) armTimer() (int32, Timer) {
	var slot int32
	if n := len(e.timerFree); n > 0 {
		slot = e.timerFree[n-1]
		e.timerFree = e.timerFree[:n-1]
	} else {
		slot = int32(len(e.timers))
		// gen starts at 1 so a valid handle is never the zero Timer.
		e.timers = append(e.timers, timerSlot{gen: 1})
	}
	e.timers[slot].cancelled = false
	return slot, Timer(uint64(e.timers[slot].gen)<<32 | uint64(slot+1))
}

// freeTimer recycles a slot once its event has dispatched, bumping the
// generation so stale handles die.
func (e *Env) freeTimer(slot int32) {
	e.timers[slot].gen++
	e.timerFree = append(e.timerFree, slot)
}

// TimerAt schedules fn like At and returns an index-based handle for
// Cancel. Cancelling before the event fires discards it completely:
// the callback never runs and the clock never advances to t on its
// account — the primitive behind timeout timers (Queue.GetWithin)
// whose deadline usually never arrives. Unlike AtCancelable it
// allocates nothing in steady state (slots are recycled).
func (e *Env) TimerAt(t time.Duration, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	slot, handle := e.armTimer()
	e.seq++
	e.push(eventKey{t: t, seq: e.seq}, eventVal{fn: fn, timer: slot + 1})
	return handle
}

// timeoutAt schedules an index-cancellable wakeup for p: when it fires
// with p still parked on a wait list, p is removed, marked timed out,
// and woken. It is the allocation-free engine behind Queue.GetWithin.
func (e *Env) timeoutAt(t time.Duration, p *Proc) Timer {
	slot, handle := e.armTimer()
	e.seq++
	e.push(eventKey{t: t, seq: e.seq}, eventVal{p: p, timer: slot + 1})
	return handle
}

// Cancel discards a pending timer by handle. Cancelling an already
// fired (or already cancelled) timer is a no-op, as is the zero Timer.
func (e *Env) Cancel(tm Timer) {
	slot := int32(uint64(tm)&0xffffffff) - 1
	if slot < 0 || int(slot) >= len(e.timers) {
		return
	}
	if e.timers[slot].gen == uint32(uint64(tm)>>32) {
		e.timers[slot].cancelled = true
	}
}

// AtCancelable schedules fn like At and returns a cancel function —
// a closure-based convenience over TimerAt/Cancel.
func (e *Env) AtCancelable(t time.Duration, fn func()) (cancel func()) {
	handle := e.TimerAt(t, fn)
	return func() { e.Cancel(handle) }
}

// After schedules fn to run after delay d.
func (e *Env) After(d time.Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.schedule(e.now+d, nil, fn)
}

// Tick schedules fn as a coalesced repeating callback: first at
// absolute time start, then every interval for as long as fn returns
// true. The whole ticker costs one closure for its lifetime and reuses
// one heap slot per period — the allocation-free, goroutine-free way
// to run high-frequency periodic work (arrival generation, collector
// stamping) that a full Process would pay two context switches per
// period for. fn runs on the scheduler and must not block; it may
// schedule further events, including at the current instant.
func (e *Env) Tick(start, interval time.Duration, fn func(now time.Duration) bool) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive tick interval %v", interval))
	}
	if start < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", start, e.now))
	}
	var tick func()
	tick = func() {
		if fn(e.now) {
			e.schedule(e.now+interval, nil, tick)
		}
	}
	e.schedule(start, nil, tick)
}

// Proc is the handle a simulated process uses to interact with
// virtual time. It is only valid inside the function passed to
// Env.Process.
type Proc struct {
	env *Env
	// ch is the single rendezvous channel for every park/resume
	// handoff of this process's lifetime: the scheduler sends to
	// resume, the process sends to park.
	ch   chan struct{}
	name string
	done bool
	// Intrusive wait-list links: a parked process sits on exactly one
	// waitList (queue getters/putters, resource waiters) at a time, so
	// membership tests and removals are O(1) with no per-wait
	// allocation.
	next, prev *Proc
	waitq      *waitList
	// timedOut is set by a fired queue-timeout event just before the
	// wakeup; GetWithin consumes and resets it.
	timedOut bool
}

// Name returns the process name (for traces and errors).
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// park returns control to the scheduler and blocks until resumed: one
// send to yield, one receive to wait, both on the process's own
// rendezvous channel.
func (p *Proc) park() {
	p.ch <- struct{}{}
	<-p.ch
}

// Process starts a new simulated process running fn. The process
// begins at the current virtual time (after the caller yields). fn
// must interact with virtual time only through p.
func (e *Env) Process(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, ch: make(chan struct{}), name: name}
	e.active++
	go func() {
		<-p.ch // wait for the start event
		fn(p)
		p.done = true
		e.active--
		p.ch <- struct{}{}
	}()
	e.schedule(e.now, p, nil)
	return p
}

// Sleep suspends the process for d of virtual time. d < 0 panics;
// d == 0 yields, letting same-time events run in FIFO order.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q sleeping negative duration %v", p.name, d))
	}
	p.env.schedule(p.env.now+d, p, nil)
	p.park()
}

// blockUnscheduled parks the process with no pending event; it must be
// woken via wake() by another process (resource release, queue push)
// or a queue-timeout event. The caller has already pushed p onto the
// wait list it blocks on.
func (p *Proc) blockUnscheduled() {
	p.env.waiting++
	p.park()
}

// wake schedules p to resume at the current time.
func (p *Proc) wake() {
	p.env.waiting--
	p.env.schedule(p.env.now, p, nil)
}

// waitList is an intrusive FIFO of parked processes: links are
// embedded in Proc, so push/pop/remove allocate nothing and removal
// from the middle (timeouts, waiter cancellation) is O(1).
type waitList struct {
	head, tail *Proc
	count      int
}

// empty reports whether no process is parked here.
func (w *waitList) empty() bool { return w.head == nil }

// len returns the number of parked processes.
func (w *waitList) len() int { return w.count }

// push appends p at the tail.
func (w *waitList) push(p *Proc) {
	p.waitq = w
	p.prev = w.tail
	p.next = nil
	if w.tail != nil {
		w.tail.next = p
	} else {
		w.head = p
	}
	w.tail = p
	w.count++
}

// pop removes and returns the head process (nil when empty).
func (w *waitList) pop() *Proc {
	p := w.head
	if p != nil {
		w.unlink(p)
	}
	return p
}

// remove unlinks p if it is parked on this list, reporting success.
func (w *waitList) remove(p *Proc) bool {
	if p.waitq != w {
		return false
	}
	w.unlink(p)
	return true
}

func (w *waitList) unlink(p *Proc) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		w.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		w.tail = p.prev
	}
	p.next, p.prev, p.waitq = nil, nil, nil
	w.count--
}

// Run dispatches events until none remain. It panics if live
// processes are still blocked when the queue drains — that is a
// deadlock in the model, which must fail loudly rather than silently
// truncate an experiment.
func (e *Env) Run() {
	for len(e.keys) > 0 {
		e.step()
	}
	if e.active > 0 {
		panic(fmt.Sprintf("sim: deadlock — %d process(es) still blocked at t=%v (%d waiting on resources/queues)",
			e.active, e.now, e.waiting))
	}
}

// RunUntil dispatches events with timestamp <= t, then sets the clock
// to t. Processes may still be live afterwards.
func (e *Env) RunUntil(t time.Duration) {
	for len(e.keys) > 0 && e.keys[0].t <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

// step dispatches one event. Callback-only events (the common case:
// timers, ticks, At callbacks) run inline without touching the process
// machinery; a process resume is one rendezvous send plus one receive
// on the process's own channel.
func (e *Env) step() {
	key, val := e.pop()
	if val.timer != 0 {
		slot := val.timer - 1
		cancelled := e.timers[slot].cancelled
		e.freeTimer(slot)
		if cancelled {
			// Skipped entirely: no callback, and crucially no clock
			// advance, so a cancelled timer left at the end of a run
			// cannot inflate the simulation horizon.
			return
		}
		e.now = key.t
		if val.p != nil {
			// Queue-timeout wakeup: fires only if p is still parked on
			// a wait list (a putter may have woken it first at this
			// same instant; then there is nothing to do).
			if val.p.waitq != nil {
				val.p.waitq.remove(val.p)
				val.p.timedOut = true
				val.p.wake()
			}
			return
		}
		if val.fn != nil {
			val.fn()
		}
		return
	}
	e.now = key.t
	if val.fn != nil {
		// Fast path: a pure callback never touches the rendezvous
		// machinery.
		val.fn()
		return
	}
	if val.p != nil {
		val.p.ch <- struct{}{}
		<-val.p.ch
	}
}
