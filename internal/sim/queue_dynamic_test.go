package sim

import (
	"testing"
	"time"
)

// TestQueueSetCapacityShrinkAndGrow: shrinking below occupancy evicts
// nothing and blocks producers; growing wakes them for the new room.
func TestQueueSetCapacityShrinkAndGrow(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "dyn", 4)
	var put []time.Duration
	env.Process("producer", func(p *Proc) {
		for i := 0; i < 6; i++ {
			q.Put(p, i)
			put = append(put, p.Now())
		}
	})
	env.Process("control", func(p *Proc) {
		q.SetCapacity(2) // over-full: 4 items already in, nothing evicted
		if q.Len() != 4 {
			t.Errorf("Len after shrink = %d, want 4 (no eviction)", q.Len())
		}
		if q.TryPut(99) {
			t.Error("TryPut must fail while over-full")
		}
		p.Sleep(10 * time.Millisecond)
		q.SetCapacity(6) // room for the two blocked puts
	})
	env.Run()
	if len(put) != 6 {
		t.Fatalf("%d puts completed, want 6", len(put))
	}
	// The first four puts landed at t=0; the last two had to wait for
	// the capacity to grow back.
	for i, at := range put {
		if i < 4 && at != 0 {
			t.Errorf("put %d at %v, want 0", i, at)
		}
		if i >= 4 && at != 10*time.Millisecond {
			t.Errorf("put %d at %v, want 10ms (after the grow)", i, at)
		}
	}
}

// TestQueueSetCapacityUnbound: capacity 0 unbounds the queue and
// wakes every blocked producer.
func TestQueueSetCapacityUnbound(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "dyn", 1)
	done := 0
	for w := 0; w < 3; w++ {
		w := w
		env.Process("producer", func(p *Proc) {
			q.Put(p, w)
			done++
		})
	}
	env.Process("control", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.SetCapacity(0)
	})
	env.Run()
	if done != 3 {
		t.Fatalf("%d puts completed, want 3", done)
	}
}

// TestQueueRemoveWhere: removes the first matching item, preserves
// order of the rest, wakes a blocked producer for the slot, and
// reports absence.
func TestQueueRemoveWhere(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "rm", 3)
	blockedAt := time.Duration(-1)
	env.Process("producer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			q.Put(p, i) // the 4th put blocks on the full queue
		}
		blockedAt = p.Now()
	})
	env.Process("control", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		if _, ok := q.RemoveWhere(func(v int) bool { return v == 7 }); ok {
			t.Error("RemoveWhere matched a value not in the queue")
		}
		v, ok := q.RemoveWhere(func(v int) bool { return v == 1 })
		if !ok || v != 1 {
			t.Errorf("RemoveWhere = (%d, %v), want (1, true)", v, ok)
		}
	})
	env.Run()
	if blockedAt != 5*time.Millisecond {
		t.Errorf("blocked producer resumed at %v, want 5ms (woken by the removal)", blockedAt)
	}
	want := []int{0, 2, 3}
	for _, w := range want {
		v, ok := q.TryGet()
		if !ok || v != w {
			t.Fatalf("TryGet = (%d, %v), want (%d, true)", v, ok, w)
		}
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained, %d left", q.Len())
	}
}
