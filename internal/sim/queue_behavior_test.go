package sim

import (
	"testing"
	"time"
)

// Behavior locks captured before the PR 7 ring-buffer rewrite: these
// pin down two deliberately-kept quirks of the original slice-backed
// queue so the rewrite cannot silently change them.

// Peak is a high-water mark for the whole queue lifetime — it is
// never reset, not even when the queue fully drains or is re-filled to
// lower occupancy afterwards.
func TestQueuePeakIsNeverReset(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q", 0)
	for i := 0; i < 5; i++ {
		q.TryPut(i)
	}
	if q.Peak() != 5 {
		t.Fatalf("peak = %d, want 5", q.Peak())
	}
	for i := 0; i < 5; i++ {
		q.TryGet()
	}
	if q.Len() != 0 || q.Peak() != 5 {
		t.Errorf("after drain: len %d peak %d, want 0/5", q.Len(), q.Peak())
	}
	q.TryPut(1)
	q.TryPut(2)
	if q.Peak() != 5 {
		t.Errorf("peak after lower re-fill = %d, want the lifetime high-water 5", q.Peak())
	}
	q.TryGet()
	q.TryGet()
	if q.Peak() != 5 {
		t.Errorf("peak after second drain = %d, want 5", q.Peak())
	}
}

// Shrinking a queue below its occupancy evicts nothing and wakes no
// putter (the "room" is negative); the queue stays over-full until
// consumers drain it, with Put blocking and TryPut failing meanwhile,
// and blocked putters wake only once real room appears.
func TestQueueSetCapacityShrinkBelowOccupancy(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q", 4)
	for i := 0; i < 4; i++ {
		if !q.TryPut(i) {
			t.Fatalf("TryPut %d failed on empty queue", i)
		}
	}
	var blockedPutAt time.Duration
	e.Process("putter", func(p *Proc) {
		q.Put(p, 99) // full: blocks
		blockedPutAt = p.Now()
	})
	e.Process("driver", func(p *Proc) {
		p.Sleep(time.Millisecond)
		// Shrink below occupancy: 4 items remain in a capacity-2 queue,
		// nothing is evicted, the blocked putter must NOT wake (room is
		// 2-4 = -2).
		q.SetCapacity(2)
		if q.Len() != 4 {
			t.Errorf("after shrink: len %d, want all 4 items kept", q.Len())
		}
		if q.TryPut(100) {
			t.Error("TryPut succeeded on an over-full queue")
		}
		p.Sleep(time.Millisecond)
		// Draining down to the new bound still leaves no room; the
		// putter stays blocked until occupancy < capacity.
		q.TryGet()
		q.TryGet() // len 2 == cap 2: still full
		p.Sleep(time.Millisecond)
		if blockedPutAt != 0 {
			t.Errorf("putter woke at %v with the queue still at capacity", blockedPutAt)
		}
		q.TryGet() // len 1 < cap 2: TryGet wakes the putter
	})
	e.Run()
	if blockedPutAt != 3*time.Millisecond {
		t.Errorf("blocked put completed at %v, want 3ms (first real room)", blockedPutAt)
	}
	if q.Len() != 2 {
		t.Errorf("final len = %d, want 2 (one drained slot re-filled by the putter)", q.Len())
	}
}

// Growing the capacity wakes exactly as many blocked putters as there
// is room for, in FIFO order.
func TestQueueSetCapacityGrowWakesFIFO(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q", 1)
	q.TryPut(0)
	var order []int
	for i := 1; i <= 3; i++ {
		i := i
		e.Process("putter", func(p *Proc) {
			q.Put(p, i)
			order = append(order, i)
		})
	}
	e.Process("driver", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.SetCapacity(3) // room for 2 of the 3 blocked putters
		p.Sleep(time.Millisecond)
		if len(order) != 2 || order[0] != 1 || order[1] != 2 {
			t.Errorf("woken putters = %v, want [1 2] (FIFO)", order)
		}
		q.SetCapacity(0) // unbounded: the rest drain
	})
	e.Run()
	if len(order) != 3 || order[2] != 3 {
		t.Errorf("final put order = %v, want [1 2 3]", order)
	}
	if q.Len() != 4 {
		t.Errorf("len = %d, want 4", q.Len())
	}
}
