package sim

import (
	"strings"
	"testing"
	"time"
)

// TestTickFiresAtStartThenEveryInterval covers the coalesced-callback
// ticker: first firing at start, then one per interval while fn keeps
// returning true, all on the scheduler with no goroutine.
func TestTickFiresAtStartThenEveryInterval(t *testing.T) {
	e := NewEnv()
	var at []time.Duration
	e.Tick(2*time.Millisecond, 3*time.Millisecond, func(now time.Duration) bool {
		at = append(at, now)
		return len(at) < 4
	})
	e.Run()
	want := []time.Duration{2 * time.Millisecond, 5 * time.Millisecond, 8 * time.Millisecond, 11 * time.Millisecond}
	if len(at) != len(want) {
		t.Fatalf("fired %d times, want %d", len(at), len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("firing %d at %v, want %v", i, at[i], want[i])
		}
	}
	if e.Now() != 11*time.Millisecond {
		t.Errorf("clock at %v after last firing, want 11ms", e.Now())
	}
}

// TestTickInterleavesWithProcesses pins the ordering contract: a tick
// firing at the same instant as a process wakeup dispatches in (t, seq)
// order like any other event.
func TestTickInterleavesWithProcesses(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Tick(time.Millisecond, time.Millisecond, func(now time.Duration) bool {
		order = append(order, "tick")
		return now < 2*time.Millisecond
	})
	e.Process("sleeper", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		order = append(order, "proc")
	})
	e.Run()
	// The tick at 2ms was scheduled by the 1ms tick (seq after the
	// sleeper's 2ms wakeup, which was scheduled at t=0): proc first.
	want := "tick,proc,tick"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("order %q, want %q", got, want)
	}
}

// TestTickValidation locks the panics on bad arguments.
func TestTickValidation(t *testing.T) {
	e := NewEnv()
	e.now = time.Millisecond
	for name, fn := range map[string]func(){
		"non-positive interval": func() { e.Tick(2*time.Millisecond, 0, func(time.Duration) bool { return false }) },
		"start in the past":     func() { e.Tick(0, time.Millisecond, func(time.Duration) bool { return false }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Tick must panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestDeadlockPanicCountsBlockedProcesses locks the diagnostic folded
// into the deadlock panic: it reports how many processes are still
// blocked and how many of those wait on resources/queues.
func TestDeadlockPanicCountsBlockedProcesses(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "never-fed", 0)
	r := e.NewResource("unit", 1)
	e.Process("holder", func(p *Proc) {
		r.Acquire(p) // holds forever, terminates without releasing
	})
	for i := 0; i < 2; i++ {
		e.Process("getter", func(p *Proc) {
			q.Get(p) // blocks forever
		})
	}
	e.Process("waiter", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p) // blocks forever behind the leaked unit
	})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Run must panic on deadlock")
		}
		msg, ok := v.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", v)
		}
		for _, part := range []string{"3 process(es)", "3 waiting on resources/queues", "t=1ms"} {
			if !strings.Contains(msg, part) {
				t.Errorf("deadlock panic %q missing %q", msg, part)
			}
		}
	}()
	e.Run()
}
