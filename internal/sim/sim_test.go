package sim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

const ms = time.Millisecond

func TestClockAdvancesWithSleep(t *testing.T) {
	e := NewEnv()
	var stamps []time.Duration
	e.Process("p", func(p *Proc) {
		stamps = append(stamps, p.Now())
		p.Sleep(10 * ms)
		stamps = append(stamps, p.Now())
		p.Sleep(5 * ms)
		stamps = append(stamps, p.Now())
	})
	e.Run()
	want := []time.Duration{0, 10 * ms, 15 * ms}
	for i, w := range want {
		if stamps[i] != w {
			t.Errorf("stamp[%d] = %v, want %v", i, stamps[i], w)
		}
	}
	if e.Now() != 15*ms {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEnv()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Process(name, func(p *Proc) {
			p.Sleep(ms)
			order = append(order, name)
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("order = %v, want FIFO by creation", order)
	}
}

func TestCallbacksAt(t *testing.T) {
	e := NewEnv()
	var at time.Duration
	e.At(7*ms, func() { at = e.Now() })
	e.After(3*ms, func() {
		if e.Now() != 3*ms {
			t.Errorf("After fired at %v", e.Now())
		}
	})
	e.Run()
	if at != 7*ms {
		t.Errorf("At fired at %v", at)
	}
}

func TestSchedulingIntoThePastPanics(t *testing.T) {
	e := NewEnv()
	e.After(5*ms, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		e.At(ms, func() {})
	})
	e.Run()
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEnv()
	e.Process("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		p.Sleep(-ms)
	})
	e.Run()
}

func TestZeroSleepYields(t *testing.T) {
	e := NewEnv()
	var order []int
	e.Process("a", func(p *Proc) {
		order = append(order, 1)
		p.Sleep(0)
		order = append(order, 3)
	})
	e.Process("b", func(p *Proc) {
		order = append(order, 2)
	})
	e.Run()
	want := []int{1, 2, 3}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcessSpawnsProcess(t *testing.T) {
	e := NewEnv()
	var childTime time.Duration
	e.Process("parent", func(p *Proc) {
		p.Sleep(4 * ms)
		e.Process("child", func(c *Proc) {
			c.Sleep(2 * ms)
			childTime = c.Now()
		})
		p.Sleep(10 * ms)
	})
	e.Run()
	if childTime != 6*ms {
		t.Errorf("child finished at %v, want 6ms", childTime)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEnv()
	ticks := 0
	e.Process("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10 * ms)
			ticks++
		}
	})
	e.RunUntil(55 * ms)
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	if e.Now() != 55*ms {
		t.Errorf("Now = %v, want 55ms", e.Now())
	}
	e.RunUntil(1000 * ms)
	if ticks != 100 {
		t.Errorf("ticks = %d, want 100", ticks)
	}
}

func TestRunUntilDoesNotRewindClock(t *testing.T) {
	e := NewEnv()
	e.Process("p", func(p *Proc) { p.Sleep(50 * ms) })
	e.RunUntil(100 * ms)
	e.RunUntil(70 * ms) // earlier than Now; must be a no-op
	if e.Now() != 100*ms {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := NewEnv()
		r := e.NewResource("r", 2)
		var finish []time.Duration
		src := rng.New(42)
		for i := 0; i < 10; i++ {
			d := time.Duration(1+src.Intn(20)) * ms
			e.Process("w", func(p *Proc) {
				r.Acquire(p)
				p.Sleep(d)
				r.Release()
				finish = append(finish, p.Now())
			})
		}
		e.Run()
		return finish
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResourceSerializesHolders(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("unit", 1)
	var spans [][2]time.Duration
	for i := 0; i < 3; i++ {
		e.Process("w", func(p *Proc) {
			r.Acquire(p)
			start := p.Now()
			p.Sleep(10 * ms)
			r.Release()
			spans = append(spans, [2]time.Duration{start, p.Now()})
		})
	}
	e.Run()
	if len(spans) != 3 {
		t.Fatalf("spans = %d", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i][0] < spans[i-1][1] {
			t.Errorf("holder %d overlaps previous: %v vs %v", i, spans[i], spans[i-1])
		}
	}
	if e.Now() != 30*ms {
		t.Errorf("three serialized 10ms holds should end at 30ms, got %v", e.Now())
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("duo", 2)
	for i := 0; i < 4; i++ {
		e.Process("w", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(10 * ms)
			r.Release()
		})
	}
	e.Run()
	// 4 holders, 2 at a time, 10ms each => 20ms.
	if e.Now() != 20*ms {
		t.Errorf("end = %v, want 20ms", e.Now())
	}
	if u := r.Utilization(); u < 0.99 || u > 1.01 {
		t.Errorf("utilization = %g, want 1.0", u)
	}
	if r.Acquisitions() != 4 {
		t.Errorf("acquisitions = %d", r.Acquisitions())
	}
}

func TestResourceFCFSOrder(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("unit", 1)
	var order []int
	e.Process("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(10 * ms)
		r.Release()
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.Process("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * ms) // arrive in order 1,2,3
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(ms)
			r.Release()
		})
	}
	e.Run()
	for i, w := range []int{1, 2, 3} {
		if order[i] != w {
			t.Fatalf("order = %v, want FCFS", order)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("unit", 1)
	e.Process("p", func(p *Proc) {
		if !r.TryAcquire() {
			t.Error("first TryAcquire must succeed")
		}
		if r.TryAcquire() {
			t.Error("second TryAcquire must fail")
		}
		r.Release()
		if !r.TryAcquire() {
			t.Error("TryAcquire after release must succeed")
		}
		r.Release()
	})
	e.Run()
}

func TestReleaseIdlePanics(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("unit", 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Release()
}

func TestResourceUse(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("unit", 1)
	e.Process("p", func(p *Proc) {
		r.Use(p, func() {
			if r.InUse() != 1 {
				t.Error("not held inside Use")
			}
			p.Sleep(5 * ms)
		})
		if r.InUse() != 0 {
			t.Error("not released after Use")
		}
	})
	e.Run()
}

func TestDeadlockPanics(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("unit", 1)
	e.Process("holder", func(p *Proc) {
		r.Acquire(p) // never released
	})
	e.Process("waiter", func(p *Proc) {
		p.Sleep(ms)
		r.Acquire(p) // blocks forever
		t.Error("waiter should never acquire")
	})
	defer func() {
		if recover() == nil {
			t.Error("Run must panic on deadlock")
		}
	}()
	e.Run()
}

func TestQueueFIFO(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q", 0)
	var got []int
	e.Process("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Process("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(ms)
			q.Put(p, i*10)
		}
	})
	e.Run()
	for i, w := range []int{10, 20, 30} {
		if got[i] != w {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestQueueBoundedBlocksProducer(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q", 2)
	var putDone time.Duration
	e.Process("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // must block until the consumer drains one
		putDone = p.Now()
	})
	e.Process("consumer", func(p *Proc) {
		p.Sleep(10 * ms)
		q.Get(p)
		p.Sleep(10 * ms)
		q.Get(p)
		q.Get(p)
	})
	e.Run()
	if putDone != 10*ms {
		t.Errorf("third Put completed at %v, want 10ms", putDone)
	}
	if q.Peak() != 2 {
		t.Errorf("peak = %d, want 2", q.Peak())
	}
}

func TestQueueTryOps(t *testing.T) {
	e := NewEnv()
	q := NewQueue[string](e, "q", 1)
	e.Process("p", func(p *Proc) {
		if _, ok := q.TryGet(); ok {
			t.Error("TryGet on empty must fail")
		}
		if !q.TryPut("a") {
			t.Error("TryPut must succeed")
		}
		if q.TryPut("b") {
			t.Error("TryPut on full must fail")
		}
		v, ok := q.TryGet()
		if !ok || v != "a" {
			t.Errorf("TryGet = %q, %v", v, ok)
		}
	})
	e.Run()
}

func TestQueueGetBeforePut(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q", 0)
	var got int
	var when time.Duration
	e.Process("consumer", func(p *Proc) {
		got = q.Get(p)
		when = p.Now()
	})
	e.Process("producer", func(p *Proc) {
		p.Sleep(25 * ms)
		q.Put(p, 7)
	})
	e.Run()
	if got != 7 || when != 25*ms {
		t.Errorf("got %d at %v", got, when)
	}
}

func TestNewResourceValidation(t *testing.T) {
	e := NewEnv()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.NewResource("bad", 0)
}

func TestNewQueueValidation(t *testing.T) {
	e := NewEnv()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewQueue[int](e, "bad", -1)
}

func TestProcNameAndEnv(t *testing.T) {
	e := NewEnv()
	e.Process("myproc", func(p *Proc) {
		if p.Name() != "myproc" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Env() != e {
			t.Error("Env mismatch")
		}
	})
	e.Run()
}

// Property: with a capacity-1 resource and n holders of duration d,
// total makespan is exactly n*d regardless of arrival pattern, and
// FCFS order matches arrival order.
func TestQuickResourceMakespan(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%8 + 1
		e := NewEnv()
		r := e.NewResource("u", 1)
		src := rng.New(seed)
		arrivals := make([]time.Duration, n)
		for i := range arrivals {
			arrivals[i] = time.Duration(src.Intn(3)) * ms
		}
		hold := 10 * ms
		var busy time.Duration
		for i := 0; i < n; i++ {
			a := arrivals[i]
			e.Process("w", func(p *Proc) {
				p.Sleep(a)
				r.Acquire(p)
				p.Sleep(hold)
				busy += hold
				r.Release()
			})
		}
		e.Run()
		// Clock must end at least n*hold (serialized) and the total
		// busy time is exactly n*hold.
		return busy == time.Duration(n)*hold && e.Now() >= time.Duration(n)*hold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: queue preserves order for arbitrary put sequences.
func TestQuickQueueOrder(t *testing.T) {
	f := func(vals []int) bool {
		e := NewEnv()
		q := NewQueue[int](e, "q", 0)
		var got []int
		e.Process("producer", func(p *Proc) {
			for _, v := range vals {
				q.Put(p, v)
				p.Sleep(ms)
			}
		})
		e.Process("consumer", func(p *Proc) {
			for range vals {
				got = append(got, q.Get(p))
			}
		})
		e.Run()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
