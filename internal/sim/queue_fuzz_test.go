package sim_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Fuzz-style model check for the ring-buffer queue: a long seeded
// random interleaving of puts, gets, mid-queue removals, capacity
// changes and timed waits runs against a naive slice-backed model of
// the documented semantics, comparing every observable result. This is
// the safety net under the PR 7 rewrite from slice-shift storage to a
// growable power-of-two ring with intrusive wait lists: wraparound,
// regrowth mid-wrap, middle deletion across the seam, and
// timeout-versus-arrival races all occur naturally in the op stream.

// queueModel is the reference implementation: the pre-rewrite
// slice-shift queue semantics in their plainest possible form.
type queueModel struct {
	items    []int
	capacity int
	peak     int
}

func (m *queueModel) tryPut(v int) bool {
	if m.capacity > 0 && len(m.items) >= m.capacity {
		return false
	}
	m.items = append(m.items, v)
	if len(m.items) > m.peak {
		m.peak = len(m.items)
	}
	return true
}

func (m *queueModel) tryGet() (int, bool) {
	if len(m.items) == 0 {
		return 0, false
	}
	v := m.items[0]
	m.items = m.items[1:]
	return v, true
}

func (m *queueModel) removeWhere(pred func(int) bool) (int, bool) {
	for i, v := range m.items {
		if pred(v) {
			m.items = append(m.items[:i:i], m.items[i+1:]...)
			return v, true
		}
	}
	return 0, false
}

// TestQueueFuzzAgainstSliceModel drives 20k random operations through
// both implementations inside one simulated process, checking every
// return value, length and peak, then drains both and compares the
// leftovers item by item.
func TestQueueFuzzAgainstSliceModel(t *testing.T) {
	const steps = 20000
	e := sim.NewEnv()
	q := sim.NewQueue[int](e, "fuzz", 0)
	m := &queueModel{}
	src := rng.New(42)
	next := 0 // distinct values so FIFO violations are visible

	// Failures are recorded, not raised: t.Fatalf inside a simulated
	// process would Goexit without parking and hang the scheduler.
	var failMsg string
	fail := func(format string, args ...any) {
		if failMsg == "" {
			failMsg = fmt.Sprintf(format, args...)
		}
	}
	check := func(step int, what string, got, want int, gotOK, wantOK bool) {
		if gotOK != wantOK || (gotOK && got != want) {
			fail("step %d %s: got (%d, %v), model says (%d, %v)", step, what, got, gotOK, want, wantOK)
		}
	}

	e.Process("driver", func(p *sim.Proc) {
		for step := 0; step < steps && failMsg == ""; step++ {
			switch op := src.Intn(10); {
			case op < 4: // put
				v := next
				next++
				gotOK := q.TryPut(v)
				wantOK := m.tryPut(v)
				if gotOK != wantOK {
					fail("step %d TryPut(%d): got %v, model says %v", step, v, gotOK, wantOK)
				}
			case op < 7: // get
				got, gotOK := q.TryGet()
				want, wantOK := m.tryGet()
				check(step, "TryGet", got, want, gotOK, wantOK)
			case op < 8: // middle removal, possibly across the ring seam
				r := 1 + src.Intn(6)
				pred := func(v int) bool { return v%r == 0 }
				got, gotOK := q.RemoveWhere(pred)
				want, wantOK := m.removeWhere(pred)
				check(step, "RemoveWhere", got, want, gotOK, wantOK)
			case op < 9: // rebound, including shrink below occupancy
				c := src.Intn(7)
				q.SetCapacity(c)
				m.capacity = c
				// No blocked putters exist in this single-process
				// drive, so rebounding only changes admission.
			default: // timed wait racing a scheduled arrival
				d := time.Duration(1+src.Intn(5)) * time.Microsecond
				if len(m.items) == 0 {
					arrival := time.Duration(1+src.Intn(7)) * time.Microsecond
					v := next
					next++
					p.Env().At(p.Now()+arrival, func() { q.TryPut(v) })
					got, gotOK := q.GetWithin(p, d)
					if arrival <= d {
						// The arrival callback was scheduled before the
						// wait began, so at a same-instant deadline the
						// item still wins. It transits the buffer (the
						// peak sees it) before the waiter consumes it.
						m.tryPut(v)
						m.tryGet()
						check(step, "GetWithin(hit)", got, v, gotOK, true)
					} else {
						check(step, "GetWithin(timeout)", got, 0, gotOK, false)
						// The late arrival is still a pending event;
						// sleep past it so the lockstep model stays in
						// sync (the callback fires first — it was
						// scheduled before this sleep, so its sequence
						// number is lower at the same instant).
						p.Sleep(arrival - d)
						m.tryPut(v)
					}
				} else {
					got, gotOK := q.GetWithin(p, d)
					want, wantOK := m.tryGet()
					check(step, "GetWithin(buffered)", got, want, gotOK, wantOK)
				}
			}
			if q.Len() != len(m.items) {
				fail("step %d: Len %d, model %d", step, q.Len(), len(m.items))
			}
			if q.Peak() != m.peak {
				fail("step %d: Peak %d, model %d", step, q.Peak(), m.peak)
			}
		}
		for q.Len() > 0 && failMsg == "" {
			got, gotOK := q.TryGet()
			want, wantOK := m.tryGet()
			check(steps, "drain", got, want, gotOK, wantOK)
		}
		if failMsg == "" && len(m.items) != 0 {
			fail("model has %d leftover items after drain", len(m.items))
		}
	})
	e.Run()
	if failMsg != "" {
		t.Fatal(failMsg)
	}
}
