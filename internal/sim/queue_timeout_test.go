package sim

import (
	"testing"
	"time"
)

// TestGetWithinTimesOut: a consumer on an empty queue gives up exactly
// at the deadline, in virtual time.
func TestGetWithinTimesOut(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	var at time.Duration
	var got bool
	env.Process("consumer", func(p *Proc) {
		_, got = q.GetWithin(p, 30*time.Millisecond)
		at = p.Now()
	})
	env.Run()
	if got {
		t.Fatal("GetWithin returned an item from an empty queue")
	}
	if at != 30*time.Millisecond {
		t.Errorf("timed out at %v, want 30ms", at)
	}
}

// TestGetWithinReturnsEarly: an item arriving before the deadline is
// delivered at its arrival instant, and the pending timeout event must
// not disturb the consumer afterwards.
func TestGetWithinReturnsEarly(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	env.Process("producer", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		q.Put(p, 7)
	})
	var v int
	var got bool
	var at, after time.Duration
	env.Process("consumer", func(p *Proc) {
		v, got = q.GetWithin(p, time.Second)
		at = p.Now()
		// Sleep past the stale deadline; a buggy timeout would try to
		// wake us out of this sleep or corrupt the wait accounting.
		p.Sleep(2 * time.Second)
		after = p.Now()
	})
	env.Run()
	if !got || v != 7 {
		t.Fatalf("got (%d, %v), want (7, true)", v, got)
	}
	if at != 10*time.Millisecond {
		t.Errorf("delivered at %v, want 10ms", at)
	}
	if after != 10*time.Millisecond+2*time.Second {
		t.Errorf("consumer resumed at %v after stale deadline", after)
	}
}

// TestGetWithinZeroIsPoll: d == 0 never blocks.
func TestGetWithinZeroIsPoll(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	env.Process("consumer", func(p *Proc) {
		if _, ok := q.GetWithin(p, 0); ok {
			t.Error("poll of empty queue returned an item")
		}
		q.TryPut(3)
		if v, ok := q.GetWithin(p, 0); !ok || v != 3 {
			t.Errorf("poll got (%d, %v), want (3, true)", v, ok)
		}
		if p.Now() != 0 {
			t.Errorf("poll advanced the clock to %v", p.Now())
		}
	})
	env.Run()
}

// TestGetWithinDeadlineInstantPut: an item put exactly at the deadline
// by a process scheduled before the timeout event still wins — event
// order is (time, sequence), and the put was scheduled first.
func TestGetWithinDeadlineInstantPut(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	// The producer's sleep-until-50ms event is scheduled before the
	// consumer's timeout event (the consumer starts second).
	env.Process("producer", func(p *Proc) {
		p.Sleep(50 * time.Millisecond)
		q.Put(p, 9)
	})
	var v int
	var got bool
	env.Process("consumer", func(p *Proc) {
		v, got = q.GetWithin(p, 50*time.Millisecond)
	})
	env.Run()
	if !got || v != 9 {
		t.Errorf("got (%d, %v), want (9, true) at the shared instant", v, got)
	}
}

// TestGetWithinStaleTimerSpuriousWake: after an early return, the
// consumer re-parks on the same queue with a plain Get; the stale
// timeout must not break the blocking Get (its loop absorbs the
// spurious wake) and the item put later is still delivered.
func TestGetWithinStaleTimerSpuriousWake(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	env.Process("producer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Put(p, 1) // satisfies the GetWithin early
		p.Sleep(time.Second)
		q.Put(p, 2) // arrives long after the stale 5ms deadline
	})
	var order []int
	env.Process("consumer", func(p *Proc) {
		v, ok := q.GetWithin(p, 5*time.Millisecond)
		if !ok {
			t.Error("first GetWithin should get an item at 1ms")
		}
		order = append(order, v)
		order = append(order, q.Get(p)) // parked across the stale deadline
	})
	env.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("delivered %v, want [1 2]", order)
	}
}

// TestGetWithinNegativePanics: a negative wait is a caller bug.
func TestGetWithinNegativePanics(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	env.Process("consumer", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative GetWithin did not panic")
			}
		}()
		q.GetWithin(p, -time.Millisecond)
	})
	env.Run()
}

// TestGetWithinWakesBlockedPutter: taking an item through GetWithin
// frees capacity like Get, waking a producer blocked on a full queue.
func TestGetWithinWakesBlockedPutter(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 1)
	var putDone time.Duration
	env.Process("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2) // blocks on the full queue
		putDone = p.Now()
	})
	env.Process("consumer", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		if v, ok := q.GetWithin(p, time.Second); !ok || v != 1 {
			t.Errorf("got (%d, %v), want (1, true)", v, ok)
		}
	})
	env.Run()
	if putDone != 20*time.Millisecond {
		t.Errorf("second put completed at %v, want 20ms", putDone)
	}
}

// TestCancelledTimerLeavesNoResidue: a GetWithin whose item arrives
// early must not leave a stale deadline event that drags the clock —
// the run ends at the last real event, so SimTime and energy
// integrals stay honest.
func TestCancelledTimerLeavesNoResidue(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	env.Process("producer", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		q.Put(p, 1)
	})
	env.Process("consumer", func(p *Proc) {
		if _, ok := q.GetWithin(p, time.Hour); !ok {
			t.Error("item not delivered")
		}
	})
	env.Run()
	if env.Now() != 10*time.Millisecond {
		t.Errorf("run ended at %v; the hour-long cancelled timer dragged the clock", env.Now())
	}
}

// TestAtCancelable: a cancelled callback never runs; an uncancelled
// one does.
func TestAtCancelable(t *testing.T) {
	env := NewEnv()
	fired := []string{}
	cancel := env.AtCancelable(5*time.Millisecond, func() { fired = append(fired, "cancelled") })
	env.AtCancelable(7*time.Millisecond, func() { fired = append(fired, "kept") })
	cancel()
	env.Run()
	if len(fired) != 1 || fired[0] != "kept" {
		t.Errorf("fired = %v, want [kept]", fired)
	}
	if env.Now() != 7*time.Millisecond {
		t.Errorf("clock at %v, want 7ms", env.Now())
	}
}
