package core

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/tensor"
)

// runPipeline drives n items through stages and returns the pipeline,
// its job, and per-index completion counts at the final sink.
func runPipeline(t *testing.T, stages []Target, opts PipelineOptions, n int) (*Pipeline, *Job, map[int]int) {
	t.Helper()
	pl, err := NewPipeline(stages, opts)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	seen := map[int]int{}
	job := pl.Start(env, sliceOf(n), func(r Result) { seen[r.Index]++ })
	env.Run()
	return pl, job, seen
}

// TestPipelineItemConservation: every item crosses every stage and is
// classified exactly once at the final sink; the pipeline job counts
// final completions only.
func TestPipelineItemConservation(t *testing.T) {
	const n = 50
	stages := []Target{
		&stubTarget{name: "head", latency: time.Millisecond},
		&stubTarget{name: "mid", latency: 2 * time.Millisecond},
		&stubTarget{name: "tail", latency: time.Millisecond},
	}
	pl, job, seen := runPipeline(t, stages, PipelineOptions{}, n)
	if job.Err != nil {
		t.Fatalf("pipeline error: %v", job.Err)
	}
	checkConservation(t, seen, n, "pipeline")
	if job.Images != n {
		t.Errorf("job.Images = %d, want %d (final-stage completions only)", job.Images, n)
	}
	if !job.Done() {
		t.Error("pipeline job not settled")
	}
	for i, cj := range pl.StageJobs() {
		if cj.Images != n {
			t.Errorf("stage %d processed %d items, want %d", i, cj.Images, n)
		}
		if !cj.Done() {
			t.Errorf("stage %d job not settled", i)
		}
	}
	if got, want := pl.Name(), "pipe(head>mid>tail)"; got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
}

// TestPipelineStampsSurviveHops: the item's identity and arrival
// stamp must survive every stage boundary, so end-to-end latency is
// still arrival → last-stage completion.
func TestPipelineStampsSurviveHops(t *testing.T) {
	items := make([]Item, 10)
	for i := range items {
		items[i] = Item{Index: i, Label: i % 3, ArrivedAt: time.Duration(i) * time.Millisecond}
	}
	pl, err := NewPipeline([]Target{
		&stubTarget{name: "head", latency: time.Millisecond},
		&stubTarget{name: "tail", latency: time.Millisecond},
	}, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	var results []Result
	job := pl.Start(env, NewSliceSource(items), func(r Result) { results = append(results, r) })
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if len(results) != len(items) {
		t.Fatalf("%d results, want %d", len(results), len(items))
	}
	for _, r := range results {
		if want := time.Duration(r.Index) * time.Millisecond; r.ArrivedAt != want {
			t.Errorf("item %d: ArrivedAt %v across pipeline, want %v", r.Index, r.ArrivedAt, want)
		}
		if wantLabel := r.Index % 3; r.Label != wantLabel {
			t.Errorf("item %d: Label %d, want %d", r.Index, r.Label, wantLabel)
		}
		if r.End <= r.Start {
			t.Errorf("item %d: unstamped final service window %v..%v", r.Index, r.Start, r.End)
		}
	}
}

// TestPipelineBackpressure: a slow tail must bound the head's
// run-ahead to the boundary window — the handoff never holds more
// than QueueDepth activations no matter how fast the head is.
func TestPipelineBackpressure(t *testing.T) {
	const n, depth = 60, 2
	stages := []Target{
		&stubTarget{name: "head", latency: 10 * time.Microsecond},
		&stubTarget{name: "tail", latency: 5 * time.Millisecond},
	}
	pl, job, seen := runPipeline(t, stages, PipelineOptions{QueueDepth: depth}, n)
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	checkConservation(t, seen, n, "backpressure")
	// The window covers in-stage + in-handoff items, so the handoff
	// peak can never exceed it (+1 transient for the end sentinel).
	if peak := pl.handoffs[0].Peak(); peak > depth+1 {
		t.Errorf("handoff peak %d with window %d: head ran ahead unboundedly", peak, depth)
	}
	// And with the window held, the fast head's job must stretch to
	// roughly the tail's pace rather than finishing immediately.
	headDone := pl.StageJobs()[0].DoneAt
	tailSpan := time.Duration(n) * 5 * time.Millisecond
	if headDone < tailSpan/2 {
		t.Errorf("head finished at %v, before backpressure could matter (tail span %v)", headDone, tailSpan)
	}
}

// TestPipelinePerBoundaryDepths: QueueDepths overrides the window per
// boundary.
func TestPipelinePerBoundaryDepths(t *testing.T) {
	const n = 40
	stages := []Target{
		&stubTarget{name: "a", latency: 10 * time.Microsecond},
		&stubTarget{name: "b", latency: 10 * time.Microsecond},
		&stubTarget{name: "c", latency: 3 * time.Millisecond},
	}
	pl, job, seen := runPipeline(t, stages, PipelineOptions{QueueDepths: []int{1, 4}}, n)
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	checkConservation(t, seen, n, "per-boundary depths")
	if peak := pl.handoffs[0].Peak(); peak > 1+1 {
		t.Errorf("boundary 0 peak %d, window 1", peak)
	}
	if peak := pl.handoffs[1].Peak(); peak > 4+1 {
		t.Errorf("boundary 1 peak %d, window 4", peak)
	}
	if _, err := NewPipeline(stages, PipelineOptions{QueueDepths: []int{1}}); err == nil {
		t.Error("ragged QueueDepths accepted")
	}
}

// dropStage consumes like stubTarget but silently drops every
// dropEvery-th pulled item (no emission) and reports it via onDrop —
// the shape of an interior stage exhausting its recovery budget.
type dropStage struct {
	name      string
	latency   time.Duration
	dropEvery int
	onDrop    func()
}

func (t *dropStage) Name() string      { return t.name }
func (t *dropStage) TDPWatts() float64 { return 1 }

func (t *dropStage) Start(env *sim.Env, src Source, sink func(Result)) *Job {
	job := &Job{}
	env.Process(t.name, func(p *sim.Proc) {
		job.StartedAt = p.Now()
		job.ReadyAt = p.Now()
		pulled := 0
		for {
			item, ok := src.Next(p)
			if !ok {
				break
			}
			pulled++
			start := p.Now()
			p.Sleep(t.latency)
			if t.dropEvery > 0 && pulled%t.dropEvery == 0 {
				t.onDrop()
				continue
			}
			sink(Result{Index: item.Index, Label: item.Label, Pred: item.Label,
				Start: start, End: p.Now(),
				ArrivedAt: item.ArrivedAt, DispatchedAt: start, Device: t.name})
			job.Images++
		}
		job.Finish(p)
	})
	return job
}

// TestPipelineIntermediateDropSettles is the Job completion-contract
// regression: an item dropped at an interior stage never reaches the
// last stage, yet the pipeline job must still settle (every stage job
// finishes, the dropped items' boundary credits are released via
// StageDropped) and the final sink never sees an item twice. With
// more drops than the boundary window, forgetting the credit release
// deadlocks this test.
func TestPipelineIntermediateDropSettles(t *testing.T) {
	const n, depth, dropEvery = 40, 2, 5
	head := &dropStage{name: "head", latency: time.Millisecond, dropEvery: dropEvery}
	tail := &stubTarget{name: "tail", latency: time.Millisecond}
	pl, err := NewPipeline([]Target{head, tail}, PipelineOptions{QueueDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	head.onDrop = func() {
		drops++
		pl.StageDropped(0)
	}
	env := sim.NewEnv()
	seen := map[int]int{}
	job := pl.Start(env, sliceOf(n), func(r Result) { seen[r.Index]++ })
	env.Run()
	if job.Err != nil {
		t.Fatalf("pipeline error: %v", job.Err)
	}
	if !job.Done() {
		t.Fatal("pipeline job never settled after interior drops")
	}
	wantDrops := n / dropEvery
	if drops != wantDrops {
		t.Fatalf("%d drops, want %d (did the head stall?)", drops, wantDrops)
	}
	if len(seen) != n-wantDrops {
		t.Errorf("%d distinct items delivered, want %d", len(seen), n-wantDrops)
	}
	for idx, count := range seen {
		if count != 1 {
			t.Errorf("item %d delivered %d times", idx, count)
		}
	}
	if job.Images != n-wantDrops {
		t.Errorf("job.Images = %d, want %d", job.Images, n-wantDrops)
	}
}

// TestPipelineLastStageDropNoCredit: StageDropped on the last stage
// (or out of range) is a no-op — there is no downstream boundary.
func TestPipelineLastStageDropNoCredit(t *testing.T) {
	pl, job, seen := runPipeline(t, []Target{
		&stubTarget{name: "head", latency: time.Millisecond},
		&stubTarget{name: "tail", latency: time.Millisecond},
	}, PipelineOptions{}, 10)
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	checkConservation(t, seen, 10, "no-credit drop")
	pl.StageDropped(1)  // last stage: no boundary below
	pl.StageDropped(-1) // out of range
	pl.StageDropped(99)
}

// TestPipelinePoolStages: stages compose recursively — a Pool at the
// head and a Pool at the tail, with the tail's workers all seeing the
// boundary sentinel.
func TestPipelinePoolStages(t *testing.T) {
	const n = 80
	headPool, err := NewPool([]Target{
		&stubTarget{name: "v0", latency: 2 * time.Millisecond},
		&stubTarget{name: "v1", latency: 2 * time.Millisecond},
	}, PoolOptions{Routing: RouteWorkStealing})
	if err != nil {
		t.Fatal(err)
	}
	tailPool, err := NewPool([]Target{
		&stubTarget{name: "c0", latency: time.Millisecond},
		&stubTarget{name: "c1", latency: time.Millisecond},
	}, PoolOptions{Routing: RouteWorkStealing})
	if err != nil {
		t.Fatal(err)
	}
	pl, job, seen := runPipeline(t, []Target{headPool, tailPool}, PipelineOptions{QueueDepth: 4}, n)
	if job.Err != nil {
		t.Fatalf("pool-staged pipeline error: %v", job.Err)
	}
	checkConservation(t, seen, n, "pool stages")
	if job.Images != n {
		t.Errorf("job.Images = %d, want %d", job.Images, n)
	}
	if got := pl.DeviceCount(); got != 4 {
		t.Errorf("DeviceCount() = %d, want 4", got)
	}
	if got := pl.TDPWatts(); got != 4 {
		t.Errorf("TDPWatts() = %v, want 4", got)
	}
}

// TestPipelineSingleStageDelegates: a one-stage pipeline hands Start
// straight to the stage — same job object, no extra queues or
// processes, so it is event-for-event identical to running the target
// alone.
func TestPipelineSingleStageDelegates(t *testing.T) {
	st := &stubTarget{name: "only", latency: time.Millisecond}
	pl, err := NewPipeline([]Target{st}, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	seen := 0
	job := pl.Start(env, sliceOf(5), func(Result) { seen++ })
	env.Run()
	if job.Err != nil || seen != 5 {
		t.Fatalf("delegated run: err=%v seen=%d", job.Err, seen)
	}
	if pl.StageJobs()[0] != job {
		t.Error("single-stage pipeline did not return the stage's own job")
	}
	if pl.credits != nil || pl.handoffs != nil {
		t.Error("single-stage pipeline built boundary queues")
	}
}

// TestPipelineDeadTailUnblocksHead: a tail that stops consuming
// mid-run must not wedge the head on boundary credits; the pipeline
// settles and surfaces the stranded work as an error.
func TestPipelineDeadTailUnblocksHead(t *testing.T) {
	const n = 30
	stages := []Target{
		&stubTarget{name: "head", latency: 100 * time.Microsecond},
		&stubTarget{name: "tail", latency: time.Millisecond, quitAfter: 5},
	}
	_, job, seen := runPipeline(t, stages, PipelineOptions{QueueDepth: 2}, n)
	if !job.Done() {
		t.Fatal("pipeline wedged on a dead tail stage")
	}
	if job.Err == nil {
		t.Error("dead tail stranded items but pipeline reported no error")
	}
	if len(seen) != 5 {
		t.Errorf("%d items delivered past the dead tail, want 5", len(seen))
	}
}

// TestPipelineReadyAtIsLatest: the chain serves end to end only once
// every stage is up, so ReadyAt is the slowest stage's, not the
// earliest (the Pool convention does not apply).
func TestPipelineReadyAtIsLatest(t *testing.T) {
	stages := []Target{
		&stubTarget{name: "head", setup: 50 * time.Millisecond, latency: time.Millisecond},
		&stubTarget{name: "tail", setup: 2 * time.Millisecond, latency: time.Millisecond},
	}
	_, job, _ := runPipeline(t, stages, PipelineOptions{}, 10)
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if job.ReadyAt != 50*time.Millisecond {
		t.Errorf("ReadyAt = %v, want 50ms (latest stage setup)", job.ReadyAt)
	}
}

// TestPipelineCollectorNeverDoubleCounts: a Collector on the pipeline
// sink sees only final-stage completions — interior hops are not
// completions — while OnStageResult observes every hop with its stage
// index.
func TestPipelineCollectorNeverDoubleCounts(t *testing.T) {
	const n = 20
	col := NewCollector(false)
	hops := map[int]int{}
	pl, err := NewPipeline([]Target{
		&stubTarget{name: "head", latency: time.Millisecond},
		&stubTarget{name: "tail", latency: time.Millisecond},
	}, PipelineOptions{OnStageResult: func(stage int, r Result) { hops[stage]++ }})
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	job := pl.Start(env, sliceOf(n), col.Sink())
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if got := col.N; got != n {
		t.Errorf("collector counted %d completions, want %d (hops must not double-count)", got, n)
	}
	if hops[0] != n || hops[1] != n {
		t.Errorf("OnStageResult saw %v, want %d per stage", hops, n)
	}
}

// TestPipelineForwardPayload: the standard hop conversion carries the
// intermediate activation as the downstream item's payload.
func TestPipelineForwardPayload(t *testing.T) {
	r := Result{Index: 3, Label: 1, Output: tensor.New(2), ArrivedAt: 7 * time.Millisecond}
	item := AsStage(&stubTarget{name: "x"}).Forward(r)
	if item.Index != 3 || item.Label != 1 || item.ArrivedAt != 7*time.Millisecond {
		t.Errorf("hop lost identity/stamps: %+v", item)
	}
	if item.Image != r.Output {
		t.Errorf("hop lost activation payload: %+v", item.Image)
	}
}
