package core

import (
	"fmt"
	"time"

	"repro/internal/devsim"
	"repro/internal/nn"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// batchEngine is the common face of the two Caffe baselines.
type batchEngine interface {
	NextBatchDuration(b int) time.Duration
	TDPWatts() float64
}

// BatchAssembly configures how a BatchTarget assembles batches beyond
// the classic fill-to-batch-size behavior.
type BatchAssembly struct {
	// MaxWait is the total assembly budget of one batch: the deadline
	// is set when the first item is pulled, and however many items
	// have arrived when it lapses form the batch — so no item ever
	// waits more than MaxWait for batch-mates, the bound an SLO needs
	// (a per-arrival idle timeout could stall up to (size-1)×MaxWait).
	// A lightly loaded device therefore stops paying full-batch
	// assembly latency. 0 waits indefinitely (the classic Caffe
	// behavior). Takes effect only against sources supporting
	// bounded-wait pulls (TimedSource: ArrivalSource, AdmissionQueue,
	// pool feeds); other sources never block mid-batch, so there is
	// nothing to bound.
	MaxWait time.Duration
	// Adaptive sizes each batch from the backlog observed when the
	// batch opens — between 1 and the configured batch size — instead
	// of always waiting for a full batch. Needs a source that can
	// report its backlog (DepthSource); otherwise the configured size
	// is used.
	Adaptive bool
}

// BatchTarget runs a Caffe-style batch device: it gathers up to
// BatchSize items from the source, prices the batch on the device
// model, and (optionally) computes the outputs with a real FP32
// forward pass. The paper uses "the traditional Caffe batch-based
// processing on the CPU and GPU tests" (§IV). SetAssembly turns the
// fixed gather into SLO-aware adaptive assembly.
type BatchTarget struct {
	name       string
	engine     batchEngine
	graph      *nn.Graph
	batchSize  int
	functional bool
	timeline   *trace.Timeline
	assembly   BatchAssembly
	batches    int
	// carry holds items re-enqueued by an injected batch failure
	// (fault.BatchOOM): they seed the next batch ahead of fresh pulls,
	// keeping delivery order close to arrival order. carryPulls keeps
	// their original DispatchedAt instants.
	carry      []Item
	carryPulls []time.Duration
	onRequeue  func(item Item, at time.Duration)
	oomSplits  int
}

// NewCPUTarget builds the Caffe-MKL target.
func NewCPUTarget(engine *devsim.CPU, graph *nn.Graph, batchSize int, functional bool) (*BatchTarget, error) {
	if engine == nil {
		return nil, fmt.Errorf("core: cpu target needs an engine")
	}
	return newBatchTarget("cpu", engine, graph, batchSize, functional)
}

// NewGPUTarget builds the Caffe-cuDNN target. Functional execution
// uses the same FP32 forward as the CPU: the paper confirms the GPU
// "provides equivalent confidence results" (§IV-B, footnote 6).
func NewGPUTarget(engine *devsim.GPU, graph *nn.Graph, batchSize int, functional bool) (*BatchTarget, error) {
	if engine == nil {
		return nil, fmt.Errorf("core: gpu target needs an engine")
	}
	return newBatchTarget("gpu", engine, graph, batchSize, functional)
}

func newBatchTarget(name string, engine batchEngine, graph *nn.Graph, batchSize int, functional bool) (*BatchTarget, error) {
	if engine == nil {
		return nil, fmt.Errorf("core: %s target needs an engine", name)
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("core: batch size %d", batchSize)
	}
	if functional && graph == nil {
		return nil, fmt.Errorf("core: functional %s target needs a graph", name)
	}
	if graph == nil && batchSize > 0 {
		// Non-functional runs still need the graph for the workload; the
		// engine already embeds it, so a nil graph is acceptable.
		_ = graph
	}
	return &BatchTarget{
		name:       name,
		engine:     engine,
		graph:      graph,
		batchSize:  batchSize,
		functional: functional,
		timeline:   trace.Disabled(),
	}, nil
}

// SetTimeline attaches a trace timeline (Fig. 4-style spans).
func (t *BatchTarget) SetTimeline(tl *trace.Timeline) { t.timeline = tl }

// SetAssembly configures adaptive batch assembly; call before Start.
// A negative MaxWait panics (a caller bug, like a negative sleep).
func (t *BatchTarget) SetAssembly(a BatchAssembly) {
	if a.MaxWait < 0 {
		panic(fmt.Sprintf("core: negative batch max-wait %v", a.MaxWait))
	}
	t.assembly = a
}

// Batches returns how many batches the target has run — with adaptive
// assembly, Images/Batches is the realized mean batch size. Valid
// after the run completes.
func (t *BatchTarget) Batches() int { return t.batches }

// OOMSplits returns how many batch submissions failed with an
// injected allocator error and were split-and-retried. Valid after
// the run completes.
func (t *BatchTarget) OOMSplits() int { return t.oomSplits }

// SetRetryObserver registers fn to observe every item re-enqueued by
// an injected batch failure (fault.BatchOOM) — wire it to
// Collector.NoteRetry so the session's retry accounting covers batch
// engines too. Call before Start.
func (t *BatchTarget) SetRetryObserver(fn func(item Item, at time.Duration)) {
	t.onRequeue = fn
}

// Name implements Target.
func (t *BatchTarget) Name() string { return t.name }

// TDPWatts implements Target.
func (t *BatchTarget) TDPWatts() float64 { return t.engine.TDPWatts() }

// Start implements Target. With the default assembly the gather is
// the classic one — block until the batch is full or the source is
// exhausted. With MaxWait set (against a TimedSource) a partial batch
// closes when no further item arrives in time; with Adaptive set
// (against a DepthSource) each batch targets the backlog observed
// when its first item is pulled, clamped to [1, BatchSize].
func (t *BatchTarget) Start(env *sim.Env, src Source, sink func(Result)) *Job {
	job := &Job{}
	timed, hasTimed := src.(TimedSource)
	depth, hasDepth := src.(DepthSource)
	useWait := t.assembly.MaxWait > 0 && hasTimed
	env.Process(t.name, func(p *sim.Proc) {
		job.StartedAt = p.Now()
		job.ReadyAt = p.Now()
		batch := make([]Item, 0, t.batchSize)
		pulls := make([]time.Duration, 0, t.batchSize)
		open := true
		for open || len(t.carry) > 0 {
			batch = batch[:0]
			pulls = pulls[:0]
			if len(t.carry) > 0 {
				// Items re-enqueued by a failed submission go first.
				batch = append(batch, t.carry...)
				pulls = append(pulls, t.carryPulls...)
				t.carry = t.carry[:0]
				t.carryPulls = t.carryPulls[:0]
			} else {
				// An idle device waits as long as it takes for the first
				// item; the max-wait clock only runs once a batch is open.
				item, ok := src.Next(p)
				if !ok {
					break
				}
				batch = append(batch, item)
				pulls = append(pulls, p.Now())
			}
			size := t.batchSize
			if t.assembly.Adaptive && hasDepth {
				if want := len(batch) + depth.Pending(); want < size {
					size = want
				}
			}
			deadline := p.Now() + t.assembly.MaxWait
			for len(batch) < size {
				var it Item
				var got bool
				if useWait {
					wait := deadline - p.Now()
					if wait < 0 {
						wait = 0
					}
					it, got, open = timed.NextWithin(p, wait)
					if !got {
						break // deadline hit (open) or source drained (!open)
					}
				} else {
					it, got = src.Next(p)
					if !got {
						open = false
						break
					}
				}
				batch = append(batch, it)
				// The pull instant is when the item joined the
				// assembling batch — its DispatchedAt.
				pulls = append(pulls, p.Now())
			}
			// An injected allocator failure (fault.BatchOOM) fails the
			// submission: the target splits and retries — the first
			// ⌈b/2⌉ items run as a smaller batch now, the failed half is
			// re-enqueued ahead of the next gather, so items are delayed
			// but never lost. A single-item batch cannot split (the
			// fault is a capacity fault) and runs unharmed.
			if fb, ok := t.engine.(interface{ TakeBatchFailure() bool }); ok && len(batch) > 1 && fb.TakeBatchFailure() {
				keep := (len(batch) + 1) / 2
				t.carry = append(t.carry, batch[keep:]...)
				t.carryPulls = append(t.carryPulls, pulls[keep:]...)
				if t.onRequeue != nil {
					for _, it := range batch[keep:] {
						t.onRequeue(it, p.Now())
					}
				}
				t.timeline.Add(t.name, trace.Fault, p.Now(), p.Now(),
					fmt.Sprintf("batch-oom: %d of %d re-enqueued", len(batch)-keep, len(batch)))
				batch = batch[:keep]
				pulls = pulls[:keep]
				t.oomSplits++
			}
			start := p.Now()
			d := t.engine.NextBatchDuration(len(batch))
			p.Sleep(d)
			t.timeline.Add(t.name, trace.Compute, start, p.Now(), fmt.Sprintf("batch=%d", len(batch)))
			t.emit(batch, pulls, start, p.Now(), sink, job)
			job.Images += len(batch)
			t.batches++
		}
		job.Finish(p)
	})
	return job
}

// emit produces one Result per batch item, running the functional
// forward pass when enabled.
func (t *BatchTarget) emit(batch []Item, pulls []time.Duration, start, end time.Duration, sink func(Result), job *Job) {
	var outputs *tensor.T
	if t.functional {
		in, ok := t.stack(batch)
		if ok {
			out, err := t.graph.Forward(in, nn.FP32)
			if err != nil {
				if job.Err == nil {
					job.Err = err
				}
			} else {
				outputs = out
			}
		}
	}
	classes := 0
	if outputs != nil {
		classes = outputs.Elems() / len(batch)
	}
	for i, item := range batch {
		r := Result{
			Index:        item.Index,
			Label:        item.Label,
			Pred:         -1,
			Start:        start,
			End:          end,
			ArrivedAt:    item.ArrivedAt,
			DispatchedAt: pulls[i],
			Device:       t.name,
			Tenant:       item.Tenant,
		}
		if outputs != nil {
			row := tensor.FromSlice(outputs.Data[i*classes:(i+1)*classes], classes)
			pred, conf := row.ArgMax()
			r.Pred, r.Confidence, r.Output = pred, conf, row
		}
		sink(r)
	}
}

// stack assembles the batch input tensor; it reports false when any
// image is missing (pure-performance items).
func (t *BatchTarget) stack(batch []Item) (*tensor.T, bool) {
	shape := t.graph.InputShape()
	per := shape.Elems()
	out := tensor.New(append(tensor.Shape{len(batch)}, shape...)...)
	for i, item := range batch {
		if item.Image == nil {
			return nil, false
		}
		if item.Image.Elems() != per {
			return nil, false
		}
		copy(out.Data[i*per:(i+1)*per], item.Image.Data)
	}
	return out, true
}
