package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/sim"
)

// Routing selects how a Pool distributes source items across its
// child targets. It is the device-group scheduler of §III ("run a
// specific subset of inputs on a GPU, and at the same time another
// subset ... on several VPUs"), generalized to any mix of targets.
type Routing int

const (
	// RouteWeighted (the zero value, and so the default) deals items
	// in proportion to per-child weights. With explicit
	// PoolOptions.Weights the deal is strict deficit round-robin
	// (blocking on the preferred child, so the ratio holds). Without
	// explicit weights it adapts: weights track each child's observed
	// completion rate and a full preferred queue spills the item to
	// the next-best child, keeping the pool work-conserving — faster
	// devices receive proportionally more.
	RouteWeighted Routing = iota
	// RouteStatic partitions the source into contiguous per-child
	// blocks sized by the weights (equal split by default). It needs a
	// finite source (one implementing Sized); starting it on an
	// unbounded stream records an error on the pool's Job.
	RouteStatic
	// RouteRoundRobin deals item k to child k mod N in order — the
	// pool-level analogue of the paper's static multi-VPU scheduling.
	RouteRoundRobin
	// RouteWorkStealing hands every child the shared source directly:
	// whichever child is free pulls the next item. No dispatcher
	// process, minimum latency, but batch children may grab eagerly
	// from sources whose items are all available up front.
	RouteWorkStealing
	// RouteLatency deals each item to the child expected to finish it
	// soonest: an EWMA of each child's observed service time, scaled by
	// its queued-but-unfinished item count. A full preferred feed
	// spills the item down the preference order. Built for open-loop
	// serving (ArrivalSource), where tail latency — not the deal ratio
	// — is the objective.
	RouteLatency
)

// String names the routing policy.
func (r Routing) String() string {
	switch r {
	case RouteStatic:
		return "static-split"
	case RouteRoundRobin:
		return "round-robin"
	case RouteWorkStealing:
		return "work-stealing"
	case RouteWeighted:
		return "throughput-weighted"
	case RouteLatency:
		return "latency-ewma"
	}
	return fmt.Sprintf("routing(%d)", int(r))
}

// PoolOptions configures a Pool.
type PoolOptions struct {
	// Routing selects the dispatch policy (default RouteWeighted).
	Routing Routing
	// Weights are optional per-child dispatch weights for RouteStatic
	// and RouteWeighted. Nil means equal (static) or adaptive
	// (weighted). When set, len(Weights) must equal the child count
	// and every weight must be positive.
	Weights []float64
	// QueueDepth bounds each child's feed queue for the dispatcher
	// policies (default 2, mirroring the NCS FIFO depth). Deeper
	// queues smooth dispatch at the cost of balance.
	QueueDepth int
	// OnResult, when set, observes every result with the index of the
	// child that produced it — the hook per-group statistics hang off.
	// Losing hedge duplicates are deduplicated before this hook: it
	// sees each item at most once.
	OnResult func(child int, r Result)
	// Hedge configures speculative hedged requests across the
	// children: an item in flight longer than the hedge trigger is
	// duplicated onto a different healthy child, the first completion
	// wins, and the loser is cancelled in-queue or discarded on
	// completion (HedgeConfig). The zero value disables hedging and
	// leaves runs bit-identical to pre-hedging behavior. Requires a
	// dealt routing policy (not RouteWorkStealing, which has no
	// per-child feeds to duplicate into) and at least two children.
	Hedge HedgeConfig
}

// Pool is a Target over N child targets: a composite device group.
// Because Pool itself implements Target, groups compose recursively —
// a pool of (CPU, pool of VPUs) is just another target.
type Pool struct {
	name     string
	children []Target
	opts     PoolOptions
	jobs     []*Job
	// down marks children whose HealthAware observer reports no healthy
	// device left: their weight is effectively zero — the scored and
	// dealt policies route around them — until they rejoin.
	down []bool
	// dispatching is true while the dispatcher loop is live; only then
	// does a down transition drain the child's feed back for
	// re-dispatch (afterwards the bounded feed is left for the child to
	// drain on rejoin, or for the stranded-item accounting if it never
	// does). Hedge duplicates launch only while it is true: a duplicate
	// placed after the shutdown sentinel could never be consumed.
	dispatching bool
	// hedge is the hedged-request engine of the current run (nil when
	// PoolOptions.Hedge is disabled).
	hedge *hedger
	// healthObs are the pool's own health observers (SetHealthObserver):
	// they see the aggregate healthy/total device counts across all
	// children on every child transition.
	healthObs []func(healthy, total int, at time.Duration)
	// childHealthy/childTotal hold the latest per-child health report
	// (initialized to full health at Start).
	childHealthy, childTotal []int
}

// NewPool builds a device group over children.
func NewPool(children []Target, opts PoolOptions) (*Pool, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("core: pool needs at least one child target")
	}
	for i, c := range children {
		if c == nil {
			return nil, fmt.Errorf("core: pool child %d is nil", i)
		}
	}
	if opts.Weights != nil {
		if len(opts.Weights) != len(children) {
			return nil, fmt.Errorf("core: %d weights for %d children", len(opts.Weights), len(children))
		}
		for i, w := range opts.Weights {
			if w <= 0 {
				return nil, fmt.Errorf("core: non-positive weight %g for child %d", w, i)
			}
		}
	}
	if opts.QueueDepth < 0 {
		return nil, fmt.Errorf("core: negative queue depth %d", opts.QueueDepth)
	}
	if err := opts.Hedge.Validate(); err != nil {
		return nil, err
	}
	if opts.Hedge.Enabled() {
		if opts.Routing == RouteWorkStealing {
			return nil, fmt.Errorf("core: hedging needs per-child feeds to duplicate into; routing %v shares the source directly", opts.Routing)
		}
		if len(children) < 2 {
			return nil, fmt.Errorf("core: hedging needs at least two children to duplicate across")
		}
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 2
	}
	names := make([]string, len(children))
	for i, c := range children {
		names[i] = c.Name()
	}
	return &Pool{
		name:     fmt.Sprintf("pool[%s](%s)", opts.Routing, strings.Join(names, "+")),
		children: children,
		opts:     opts,
	}, nil
}

// Name implements Target.
func (pl *Pool) Name() string { return pl.name }

// TDPWatts implements Target: the aggregate TDP of the group.
func (pl *Pool) TDPWatts() float64 {
	var w float64
	for _, c := range pl.children {
		w += c.TDPWatts()
	}
	return w
}

// Children returns the child targets.
func (pl *Pool) Children() []Target { return pl.children }

// ChildJobs returns the per-child jobs of the last Start. Valid after
// Start; fields settle once Env.Run returns.
func (pl *Pool) ChildJobs() []*Job { return pl.jobs }

// DeviceCount reports how many devices the group drives, summed
// recursively across children (non-reporting children count as one) —
// the capacity denominator health-aware admission scales against.
func (pl *Pool) DeviceCount() int {
	n := 0
	for _, c := range pl.children {
		n += targetDeviceCount(c)
	}
	return n
}

// targetDeviceCount returns a target's device count when it reports
// one (VPUTarget, nested Pool), else 1.
func targetDeviceCount(t Target) int {
	if dc, ok := t.(interface{ DeviceCount() int }); ok {
		return dc.DeviceCount()
	}
	return 1
}

// SetHealthObserver implements HealthAware for the group as a whole:
// fn sees the aggregate (healthy, total) device counts across every
// child on each child health transition, in virtual time. Observers
// accumulate — a parent pool and a health-aware admission queue can
// both subscribe. Register before Start; children that are not
// HealthAware count as permanently healthy.
func (pl *Pool) SetHealthObserver(fn func(healthy, total int, at time.Duration)) {
	pl.healthObs = append(pl.healthObs, fn)
}

// HedgeItemLost arbitrates a child-internal item loss under
// pool-level hedging: it reports whether the loss should be counted
// as a dropped item. A child's recovery pipeline cannot see the
// pool's hedge state, so whoever wires the children's
// RecoveryConfig.OnDrop must route it through here before counting
// the drop — a lost duplicate whose other copy is still in flight
// (or already delivered) is not a loss, and a real loss disarms the
// item's hedge timer so a recorded drop cannot later be resurrected
// into a double-counted completion. Without pool-level hedging it
// always reports true.
func (pl *Pool) HedgeItemLost(index int) bool {
	if pl.hedge == nil {
		return true
	}
	return pl.hedge.copyLost(index, -1)
}

// SetHedgeBudget replaces the pool's hedge-volume budget from now on
// (0 = unlimited) — the operator's mid-run hedging knob (scenario
// hot-reload). The budget is consulted when a trigger fires, so only
// fires after the change see the new cap; with hedging disabled (or
// before Start) the call only updates the configuration.
func (pl *Pool) SetHedgeBudget(b float64) {
	pl.opts.Hedge.Budget = b
	if pl.hedge != nil {
		pl.hedge.setBudget(b)
	}
}

// notifyHealth publishes the aggregate health to the pool's own
// observers.
func (pl *Pool) notifyHealth(at time.Duration) {
	if len(pl.healthObs) == 0 {
		return
	}
	var healthy, total int
	for i := range pl.childTotal {
		healthy += pl.childHealthy[i]
		total += pl.childTotal[i]
	}
	for _, fn := range pl.healthObs {
		fn(healthy, total, at)
	}
}

// childFeed is the per-child source fed by the pool dispatcher.
type childFeed struct {
	q *sim.Queue[Item]
	// upstream is the pool's source when it can report backlog (an
	// ArrivalSource or AdmissionQueue), so a child's Pending sees
	// through the shallow feed queue to the real queued work.
	upstream DepthSource
}

// poolSentinel marks end-of-feed on a child queue. Real items use
// Index >= 0 (folder/dataset/stream indices); -1 is the framework-wide
// shutdown convention.
const poolSentinel = -1

func (f *childFeed) Next(p *sim.Proc) (Item, bool) {
	item := f.q.Get(p)
	if item.Index == poolSentinel {
		// Re-post the sentinel (there is always room for it — Get just
		// freed a slot) so children that poll exhaustion repeatedly,
		// like the batch targets, keep seeing it.
		f.q.TryPut(item)
		return Item{}, false
	}
	return item, true
}

// NextWithin implements TimedSource, so adaptive batch children close
// partial batches against their pool feed.
func (f *childFeed) NextWithin(p *sim.Proc, d time.Duration) (Item, bool, bool) {
	item, ok := f.q.GetWithin(p, d)
	if !ok {
		return Item{}, false, true
	}
	if item.Index == poolSentinel {
		f.q.TryPut(item)
		return Item{}, false, false
	}
	return item, true, true
}

// Pending implements DepthSource: the feed's own buffer plus the
// undealt backlog of the pool's source. The feed queue is shallow
// (QueueDepth, default 2) and the dispatcher refills it the moment a
// child pulls, so without the upstream term an adaptive batch child
// would clamp its batches at QueueDepth+1 forever instead of
// converging to its configured size under saturation. The upstream
// backlog is shared by all children, so the estimate is an upper
// bound on what this child will actually receive — the max-wait
// deadline bounds the cost of over-sizing. The count may include the
// shutdown sentinel once dealing ends; by then sizing no longer
// matters.
func (f *childFeed) Pending() int {
	n := f.q.Len()
	if f.upstream != nil {
		n += f.upstream.Pending()
	}
	return n
}

// Start implements Target. It starts every child on its share of the
// source, runs a dispatcher process for the dealt policies, and joins
// the children in virtual time, aggregating their jobs:
// ReadyAt = earliest child ReadyAt (the group can process from then),
// DoneAt = latest child DoneAt, Images = total across children.
func (pl *Pool) Start(env *sim.Env, src Source, sink func(Result)) *Job {
	job := &Job{}
	n := len(pl.children)
	pl.jobs = make([]*Job, n)
	completed := make([]int, n)
	ewma := make([]float64, n)

	childSink := func(i int) func(Result) {
		return func(r Result) {
			completed[i]++
			// Track each child's observed service time for RouteLatency
			// (cheap enough to keep warm under every policy). A batch
			// result's span covers the whole batch, so the estimate is
			// an upper bound per item — conservative for batch
			// children, exact for per-item ones. Losing hedge
			// duplicates still update the estimate (the child did the
			// work) but never reach the sink.
			if obs := r.ServiceTime().Seconds(); obs > 0 {
				if ewma[i] == 0 {
					ewma[i] = obs
				} else {
					ewma[i] = ewmaAlpha*obs + (1-ewmaAlpha)*ewma[i]
				}
			}
			if pl.hedge != nil && !pl.hedge.complete(r.Index, i, r.End) {
				return // discarded losing duplicate
			}
			// The pool counts delivered results, not raw child work:
			// with hedging the two differ by the discarded losers
			// (child jobs still carry their own totals).
			job.Images++
			if pl.opts.OnResult != nil {
				pl.opts.OnResult(i, r)
			}
			sink(r)
		}
	}

	// RouteStatic needs the total item count up front. When the
	// source cannot provide one the error is recorded on the pool's
	// job, but the children still start and shut down cleanly so
	// ChildJobs and the per-child statistics stay well-formed.
	var total int
	var routeErr error
	if pl.opts.Routing == RouteStatic {
		if sized, ok := src.(Sized); ok {
			total = sized.Remaining()
			if total == 0 {
				routeErr = fmt.Errorf("core: static split needs a non-empty finite source; %T reports 0 items", src)
			}
		} else {
			routeErr = fmt.Errorf("core: static split needs a finite source (implementing Sized); %T is not", src)
		}
	}

	// Start the children. Work-stealing children share the source
	// directly; the dealt policies get per-child bounded feeds. A
	// child that finishes early (device error) drains its own feed on
	// the way out, waking a dispatcher blocked on the full queue; the
	// drained items are re-routed to surviving children while dealing
	// is still in progress. Items stranded by a child that dies after
	// dealing has finished (at most QueueDepth of them) are dropped —
	// the child's error is on its job and the pool's, so the loss is
	// never silent.
	feeds := make([]*sim.Queue[Item], n)
	dealt := make([]int, n)
	var orphans []Item
	done := sim.NewQueue[int](env, "pool/join", 0)
	upstream, _ := src.(DepthSource)
	pl.down = make([]bool, n)
	pl.dispatching = false
	pl.childHealthy = make([]int, n)
	pl.childTotal = make([]int, n)

	// Hedged requests: a timer per dispatched item duplicates it onto
	// a different healthy child when it ages past the trigger; the
	// dedup in childSink delivers the first completion and discards
	// the loser. Disabled (nil) hedging adds no timers, so the event
	// sequence — and therefore every result — is bit-identical to a
	// pool without the feature.
	pl.hedge = nil
	if pl.opts.Hedge.Enabled() {
		redispatch := func(item Item, exclude int) (int, bool) {
			if !pl.dispatching {
				return 0, false // a duplicate behind the shutdown sentinel would never be served
			}
			for off := 1; off < n; off++ {
				j := (exclude + off) % n
				if feeds[j] == nil || pl.jobs[j].done || pl.down[j] {
					continue
				}
				if feeds[j].TryPut(item) {
					dealt[j]++
					return j, true
				}
			}
			return 0, false
		}
		cancelCopy := func(index, child int) bool {
			if child < 0 || child >= n || feeds[child] == nil {
				return false
			}
			_, ok := feeds[child].RemoveWhere(func(it Item) bool { return it.Index == index })
			if ok {
				// The withdrawn copy will never complete: take back its
				// dealt count, or the child would carry a phantom
				// outstanding item in the routing scores forever.
				dealt[child]--
			}
			return ok
		}
		// In-flight capacity: each child fleet holds one executing
		// item plus two queued slots per device, and each bounded feed
		// adds QueueDepth more — the DynamicBudget utilization
		// denominator.
		hcap := 0
		for _, c := range pl.children {
			hcap += 3 * targetDeviceCount(c)
		}
		if pl.opts.QueueDepth > 0 {
			hcap += n * pl.opts.QueueDepth
		}
		pl.hedge = newHedger(env, pl.opts.Hedge, hcap, redispatch, cancelCopy)
	}

	for i, c := range pl.children {
		var csrc Source
		if pl.opts.Routing == RouteWorkStealing {
			csrc = src
		} else {
			feeds[i] = sim.NewQueue[Item](env, fmt.Sprintf("pool/feed%d", i), pl.opts.QueueDepth)
			csrc = &childFeed{q: feeds[i], upstream: upstream}
		}
		pl.childTotal[i] = targetDeviceCount(c)
		pl.childHealthy[i] = pl.childTotal[i]
		// Health-aware failover: a child reporting no healthy device is
		// routed around (weight zero) and, while dealing is live, its
		// bounded feed is drained back to the dispatcher for
		// re-dispatch; it rejoins the deal on the first healthy report.
		// Every transition also updates the pool's aggregate health,
		// which the pool republishes to its own observers
		// (SetHealthObserver) — the feed health-aware admission
		// subscribes to.
		if ha, ok := c.(HealthAware); ok {
			i := i
			ha.SetHealthObserver(func(healthy, total int, at time.Duration) {
				pl.childHealthy[i], pl.childTotal[i] = healthy, total
				wasDown := pl.down[i]
				pl.down[i] = healthy == 0
				if pl.down[i] && !wasDown && pl.dispatching && feeds[i] != nil {
					orphans = append(orphans, drainFeed(feeds[i])...)
				}
				pl.notifyHealth(at)
			})
		}
		cj := c.Start(env, csrc, childSink(i))
		i := i
		cj.onFinish(func(p *sim.Proc) {
			done.Put(p, i)
			if feeds[i] != nil {
				orphans = append(orphans, drainFeed(feeds[i])...)
			}
		})
		pl.jobs[i] = cj
	}

	env.Process("pool-main", func(p *sim.Proc) {
		job.StartedAt = p.Now()
		if routeErr != nil {
			job.Err = routeErr
			pl.shutdownFeeds(p, feeds)
		} else if pl.opts.Routing != RouteWorkStealing {
			pl.dispatching = true
			pl.dispatch(p, src, feeds, dealt, &orphans, completed, ewma, total)
			pl.dispatching = false
		}
		// Join every child, then aggregate.
		for range pl.children {
			done.Get(p)
		}
		// Hedge arbitration before the stranded-item accounting: a
		// reclaimed duplicate whose other copy was served is not
		// stranded work, and an item with both copies stranded counts
		// once, not twice.
		if pl.hedge != nil {
			orphans = pl.hedge.filterLost(orphans)
		}
		var ready time.Duration
		readySet := false
		for i, cj := range pl.jobs {
			if cj.Err != nil && job.Err == nil {
				job.Err = fmt.Errorf("core: pool child %s: %w", pl.children[i].Name(), cj.Err)
			}
			if cj.Err == nil && (!readySet || cj.ReadyAt < ready) {
				ready = cj.ReadyAt
				readySet = true
			}
		}
		if job.Err == nil && len(orphans) > 0 {
			job.Err = fmt.Errorf("core: %d item(s) stranded by a child that stopped consuming", len(orphans))
		}
		job.ReadyAt = ready
		job.Finish(p)
	})
	return job
}

// dispatch pulls items from src and deals them to the child feeds
// according to the routing policy, re-routing items reclaimed from
// children that shut down early, then closes every feed.
func (pl *Pool) dispatch(p *sim.Proc, src Source, feeds []*sim.Queue[Item], dealt []int, orphans *[]Item, completed []int, ewma []float64, total int) {
	n := len(feeds)

	// splitEnds[i] is the exclusive end of child i's contiguous block
	// under RouteStatic: weighted largest-remainder apportionment.
	var splitEnds []int
	if pl.opts.Routing == RouteStatic {
		splitEnds = apportion(total, pl.staticWeights(n))
	}

	k := 0
	deliver := func(item Item) bool {
		// A reclaimed duplicate of an item already served through its
		// other copy is quietly forgotten, not re-served.
		if pl.hedge != nil && pl.hedge.settled(item.Index) {
			return true
		}
		var target int
		var ok bool
		switch pl.opts.Routing {
		case RouteStatic:
			child := 0
			for child < n-1 && k >= splitEnds[child] {
				child++
			}
			target, ok = pl.put(p, feeds, child, item)
		case RouteRoundRobin:
			target, ok = pl.put(p, feeds, k%n, item)
		case RouteLatency:
			target, ok = pl.dispatchLatency(p, feeds, dealt, completed, ewma, item)
		default: // RouteWeighted
			target, ok = pl.dispatchWeighted(p, feeds, dealt, completed, item)
		}
		if !ok {
			return false
		}
		k++
		if pl.hedge != nil {
			pl.hedge.track(item, target, p.Now())
		}
		// If the target died while we were blocked on its full feed,
		// the item (and anything else queued there) is stranded —
		// reclaim it for re-routing.
		if pl.jobs[target].done {
			*orphans = append(*orphans, drainFeed(feeds[target])...)
		}
		return true
	}

	alive := true
	for alive {
		for alive && len(*orphans) > 0 {
			item := (*orphans)[0]
			*orphans = (*orphans)[1:]
			alive = deliver(item)
		}
		if !alive {
			break
		}
		item, ok := src.Next(p)
		if !ok {
			break
		}
		alive = deliver(item)
	}
	for alive && len(*orphans) > 0 {
		item := (*orphans)[0]
		*orphans = (*orphans)[1:]
		alive = deliver(item)
	}
	// When !alive every child has shut down (their errors are on
	// their jobs) and any remaining items are dropped; the pool job
	// carries the first error. Dealing ends *before* the sentinels
	// post: a hedge timer firing while a sentinel Put blocks must not
	// slip a duplicate behind a sentinel already delivered to another
	// feed, where no child would ever serve it.
	pl.dispatching = false
	pl.shutdownFeeds(p, feeds)
}

// shutdownFeeds posts the end-of-feed sentinel to every live child.
func (pl *Pool) shutdownFeeds(p *sim.Proc, feeds []*sim.Queue[Item]) {
	for i := range feeds {
		if feeds[i] == nil || pl.jobs[i].done {
			continue
		}
		feeds[i].Put(p, Item{Index: poolSentinel})
	}
}

// drainFeed empties a dead child's feed, waking any blocked putter,
// and returns the stranded work items (sentinels are discarded).
func drainFeed(q *sim.Queue[Item]) []Item {
	var items []Item
	for {
		item, ok := q.TryGet()
		if !ok {
			return items
		}
		if item.Index != poolSentinel {
			items = append(items, item)
		}
	}
}

// put delivers the item to child i, reroutes to the next live child
// when i has already shut down, and reports which child received it
// (ok=false when no child is left alive). Healthy children are
// preferred; when every live child is unhealthy the item is queued on
// the first live one anyway (its bounded feed absorbs a little work
// until someone rejoins) rather than stalling the deal.
func (pl *Pool) put(p *sim.Proc, feeds []*sim.Queue[Item], i int, item Item) (int, bool) {
	n := len(feeds)
	for pass := 0; pass < 2; pass++ {
		for off := 0; off < n; off++ {
			j := (i + off) % n
			if pl.jobs[j].done {
				continue
			}
			if pass == 0 && pl.down[j] {
				continue
			}
			feeds[j].Put(p, item)
			return j, true
		}
	}
	return 0, false
}

// staticWeights returns the explicit weights or an equal split.
func (pl *Pool) staticWeights(n int) []float64 {
	if pl.opts.Weights != nil {
		return pl.opts.Weights
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// dispatchWeighted deals the item to the live child with the smallest
// dispatch deficit dealt/weight. With explicit weights it blocks on
// that child so the requested ratio holds exactly; in adaptive mode
// (weights from observed completions, +1 so cold children stay
// eligible) a full preferred feed spills the item down the preference
// order, chasing realized throughput instead of a fixed ratio.
func (pl *Pool) dispatchWeighted(p *sim.Proc, feeds []*sim.Queue[Item], dealt, completed []int, item Item) (int, bool) {
	explicit := pl.opts.Weights != nil
	weight := func(i int) float64 {
		if explicit {
			return pl.opts.Weights[i]
		}
		return float64(completed[i] + 1)
	}
	deficit := func(i int) float64 { return float64(dealt[i]) / weight(i) }
	return pl.dispatchByScore(p, feeds, dealt, deficit, !explicit, item)
}

// ewmaAlpha is the smoothing factor of the per-child service-time
// estimate behind RouteLatency: recent observations dominate within
// ~5 completions, slow enough to ride out single-item jitter.
const ewmaAlpha = 0.2

// dispatchLatency deals the item to the live child with the smallest
// expected completion time: EWMA service time × (outstanding items +
// 1). A cold child (no completions yet) scores zero and is probed
// first, so every child's estimate warms up immediately.
func (pl *Pool) dispatchLatency(p *sim.Proc, feeds []*sim.Queue[Item], dealt, completed []int, ewma []float64, item Item) (int, bool) {
	score := func(i int) float64 {
		outstanding := dealt[i] - completed[i]
		return ewma[i] * float64(outstanding+1)
	}
	return pl.dispatchByScore(p, feeds, dealt, score, true, item)
}

// dispatchByScore is the dispatch skeleton shared by the scored
// policies: deal to the live child with the smallest score. With
// spill, a full preferred feed spills the item down the score order
// (work-conserving); without, or when every live feed is full, it
// blocks on the best child. Reports which child received the item
// (ok=false when no child is left alive).
func (pl *Pool) dispatchByScore(p *sim.Proc, feeds []*sim.Queue[Item], dealt []int, score func(int) float64, spill bool, item Item) (int, bool) {
	// Unhealthy children are excluded from the deal (weight zero)
	// until they rejoin; if every live child is down, deal to the live
	// set anyway so the bounded feeds buffer the work instead of the
	// pool stalling.
	var order []int
	for i := range feeds {
		if !pl.jobs[i].done && !pl.down[i] {
			order = append(order, i)
		}
	}
	if len(order) == 0 {
		for i := range feeds {
			if !pl.jobs[i].done {
				order = append(order, i)
			}
		}
	}
	if len(order) == 0 {
		return 0, false
	}
	// Insertion sort by score: n is a handful of devices.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && score(order[j]) < score(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	if spill {
		for _, i := range order {
			if feeds[i].TryPut(item) {
				dealt[i]++
				return i, true
			}
		}
	}
	feeds[order[0]].Put(p, item)
	dealt[order[0]]++
	return order[0], true
}

// apportion splits total items into contiguous blocks proportional to
// weights using largest-remainder rounding; it returns the exclusive
// end index of each block (the last always equals total).
func apportion(total int, weights []float64) []int {
	n := len(weights)
	var sum float64
	for _, w := range weights {
		sum += w
	}
	counts := make([]int, n)
	rema := make([]float64, n)
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		counts[i] = int(exact)
		rema[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < total {
		best := 0
		for i := 1; i < n; i++ {
			if rema[i] > rema[best] {
				best = i
			}
		}
		counts[best]++
		rema[best] = -1
		assigned++
	}
	ends := make([]int, n)
	acc := 0
	for i, c := range counts {
		acc += c
		ends[i] = acc
	}
	return ends
}
