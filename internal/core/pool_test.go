package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// stubTarget is a deterministic fixed-latency device for scheduler
// tests: setup once, then one item at a time. quitAfter > 0 makes it
// stop consuming (without reading the end-of-feed sentinel) after
// that many items — the shape of a device dying mid-run.
type stubTarget struct {
	name      string
	setup     time.Duration
	latency   time.Duration
	quitAfter int
}

func (t *stubTarget) Name() string      { return t.name }
func (t *stubTarget) TDPWatts() float64 { return 1 }

func (t *stubTarget) Start(env *sim.Env, src Source, sink func(Result)) *Job {
	job := &Job{}
	env.Process(t.name, func(p *sim.Proc) {
		job.StartedAt = p.Now()
		p.Sleep(t.setup)
		job.ReadyAt = p.Now()
		for t.quitAfter == 0 || job.Images < t.quitAfter {
			item, ok := src.Next(p)
			if !ok {
				break
			}
			start := p.Now()
			p.Sleep(t.latency)
			sink(Result{Index: item.Index, Label: item.Label, Pred: item.Label,
				Start: start, End: p.Now(),
				ArrivedAt: item.ArrivedAt, DispatchedAt: start, Device: t.name})
			job.Images++
		}
		job.Finish(p)
	})
	return job
}

func sliceOf(n int) *SliceSource {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Index: i, Label: i % 7}
	}
	return NewSliceSource(items)
}

// runPool drives n items through children under the routing policy
// and returns the pool job plus per-index completion counts.
func runPool(t *testing.T, children []Target, opts PoolOptions, n int) (*Pool, *Job, map[int]int) {
	t.Helper()
	pool, err := NewPool(children, opts)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	seen := map[int]int{}
	job := pool.Start(env, sliceOf(n), func(r Result) { seen[r.Index]++ })
	env.Run()
	return pool, job, seen
}

func checkConservation(t *testing.T, seen map[int]int, n int, ctx string) {
	t.Helper()
	if len(seen) != n {
		t.Fatalf("%s: %d distinct items classified, want %d", ctx, len(seen), n)
	}
	for idx, count := range seen {
		if count != 1 {
			t.Errorf("%s: item %d classified %d times", ctx, idx, count)
		}
	}
}

// TestPoolItemConservation: every routing policy must classify every
// item exactly once, across equal and skewed device groups.
func TestPoolItemConservation(t *testing.T) {
	const n = 100
	for _, routing := range []Routing{RouteStatic, RouteRoundRobin, RouteWorkStealing, RouteWeighted, RouteLatency} {
		for _, skewed := range []bool{false, true} {
			children := []Target{
				&stubTarget{name: "a", latency: time.Millisecond},
				&stubTarget{name: "b", latency: time.Millisecond},
				&stubTarget{name: "c", latency: time.Millisecond},
			}
			if skewed {
				children[2].(*stubTarget).latency = 9 * time.Millisecond
			}
			ctx := fmt.Sprintf("%v skewed=%v", routing, skewed)
			pool, job, seen := runPool(t, children, PoolOptions{Routing: routing}, n)
			if job.Err != nil {
				t.Fatalf("%s: %v", ctx, job.Err)
			}
			checkConservation(t, seen, n, ctx)
			if job.Images != n {
				t.Errorf("%s: pool job counted %d images, want %d", ctx, job.Images, n)
			}
			sum := 0
			for _, cj := range pool.ChildJobs() {
				sum += cj.Images
			}
			if sum != n {
				t.Errorf("%s: child jobs total %d images, want %d", ctx, sum, n)
			}
		}
	}
}

// TestPoolStaticSplitContiguous: explicit 1:3 weights over a sized
// source produce contiguous blocks of 25 and 75 items.
func TestPoolStaticSplitContiguous(t *testing.T) {
	const n = 100
	children := []Target{
		&stubTarget{name: "small", latency: time.Millisecond},
		&stubTarget{name: "big", latency: time.Millisecond},
	}
	var maxChild0 int = -1
	var minChild1 int = n
	opts := PoolOptions{
		Routing: RouteStatic,
		Weights: []float64{1, 3},
		OnResult: func(child int, r Result) {
			if child == 0 && r.Index > maxChild0 {
				maxChild0 = r.Index
			}
			if child == 1 && r.Index < minChild1 {
				minChild1 = r.Index
			}
		},
	}
	pool, job, seen := runPool(t, children, opts, n)
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	checkConservation(t, seen, n, "static 1:3")
	jobs := pool.ChildJobs()
	if jobs[0].Images != 25 || jobs[1].Images != 75 {
		t.Errorf("split = %d/%d, want 25/75", jobs[0].Images, jobs[1].Images)
	}
	if maxChild0 != 24 || minChild1 != 25 {
		t.Errorf("blocks not contiguous: child0 max %d, child1 min %d", maxChild0, minChild1)
	}
}

// TestPoolSkewedDynamicBeatsStatic: on a 10x-skewed device pair, the
// adaptive weighted router and work-stealing must both finish the
// workload substantially sooner than static round-robin, which is
// gated by the slow device.
func TestPoolSkewedDynamicBeatsStatic(t *testing.T) {
	const n = 110
	build := func() []Target {
		return []Target{
			&stubTarget{name: "fast", latency: time.Millisecond},
			&stubTarget{name: "slow", latency: 10 * time.Millisecond},
		}
	}
	span := func(routing Routing) time.Duration {
		_, job, seen := runPool(t, build(), PoolOptions{Routing: routing}, n)
		if job.Err != nil {
			t.Fatalf("%v: %v", routing, job.Err)
		}
		checkConservation(t, seen, n, routing.String())
		return job.Span()
	}

	static := span(RouteRoundRobin)
	weighted := span(RouteWeighted)
	stealing := span(RouteWorkStealing)

	// Round-robin hands the slow device n/2 items at 10 ms each
	// (~550 ms); a throughput-proportional split finishes in ~100 ms.
	if weighted >= static*2/3 {
		t.Errorf("weighted span %v not clearly better than round-robin %v", weighted, static)
	}
	if stealing >= static*2/3 {
		t.Errorf("work-stealing span %v not clearly better than round-robin %v", stealing, static)
	}
}

// TestPoolWeightedFollowsExplicitWeights: static 4:1 weights steer
// dispatch roughly 4:1 when both children keep up.
func TestPoolWeightedFollowsExplicitWeights(t *testing.T) {
	const n = 100
	children := []Target{
		&stubTarget{name: "w4", latency: time.Millisecond},
		&stubTarget{name: "w1", latency: time.Millisecond},
	}
	pool, job, seen := runPool(t, children,
		PoolOptions{Routing: RouteWeighted, Weights: []float64{4, 1}}, n)
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	checkConservation(t, seen, n, "weighted 4:1")
	jobs := pool.ChildJobs()
	// Spillover can shift a few items; the ratio should stay near 4:1.
	if jobs[0].Images < 65 || jobs[1].Images > 35 {
		t.Errorf("weighted split = %d/%d, want roughly 80/20", jobs[0].Images, jobs[1].Images)
	}
}

// TestPoolRecursiveComposition: a pool of (device, pool of devices)
// still conserves items — device groups compose.
func TestPoolRecursiveComposition(t *testing.T) {
	const n = 60
	inner, err := NewPool([]Target{
		&stubTarget{name: "i0", latency: time.Millisecond},
		&stubTarget{name: "i1", latency: time.Millisecond},
	}, PoolOptions{Routing: RouteRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	outer := []Target{
		&stubTarget{name: "solo", latency: time.Millisecond},
		inner,
	}
	pool, job, seen := runPool(t, outer, PoolOptions{Routing: RouteWeighted}, n)
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	checkConservation(t, seen, n, "recursive")
	if got := pool.TDPWatts(); got != 3 {
		t.Errorf("aggregate TDP = %g, want 3", got)
	}
}

// TestPoolChildDiesMidRun: a child that stops consuming with its feed
// full must not deadlock the dispatcher; its stranded items are
// reclaimed and re-routed so every item still lands exactly once.
func TestPoolChildDiesMidRun(t *testing.T) {
	const n = 40
	for _, routing := range []Routing{RouteStatic, RouteRoundRobin, RouteWeighted, RouteLatency} {
		children := []Target{
			&stubTarget{name: "quitter", latency: time.Millisecond, quitAfter: 3},
			&stubTarget{name: "survivor", latency: time.Millisecond},
		}
		pool, job, seen := runPool(t, children, PoolOptions{Routing: routing}, n)
		if job.Err != nil {
			t.Fatalf("%v: %v", routing, job.Err)
		}
		checkConservation(t, seen, n, fmt.Sprintf("%v with dying child", routing))
		jobs := pool.ChildJobs()
		if jobs[0].Images != 3 || jobs[1].Images != n-3 {
			t.Errorf("%v: split = %d/%d, want 3/%d", routing, jobs[0].Images, jobs[1].Images, n-3)
		}
		if !job.Done() || job.DoneAt == 0 {
			t.Errorf("%v: pool job never finished (DoneAt=%v)", routing, job.DoneAt)
		}
	}
}

// TestPoolStaticNeedsSizedSource: static split over a stream records a
// descriptive error instead of deadlocking.
func TestPoolStaticNeedsSizedSource(t *testing.T) {
	pool, err := NewPool([]Target{
		&stubTarget{name: "a", latency: time.Millisecond},
		&stubTarget{name: "b", latency: time.Millisecond},
	}, PoolOptions{Routing: RouteStatic})
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	stream := NewStreamSource(env, 4)
	env.Process("producer", func(p *sim.Proc) { stream.Close(p) })
	job := pool.Start(env, stream, func(Result) {})
	env.Run()
	if job.Err == nil {
		t.Fatal("static split over a stream succeeded; want Sized error")
	}
	// The children must still have started and shut down cleanly so
	// composite reports stay well-formed.
	for i, cj := range pool.ChildJobs() {
		if cj == nil || !cj.Done() {
			t.Errorf("child %d job not finished after routing error: %+v", i, cj)
		}
	}
}

// TestPoolValidation: constructor rejects bad configurations.
func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(nil, PoolOptions{}); err == nil {
		t.Error("empty pool accepted")
	}
	child := []Target{&stubTarget{name: "a", latency: time.Millisecond}}
	if _, err := NewPool(child, PoolOptions{Weights: []float64{1, 2}}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := NewPool(child, PoolOptions{Weights: []float64{-1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewPool(child, PoolOptions{QueueDepth: -1}); err == nil {
		t.Error("negative queue depth accepted")
	}
	if _, err := NewPool([]Target{nil}, PoolOptions{}); err == nil {
		t.Error("nil child accepted")
	}
}

// TestJobThroughputDegenerateWindow: a single-image run whose only
// completion lands exactly on ReadyAt must still report a meaningful
// throughput via the full-run fallback window.
func TestJobThroughputDegenerateWindow(t *testing.T) {
	j := &Job{StartedAt: 0, ReadyAt: 5 * time.Millisecond, DoneAt: 5 * time.Millisecond, Images: 1}
	if got := j.Span(); got != 5*time.Millisecond {
		t.Errorf("degenerate Span = %v, want full-run fallback 5ms", got)
	}
	if got := j.Throughput(); got != 200 {
		t.Errorf("degenerate Throughput = %g img/s, want 200", got)
	}
	empty := &Job{}
	if got := empty.Throughput(); got != 0 {
		t.Errorf("empty job Throughput = %g, want 0", got)
	}
	normal := &Job{ReadyAt: time.Second, DoneAt: 3 * time.Second, Images: 100}
	if got := normal.Throughput(); got != 50 {
		t.Errorf("steady-state Throughput = %g img/s, want 50", got)
	}
}

// TestPoolRouteLatencySkewed: on a 10x-skewed pair, latency-aware
// routing must steer most items to the fast device and finish far
// sooner than round-robin, like the adaptive policies.
func TestPoolRouteLatencySkewed(t *testing.T) {
	const n = 110
	build := func() []Target {
		return []Target{
			&stubTarget{name: "fast", latency: time.Millisecond},
			&stubTarget{name: "slow", latency: 10 * time.Millisecond},
		}
	}
	_, rrJob, _ := runPool(t, build(), PoolOptions{Routing: RouteRoundRobin}, n)
	pool, latJob, seen := runPool(t, build(), PoolOptions{Routing: RouteLatency}, n)
	if latJob.Err != nil {
		t.Fatal(latJob.Err)
	}
	checkConservation(t, seen, n, "latency-ewma")
	if latJob.Span() >= rrJob.Span()*2/3 {
		t.Errorf("latency routing span %v not clearly better than round-robin %v",
			latJob.Span(), rrJob.Span())
	}
	jobs := pool.ChildJobs()
	if jobs[0].Images <= jobs[1].Images*3 {
		t.Errorf("latency routing split %d/%d; want the fast child far ahead",
			jobs[0].Images, jobs[1].Images)
	}
}

// TestPoolRouteLatencyColdStartProbes: cold children score zero and
// are probed first (DESIGN §3), so with equal children every one
// receives work early and every estimate warms up — no child starves
// behind a warmed-up favourite.
func TestPoolRouteLatencyColdStartProbes(t *testing.T) {
	const n = 9
	children := []Target{
		&stubTarget{name: "a", latency: time.Millisecond},
		&stubTarget{name: "b", latency: time.Millisecond},
		&stubTarget{name: "c", latency: time.Millisecond},
	}
	pool, job, seen := runPool(t, children, PoolOptions{Routing: RouteLatency}, n)
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	checkConservation(t, seen, n, "latency cold start")
	for i, cj := range pool.ChildJobs() {
		if cj.Images == 0 {
			t.Errorf("child %d never probed: 0 of %d items", i, n)
		}
	}
}

// TestPoolRouteLatencySpillOrder: when the preferred child's bounded
// feed is full, the item spills down the *score* order — the
// next-best child, not an arbitrary one (DESIGN §3). With three
// children at 1/5/50 ms against an eager source, the overflow must
// land mostly on the middle child and only lightly on the slowest.
func TestPoolRouteLatencySpillOrder(t *testing.T) {
	const n = 60
	children := []Target{
		&stubTarget{name: "fast", latency: time.Millisecond},
		&stubTarget{name: "mid", latency: 5 * time.Millisecond},
		&stubTarget{name: "slow", latency: 50 * time.Millisecond},
	}
	pool, job, seen := runPool(t, children, PoolOptions{Routing: RouteLatency}, n)
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	checkConservation(t, seen, n, "latency spill order")
	jobs := pool.ChildJobs()
	if jobs[0].Images <= jobs[1].Images {
		t.Errorf("fast child served %d <= mid's %d; preference order broken",
			jobs[0].Images, jobs[1].Images)
	}
	if jobs[1].Images <= jobs[2].Images {
		t.Errorf("mid child served %d <= slow's %d; spill must follow the score order",
			jobs[1].Images, jobs[2].Images)
	}
	if jobs[1].Images == 0 {
		t.Error("nothing spilled to the second-best child despite an eager source")
	}
}

// TestPoolRouteLatencyTailUnderArrivals: under open-loop Poisson
// traffic on a skewed pair, latency-aware routing must cut the p99
// latency well below round-robin, which queues half the traffic on
// the slow device.
func TestPoolRouteLatencyTailUnderArrivals(t *testing.T) {
	const n = 200
	run := func(routing Routing) LatencySummary {
		env := sim.NewEnv()
		src, err := NewArrivalSource(env, sliceOf(n), PoissonArrivals(400), rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		pool, err := NewPool([]Target{
			&stubTarget{name: "fast", latency: time.Millisecond},
			&stubTarget{name: "slow", latency: 10 * time.Millisecond},
		}, PoolOptions{Routing: routing})
		if err != nil {
			t.Fatal(err)
		}
		col := NewCollector(false)
		job := pool.Start(env, src, col.Sink())
		env.Run()
		if job.Err != nil {
			t.Fatalf("%v: %v", routing, job.Err)
		}
		if job.Images != n {
			t.Fatalf("%v: %d images, want %d", routing, job.Images, n)
		}
		return col.Latency()
	}
	rr := run(RouteRoundRobin)
	lat := run(RouteLatency)
	if lat.P99 >= rr.P99/2 {
		t.Errorf("latency routing p99 %v not clearly below round-robin %v", lat.P99, rr.P99)
	}
}
