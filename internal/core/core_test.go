package core

import (
	"testing"
	"time"

	"repro/internal/imagenet"
	"repro/internal/sim"
)

func smallDataset(t testing.TB) *imagenet.Dataset {
	t.Helper()
	cfg := imagenet.DefaultConfig()
	cfg.Images = 100
	cfg.Subsets = 5
	ds, err := imagenet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDatasetSource(t *testing.T) {
	ds := smallDataset(t)
	src, err := NewDatasetSource(ds, 10, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	env.Process("consumer", func(p *sim.Proc) {
		for i := 10; i < 20; i++ {
			item, ok := src.Next(p)
			if !ok {
				t.Fatalf("source dried up at %d", i)
			}
			if item.Index != i {
				t.Errorf("index = %d, want %d", item.Index, i)
			}
			if item.Label != ds.Label(i) {
				t.Error("label mismatch")
			}
			if item.Image == nil {
				t.Error("functional source must carry images")
			}
		}
		if _, ok := src.Next(p); ok {
			t.Error("source should be exhausted")
		}
	})
	env.Run()
}

func TestDatasetSourceNonFunctional(t *testing.T) {
	ds := smallDataset(t)
	src, err := NewDatasetSource(ds, 0, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	env.Process("consumer", func(p *sim.Proc) {
		item, ok := src.Next(p)
		if !ok || item.Image != nil {
			t.Error("non-functional source must omit images")
		}
		if item.Label < 0 {
			t.Error("labels still expected")
		}
	})
	env.Run()
}

func TestDatasetSourceValidation(t *testing.T) {
	ds := smallDataset(t)
	for _, r := range [][2]int{{-1, 5}, {0, 101}, {5, 5}, {7, 3}} {
		if _, err := NewDatasetSource(ds, r[0], r[1], false); err == nil {
			t.Errorf("range %v accepted", r)
		}
	}
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource([]Item{{Index: 3, Label: 1}, {Index: 4, Label: 2}})
	env := sim.NewEnv()
	env.Process("c", func(p *sim.Proc) {
		a, ok := src.Next(p)
		if !ok || a.Index != 3 {
			t.Error("first item wrong")
		}
		b, ok := src.Next(p)
		if !ok || b.Index != 4 {
			t.Error("second item wrong")
		}
		if _, ok := src.Next(p); ok {
			t.Error("not exhausted")
		}
	})
	env.Run()
}

func TestStreamSource(t *testing.T) {
	env := sim.NewEnv()
	src := NewStreamSource(env, 4)
	var got []int
	env.Process("producer", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			p.Sleep(time.Millisecond)
			src.Push(p, Item{Index: i})
		}
		src.Close(p)
	})
	env.Process("consumer", func(p *sim.Proc) {
		for {
			item, ok := src.Next(p)
			if !ok {
				return
			}
			got = append(got, item.Index)
		}
	})
	env.Run()
	if len(got) != 6 {
		t.Fatalf("consumed %d items", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Errorf("order broken: %v", got)
		}
	}
}

func TestStreamSourceMultipleConsumers(t *testing.T) {
	env := sim.NewEnv()
	src := NewStreamSource(env, 0)
	counts := make([]int, 2)
	env.Process("producer", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			src.Push(p, Item{Index: i})
			p.Sleep(time.Millisecond)
		}
		src.Close(p)
	})
	for w := 0; w < 2; w++ {
		w := w
		env.Process("consumer", func(p *sim.Proc) {
			for {
				_, ok := src.Next(p)
				if !ok {
					return
				}
				counts[w]++
				p.Sleep(3 * time.Millisecond)
			}
		})
	}
	env.Run()
	if counts[0]+counts[1] != 10 {
		t.Errorf("consumed %d+%d, want 10 total", counts[0], counts[1])
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Error("work not shared between consumers")
	}
}

func TestStreamPushAfterClosePanics(t *testing.T) {
	env := sim.NewEnv()
	src := NewStreamSource(env, 0)
	env.Process("p", func(p *sim.Proc) {
		src.Close(p)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		src.Push(p, Item{})
	})
	// Drain the sentinel so Run terminates cleanly.
	env.Process("drain", func(p *sim.Proc) { src.Next(p) })
	env.Run()
}

func TestCollector(t *testing.T) {
	c := NewCollector(true)
	sink := c.Sink()
	sink(Result{Index: 0, Label: 1, Pred: 1, Confidence: 0.9, Start: 10 * time.Millisecond, End: 20 * time.Millisecond})
	sink(Result{Index: 1, Label: 2, Pred: 0, Confidence: 0.4, Start: 15 * time.Millisecond, End: 30 * time.Millisecond})
	sink(Result{Index: 2, Label: 3, Pred: -1, Start: 5 * time.Millisecond, End: 35 * time.Millisecond})
	if c.N != 3 {
		t.Errorf("N = %d", c.N)
	}
	if c.Correct != 1 || c.Mispred != 1 {
		t.Errorf("correct/mispred = %d/%d", c.Correct, c.Mispred)
	}
	if got := c.TopOneError(); got != 0.5 {
		t.Errorf("TopOneError = %g (unclassified items must not count)", got)
	}
	if c.Span() != 30*time.Millisecond {
		t.Errorf("Span = %v", c.Span())
	}
	if len(c.Results) != 3 {
		t.Error("retain lost results")
	}
	if NewCollector(false).TopOneError() != 0 {
		t.Error("empty collector error")
	}
	if c.MeanConfidence() <= 0 {
		t.Error("mean confidence")
	}
}

func TestJobThroughput(t *testing.T) {
	j := &Job{ReadyAt: time.Second, DoneAt: 3 * time.Second, Images: 100}
	if got := j.Throughput(); got != 50 {
		t.Errorf("Throughput = %g", got)
	}
	if (&Job{}).Throughput() != 0 {
		t.Error("zero-span throughput")
	}
}

func TestSchedulingString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || Dynamic.String() != "dynamic" {
		t.Error("Scheduling.String")
	}
}

func TestBatchTargetValidation(t *testing.T) {
	if _, err := NewCPUTarget(nil, nil, 8, false); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := newBatchTarget("x", fakeEngine{}, nil, 0, false); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := newBatchTarget("x", fakeEngine{}, nil, 4, true); err == nil {
		t.Error("functional without graph accepted")
	}
}

type fakeEngine struct{}

func (fakeEngine) NextBatchDuration(b int) time.Duration { return time.Duration(b) * time.Millisecond }
func (fakeEngine) TDPWatts() float64                     { return 42 }

func TestBatchTargetRunsFake(t *testing.T) {
	bt, err := newBatchTarget("fake", fakeEngine{}, nil, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if bt.TDPWatts() != 42 || bt.Name() != "fake" {
		t.Error("metadata")
	}
	items := make([]Item, 10)
	for i := range items {
		items[i] = Item{Index: i, Label: i % 3}
	}
	env := sim.NewEnv()
	col := NewCollector(true)
	job := bt.Start(env, NewSliceSource(items), col.Sink())
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if job.Images != 10 || col.N != 10 {
		t.Errorf("images = %d / %d", job.Images, col.N)
	}
	// 10 items at batch 4: batches of 4, 4, 2 => 4+4+2 ms.
	if job.DoneAt != 10*time.Millisecond {
		t.Errorf("DoneAt = %v", job.DoneAt)
	}
	// Results within one batch share timestamps.
	if col.Results[0].End != col.Results[3].End {
		t.Error("batch results must share completion time")
	}
	if col.Results[0].Pred != -1 {
		t.Error("non-functional results must have Pred -1")
	}
}

func TestVPUTargetValidation(t *testing.T) {
	if _, err := NewVPUTarget(nil, []byte{1}, DefaultVPUOptions()); err == nil {
		t.Error("no devices accepted")
	}
	opts := DefaultVPUOptions()
	opts.HostOverhead = -time.Second
	if _, err := NewVPUTarget(nil, nil, opts); err == nil {
		t.Error("bad options accepted")
	}
}
