package core

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// TimedSource is a Source that additionally supports bounded-wait
// pulls — the primitive behind adaptive batch assembly (a partial
// batch closes when no further item arrives within the max-wait).
// ok reports an item was delivered; open=false reports the source is
// exhausted (ok is then false too). ok=false with open=true is a
// timeout: nothing arrived within d, but more may come.
type TimedSource interface {
	Source
	NextWithin(p *sim.Proc, d time.Duration) (item Item, ok bool, open bool)
}

// DepthSource is a Source that can report how many items are
// immediately available without blocking — the backlog observation
// adaptive batch sizing keys off.
type DepthSource interface {
	Source
	Pending() int
}

// OverloadPolicy selects what a full admission queue does with a new
// arrival.
type OverloadPolicy int

const (
	// ShedNewest (the zero value, and so the default) rejects the
	// arriving item: queued work keeps its place, fresh work is turned
	// away — the classic bounded-queue server.
	ShedNewest OverloadPolicy = iota
	// ShedOldest drops the head of the queue to admit the new arrival:
	// the stalest item — the one most likely to miss its deadline
	// anyway — pays, keeping queued work fresh under sustained
	// overload.
	ShedOldest
	// Block applies backpressure instead of shedding: admission waits
	// for queue space in virtual time. Nothing is dropped, so latency
	// grows without bound past saturation — the control configuration
	// the shedding policies are measured against.
	Block
)

// String names the policy.
func (o OverloadPolicy) String() string {
	switch o {
	case ShedNewest:
		return "shed-newest"
	case ShedOldest:
		return "shed-oldest"
	case Block:
		return "block"
	}
	return fmt.Sprintf("policy(%d)", int(o))
}

// DropReason says why the admission queue dropped an item.
type DropReason int

const (
	// DropShed marks an item rejected by the overload policy (the
	// arrival itself under ShedNewest, the queue head under ShedOldest).
	DropShed DropReason = iota
	// DropExpired marks an item whose deadline passed while it sat in
	// the queue; it is discarded at dispatch instead of being handed to
	// a device that could only complete it late.
	DropExpired
	// DropFailed marks an item lost to device failure after its
	// redelivery budget ran out (or with recovery disabled) — the
	// fault-attributed drop the self-healing pipeline reports so
	// goodput stays honest.
	DropFailed
	// DropQuota marks an arrival rejected by its tenant's quota (max
	// in-flight or admitted-rate) before reaching any queue — the
	// tenant exceeded its contract, not the fleet its capacity.
	DropQuota
)

// String names the reason.
func (d DropReason) String() string {
	switch d {
	case DropExpired:
		return "expired"
	case DropFailed:
		return "failed"
	case DropQuota:
		return "quota"
	}
	return "shed"
}

// AdmissionOptions configures an AdmissionQueue.
type AdmissionOptions struct {
	// Depth bounds the ingress queue (>= 1).
	Depth int
	// Policy selects the overload behavior (default ShedNewest).
	Policy OverloadPolicy
	// Deadline is the per-item deadline measured from Item.ArrivedAt;
	// an item still queued when it lapses is dropped at dispatch time.
	// 0 disables expiry. Serving setups usually set it to the SLO
	// target: work that can no longer meet the SLO is not worth a
	// device's time.
	Deadline time.Duration
	// MinDepth floors the health-scaled effective depth when the queue
	// is wired to a health observer (ObserveHealth): even with every
	// device down, at least MinDepth arrivals stay admitted so the
	// first rejoining device finds work. 0 means 1. It never exceeds
	// Depth and has no effect until ObserveHealth is called.
	MinDepth int
	// OnDrop observes every dropped item (shed or expired) with the
	// virtual instant of the drop — the hook goodput accounting hangs
	// off (Collector.NoteDrop).
	OnDrop func(item Item, reason DropReason, at time.Duration)
}

// AdmissionStats counts what happened at the ingress edge.
type AdmissionStats struct {
	// Arrived is every item the wrapped source offered.
	Arrived int
	// Admitted is how many entered the queue (including any later
	// expired while queued).
	Admitted int
	// Shed is how many the overload policy dropped.
	Shed int
	// Expired is how many were admitted but dropped at dispatch after
	// their deadline lapsed in the queue.
	Expired int
	// Dispatched is how many were handed to a consumer.
	Dispatched int
	// Shrinks counts effective-depth reductions driven by health
	// observations (ObserveHealth): each device-health degradation
	// that lowered the bound adds one. 0 when the queue is not wired
	// to a health observer.
	Shrinks int
}

// AdmissionQueue is the bounded ingress edge of a serving setup: a
// pump process drains the wrapped source (typically an ArrivalSource)
// the moment items become visible and admits them into a bounded
// queue under an overload policy, so queueing delay — and therefore
// tail latency — is capped by design instead of growing without bound
// past the saturation knee. Consumers read it as an ordinary Source;
// it also implements TimedSource and DepthSource, so adaptive batch
// targets assemble directly against the admission backlog.
//
// Expiry is lazy: an item whose deadline lapsed while queued is
// dropped when a consumer would otherwise receive it. That keeps the
// drop deterministic (no timer per item) and models the real serving
// pattern of checking the deadline at dispatch.
type AdmissionQueue struct {
	q      *sim.Queue[Item]
	opts   AdmissionOptions
	stats  AdmissionStats
	closed bool // end-of-stream sentinel posted
	// eff is the current health-scaled effective depth (== Depth until
	// ObserveHealth reports degraded capacity).
	eff int
}

// NewAdmissionQueue wraps inner with admission control inside env.
// The pump process starts immediately; admission unfolds as env runs.
func NewAdmissionQueue(env *sim.Env, inner Source, opts AdmissionOptions) (*AdmissionQueue, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: admission queue needs a wrapped source")
	}
	if opts.Depth < 1 {
		return nil, fmt.Errorf("core: admission queue depth %d (need >= 1)", opts.Depth)
	}
	if opts.Policy < ShedNewest || opts.Policy > Block {
		return nil, fmt.Errorf("core: unknown overload policy %v", opts.Policy)
	}
	if opts.Deadline < 0 {
		return nil, fmt.Errorf("core: negative admission deadline %v", opts.Deadline)
	}
	if opts.MinDepth < 0 {
		return nil, fmt.Errorf("core: negative admission min-depth %d", opts.MinDepth)
	}
	if opts.MinDepth > opts.Depth {
		return nil, fmt.Errorf("core: admission min-depth %d exceeds depth %d", opts.MinDepth, opts.Depth)
	}
	a := &AdmissionQueue{
		q:    sim.NewQueue[Item](env, "core/admission", opts.Depth),
		opts: opts,
		eff:  opts.Depth,
	}
	env.Process("admission", func(p *sim.Proc) {
		for {
			item, ok := inner.Next(p)
			if !ok {
				break
			}
			if item.Index == -1 {
				panic("core: admission item with reserved Index -1 (the end-of-stream sentinel)")
			}
			a.admit(p, item)
		}
		a.q.Put(p, Item{Index: -1}) // may wait for room; consumers drain
		a.closed = true
	})
	return a, nil
}

// admit applies the overload policy to one arrival. The pump is the
// queue's only producer, so the TryGet-then-Put sequence of ShedOldest
// cannot race: both run in one uninterrupted process step.
func (a *AdmissionQueue) admit(p *sim.Proc, item Item) {
	a.stats.Arrived++
	switch a.opts.Policy {
	case Block:
		a.q.Put(p, item) // backpressure: blocks while the queue is full
	case ShedOldest:
		// Evict queue heads until the arrival fits: after a health
		// shrink the queue may be over-full by more than one item, and
		// a shed policy must never block the pump.
		for !a.q.TryPut(item) {
			old, ok := a.q.TryGet()
			if !ok {
				a.drop(item, DropShed, p.Now())
				return
			}
			a.drop(old, DropShed, p.Now())
		}
	default: // ShedNewest
		if !a.q.TryPut(item) {
			a.drop(item, DropShed, p.Now())
			return
		}
	}
	a.stats.Admitted++
}

// Next implements Source: the oldest admitted, unexpired item.
// Expired items encountered on the way are dropped and counted.
func (a *AdmissionQueue) Next(p *sim.Proc) (Item, bool) {
	for {
		item := a.q.Get(p)
		if item.Index == -1 {
			a.q.TryPut(Item{Index: -1})
			return Item{}, false
		}
		if a.expired(item, p.Now()) {
			a.drop(item, DropExpired, p.Now())
			continue
		}
		a.stats.Dispatched++
		return item, true
	}
}

// NextWithin implements TimedSource: like Next but gives up after d.
func (a *AdmissionQueue) NextWithin(p *sim.Proc, d time.Duration) (Item, bool, bool) {
	deadline := p.Now() + d
	for {
		wait := deadline - p.Now()
		if wait < 0 {
			wait = 0
		}
		item, ok := a.q.GetWithin(p, wait)
		if !ok {
			return Item{}, false, true
		}
		if item.Index == -1 {
			a.q.TryPut(Item{Index: -1})
			return Item{}, false, false
		}
		if a.expired(item, p.Now()) {
			a.drop(item, DropExpired, p.Now())
			continue
		}
		a.stats.Dispatched++
		return item, true, true
	}
}

// Pending implements DepthSource: admitted items waiting for dispatch.
func (a *AdmissionQueue) Pending() int {
	n := a.q.Len()
	if a.closed && n > 0 {
		n-- // the end-of-stream sentinel is not work
	}
	return n
}

// Stats returns the admission counters; read after the run completes
// for final numbers.
func (a *AdmissionQueue) Stats() AdmissionStats { return a.stats }

// ObserveHealth makes the admission bound track device health: wire
// it to a HealthAware target's SetHealthObserver (or a Pool's
// aggregate observer). The effective depth scales proportionally to
// healthy capacity — ceil(Depth × healthy/total), floored at MinDepth
// and capped at Depth — so during an outage the queue stops admitting
// work the degraded devices could only serve past its deadline, and
// restores the full bound on rejoin. Shrinking evicts nothing:
// already-queued items keep their place and drain normally, while new
// arrivals meet the smaller bound (sheds under the shed policies,
// backpressure under Block). Deterministic: depth transitions happen
// at the health transition's virtual instant.
func (a *AdmissionQueue) ObserveHealth(healthy, total int, _ time.Duration) {
	if total <= 0 {
		return
	}
	if healthy < 0 {
		healthy = 0
	}
	eff := (a.opts.Depth*healthy + total - 1) / total
	if min := a.minDepth(); eff < min {
		eff = min
	}
	if eff > a.opts.Depth {
		eff = a.opts.Depth
	}
	if eff == a.eff {
		return
	}
	if eff < a.eff {
		a.stats.Shrinks++
	}
	a.eff = eff
	a.q.SetCapacity(eff)
}

// EffectiveDepth returns the current health-scaled admission bound
// (== Depth until ObserveHealth reports degraded capacity).
func (a *AdmissionQueue) EffectiveDepth() int { return a.eff }

// SetDepth re-bounds the ingress from now on — the operator's
// mid-run admission knob (scenario hot-reload). The new depth becomes
// both the configured bound (future health scaling works from it) and
// the effective bound; a MinDepth above the new depth is clamped to
// it. Shrinking evicts nothing: queued items keep their place and
// drain normally while new arrivals meet the smaller bound, exactly
// like a health shrink. It returns an error on depth < 1.
func (a *AdmissionQueue) SetDepth(depth int) error {
	if depth < 1 {
		return fmt.Errorf("core: admission queue depth %d (need >= 1)", depth)
	}
	a.opts.Depth = depth
	if a.opts.MinDepth > depth {
		a.opts.MinDepth = depth
	}
	a.eff = depth
	a.q.SetCapacity(depth)
	return nil
}

// SetDeadline replaces the per-item queueing deadline from now on (0
// disables expiry). Expiry is checked lazily at dispatch, so only
// dispatches after the change see the new deadline — items already
// queued are re-judged against it, matching an operator retuning the
// SLO mid-run. It returns an error on a negative deadline.
func (a *AdmissionQueue) SetDeadline(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("core: negative admission deadline %v", d)
	}
	a.opts.Deadline = d
	return nil
}

// minDepth returns the configured floor (default 1).
func (a *AdmissionQueue) minDepth() int {
	if a.opts.MinDepth > 0 {
		return a.opts.MinDepth
	}
	return 1
}

// expired reports whether item's deadline lapsed by now.
func (a *AdmissionQueue) expired(item Item, now time.Duration) bool {
	return a.opts.Deadline > 0 && now > item.ArrivedAt+a.opts.Deadline
}

// drop counts and reports one dropped item.
func (a *AdmissionQueue) drop(item Item, reason DropReason, at time.Duration) {
	if reason == DropExpired {
		a.stats.Expired++
	} else {
		a.stats.Shed++
	}
	if a.opts.OnDrop != nil {
		a.opts.OnDrop(item, reason, at)
	}
}
