package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/imagenet"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// FolderSource is the ImageFolder of Fig. 3: it loads every .ppm image
// under a directory, resizes it to the network geometry, subtracts the
// channel means, and serves the results in filename order. Ground
// truth comes from sibling .xml bounding-box annotations when present
// (label -1 otherwise).
//
// All file I/O happens at construction, mirroring NCSw's exclusion of
// decode time from measurements; Next itself never touches the disk.
type FolderSource struct {
	items []Item
	next  int
}

// NewFolderSource scans dir for .ppm files. Images are resized to
// (channels are fixed at 3) size×size and mean-subtracted with means
// (one value per channel). labelOf resolves an annotation WNID to a
// class index; it may be nil when no annotations exist.
func NewFolderSource(dir string, size int, means []float32, labelOf func(wnid string) (int, bool)) (*FolderSource, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: folder source size %d", size)
	}
	if len(means) != 3 {
		return nil, fmt.Errorf("core: need 3 channel means, got %d", len(means))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".ppm") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("core: no .ppm images in %s", dir)
	}
	sort.Strings(names)

	src := &FolderSource{}
	for i, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		img, err := imagenet.DecodePPM(data)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		img = imagenet.Resize(img, size, size)
		subtractMeans(img, means)
		// Arrival cannot be known at load time; Next stamps it at the
		// pull instant, closed-loop, like the other finite sources.
		//ncsw:allow resultstamp stamped by Next at the pull instant
		item := Item{Index: i, Image: img, Label: -1}
		if label, ok := lookupAnnotation(dir, name, labelOf); ok {
			item.Label = label
		}
		src.items = append(src.items, item)
	}
	return src, nil
}

// Len returns the number of loaded images.
func (s *FolderSource) Len() int { return len(s.items) }

// Remaining implements Sized.
func (s *FolderSource) Remaining() int { return len(s.items) - s.next }

// Next implements Source. Items arrive at the pull instant
// (closed-loop), like DatasetSource and SliceSource — before the
// resultstamp sweep this source left ArrivedAt zero, which made
// Collector wait/latency splits measure from the start of the
// simulation for folder-served runs.
func (s *FolderSource) Next(p *sim.Proc) (Item, bool) {
	if s.next >= len(s.items) {
		return Item{}, false
	}
	s.next++
	item := s.items[s.next-1]
	item.ArrivedAt = p.Now()
	return item, true
}

func subtractMeans(img *tensor.T, means []float32) {
	plane := img.Dim(1) * img.Dim(2)
	for ch := 0; ch < img.Dim(0) && ch < len(means); ch++ {
		data := img.Data[ch*plane : (ch+1)*plane]
		for i := range data {
			data[i] -= means[ch]
		}
	}
}

// lookupAnnotation reads "<stem>.xml" next to the image and resolves
// its WNID through labelOf.
func lookupAnnotation(dir, imgName string, labelOf func(string) (int, bool)) (int, bool) {
	if labelOf == nil {
		return 0, false
	}
	stem := strings.TrimSuffix(imgName, ".ppm")
	data, err := os.ReadFile(filepath.Join(dir, stem+".xml"))
	if err != nil {
		return 0, false
	}
	ann, err := imagenet.ParseAnnotation(data)
	if err != nil || len(ann.Objects) == 0 {
		return 0, false
	}
	return labelOf(ann.Objects[0].Name)
}

// WriteSampleFolder materializes images [lo, hi) of a synthetic
// dataset as .ppm files with .xml annotations into dir — the tool the
// folder-based workflow (cmd/make-dataset, ncsw-classify -folder)
// uses, and the reproduction's stand-in for downloading ILSVRC.
func WriteSampleFolder(ds *imagenet.Dataset, dir string, lo, hi int) error {
	if lo < 0 || hi > ds.Len() || lo >= hi {
		return fmt.Errorf("core: range [%d,%d) invalid for dataset of %d", lo, hi, ds.Len())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := lo; i < hi; i++ {
		stem := filepath.Join(dir, ds.FileName(i))
		img := ds.Image(i)
		ppm, err := imagenet.EncodePPM(img)
		if err != nil {
			return err
		}
		if err := os.WriteFile(stem+".ppm", ppm, 0o644); err != nil {
			return err
		}
		xml, err := imagenet.MarshalAnnotation(ds.Annotation(i))
		if err != nil {
			return err
		}
		if err := os.WriteFile(stem+".xml", xml, 0o644); err != nil {
			return err
		}
	}
	return nil
}
