package core

import (
	"fmt"
	"time"

	"repro/internal/ncs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Scheduling selects how the multi-VPU dispatcher assigns items to
// devices.
type Scheduling int

const (
	// RoundRobin is the paper's static scheduling (§III): item i goes
	// to device i mod N, in order.
	RoundRobin Scheduling = iota
	// Dynamic lets idle workers steal the next item — the ablation
	// alternative to the paper's choice.
	Dynamic
)

// String names the policy.
func (s Scheduling) String() string {
	if s == Dynamic {
		return "dynamic"
	}
	return "round-robin"
}

// VPUOptions configures the multi-VPU target.
type VPUOptions struct {
	// Functional enables numeric FP16 inference on the sticks.
	Functional bool
	// Scheduling selects the dispatch policy (default RoundRobin).
	Scheduling Scheduling
	// Overlap makes each worker keep two inferences in flight per
	// stick (exploiting the NCS FIFO), hiding the USB transfer behind
	// execution. The paper's NCSw issues load/get sequentially per
	// device (Listing 1); overlap is the ablation showing what the
	// non-blocking API could buy.
	Overlap bool
	// HostOverhead is the host-side thread cost charged around each
	// LoadTensor and GetResult (thread wakeup, pixel marshalling).
	// Calibrated to the paper's multi-VPU penalty; default 250µs.
	HostOverhead time.Duration
	// Timeline receives Fig. 4 spans when set.
	Timeline *trace.Timeline
}

// DefaultVPUOptions returns the paper-faithful configuration.
func DefaultVPUOptions() VPUOptions {
	return VPUOptions{
		Functional:   false,
		Scheduling:   RoundRobin,
		Overlap:      false,
		HostOverhead: 250 * time.Microsecond,
	}
}

// VPUTarget is the parallel multi-VPU implementation of NCSw: a main
// process connects to every NCS device, forks one worker thread per
// device, dispatches items round-robin, and joins the workers when the
// source drains (Fig. 4).
type VPUTarget struct {
	devices []*ncs.Device
	blob    []byte
	opts    VPUOptions
}

// NewVPUTarget builds the target. blob is the compiled graph file
// loaded onto every stick.
func NewVPUTarget(devices []*ncs.Device, blob []byte, opts VPUOptions) (*VPUTarget, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("core: multi-VPU target needs at least one device")
	}
	if len(blob) == 0 {
		return nil, fmt.Errorf("core: empty graph blob")
	}
	if opts.HostOverhead < 0 {
		return nil, fmt.Errorf("core: negative host overhead")
	}
	if opts.Timeline == nil {
		opts.Timeline = trace.Disabled()
	}
	return &VPUTarget{devices: devices, blob: blob, opts: opts}, nil
}

// Name implements Target.
func (t *VPUTarget) Name() string {
	return fmt.Sprintf("vpu-multi(%d)", len(t.devices))
}

// TDPWatts implements Target: the aggregate stick TDP, the Fig. 8a
// denominator.
func (t *VPUTarget) TDPWatts() float64 {
	return power.MultiVPUTDP(len(t.devices))
}

// Devices returns the managed devices.
func (t *VPUTarget) Devices() []*ncs.Device { return t.devices }

// Start implements Target.
func (t *VPUTarget) Start(env *sim.Env, src Source, sink func(Result)) *Job {
	job := &Job{}
	env.Process("ncsw-main", func(p *sim.Proc) {
		job.StartedAt = p.Now()
		n := len(t.devices)
		tl := t.opts.Timeline

		// 1. Connect: open every device and allocate the graph (the
		// main host process is responsible for connecting to each
		// device, §III).
		graphs := make([]*ncs.Graph, n)
		for i, d := range t.devices {
			if tl.Enabled() {
				d.SetExecObserver(func(name string, start, end time.Duration) {
					tl.Add(name, trace.Exec, start, end, "")
				})
			}
			if err := d.Open(p); err != nil {
				job.Err = fmt.Errorf("core: open %s: %w", d.Name(), err)
				job.Finish(p)
				return
			}
			g, err := d.AllocateGraph(p, t.blob, ncs.GraphOptions{Functional: t.opts.Functional})
			if err != nil {
				job.Err = fmt.Errorf("core: allocate on %s: %w", d.Name(), err)
				job.Finish(p)
				return
			}
			graphs[i] = g
		}
		job.ReadyAt = p.Now()

		// 2. Fork one worker per device, fed by per-worker queues.
		forkStart := p.Now()
		queues := make([]*sim.Queue[Item], n)
		for i := range queues {
			queues[i] = sim.NewQueue[Item](env, fmt.Sprintf("ncsw/q%d", i), 2)
		}
		done := sim.NewQueue[int](env, "ncsw/join", 0)
		for i := range t.devices {
			i := i
			env.Process(fmt.Sprintf("ncsw-worker%d", i), func(wp *sim.Proc) {
				t.worker(wp, t.devices[i], graphs[i], queues[i], sink, job)
				done.Put(wp, i)
			})
		}
		tl.Add("main", trace.Fork, forkStart, p.Now(), fmt.Sprintf("%d workers", n))

		// 3. Dispatch. Round-robin pushes item k to queue k mod n;
		// dynamic pushes to whichever queue has room first.
		k := 0
		for {
			item, ok := src.Next(p)
			if !ok {
				break
			}
			switch t.opts.Scheduling {
			case RoundRobin:
				queues[k%n].Put(p, item)
			case Dynamic:
				t.dispatchDynamic(p, queues, item, k)
			}
			k++
		}
		for i := range queues {
			queues[i].Put(p, Item{Index: -1}) // per-worker shutdown
		}

		// 4. Join workers, then close devices.
		joinStart := p.Now()
		for range t.devices {
			done.Get(p)
		}
		tl.Add("main", trace.Join, joinStart, p.Now(), "")
		for _, d := range t.devices {
			if err := d.Close(p); err != nil && job.Err == nil {
				job.Err = err
			}
		}
		job.Finish(p)
	})
	return job
}

// dispatchDynamic places the item on the first queue with room,
// scanning from the item's round-robin home for fairness, blocking on
// the home queue when all are full.
func (t *VPUTarget) dispatchDynamic(p *sim.Proc, queues []*sim.Queue[Item], item Item, k int) {
	n := len(queues)
	for off := 0; off < n; off++ {
		if queues[(k+off)%n].TryPut(item) {
			return
		}
	}
	queues[k%n].Put(p, item)
}

// worker drains its queue through one stick, sequential per Listing 1
// (or two-deep pipelined with Overlap).
func (t *VPUTarget) worker(p *sim.Proc, dev *ncs.Device, g *ncs.Graph, q *sim.Queue[Item], sink func(Result), job *Job) {
	tl := t.opts.Timeline
	type inflight struct {
		item  Item
		start time.Duration
	}
	var pending []inflight

	emit := func(fl inflight) bool {
		readStart := p.Now()
		res, err := g.GetResult(p)
		if err != nil {
			if job.Err == nil {
				job.Err = err
			}
			return false
		}
		p.Sleep(t.opts.HostOverhead)
		tl.Add(dev.Name(), trace.Read, readStart, p.Now(), "")
		r := Result{
			Index:        fl.item.Index,
			Label:        fl.item.Label,
			Pred:         -1,
			Start:        fl.start,
			End:          p.Now(),
			ArrivedAt:    fl.item.ArrivedAt,
			DispatchedAt: fl.start,
			Device:       dev.Name(),
			Err:          res.Err,
		}
		if res.Output != nil {
			pred, conf := res.Output.ArgMax()
			r.Pred, r.Confidence, r.Output = pred, conf, res.Output
		}
		sink(r)
		job.Images++
		return true
	}

	depth := 1
	if t.opts.Overlap {
		depth = 2
	}
	for {
		item := q.Get(p)
		if item.Index == -1 {
			break
		}
		start := p.Now()
		p.Sleep(t.opts.HostOverhead)
		var img *tensor.T
		if t.opts.Functional {
			img = item.Image
		}
		loadStart := p.Now()
		if err := g.LoadTensor(p, img, item.Index); err != nil {
			if job.Err == nil {
				job.Err = err
			}
			break
		}
		tl.Add(dev.Name(), trace.Load, loadStart, p.Now(), fmt.Sprintf("img%d", item.Index))
		pending = append(pending, inflight{item: item, start: start})
		if len(pending) >= depth {
			if !emit(pending[0]) {
				return
			}
			pending = pending[1:]
		}
	}
	for _, fl := range pending {
		if !emit(fl) {
			return
		}
	}
}
