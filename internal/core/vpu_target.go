package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ncs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Scheduling selects how the multi-VPU dispatcher assigns items to
// devices.
type Scheduling int

const (
	// RoundRobin is the paper's static scheduling (§III): item i goes
	// to device i mod N, in order.
	RoundRobin Scheduling = iota
	// Dynamic lets idle workers steal the next item — the ablation
	// alternative to the paper's choice.
	Dynamic
)

// String names the policy.
func (s Scheduling) String() string {
	if s == Dynamic {
		return "dynamic"
	}
	return "round-robin"
}

// RecoveryConfig configures per-device health monitoring and
// self-healing on a VPUTarget. The zero value disables both: workers
// block indefinitely on results, the pre-fault behavior (never use it
// with a fault plan that can hang or drop a device — a hang would
// deadlock the simulation, which panics loudly).
type RecoveryConfig struct {
	// Timeout is the completion heartbeat: the longest a worker waits
	// for a queued inference before declaring its device unhealthy. It
	// must exceed the device's worst-case service time (including any
	// slowdown window you inject) or healthy stragglers are treated as
	// hangs. 0 disables health monitoring entirely.
	Timeout time.Duration
	// Recover re-opens an unhealthy device — reset (re-enumeration),
	// firmware re-upload, RTOS boot, graph re-allocation: the real
	// ~1.7 s cost — and redelivers its in-flight items. False is
	// fail-stop: the device is abandoned, its in-flight items are
	// dropped through OnDrop, and the surviving devices absorb the
	// source.
	Recover bool
	// MaxAttempts bounds deliveries per item (first try + redeliveries);
	// an item failing more often is dropped through OnDrop so goodput
	// accounting stays honest. 0 means DefaultRecoveryAttempts.
	MaxAttempts int
	// OnRetry observes every redelivered item (wire it to
	// Collector.NoteRetry).
	OnRetry func(item Item, at time.Duration)
	// OnDrop observes every item lost to device failure (wire it to
	// Collector.NoteDrop with DropFailed).
	OnDrop func(item Item, at time.Duration)
	// OnOutage observes every detected outage once it resolves:
	// recovered=true when the device rejoined, false when it was
	// abandoned (wire it to Collector.NoteOutage).
	OnOutage func(device string, from, to time.Duration, recovered bool)
}

// DefaultRecoveryAttempts is the redelivery budget when
// RecoveryConfig.MaxAttempts is 0.
const DefaultRecoveryAttempts = 3

// DefaultRecoveryConfig returns the standard self-healing policy: a
// 2 s completion heartbeat (far above the ~101 ms GoogLeNet service
// time, below the cost of a reboot), recovery on, three delivery
// attempts per item.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{Timeout: 2 * time.Second, Recover: true, MaxAttempts: DefaultRecoveryAttempts}
}

// enabled reports whether health monitoring is on.
func (rc RecoveryConfig) enabled() bool { return rc.Timeout > 0 }

// attempts returns the per-item delivery budget.
func (rc RecoveryConfig) attempts() int {
	if rc.MaxAttempts > 0 {
		return rc.MaxAttempts
	}
	return DefaultRecoveryAttempts
}

// HealthAware is implemented by targets that monitor their devices'
// health. Observers are called in virtual time on every transition
// with the current healthy and total device counts. Registration
// accumulates: every registered observer sees every subsequent
// transition, so a Pool (failover routing) and an AdmissionQueue
// (health-scaled depth) can subscribe to the same target. Register
// before the target starts; with health monitoring disabled (no
// RecoveryConfig) observers never fire.
type HealthAware interface {
	SetHealthObserver(fn func(healthy, total int, at time.Duration))
}

// VPUOptions configures the multi-VPU target.
type VPUOptions struct {
	// Functional enables numeric FP16 inference on the sticks.
	Functional bool
	// Scheduling selects the dispatch policy (default RoundRobin).
	Scheduling Scheduling
	// Overlap makes each worker keep two inferences in flight per
	// stick (exploiting the NCS FIFO), hiding the USB transfer behind
	// execution. The paper's NCSw issues load/get sequentially per
	// device (Listing 1); overlap is the ablation showing what the
	// non-blocking API could buy.
	Overlap bool
	// HostOverhead is the host-side thread cost charged around each
	// LoadTensor and GetResult (thread wakeup, pixel marshalling).
	// Calibrated to the paper's multi-VPU penalty; default 250µs.
	HostOverhead time.Duration
	// Recovery configures health monitoring and self-healing (zero
	// value = disabled, the pre-fault behavior).
	Recovery RecoveryConfig
	// Hedge configures speculative hedged requests across the sticks:
	// an item in flight (queued or executing) longer than the hedge
	// trigger is duplicated onto a different live worker, the first
	// completion wins, and the loser is withdrawn from its queue or
	// discarded on completion. The zero value disables hedging and
	// leaves runs bit-identical to pre-hedging behavior; with a single
	// device the option is inert (there is no second worker to
	// duplicate onto).
	Hedge HedgeConfig
	// Timeline receives Fig. 4 spans when set.
	Timeline *trace.Timeline
}

// DefaultVPUOptions returns the paper-faithful configuration.
func DefaultVPUOptions() VPUOptions {
	return VPUOptions{
		Functional:   false,
		Scheduling:   RoundRobin,
		Overlap:      false,
		HostOverhead: 250 * time.Microsecond,
	}
}

// VPUTarget is the parallel multi-VPU implementation of NCSw: a main
// process connects to every NCS device, forks one worker thread per
// device, dispatches items round-robin, and joins the workers when the
// source drains (Fig. 4). With Recovery configured each worker doubles
// as its device's health monitor: a completion timeout (or a dead
// link) marks the device down, recovery re-opens it at the real
// firmware-boot cost and redelivers the in-flight items, and a device
// that cannot rejoin is abandoned while the survivors absorb the
// source.
type VPUTarget struct {
	devices []*ncs.Device
	blob    []byte
	opts    VPUOptions

	// Health state of the current run (downCount is reset by Start;
	// observers persist across the target's lifetime).
	healthObs []func(healthy, total int, at time.Duration)
	downCount int
	// hedge is the hedged-request engine of the current run (nil when
	// VPUOptions.Hedge is disabled or the target has one device).
	hedge *hedger
}

// NewVPUTarget builds the target. blob is the compiled graph file
// loaded onto every stick.
func NewVPUTarget(devices []*ncs.Device, blob []byte, opts VPUOptions) (*VPUTarget, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("core: multi-VPU target needs at least one device")
	}
	if len(blob) == 0 {
		return nil, fmt.Errorf("core: empty graph blob")
	}
	if opts.HostOverhead < 0 {
		return nil, fmt.Errorf("core: negative host overhead")
	}
	if opts.Recovery.Timeout < 0 {
		return nil, fmt.Errorf("core: negative recovery timeout %v", opts.Recovery.Timeout)
	}
	if opts.Recovery.MaxAttempts < 0 {
		return nil, fmt.Errorf("core: negative recovery attempt budget %d", opts.Recovery.MaxAttempts)
	}
	if err := opts.Hedge.Validate(); err != nil {
		return nil, err
	}
	if opts.Timeline == nil {
		opts.Timeline = trace.Disabled()
	}
	return &VPUTarget{devices: devices, blob: blob, opts: opts}, nil
}

// Name implements Target.
func (t *VPUTarget) Name() string {
	return fmt.Sprintf("vpu-multi(%d)", len(t.devices))
}

// TDPWatts implements Target: the aggregate stick TDP, the Fig. 8a
// denominator.
func (t *VPUTarget) TDPWatts() float64 {
	return power.MultiVPUTDP(len(t.devices))
}

// Devices returns the managed devices.
func (t *VPUTarget) Devices() []*ncs.Device { return t.devices }

// DeviceCount reports how many sticks the target drives — the
// capacity denominator health-aware routing and admission scale
// against.
func (t *VPUTarget) DeviceCount() int { return len(t.devices) }

// SetHealthObserver implements HealthAware. Observers accumulate:
// each registered fn sees every subsequent health transition.
func (t *VPUTarget) SetHealthObserver(fn func(healthy, total int, at time.Duration)) {
	t.healthObs = append(t.healthObs, fn)
}

// SetHedgeBudget replaces the target's hedge-volume budget from now
// on (0 = unlimited) — the operator's mid-run hedging knob (scenario
// hot-reload). The budget is consulted when a trigger fires, so only
// fires after the change see the new cap; with hedging disabled (or
// before Start) the call only updates the configuration.
func (t *VPUTarget) SetHedgeBudget(b float64) {
	t.opts.Hedge.Budget = b
	if t.hedge != nil {
		t.hedge.setBudget(b)
	}
}

// noteDown/noteUp track device health transitions and notify the
// observers (the Pool's failover routing and health-aware admission
// hang off this).
func (t *VPUTarget) noteDown(at time.Duration) {
	t.downCount++
	for _, fn := range t.healthObs {
		fn(len(t.devices)-t.downCount, len(t.devices), at)
	}
}

func (t *VPUTarget) noteUp(at time.Duration) {
	t.downCount--
	for _, fn := range t.healthObs {
		fn(len(t.devices)-t.downCount, len(t.devices), at)
	}
}

// Start implements Target.
func (t *VPUTarget) Start(env *sim.Env, src Source, sink func(Result)) *Job {
	job := &Job{}
	t.downCount = 0
	env.Process("ncsw-main", func(p *sim.Proc) {
		job.StartedAt = p.Now()
		n := len(t.devices)
		tl := t.opts.Timeline

		// 1. Connect: open every device and allocate the graph (the
		// main host process is responsible for connecting to each
		// device, §III).
		graphs := make([]*ncs.Graph, n)
		for i, d := range t.devices {
			if tl.Enabled() {
				d.SetExecObserver(func(name string, start, end time.Duration) {
					tl.Add(name, trace.Exec, start, end, "")
				})
			}
			if err := d.Open(p); err != nil {
				job.Err = fmt.Errorf("core: open %s: %w", d.Name(), err)
				job.Finish(p)
				return
			}
			g, err := d.AllocateGraph(p, t.blob, ncs.GraphOptions{Functional: t.opts.Functional})
			if err != nil {
				job.Err = fmt.Errorf("core: allocate on %s: %w", d.Name(), err)
				job.Finish(p)
				return
			}
			graphs[i] = g
		}
		job.ReadyAt = p.Now()

		// 2. Fork one worker per device, fed by per-worker queues. A
		// worker that abandons its device (fail-stop) marks itself dead
		// and drains its queue back to the dispatcher for re-dispatch.
		forkStart := p.Now()
		queues := make([]*sim.Queue[Item], n)
		for i := range queues {
			queues[i] = sim.NewQueue[Item](env, fmt.Sprintf("ncsw/q%d", i), 2)
		}
		dead := make([]bool, n)
		var orphans []Item
		done := sim.NewQueue[int](env, "ncsw/join", 0)

		// Hedged requests: a timer per dispatched item duplicates it
		// onto a different live worker when it ages past the trigger;
		// the dedup below delivers the first completion and discards
		// the loser. Disabled (or single-stick) hedging adds no timers,
		// so the event sequence is bit-identical to pre-hedging runs.
		dispatching := true
		t.hedge = nil
		if t.opts.Hedge.Enabled() && n > 1 {
			redispatch := func(item Item, exclude int) (int, bool) {
				if !dispatching {
					return 0, false // a duplicate behind the shutdown sentinel would never be served
				}
				for off := 1; off < n; off++ {
					j := (exclude + off) % n
					if dead[j] {
						continue
					}
					if queues[j].TryPut(item) {
						return j, true
					}
				}
				return 0, false
			}
			cancelCopy := func(index, child int) bool {
				if child < 0 || child >= n || dead[child] {
					return false
				}
				_, ok := queues[child].RemoveWhere(func(it Item) bool { return it.Index == index })
				return ok
			}
			// In-flight capacity: per worker, one executing item plus
			// its two queued slots — the DynamicBudget utilization
			// denominator.
			t.hedge = newHedger(env, t.opts.Hedge, 3*n, redispatch, cancelCopy)
		}

		for i := range t.devices {
			i := i
			env.Process(fmt.Sprintf("ncsw-worker%d", i), func(wp *sim.Proc) {
				t.worker(wp, t.devices[i], graphs, i, queues[i], sink, job, dead)
				if dead[i] {
					orphans = append(orphans, drainFeed(queues[i])...)
				}
				done.Put(wp, i)
			})
		}
		tl.Add("main", trace.Fork, forkStart, p.Now(), fmt.Sprintf("%d workers", n))

		// 3. Dispatch. Round-robin pushes item k to queue k mod n;
		// dynamic pushes to whichever queue has room first. Dead
		// workers are skipped and their reclaimed items re-dispatched
		// to survivors.
		deliver := func(item Item, k int) bool {
			// A reclaimed duplicate of an item already served through
			// its other copy is quietly forgotten, not re-served.
			if t.hedge != nil && t.hedge.settled(item.Index) {
				return true
			}
			var j int
			var ok bool
			if t.opts.Scheduling == Dynamic {
				j, ok = t.dispatchDynamic(p, queues, dead, item, k)
			} else {
				j, ok = putRoundRobin(p, queues, dead, item, k%n)
			}
			if !ok {
				// No live worker left: the in-hand item joins the
				// orphans so the post-join accounting (Recovery.OnDrop
				// or job.Err) sees it — the loss is never silent.
				orphans = append(orphans, item)
				return false
			}
			if t.hedge != nil {
				t.hedge.track(item, j, p.Now())
			}
			// The worker may have died while we were blocked on its
			// full queue; reclaim anything stranded there.
			if dead[j] {
				orphans = append(orphans, drainFeed(queues[j])...)
			}
			return true
		}
		k := 0
		alive := true
		for alive {
			for alive && len(orphans) > 0 {
				item := orphans[0]
				orphans = orphans[1:]
				alive = deliver(item, k)
				k++
			}
			if !alive {
				break
			}
			item, ok := src.Next(p)
			if !ok {
				break
			}
			alive = deliver(item, k)
			k++
		}
		for alive && len(orphans) > 0 {
			item := orphans[0]
			orphans = orphans[1:]
			alive = deliver(item, k)
			k++
		}
		dispatching = false // no hedge may launch behind the shutdown sentinels
		for i := range queues {
			if !dead[i] {
				queues[i].Put(p, Item{Index: -1}) // per-worker shutdown
			}
		}

		// 4. Join workers, then close devices. Items stranded by a
		// worker that died after dispatch ended are dropped through the
		// recovery hook (or recorded as an error when nothing observes
		// drops, so the loss is never silent).
		joinStart := p.Now()
		for range t.devices {
			done.Get(p)
		}
		tl.Add("main", trace.Join, joinStart, p.Now(), "")
		// Hedge arbitration before the loss accounting: a reclaimed
		// duplicate whose other copy was served is not stranded work,
		// and an item with both copies stranded is one loss, not two.
		if t.hedge != nil {
			orphans = t.hedge.filterLost(orphans)
		}
		if len(orphans) > 0 {
			if t.opts.Recovery.OnDrop != nil {
				for _, it := range orphans {
					t.opts.Recovery.OnDrop(it, p.Now())
				}
			} else if job.Err == nil {
				job.Err = fmt.Errorf("core: %d item(s) stranded by failed devices", len(orphans))
			}
		}
		for i, d := range t.devices {
			if dead[i] {
				continue // already reset at abandonment
			}
			if err := d.Close(p); err != nil && job.Err == nil {
				job.Err = err
			}
		}
		job.Finish(p)
	})
	return job
}

// dispatchDynamic places the item on the first live queue with room,
// scanning from the item's round-robin home for fairness, blocking on
// the home queue when all are full. It reports which queue received
// the item (ok=false when no live worker is left).
func (t *VPUTarget) dispatchDynamic(p *sim.Proc, queues []*sim.Queue[Item], dead []bool, item Item, k int) (int, bool) {
	n := len(queues)
	for off := 0; off < n; off++ {
		j := (k + off) % n
		if dead[j] {
			continue
		}
		if queues[j].TryPut(item) {
			return j, true
		}
	}
	return putRoundRobin(p, queues, dead, item, k%n)
}

// putRoundRobin blocks the item onto the first live queue scanning
// from home, reporting which queue received it (ok=false when none
// is live).
func putRoundRobin(p *sim.Proc, queues []*sim.Queue[Item], dead []bool, item Item, home int) (int, bool) {
	n := len(queues)
	for off := 0; off < n; off++ {
		j := (home + off) % n
		if dead[j] {
			continue
		}
		queues[j].Put(p, item)
		return j, true
	}
	return 0, false
}

// inflight is one dispatched-but-unfinished item on a worker.
type inflight struct {
	item     Item
	start    time.Duration
	attempts int // deliveries so far (>= 1 once loaded)
}

// emit outcomes.
const (
	emitOK     = iota // result delivered to the sink
	emitRetry         // transient failure: item requeued or dropped, device fine
	emitFailed        // device failure: timeout or dead link
	emitFatal         // unrecoverable host error (legacy path), job.Err set
)

// worker drains its queue through one stick, sequential per Listing 1
// (or two-deep pipelined with Overlap). With Recovery configured it is
// also the device's health monitor: results are awaited under the
// completion timeout, device failures trigger reset + re-open +
// re-allocation (or fail-stop abandonment), and in-flight items are
// redelivered within the attempt budget.
func (t *VPUTarget) worker(p *sim.Proc, dev *ncs.Device, graphs []*ncs.Graph, wi int, q *sim.Queue[Item], sink func(Result), job *Job, dead []bool) {
	tl := t.opts.Timeline
	rc := t.opts.Recovery
	g := graphs[wi]
	var pending []inflight // loaded, awaiting results (in load order)
	var retry []inflight   // awaiting redelivery after a failure

	// dropItem accounts one item lost to device failure. Without an
	// OnDrop observer the loss surfaces on the job error instead —
	// like the stranded-orphans path, it is never silent. With hedging
	// armed, the hedger arbitrates first: a lost duplicate whose other
	// copy is still in flight (or already delivered) is not a loss,
	// and a real loss disarms the item's hedge timer so a recorded
	// drop cannot be resurrected into a double-counted completion.
	dropItem := func(item Item) {
		if t.hedge != nil && !t.hedge.copyLost(item.Index, wi) {
			return
		}
		if rc.OnDrop != nil {
			rc.OnDrop(item, p.Now())
		} else if job.Err == nil {
			job.Err = fmt.Errorf("core: item %d lost to device failure on %s (no Recovery.OnDrop observer)",
				item.Index, dev.Name())
		}
	}

	// emit retrieves and publishes the result of the oldest in-flight
	// item, classifying failures.
	emit := func(fl inflight) int {
		readStart := p.Now()
		var res ncs.Result
		var err error
		if rc.enabled() {
			res, err = g.GetResultWithin(p, rc.Timeout)
		} else {
			res, err = g.GetResult(p)
		}
		if err != nil {
			if rc.enabled() {
				return emitFailed
			}
			if job.Err == nil {
				job.Err = err
			}
			return emitFatal
		}
		p.Sleep(t.opts.HostOverhead)
		tl.Add(dev.Name(), trace.Read, readStart, p.Now(), "")
		if rc.enabled() && errors.Is(res.Err, ncs.ErrTransient) {
			// A failed duplicate of an item already served through its
			// other copy is dropped quietly — no retry, no loss.
			if t.hedge != nil && t.hedge.settled(fl.item.Index) {
				return emitRetry
			}
			// Recoverable single-inference failure: redeliver within the
			// budget instead of surfacing a broken result.
			if fl.attempts < rc.attempts() {
				retry = append(retry, fl)
				if rc.OnRetry != nil {
					rc.OnRetry(fl.item, p.Now())
				}
			} else {
				dropItem(fl.item)
			}
			return emitRetry
		}
		r := Result{
			Index:        fl.item.Index,
			Label:        fl.item.Label,
			Pred:         -1,
			Start:        fl.start,
			End:          p.Now(),
			ArrivedAt:    fl.item.ArrivedAt,
			DispatchedAt: fl.start,
			Device:       dev.Name(),
			Tenant:       fl.item.Tenant,
			Err:          res.Err,
		}
		if res.Output != nil {
			pred, conf := res.Output.ArgMax()
			r.Pred, r.Confidence, r.Output = pred, conf, res.Output
		}
		// First-completion dedup: a losing hedge duplicate is discarded
		// here, so each item reaches the sink (and Job.Images) at most
		// once.
		if t.hedge == nil || t.hedge.complete(fl.item.Index, wi, p.Now()) {
			sink(r)
			job.Images++
		}
		return emitOK
	}

	// fail handles a device failure: requeue or drop the in-flight
	// items, then either heal the device (reset, firmware re-upload,
	// RTOS boot, graph re-allocation — the real outage cost) or abandon
	// it. It reports whether the worker should keep running.
	fail := func(reason string) bool {
		from := p.Now()
		t.noteDown(from)
		victims := pending
		pending = nil
		for _, v := range victims {
			// A duplicate whose other copy already completed is neither
			// retried nor counted as a loss.
			if t.hedge != nil && t.hedge.settled(v.item.Index) {
				continue
			}
			if rc.Recover && v.attempts < rc.attempts() {
				retry = append(retry, v)
				if rc.OnRetry != nil {
					rc.OnRetry(v.item, p.Now())
				}
			} else {
				dropItem(v.item)
			}
		}
		if rc.Recover {
			dev.Reset()
			err := dev.Open(p)
			if err == nil {
				var g2 *ncs.Graph
				g2, err = dev.AllocateGraph(p, t.blob, ncs.GraphOptions{Functional: t.opts.Functional})
				if err == nil {
					g = g2
					graphs[wi] = g2
					t.noteUp(p.Now())
					tl.Add(dev.Name(), trace.Down, from, p.Now(), reason)
					if rc.OnOutage != nil {
						rc.OnOutage(dev.Name(), from, p.Now(), true)
					}
					return true
				}
			}
			reason = fmt.Sprintf("%s; re-open failed: %v", reason, err)
		}
		// Fail-stop: nothing left to retry on — drop the redelivery
		// queue too, kill the device model so its runtime cannot
		// deadlock the simulation, and exit; the dispatcher reclaims
		// whatever is still queued for this worker.
		for _, v := range retry {
			if t.hedge != nil && t.hedge.settled(v.item.Index) {
				continue
			}
			dropItem(v.item)
		}
		retry = nil
		dev.Reset()
		dead[wi] = true
		tl.Add(dev.Name(), trace.Down, from, p.Now(), reason+" (abandoned)")
		if rc.OnOutage != nil {
			rc.OnOutage(dev.Name(), from, p.Now(), false)
		}
		if job.Err == nil {
			job.Err = fmt.Errorf("core: device %s abandoned: %s", dev.Name(), reason)
		}
		return false
	}

	depth := 1
	if t.opts.Overlap {
		depth = 2
	}
	feedDone := false
	for {
		// Pick the next delivery: redeliveries first, then the feed;
		// once the feed closes, drain what is still in flight.
		var fl inflight
		switch {
		case len(retry) > 0:
			fl = retry[0]
			retry = retry[1:]
			if t.hedge != nil && t.hedge.settled(fl.item.Index) {
				continue // the other copy won while this one waited for redelivery
			}
		case !feedDone:
			item := q.Get(p)
			if item.Index == -1 {
				feedDone = true
				continue
			}
			if t.hedge != nil && t.hedge.settled(item.Index) {
				continue // a duplicate whose other copy already completed
			}
			fl = inflight{item: item}
		case len(pending) > 0:
			switch emit(pending[0]) {
			case emitOK, emitRetry:
				pending = pending[1:]
			case emitFailed:
				if !fail("completion timeout or dead link") {
					return
				}
			case emitFatal:
				return
			}
			continue
		default:
			return
		}

		fl.attempts++
		fl.start = p.Now()
		p.Sleep(t.opts.HostOverhead)
		var img *tensor.T
		if t.opts.Functional {
			img = fl.item.Image
		}
		loadStart := p.Now()
		if err := g.LoadTensor(p, img, fl.item.Index); err != nil {
			if rc.enabled() {
				pending = append(pending, fl)
				if !fail(fmt.Sprintf("load failed: %v", err)) {
					return
				}
				continue
			}
			if job.Err == nil {
				job.Err = err
			}
			feedDone = true // legacy: stop loading, drain what is pending
			continue
		}
		tl.Add(dev.Name(), trace.Load, loadStart, p.Now(), fmt.Sprintf("img%d", fl.item.Index))
		pending = append(pending, fl)
		if len(pending) >= depth {
			switch emit(pending[0]) {
			case emitOK, emitRetry:
				pending = pending[1:]
			case emitFailed:
				if !fail("completion timeout or dead link") {
					return
				}
			case emitFatal:
				return
			}
		}
	}
}
