package core

import (
	"math"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// drainArrivals runs one consumer over an arrival-wrapped slice source
// and returns the consumed items in order.
func drainArrivals(t *testing.T, n int, arr Arrivals) []Item {
	t.Helper()
	env := sim.NewEnv()
	src, err := NewArrivalSource(env, sliceOf(n), arr, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var got []Item
	env.Process("consumer", func(p *sim.Proc) {
		for {
			item, ok := src.Next(p)
			if !ok {
				return
			}
			got = append(got, item)
		}
	})
	env.Run()
	return got
}

// TestDeterministicArrivals: a rate-R process delivers item k at
// exactly (k+1)/R, stamped on ArrivedAt.
func TestDeterministicArrivals(t *testing.T) {
	const n = 10
	got := drainArrivals(t, n, DeterministicArrivals(100)) // 10 ms period
	if len(got) != n {
		t.Fatalf("consumed %d items, want %d", len(got), n)
	}
	for k, item := range got {
		want := time.Duration(k+1) * 10 * time.Millisecond
		if item.ArrivedAt != want {
			t.Errorf("item %d arrived at %v, want %v", k, item.ArrivedAt, want)
		}
	}
}

// TestPoissonArrivals: arrivals are strictly ordered, stochastic, and
// the mean interarrival gap lands near 1/rate. Two identically seeded
// runs must match instant for instant.
func TestPoissonArrivals(t *testing.T) {
	const n = 400
	const rate = 1000.0
	run1 := drainArrivals(t, n, PoissonArrivals(rate))
	run2 := drainArrivals(t, n, PoissonArrivals(rate))
	if len(run1) != n {
		t.Fatalf("consumed %d items, want %d", len(run1), n)
	}
	var prev time.Duration
	var sum float64
	for k, item := range run1 {
		if item.ArrivedAt <= prev {
			t.Fatalf("item %d arrived at %v, not after %v", k, item.ArrivedAt, prev)
		}
		sum += (item.ArrivedAt - prev).Seconds()
		prev = item.ArrivedAt
		if item.ArrivedAt != run2[k].ArrivedAt {
			t.Fatalf("run mismatch at item %d: %v vs %v", k, item.ArrivedAt, run2[k].ArrivedAt)
		}
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.2/rate {
		t.Errorf("mean interarrival %.6fs, want %.6fs ±20%%", mean, 1/rate)
	}
}

// TestBurstyArrivals: 5 arrivals fit in each 50 ms on-phase at 100/s,
// then a 100 ms gap before the next burst.
func TestBurstyArrivals(t *testing.T) {
	got := drainArrivals(t, 8, BurstyArrivals(100, 50*time.Millisecond, 100*time.Millisecond))
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond,
		40 * time.Millisecond, 50 * time.Millisecond,
		// next cycle starts at 150 ms
		160 * time.Millisecond, 170 * time.Millisecond, 180 * time.Millisecond,
	}
	if len(got) != len(want) {
		t.Fatalf("consumed %d items, want %d", len(got), len(want))
	}
	for k, item := range got {
		if item.ArrivedAt != want[k] {
			t.Errorf("item %d arrived at %v, want %v", k, item.ArrivedAt, want[k])
		}
	}
}

// TestTraceArrivals: instants replay sorted, and a trace shorter than
// the source ends the stream early.
func TestTraceArrivals(t *testing.T) {
	trace := []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	got := drainArrivals(t, 10, TraceArrivals(trace))
	if len(got) != len(trace) {
		t.Fatalf("consumed %d items, want %d (trace-bounded)", len(got), len(trace))
	}
	for k, want := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		if got[k].ArrivedAt != want {
			t.Errorf("item %d arrived at %v, want %v", k, got[k].ArrivedAt, want)
		}
	}
}

// TestArrivalSourceMultiConsumer: several consumers sharing one
// arrival source all terminate and every item is consumed exactly
// once.
func TestArrivalSourceMultiConsumer(t *testing.T) {
	const n = 60
	env := sim.NewEnv()
	src, err := NewArrivalSource(env, sliceOf(n), DeterministicArrivals(1000), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for w := 0; w < 3; w++ {
		env.Process("consumer", func(p *sim.Proc) {
			for {
				item, ok := src.Next(p)
				if !ok {
					return
				}
				p.Sleep(time.Millisecond)
				seen[item.Index]++
			}
		})
	}
	env.Run()
	checkConservation(t, seen, n, "multi-consumer arrivals")
}

// TestArrivalSourceOpenLoopWait: with arrivals slower than the device,
// the device idles between items — completion tracks the arrival
// process, not device speed, and per-item queue wait stays near zero.
func TestArrivalSourceOpenLoopWait(t *testing.T) {
	const n = 20
	env := sim.NewEnv()
	src, err := NewArrivalSource(env, sliceOf(n), DeterministicArrivals(100), rng.New(1)) // 10 ms gaps
	if err != nil {
		t.Fatal(err)
	}
	target := &stubTarget{name: "fast", latency: time.Millisecond}
	col := NewCollector(true)
	job := target.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	// Last arrival at 200 ms + 1 ms service.
	if want := 201 * time.Millisecond; job.DoneAt != want {
		t.Errorf("open-loop run finished at %v, want %v", job.DoneAt, want)
	}
	for _, r := range col.Results {
		if w := r.Wait(); w != 0 {
			t.Errorf("item %d waited %v under light load, want 0", r.Index, w)
		}
		if s := r.ServiceTime(); s != time.Millisecond {
			t.Errorf("item %d service time %v, want 1ms", r.Index, s)
		}
	}
}

// TestArrivalBackpressureLatency: arrivals at 2× the device's service
// rate build a queue; the collector's latency split must show growing
// queue wait while service time stays the device constant.
func TestArrivalBackpressureLatency(t *testing.T) {
	const n = 50
	env := sim.NewEnv()
	// 1 ms between arrivals, 2 ms service: queue grows ~1 ms per item.
	src, err := NewArrivalSource(env, sliceOf(n), DeterministicArrivals(1000), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	target := &stubTarget{name: "slow", latency: 2 * time.Millisecond}
	col := NewCollector(true)
	job := target.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	lat := col.Latency()
	if lat.N != n {
		t.Fatalf("latency summary over %d items, want %d", lat.N, n)
	}
	if lat.ServiceMean != 2*time.Millisecond {
		t.Errorf("service mean %v, want 2ms", lat.ServiceMean)
	}
	// Item k arrives at (k+1) ms and starts service at 1+2k ms: wait
	// k ms, so the p99 wait must dwarf the mean service time.
	if lat.QueueP99 < 40*time.Millisecond {
		t.Errorf("queue p99 %v under 2x overload, want >= 40ms", lat.QueueP99)
	}
	if lat.P99 < lat.QueueP99 || lat.Max < lat.P99 || lat.P50 > lat.P99 {
		t.Errorf("inconsistent quantiles: %+v", lat)
	}
	if diff := lat.Mean - (lat.QueueMean + lat.ServiceMean); diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("mean latency %v != queue %v + service %v", lat.Mean, lat.QueueMean, lat.ServiceMean)
	}
}

// TestArrivalSourceStaticSplit: an arrival-wrapped finite source still
// supports static splitting (Remaining counts unarrived items), while
// an arrival-wrapped stream is rejected as empty.
func TestArrivalSourceStaticSplit(t *testing.T) {
	const n = 30
	env := sim.NewEnv()
	src, err := NewArrivalSource(env, sliceOf(n), DeterministicArrivals(1000), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool([]Target{
		&stubTarget{name: "a", latency: time.Millisecond},
		&stubTarget{name: "b", latency: time.Millisecond},
	}, PoolOptions{Routing: RouteStatic})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	job := pool.Start(env, src, func(r Result) { seen[r.Index]++ })
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	checkConservation(t, seen, n, "static over arrivals")
	for i, cj := range pool.ChildJobs() {
		if cj.Images != n/2 {
			t.Errorf("child %d got %d items, want %d", i, cj.Images, n/2)
		}
	}

	env2 := sim.NewEnv()
	stream := NewStreamSource(env2, 4)
	wrapped, err := NewArrivalSource(env2, stream, DeterministicArrivals(1000), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	env2.Process("producer", func(p *sim.Proc) { stream.Close(p) })
	pool2, err := NewPool([]Target{
		&stubTarget{name: "a", latency: time.Millisecond},
		&stubTarget{name: "b", latency: time.Millisecond},
	}, PoolOptions{Routing: RouteStatic})
	if err != nil {
		t.Fatal(err)
	}
	job2 := pool2.Start(env2, wrapped, func(Result) {})
	env2.Run()
	if job2.Err == nil {
		t.Error("static split over an arrival-wrapped stream succeeded; want error")
	}
}

// TestArrivalsValidation: constructors reject nonsense processes and
// the source constructor rejects nil parts.
func TestArrivalsValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero rate", func() { PoissonArrivals(0) })
	mustPanic("negative rate", func() { DeterministicArrivals(-1) })
	mustPanic("zero on-phase", func() { BurstyArrivals(10, 0, time.Second) })
	// An on-phase shorter than one interarrival period would never
	// emit (the roll-over would land every arrival in the off-phase).
	mustPanic("burst without arrivals", func() {
		BurstyArrivals(1000.0/120.0, 50*time.Millisecond, 100*time.Millisecond)
	})
	mustPanic("empty trace", func() { TraceArrivals(nil) })
	mustPanic("negative instant", func() { TraceArrivals([]time.Duration{-time.Second}) })

	env := sim.NewEnv()
	if _, err := NewArrivalSource(env, nil, PoissonArrivals(1), rng.New(1)); err == nil {
		t.Error("nil inner source accepted")
	}
	if _, err := NewArrivalSource(env, sliceOf(1), nil, rng.New(1)); err == nil {
		t.Error("nil arrival process accepted")
	}
}

// TestArrivalSourceRejectsSentinelIndex: a wrapped-source item
// carrying the reserved Index -1 would masquerade as end-of-stream
// and truncate the run; the driver must fail loudly instead, like
// StreamSource.Push. The panic fires on the driver's own simulated
// process, so the check runs in a crasher subprocess.
func TestArrivalSourceRejectsSentinelIndex(t *testing.T) {
	if os.Getenv("NCSW_ARRIVALS_SENTINEL_CRASH") == "1" {
		env := sim.NewEnv()
		src, err := NewArrivalSource(env,
			NewSliceSource([]Item{{Index: -1}, {Index: 0}}),
			DeterministicArrivals(10), rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		env.Process("consumer", func(p *sim.Proc) {
			for {
				if _, ok := src.Next(p); !ok {
					return
				}
			}
		})
		env.Run()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestArrivalSourceRejectsSentinelIndex$")
	cmd.Env = append(os.Environ(), "NCSW_ARRIVALS_SENTINEL_CRASH=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("reserved-index item did not crash the run; output:\n%s", out)
	}
	if !strings.Contains(string(out), "reserved Index -1") {
		t.Fatalf("crash output missing the sentinel message:\n%s", out)
	}
}
