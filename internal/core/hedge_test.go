package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
)

// hedgeCounters collects the hedge hook observations of one run.
type hedgeCounters struct {
	launched, wins, waste int
}

func hedgeHooks(out *hedgeCounters) (h, w, x func(Item, int, time.Duration)) {
	return func(Item, int, time.Duration) { out.launched++ },
		func(Item, int, time.Duration) { out.wins++ },
		func(Item, int, time.Duration) { out.waste++ }
}

// TestPoolHedgeWinAndWaste: a straggler child holds items past the
// trigger while the deal is live, duplicates land on the fast child
// and win, and the straggler's eventual completions are discarded —
// the sink sees every item exactly once. (Hedges launch only while
// the dispatcher is live: enough items keep it busy here.)
func TestPoolHedgeWinAndWaste(t *testing.T) {
	slow := &stubTarget{name: "slow", latency: time.Second}
	fast := &stubTarget{name: "fast", latency: 10 * time.Millisecond}
	out := &hedgeCounters{}
	hc := HedgeConfig{Trigger: 100 * time.Millisecond}
	hc.OnHedge, hc.OnWin, hc.OnWaste = hedgeHooks(out)
	const n = 8
	_, job, seen := runPool(t, []Target{slow, fast},
		PoolOptions{Routing: RouteRoundRobin, Hedge: hc}, n)
	if job.Err != nil {
		t.Fatalf("pool error: %v", job.Err)
	}
	checkConservation(t, seen, n, "hedged pool")
	if out.launched == 0 {
		t.Fatal("no hedge launched for a 1s straggler under a 100ms trigger")
	}
	if out.wins == 0 {
		t.Error("hedge duplicates on the fast child should win against the 1s straggler")
	}
	if out.waste == 0 {
		t.Error("the straggler's in-service completion should be discarded as waste")
	}
	if job.Images != n {
		t.Errorf("job.Images = %d, want %d (duplicates must not double-count)", job.Images, n)
	}
}

// TestPoolHedgeCancelsQueuedLoser: when a duplicate wins while the
// primary copy still sits in the straggler's feed queue, the primary
// is withdrawn — no device serves it and no waste is recorded for it,
// so waste stays strictly below the launch count.
func TestPoolHedgeCancelsQueuedLoser(t *testing.T) {
	slow := &stubTarget{name: "slow", latency: time.Second}
	fast := &stubTarget{name: "fast", latency: 10 * time.Millisecond}
	out := &hedgeCounters{}
	hc := HedgeConfig{Trigger: 100 * time.Millisecond}
	hc.OnHedge, hc.OnWin, hc.OnWaste = hedgeHooks(out)
	// Round-robin sends half the items to the straggler; everything
	// beyond its in-service item waits in the bounded feed, gets
	// hedged, wins on the fast child, and is cancelled out of the
	// straggler's queue.
	const n = 10
	_, job, seen := runPool(t, []Target{slow, fast},
		PoolOptions{Routing: RouteRoundRobin, Hedge: hc}, n)
	if job.Err != nil {
		t.Fatalf("pool error: %v", job.Err)
	}
	checkConservation(t, seen, n, "hedged pool with cancel")
	if out.launched < 2 {
		t.Fatalf("launched = %d, want >= 2", out.launched)
	}
	if out.wins < 2 {
		t.Errorf("wins = %d, want >= 2", out.wins)
	}
	if out.waste == 0 {
		t.Error("the in-service loser should be discarded as waste")
	}
	if out.waste >= out.launched {
		t.Errorf("waste %d not below launched %d: queued losers must be cancelled, not served",
			out.waste, out.launched)
	}
	if job.Images != n {
		t.Errorf("job.Images = %d, want %d", job.Images, n)
	}
}

// TestPoolHedgeNeverBitIdentical: a pool armed with HedgeNever must
// produce exactly the result stream of an unhedged pool — same
// indices, same devices, same timestamps, in the same order.
func TestPoolHedgeNeverBitIdentical(t *testing.T) {
	run := func(hc HedgeConfig) []Result {
		children := []Target{
			&stubTarget{name: "a", latency: 40 * time.Millisecond},
			&stubTarget{name: "b", latency: 15 * time.Millisecond},
		}
		pool, err := NewPool(children, PoolOptions{Routing: RouteLatency, Hedge: hc})
		if err != nil {
			t.Fatal(err)
		}
		env := sim.NewEnv()
		var results []Result
		job := pool.Start(env, sliceOf(40), func(r Result) { results = append(results, r) })
		env.Run()
		if job.Err != nil {
			t.Fatalf("pool error: %v", job.Err)
		}
		return results
	}
	plain := run(HedgeConfig{})
	never := run(HedgeConfig{Trigger: HedgeNever})
	if len(plain) != len(never) {
		t.Fatalf("result counts differ: %d unhedged vs %d trigger=∞", len(plain), len(never))
	}
	for i := range plain {
		if plain[i] != never[i] {
			t.Fatalf("result %d differs: unhedged %+v vs trigger=∞ %+v", i, plain[i], never[i])
		}
	}
}

// TestPoolHedgeBudget: a tiny budget suppresses hedging entirely on a
// small run — the straggler finishes its own work.
func TestPoolHedgeBudget(t *testing.T) {
	slow := &stubTarget{name: "slow", latency: 500 * time.Millisecond}
	fast := &stubTarget{name: "fast", latency: 10 * time.Millisecond}
	out := &hedgeCounters{}
	hc := HedgeConfig{Trigger: 50 * time.Millisecond, Budget: 0.001}
	hc.OnHedge, hc.OnWin, hc.OnWaste = hedgeHooks(out)
	_, job, seen := runPool(t, []Target{slow, fast},
		PoolOptions{Routing: RouteRoundRobin, Hedge: hc}, 6)
	if job.Err != nil {
		t.Fatalf("pool error: %v", job.Err)
	}
	checkConservation(t, seen, 6, "budgeted hedging")
	if out.launched != 0 {
		t.Errorf("launched = %d, want 0 under a 0.1%% budget", out.launched)
	}
}

// TestPoolHedgeQuantileWarmup: a quantile-only trigger launches
// nothing until MinSamples completions have been observed, then
// hedges the stragglers.
func TestPoolHedgeQuantileWarmup(t *testing.T) {
	slow := &stubTarget{name: "slow", latency: 400 * time.Millisecond}
	fast := &stubTarget{name: "fast", latency: 10 * time.Millisecond}
	out := &hedgeCounters{}
	hc := HedgeConfig{Quantile: 0.5, MinSamples: 6}
	hc.OnHedge, hc.OnWin, hc.OnWaste = hedgeHooks(out)
	_, job, seen := runPool(t, []Target{slow, fast},
		PoolOptions{Routing: RouteRoundRobin, Hedge: hc}, 24)
	if job.Err != nil {
		t.Fatalf("pool error: %v", job.Err)
	}
	checkConservation(t, seen, 24, "quantile hedging")
	if out.launched == 0 {
		t.Error("no hedge launched after quantile warmup against a 40x straggler")
	}
	if out.waste > out.launched {
		t.Errorf("waste %d exceeds launched %d", out.waste, out.launched)
	}
}

// TestNewPoolHedgeValidation: hedging rejects work-stealing routing
// and single-child pools.
func TestNewPoolHedgeValidation(t *testing.T) {
	two := []Target{&stubTarget{name: "a"}, &stubTarget{name: "b"}}
	if _, err := NewPool(two, PoolOptions{Routing: RouteWorkStealing,
		Hedge: HedgeConfig{Trigger: time.Second}}); err == nil {
		t.Error("work-stealing + hedging must be rejected (no per-child feeds)")
	}
	if _, err := NewPool(two[:1], PoolOptions{Hedge: HedgeConfig{Trigger: time.Second}}); err == nil {
		t.Error("single-child hedging must be rejected")
	}
	if _, err := NewPool(two, PoolOptions{Hedge: HedgeConfig{Trigger: -1}}); err == nil {
		t.Error("negative trigger must be rejected")
	}
	if _, err := NewPool(two, PoolOptions{Hedge: HedgeConfig{Quantile: 1.5}}); err == nil {
		t.Error("quantile outside [0,1) must be rejected")
	}
}

// TestVPUTargetHedgeUnderSlowdown: a 2-stick NCSw target with one
// stick slowed 20x hedges the straggler's items onto the healthy
// stick; every item completes exactly once and the hedge accounting
// balances.
func TestVPUTargetHedgeUnderSlowdown(t *testing.T) {
	const images = 30
	tb := newTestbed(t, 2, nn.NewGoogLeNet(rng.New(1)), images)
	out := &hedgeCounters{}
	opts := DefaultVPUOptions()
	opts.Recovery = DefaultRecoveryConfig()
	opts.Recovery.Timeout = 30 * time.Second // detection must not race the hedge in this test
	opts.Hedge = HedgeConfig{Trigger: 400 * time.Millisecond}
	opts.Hedge.OnHedge, opts.Hedge.OnWin, opts.Hedge.OnWaste = hedgeHooks(out)
	target, err := NewVPUTarget(tb.devices, tb.blob, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(tb.ds, 0, images, false)
	if err != nil {
		t.Fatal(err)
	}
	// Slow stick 0 by 20x for most of the run: its ~100ms service
	// becomes ~2s, far past the 400ms trigger.
	tb.env.At(200*time.Millisecond, func() { tb.devices[0].InjectSlowdown(20) })
	seen := map[int]int{}
	job := target.Start(tb.env, src, func(r Result) { seen[r.Index]++ })
	tb.env.Run()
	if job.Err != nil {
		t.Fatalf("job error: %v", job.Err)
	}
	if len(seen) != images {
		t.Fatalf("%d distinct items served, want %d", len(seen), images)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("item %d served %d times", idx, n)
		}
	}
	if job.Images != images {
		t.Errorf("job.Images = %d, want %d (dedup must keep the count exact)", job.Images, images)
	}
	if out.launched == 0 {
		t.Error("no hedges launched against a 20x straggler stick")
	}
	if out.wins == 0 {
		t.Error("no hedge wins against a 20x straggler stick")
	}
}

// TestPoolHedgeStrandedPairCountsOnce: when every child dies with
// both copies of a hedged item stranded in the feeds, the pool error
// counts the item once — not once per copy.
func TestPoolHedgeStrandedPairCountsOnce(t *testing.T) {
	// Two children that each serve exactly one slow item and then stop
	// consuming (without reading the sentinel): everything else is
	// stranded, including hedge duplicates of the stranded items.
	a := &stubTarget{name: "a", latency: time.Second, quitAfter: 1}
	b := &stubTarget{name: "b", latency: time.Second, quitAfter: 1}
	hc := HedgeConfig{Trigger: 100 * time.Millisecond}
	pool, err := NewPool([]Target{a, b}, PoolOptions{Routing: RouteRoundRobin, Hedge: hc})
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	const n = 6
	seen := map[int]int{}
	job := pool.Start(env, sliceOf(n), func(r Result) { seen[r.Index]++ })
	env.Run()
	for idx, c := range seen {
		if c != 1 {
			t.Errorf("item %d delivered %d times", idx, c)
		}
	}
	if job.Err == nil {
		t.Fatal("expected a stranded-items error from children that stopped consuming")
	}
	missing := n - len(seen)
	want := fmt.Sprintf("%d item(s) stranded", missing)
	if !strings.Contains(job.Err.Error(), want) {
		t.Errorf("stranded count mismatch: %d distinct items unserved, error says %q",
			missing, job.Err)
	}
}

// TestHedgerFilterLostCountsPairOnce: the post-join loss arbitration
// — a hedged item with both copies stranded is one loss, not two, and
// a delivered item's stranded duplicate is no loss at all.
func TestHedgerFilterLostCountsPairOnce(t *testing.T) {
	env := sim.NewEnv()
	h := newHedger(env, HedgeConfig{Trigger: time.Millisecond}, 0,
		func(Item, int) (int, bool) { return 1, true }, nil)
	// Item 7: hedged, then both copies reclaimed after a total failure.
	h.track(Item{Index: 7}, 0, 0)
	h.fire(h.entries[7])
	if kept := h.filterLost([]Item{{Index: 7}, {Index: 7}}); len(kept) != 1 {
		t.Fatalf("both-copies-stranded kept %d entries, want 1 (one item, one loss)", len(kept))
	}
	// Item 8: hedged and delivered through the duplicate; its stranded
	// primary is not a loss.
	h.track(Item{Index: 8}, 0, 0)
	h.fire(h.entries[8])
	if !h.complete(8, 1, time.Millisecond) {
		t.Fatal("winning duplicate must deliver")
	}
	if kept := h.filterLost([]Item{{Index: 8}}); len(kept) != 0 {
		t.Fatal("a delivered item's stranded duplicate was counted as a loss")
	}
	// Item 9: never hedged — its single stranded copy is a real loss.
	h.track(Item{Index: 9}, 0, 0)
	if kept := h.filterLost([]Item{{Index: 9}}); len(kept) != 1 {
		t.Fatalf("unhedged stranded item kept %d entries, want 1", len(kept))
	}
}

// TestVPUHedgeDropAccountingDisjoint: under a hang with a tight
// redelivery budget and hedging armed, every item ends exactly one
// way — delivered once, or dropped once. A lost duplicate whose other
// copy survives must not be counted as a drop, and a recorded drop
// must never be resurrected into a second completion.
func TestVPUHedgeDropAccountingDisjoint(t *testing.T) {
	const images = 40
	tb := newTestbed(t, 2, nn.NewGoogLeNet(rng.New(1)), images)
	dropped := map[int]int{}
	opts := DefaultVPUOptions()
	opts.Recovery = RecoveryConfig{
		Timeout:     800 * time.Millisecond,
		Recover:     true,
		MaxAttempts: 1,
		OnDrop:      func(item Item, _ time.Duration) { dropped[item.Index]++ },
	}
	opts.Hedge = HedgeConfig{Trigger: 300 * time.Millisecond}
	target, err := NewVPUTarget(tb.devices, tb.blob, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(tb.ds, 0, images, false)
	if err != nil {
		t.Fatal(err)
	}
	tb.env.At(2500*time.Millisecond, func() { tb.devices[0].InjectHang() })
	served := map[int]int{}
	job := target.Start(tb.env, src, func(r Result) { served[r.Index]++ })
	tb.env.Run()
	if job.Err != nil {
		t.Fatalf("job error: %v", job.Err)
	}
	for idx, n := range served {
		if n != 1 {
			t.Errorf("item %d delivered %d times", idx, n)
		}
		if dropped[idx] > 0 {
			t.Errorf("item %d both delivered and dropped (%d drops)", idx, dropped[idx])
		}
	}
	for idx, n := range dropped {
		if n != 1 {
			t.Errorf("item %d dropped %d times", idx, n)
		}
	}
	if got := len(served) + len(dropped); got != images {
		t.Errorf("%d served + %d dropped = %d items accounted, want %d",
			len(served), len(dropped), got, images)
	}
	if job.Images != len(served) {
		t.Errorf("job.Images = %d, want %d", job.Images, len(served))
	}
}

// TestVPUTargetHedgeNeverBitIdentical: the multi-VPU target armed
// with HedgeNever emits exactly the unhedged result stream.
func TestVPUTargetHedgeNeverBitIdentical(t *testing.T) {
	const images = 24
	run := func(hc HedgeConfig) []Result {
		tb := newTestbed(t, 4, nn.NewGoogLeNet(rng.New(1)), images)
		opts := DefaultVPUOptions()
		opts.Hedge = hc
		target, err := NewVPUTarget(tb.devices, tb.blob, opts)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewDatasetSource(tb.ds, 0, images, false)
		if err != nil {
			t.Fatal(err)
		}
		var results []Result
		job := target.Start(tb.env, src, func(r Result) { results = append(results, r) })
		tb.env.Run()
		if job.Err != nil {
			t.Fatalf("job error: %v", job.Err)
		}
		return results
	}
	plain := run(HedgeConfig{})
	never := run(HedgeConfig{Trigger: HedgeNever})
	if len(plain) != len(never) {
		t.Fatalf("result counts differ: %d unhedged vs %d trigger=∞", len(plain), len(never))
	}
	for i := range plain {
		p, q := plain[i], never[i]
		p.Output, q.Output = nil, nil // pointer fields compare by identity
		if p != q {
			t.Fatalf("result %d differs:\nunhedged  %+v\ntrigger=∞ %+v", i, p, q)
		}
	}
}
