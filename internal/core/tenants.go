package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// This file is the multi-tenant admission edge: many per-tenant
// arrival processes multiplexed into one tagged stream, scheduled out
// of per-tenant queues by deficit-round-robin over weights (optionally
// inside strict priority tiers), with per-tenant quotas, deadlines and
// shed policies. One bursty tenant sheds its own traffic; its
// neighbors keep their fair share. The FIFO policy — a single shared
// queue in arrival order — is the deliberately isolation-free control
// the fair scheduler is measured against.

// TenantPolicy selects the admission-edge scheduler of a TenantMux.
type TenantPolicy int

const (
	// TenantFIFO multiplexes every tenant into one shared queue served
	// in arrival order — no isolation: a flash-crowd tenant fills the
	// queue and its neighbors' traffic sheds alongside its own. The
	// control configuration of the tenants experiment.
	TenantFIFO TenantPolicy = iota
	// TenantFair drains per-tenant queues by deficit-round-robin over
	// the tenant weights: under saturation each backlogged tenant
	// receives service proportional to its weight, and an idle
	// tenant's share is redistributed (work conservation).
	TenantFair
	// TenantPriority serves strict priority tiers (lower Priority
	// value first); within a tier, deficit-round-robin over weights.
	// A lower tier is served only when every higher tier is empty —
	// latency-critical classes preempt batch classes at the queue, at
	// the cost of possible starvation below.
	TenantPriority
)

// String names the policy.
func (t TenantPolicy) String() string {
	switch t {
	case TenantFIFO:
		return "fifo"
	case TenantFair:
		return "fair"
	case TenantPriority:
		return "priority"
	}
	return fmt.Sprintf("tenant-policy(%d)", int(t))
}

// TenantLane declares one tenant (traffic class) of a TenantMux: its
// identity, its arrival process, its scheduling share and its
// contract (queue bound, deadline, quotas).
type TenantLane struct {
	// ID names the tenant; stamped onto every item (Item.Tenant) and
	// carried through to the Result. Must be unique and non-empty.
	ID string
	// Weight is the tenant's fair-share weight (default 1). Under
	// TenantFair/TenantPriority a backlogged tenant receives service
	// proportional to Weight within its tier.
	Weight float64
	// Priority is the tenant's strict-priority class under
	// TenantPriority: lower values are served first, ties share a
	// deficit-round-robin tier. TenantFIFO/TenantFair ignore it.
	Priority int
	// Arrivals is the tenant's open-loop arrival process (required).
	// Each lane draws from its own derived random stream, so one
	// tenant's arrival sequence is identical across scheduler
	// policies.
	Arrivals Arrivals
	// Depth bounds the tenant's own admission queue (0 = unbounded).
	// Under TenantFIFO the lane depths are summed into the shared
	// bound unless SharedDepth overrides it.
	Depth int
	// Policy selects what a full tenant queue does with the tenant's
	// next arrival (default ShedNewest). Block applies backpressure to
	// this tenant's own arrival pump only.
	Policy OverloadPolicy
	// Deadline is the tenant's per-item deadline (its SLO target)
	// measured from arrival; an item still queued when it lapses is
	// dropped as expired at dispatch. 0 disables expiry.
	Deadline time.Duration
	// MaxInFlight caps the tenant's admitted-but-uncompleted items
	// (queued here plus dispatched downstream); an arrival beyond the
	// cap is rejected as a quota drop. 0 = unlimited. Wire Done to the
	// completion path to release the slots.
	MaxInFlight int
	// RatePerSec caps the tenant's admitted rate with a token bucket
	// refilled in virtual time; an arrival finding no token is
	// rejected as a quota drop. 0 = unlimited.
	RatePerSec float64
	// Burst is the token-bucket depth of the rate quota (default 1:
	// strict pacing with no burst allowance).
	Burst int
}

// TenantMuxOptions configures a TenantMux.
type TenantMuxOptions struct {
	// Lanes are the tenants, in registration order (the order DRR
	// ties and reporting follow). At least one is required.
	Lanes []TenantLane
	// Policy selects the admission scheduler (default TenantFIFO).
	Policy TenantPolicy
	// SharedDepth bounds the single shared queue of TenantFIFO
	// (0 = the sum of the lane depths; unbounded if any lane is).
	// Ignored by the fair policies.
	SharedDepth int
	// SharedPolicy is the overload policy of the shared TenantFIFO
	// queue (default ShedNewest). Ignored by the fair policies.
	SharedPolicy OverloadPolicy
	// OnDrop observes every dropped or rejected item (shed, expired,
	// quota) with the drop instant; item.Tenant identifies the lane.
	OnDrop func(item Item, reason DropReason, at time.Duration)
	// Seed drives the stochastic arrival processes; each lane derives
	// its own sub-stream keyed by tenant ID, so per-tenant sequences
	// are identical across scheduler policies. nil defaults to seed 1.
	Seed *rng.Source
}

// TenantStats counts what happened to one tenant at the admission
// edge.
type TenantStats struct {
	// Arrived is every item the tenant's arrival process offered.
	Arrived int
	// Admitted is how many entered a queue (including any later
	// expired while queued).
	Admitted int
	// Shed is how many the overload policy dropped.
	Shed int
	// Expired is how many were admitted but dropped at dispatch after
	// the tenant's deadline lapsed in the queue.
	Expired int
	// QuotaRejected is how many a quota (max in-flight or admitted
	// rate) turned away before any queue.
	QuotaRejected int
	// Dispatched is how many were handed to a consumer.
	Dispatched int
	// Completed is how many completions Done reported back.
	Completed int
}

// tenantLane is the runtime state of one tenant.
type tenantLane struct {
	cfg   TenantLane
	q     *sim.Queue[Item] // per-tenant queue (fair policies)
	stats TenantStats
	// inflight is admitted-but-uncompleted work (queued + dispatched);
	// the MaxInFlight quota gates on it.
	inflight int
	// served is the DRR service counter: the scheduler picks the
	// backlogged lane minimizing served/weight.
	served int
	// tokens/lastRefill implement the admitted-rate token bucket in
	// virtual time.
	tokens     float64
	lastRefill time.Duration
}

// weight returns the configured weight (default 1).
func (l *tenantLane) weight() float64 {
	if l.cfg.Weight > 0 {
		return l.cfg.Weight
	}
	return 1
}

// TenantMux is the multi-tenant admission edge: one arrival pump per
// tenant pulls the shared inner source at the tenant's own arrival
// instants, tags each item (Item.Tenant), applies the tenant's quotas
// and queue bound, and a scheduler drains the queues per
// TenantPolicy. Consumers read it as an ordinary Source; it also
// implements TimedSource and DepthSource, so any target — single,
// pool, batch-assembling — consumes it exactly like an
// AdmissionQueue.
//
// Expiry is lazy (checked at dispatch), exactly like AdmissionQueue.
// The stream ends when the shared inner source is exhausted and every
// queue has drained; exhaustion is re-posted so every consumer
// terminates.
type TenantMux struct {
	opts  TenantMuxOptions
	lanes []*tenantLane
	byID  map[string]*tenantLane
	// tiers holds lane indices grouped by strict priority (ascending),
	// each tier in registration order. TenantFair has a single tier.
	tiers [][]int
	// ready holds one token per enqueued item under the fair policies
	// (value unused); -1 is the end-of-stream sentinel token. Tokens
	// are not bound to specific items: a ShedOldest eviction leaves an
	// orphan token the dispatcher skips when every queue is empty.
	ready *sim.Queue[int]
	// shared is the single TenantFIFO queue (nil under fair policies).
	shared *sim.Queue[Item]
	inner  Source
	// pumps counts arrival pumps still running; the last one to finish
	// posts the end-of-stream sentinel.
	pumps  int
	closed bool
}

// NewTenantMux builds the multi-tenant admission edge inside env over
// the shared inner source. The arrival pumps start immediately;
// traffic unfolds as env runs.
func NewTenantMux(env *sim.Env, inner Source, opts TenantMuxOptions) (*TenantMux, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: tenant mux needs a wrapped source")
	}
	if len(opts.Lanes) == 0 {
		return nil, fmt.Errorf("core: tenant mux needs at least one tenant lane")
	}
	if opts.Policy < TenantFIFO || opts.Policy > TenantPriority {
		return nil, fmt.Errorf("core: unknown tenant policy %v", opts.Policy)
	}
	if opts.SharedPolicy < ShedNewest || opts.SharedPolicy > Block {
		return nil, fmt.Errorf("core: unknown overload policy %v", opts.SharedPolicy)
	}
	if opts.Seed == nil {
		opts.Seed = rng.New(1)
	}
	m := &TenantMux{
		opts:  opts,
		byID:  make(map[string]*tenantLane, len(opts.Lanes)),
		inner: inner,
		pumps: len(opts.Lanes),
	}
	for _, cfg := range opts.Lanes {
		if cfg.ID == "" {
			return nil, fmt.Errorf("core: tenant lane with empty ID")
		}
		if _, dup := m.byID[cfg.ID]; dup {
			return nil, fmt.Errorf("core: duplicate tenant %q", cfg.ID)
		}
		if cfg.Arrivals == nil {
			return nil, fmt.Errorf("core: tenant %q has no arrival process", cfg.ID)
		}
		if cfg.Weight < 0 || math.IsInf(cfg.Weight, 1) || math.IsNaN(cfg.Weight) {
			return nil, fmt.Errorf("core: tenant %q weight %g (need finite >= 0)", cfg.ID, cfg.Weight)
		}
		if cfg.Depth < 0 {
			return nil, fmt.Errorf("core: tenant %q depth %d (need >= 0)", cfg.ID, cfg.Depth)
		}
		if cfg.Policy < ShedNewest || cfg.Policy > Block {
			return nil, fmt.Errorf("core: tenant %q unknown overload policy %v", cfg.ID, cfg.Policy)
		}
		if cfg.Deadline < 0 {
			return nil, fmt.Errorf("core: tenant %q negative deadline %v", cfg.ID, cfg.Deadline)
		}
		if cfg.MaxInFlight < 0 {
			return nil, fmt.Errorf("core: tenant %q negative max-in-flight %d", cfg.ID, cfg.MaxInFlight)
		}
		if cfg.RatePerSec < 0 || math.IsInf(cfg.RatePerSec, 1) || math.IsNaN(cfg.RatePerSec) {
			return nil, fmt.Errorf("core: tenant %q rate quota %g (need finite >= 0)", cfg.ID, cfg.RatePerSec)
		}
		if cfg.Burst < 0 {
			return nil, fmt.Errorf("core: tenant %q negative burst %d", cfg.ID, cfg.Burst)
		}
		lane := &tenantLane{cfg: cfg, tokens: float64(cfg.burstOrDefault())}
		m.lanes = append(m.lanes, lane)
		m.byID[cfg.ID] = lane
	}
	if opts.Policy == TenantFIFO {
		depth := opts.SharedDepth
		if depth == 0 {
			for _, l := range m.lanes {
				if l.cfg.Depth == 0 {
					depth = 0 // any unbounded lane makes the shared queue unbounded
					break
				}
				depth += l.cfg.Depth
			}
		}
		m.shared = sim.NewQueue[Item](env, "core/tenants", depth)
	} else {
		m.ready = sim.NewQueue[int](env, "core/tenants/ready", 0)
		for _, l := range m.lanes {
			l.q = sim.NewQueue[Item](env, "core/tenant/"+l.cfg.ID, l.cfg.Depth)
		}
		m.buildTiers()
	}
	for _, lane := range m.lanes {
		lane := lane
		env.Process("tenant/"+lane.cfg.ID, func(p *sim.Proc) {
			gen := lane.cfg.Arrivals.start(opts.Seed.Derive("tenants/arrivals/" + lane.cfg.ID))
			for {
				// Pull before sleeping so shared-source exhaustion is
				// detected at the last item's arrival instant.
				item, ok := m.inner.Next(p)
				if !ok {
					break
				}
				if item.Index == -1 {
					panic("core: tenant arrival with reserved Index -1 (the end-of-stream sentinel)")
				}
				at, more := gen()
				if !more {
					break
				}
				if at > p.Now() {
					p.Sleep(at - p.Now())
				}
				item.ArrivedAt = p.Now()
				item.Tenant = lane.cfg.ID
				m.admit(p, lane, item)
			}
			m.pumps--
			if m.pumps == 0 {
				if m.shared != nil {
					m.shared.Put(p, Item{Index: -1})
				} else {
					m.ready.Put(p, -1)
				}
				m.closed = true
			}
		})
	}
	return m, nil
}

// burstOrDefault returns the rate-quota bucket depth (default 1).
func (cfg TenantLane) burstOrDefault() int {
	if cfg.Burst > 0 {
		return cfg.Burst
	}
	return 1
}

// buildTiers groups lane indices into strict-priority tiers
// (ascending Priority, registration order within a tier). TenantFair
// collapses everything into one tier.
func (m *TenantMux) buildTiers() {
	if m.opts.Policy == TenantFair {
		tier := make([]int, len(m.lanes))
		for i := range m.lanes {
			tier[i] = i
		}
		m.tiers = [][]int{tier}
		return
	}
	// Insertion-ordered grouping: walk priorities in ascending order
	// without iterating a map, so tier construction is deterministic.
	assigned := make([]bool, len(m.lanes))
	for remaining := len(m.lanes); remaining > 0; {
		best, found := 0, false
		for i, l := range m.lanes {
			if assigned[i] {
				continue
			}
			if !found || l.cfg.Priority < best {
				best, found = l.cfg.Priority, true
			}
		}
		var tier []int
		for i, l := range m.lanes {
			if !assigned[i] && l.cfg.Priority == best {
				assigned[i] = true
				tier = append(tier, i)
				remaining--
			}
		}
		m.tiers = append(m.tiers, tier)
	}
}

// admit applies quota gates and the queue bound to one tagged
// arrival. The lane's pump is its queue's only producer, so the
// TryGet-then-Put sequence of ShedOldest cannot race.
func (m *TenantMux) admit(p *sim.Proc, lane *tenantLane, item Item) {
	lane.stats.Arrived++
	now := p.Now()
	// Admitted-rate quota: a token bucket refilled in virtual time.
	if lane.cfg.RatePerSec > 0 {
		burst := float64(lane.cfg.burstOrDefault())
		lane.tokens += (now - lane.lastRefill).Seconds() * lane.cfg.RatePerSec
		if lane.tokens > burst {
			lane.tokens = burst
		}
		lane.lastRefill = now
		if lane.tokens < 1 {
			m.drop(lane, item, DropQuota, now)
			return
		}
		lane.tokens--
	}
	// Max-in-flight quota: queued here plus dispatched downstream.
	if lane.cfg.MaxInFlight > 0 && lane.inflight >= lane.cfg.MaxInFlight {
		m.drop(lane, item, DropQuota, now)
		return
	}
	if m.shared != nil {
		m.admitShared(p, lane, item)
		return
	}
	switch lane.cfg.Policy {
	case Block:
		lane.q.Put(p, item) // backpressure on this tenant's pump only
	case ShedOldest:
		for !lane.q.TryPut(item) {
			old, ok := lane.q.TryGet()
			if !ok {
				m.drop(lane, item, DropShed, now)
				return
			}
			// The eviction's ready token stays behind as an orphan the
			// dispatcher skips; the evicted item releases its in-flight
			// slot here.
			lane.inflight--
			m.drop(lane, old, DropShed, now)
		}
	default: // ShedNewest
		if !lane.q.TryPut(item) {
			m.drop(lane, item, DropShed, now)
			return
		}
	}
	lane.stats.Admitted++
	lane.inflight++
	m.ready.TryPut(0) // unbounded: never fails
}

// admitShared admits one arrival into the TenantFIFO shared queue.
// The overload policy is the mux's shared policy: under ShedNewest /
// ShedOldest the victim may belong to any tenant — the isolation
// failure the fair policies exist to fix.
func (m *TenantMux) admitShared(p *sim.Proc, lane *tenantLane, item Item) {
	switch m.opts.SharedPolicy {
	case Block:
		m.shared.Put(p, item)
	case ShedOldest:
		for !m.shared.TryPut(item) {
			old, ok := m.shared.TryGet()
			if !ok {
				m.drop(lane, item, DropShed, p.Now())
				return
			}
			victim := m.byID[old.Tenant]
			victim.inflight--
			m.drop(victim, old, DropShed, p.Now())
		}
	default: // ShedNewest
		if !m.shared.TryPut(item) {
			m.drop(lane, item, DropShed, p.Now())
			return
		}
	}
	lane.stats.Admitted++
	lane.inflight++
}

// Next implements Source: the next scheduled, unexpired item across
// every tenant. Expired items encountered on the way are dropped and
// counted against their own tenant.
func (m *TenantMux) Next(p *sim.Proc) (Item, bool) {
	for {
		if m.shared != nil {
			item := m.shared.Get(p)
			if item.Index == -1 {
				m.shared.TryPut(Item{Index: -1})
				return Item{}, false
			}
			if m.deliver(item, p.Now()) {
				return item, true
			}
			continue
		}
		tok := m.ready.Get(p)
		if tok == -1 {
			// All pumps done and (invariant: tokens >= queued items)
			// every queue drained.
			m.ready.TryPut(-1)
			return Item{}, false
		}
		item, ok := m.schedule(p.Now())
		if !ok {
			continue // orphan token from a ShedOldest eviction
		}
		return item, true
	}
}

// NextWithin implements TimedSource: like Next but gives up once d of
// virtual time passes with nothing dispatchable.
func (m *TenantMux) NextWithin(p *sim.Proc, d time.Duration) (Item, bool, bool) {
	deadline := p.Now() + d
	for {
		wait := deadline - p.Now()
		if wait < 0 {
			wait = 0
		}
		if m.shared != nil {
			item, ok := m.shared.GetWithin(p, wait)
			if !ok {
				return Item{}, false, true
			}
			if item.Index == -1 {
				m.shared.TryPut(Item{Index: -1})
				return Item{}, false, false
			}
			if m.deliver(item, p.Now()) {
				return item, true, true
			}
			continue
		}
		tok, ok := m.ready.GetWithin(p, wait)
		if !ok {
			return Item{}, false, true
		}
		if tok == -1 {
			m.ready.TryPut(-1)
			return Item{}, false, false
		}
		if item, ok := m.schedule(p.Now()); ok {
			return item, true, true
		}
	}
}

// schedule picks the next item under the fair policies: the first
// non-empty tier (strict priority), and within it the backlogged lane
// minimizing served/weight (deficit round robin; ties go to
// registration order). ok=false means every queue is empty — the
// consumed token was an eviction orphan.
func (m *TenantMux) schedule(now time.Duration) (Item, bool) {
	for _, tier := range m.tiers {
		pick := -1
		var pickKey float64
		for _, i := range tier {
			lane := m.lanes[i]
			if lane.q.Len() == 0 {
				continue
			}
			key := float64(lane.served) / lane.weight()
			if pick == -1 || key < pickKey {
				pick, pickKey = i, key
			}
		}
		if pick == -1 {
			continue // tier empty; fall through to the next tier
		}
		lane := m.lanes[pick]
		item, _ := lane.q.TryGet()
		if m.expired(lane, item, now) {
			lane.inflight--
			m.drop(lane, item, DropExpired, now)
			// The expired item consumed this token; the caller loops
			// for the next one.
			return Item{}, false
		}
		lane.served++
		lane.stats.Dispatched++
		return item, true
	}
	return Item{}, false
}

// deliver applies lazy expiry to one shared-queue item; false means
// it was dropped as expired.
func (m *TenantMux) deliver(item Item, now time.Duration) bool {
	lane := m.byID[item.Tenant]
	if m.expired(lane, item, now) {
		lane.inflight--
		m.drop(lane, item, DropExpired, now)
		return false
	}
	lane.stats.Dispatched++
	return true
}

// expired reports whether item's tenant deadline lapsed by now.
func (m *TenantMux) expired(lane *tenantLane, item Item, now time.Duration) bool {
	return lane.cfg.Deadline > 0 && now > item.ArrivedAt+lane.cfg.Deadline
}

// drop counts and reports one dropped or rejected item.
func (m *TenantMux) drop(lane *tenantLane, item Item, reason DropReason, at time.Duration) {
	switch reason {
	case DropExpired:
		lane.stats.Expired++
	case DropQuota:
		lane.stats.QuotaRejected++
	default:
		lane.stats.Shed++
	}
	if m.opts.OnDrop != nil {
		m.opts.OnDrop(item, reason, at)
	}
}

// Done reports one completed item back to the quota accounting: call
// it once per delivered result (and once per downstream loss, e.g. a
// fault drop) so MaxInFlight slots are released. Unknown tenants —
// untagged items in a mixed wiring — are ignored.
func (m *TenantMux) Done(tenant string) {
	lane, ok := m.byID[tenant]
	if !ok {
		return
	}
	lane.stats.Completed++
	lane.inflight--
}

// Pending implements DepthSource: admitted items waiting for
// dispatch, across every tenant.
func (m *TenantMux) Pending() int {
	if m.shared != nil {
		n := m.shared.Len()
		if m.closed && n > 0 {
			n-- // the end-of-stream sentinel is not work
		}
		return n
	}
	n := 0
	for _, lane := range m.lanes {
		n += lane.q.Len()
	}
	return n
}

// Remaining implements Sized when the shared inner source does: items
// not yet pulled plus items queued at the edge. Unsized inner sources
// report 0 (a tenant-multiplexed stream cannot be split statically).
func (m *TenantMux) Remaining() int {
	if sized, ok := m.inner.(Sized); ok {
		return sized.Remaining() + m.Pending()
	}
	return 0
}

// TenantIDs returns the tenant IDs in registration order.
func (m *TenantMux) TenantIDs() []string {
	ids := make([]string, len(m.lanes))
	for i, lane := range m.lanes {
		ids[i] = lane.cfg.ID
	}
	return ids
}

// Stats returns one tenant's admission counters (zero value for an
// unknown ID); read after the run completes for final numbers.
func (m *TenantMux) Stats(tenant string) TenantStats {
	if lane, ok := m.byID[tenant]; ok {
		return lane.stats
	}
	return TenantStats{}
}
