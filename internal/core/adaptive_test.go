package core

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// pacedEngine is a deterministic batch engine: a batch of b items
// takes base + b*per of virtual time.
type pacedEngine struct{ base, per time.Duration }

func (e pacedEngine) NextBatchDuration(b int) time.Duration {
	return e.base + time.Duration(b)*e.per
}
func (e pacedEngine) TDPWatts() float64 { return 10 }

// newFakeBatchTarget builds a non-functional batch target over the
// paced engine (in-package: tests reach newBatchTarget directly).
func newFakeBatchTarget(t *testing.T, batch int, assembly BatchAssembly) *BatchTarget {
	t.Helper()
	bt, err := newBatchTarget("paced", pacedEngine{base: 4 * time.Millisecond, per: time.Millisecond}, nil, batch, false)
	if err != nil {
		t.Fatal(err)
	}
	bt.SetAssembly(assembly)
	return bt
}

// runAdaptive drives n items through the target under the given
// arrival process (optionally behind an admission queue) and returns
// the job, the collector, and the admission stats (zero without one).
func runAdaptive(t *testing.T, bt *BatchTarget, n int, arr Arrivals, adm *AdmissionOptions, slo time.Duration) (*Job, *Collector, AdmissionStats) {
	t.Helper()
	env := sim.NewEnv()
	var src Source
	asrc, err := NewArrivalSource(env, sliceOf(n), arr, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	src = asrc
	col := NewCollector(false)
	col.SetSLO(slo)
	var aq *AdmissionQueue
	if adm != nil {
		opts := *adm
		opts.OnDrop = func(_ Item, reason DropReason, _ time.Duration) { col.NoteDrop(reason) }
		aq, err = NewAdmissionQueue(env, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		src = aq
	}
	job := bt.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if aq != nil {
		return job, col, aq.Stats()
	}
	return job, col, AdmissionStats{}
}

// TestMaxWaitClosesPartialBatch: under light deterministic load
// (one arrival per 50ms, batch size 8) a fixed-size assembler with a
// 10ms max-wait closes every batch at one item after paying the wait;
// the adaptive assembler sizes the batch to the (empty) backlog and
// skips even that.
func TestMaxWaitClosesPartialBatch(t *testing.T) {
	const n, rate = 20, 20.0 // one arrival per 50ms

	fixed := newFakeBatchTarget(t, 8, BatchAssembly{MaxWait: 10 * time.Millisecond})
	jobF, colF, _ := runAdaptive(t, fixed, n, DeterministicArrivals(rate), nil, 0)
	if jobF.Images != n || fixed.Batches() != n {
		t.Fatalf("fixed+maxwait: %d images in %d batches, want %d singleton batches",
			jobF.Images, fixed.Batches(), n)
	}
	// Every item: 10ms assembly wait + 5ms single-item service.
	latF := colF.Latency()
	if latF.P50 != 15*time.Millisecond {
		t.Errorf("fixed+maxwait p50 %v, want 15ms (10ms wait + 5ms service)", latF.P50)
	}

	adaptive := newFakeBatchTarget(t, 8, BatchAssembly{MaxWait: 10 * time.Millisecond, Adaptive: true})
	jobA, colA, _ := runAdaptive(t, adaptive, n, DeterministicArrivals(rate), nil, 0)
	if jobA.Images != n || adaptive.Batches() != n {
		t.Fatalf("adaptive: %d images in %d batches, want %d singleton batches",
			jobA.Images, adaptive.Batches(), n)
	}
	latA := colA.Latency()
	if latA.P50 != 5*time.Millisecond {
		t.Errorf("adaptive p50 %v, want 5ms (no assembly wait)", latA.P50)
	}
}

// TestAdaptiveBatchConvergesUnderPoissonLoad: the realized mean batch
// size tracks offered load — near 1 under light Poisson traffic, near
// the configured maximum under heavy traffic.
func TestAdaptiveBatchConvergesUnderPoissonLoad(t *testing.T) {
	const n = 300
	assembly := BatchAssembly{MaxWait: 20 * time.Millisecond, Adaptive: true}

	light := newFakeBatchTarget(t, 8, assembly)
	jobL, _, _ := runAdaptive(t, light, n, PoissonArrivals(50), nil, 0)
	meanL := float64(jobL.Images) / float64(light.Batches())

	heavy := newFakeBatchTarget(t, 8, assembly)
	jobH, _, _ := runAdaptive(t, heavy, n, PoissonArrivals(600), nil, 0)
	meanH := float64(jobH.Images) / float64(heavy.Batches())

	if jobL.Images != n || jobH.Images != n {
		t.Fatalf("served %d/%d images, want %d each", jobL.Images, jobH.Images, n)
	}
	if meanL >= 2 {
		t.Errorf("light-load mean batch %.2f, want < 2 (near single-item dispatch)", meanL)
	}
	if meanH <= 4 {
		t.Errorf("heavy-load mean batch %.2f, want > 4 (converging to the maximum 8)", meanH)
	}
	if meanH <= meanL {
		t.Errorf("mean batch did not grow with load: light %.2f vs heavy %.2f", meanL, meanH)
	}
}

// TestAdaptiveBatchConvergesUnderPool: adaptive sizing must converge
// to the configured batch size under saturation even when the target
// reads from a pool's shallow per-child feed (QueueDepth 2): Pending
// sees through the feed to the arrival backlog, so batches are not
// clamped at QueueDepth+1.
func TestAdaptiveBatchConvergesUnderPool(t *testing.T) {
	const n = 300
	bt := newFakeBatchTarget(t, 8, BatchAssembly{MaxWait: 20 * time.Millisecond, Adaptive: true})
	pool, err := NewPool([]Target{bt}, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	asrc, err := NewArrivalSource(env, sliceOf(n), PoissonArrivals(600), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(false)
	job := pool.Start(env, asrc, col.Sink())
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if job.Images != n {
		t.Fatalf("served %d images, want %d", job.Images, n)
	}
	if mean := float64(job.Images) / float64(bt.Batches()); mean <= 4 {
		t.Errorf("mean batch %.2f through the pool feed, want > 4 (clamped by feed depth?)", mean)
	}
}

// TestAdaptiveBeatsFixedTailUnderLightLoad: at the same light offered
// load, adaptive assembly must beat the fixed full-batch assembler's
// p99 — the fixed batch waits for 8 items (~7 interarrival times)
// before anything runs.
func TestAdaptiveBeatsFixedTailUnderLightLoad(t *testing.T) {
	const n, rate = 200, 50.0

	fixed := newFakeBatchTarget(t, 8, BatchAssembly{})
	_, colF, _ := runAdaptive(t, fixed, n, PoissonArrivals(rate), nil, 0)

	adaptive := newFakeBatchTarget(t, 8, BatchAssembly{MaxWait: 20 * time.Millisecond, Adaptive: true})
	_, colA, _ := runAdaptive(t, adaptive, n, PoissonArrivals(rate), nil, 0)

	p99F, p99A := colF.Latency().P99, colA.Latency().P99
	if p99A*2 >= p99F {
		t.Errorf("adaptive p99 %v not clearly below fixed p99 %v at light load", p99A, p99F)
	}
}

// TestFixedAssemblyUnchanged: the default assembly still gathers
// full batches from an eager source — ceil(n/batch) batches, all full
// but the last.
func TestFixedAssemblyUnchanged(t *testing.T) {
	bt := newFakeBatchTarget(t, 8, BatchAssembly{})
	env := sim.NewEnv()
	col := NewCollector(false)
	job := bt.Start(env, sliceOf(21), col.Sink())
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if job.Images != 21 || bt.Batches() != 3 {
		t.Errorf("%d images in %d batches, want 21 in 3 (8+8+5)", job.Images, bt.Batches())
	}
}

// TestBoundedAdmissionCapsTailPastKnee: past saturation (≈135% of
// capacity), bounded admission with shedding holds goodput above the
// unbounded configuration and keeps the p99 tail bounded — the core
// claim behind the slo experiment.
func TestBoundedAdmissionCapsTailPastKnee(t *testing.T) {
	const n = 400
	const slo = 60 * time.Millisecond
	assembly := BatchAssembly{MaxWait: 20 * time.Millisecond, Adaptive: true}
	// Capacity at batch 8 is 8 items per 12ms ≈ 667/s; offer 900/s.
	arr := PoissonArrivals(900)

	open := newFakeBatchTarget(t, 8, assembly)
	_, colOpen, _ := runAdaptive(t, open, n, arr, nil, slo)

	bounded := newFakeBatchTarget(t, 8, assembly)
	_, colBounded, stats := runAdaptive(t, bounded, n, arr,
		&AdmissionOptions{Depth: 16, Policy: ShedNewest, Deadline: slo}, slo)

	if stats.Shed == 0 {
		t.Error("bounded admission shed nothing past the knee")
	}
	if colBounded.Goodput() <= colOpen.Goodput() {
		t.Errorf("bounded goodput %.3f does not beat unbounded %.3f past the knee",
			colBounded.Goodput(), colOpen.Goodput())
	}
	if p99b, p99o := colBounded.Latency().P99, colOpen.Latency().P99; p99b*2 >= p99o {
		t.Errorf("bounded p99 %v not clearly below unbounded p99 %v", p99b, p99o)
	}
	if colBounded.Arrivals() != n {
		t.Errorf("bounded accounting covers %d arrivals, want %d", colBounded.Arrivals(), n)
	}
}

// TestAdaptiveServingDeterminism: the whole serving edge — Poisson
// arrivals, bounded admission with expiry, adaptive assembly over the
// timed dequeue — is bit-for-bit reproducible.
func TestAdaptiveServingDeterminism(t *testing.T) {
	run := func() (LatencySummary, AdmissionStats, float64) {
		bt := newFakeBatchTarget(t, 8, BatchAssembly{MaxWait: 15 * time.Millisecond, Adaptive: true})
		_, col, stats := runAdaptive(t, bt, 250, PoissonArrivals(700),
			&AdmissionOptions{Depth: 12, Policy: ShedOldest, Deadline: 80 * time.Millisecond},
			80*time.Millisecond)
		return col.Latency(), stats, col.Goodput()
	}
	l1, s1, g1 := run()
	l2, s2, g2 := run()
	if l1 != l2 {
		t.Errorf("latency summaries differ:\n%+v\n%+v", l1, l2)
	}
	if s1 != s2 {
		t.Errorf("admission stats differ: %+v vs %+v", s1, s2)
	}
	if g1 != g2 {
		t.Errorf("goodput differs: %g vs %g", g1, g2)
	}
}
