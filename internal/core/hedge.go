package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// HedgeNever is a Trigger value that never fires: hedging is armed but
// no duplicate is ever launched. A run configured with HedgeNever is
// bit-identical to one with hedging disabled — the trigger overflows
// every deadline computation, so no timer is ever scheduled and the
// simulation's event sequence is untouched. It is the control
// configuration the hedge experiments baseline against.
const HedgeNever = time.Duration(math.MaxInt64)

// DefaultHedgeMinSamples is the completion-sample count a
// quantile-derived trigger waits for before trusting the estimate
// (HedgeConfig.MinSamples zero value).
const DefaultHedgeMinSamples = 20

// HedgeConfig configures speculative hedged requests on a Pool or a
// multi-stick VPUTarget: when a dispatched item's age (virtual time
// since it left the dispatcher, queueing included) exceeds the
// trigger, a duplicate is launched on a different healthy child, the
// first completion wins, and the loser is cancelled while still
// queued or discarded on completion. The zero value disables hedging
// entirely — no timers are scheduled and runs are bit-identical to
// pre-hedging behavior. All decisions run in virtual time off
// deterministic state, so hedged runs are reproducible bit for bit.
type HedgeConfig struct {
	// Trigger is the fixed in-flight age that launches a duplicate.
	// 0 disables the fixed trigger (hedging is then quantile-only, or
	// off when Quantile is 0 too); HedgeNever arms hedging without ever
	// firing. With Quantile set, Trigger acts as a floor under the
	// estimate.
	Trigger time.Duration
	// Quantile, when in (0, 1), derives the trigger from the live
	// distribution of observed completion ages (dispatch to first
	// completion, a stats.Sample with exact quantiles): an item older
	// than the q-quantile of everything completed so far is hedged.
	// Until MinSamples completions have been observed the fixed
	// Trigger applies alone (no hedging during warmup when Trigger is
	// 0). 0 disables the quantile trigger.
	Quantile float64
	// MinSamples is how many completions the quantile estimate needs
	// before it is trusted (0 = DefaultHedgeMinSamples).
	MinSamples int
	// Budget bounds hedge volume: duplicates may be in flight for at
	// most this fraction of dispatched items (e.g. 0.05 = one hedge
	// per 20 dispatches, the classic tail-at-scale budget). 0 means
	// unlimited. A trigger that fires over budget is skipped, not
	// deferred.
	Budget float64
	// DynamicBudget scales Budget by the fleet's observed headroom:
	// the effective budget is Budget × (1 − utilization), where
	// utilization is the fraction of the fleet's in-flight capacity
	// (queue slots plus execution slots, supplied by the owning Pool
	// or VPUTarget) occupied by tracked items. Lightly loaded, nearly
	// the whole Budget is available; near saturation the effective
	// budget shrinks toward zero and hedging stops entirely — a
	// duplicate launched into a full fleet can only add queueing, so
	// the classic hedge-storm feedback (duplicates add load, load adds
	// latency, latency fires more triggers) is cut at its source.
	// Requires Budget > 0.
	DynamicBudget bool
	// OnHedge observes every launched duplicate with the child (pool
	// group or VPU worker) index that received it.
	OnHedge func(item Item, child int, at time.Duration)
	// OnWin observes every completion where the duplicate finished
	// before the primary copy.
	OnWin func(item Item, child int, at time.Duration)
	// OnWaste observes every losing completion that was discarded
	// after a device fully served it (a cancelled-in-queue loser costs
	// nothing and is not waste).
	OnWaste func(item Item, child int, at time.Duration)
}

// Enabled reports whether any trigger is configured.
func (hc HedgeConfig) Enabled() bool { return hc.Trigger > 0 || hc.Quantile > 0 }

// Validate checks the configuration's shape.
func (hc HedgeConfig) Validate() error {
	if hc.Trigger < 0 {
		return fmt.Errorf("core: negative hedge trigger %v", hc.Trigger)
	}
	if hc.Quantile < 0 || hc.Quantile >= 1 {
		return fmt.Errorf("core: hedge quantile %g outside [0, 1)", hc.Quantile)
	}
	if hc.MinSamples < 0 {
		return fmt.Errorf("core: negative hedge min-samples %d", hc.MinSamples)
	}
	if hc.Budget < 0 {
		return fmt.Errorf("core: negative hedge budget %g", hc.Budget)
	}
	if hc.DynamicBudget && hc.Budget <= 0 {
		return fmt.Errorf("core: dynamic hedge budget needs a base Budget > 0")
	}
	return nil
}

// minSamples returns the quantile warmup threshold.
func (hc HedgeConfig) minSamples() int {
	if hc.MinSamples > 0 {
		return hc.MinSamples
	}
	return DefaultHedgeMinSamples
}

// hedgeEntry tracks one in-flight item's hedge state. Entries are
// recycled through the hedger's freelist (the kernel is
// single-threaded, so no sync.Pool is needed): fireFn is built once
// per physical entry and survives recycling, so the steady-state item
// lifecycle — track, timer arm, completion, release — allocates
// nothing.
type hedgeEntry struct {
	item       Item
	dispatched time.Duration
	primary    int // child the primary copy was dispatched to
	hedged     bool
	hedgeChild int  // child the duplicate landed on (when hedged)
	done       bool // first completion delivered; any later copy is a loser
	timer      sim.Timer
	fireFn     func()
}

// hedger is the shared hedged-request engine behind Pool and
// VPUTarget: it arms a cancellable timer per dispatched item,
// launches a duplicate on a different child when the trigger fires,
// and deduplicates completions so exactly one result per item reaches
// the sink. The owner supplies the two queue-specific callbacks:
// redispatch places a duplicate on a child other than exclude
// (non-blocking — it runs inside timer callbacks) and reports where
// it landed; cancelCopy withdraws a still-queued copy from a child's
// feed. Everything runs in virtual time on the single-threaded
// kernel, so no locking is needed and hedged runs stay deterministic.
type hedger struct {
	env        *sim.Env
	cfg        HedgeConfig
	ages       stats.Sample // completion ages (seconds, dispatch → first completion)
	entries    map[int]*hedgeEntry
	free       []*hedgeEntry // recycled entries (single-threaded freelist)
	tracked    int           // primary dispatches seen (the budget denominator)
	launched   int           // duplicates issued
	inflight   int           // tracked items dispatched but not yet first-completed or lost
	capacity   int           // owner-supplied in-flight capacity (queue + exec slots); 0 = unknown
	redispatch func(item Item, exclude int) (int, bool)
	cancelCopy func(index, child int) bool
	// trigCache memoizes the quantile-derived trigger per sample size:
	// track() runs once per dispatch, so recomputing the quantile (a
	// sort of the whole sample) there would be quadratic in items —
	// cached, the sample is re-sorted at most once per completion.
	trigCache  time.Duration
	trigCacheN int
}

// newHedger builds the engine, or returns nil when hedging is off.
// capacity is the owner's in-flight ceiling (queue slots plus
// execution slots across the fleet), the denominator of the
// DynamicBudget utilization estimate; 0 disables the dynamic scaling
// and the configured Budget applies as a fixed cap.
func newHedger(env *sim.Env, cfg HedgeConfig, capacity int, redispatch func(Item, int) (int, bool), cancelCopy func(index, child int) bool) *hedger {
	if !cfg.Enabled() {
		return nil
	}
	return &hedger{
		env:        env,
		cfg:        cfg,
		capacity:   capacity,
		entries:    map[int]*hedgeEntry{},
		redispatch: redispatch,
		cancelCopy: cancelCopy,
	}
}

// getEntry takes an entry from the freelist, or builds a fresh one
// with its permanent fire closure (the one allocation an entry ever
// makes, amortized away by recycling).
func (h *hedger) getEntry() *hedgeEntry {
	if n := len(h.free); n > 0 {
		e := h.free[n-1]
		h.free = h.free[:n-1]
		return e
	}
	e := &hedgeEntry{}
	e.fireFn = func() {
		e.timer = 0
		h.fire(e)
	}
	return e
}

// putEntry releases an entry back to the freelist, dropping every
// reference it holds (the Item may pin a tensor) but keeping its
// permanent fire closure. The caller must have cancelled any armed
// timer first — a recycled entry with a live timer would fire for the
// wrong item.
func (h *hedger) putEntry(e *hedgeEntry) {
	fn := e.fireFn
	*e = hedgeEntry{fireFn: fn}
	h.free = append(h.free, e)
}

// release removes an entry from tracking and recycles it.
func (h *hedger) release(index int, e *hedgeEntry) {
	delete(h.entries, index)
	h.putEntry(e)
}

// triggerFor returns the current hedge trigger: the live quantile once
// warm (floored at the fixed Trigger), the fixed Trigger otherwise.
// ok=false means no trigger applies yet.
func (h *hedger) triggerFor() (time.Duration, bool) {
	if h.cfg.Quantile > 0 && h.ages.N() >= h.cfg.minSamples() {
		if n := h.ages.N(); n != h.trigCacheN {
			h.trigCacheN = n
			h.trigCache = time.Duration(h.ages.Quantile(h.cfg.Quantile) * float64(time.Second))
		}
		d := h.trigCache
		if d < h.cfg.Trigger {
			d = h.cfg.Trigger
		}
		if d > 0 {
			return d, true
		}
	}
	if h.cfg.Trigger > 0 {
		return h.cfg.Trigger, true
	}
	return 0, false
}

// track records one primary dispatch and arms its hedge timer. A
// re-dispatch of an already-tracked item (an orphan reclaimed from a
// dead child) just moves the primary; its original timer keeps
// running so the age stays measured from first dispatch.
func (h *hedger) track(item Item, child int, now time.Duration) {
	if e, ok := h.entries[item.Index]; ok {
		if !e.done {
			e.primary = child
		}
		return
	}
	h.tracked++
	h.inflight++
	e := h.getEntry()
	e.item, e.dispatched, e.primary = item, now, child
	h.entries[item.Index] = e
	trigger, ok := h.triggerFor()
	if !ok {
		return
	}
	if trigger >= HedgeNever-now {
		// The trigger lies at (or beyond) the end of representable
		// virtual time (HedgeNever, or an overflow): never fires, and
		// scheduling it would let an uncancelled timer drag the clock
		// to the horizon.
		return
	}
	e.timer = h.env.TimerAt(now+trigger, e.fireFn)
}

// budgetLimit returns the hedge-volume cap in force right now: the
// configured Budget, scaled down by fleet utilization when the
// dynamic budget is on. Everything it reads is deterministic kernel
// state, so hedged runs stay reproducible bit for bit.
func (h *hedger) budgetLimit() float64 {
	limit := h.cfg.Budget
	if h.cfg.DynamicBudget && h.capacity > 0 {
		util := float64(h.inflight) / float64(h.capacity)
		if util > 1 {
			util = 1
		}
		limit *= 1 - util
	}
	return limit
}

// fire launches the duplicate for one aged item, if it is still in
// flight, within budget, and a different child has queue room.
func (h *hedger) fire(e *hedgeEntry) {
	if e.done || e.hedged {
		return
	}
	if h.cfg.Budget > 0 && float64(h.launched+1) > h.budgetLimit()*float64(h.tracked) {
		return
	}
	child, ok := h.redispatch(e.item, e.primary)
	if !ok {
		return // no healthy child with room: skip, hedging is speculative
	}
	e.hedged = true
	e.hedgeChild = child
	h.launched++
	if h.cfg.OnHedge != nil {
		h.cfg.OnHedge(e.item, child, h.env.Now())
	}
}

// complete deduplicates one completion from child: it reports whether
// the result should be delivered to the sink. The first completion of
// an item wins (its age feeds the quantile estimate, and the losing
// copy is withdrawn from its feed queue when still there); any later
// completion of the same item is a discarded loser, counted as waste.
func (h *hedger) complete(index, child int, now time.Duration) bool {
	e, ok := h.entries[index]
	if !ok {
		return true // untracked (dispatched before hedging armed): deliver
	}
	if e.done {
		// Out of the map before the callback (which may re-enter via
		// settled), recycled only after it (it still reads e.item).
		delete(h.entries, index)
		if h.cfg.OnWaste != nil {
			h.cfg.OnWaste(e.item, child, now)
		}
		h.putEntry(e)
		return false
	}
	e.done = true
	h.inflight--
	if e.timer != 0 {
		h.env.Cancel(e.timer)
		e.timer = 0
	}
	if age := now - e.dispatched; age > 0 {
		h.ages.Add(age.Seconds())
	} else {
		h.ages.Add(0)
	}
	if !e.hedged {
		h.release(index, e)
		return true
	}
	loser := e.hedgeChild
	if child == e.hedgeChild {
		loser = e.primary
		if h.cfg.OnWin != nil {
			h.cfg.OnWin(e.item, child, now)
		}
	}
	if h.cancelCopy != nil && h.cancelCopy(index, loser) {
		h.release(index, e) // loser reclaimed before service: no waste
	}
	return true
}

// settled reports whether the item was already served through another
// copy — dispatchers consult it before re-delivering reclaimed
// orphans, retries or drops, so a leftover duplicate is quietly
// forgotten instead of re-served, double-dropped or counted as
// stranded work. A settled entry is reclaimed on the way out.
func (h *hedger) settled(index int) bool {
	e, ok := h.entries[index]
	if !ok {
		return false
	}
	if e.done {
		h.release(index, e)
		return true
	}
	return false
}

// filterLost reduces a reclaimed-orphan list to the items whose loss
// should actually be counted, in place: copies of an already-delivered
// item are dropped silently, and a hedged item with both of its copies
// stranded in the list is kept exactly once — one item, one loss
// (copyLost arbitrates each copy). Dispatchers call it after the join,
// when nothing is in flight anymore.
func (h *hedger) filterLost(items []Item) []Item {
	kept := items[:0]
	for _, it := range items {
		if h.copyLost(it.Index, -1) {
			kept = append(kept, it)
		}
	}
	return kept
}

// copyLost records that one copy of the item was lost to a device
// failure, reporting whether the loss should be counted as a dropped
// item. Three cases: the item was already delivered through its other
// copy (no loss — the entry is reclaimed); the item is hedged and the
// other copy is still in flight (no loss yet — the survivor becomes
// the only copy, and a later loss of it does count); or this was the
// only copy (the loss stands — the entry is reclaimed and its armed
// hedge timer cancelled, so a recorded drop can never be resurrected
// into a double-counted completion). child is the index the lost copy
// was on, or -1 when the caller cannot tell which copy died.
func (h *hedger) copyLost(index, child int) bool {
	e, ok := h.entries[index]
	if !ok {
		return true
	}
	if e.done {
		h.release(index, e)
		return false
	}
	if e.hedged {
		e.hedged = false
		if child >= 0 && child == e.primary {
			e.primary = e.hedgeChild
		}
		return false
	}
	if e.timer != 0 {
		h.env.Cancel(e.timer)
		e.timer = 0
	}
	h.inflight--
	h.release(index, e)
	return true
}

// Launched returns how many duplicates the hedger issued.
func (h *hedger) Launched() int { return h.launched }

// setBudget replaces the hedge-volume budget from now on (0 =
// unlimited). The budget is consulted when a trigger fires, so only
// fires after the change see the new cap; armed timers, the launch
// counter and the quantile estimate are untouched.
func (h *hedger) setBudget(b float64) { h.cfg.Budget = b }
