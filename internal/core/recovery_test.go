package core

import (
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
)

// recoveryOutcome captures what the recovery hooks observed.
type recoveryOutcome struct {
	retries  int
	drops    int
	outages  int
	repaired int
	downtime time.Duration
}

func recoveryHooks(out *recoveryOutcome) (func(Item, time.Duration), func(Item, time.Duration), func(string, time.Duration, time.Duration, bool)) {
	return func(Item, time.Duration) { out.retries++ },
		func(Item, time.Duration) { out.drops++ },
		func(_ string, from, to time.Duration, recovered bool) {
			out.outages++
			if recovered {
				out.repaired++
				out.downtime += to - from
			}
		}
}

// runFaulted drives images through a VPU target with the given
// recovery policy, running inject at the given instant, and returns
// the job, the per-index completion counts and the hook observations.
func runFaulted(t *testing.T, devices, images int, rc RecoveryConfig, at time.Duration, inject func(tb *testbed)) (*Job, map[int]int, *recoveryOutcome) {
	t.Helper()
	tb := newTestbed(t, devices, nn.NewGoogLeNet(rng.New(1)), images)
	out := &recoveryOutcome{}
	rc.OnRetry, rc.OnDrop, rc.OnOutage = recoveryHooks(out)
	opts := DefaultVPUOptions()
	opts.Recovery = rc
	target, err := NewVPUTarget(tb.devices, tb.blob, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(tb.ds, 0, images, false)
	if err != nil {
		t.Fatal(err)
	}
	if inject != nil {
		tb.env.At(at, func() { inject(tb) })
	}
	seen := map[int]int{}
	job := target.Start(tb.env, src, func(r Result) { seen[r.Index]++ })
	tb.env.Run()
	return job, seen, out
}

// TestVPURecoveryHealsHang: a stick that hangs mid-run is detected by
// the completion timeout, re-opened at the firmware-boot cost, and its
// in-flight items are redelivered — every item completes exactly once
// and the job carries no error.
func TestVPURecoveryHealsHang(t *testing.T) {
	const n = 30
	rc := RecoveryConfig{Timeout: 500 * time.Millisecond, Recover: true, MaxAttempts: 3}
	job, seen, out := runFaulted(t, 2, n, rc, 2200*time.Millisecond,
		func(tb *testbed) { tb.devices[0].InjectHang() })
	if job.Err != nil {
		t.Fatalf("recovered job errored: %v", job.Err)
	}
	if len(seen) != n {
		t.Fatalf("%d distinct items completed, want %d", len(seen), n)
	}
	for idx, c := range seen {
		if c != 1 {
			t.Errorf("item %d completed %d times", idx, c)
		}
	}
	if out.outages != 1 || out.repaired != 1 {
		t.Errorf("outages=%d repaired=%d, want 1/1", out.outages, out.repaired)
	}
	if out.retries == 0 {
		t.Error("no redeliveries recorded for the hung device's in-flight items")
	}
	if out.drops != 0 {
		t.Errorf("%d items dropped; recovery should redeliver them all", out.drops)
	}
	// The outage costs the detection timeout plus the real re-open
	// (firmware upload + RTOS boot + graph re-allocation ≈ 1.7 s soup
	// to nuts; the recorded span starts at detection).
	if out.downtime < time.Second || out.downtime > 3*time.Second {
		t.Errorf("recorded downtime %v implausible for a reboot-priced recovery", out.downtime)
	}
}

// TestVPUFailStopAbandonsDevice: with recovery off (fail-stop), a hang
// costs the hung device's in-flight items (dropped through OnDrop, so
// goodput accounting stays honest) and the surviving stick absorbs the
// rest of the source.
func TestVPUFailStopAbandonsDevice(t *testing.T) {
	const n = 30
	rc := RecoveryConfig{Timeout: 500 * time.Millisecond, Recover: false}
	job, seen, out := runFaulted(t, 2, n, rc, 2200*time.Millisecond,
		func(tb *testbed) { tb.devices[0].InjectHang() })
	if job.Err == nil {
		t.Fatal("abandoning a device must surface on the job error")
	}
	if out.outages != 1 || out.repaired != 0 {
		t.Errorf("outages=%d repaired=%d, want 1/0", out.outages, out.repaired)
	}
	if out.drops == 0 {
		t.Error("fail-stop dropped nothing; the hung in-flight items must be accounted")
	}
	if got := len(seen) + out.drops; got != n {
		t.Errorf("completed %d + dropped %d = %d items, want %d", len(seen), out.drops, got, n)
	}
	for idx, c := range seen {
		if c != 1 {
			t.Errorf("item %d completed %d times", idx, c)
		}
	}
}

// TestVPULinkDropRecovery: a severed USB link (MVNC_GONE) is detected
// immediately (the blocked GetResult is woken with ErrClosed), the
// device is re-enumerated and re-opened, and the run completes.
func TestVPULinkDropRecovery(t *testing.T) {
	const n = 24
	rc := RecoveryConfig{Timeout: time.Second, Recover: true}
	job, seen, out := runFaulted(t, 2, n, rc, 2200*time.Millisecond,
		func(tb *testbed) { tb.devices[1].InjectLinkDrop() })
	if job.Err != nil {
		t.Fatalf("recovered job errored: %v", job.Err)
	}
	if len(seen) != n {
		t.Fatalf("%d distinct items completed, want %d", len(seen), n)
	}
	if out.outages != 1 || out.repaired != 1 {
		t.Errorf("outages=%d repaired=%d, want 1/1", out.outages, out.repaired)
	}
}

// TestVPUTransientErrorsRedelivered: fault-injected transient
// inference errors are redelivered within the attempt budget — no
// outage, no drops, every item completes.
func TestVPUTransientErrorsRedelivered(t *testing.T) {
	const n = 20
	rc := RecoveryConfig{Timeout: time.Second, Recover: true, MaxAttempts: 3}
	job, seen, out := runFaulted(t, 1, n, rc, 2200*time.Millisecond,
		func(tb *testbed) { tb.devices[0].InjectTransientErrors(2) })
	if job.Err != nil {
		t.Fatalf("job errored: %v", job.Err)
	}
	if len(seen) != n {
		t.Fatalf("%d distinct items completed, want %d", len(seen), n)
	}
	if out.retries != 2 {
		t.Errorf("retries = %d, want 2 (one per injected transient)", out.retries)
	}
	if out.outages != 0 || out.drops != 0 {
		t.Errorf("outages=%d drops=%d; transient errors must not cost the device or the items",
			out.outages, out.drops)
	}
}

// TestVPUTransientBudgetExhausted: with a single delivery allowed, a
// transient error consumes the item's whole budget and it is dropped.
func TestVPUTransientBudgetExhausted(t *testing.T) {
	const n = 20
	rc := RecoveryConfig{Timeout: time.Second, Recover: true, MaxAttempts: 1}
	job, seen, out := runFaulted(t, 1, n, rc, 2200*time.Millisecond,
		func(tb *testbed) { tb.devices[0].InjectTransientErrors(3) })
	if job.Err != nil {
		t.Fatalf("job errored: %v", job.Err)
	}
	if out.drops != 3 {
		t.Errorf("drops = %d, want 3 (budget of 1 delivery)", out.drops)
	}
	if out.retries != 0 {
		t.Errorf("retries = %d, want 0", out.retries)
	}
	if got := len(seen) + out.drops; got != n {
		t.Errorf("completed %d + dropped %d = %d, want %d", len(seen), out.drops, got, n)
	}
}

// TestPoolRoutesAroundUnhealthyChild: in a pool of single-stick
// groups under latency routing, a child whose stick hangs is marked
// unhealthy — its feed is drained back and re-dealt to the healthy
// child — and it rejoins after recovery; every item completes exactly
// once with no pool error.
func TestPoolRoutesAroundUnhealthyChild(t *testing.T) {
	const n = 40
	tb := newTestbed(t, 2, nn.NewGoogLeNet(rng.New(1)), n)
	rc := RecoveryConfig{Timeout: 500 * time.Millisecond, Recover: true}
	children := make([]Target, 2)
	for i := range children {
		opts := DefaultVPUOptions()
		opts.Recovery = rc
		target, err := NewVPUTarget(tb.devices[i:i+1], tb.blob, opts)
		if err != nil {
			t.Fatal(err)
		}
		children[i] = target
	}
	pool, err := NewPool(children, PoolOptions{Routing: RouteLatency})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(tb.ds, 0, n, false)
	if err != nil {
		t.Fatal(err)
	}
	tb.env.At(2200*time.Millisecond, func() { tb.devices[0].InjectHang() })
	seen := map[int]int{}
	job := pool.Start(tb.env, src, func(r Result) { seen[r.Index]++ })
	tb.env.Run()
	if job.Err != nil {
		t.Fatalf("pool job errored: %v", job.Err)
	}
	if len(seen) != n {
		t.Fatalf("%d distinct items completed, want %d", len(seen), n)
	}
	for idx, c := range seen {
		if c != 1 {
			t.Errorf("item %d completed %d times", idx, c)
		}
	}
	jobs := pool.ChildJobs()
	if jobs[1].Images <= jobs[0].Images {
		t.Errorf("healthy child served %d vs hung child's %d; failover should shift the load",
			jobs[1].Images, jobs[0].Images)
	}
}

// TestRecoveryMonitoringFreeWithoutFaults: with no faults injected, a
// health-monitored run must be indistinguishable from an unmonitored
// one — same completions, same virtual-time spans — so the acceptance
// bar "identical to the fault-free baseline under an empty plan"
// holds by construction.
func TestRecoveryMonitoringFreeWithoutFaults(t *testing.T) {
	const n = 24
	run := func(rc RecoveryConfig) (*Job, []Result) {
		tb := newTestbed(t, 2, nn.NewGoogLeNet(rng.New(1)), n)
		opts := DefaultVPUOptions()
		opts.Recovery = rc
		target, err := NewVPUTarget(tb.devices, tb.blob, opts)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewDatasetSource(tb.ds, 0, n, false)
		if err != nil {
			t.Fatal(err)
		}
		var results []Result
		job := target.Start(tb.env, src, func(r Result) { results = append(results, r) })
		tb.env.Run()
		if job.Err != nil {
			t.Fatal(job.Err)
		}
		return job, results
	}
	plainJob, plain := run(RecoveryConfig{})
	monJob, monitored := run(DefaultRecoveryConfig())
	if len(plain) != len(monitored) {
		t.Fatalf("result counts differ: %d vs %d", len(plain), len(monitored))
	}
	for i := range plain {
		a, b := plain[i], monitored[i]
		if a.Index != b.Index || a.Start != b.Start || a.End != b.End || a.Device != b.Device {
			t.Fatalf("result %d differs: %+v vs %+v", i, a, b)
		}
	}
	if plainJob.DoneAt != monJob.DoneAt {
		t.Errorf("makespan differs: %v vs %v", plainJob.DoneAt, monJob.DoneAt)
	}
}
