package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/sim"
)

// This file is the streaming stage-composition half of the Target
// contract: model-parallel pipelines that cut a network at a layer
// boundary (nn.Graph.Split) and run each segment as a *stage* on its
// own device group, intermediate activations flowing between stages
// through bounded in-flight windows.
//
// The redesign extends Target rather than replacing it: a stage is a
// Target whose emissions can be re-ingested downstream. StageTarget
// adds the one missing operation — the Result→Item hop conversion —
// and Pipeline is the recursive composite (like Pool) that wires
// stages together. Any existing Target wraps transparently via
// AsStage, so stages can be single devices, multi-stick VPU targets,
// or whole Pools (e.g. stage 1 = 4 hedged VPU sticks, stage 2 = one
// CPU group).
//
// Completion contract (the multi-stage refinement of Target's "one
// terminal Finish per run"): an *item* finishes only at the last
// stage — interior emissions are hops, not completions — so the
// pipeline's Job counts only final-stage results and a Collector on
// the pipeline sink never sees an item twice. Each *stage job* still
// finishes exactly once, and the pipeline joins them all before
// finishing its own job. An interior stage that drops an item
// (recovery budget exhausted) must release the item's in-flight
// credit via Pipeline.StageDropped, or the window stays narrowed by
// every loss.

// StageTarget is a Target that can run as an interior pipeline stage:
// its results carry the stage's output activation (Result.Output) and
// Forward converts one of them into the Item the downstream stage
// consumes. The conversion must preserve the lifecycle stamps — the
// item's identity (Index, Label) and its arrival instant survive
// every hop, so the final Result's latency still measures arrival to
// last-stage completion.
type StageTarget interface {
	Target
	// Forward converts one of this stage's results into the downstream
	// stage's input item.
	Forward(r Result) Item
}

// stageItem is the standard boundary conversion: the intermediate
// activation becomes the item payload (nil in pure-performance runs —
// the downstream device still prices its full segment cost) and the
// lifecycle stamps survive the hop.
func stageItem(r Result) Item {
	return Item{Index: r.Index, Image: r.Output, Label: r.Label, ArrivedAt: r.ArrivedAt, Tenant: r.Tenant}
}

// stageAdapter wraps a plain Target as a StageTarget with the
// standard boundary conversion.
type stageAdapter struct{ Target }

// Forward implements StageTarget.
func (stageAdapter) Forward(r Result) Item { return stageItem(r) }

// Unwrap exposes the adapted Target, so the pipeline can reach
// optional interfaces (HealthAware, DeviceCount) the embedding hides.
func (a stageAdapter) Unwrap() Target { return a.Target }

// AsStage adapts any Target to the stage contract. Targets that
// already implement StageTarget pass through unchanged.
func AsStage(t Target) StageTarget {
	if st, ok := t.(StageTarget); ok {
		return st
	}
	return stageAdapter{t}
}

// unwrapTarget reaches through stage adapters to the underlying
// target for optional-interface checks.
func unwrapTarget(t Target) Target {
	if u, ok := t.(interface{ Unwrap() Target }); ok {
		return u.Unwrap()
	}
	return t
}

// PipelineOptions configures a Pipeline.
type PipelineOptions struct {
	// QueueDepth bounds each stage boundary's in-flight window: at
	// most QueueDepth items may be past stage i's input pull and not
	// yet pulled by stage i+1 (in flight inside the stage or queued in
	// the handoff). Default 2, mirroring the NCS FIFO depth. This is
	// the pipeline's backpressure: a slow tail stalls the head's input
	// pulls instead of growing an unbounded activation queue.
	QueueDepth int
	// QueueDepths overrides QueueDepth per boundary (len = stages-1);
	// nil applies QueueDepth everywhere.
	QueueDepths []int
	// OnStageResult, when set, observes every stage's emissions —
	// interior hops and final completions alike — with the stage index
	// that produced them. Per-stage statistics hang off this hook; the
	// pipeline's sink sees final-stage results only.
	OnStageResult func(stage int, r Result)
}

// credit is one slot of a boundary's in-flight window.
type credit struct{}

// Pipeline is a Target over a chain of stages: a model-parallel
// composite that feeds the source through stage 0, each stage's
// emissions through the next, and only the last stage's results to
// the sink. Like Pool it composes recursively — a stage can itself be
// a Pool (or another Pipeline), and a Pipeline is just another target
// to whatever runs it. A single-stage pipeline delegates Start to its
// stage directly and is bit-identical to running the stage alone.
type Pipeline struct {
	name   string
	stages []StageTarget
	opts   PipelineOptions
	jobs   []*Job
	// credits[b] holds the free in-flight slots of boundary b (between
	// stage b and b+1), pre-filled to the boundary depth: stage b's
	// feed takes a token per input pull, stage b+1's feed returns it
	// when the item crosses the boundary.
	credits []*sim.Queue[credit]
	// handoffs[b] carries boundary b's items. Unbounded on purpose:
	// emissions come from sinks, which cannot block (no process
	// handle), and the credit window already bounds its depth.
	handoffs []*sim.Queue[Item]
	// Aggregate health bookkeeping, mirroring Pool.
	healthObs                []func(healthy, total int, at time.Duration)
	stageHealthy, stageTotal []int
}

// NewPipeline builds a model-parallel pipeline over stages, adapting
// plain Targets via AsStage.
func NewPipeline(stages []Target, opts PipelineOptions) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("core: pipeline needs at least one stage")
	}
	for i, s := range stages {
		if s == nil {
			return nil, fmt.Errorf("core: pipeline stage %d is nil", i)
		}
	}
	if opts.QueueDepth < 0 {
		return nil, fmt.Errorf("core: negative queue depth %d", opts.QueueDepth)
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 2
	}
	if opts.QueueDepths != nil {
		if len(opts.QueueDepths) != len(stages)-1 {
			return nil, fmt.Errorf("core: %d queue depths for %d boundaries", len(opts.QueueDepths), len(stages)-1)
		}
		for b, d := range opts.QueueDepths {
			if d < 1 {
				return nil, fmt.Errorf("core: boundary %d queue depth %d", b, d)
			}
		}
	}
	adapted := make([]StageTarget, len(stages))
	names := make([]string, len(stages))
	for i, s := range stages {
		adapted[i] = AsStage(s)
		names[i] = s.Name()
	}
	return &Pipeline{
		name:   fmt.Sprintf("pipe(%s)", strings.Join(names, ">")),
		stages: adapted,
		opts:   opts,
	}, nil
}

// Name implements Target.
func (pl *Pipeline) Name() string { return pl.name }

// TDPWatts implements Target: the aggregate TDP of every stage.
func (pl *Pipeline) TDPWatts() float64 {
	var w float64
	for _, s := range pl.stages {
		w += s.TDPWatts()
	}
	return w
}

// Stages returns the stage targets (adapted to StageTarget).
func (pl *Pipeline) Stages() []StageTarget { return pl.stages }

// StageJobs returns the per-stage jobs of the last Start. Valid after
// Start; fields settle once Env.Run returns.
func (pl *Pipeline) StageJobs() []*Job { return pl.jobs }

// DeviceCount reports the devices driven across all stages, for
// health-aware admission's capacity denominator.
func (pl *Pipeline) DeviceCount() int {
	n := 0
	for _, s := range pl.stages {
		n += targetDeviceCount(unwrapTarget(s))
	}
	return n
}

// SetHealthObserver implements HealthAware for the pipeline as a
// whole: fn sees the aggregate (healthy, total) device counts across
// every stage on each stage health transition. Register before Start;
// stages that are not HealthAware count as permanently healthy.
func (pl *Pipeline) SetHealthObserver(fn func(healthy, total int, at time.Duration)) {
	pl.healthObs = append(pl.healthObs, fn)
}

// notifyHealth publishes the aggregate health to the pipeline's own
// observers.
func (pl *Pipeline) notifyHealth(at time.Duration) {
	if len(pl.healthObs) == 0 {
		return
	}
	var healthy, total int
	for i := range pl.stageTotal {
		healthy += pl.stageHealthy[i]
		total += pl.stageTotal[i]
	}
	for _, fn := range pl.healthObs {
		fn(healthy, total, at)
	}
}

// StageDropped releases one in-flight credit of the boundary below
// stage — the slot a dropped item held. Interior stages cannot see
// the pipeline's credit windows, so whoever wires a stage's
// RecoveryConfig.OnDrop must route intermediate-stage drops through
// here: the dropped item will never reach the handoff, and without
// the release every loss permanently narrows the boundary window
// (QueueDepth losses deadlock the pipeline). Drops at the last stage
// hold no downstream credit and are a no-op.
func (pl *Pipeline) StageDropped(stage int) {
	if stage < 0 || stage >= len(pl.credits) {
		return
	}
	pl.credits[stage].TryPut(credit{})
}

// boundaryDepth returns boundary b's configured in-flight window.
func (pl *Pipeline) boundaryDepth(b int) int {
	if pl.opts.QueueDepths != nil {
		return pl.opts.QueueDepths[b]
	}
	return pl.opts.QueueDepth
}

// headFeed wraps the pipeline's source for stage 0: every pull first
// takes a boundary-0 credit, so the head stage cannot run ahead of
// the window a slow downstream stage drains. When the downstream
// stage has shut down the feed reports exhaustion — the head winds
// down instead of blocking on credits nobody will ever return.
type headFeed struct {
	inner   Source
	credits *sim.Queue[credit]
	// downJob is the downstream stage's job; set after every stage has
	// started, read only inside simulation processes.
	downJob *Job
}

// Next implements Source.
func (f *headFeed) Next(p *sim.Proc) (Item, bool) {
	f.credits.Get(p)
	if f.downJob.done {
		// Re-post the wake token so every other blocked puller also
		// sees the dead downstream and winds down.
		f.credits.TryPut(credit{})
		return Item{}, false
	}
	item, ok := f.inner.Next(p)
	if !ok {
		// The credit guarded an item that never materialized.
		f.credits.TryPut(credit{})
		return Item{}, false
	}
	return item, true
}

// Remaining implements Sized when the inner source does (0 otherwise)
// so a stage-0 Pool can static-split its share.
func (f *headFeed) Remaining() int {
	if sized, ok := f.inner.(Sized); ok {
		return sized.Remaining()
	}
	return 0
}

// Pending implements DepthSource, seeing through to the inner
// source's backlog when it reports one.
func (f *headFeed) Pending() int {
	if d, ok := f.inner.(DepthSource); ok {
		return d.Pending()
	}
	return 0
}

// NextWithin implements TimedSource. When the inner source is not
// timed the deadline applies to the credit wait only and the inner
// pull blocks as usual.
func (f *headFeed) NextWithin(p *sim.Proc, d time.Duration) (Item, bool, bool) {
	deadline := p.Now() + d
	if _, ok := f.credits.GetWithin(p, d); !ok {
		return Item{}, false, true
	}
	if f.downJob.done {
		f.credits.TryPut(credit{})
		return Item{}, false, false
	}
	if timed, ok := f.inner.(TimedSource); ok {
		rem := deadline - p.Now()
		if rem < 0 {
			rem = 0
		}
		item, ok, more := timed.NextWithin(p, rem)
		if !ok {
			f.credits.TryPut(credit{})
		}
		return item, ok, more
	}
	item, ok := f.inner.Next(p)
	if !ok {
		f.credits.TryPut(credit{})
		return Item{}, false, false
	}
	return item, true, true
}

// stageFeed is the input of stage i > 0: it dequeues boundary i-1's
// handoff, returning the crossed item's credit upstream, and (for
// interior stages) takes a boundary-i credit before every pull so the
// window bound composes down the whole chain.
type stageFeed struct {
	q  *sim.Queue[Item]   // handoff of the upstream boundary
	up *sim.Queue[credit] // upstream boundary's credits (release on pull)
	// depth is the upstream boundary's window, so Pending can estimate
	// backlog as held slots (in the upstream stage or the handoff).
	depth int
	// down/downJob are the downstream boundary's credits and consumer
	// (nil/nil for the last stage).
	down    *sim.Queue[credit]
	downJob *Job
}

// Next implements Source.
func (f *stageFeed) Next(p *sim.Proc) (Item, bool) {
	if f.down != nil {
		f.down.Get(p)
		if f.downJob.done {
			f.down.TryPut(credit{})
			return Item{}, false
		}
	}
	item := f.q.Get(p)
	if item.Index == poolSentinel {
		if f.down != nil {
			f.down.TryPut(credit{})
		}
		// Re-post the sentinel so every consumer of this stage sees
		// exhaustion (the childFeed convention).
		f.q.TryPut(item)
		return Item{}, false
	}
	f.up.TryPut(credit{})
	return item, true
}

// NextWithin implements TimedSource, so adaptive batch stages close
// partial batches against their boundary feed.
func (f *stageFeed) NextWithin(p *sim.Proc, d time.Duration) (Item, bool, bool) {
	deadline := p.Now() + d
	if f.down != nil {
		if _, ok := f.down.GetWithin(p, d); !ok {
			return Item{}, false, true
		}
		if f.downJob.done {
			f.down.TryPut(credit{})
			return Item{}, false, false
		}
	}
	rem := deadline - p.Now()
	if rem < 0 {
		rem = 0
	}
	item, ok := f.q.GetWithin(p, rem)
	if !ok {
		if f.down != nil {
			f.down.TryPut(credit{})
		}
		return Item{}, false, true
	}
	if item.Index == poolSentinel {
		if f.down != nil {
			f.down.TryPut(credit{})
		}
		f.q.TryPut(item)
		return Item{}, false, false
	}
	f.up.TryPut(credit{})
	return item, true, true
}

// Pending implements DepthSource: the upstream boundary's held slots
// — items queued in the handoff or still in flight inside the
// upstream stage, all of which will reach this stage — so an adaptive
// batch tail sizes its batches against real incoming work.
func (f *stageFeed) Pending() int {
	n := f.depth - f.up.Len()
	if n < 0 {
		n = 0
	}
	return n
}

// Start implements Target. A single-stage pipeline delegates to its
// stage directly (bit-identical to running the stage alone). A
// multi-stage pipeline starts every stage on its boundary feed, wires
// each interior stage's emissions through Forward into the next
// boundary's handoff, and joins all stage jobs before finishing its
// own: ReadyAt is the latest stage ReadyAt (the chain serves end to
// end only once every segment is up), Images counts final-stage
// completions only.
func (pl *Pipeline) Start(env *sim.Env, src Source, sink func(Result)) *Job {
	n := len(pl.stages)
	pl.jobs = make([]*Job, n)
	pl.stageHealthy = make([]int, n)
	pl.stageTotal = make([]int, n)
	for i, s := range pl.stages {
		pl.stageTotal[i] = targetDeviceCount(unwrapTarget(s))
		pl.stageHealthy[i] = pl.stageTotal[i]
		if ha, ok := unwrapTarget(s).(HealthAware); ok {
			i := i
			ha.SetHealthObserver(func(healthy, total int, at time.Duration) {
				pl.stageHealthy[i], pl.stageTotal[i] = healthy, total
				pl.notifyHealth(at)
			})
		}
	}

	if n == 1 {
		s := sink
		if obs := pl.opts.OnStageResult; obs != nil {
			s = func(r Result) {
				obs(0, r)
				sink(r)
			}
		}
		cj := pl.stages[0].Start(env, src, s)
		pl.jobs[0] = cj
		return cj
	}

	job := &Job{}
	pl.credits = make([]*sim.Queue[credit], n-1)
	pl.handoffs = make([]*sim.Queue[Item], n-1)
	for b := 0; b < n-1; b++ {
		pl.credits[b] = sim.NewQueue[credit](env, fmt.Sprintf("pipe/credit%d", b), 0)
		for k := 0; k < pl.boundaryDepth(b); k++ {
			pl.credits[b].TryPut(credit{})
		}
		pl.handoffs[b] = sim.NewQueue[Item](env, fmt.Sprintf("pipe/handoff%d", b), 0)
	}

	done := sim.NewQueue[int](env, "pipe/join", 0)
	feeds := make([]Source, n)
	for i := range pl.stages {
		if i == 0 {
			feeds[i] = &headFeed{inner: src, credits: pl.credits[0]}
		} else {
			f := &stageFeed{
				q:     pl.handoffs[i-1],
				up:    pl.credits[i-1],
				depth: pl.boundaryDepth(i - 1),
			}
			if i < n-1 {
				f.down = pl.credits[i]
			}
			feeds[i] = f
		}
	}

	for i, st := range pl.stages {
		i, st := i, st
		var ssink func(Result)
		if i < n-1 {
			h := pl.handoffs[i]
			ssink = func(r Result) {
				if pl.opts.OnStageResult != nil {
					pl.opts.OnStageResult(i, r)
				}
				h.TryPut(st.Forward(r))
			}
		} else {
			ssink = func(r Result) {
				if pl.opts.OnStageResult != nil {
					pl.opts.OnStageResult(i, r)
				}
				job.Images++
				sink(r)
			}
		}
		cj := st.Start(env, feeds[i], ssink)
		cj.onFinish(func(p *sim.Proc) {
			done.Put(p, i)
			if i < n-1 {
				// End of this stage's emissions: the sentinel follows
				// them in FIFO order, so downstream drains everything
				// first.
				pl.handoffs[i].TryPut(Item{Index: poolSentinel})
			}
			if i > 0 {
				// Wake an upstream puller blocked on this stage's
				// boundary credits; the feed sees the dead consumer and
				// winds down, re-posting the token for its siblings.
				pl.credits[i-1].TryPut(credit{})
			}
		})
		pl.jobs[i] = cj
	}
	// The downstream-death checks need the next stage's job, which
	// exists only after the loop above.
	for i, f := range feeds {
		switch ff := f.(type) {
		case *headFeed:
			ff.downJob = pl.jobs[1]
		case *stageFeed:
			if ff.down != nil {
				ff.downJob = pl.jobs[i+1]
			}
		}
	}

	env.Process("pipe-main", func(p *sim.Proc) {
		job.StartedAt = p.Now()
		for range pl.stages {
			done.Get(p)
		}
		var ready time.Duration
		for i, cj := range pl.jobs {
			if cj.Err != nil && job.Err == nil {
				job.Err = fmt.Errorf("core: pipeline stage %s: %w", pl.stages[i].Name(), cj.Err)
			}
			if cj.Err == nil && cj.ReadyAt > ready {
				ready = cj.ReadyAt
			}
		}
		// Items stranded in a handoff whose consumer died are lost
		// work; surface them like the pool's stranded-item accounting.
		stranded := 0
		for _, h := range pl.handoffs {
			stranded += len(drainFeed(h))
		}
		if job.Err == nil && stranded > 0 {
			job.Err = fmt.Errorf("core: %d item(s) stranded by a stage that stopped consuming", stranded)
		}
		job.ReadyAt = ready
		job.Finish(p)
	})
	return job
}
