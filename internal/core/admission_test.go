package core

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// admissionRig wires arrivals → admission for the policy tests:
// n items arriving at the given trace instants, admitted under opts.
func admissionRig(t *testing.T, env *sim.Env, instants []time.Duration, opts AdmissionOptions) *AdmissionQueue {
	t.Helper()
	src := sliceOf(len(instants))
	asrc, err := NewArrivalSource(env, src, TraceArrivals(instants), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	adm, err := NewAdmissionQueue(env, asrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return adm
}

// drainAt reads the admission queue from the given start instant,
// waiting gap between reads, and returns (index, dispatch instant)
// pairs.
type dispatchRecord struct {
	index int
	at    time.Duration
}

func drainAt(env *sim.Env, adm *AdmissionQueue, start, gap time.Duration) *[]dispatchRecord {
	var recs []dispatchRecord
	env.Process("consumer", func(p *sim.Proc) {
		p.Sleep(start)
		for {
			item, ok := adm.Next(p)
			if !ok {
				return
			}
			recs = append(recs, dispatchRecord{index: item.Index, at: p.Now()})
			p.Sleep(gap)
		}
	})
	return &recs
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// TestAdmissionShedNewestFullAtArrival: with the queue full at
// arrival, ShedNewest turns the new items away and queued work keeps
// its place.
func TestAdmissionShedNewestFullAtArrival(t *testing.T) {
	env := sim.NewEnv()
	var drops []dispatchRecord
	adm := admissionRig(t, env, []time.Duration{ms(1), ms(2), ms(3), ms(4)}, AdmissionOptions{
		Depth: 2,
		OnDrop: func(item Item, reason DropReason, at time.Duration) {
			if reason != DropShed {
				t.Errorf("item %d dropped as %v, want shed", item.Index, reason)
			}
			drops = append(drops, dispatchRecord{index: item.Index, at: at})
		},
	})
	recs := drainAt(env, adm, ms(10), ms(10))
	env.Run()

	if got := *recs; len(got) != 2 || got[0].index != 0 || got[1].index != 1 {
		t.Errorf("dispatched %v, want items 0 then 1", got)
	}
	if len(drops) != 2 || drops[0].index != 2 || drops[1].index != 3 {
		t.Errorf("shed %v, want items 2 (at 3ms) and 3 (at 4ms)", drops)
	}
	if len(drops) == 2 && (drops[0].at != ms(3) || drops[1].at != ms(4)) {
		t.Errorf("shed instants %v, want arrival instants 3ms/4ms", drops)
	}
	want := AdmissionStats{Arrived: 4, Admitted: 2, Shed: 2, Dispatched: 2}
	if s := adm.Stats(); s != want {
		t.Errorf("stats %+v, want %+v", s, want)
	}
}

// TestAdmissionShedOldestFullAtArrival: ShedOldest admits every new
// arrival by evicting the head, so the freshest work survives.
func TestAdmissionShedOldestFullAtArrival(t *testing.T) {
	env := sim.NewEnv()
	var dropped []int
	adm := admissionRig(t, env, []time.Duration{ms(1), ms(2), ms(3), ms(4)}, AdmissionOptions{
		Depth:  2,
		Policy: ShedOldest,
		OnDrop: func(item Item, reason DropReason, at time.Duration) {
			dropped = append(dropped, item.Index)
		},
	})
	recs := drainAt(env, adm, ms(10), ms(10))
	env.Run()

	if got := *recs; len(got) != 2 || got[0].index != 2 || got[1].index != 3 {
		t.Errorf("dispatched %v, want the freshest items 2 then 3", got)
	}
	if len(dropped) != 2 || dropped[0] != 0 || dropped[1] != 1 {
		t.Errorf("shed %v, want the stale heads 0 then 1", dropped)
	}
	want := AdmissionStats{Arrived: 4, Admitted: 4, Shed: 2, Dispatched: 2}
	if s := adm.Stats(); s != want {
		t.Errorf("stats %+v, want %+v", s, want)
	}
}

// TestAdmissionBlockBackpressure: Block never sheds — admission waits
// in virtual time for the consumer, and every item is dispatched at
// the consumer's pace.
func TestAdmissionBlockBackpressure(t *testing.T) {
	env := sim.NewEnv()
	adm := admissionRig(t, env, []time.Duration{ms(1), ms(2), ms(3)}, AdmissionOptions{
		Depth:  1,
		Policy: Block,
		OnDrop: func(item Item, reason DropReason, at time.Duration) {
			t.Errorf("Block shed item %d (%v)", item.Index, reason)
		},
	})
	recs := drainAt(env, adm, ms(5), ms(10))
	env.Run()

	want := []dispatchRecord{{0, ms(5)}, {1, ms(15)}, {2, ms(25)}}
	got := *recs
	if len(got) != len(want) {
		t.Fatalf("dispatched %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dispatch %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	s := adm.Stats()
	if s.Shed != 0 || s.Expired != 0 || s.Admitted != 3 || s.Dispatched != 3 {
		t.Errorf("stats %+v, want everything admitted and dispatched", s)
	}
}

// TestAdmissionDeadlineExpiryWhileQueued: an item whose deadline
// lapses in the queue is dropped at dispatch time, not handed to a
// device that could only finish it late.
func TestAdmissionDeadlineExpiryWhileQueued(t *testing.T) {
	env := sim.NewEnv()
	var expired []dispatchRecord
	adm := admissionRig(t, env, []time.Duration{ms(1), ms(15)}, AdmissionOptions{
		Depth:    4,
		Deadline: ms(10),
		OnDrop: func(item Item, reason DropReason, at time.Duration) {
			if reason != DropExpired {
				t.Errorf("item %d dropped as %v, want expired", item.Index, reason)
			}
			expired = append(expired, dispatchRecord{index: item.Index, at: at})
		},
	})
	recs := drainAt(env, adm, ms(20), ms(1))
	env.Run()

	// Item 0 arrived at 1ms, deadline 11ms < 20ms: expired at dispatch.
	// Item 1 arrived at 15ms, deadline 25ms >= 20ms: dispatched.
	if got := *recs; len(got) != 1 || got[0].index != 1 || got[0].at != ms(20) {
		t.Errorf("dispatched %v, want only item 1 at 20ms", got)
	}
	if len(expired) != 1 || expired[0].index != 0 || expired[0].at != ms(20) {
		t.Errorf("expired %v, want item 0 at the 20ms dispatch attempt", expired)
	}
	want := AdmissionStats{Arrived: 2, Admitted: 2, Expired: 1, Dispatched: 1}
	if s := adm.Stats(); s != want {
		t.Errorf("stats %+v, want %+v", s, want)
	}
}

// TestAdmissionDeadlineBoundaryHolds: an item dispatched exactly at
// its deadline instant is still admitted — expiry is strict.
func TestAdmissionDeadlineBoundaryHolds(t *testing.T) {
	env := sim.NewEnv()
	adm := admissionRig(t, env, []time.Duration{ms(1)}, AdmissionOptions{
		Depth:    1,
		Deadline: ms(9),
		OnDrop: func(item Item, reason DropReason, at time.Duration) {
			t.Errorf("item %d dropped (%v) at its exact deadline", item.Index, reason)
		},
	})
	recs := drainAt(env, adm, ms(10), ms(1)) // dispatch at arrival+deadline exactly
	env.Run()
	if got := *recs; len(got) != 1 || got[0].index != 0 {
		t.Errorf("dispatched %v, want item 0 at its deadline instant", got)
	}
}

// TestAdmissionValidation: constructor rejects broken configurations.
func TestAdmissionValidation(t *testing.T) {
	env := sim.NewEnv()
	src := sliceOf(1)
	cases := []AdmissionOptions{
		{Depth: 0},                              // no capacity
		{Depth: 2, Deadline: -time.Millisecond}, // negative deadline
		{Depth: 2, Policy: OverloadPolicy(99)},  // unknown policy
	}
	for _, opts := range cases {
		if _, err := NewAdmissionQueue(env, src, opts); err == nil {
			t.Errorf("NewAdmissionQueue(%+v) accepted", opts)
		}
	}
	if _, err := NewAdmissionQueue(env, nil, AdmissionOptions{Depth: 1}); err == nil {
		t.Error("NewAdmissionQueue(nil source) accepted")
	}
}

// TestCollectorGoodputHandComputed: goodput and shed rate against a
// hand-built result stream — 2 of 6 arrivals complete within the
// 100ms SLO (2 more complete late, 1 shed, 1 expired).
func TestCollectorGoodputHandComputed(t *testing.T) {
	c := NewCollector(false)
	c.SetSLO(ms(100))
	sink := c.Sink()
	lat := func(arrived, end time.Duration) Result {
		return Result{Index: 0, Label: -1, Pred: -1, ArrivedAt: arrived, Start: arrived, End: end}
	}
	sink(lat(0, ms(40)))        // within
	sink(lat(ms(10), ms(110)))  // exactly at the SLO: within
	sink(lat(ms(20), ms(200)))  // late
	sink(lat(ms(30), ms(1000))) // late
	c.NoteDrop(DropShed)
	c.NoteDrop(DropExpired)

	if c.Arrivals() != 6 {
		t.Errorf("arrivals %d, want 6", c.Arrivals())
	}
	if c.WithinSLO != 2 {
		t.Errorf("within SLO %d, want 2", c.WithinSLO)
	}
	if got, want := c.Goodput(), 2.0/6.0; !close2(got, want) {
		t.Errorf("goodput %g, want %g", got, want)
	}
	if got, want := c.ShedRate(), 2.0/6.0; !close2(got, want) {
		t.Errorf("shed rate %g, want %g", got, want)
	}
	if c.Shed != 1 || c.Expired != 1 {
		t.Errorf("shed/expired %d/%d, want 1/1", c.Shed, c.Expired)
	}
}

// TestCollectorGoodputWithoutSLO: with no SLO the metric degrades to
// the completion fraction, so unbounded baselines read 1.0.
func TestCollectorGoodputWithoutSLO(t *testing.T) {
	c := NewCollector(false)
	sink := c.Sink()
	sink(Result{Label: -1, Pred: -1, End: ms(5)})
	sink(Result{Label: -1, Pred: -1, End: ms(9)})
	if got := c.Goodput(); got != 1.0 {
		t.Errorf("goodput %g without SLO or drops, want 1", got)
	}
	c.NoteDrop(DropShed)
	if got, want := c.Goodput(), 2.0/3.0; !close2(got, want) {
		t.Errorf("goodput %g after a shed, want %g", got, want)
	}
	if !close2(c.Goodput(), 1-c.ShedRate()) {
		t.Errorf("goodput %g and shed rate %g do not complement", c.Goodput(), c.ShedRate())
	}
}

func close2(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}
