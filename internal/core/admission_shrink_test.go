package core

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestAdmissionObserveHealthScalesDepth: the effective depth tracks
// healthy/total proportionally, floored at MinDepth, and restores on
// rejoin; each reduction counts one Shrink.
func TestAdmissionObserveHealthScalesDepth(t *testing.T) {
	env := sim.NewEnv()
	adm, err := NewAdmissionQueue(env, NewSliceSource(nil), AdmissionOptions{Depth: 8, MinDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := adm.EffectiveDepth(); got != 8 {
		t.Fatalf("initial effective depth %d, want 8", got)
	}
	steps := []struct {
		healthy, total, want int
	}{
		{3, 4, 6}, // ceil(8*3/4)
		{1, 4, 2}, // ceil(8/4)
		{0, 4, 2}, // floored at MinDepth
		{4, 4, 8}, // full restore on rejoin
	}
	for _, s := range steps {
		adm.ObserveHealth(s.healthy, s.total, 0)
		if got := adm.EffectiveDepth(); got != s.want {
			t.Errorf("ObserveHealth(%d/%d): effective depth %d, want %d", s.healthy, s.total, got, s.want)
		}
	}
	if got := adm.Stats().Shrinks; got != 2 {
		t.Errorf("Shrinks = %d, want 2 (6→2 and nothing below the floor)", got)
	}
	adm.ObserveHealth(3, 0, 0) // degenerate totals are ignored
	if got := adm.EffectiveDepth(); got != 8 {
		t.Errorf("effective depth %d after total=0 report, want 8", got)
	}
	env.Run()
}

// TestAdmissionShrinkShedsDuringOutage: while health is degraded the
// smaller bound sheds arrivals that the full queue would have
// admitted; queued work is never evicted.
func TestAdmissionShrinkShedsDuringOutage(t *testing.T) {
	run := func(degrade bool) AdmissionStats {
		env := sim.NewEnv()
		// 8 arrivals in one burst at t=1ms; no consumer until t=50ms.
		instants := make([]time.Duration, 8)
		for i := range instants {
			instants[i] = ms(1)
		}
		adm := admissionRig(t, env, instants, AdmissionOptions{Depth: 8})
		if degrade {
			env.At(0, func() { adm.ObserveHealth(1, 4, 0) }) // depth 8 → 2 before the burst
		}
		recs := drainAt(env, adm, ms(50), 0)
		env.Run()
		if want := adm.Stats().Admitted; len(*recs) != want {
			t.Fatalf("dispatched %d, admitted %d — queued work must drain", len(*recs), want)
		}
		return adm.Stats()
	}
	full := run(false)
	if full.Shed != 0 || full.Admitted != 8 {
		t.Fatalf("healthy baseline: admitted %d shed %d, want 8/0", full.Admitted, full.Shed)
	}
	degraded := run(true)
	if degraded.Admitted != 2 || degraded.Shed != 6 {
		t.Errorf("degraded: admitted %d shed %d, want 2/6 (depth shrunk to 2)", degraded.Admitted, degraded.Shed)
	}
}

// TestAdmissionMinDepthValidation: MinDepth must fit inside Depth.
func TestAdmissionMinDepthValidation(t *testing.T) {
	env := sim.NewEnv()
	if _, err := NewAdmissionQueue(env, NewSliceSource(nil), AdmissionOptions{Depth: 4, MinDepth: 5}); err == nil {
		t.Error("MinDepth > Depth must be rejected")
	}
	if _, err := NewAdmissionQueue(env, NewSliceSource(nil), AdmissionOptions{Depth: 4, MinDepth: -1}); err == nil {
		t.Error("negative MinDepth must be rejected")
	}
}
