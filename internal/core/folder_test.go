package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

func TestWriteAndReadSampleFolder(t *testing.T) {
	ds := smallDataset(t)
	dir := t.TempDir()
	if err := WriteSampleFolder(ds, dir, 0, 10); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 20 { // 10 ppm + 10 xml
		t.Fatalf("wrote %d files, want 20", len(entries))
	}

	labelOf := func(wnid string) (int, bool) {
		for c := 0; c < ds.Classes(); c++ {
			if ds.Synset(c).WNID == wnid {
				return c, true
			}
		}
		return 0, false
	}
	src, err := NewFolderSource(dir, 32, ds.Mean(), labelOf)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 10 {
		t.Fatalf("loaded %d images", src.Len())
	}
	env := sim.NewEnv()
	env.Process("consume", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			item, ok := src.Next(p)
			if !ok {
				t.Fatal("source dried up")
			}
			if item.Image == nil {
				t.Fatal("no image")
			}
			// Resized from 16x16 (dataset) to 32x32 (requested).
			if item.Image.Elems() != 3*32*32 {
				t.Fatalf("image elems = %d", item.Image.Elems())
			}
			if item.Label != ds.Label(i) {
				t.Errorf("image %d label %d, want %d (from annotation)", i, item.Label, ds.Label(i))
			}
		}
		if _, ok := src.Next(p); ok {
			t.Error("not exhausted")
		}
	})
	env.Run()
}

func TestFolderSourceWithoutAnnotations(t *testing.T) {
	ds := smallDataset(t)
	dir := t.TempDir()
	if err := WriteSampleFolder(ds, dir, 0, 3); err != nil {
		t.Fatal(err)
	}
	// Remove the annotations; labels become -1.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.xml"))
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatal(err)
		}
	}
	src, err := NewFolderSource(dir, 16, ds.Mean(), nil)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	env.Process("c", func(p *sim.Proc) {
		item, ok := src.Next(p)
		if !ok || item.Label != -1 {
			t.Errorf("expected unlabeled item, got %+v", item)
		}
	})
	env.Run()
}

func TestFolderSourceErrors(t *testing.T) {
	if _, err := NewFolderSource("/nonexistent-dir-xyz", 32, []float32{0, 0, 0}, nil); err == nil {
		t.Error("missing dir accepted")
	}
	empty := t.TempDir()
	if _, err := NewFolderSource(empty, 32, []float32{0, 0, 0}, nil); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := NewFolderSource(empty, 0, []float32{0, 0, 0}, nil); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewFolderSource(empty, 32, []float32{0}, nil); err == nil {
		t.Error("wrong mean count accepted")
	}
	// Corrupt PPM.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "x.ppm"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFolderSource(bad, 32, []float32{0, 0, 0}, nil); err == nil {
		t.Error("corrupt image accepted")
	}
}

func TestWriteSampleFolderValidation(t *testing.T) {
	ds := smallDataset(t)
	if err := WriteSampleFolder(ds, t.TempDir(), 5, 3); err == nil {
		t.Error("inverted range accepted")
	}
	if err := WriteSampleFolder(ds, t.TempDir(), 0, 1000); err == nil {
		t.Error("out-of-range accepted")
	}
}
