package core

import (
	"testing"

	"repro/internal/devsim"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
)

// checkLifecycle asserts the per-result timestamp ordering every
// stamping target must uphold: arrival, then queue exit
// (DispatchedAt), then service start, then completion.
func checkLifecycle(t *testing.T, results []Result, ctx string) {
	t.Helper()
	if len(results) == 0 {
		t.Fatalf("%s: no results", ctx)
	}
	for _, r := range results {
		if r.ArrivedAt > r.DispatchedAt {
			t.Errorf("%s: item %d dispatched at %v before arriving at %v",
				ctx, r.Index, r.DispatchedAt, r.ArrivedAt)
		}
		if r.DispatchedAt > r.Start {
			t.Errorf("%s: item %d started at %v before dispatch at %v",
				ctx, r.Index, r.Start, r.DispatchedAt)
		}
		if r.Start > r.End {
			t.Errorf("%s: item %d ended at %v before starting at %v",
				ctx, r.Index, r.End, r.Start)
		}
	}
}

// TestBatchTargetLifecycle: the batch target stamps the full
// lifecycle; under open-loop arrivals slower than one batch fill, the
// assembly wait shows up between DispatchedAt (pull into the batch)
// and Start (batch compute launch).
func TestBatchTargetLifecycle(t *testing.T) {
	const n = 32
	g := nn.NewGoogLeNet(rng.New(1))
	eng, err := devsim.NewCPU(devsim.DefaultCPUConfig(), devsim.WorkloadOf(g), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	target, err := NewCPUTarget(eng, g, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	src, err := NewArrivalSource(env, sliceOf(n), DeterministicArrivals(100), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(true)
	job := target.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	checkLifecycle(t, col.Results, "cpu batch-8 under arrivals")
	// At 100/s arrivals a batch of 8 takes 80 ms to assemble: the
	// first item of each batch must wait visibly between its pull
	// (DispatchedAt) and the batch launch (Start).
	assembled := 0
	for _, r := range col.Results {
		if r.Start-r.DispatchedAt > 0 {
			assembled++
		}
	}
	if assembled == 0 {
		t.Error("no item shows batch-assembly wait between DispatchedAt and Start")
	}
}

// TestVPUTargetLifecycle: the multi-VPU pipeline stamps the full
// lifecycle too; its DispatchedAt is the worker dequeue, which is
// also the service start.
func TestVPUTargetLifecycle(t *testing.T) {
	const n = 24
	tb := newTestbed(t, 2, nn.NewGoogLeNet(rng.New(1)), n)
	target, err := NewVPUTarget(tb.devices, tb.blob, DefaultVPUOptions())
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(tb.ds, 0, n, false)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(true)
	job := target.Start(tb.env, src, col.Sink())
	tb.env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	checkLifecycle(t, col.Results, "vpu-multi(2) closed loop")
	for _, r := range col.Results {
		if r.DispatchedAt != r.Start {
			t.Errorf("item %d: VPU dispatch %v != service start %v",
				r.Index, r.DispatchedAt, r.Start)
		}
	}
}
