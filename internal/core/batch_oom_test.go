package core

import (
	"testing"
	"time"

	"repro/internal/devsim"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
)

// runBatchOOM drives n items through a CPU batch target, injecting
// the given number of batch failures at the given virtual instant,
// and returns the target, job, per-index counts and requeue count.
func runBatchOOM(t *testing.T, n, batch, failures int, at time.Duration) (*BatchTarget, *Job, map[int]int, int) {
	t.Helper()
	g := nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(1))
	eng, err := devsim.NewCPU(devsim.DefaultCPUConfig(), devsim.WorkloadOf(g), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	target, err := NewCPUTarget(eng, g, batch, false)
	if err != nil {
		t.Fatal(err)
	}
	requeued := 0
	target.SetRetryObserver(func(Item, time.Duration) { requeued++ })
	env := sim.NewEnv()
	if failures > 0 {
		env.At(at, func() { eng.InjectBatchFailures(failures) })
	}
	seen := map[int]int{}
	job := target.Start(env, sliceOf(n), func(r Result) { seen[r.Index]++ })
	env.Run()
	return target, job, seen, requeued
}

// TestBatchOOMPartialRetry: an injected allocator failure splits the
// batch — the first half runs, the failed half is re-enqueued — and
// every item still completes exactly once, with the re-enqueues
// observable and the split counted.
func TestBatchOOMPartialRetry(t *testing.T) {
	const n, batch = 32, 8
	target, job, seen, requeued := runBatchOOM(t, n, batch, 2, 0)
	if job.Err != nil {
		t.Fatalf("job error: %v", job.Err)
	}
	checkConservation(t, seen, n, "batch OOM")
	if job.Images != n {
		t.Errorf("job.Images = %d, want %d", job.Images, n)
	}
	if got := target.OOMSplits(); got != 2 {
		t.Errorf("OOMSplits = %d, want 2", got)
	}
	// Each failed 8-batch re-enqueues its floor half.
	if requeued != 8 {
		t.Errorf("requeued = %d, want 8 (4 per failed batch)", requeued)
	}
	// The splits force extra, smaller batches.
	if base := (n + batch - 1) / batch; target.Batches() <= base {
		t.Errorf("Batches = %d, want > %d (splits add batches)", target.Batches(), base)
	}
}

// TestBatchOOMSingleItemBatchUnharmed: a single-item batch cannot
// split; the capacity fault passes it by and no item is lost.
func TestBatchOOMSingleItemBatchUnharmed(t *testing.T) {
	const n = 5
	target, job, seen, requeued := runBatchOOM(t, n, 1, 3, 0)
	if job.Err != nil {
		t.Fatalf("job error: %v", job.Err)
	}
	checkConservation(t, seen, n, "single-item batches")
	if target.OOMSplits() != 0 || requeued != 0 {
		t.Errorf("splits=%d requeued=%d, want 0/0 for single-item batches",
			target.OOMSplits(), requeued)
	}
}

// TestBatchOOMDeterministic: two identical faulted runs produce
// identical result streams.
func TestBatchOOMDeterministic(t *testing.T) {
	run := func() []Result {
		g := nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(1))
		eng, err := devsim.NewCPU(devsim.DefaultCPUConfig(), devsim.WorkloadOf(g), rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		target, err := NewCPUTarget(eng, g, 8, false)
		if err != nil {
			t.Fatal(err)
		}
		env := sim.NewEnv()
		env.At(0, func() { eng.InjectBatchFailures(1) })
		var results []Result
		job := target.Start(env, sliceOf(24), func(r Result) { results = append(results, r) })
		env.Run()
		if job.Err != nil {
			t.Fatal(job.Err)
		}
		return results
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
