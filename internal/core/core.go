// Package core is the Go port of NCSw, the paper's §III contribution:
// a small inference framework that connects input *sources* to target
// *devices* (the class diagram of Fig. 3) and schedules parallel
// multi-VPU execution with one worker per Neural Compute Stick, static
// round-robin dispatch and load/result overlap across devices (the
// timeline of Fig. 4).
//
// Sources produce work items (images with ground-truth labels);
// targets consume a source inside a simulation environment and emit a
// Result per inference. The three targets mirror the paper's three
// implementations: Caffe-MKL on the CPU, Caffe-cuDNN on the GPU (both
// batch engines), and the multi-VPU NCS pipeline. Different sources
// can feed different targets in the same environment, which is how
// §III's device groups ("run a specific subset of inputs on a GPU, and
// at the same time another subset ... on several VPUs") compose.
package core

import (
	"fmt"
	"time"

	"repro/internal/imagenet"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Item is one unit of work: an image to classify. Image may be nil in
// pure-performance runs (the devices still pay full transfer and
// execution costs; they just skip numeric inference). Label is the
// ground-truth class, or -1 when unknown.
//
// Index -1 is reserved: the framework uses it as the end-of-stream
// sentinel on internal feeds. StreamSource.Push rejects it.
type Item struct {
	Index int
	Image *tensor.T
	Label int
	// ArrivedAt is the virtual instant the item became visible to the
	// serving system: the arrival instant under an ArrivalSource, the
	// Push instant on a stream, or the pull instant for closed-loop
	// (pull-on-demand) sources. Targets carry it onto the Result so
	// queueing delay is separable from service time.
	ArrivedAt time.Duration
	// Tenant identifies the traffic class the item belongs to in a
	// multi-tenant session ("" for untenanted runs). Stamped by the
	// tenant multiplexer at admission and carried through every target
	// onto the Result so per-tenant accounting survives pooling,
	// batching and stage hops.
	Tenant string
}

// Source produces items. Next blocks in virtual time when the source
// is momentarily empty (streaming sources) and reports ok=false when
// exhausted. Implementations need no locking: the simulation kernel
// runs one process at a time.
type Source interface {
	Next(p *sim.Proc) (Item, bool)
}

// Result is one completed inference.
type Result struct {
	Index int
	Label int // ground truth, -1 unknown
	Pred  int // predicted class, -1 when non-functional
	// Confidence is the softmax confidence of the predicted class.
	Confidence float32
	// Output is the full confidence vector when the target retains it.
	Output *tensor.T
	// Start/End are virtual timestamps of the inference span.
	Start, End time.Duration
	// ArrivedAt is when the item became visible to the serving system
	// (copied from Item.ArrivedAt); End-ArrivedAt is the per-item
	// serving latency, Start-ArrivedAt the queueing delay.
	ArrivedAt time.Duration
	// DispatchedAt is when the item left its queue into the device
	// pipeline (a VPU worker dequeued it, a batch target pulled it into
	// the assembling batch); it separates feed-queue wait from batch
	// assembly / transfer time.
	DispatchedAt time.Duration
	// Device identifies which device produced the result.
	Device string
	// Tenant is the traffic class the item belonged to (copied from
	// Item.Tenant; "" for untenanted runs).
	Tenant string
	// Err records a functional inference failure.
	Err error
}

// Wait returns the queueing delay: arrival to service start. It is
// only meaningful when the producing target copied Item.ArrivedAt
// onto the result (see Target); a target that leaves ArrivedAt zero
// makes Wait measure from the start of the simulation.
func (r Result) Wait() time.Duration {
	if w := r.Start - r.ArrivedAt; w > 0 {
		return w
	}
	return 0
}

// ServiceTime returns the in-device span, service start to completion.
func (r Result) ServiceTime() time.Duration {
	if s := r.End - r.Start; s > 0 {
		return s
	}
	return 0
}

// Latency returns the full per-item serving latency, arrival to
// completion.
func (r Result) Latency() time.Duration { return r.Wait() + r.ServiceTime() }

// Job tracks one target run. Its fields become meaningful as the
// simulation advances; read them after Env.Run returns.
type Job struct {
	// StartedAt is when Target.Start's main process began executing
	// (before any device setup).
	StartedAt time.Duration
	// ReadyAt is when setup finished (devices opened, graphs
	// allocated) and steady-state processing began; throughput is
	// measured from here, matching the paper's exclusion of one-time
	// setup.
	ReadyAt time.Duration
	// DoneAt is when the last result completed and the target shut
	// down.
	DoneAt time.Duration
	// Images is the number of completed inferences.
	Images int
	// Err is the first error encountered, if any.
	Err error

	// watchers run inside the target's main process the moment the job
	// completes, letting composite targets (Pool) join their children
	// in virtual time.
	watchers []func(p *sim.Proc)
	// done flips when finish runs; composite targets use it to stop
	// feeding children that have already shut down.
	done bool
}

// Done reports whether the target has shut down (in virtual time).
func (j *Job) Done() bool { return j.done }

// onFinish registers fn to run (in the target's own process) when the
// job completes. Must be called before the simulation starts the
// target's shutdown.
func (j *Job) onFinish(fn func(p *sim.Proc)) {
	j.watchers = append(j.watchers, fn)
}

// Finish stamps DoneAt and notifies completion watchers. Every
// Target.Start implementation must route its terminal paths through
// here (not set DoneAt directly) — composite targets like Pool join
// their children through this signal, and a child that never calls it
// deadlocks the pool join.
func (j *Job) Finish(p *sim.Proc) {
	j.DoneAt = p.Now()
	j.done = true
	for _, fn := range j.watchers {
		fn(p)
	}
}

// Span returns the steady-state window DoneAt-ReadyAt. When the
// window is degenerate (DoneAt == ReadyAt — e.g. a single-image run
// whose only completion lands on the ReadyAt instant) it falls back
// to the full run window DoneAt-StartedAt, so callers measuring
// throughput still see the real virtual time the work occupied.
func (j *Job) Span() time.Duration {
	if span := j.DoneAt - j.ReadyAt; span > 0 {
		return span
	}
	return j.DoneAt - j.StartedAt
}

// Throughput returns images per second over the steady-state window
// [ReadyAt, DoneAt] — one-time setup (firmware boot, graph
// allocation) is excluded, matching the paper's methodology. For
// degenerate windows it uses Span's full-run fallback; it returns 0
// only when no images completed or no virtual time elapsed at all.
func (j *Job) Throughput() float64 {
	if j.Images == 0 {
		return 0
	}
	span := j.Span().Seconds()
	if span <= 0 {
		return 0
	}
	return float64(j.Images) / span
}

// Target consumes a source inside env, calling sink for every result.
// Start registers simulation processes and returns immediately; the
// caller then drives env.Run. Implementations must call Job.Finish
// (in the target's own process) on every terminal path — that is the
// completion signal composite targets join on. They should also copy
// Item.ArrivedAt onto each Result (and stamp DispatchedAt when the
// item leaves its queue) so the latency lifecycle stays intact;
// otherwise Collector latency splits are meaningless for the target.
type Target interface {
	Name() string
	TDPWatts() float64
	Start(env *sim.Env, src Source, sink func(Result)) *Job
}

// Sized is implemented by finite sources that can report how many
// items they have left to serve. The Pool's static-split router needs
// it to size the contiguous per-child partitions up front.
type Sized interface {
	Remaining() int
}

// DatasetSource serves a half-open index range of a synthetic
// ImageNet dataset (one of the paper's 10 000-image subsets, usually).
type DatasetSource struct {
	ds         *imagenet.Dataset
	next, hi   int
	functional bool
}

// NewDatasetSource creates a source over images [lo, hi) of ds. When
// functional is false, items carry labels but nil images, which keeps
// pure-performance runs free of real compute.
func NewDatasetSource(ds *imagenet.Dataset, lo, hi int, functional bool) (*DatasetSource, error) {
	if lo < 0 || hi > ds.Len() || lo >= hi {
		return nil, fmt.Errorf("core: range [%d,%d) invalid for dataset of %d", lo, hi, ds.Len())
	}
	return &DatasetSource{ds: ds, next: lo, hi: hi, functional: functional}, nil
}

// Remaining implements Sized.
func (s *DatasetSource) Remaining() int { return s.hi - s.next }

// Next implements Source. Items are stamped as arriving at the pull
// instant (closed-loop semantics: the next request "arrives" the
// moment a device asks for it); wrap the source in an ArrivalSource
// for open-loop arrivals.
func (s *DatasetSource) Next(p *sim.Proc) (Item, bool) {
	if s.next >= s.hi {
		return Item{}, false
	}
	i := s.next
	s.next++
	item := Item{Index: i, Label: s.ds.Label(i), ArrivedAt: p.Now()}
	if s.functional {
		item.Image = s.ds.Preprocessed(i)
	}
	return item, true
}

// SliceSource serves a fixed slice of items (tests, small demos).
type SliceSource struct {
	items []Item
	next  int
}

// NewSliceSource wraps items in a source.
func NewSliceSource(items []Item) *SliceSource {
	return &SliceSource{items: items}
}

// Remaining implements Sized.
func (s *SliceSource) Remaining() int { return len(s.items) - s.next }

// Next implements Source. Items arrive at the pull instant
// (closed-loop), like DatasetSource.
func (s *SliceSource) Next(p *sim.Proc) (Item, bool) {
	if s.next >= len(s.items) {
		return Item{}, false
	}
	s.next++
	item := s.items[s.next-1]
	item.ArrivedAt = p.Now()
	return item, true
}

// StreamSource is the MPI-stream-style source of Fig. 3: producers
// push items from their own simulated processes (an MPI rank, a camera
// pipeline), consumers block in virtual time until data arrives.
type StreamSource struct {
	q      *sim.Queue[Item]
	closed bool
}

// NewStreamSource creates a stream with the given buffer capacity
// (0 = unbounded).
func NewStreamSource(env *sim.Env, capacity int) *StreamSource {
	return &StreamSource{q: sim.NewQueue[Item](env, "core/stream", capacity)}
}

// Push appends an item, blocking while the buffer is full. Pushing
// after Close, or pushing the reserved sentinel index -1, panics: both
// are protocol bugs in the producer.
func (s *StreamSource) Push(p *sim.Proc, item Item) {
	if s.closed {
		panic("core: Push after Close")
	}
	if item.Index == -1 {
		panic("core: Push with reserved Index -1 (the end-of-stream sentinel)")
	}
	item.ArrivedAt = p.Now()
	s.q.Put(p, item)
}

// Close marks the end of the stream; consumers drain the buffer and
// then see exhaustion.
func (s *StreamSource) Close(p *sim.Proc) {
	if s.closed {
		return
	}
	s.closed = true
	s.q.Put(p, Item{Index: -1}) // sentinel
}

// Next implements Source.
func (s *StreamSource) Next(p *sim.Proc) (Item, bool) {
	item := s.q.Get(p)
	if item.Index == -1 {
		// Re-post the sentinel so every consumer terminates.
		s.q.TryPut(Item{Index: -1})
		return Item{}, false
	}
	return item, true
}

// Collector is a convenience sink accumulating accuracy and timing
// aggregates, optionally retaining every result. With an SLO set
// (SetSLO) it additionally tracks goodput: completions within the
// SLO, against every arrival it was told about — including items the
// admission edge shed or expired (NoteDrop).
type Collector struct {
	N          int
	Correct    int
	Mispred    int
	ConfSum    float64
	Results    []Result
	retain     bool
	firstStart time.Duration
	lastEnd    time.Duration
	any        bool
	lat        latencyAgg
	// slo is the per-item latency target goodput is measured against.
	slo time.Duration
	// WithinSLO counts completions with Latency() <= the SLO target
	// (0 until SetSLO is called before the run).
	WithinSLO int
	// Shed counts arrivals dropped by the admission overload policy,
	// Expired those dropped after their deadline lapsed in the queue;
	// both come in through NoteDrop.
	Shed, Expired int
	// FaultDrops counts items lost to device failure after their
	// redelivery budget ran out (NoteDrop with DropFailed) — they count
	// against goodput like any other drop.
	FaultDrops int
	// QuotaRejected counts arrivals a tenant quota turned away at the
	// admission edge (NoteDrop with DropQuota); they count against that
	// tenant's goodput like any other drop.
	QuotaRejected int
	// Retries counts fault-triggered redeliveries (NoteRetry).
	Retries int
	// Hedged counts speculative duplicates launched, HedgeWins
	// completions where the duplicate beat the primary copy, and
	// HedgeWaste losing completions discarded after a device fully
	// served them — a cancelled-in-queue loser is neither a win nor
	// waste (NoteHedge, NoteHedgeWin, NoteHedgeWaste). Discarded
	// losers never reach the result aggregates: N counts each item at
	// most once.
	Hedged, HedgeWins, HedgeWaste int
	// Outages counts detected device outages, Repaired those that
	// ended in a successful recovery; Downtime accumulates
	// detection-to-rejoin time across repaired outages (NoteOutage).
	Outages, Repaired int
	Downtime          time.Duration
	// abandoned records the detection instants of outages that never
	// recovered (fail-stop), so DowntimeThrough can charge them to the
	// end of the run.
	abandoned []time.Duration
}

// NewCollector creates a collector; retain keeps full results.
func NewCollector(retain bool) *Collector {
	return &Collector{retain: retain}
}

// Sink returns the callback to pass to Target.Start.
func (c *Collector) Sink() func(Result) {
	return func(r Result) {
		c.N++
		if r.Pred >= 0 && r.Label >= 0 {
			if r.Pred == r.Label {
				c.Correct++
			} else {
				c.Mispred++
			}
		}
		c.ConfSum += float64(r.Confidence)
		if !c.any || r.Start < c.firstStart {
			c.firstStart = r.Start
		}
		if r.End > c.lastEnd {
			c.lastEnd = r.End
		}
		c.any = true
		c.lat.add(r)
		if c.slo > 0 && r.Latency() <= c.slo {
			c.WithinSLO++
		}
		if c.retain {
			c.Results = append(c.Results, r)
		}
	}
}

// SetSLO sets the per-item serving deadline goodput is measured
// against. Call before the run; results seen earlier are not
// re-evaluated.
func (c *Collector) SetSLO(d time.Duration) { c.slo = d }

// SLO returns the configured target (0 = none).
func (c *Collector) SLO() time.Duration { return c.slo }

// NoteDrop records one dropped item: an admission drop (DropShed,
// DropExpired — wire it to AdmissionQueue's OnDrop) or a
// fault-attributed loss (DropFailed — wire it to RecoveryConfig's
// OnDrop). Every drop counts against goodput.
func (c *Collector) NoteDrop(reason DropReason) {
	switch reason {
	case DropExpired:
		c.Expired++
	case DropFailed:
		c.FaultDrops++
	case DropQuota:
		c.QuotaRejected++
	default:
		c.Shed++
	}
}

// NoteRetry records one fault-triggered redelivery — wire it to
// RecoveryConfig's OnRetry.
func (c *Collector) NoteRetry() { c.Retries++ }

// NoteHedge records one launched hedge duplicate — wire it to
// HedgeConfig's OnHedge.
func (c *Collector) NoteHedge() { c.Hedged++ }

// NoteHedgeWin records one completion where the duplicate finished
// first — wire it to HedgeConfig's OnWin.
func (c *Collector) NoteHedgeWin() { c.HedgeWins++ }

// NoteHedgeWaste records one discarded losing completion (device time
// spent on a duplicate) — wire it to HedgeConfig's OnWaste.
func (c *Collector) NoteHedgeWaste() { c.HedgeWaste++ }

// HedgeWasteRate returns wasted duplicate completions as a fraction
// of all completions the devices produced (served results plus
// discarded losers) — the extra device time hedging spent. 0 when
// nothing completed.
func (c *Collector) HedgeWasteRate() float64 {
	total := c.N + c.HedgeWaste
	if total == 0 {
		return 0
	}
	return float64(c.HedgeWaste) / float64(total)
}

// NoteOutage records one detected device outage: from is the
// detection instant, to the rejoin (recovered) or abandonment
// (fail-stop) instant — wire it to RecoveryConfig's OnOutage. An
// abandoned device stays down for the rest of the run;
// DowntimeThrough charges that residual.
func (c *Collector) NoteOutage(from, to time.Duration, recovered bool) {
	c.Outages++
	if recovered {
		c.Repaired++
		if to > from {
			c.Downtime += to - from
		}
	} else {
		c.abandoned = append(c.abandoned, from)
	}
}

// MTTR returns the mean time to repair across recovered outages
// (0 when nothing recovered).
func (c *Collector) MTTR() time.Duration {
	if c.Repaired == 0 {
		return 0
	}
	return c.Downtime / time.Duration(c.Repaired)
}

// DowntimeThrough returns total device downtime with abandoned
// devices charged through end: repaired downtime plus end minus each
// unrecovered outage's detection instant.
func (c *Collector) DowntimeThrough(end time.Duration) time.Duration {
	total := c.Downtime
	for _, at := range c.abandoned {
		if end > at {
			total += end - at
		}
	}
	return total
}

// Arrivals returns everything the serving system was offered: served
// results plus every kind of drop.
func (c *Collector) Arrivals() int {
	return c.N + c.Shed + c.Expired + c.FaultDrops + c.QuotaRejected
}

// Goodput returns the fraction of arrivals that completed within the
// SLO — the serving metric bounded admission defends past the
// saturation knee. Without an SLO it degrades to the fraction of
// arrivals that completed at all (1.0 when nothing was dropped).
func (c *Collector) Goodput() float64 {
	arrived := c.Arrivals()
	if arrived == 0 {
		return 0
	}
	if c.slo <= 0 {
		return float64(c.N) / float64(arrived)
	}
	return float64(c.WithinSLO) / float64(arrived)
}

// ShedRate returns the fraction of arrivals dropped at the admission
// edge (shed by the overload policy or expired in the queue).
func (c *Collector) ShedRate() float64 {
	arrived := c.Arrivals()
	if arrived == 0 {
		return 0
	}
	return float64(c.Shed+c.Expired) / float64(arrived)
}

// Latency summarizes the per-item serving-latency distribution of
// everything the collector has seen: total latency with exact tail
// quantiles, split into queue wait and service time. Meaningful when
// the producing targets stamp the Result lifecycle (all built-in
// targets do); custom targets that stamp nothing report service time
// only.
func (c *Collector) Latency() LatencySummary { return c.lat.summary() }

// TopOneError returns the fraction of classified items whose top-1
// prediction missed (the paper's §IV-B estimation).
func (c *Collector) TopOneError() float64 {
	total := c.Correct + c.Mispred
	if total == 0 {
		return 0
	}
	return float64(c.Mispred) / float64(total)
}

// MeanConfidence returns the average top-1 confidence.
func (c *Collector) MeanConfidence() float64 {
	if c.N == 0 {
		return 0
	}
	return c.ConfSum / float64(c.N)
}

// Span returns the virtual time between the first inference start and
// the last completion.
func (c *Collector) Span() time.Duration {
	if !c.any {
		return 0
	}
	return c.lastEnd - c.firstStart
}
