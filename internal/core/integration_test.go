package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/devsim"
	"repro/internal/graphfile"
	"repro/internal/imagenet"
	"repro/internal/ncs"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/usb"
)

// testbed wires up the full stack: env, n NCS devices on the Fig. 5
// topology, a compiled GoogLeNet blob, and the dataset.
type testbed struct {
	env     *sim.Env
	devices []*ncs.Device
	blob    []byte
	graph   *nn.Graph
	ds      *imagenet.Dataset
}

func newTestbed(t testing.TB, n int, g *nn.Graph, images int) *testbed {
	t.Helper()
	env := sim.NewEnv()
	_, ports, err := usb.Testbed(env, usb.DefaultConfig(), n)
	if err != nil {
		t.Fatal(err)
	}
	seed := rng.New(77)
	devices := make([]*ncs.Device, n)
	for i, port := range ports {
		d, err := ncs.NewDevice(env, port.Name(), port, ncs.DefaultConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		devices[i] = d
	}
	blob, err := graphfile.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := imagenet.DefaultConfig()
	cfg.Images = images
	ds, err := imagenet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testbed{env: env, devices: devices, blob: blob, graph: g, ds: ds}
}

func TestVPUTargetSingleDeviceThroughput(t *testing.T) {
	tb := newTestbed(t, 1, nn.NewGoogLeNet(rng.New(1)), 50)
	target, err := NewVPUTarget(tb.devices, tb.blob, DefaultVPUOptions())
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(tb.ds, 0, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(false)
	job := target.Start(tb.env, src, col.Sink())
	tb.env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if job.Images != 50 || col.N != 50 {
		t.Fatalf("images = %d", job.Images)
	}
	// One stick: ~101 ms per inference end to end (paper: 100.7 ms).
	perImage := (job.DoneAt - job.ReadyAt).Seconds() / 50 * 1e3
	if math.Abs(perImage-101) > 3 {
		t.Errorf("per-image latency = %.2f ms, want ~101", perImage)
	}
}

func TestVPUTargetEightDeviceScaling(t *testing.T) {
	tb := newTestbed(t, 8, nn.NewGoogLeNet(rng.New(1)), 400)
	target, err := NewVPUTarget(tb.devices, tb.blob, DefaultVPUOptions())
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(tb.ds, 0, 400, false)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(false)
	job := target.Start(tb.env, src, col.Sink())
	tb.env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	ips := job.Throughput()
	// Paper Fig. 6a: 77.2 img/s with 8 sticks. Allow the model ±4%.
	if math.Abs(ips-77.2)/77.2 > 0.04 {
		t.Errorf("8-VPU throughput = %.1f img/s, paper reports 77.2", ips)
	}
	if target.TDPWatts() != 20 {
		t.Errorf("aggregate TDP = %g, want 20 W", target.TDPWatts())
	}
}

func TestVPUTargetRoundRobinAssignment(t *testing.T) {
	tb := newTestbed(t, 4, nn.NewGoogLeNet(rng.New(1)), 40)
	target, err := NewVPUTarget(tb.devices, tb.blob, DefaultVPUOptions())
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(tb.ds, 0, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(true)
	job := target.Start(tb.env, src, col.Sink())
	tb.env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	// Static round robin: item i runs on device i mod 4.
	for _, r := range col.Results {
		want := tb.devices[r.Index%4].Name()
		if r.Device != want {
			t.Fatalf("item %d ran on %s, want %s", r.Index, r.Device, want)
		}
	}
}

func TestVPUTargetDynamicSchedulingBalances(t *testing.T) {
	tb := newTestbed(t, 4, nn.NewGoogLeNet(rng.New(1)), 80)
	opts := DefaultVPUOptions()
	opts.Scheduling = Dynamic
	target, err := NewVPUTarget(tb.devices, tb.blob, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(tb.ds, 0, 80, false)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(true)
	job := target.Start(tb.env, src, col.Sink())
	tb.env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	counts := map[string]int{}
	for _, r := range col.Results {
		counts[r.Device]++
	}
	for d, c := range counts {
		if c < 10 || c > 30 {
			t.Errorf("device %s processed %d of 80 (imbalanced)", d, c)
		}
	}
}

func TestVPUTargetOverlapBeatsSequential(t *testing.T) {
	run := func(overlap bool) float64 {
		tb := newTestbed(t, 2, nn.NewGoogLeNet(rng.New(1)), 60)
		opts := DefaultVPUOptions()
		opts.Overlap = overlap
		target, err := NewVPUTarget(tb.devices, tb.blob, opts)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewDatasetSource(tb.ds, 0, 60, false)
		if err != nil {
			t.Fatal(err)
		}
		col := NewCollector(false)
		job := target.Start(tb.env, src, col.Sink())
		tb.env.Run()
		if job.Err != nil {
			t.Fatal(job.Err)
		}
		return job.Throughput()
	}
	seq := run(false)
	ovl := run(true)
	if ovl <= seq {
		t.Errorf("overlap (%.1f img/s) should beat sequential (%.1f)", ovl, seq)
	}
	// Overlap hides the ~4 ms transfer behind the ~97 ms execution:
	// expect a mid-single-digit percentage gain.
	gain := ovl/seq - 1
	if gain < 0.01 || gain > 0.15 {
		t.Errorf("overlap gain = %.1f%%, outside plausible range", gain*100)
	}
}

func TestVPUTargetFunctionalClassification(t *testing.T) {
	micro := nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(42))
	tb := newTestbed(t, 2, micro, 40)
	if err := nn.CalibrateClassifier(micro, nn.MicroClassifierName, nn.MicroPoolName,
		tb.ds.PreprocessedPrototypes(), 8); err != nil {
		t.Fatal(err)
	}
	blob, err := graphfile.Compile(micro)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultVPUOptions()
	opts.Functional = true
	target, err := NewVPUTarget(tb.devices, blob, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(tb.ds, 0, 40, true)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(true)
	job := target.Start(tb.env, src, col.Sink())
	tb.env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if col.Correct+col.Mispred != 40 {
		t.Fatalf("classified %d of 40", col.Correct+col.Mispred)
	}
	// At the calibrated noise the error is ~32%; with 40 samples allow
	// a very wide band — the point is that classification works at all
	// and is far above the 1% random-chance accuracy.
	if col.TopOneError() > 0.6 {
		t.Errorf("top-1 error = %.2f implausibly high", col.TopOneError())
	}
	for _, r := range col.Results {
		if r.Err != nil {
			t.Fatalf("inference error: %v", r.Err)
		}
		if r.Pred < 0 || r.Confidence <= 0 {
			t.Fatal("functional result missing prediction")
		}
	}
}

func TestBatchTargetsWithRealEngines(t *testing.T) {
	g := nn.NewGoogLeNet(rng.New(1))
	w := devsim.WorkloadOf(g)
	cpuEng, err := devsim.NewCPU(devsim.DefaultCPUConfig(), w, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	gpuEng, err := devsim.NewGPU(devsim.DefaultGPUConfig(), w, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewCPUTarget(cpuEng, g, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := NewGPUTarget(gpuEng, g, 8, false)
	if err != nil {
		t.Fatal(err)
	}

	cfg := imagenet.DefaultConfig()
	cfg.Images = 400
	ds, err := imagenet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	env := sim.NewEnv()
	srcCPU, _ := NewDatasetSource(ds, 0, 200, false)
	srcGPU, _ := NewDatasetSource(ds, 200, 400, false)
	colCPU, colGPU := NewCollector(false), NewCollector(false)
	jobCPU := cpu.Start(env, srcCPU, colCPU.Sink())
	jobGPU := gpu.Start(env, srcGPU, colGPU.Sink())
	env.Run()

	if jobCPU.Err != nil || jobGPU.Err != nil {
		t.Fatal(jobCPU.Err, jobGPU.Err)
	}
	cpuIPS := jobCPU.Throughput()
	gpuIPS := jobGPU.Throughput()
	// Paper Fig. 6a at batch 8: CPU 44.0 img/s, GPU 74.2 img/s.
	if math.Abs(cpuIPS-44.0)/44.0 > 0.05 {
		t.Errorf("CPU throughput = %.1f img/s, paper reports 44.0", cpuIPS)
	}
	if math.Abs(gpuIPS-74.2)/74.2 > 0.05 {
		t.Errorf("GPU throughput = %.1f img/s, paper reports 74.2", gpuIPS)
	}
}

func TestHeterogeneousGroupsShareOneEnv(t *testing.T) {
	// §III: different sources can feed different target groups at the
	// same time. Run CPU and a 2-stick VPU group concurrently.
	tb := newTestbed(t, 2, nn.NewGoogLeNet(rng.New(1)), 120)
	w := devsim.WorkloadOf(tb.graph)
	cpuEng, err := devsim.NewCPU(devsim.DefaultCPUConfig(), w, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewCPUTarget(cpuEng, tb.graph, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	vpu, err := NewVPUTarget(tb.devices, tb.blob, DefaultVPUOptions())
	if err != nil {
		t.Fatal(err)
	}
	srcCPU, _ := NewDatasetSource(tb.ds, 0, 60, false)
	srcVPU, _ := NewDatasetSource(tb.ds, 60, 120, false)
	colCPU, colVPU := NewCollector(false), NewCollector(false)
	jobCPU := cpu.Start(tb.env, srcCPU, colCPU.Sink())
	jobVPU := vpu.Start(tb.env, srcVPU, colVPU.Sink())
	tb.env.Run()
	if jobCPU.Err != nil || jobVPU.Err != nil {
		t.Fatal(jobCPU.Err, jobVPU.Err)
	}
	if jobCPU.Images != 60 || jobVPU.Images != 60 {
		t.Errorf("images = %d / %d", jobCPU.Images, jobVPU.Images)
	}
}

func TestVPUTargetTimelineShowsOverlap(t *testing.T) {
	tb := newTestbed(t, 4, nn.NewGoogLeNet(rng.New(1)), 40)
	tl := trace.New()
	opts := DefaultVPUOptions()
	opts.Timeline = tl
	target, err := NewVPUTarget(tb.devices, tb.blob, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(tb.ds, 0, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(false)
	job := target.Start(tb.env, src, col.Sink())
	tb.env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	if tl.Len() == 0 {
		t.Fatal("timeline empty")
	}
	// Fig. 4's core claim: executions on different sticks overlap.
	if tl.Overlap(trace.Exec) == 0 {
		t.Error("no execution overlap across 4 devices")
	}
	// Every device got load and exec spans.
	for _, d := range tb.devices {
		if tl.BusyTime(d.Name(), trace.Exec) == 0 {
			t.Errorf("device %s has no exec spans", d.Name())
		}
		if tl.BusyTime(d.Name(), trace.Load) == 0 {
			t.Errorf("device %s has no load spans", d.Name())
		}
	}
	// Render sanity.
	if out := tl.Render(60); len(out) == 0 {
		t.Error("empty render")
	}
}

func TestVPUTargetJitterGivesVariation(t *testing.T) {
	// Error bars in the figures need run-to-run variation across
	// subsets; per-inference jitter must make per-image spans differ.
	tb := newTestbed(t, 1, nn.NewGoogLeNet(rng.New(1)), 20)
	target, err := NewVPUTarget(tb.devices, tb.blob, DefaultVPUOptions())
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDatasetSource(tb.ds, 0, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(true)
	job := target.Start(tb.env, src, col.Sink())
	tb.env.Run()
	if job.Err != nil {
		t.Fatal(job.Err)
	}
	durs := map[time.Duration]bool{}
	for _, r := range col.Results {
		durs[r.End-r.Start] = true
	}
	if len(durs) < 10 {
		t.Errorf("only %d distinct inference durations in 20; jitter missing", len(durs))
	}
}
