package core

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// LatencySummary describes the per-item serving-latency distribution
// of one result stream: total latency (arrival to completion) with
// tail quantiles, split into queue wait (arrival to service start) and
// service time (in-device span). Quantiles are exact (stats.Sample):
// the runs here retain every sample, so no bucketing error enters the
// tail numbers.
type LatencySummary struct {
	// N is the number of items summarized.
	N int
	// Mean/P50/P95/P99/Max describe total latency, End-ArrivedAt.
	Mean, P50, P95, P99, Max time.Duration
	// QueueMean and QueueP99 describe the queueing delay,
	// Start-ArrivedAt.
	QueueMean, QueueP99 time.Duration
	// ServiceMean and ServiceP99 describe the service time, End-Start.
	ServiceMean, ServiceP99 time.Duration
}

// String renders the summary on one line, milliseconds throughout.
func (l LatencySummary) String() string {
	ms := func(d time.Duration) float64 { return d.Seconds() * 1e3 }
	return fmt.Sprintf("latency p50 %.1fms p95 %.1fms p99 %.1fms max %.1fms (queue %.1fms + service %.1fms mean, n=%d)",
		ms(l.P50), ms(l.P95), ms(l.P99), ms(l.Max), ms(l.QueueMean), ms(l.ServiceMean), l.N)
}

// latencyAgg accumulates the three per-item distributions a Collector
// summarizes.
type latencyAgg struct {
	total, queue, service stats.Sample
}

func (a *latencyAgg) add(r Result) {
	a.queue.Add(r.Wait().Seconds())
	a.service.Add(r.ServiceTime().Seconds())
	a.total.Add(r.Latency().Seconds())
}

func (a *latencyAgg) summary() LatencySummary {
	if a.total.N() == 0 {
		return LatencySummary{}
	}
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	return LatencySummary{
		N:           a.total.N(),
		Mean:        sec(a.total.Mean()),
		P50:         sec(a.total.Quantile(0.50)),
		P95:         sec(a.total.Quantile(0.95)),
		P99:         sec(a.total.Quantile(0.99)),
		Max:         sec(a.total.Max()),
		QueueMean:   sec(a.queue.Mean()),
		QueueP99:    sec(a.queue.Quantile(0.99)),
		ServiceMean: sec(a.service.Mean()),
		ServiceP99:  sec(a.service.Quantile(0.99)),
	}
}
