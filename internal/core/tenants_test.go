package core

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// steadyArrivals is a deterministic always-on arrival process at the
// given rate (a BurstyArrivals with a burst window far beyond any
// test horizon).
func steadyArrivals(ratePerSec float64) Arrivals {
	return BurstyArrivals(ratePerSec, time.Hour, 0)
}

// TestTenantMuxFairWorkConservation: under TenantFair an idle tenant
// reserves nothing — while one lane is backlogged the consumer is
// never left waiting, regardless of how much weight the idle lane
// carries.
func TestTenantMuxFairWorkConservation(t *testing.T) {
	env := sim.NewEnv()
	const items = 40
	// The idle lane holds 9x the weight but offers nothing for an
	// hour; the busy lane must receive the consumer's full attention.
	mux, err := NewTenantMux(env, sliceOf(items), TenantMuxOptions{
		Policy: TenantFair,
		Lanes: []TenantLane{
			{ID: "busy", Weight: 1, Arrivals: steadyArrivals(1000)},
			{ID: "idle", Weight: 9, Arrivals: DelayedArrivals(steadyArrivals(1000), time.Hour)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const service = 10 * time.Millisecond
	var gaps []time.Duration
	var last time.Duration
	delivered := 0
	env.Process("consumer", func(p *sim.Proc) {
		for {
			item, ok := mux.Next(p)
			if !ok {
				return
			}
			if delivered > 0 {
				gaps = append(gaps, p.Now()-last)
			}
			last = p.Now()
			delivered++
			p.Sleep(service)
			mux.Done(item.Tenant)
		}
	})
	env.Run()
	if delivered != items {
		t.Fatalf("delivered %d items, want %d", delivered, items)
	}
	busy := mux.Stats("busy")
	if busy.Dispatched != items-1 {
		t.Errorf("busy tenant dispatched %d, want %d (idle pump holds exactly one source item)",
			busy.Dispatched, items-1)
	}
	// Work conservation: while the busy lane is backlogged every
	// delivery follows the previous by exactly the service time — the
	// idle lane's 90%% share is redistributed, not reserved. (The last
	// gap is the idle tenant's lone item an hour out; skip it.)
	for i, g := range gaps[:busy.Dispatched-1] {
		if i > 0 && g != service {
			t.Fatalf("gap %d = %v, want %v (consumer starved while work was queued)", i, g, service)
		}
	}
}

// TestTenantMuxWeightProportionalService: under saturation (every
// lane backlogged) deficit-round-robin service converges to the
// weight proportions.
func TestTenantMuxWeightProportionalService(t *testing.T) {
	env := sim.NewEnv()
	const items = 400
	const take = 140 // 7 weight units: expect 20/40/80
	mux, err := NewTenantMux(env, sliceOf(items), TenantMuxOptions{
		Policy: TenantFair,
		Lanes: []TenantLane{
			{ID: "a", Weight: 1, Arrivals: steadyArrivals(1000)},
			{ID: "b", Weight: 2, Arrivals: steadyArrivals(1000)},
			{ID: "c", Weight: 4, Arrivals: steadyArrivals(1000)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Process("consumer", func(p *sim.Proc) {
		for n := 0; n < take; n++ {
			if _, ok := mux.Next(p); !ok {
				return
			}
			p.Sleep(10 * time.Millisecond)
		}
	})
	env.Run()
	got := map[string]int{}
	total := 0
	for _, id := range mux.TenantIDs() {
		got[id] = mux.Stats(id).Dispatched
		total += got[id]
	}
	if total != take {
		t.Fatalf("dispatched %d items, want %d", total, take)
	}
	want := map[string]int{"a": 20, "b": 40, "c": 80}
	for id, w := range want {
		if d := got[id] - w; d < -5 || d > 5 {
			t.Errorf("tenant %s dispatched %d, want %d±5 (weights not honored: %v)", id, got[id], w, got)
		}
	}
}

// TestTenantMuxMaxInFlightQuota: MaxInFlight caps
// admitted-but-uncompleted work. A consumer that never reports
// completions pins the whole tenant to its cap; one that completes
// promptly admits everything.
func TestTenantMuxMaxInFlightQuota(t *testing.T) {
	const items = 60
	run := func(done bool) TenantStats {
		t.Helper()
		env := sim.NewEnv()
		mux, err := NewTenantMux(env, sliceOf(items), TenantMuxOptions{
			Policy: TenantFair,
			Lanes: []TenantLane{
				{ID: "capped", Arrivals: steadyArrivals(1000), MaxInFlight: 2},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		env.Process("consumer", func(p *sim.Proc) {
			for {
				item, ok := mux.Next(p)
				if !ok {
					return
				}
				if done {
					mux.Done(item.Tenant)
				}
			}
		})
		env.Run()
		return mux.Stats("capped")
	}
	leak := run(false)
	if leak.Admitted != 2 || leak.Dispatched != 2 {
		t.Errorf("without completions: admitted %d dispatched %d, want 2 and 2", leak.Admitted, leak.Dispatched)
	}
	if leak.QuotaRejected != items-2 {
		t.Errorf("without completions: %d quota rejections, want %d", leak.QuotaRejected, items-2)
	}
	ok := run(true)
	if ok.Admitted != items || ok.QuotaRejected != 0 {
		t.Errorf("with completions: admitted %d (quota rejected %d), want all %d admitted", ok.Admitted, ok.QuotaRejected, items)
	}
}

// TestTenantMuxRateQuota: the admitted-rate token bucket paces a
// tenant offering 4x its contracted rate down to roughly the
// contract, and every turned-away arrival is a quota rejection.
func TestTenantMuxRateQuota(t *testing.T) {
	env := sim.NewEnv()
	const items = 100
	mux, err := NewTenantMux(env, sliceOf(items), TenantMuxOptions{
		Policy: TenantFair,
		Lanes: []TenantLane{
			// 200/s offered against a 50/s contract: ~1 in 4 admitted.
			{ID: "paced", Arrivals: steadyArrivals(200), RatePerSec: 50},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Process("consumer", func(p *sim.Proc) {
		for {
			item, ok := mux.Next(p)
			if !ok {
				return
			}
			mux.Done(item.Tenant)
		}
	})
	env.Run()
	st := mux.Stats("paced")
	if st.Arrived != items {
		t.Fatalf("arrived %d, want %d", st.Arrived, items)
	}
	if st.Arrived != st.Admitted+st.Shed+st.QuotaRejected {
		t.Errorf("accounting leak: arrived %d != admitted %d + shed %d + quota %d",
			st.Arrived, st.Admitted, st.Shed, st.QuotaRejected)
	}
	if st.Admitted < items/5 || st.Admitted > items/3 {
		t.Errorf("admitted %d of %d at 4x overload, want roughly a quarter", st.Admitted, items)
	}
	if st.QuotaRejected < items/2 {
		t.Errorf("only %d quota rejections at 4x overload", st.QuotaRejected)
	}
}

// TestTenantMuxFIFOArrivalOrder: the FIFO control policy delivers
// across tenants in true arrival order — the deliberate absence of
// isolation the fair policies are measured against.
func TestTenantMuxFIFOArrivalOrder(t *testing.T) {
	env := sim.NewEnv()
	const items = 60
	mux, err := NewTenantMux(env, sliceOf(items), TenantMuxOptions{
		Policy: TenantFIFO,
		Lanes: []TenantLane{
			{ID: "fast", Arrivals: steadyArrivals(300)},
			{ID: "slow", Arrivals: steadyArrivals(100)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	seen := map[string]int{}
	env.Process("consumer", func(p *sim.Proc) {
		for {
			item, ok := mux.Next(p)
			if !ok {
				return
			}
			arrivals = append(arrivals, item.ArrivedAt)
			seen[item.Tenant]++
			p.Sleep(2 * time.Millisecond)
		}
	})
	env.Run()
	if len(arrivals) != items {
		t.Fatalf("delivered %d items, want %d", len(arrivals), items)
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatalf("delivery %d arrived %v after delivery %d arrived %v — FIFO order violated",
				i, arrivals[i], i-1, arrivals[i-1])
		}
	}
	if seen["fast"] == 0 || seen["slow"] == 0 {
		t.Errorf("expected both tenants in the shared stream, got %v", seen)
	}
}

// TestTenantMuxValidation: constructor rejects malformed lanes.
func TestTenantMuxValidation(t *testing.T) {
	env := sim.NewEnv()
	cases := []struct {
		name string
		opts TenantMuxOptions
	}{
		{"no lanes", TenantMuxOptions{}},
		{"empty id", TenantMuxOptions{Lanes: []TenantLane{{Arrivals: steadyArrivals(1)}}}},
		{"duplicate id", TenantMuxOptions{Lanes: []TenantLane{
			{ID: "a", Arrivals: steadyArrivals(1)}, {ID: "a", Arrivals: steadyArrivals(1)}}}},
		{"no arrivals", TenantMuxOptions{Lanes: []TenantLane{{ID: "a"}}}},
		{"negative weight", TenantMuxOptions{Lanes: []TenantLane{
			{ID: "a", Weight: -1, Arrivals: steadyArrivals(1)}}}},
		{"negative deadline", TenantMuxOptions{Lanes: []TenantLane{
			{ID: "a", Deadline: -time.Second, Arrivals: steadyArrivals(1)}}}},
		{"negative quota", TenantMuxOptions{Lanes: []TenantLane{
			{ID: "a", MaxInFlight: -1, Arrivals: steadyArrivals(1)}}}},
	}
	for _, tc := range cases {
		if _, err := NewTenantMux(env, sliceOf(1), tc.opts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewTenantMux(env, nil, TenantMuxOptions{
		Lanes: []TenantLane{{ID: "a", Arrivals: steadyArrivals(1)}}}); err == nil {
		t.Error("nil inner source accepted")
	}
}
