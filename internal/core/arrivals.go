package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Arrivals describes an open-loop arrival process: the instants at
// which work becomes visible to the serving system, independent of how
// fast the devices drain it. Construct one with
// DeterministicArrivals, PoissonArrivals, BurstyArrivals or
// TraceArrivals, and feed it to NewArrivalSource (or the session's
// WithArrivals option).
type Arrivals interface {
	fmt.Stringer
	// start returns a fresh arrival-instant generator for one run.
	// Successive calls yield non-decreasing absolute instants;
	// ok=false ends the process (only trace replay is finite). The
	// generator owns all process state, so one Arrivals value is
	// reusable across runs and produces identical instants given an
	// identically seeded source.
	start(r *rng.Source) func() (time.Duration, bool)
}

// DeterministicArrivals is a constant-rate process: one arrival every
// 1/rate seconds. It panics when rate is not positive.
func DeterministicArrivals(ratePerSec float64) Arrivals {
	mustPositiveRate(ratePerSec)
	return deterministicArrivals{rate: ratePerSec}
}

type deterministicArrivals struct{ rate float64 }

func (a deterministicArrivals) String() string {
	return fmt.Sprintf("deterministic(%.4g/s)", a.rate)
}

func (a deterministicArrivals) start(_ *rng.Source) func() (time.Duration, bool) {
	period := time.Duration(float64(time.Second) / a.rate)
	next := period
	return func() (time.Duration, bool) {
		t := next
		next += period
		return t, true
	}
}

// PoissonArrivals is a memoryless process at the given mean rate:
// exponentially distributed interarrival gaps, the standard model for
// aggregate request traffic from many independent users. It panics
// when rate is not positive.
func PoissonArrivals(ratePerSec float64) Arrivals {
	mustPositiveRate(ratePerSec)
	return poissonArrivals{rate: ratePerSec}
}

type poissonArrivals struct{ rate float64 }

func (a poissonArrivals) String() string { return fmt.Sprintf("poisson(%.4g/s)", a.rate) }

func (a poissonArrivals) start(r *rng.Source) func() (time.Duration, bool) {
	var now time.Duration
	return func() (time.Duration, bool) {
		// Inverse-CDF exponential gap; 1-U is in (0, 1] so Log never
		// sees zero.
		gap := -math.Log(1-r.Float64()) / a.rate
		now += time.Duration(gap * float64(time.Second))
		return now, true
	}
}

// BurstyArrivals is an on/off process: deterministic arrivals at
// ratePerSec for on, then silence for off, repeating — the worst-case
// pattern for bounded feed queues. It panics when rate is not
// positive, either phase is negative, or the on-phase is too short to
// contain even one arrival at the given rate (such a "burst" would
// never emit anything).
func BurstyArrivals(ratePerSec float64, on, off time.Duration) Arrivals {
	mustPositiveRate(ratePerSec)
	if on <= 0 || off < 0 {
		panic(fmt.Sprintf("core: bursty arrivals need on > 0 and off >= 0 (got %v/%v)", on, off))
	}
	if time.Duration(float64(time.Second)/ratePerSec) > on {
		panic(fmt.Sprintf("core: bursty on-phase %v holds no arrivals at %g/s (period %v)",
			on, ratePerSec, time.Duration(float64(time.Second)/ratePerSec)))
	}
	return burstyArrivals{rate: ratePerSec, on: on, off: off}
}

type burstyArrivals struct {
	rate    float64
	on, off time.Duration
}

func (a burstyArrivals) String() string {
	return fmt.Sprintf("bursty(%.4g/s, %v on / %v off)", a.rate, a.on, a.off)
}

func (a burstyArrivals) start(_ *rng.Source) func() (time.Duration, bool) {
	period := time.Duration(float64(time.Second) / a.rate)
	var cycleStart time.Duration
	next := period
	return func() (time.Duration, bool) {
		// Roll past any cycle whose on-window the candidate overshot.
		// The constructor guarantees period <= on, so the loop settles
		// on the first arrival of the next cycle after one step.
		for next-cycleStart > a.on {
			cycleStart += a.on + a.off
			next = cycleStart + period
		}
		t := next
		next += period
		return t, true
	}
}

// TraceArrivals replays explicit absolute arrival instants (a recorded
// production trace). The instants are copied and sorted; the process
// ends when the trace does, so any items remaining in the wrapped
// source never arrive. It panics on an empty trace or a negative
// instant.
func TraceArrivals(instants []time.Duration) Arrivals {
	if len(instants) == 0 {
		panic("core: empty arrival trace")
	}
	ts := append([]time.Duration(nil), instants...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	if ts[0] < 0 {
		panic(fmt.Sprintf("core: negative arrival instant %v in trace", ts[0]))
	}
	return traceArrivals{instants: ts}
}

type traceArrivals struct{ instants []time.Duration }

func (a traceArrivals) String() string { return fmt.Sprintf("trace(%d arrivals)", len(a.instants)) }

func (a traceArrivals) start(_ *rng.Source) func() (time.Duration, bool) {
	i := 0
	return func() (time.Duration, bool) {
		if i >= len(a.instants) {
			return 0, false
		}
		t := a.instants[i]
		i++
		return t, true
	}
}

// Phase is one segment of a PhasedArrivals schedule: an arrival
// process active for a window of the given length. A nil Arrivals is a
// quiet phase — the window passes with no arrivals (the overnight
// trough of a diurnal curve).
type Phase struct {
	// Arrivals is the process active during this phase (nil = silence).
	Arrivals Arrivals
	// Duration is the phase window length (> 0).
	Duration time.Duration
}

// PhasedArrivals chains arrival processes through consecutive time
// windows — the workload-shape primitive behind diurnal load curves
// and scheduled traffic ramps. Each phase restarts its process from
// the phase's window start; an instant the process places past its
// window is discarded and the next phase begins. With cycle set the
// schedule repeats from the first phase when the last window closes
// (a full cycle yielding no arrival ends the process, so a schedule
// that can never emit cannot spin forever). It panics on an empty
// schedule, a non-positive phase duration, or an all-silent schedule.
func PhasedArrivals(phases []Phase, cycle bool) Arrivals {
	if len(phases) == 0 {
		panic("core: phased arrivals need at least one phase")
	}
	active := 0
	for i, ph := range phases {
		if ph.Duration <= 0 {
			panic(fmt.Sprintf("core: phase %d duration %v (need > 0)", i, ph.Duration))
		}
		if ph.Arrivals != nil {
			active++
		}
	}
	if active == 0 {
		panic("core: phased arrivals with every phase silent")
	}
	return phasedArrivals{phases: append([]Phase(nil), phases...), cycle: cycle}
}

type phasedArrivals struct {
	phases []Phase
	cycle  bool
}

func (a phasedArrivals) String() string {
	if a.cycle {
		return fmt.Sprintf("phased(%d phases, cycling)", len(a.phases))
	}
	return fmt.Sprintf("phased(%d phases)", len(a.phases))
}

func (a phasedArrivals) start(r *rng.Source) func() (time.Duration, bool) {
	idx := -1
	var base time.Duration // window start of the current phase
	var gen func() (time.Duration, bool)
	dry := 0 // consecutive phases yielding nothing
	return func() (time.Duration, bool) {
		for {
			if gen != nil {
				if t, ok := gen(); ok && t <= a.phases[idx].Duration {
					dry = 0
					return base + t, true
				}
				// Phase over: the process ended, or placed its next
				// instant past the window. Either way the window's full
				// length elapses before the next phase starts.
				base += a.phases[idx].Duration
				gen = nil
				dry++
				if dry > len(a.phases) {
					// A full cycle passed with no arrival: the schedule
					// is dry (every phase silent or overshooting), so
					// end the process instead of spinning.
					return 0, false
				}
			}
			idx++
			if idx >= len(a.phases) {
				if !a.cycle {
					return 0, false
				}
				idx = 0
			}
			if a.phases[idx].Arrivals == nil {
				base += a.phases[idx].Duration
				continue
			}
			gen = a.phases[idx].Arrivals.start(r)
		}
	}
}

// DelayedArrivals shifts every instant of arr by delay — e.g. to
// start offered load only once a device group's one-time setup
// (firmware boot, graph allocation) is behind it, so the measured
// latency reflects steady-state serving rather than boot backlog. It
// panics on a negative delay.
func DelayedArrivals(arr Arrivals, delay time.Duration) Arrivals {
	if arr == nil {
		panic("core: delayed arrivals need a wrapped process")
	}
	if delay < 0 {
		panic(fmt.Sprintf("core: negative arrival delay %v", delay))
	}
	return delayedArrivals{inner: arr, delay: delay}
}

type delayedArrivals struct {
	inner Arrivals
	delay time.Duration
}

func (a delayedArrivals) String() string {
	return fmt.Sprintf("%v after %v", a.inner, a.delay)
}

func (a delayedArrivals) start(r *rng.Source) func() (time.Duration, bool) {
	gen := a.inner.start(r)
	return func() (time.Duration, bool) {
		t, ok := gen()
		return t + a.delay, ok
	}
}

func mustPositiveRate(rate float64) {
	if !(rate > 0) || math.IsInf(rate, 1) {
		panic(fmt.Sprintf("core: arrival rate must be positive and finite (got %g)", rate))
	}
}

// ArrivalSource turns any source into an open-loop traffic source: a
// simulation process pulls the wrapped source and makes each item
// visible only at its arrival instant, stamping Item.ArrivedAt. Until
// then, consumers block in virtual time — so a batch target cannot
// eagerly drain a dataset whose items "exist" up front, and
// RouteWorkStealing behaves like real request traffic.
//
// The stream ends when the wrapped source is exhausted (or, for trace
// replay, when the trace ends). Multiple consumers may share one
// ArrivalSource: exhaustion is re-posted so every consumer terminates,
// exactly like StreamSource.
type ArrivalSource struct {
	q     *sim.Queue[Item]
	inner Source
	// arrived/consumed track the visible backlog for Pending without
	// counting the end-of-stream sentinel.
	arrived  int
	consumed int
}

// NewArrivalSource wraps inner with the arrival process, driving it
// from a new process in env. seed drives the stochastic processes
// (Poisson); deterministic processes ignore it. The returned source is
// ready immediately; arrivals unfold once env runs.
func NewArrivalSource(env *sim.Env, inner Source, arr Arrivals, seed *rng.Source) (*ArrivalSource, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: arrival source needs a wrapped source")
	}
	if arr == nil {
		return nil, fmt.Errorf("core: arrival source needs an arrival process")
	}
	if seed == nil {
		seed = rng.New(1)
	}
	s := &ArrivalSource{q: sim.NewQueue[Item](env, "core/arrivals", 0), inner: inner}
	env.Process("arrivals", func(p *sim.Proc) {
		gen := arr.start(seed)
		for {
			// Pull before sleeping so exhaustion is detected at the
			// last item's arrival instant, not one arrival later.
			item, ok := s.inner.Next(p)
			if !ok {
				break
			}
			if item.Index == -1 {
				// Same producer-protocol bug StreamSource.Push rejects:
				// a user item carrying the reserved sentinel index
				// would silently truncate the stream for consumers.
				panic("core: arrival item with reserved Index -1 (the end-of-stream sentinel)")
			}
			at, more := gen()
			if !more {
				break
			}
			if at > p.Now() {
				p.Sleep(at - p.Now())
			}
			item.ArrivedAt = p.Now()
			s.arrived++
			s.q.Put(p, item)
		}
		s.q.Put(p, Item{Index: -1}) // end-of-stream sentinel
	})
	return s, nil
}

// Remaining implements Sized: items not yet arrived plus items
// arrived but not yet consumed, when the wrapped source can count
// them. Unsized inner sources report 0, which RouteStatic rejects as
// an empty partition — an arrival-wrapped stream cannot be split
// statically, same as the stream itself.
func (s *ArrivalSource) Remaining() int {
	if sized, ok := s.inner.(Sized); ok {
		return sized.Remaining() + s.q.Len()
	}
	return 0
}

// Next implements Source: it blocks in virtual time until the next
// item arrives.
func (s *ArrivalSource) Next(p *sim.Proc) (Item, bool) {
	item := s.q.Get(p)
	if item.Index == -1 {
		// Re-post the sentinel so every consumer terminates.
		s.q.TryPut(Item{Index: -1})
		return Item{}, false
	}
	s.consumed++
	return item, true
}

// NextWithin implements TimedSource: like Next but gives up once d of
// virtual time passes with no arrival.
func (s *ArrivalSource) NextWithin(p *sim.Proc, d time.Duration) (Item, bool, bool) {
	item, ok := s.q.GetWithin(p, d)
	if !ok {
		return Item{}, false, true
	}
	if item.Index == -1 {
		s.q.TryPut(Item{Index: -1})
		return Item{}, false, false
	}
	s.consumed++
	return item, true, true
}

// Pending implements DepthSource: items arrived but not yet consumed.
func (s *ArrivalSource) Pending() int { return s.arrived - s.consumed }
