package bench

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// TestHedgeShape asserts the hedge experiment's qualitative content
// at quick scale — the PR's acceptance bar:
//
//  1. the trigger=∞ variant is indistinguishable from the unhedged
//     baseline in every cell (arming hedging is free until it fires);
//  2. under the light fault plan (the PR 4 wedged-firmware incident)
//     at least one firing variant cuts the monolithic vpu-4 target's
//     p99 below the unhedged baseline, with wins recorded;
//  3. the hedge accounting is coherent: wins and waste never exceed
//     launches, waste is reported, and the fault-free firing variants
//     never reduce goodput below 99% of the baseline (the budget must
//     prevent hedge storms).
func TestHedgeShape(t *testing.T) {
	skipHeavy(t)
	pts, err := harness(t).HedgePoints()
	if err != nil {
		t.Fatal(err)
	}
	want := len(resilienceConfigs()) * (1 + len(resilienceLevels())*5)
	if len(pts) != want {
		t.Fatalf("%d hedge points, want %d", len(pts), want)
	}
	type cell struct{ config, faults string }
	byCell := map[cell]map[string]HedgePoint{}
	for _, p := range pts {
		if p.Hedge == "probe" {
			if p.AchievedIPS <= 0 || p.SLOMS <= 0 {
				t.Errorf("%s: capacity probe %.2f img/s, slo %.1fms", p.Config, p.AchievedIPS, p.SLOMS)
			}
			continue
		}
		k := cell{p.Config, p.Faults}
		if byCell[k] == nil {
			byCell[k] = map[string]HedgePoint{}
		}
		byCell[k][p.Hedge] = p
		if p.HedgeWins > p.Hedged || p.HedgeWaste > p.Hedged {
			t.Errorf("%s %s/%s: wins %d / waste %d exceed %d launched",
				p.Config, p.Faults, p.Hedge, p.HedgeWins, p.HedgeWaste, p.Hedged)
		}
		if (p.Hedge == "off" || p.Hedge == "inf") && p.Hedged != 0 {
			t.Errorf("%s %s/%s: %d hedges launched by a non-firing variant",
				p.Config, p.Faults, p.Hedge, p.Hedged)
		}
	}
	for _, cfg := range resilienceConfigs() {
		for _, level := range resilienceLevels() {
			m := byCell[cell{cfg.name, level.name}]
			// (1) trigger=∞ matches off bit for bit, label aside.
			off, inf := m["off"], m["inf"]
			inf.Hedge = off.Hedge
			if !reflect.DeepEqual(off, inf) {
				t.Errorf("%s/%s: trigger=∞ differs from the unhedged baseline:\n%+v\nvs\n%+v",
					cfg.name, level.name, inf, off)
			}
			// (3) no hedge storm on the healthy system.
			if level.name == "none" {
				for _, v := range []string{"t2", "t4", "p95"} {
					if p := m[v]; p.GoodputPct < 0.99*off.GoodputPct {
						t.Errorf("%s/none/%s: goodput %.1f%% vs %.1f%% unhedged — hedge storm",
							cfg.name, v, p.GoodputPct, off.GoodputPct)
					}
				}
			}
		}
	}
	// (2) The hedged vpu-4 target beats its unhedged p99 under the
	// light plan.
	light := byCell[cell{"vpu-4", "light"}]
	off := light["off"]
	improved := false
	for _, v := range []string{"t2", "t4", "p95"} {
		p := light[v]
		if p.P99MS < off.P99MS && p.HedgeWins > 0 {
			improved = true
		}
	}
	if !improved {
		t.Errorf("no firing variant beat vpu-4/light unhedged p99 %.1fms: %+v", off.P99MS, light)
	}
}

// TestDynamicBudgetSuppressesHedgeStorm replays the incident the
// hedge budget exists for — a budgetless 2x trigger on the pooled
// config, no fault injected, collapsing a healthy fleet's goodput by
// feeding on its own queueing (the BENCH_PR5 storm, measured at 8%
// goodput) — and pins down that the utilization-scaled dynamic budget
// keeps it suppressed:
//
//  1. the storm is still real: the budgetless variant duplicates an
//     outsized share of the offered items and loses a large fraction
//     of the unhedged goodput (the regression this test guards would
//     otherwise be invisible);
//  2. the dynamic budget defuses it: same trigger, same traffic, same
//     seeds, goodput within 1% of the unhedged baseline;
//  3. the suppression is the budget's doing, not the trigger going
//     quiet — the dynamic variant launches far fewer duplicates than
//     the storm.
func TestDynamicBudgetSuppressesHedgeStorm(t *testing.T) {
	skipHeavy(t)
	h := harness(t)
	cfg := resilienceConfigs()[1] // pool-4x1, the storm-prone config
	if !cfg.pooled {
		t.Fatalf("expected the pooled config, got %+v", cfg)
	}
	images := resilienceWindowScale * h.cfg.ImagesPerSubset
	capacity, ready, err := h.resilienceCapacity(cfg, images)
	if err != nil {
		t.Fatal(err)
	}
	slo := time.Duration(sloServiceMultiple * float64(cfg.sticks) / capacity * float64(time.Second))
	unit := time.Duration(float64(cfg.sticks) / capacity * float64(time.Second))
	rate := capacity * resilienceLoad
	window := time.Duration(float64(images) / rate * float64(time.Second))
	level := resilienceLevels()[0] // "none": the storm needs no fault to collapse a healthy fleet
	run := func(name string, hc core.HedgeConfig) HedgePoint {
		t.Helper()
		pt, err := h.hedgePoint(cfg, level, hedgeVariant{name: name, hc: hc}, images, rate, ready, window, slo)
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	off := run("off", core.HedgeConfig{})
	storm := run("storm", core.HedgeConfig{Trigger: 2 * unit})
	dyn := run("dyn", core.HedgeConfig{Trigger: 2 * unit, Budget: hedgeBudget, DynamicBudget: true})
	if storm.GoodputPct > 0.7*off.GoodputPct {
		t.Errorf("budgetless 2x trigger no longer storms (goodput %.1f%% vs %.1f%% unhedged) — this regression gate is measuring nothing",
			storm.GoodputPct, off.GoodputPct)
	}
	if dyn.GoodputPct < 0.99*off.GoodputPct {
		t.Errorf("dynamic budget failed to suppress the hedge storm: goodput %.1f%% vs %.1f%% unhedged",
			dyn.GoodputPct, off.GoodputPct)
	}
	if storm.Hedged == 0 || dyn.Hedged >= storm.Hedged/2 {
		t.Errorf("dynamic budget launched %d duplicates vs the storm's %d — suppression should come from withheld hedges",
			dyn.Hedged, storm.Hedged)
	}
}
