// Package bench regenerates every table and figure of the paper's
// evaluation (§IV–§V): one generator per artefact, each returning a
// Table whose rows carry both the measured values from this
// reproduction and the paper's reported numbers side by side. The
// cmd/ncsw-bench binary and the repository's top-level benchmarks are
// thin wrappers over this package; EXPERIMENTS.md is written from its
// output.
package bench

import (
	"fmt"
	"strings"

	"repro/internal/devsim"
	"repro/internal/graphfile"
	"repro/internal/nn"
	"repro/internal/rng"
)

// Config scales the experiments. The defaults reproduce the paper's
// full workload; tests and quick runs shrink the image counts.
type Config struct {
	// ImagesPerSubset is the per-subset size for the performance
	// experiments (the paper uses 10 000).
	ImagesPerSubset int
	// Subsets is the number of validation subsets (the paper uses 5).
	Subsets int
	// FunctionalImagesPerSubset is the per-subset size for the
	// accuracy experiments (Fig. 7), which execute real arithmetic and
	// are far more expensive per image.
	FunctionalImagesPerSubset int
	// Workers bounds the goroutine pool of the functional experiments
	// (0 = GOMAXPROCS).
	Workers int
	// Seed drives every random stream.
	Seed uint64
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		ImagesPerSubset:           10000,
		Subsets:                   5,
		FunctionalImagesPerSubset: 10000,
		Seed:                      1,
	}
}

// QuickConfig returns a configuration sized for CI runs: same
// structure, two orders of magnitude fewer images.
func QuickConfig() Config {
	return Config{
		ImagesPerSubset:           400,
		Subsets:                   5,
		FunctionalImagesPerSubset: 200,
		Seed:                      1,
	}
}

func (c Config) validate() error {
	if c.ImagesPerSubset < 1 || c.FunctionalImagesPerSubset < 1 {
		return fmt.Errorf("bench: non-positive image counts in %+v", c)
	}
	if c.Subsets < 1 {
		return fmt.Errorf("bench: need at least one subset")
	}
	if c.Workers < 0 {
		return fmt.Errorf("bench: negative workers")
	}
	return nil
}

// Table is one regenerated artefact.
type Table struct {
	ID      string // "fig6a", "fig7b", ...
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; it panics on column-count mismatch
// so generators cannot silently produce ragged tables.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("bench: table %s row has %d cells, want %d", t.ID, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders an aligned plain-text table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub markdown (for EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// Harness caches the expensive shared artefacts (the GoogLeNet graph,
// its compiled blob, the micro network) across experiments.
type Harness struct {
	cfg      Config
	goog     *nn.Graph
	blob     []byte
	workload devsim.Workload
	// capCache memoizes the deterministic closed-loop capacity probes
	// shared by the resilience and hedge experiments (keyed by
	// config/images; see resilienceCapacity).
	capCache map[string]any
}

// NewHarness validates cfg and builds the shared artefacts.
func NewHarness(cfg Config) (*Harness, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	goog := nn.NewGoogLeNet(rng.New(cfg.Seed).Derive("googlenet-weights"))
	blob, err := graphfile.Compile(goog)
	if err != nil {
		return nil, err
	}
	return &Harness{
		cfg:      cfg,
		goog:     goog,
		blob:     blob,
		workload: devsim.WorkloadOf(goog),
	}, nil
}

// Config returns the harness configuration.
func (h *Harness) Config() Config { return h.cfg }

// GoogLeNet returns the cached full-size network.
func (h *Harness) GoogLeNet() *nn.Graph { return h.goog }

// Blob returns the compiled GoogLeNet graph file.
func (h *Harness) Blob() []byte { return h.blob }

// All runs every experiment in paper order.
func (h *Harness) All() ([]*Table, error) {
	type gen struct {
		name string
		fn   func() (*Table, error)
	}
	gens := []gen{
		{"fig6a", h.Fig6a},
		{"fig6b", h.Fig6b},
		{"fig7a", h.Fig7a},
		{"fig7b", h.Fig7b},
		{"fig8a", h.Fig8a},
		{"fig8b", h.Fig8b},
		{"summary", h.Summary},
		{"ablation", h.Ablation},
		{"precision", func() (*Table, error) { return h.PrecisionAblation(precisionImages(h.cfg)) }},
		{"gemm", h.GEMMStudy},
		{"serving", h.Serving},
		{"slo", h.SLO},
		{"resilience", h.Resilience},
		{"hedge", h.Hedge},
		{"kernel", h.Kernel},
		{"split", h.Split},
		{"tenants", h.Tenants},
		{"scenarios", h.Scenarios},
	}
	var out []*Table
	for _, g := range gens {
		t, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", g.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// Experiment runs one experiment by table ID.
func (h *Harness) Experiment(id string) (*Table, error) {
	switch id {
	case "fig6a":
		return h.Fig6a()
	case "fig6b":
		return h.Fig6b()
	case "fig7a":
		return h.Fig7a()
	case "fig7b":
		return h.Fig7b()
	case "fig8a":
		return h.Fig8a()
	case "fig8b":
		return h.Fig8b()
	case "summary":
		return h.Summary()
	case "ablation":
		return h.Ablation()
	case "precision":
		return h.PrecisionAblation(precisionImages(h.cfg))
	case "gemm":
		return h.GEMMStudy()
	case "serving":
		return h.Serving()
	case "slo":
		return h.SLO()
	case "resilience":
		return h.Resilience()
	case "hedge":
		return h.Hedge()
	case "kernel":
		return h.Kernel()
	case "split":
		return h.Split()
	case "tenants":
		return h.Tenants()
	case "scenarios":
		return h.Scenarios()
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
}

// precisionImages bounds the precision ablation: its FP16-accumulate
// pass emulates per-element rounding in software and costs ~25 ms per
// image on one thread, so paper-scale configs cap it at 2000 images
// (the ablation compares error-rate deltas of several percent, for
// which 2000 samples give ±1% resolution).
func precisionImages(cfg Config) int {
	const cap = 2000
	if cfg.FunctionalImagesPerSubset > cap {
		return cap
	}
	return cfg.FunctionalImagesPerSubset
}

// ExperimentIDs lists the available artefacts: the paper's figures in
// order, the headline summary, and the beyond-the-paper studies.
func ExperimentIDs() []string {
	return []string{"fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b", "summary", "ablation", "precision", "gemm", "serving", "slo", "resilience", "hedge", "kernel", "split", "tenants", "scenarios"}
}
