package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graphfile"
	"repro/internal/imagenet"
	"repro/internal/ncs"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/usb"
)

// vpuRunSpec parameterizes an ablation run of the multi-VPU pipeline.
type vpuRunSpec struct {
	devices   int
	images    int
	runName   string
	ncsCfg    ncs.Config
	opts      core.VPUOptions
	allDirect bool // bypass hubs: every stick on its own root port
	usbCfg    usb.Config
}

// runVPUSpec is the configurable variant of runVPU used by the
// ablation experiments.
func (h *Harness) runVPUSpec(spec vpuRunSpec) (perfResult, error) {
	env := sim.NewEnv()
	var ports []*usb.Port
	if spec.allDirect {
		fabric, err := usb.NewFabric(env, spec.usbCfg)
		if err != nil {
			return perfResult{}, err
		}
		for i := 0; i < spec.devices; i++ {
			p, err := fabric.AttachDevice(fmt.Sprintf("ncs%d", i), -1)
			if err != nil {
				return perfResult{}, err
			}
			ports = append(ports, p)
		}
	} else {
		var err error
		_, ports, err = usb.Testbed(env, spec.usbCfg, spec.devices)
		if err != nil {
			return perfResult{}, err
		}
	}
	seed := rng.New(h.cfg.Seed).Derive("vpu-run/" + spec.runName)
	devices := make([]*ncs.Device, spec.devices)
	for i, port := range ports {
		d, err := ncs.NewDevice(env, port.Name(), port, spec.ncsCfg, seed)
		if err != nil {
			return perfResult{}, err
		}
		devices[i] = d
	}
	target, err := core.NewVPUTarget(devices, h.blob, spec.opts)
	if err != nil {
		return perfResult{}, err
	}
	ds, err := h.perfDatasetSized(spec.images)
	if err != nil {
		return perfResult{}, err
	}
	src, err := core.NewDatasetSource(ds, 0, spec.images, false)
	if err != nil {
		return perfResult{}, err
	}
	col := core.NewCollector(false)
	job := target.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		return perfResult{}, job.Err
	}
	ips := job.Throughput()
	return perfResult{ImagesPerSec: ips, PerImageMS: 1e3 / ips}, nil
}

// Ablation quantifies the design choices DESIGN.md §5 calls out. These
// go beyond the paper's figures: they measure what each mechanism of
// the NCSw pipeline is worth on the simulated testbed.
func (h *Harness) Ablation() (*Table, error) {
	t := &Table{
		ID:      "ablation",
		Title:   "Design-choice ablations on the 8-stick testbed",
		Columns: []string{"configuration", "throughput (img/s)", "vs baseline"},
		Notes: []string{
			"baseline = paper-faithful NCSw: sequential load/get per stick, round-robin, FIFO depth 2, Fig. 5 hub topology",
			"FIFO depth 1 retains the overlap gain: the executing inference has already left the queue, so one slot still double-buffers",
		},
	}
	images := h.cfg.ImagesPerSubset

	base := vpuRunSpec{
		devices: 8,
		images:  images,
		runName: "ablation/base",
		ncsCfg:  ncs.DefaultConfig(),
		opts:    core.DefaultVPUOptions(),
		usbCfg:  usb.DefaultConfig(),
	}
	baseline, err := h.runVPUSpec(base)
	if err != nil {
		return nil, err
	}
	t.AddRow("baseline (paper-faithful)", fmt.Sprintf("%.1f", baseline.ImagesPerSec), "1.00x")

	addVariant := func(name string, spec vpuRunSpec) error {
		r, err := h.runVPUSpec(spec)
		if err != nil {
			return err
		}
		t.AddRow(name, fmt.Sprintf("%.1f", r.ImagesPerSec),
			fmt.Sprintf("%.3fx", r.ImagesPerSec/baseline.ImagesPerSec))
		return nil
	}

	// 1. Load/result overlap: pipeline two inferences per stick,
	// hiding the USB transfer behind SHAVE execution.
	overlap := base
	overlap.runName = "ablation/overlap"
	overlap.opts.Overlap = true
	if err := addVariant("overlap (2 in flight per stick)", overlap); err != nil {
		return nil, err
	}

	// 2. Overlap with FIFO depth 1. Finding: depth 1 keeps the whole
	// overlap gain — the runtime dequeues a job when execution starts,
	// so one slot still buffers the next input behind the running
	// inference. Depth only matters for pipelines deeper than two.
	fifo1 := overlap
	fifo1.runName = "ablation/overlap-fifo1"
	fifo1.ncsCfg.FIFODepth = 1
	if err := addVariant("overlap + FIFO depth 1", fifo1); err != nil {
		return nil, err
	}

	// 3. Dynamic dispatch instead of static round robin.
	dyn := base
	dyn.runName = "ablation/dynamic"
	dyn.opts.Scheduling = core.Dynamic
	if err := addVariant("dynamic scheduling", dyn); err != nil {
		return nil, err
	}

	// 4. No hubs: every stick on its own root port (removes the shared
	// hub uplinks of Fig. 5).
	direct := base
	direct.runName = "ablation/direct"
	direct.allDirect = true
	if err := addVariant("all sticks on direct ports", direct); err != nil {
		return nil, err
	}

	// 5. Thermal stress: a hot enclosure with low throttle thresholds
	// (the firmware behaviour the paper's open-air testbed never hit).
	hot := base
	hot.runName = "ablation/thermal"
	hot.ncsCfg.Thermal = ncs.ThermalConfig{
		AmbientC:        45,
		ResistanceCPerW: 20,
		TimeConstant:    5 * time.Second,
		Level1C:         60,
		Level2C:         75,
		Level1Factor:    0.5,
		Level2Factor:    0.25,
	}
	if err := addVariant("hot enclosure (thermal throttling)", hot); err != nil {
		return nil, err
	}

	// 6. Zero host overhead: what the pipeline would do with free
	// thread management.
	free := base
	free.runName = "ablation/free-host"
	free.opts.HostOverhead = 0
	if err := addVariant("zero host thread overhead", free); err != nil {
		return nil, err
	}

	return t, nil
}

// PrecisionAblation compares the VAU's two accumulate paths on the
// accuracy pipeline: FP32 accumulation (the mode matching the paper's
// negligible Fig. 7a error difference) against native FP16
// accumulation, which degrades the error rate visibly — evidence the
// NCSDK used the FP32-accumulate path.
func (h *Harness) PrecisionAblation(images int) (*Table, error) {
	if images <= 0 {
		return nil, fmt.Errorf("bench: precision ablation needs images > 0")
	}
	dcfg := imagenet.DefaultConfig()
	dcfg.Images = images
	ds, err := imagenet.New(dcfg)
	if err != nil {
		return nil, err
	}
	net32 := nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(microWeightSeed))
	if err := nn.CalibrateClassifier(net32, nn.MicroClassifierName, nn.MicroPoolName,
		ds.PreprocessedPrototypes(), classifierTemperature); err != nil {
		return nil, err
	}
	blob, err := graphfile.Compile(net32)
	if err != nil {
		return nil, err
	}
	net16, _, err := graphfile.Parse(blob)
	if err != nil {
		return nil, err
	}

	type mode struct {
		name string
		net  *nn.Graph
		prec nn.Precision
	}
	modes := []mode{
		{"FP32 (CPU reference)", net32, nn.FP32},
		{"FP16, FP32 accumulate", net16, nn.FP16},
		{"FP16, FP16 accumulate", net16, nn.FP16Strict},
	}
	t := &Table{
		ID:      "precision",
		Title:   "Precision ablation: accumulate width on the VPU path",
		Columns: []string{"mode", "top-1 error", "Δ vs FP32"},
		Notes: []string{
			fmt.Sprintf("%d images; paper observes a 0.09%% FP32-FP16 difference, consistent with FP32 accumulation", images),
		},
	}
	var ref float64
	for _, m := range modes {
		wrong := 0
		for i := 0; i < images; i++ {
			img := ds.Preprocessed(i)
			in := img.Reshape(1, 3, dcfg.Size, dcfg.Size)
			out, err := m.net.Forward(in, m.prec)
			if err != nil {
				return nil, err
			}
			if pred, _ := out.ArgMax(); pred != ds.Label(i) {
				wrong++
			}
		}
		e := float64(wrong) / float64(images)
		if m.prec == nn.FP32 {
			ref = e
		}
		t.AddRow(m.name, fmt.Sprintf("%.2f%%", e*100), fmt.Sprintf("%+.2f%%", (e-ref)*100))
	}
	return t, nil
}
