package bench

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/stats"
)

// Paper-reported values for Fig. 8 (§V).
var (
	// paperFig8aImgPerWatt: VPU at 1 stick, CPU/GPU at batch 8.
	paperFig8aImgPerWatt = map[string]float64{"cpu": 0.55, "gpu": 0.93, "vpu1": 3.97}
	// paperFig8bIPS16 are the batch-16 throughputs (VPU projected).
	paperFig8bIPS16 = map[string]float64{"cpu": 44.5, "gpu": 79.9, "vpu": 153.0}
)

// Fig8aBatches are the batch sizes of Figure 8a.
var Fig8aBatches = []int{1, 2, 4, 8}

// Fig8a regenerates Figure 8a: throughput per Watt (Eq. 1) per batch
// size. The TDP denominators follow §V: 80 W for CPU and GPU, 2.5 W
// per NCS stick (aggregated across active sticks).
func (h *Harness) Fig8a() (*Table, error) {
	t := &Table{
		ID:    "fig8a",
		Title: "Throughput per Watt (images/W, Eq. 1) vs batch size",
		Columns: []string{
			"batch", "CPU img/W", "GPU img/W", "VPU(multi) img/W",
		},
		Notes: []string{
			"TDP: CPU 80 W, GPU 80 W, NCS 2.5 W per stick (chip alone: 0.9 W)",
			"paper: VPU 3.97 img/W at one stick; CPU 0.55 and GPU 0.93 at batch 8",
		},
	}
	images := h.cfg.ImagesPerSubset
	var vpu1, cpu8, gpu8 float64
	for _, b := range Fig8aBatches {
		run := fmt.Sprintf("fig8a/b%d", b)
		cpu, err := h.runBatchDevice("cpu", b, images, run)
		if err != nil {
			return nil, err
		}
		gpu, err := h.runBatchDevice("gpu", b, images, run)
		if err != nil {
			return nil, err
		}
		vpu, err := h.runVPU(b, images, run)
		if err != nil {
			return nil, err
		}
		cpuW := power.ImagesPerWatt(cpu.ImagesPerSec, power.CPUTDPWatts)
		gpuW := power.ImagesPerWatt(gpu.ImagesPerSec, power.GPUTDPWatts)
		vpuW := power.ImagesPerWatt(vpu.ImagesPerSec, power.MultiVPUTDP(b))
		if b == 1 {
			vpu1 = vpuW
		}
		if b == 8 {
			cpu8, gpu8 = cpuW, gpuW
		}
		t.AddRow(
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%.2f", cpuW),
			fmt.Sprintf("%.2f", gpuW),
			fmt.Sprintf("%.2f", vpuW),
		)
	}
	t.AddRow("paper pts",
		fmtRatio(cpu8, paperFig8aImgPerWatt["cpu"], "%.2f"),
		fmtRatio(gpu8, paperFig8aImgPerWatt["gpu"], "%.2f"),
		fmtRatio(vpu1, paperFig8aImgPerWatt["vpu1"], "%.2f")+" @1",
	)
	return t, nil
}

// Fig8bBatches are the batch sizes of Figure 8b (1–16; the paper
// measures the VPU to its 8 physical sticks and projects beyond).
var Fig8bBatches = []int{1, 2, 4, 8, 16}

// Fig8b regenerates Figure 8b: projected inference performance per
// batch size. CPU and GPU are measured through batch 16. The VPU is
// measured through the 8-stick testbed; beyond that the paper
// projects assuming the observed scaling continues — reproduced here
// with a least-squares line through the measured points — and, because
// this testbed is simulated, the projection is additionally checked
// against an actual 16-stick simulation.
func (h *Harness) Fig8b() (*Table, error) {
	t := &Table{
		ID:    "fig8b",
		Title: "Projected inference performance vs batch size (img/s)",
		Columns: []string{
			"batch", "CPU img/s", "GPU img/s", "VPU img/s", "VPU mode",
		},
		Notes: []string{
			"paper at 16: CPU 44.5, GPU 79.9, VPU 153.0 (projected) img/s",
			"VPU mode: measured = simulated testbed sticks; projected = linear fit through measured points",
		},
	}
	images := h.cfg.ImagesPerSubset

	var xs, ys []float64
	var cpu16, gpu16, vpuProj16, vpuSim16 float64
	for _, b := range Fig8bBatches {
		run := fmt.Sprintf("fig8b/b%d", b)
		cpu, err := h.runBatchDevice("cpu", b, images, run)
		if err != nil {
			return nil, err
		}
		gpu, err := h.runBatchDevice("gpu", b, images, run)
		if err != nil {
			return nil, err
		}
		if b == 16 {
			cpu16, gpu16 = cpu.ImagesPerSec, gpu.ImagesPerSec
		}

		var vpuIPS float64
		mode := "measured"
		if b <= 8 {
			vpu, err := h.runVPU(b, images, run)
			if err != nil {
				return nil, err
			}
			vpuIPS = vpu.ImagesPerSec
			xs = append(xs, float64(b))
			ys = append(ys, vpuIPS)
		} else {
			line := stats.FitLine(xs, ys)
			vpuIPS = line.At(float64(b))
			vpuProj16 = vpuIPS
			mode = "projected"
			// Cross-check: simulate the 16-stick testbed outright.
			sim16, err := h.runVPU(b, images, run+"/sim-check")
			if err != nil {
				return nil, err
			}
			vpuSim16 = sim16.ImagesPerSec
		}
		t.AddRow(
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%.1f", cpu.ImagesPerSec),
			fmt.Sprintf("%.1f", gpu.ImagesPerSec),
			fmt.Sprintf("%.1f", vpuIPS),
			mode,
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("at 16: CPU %.1f (paper 44.5), GPU %.1f (paper 79.9), VPU projected %.1f / simulated %.1f (paper 153.0)",
			cpu16, gpu16, vpuProj16, vpuSim16),
		fmt.Sprintf("VPU@16 vs CPU@16: %.1fx (paper 3.4x); vs GPU@16: %.1fx (paper 1.9x)",
			round2(vpuProj16/cpu16), round2(vpuProj16/gpu16)),
	)
	return t, nil
}
