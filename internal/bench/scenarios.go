package bench

import (
	"fmt"

	"repro/internal/scenario"
)

// The scenarios experiment replays the committed scenario corpus
// (scenarios/ at the repository root) through the declarative
// scenario engine. Unlike the other experiments the workload is not
// scaled by the harness config: each scenario file pins its own
// image count and traffic so its golden report stays bit-stable.

// ScenarioPoints runs every scenario in the committed corpus and
// returns one machine-readable point per scenario, in file order.
func (h *Harness) ScenarioPoints() ([]scenario.Point, error) {
	dir, err := scenario.DefaultCorpusDir()
	if err != nil {
		return nil, fmt.Errorf("bench: %v", err)
	}
	scs, err := scenario.LoadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("bench: %v", err)
	}
	points := make([]scenario.Point, 0, len(scs))
	for _, sc := range scs {
		res, err := sc.Run()
		if err != nil {
			return nil, fmt.Errorf("bench: %v", err)
		}
		points = append(points, res.Point())
	}
	return points, nil
}

// Scenarios renders the scenario corpus as a table: one row per
// committed scenario with its throughput, goodput, shed rate, tails
// and event counts.
func (h *Harness) Scenarios() (*Table, error) {
	points, err := h.ScenarioPoints()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "scenarios",
		Title: "Scenario corpus — declarative regression suite (scenarios/*.json)",
		Columns: []string{"scenario", "images", "img/s", "goodput",
			"shed", "p50(ms)", "p95(ms)", "p99(ms)", "faults", "hedged", "tenants"},
		Notes: []string{
			"each scenario pins its own scale; goldens live in scenarios/golden/",
			"regenerate goldens with: go test ./internal/scenario/ -run TestCorpus -update",
		},
	}
	for _, p := range points {
		t.AddRow(
			p.Name,
			fmt.Sprintf("%d", p.Images),
			fmt.Sprintf("%.1f", p.ThroughputIPS),
			fmt.Sprintf("%.1f%%", p.GoodputPct),
			fmt.Sprintf("%.1f%%", p.ShedPct),
			fmt.Sprintf("%.1f", p.P50MS),
			fmt.Sprintf("%.1f", p.P95MS),
			fmt.Sprintf("%.1f", p.P99MS),
			fmt.Sprintf("%d", p.FaultsInjected),
			fmt.Sprintf("%d", p.Hedged),
			fmt.Sprintf("%d", p.Tenants),
		)
	}
	return t, nil
}
