package bench

import (
	"fmt"

	"repro/internal/mdk"
	"repro/internal/vpu"
)

// GEMMStudy regenerates the related-work comparison the paper builds
// its future-work argument on (§VI, Ionica & Gregg): general-purpose
// GEMM on the Myriad 2 with CMX tiling, in Gflops and Gflops/W,
// against the Xeon baseline. It also shows the tiling ablation: the
// same problem with deliberately tiny tiles collapses to the DDR
// bandwidth, which is why the CMX scratchpad architecture matters.
func (h *Harness) GEMMStudy() (*Table, error) {
	t := &Table{
		ID:      "gemm",
		Title:   "General-purpose GEMM on the VPU (MDK/LAMA path, §VI related work)",
		Columns: []string{"configuration", "Gflops", "Gflops/W", "bound"},
		Notes: []string{
			"CPU reference: 160 Gflops peak x 0.905 MKL efficiency over 80 W TDP",
			"VPU power: 0.9 W chip TDP; tiling searched over power-of-two CMX tiles",
		},
	}
	cfg := vpu.DefaultConfig()
	cpuGflops := 160.0 * 0.905
	cpuGpw := cpuGflops / 80

	for _, size := range []int{256, 512, 1024, 2048} {
		for _, dt := range []mdk.DType{mdk.FP16, mdk.FP32} {
			plan, err := mdk.BestTiling(cfg, size, size, size, dt)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				fmt.Sprintf("VPU %d^3 %s (tile %dx%d)", size, dt, plan.TileM, plan.TileN),
				fmt.Sprintf("%.1f", plan.Gflops()),
				fmt.Sprintf("%.1f", plan.GflopsPerWatt()),
				plan.Bound,
			)
		}
	}
	// The tiling ablation: force pathological tiles.
	bad, err := mdk.NewPlan(cfg, 1024, 1024, 1024, 16, 16, mdk.FP16)
	if err != nil {
		return nil, err
	}
	t.AddRow(
		"VPU 1024^3 fp16 (tile 16x16, no CMX reuse)",
		fmt.Sprintf("%.1f", bad.Gflops()),
		fmt.Sprintf("%.1f", bad.GflopsPerWatt()),
		bad.Bound,
	)
	t.AddRow("CPU 2x Xeon E5-2609v2 (MKL)",
		fmt.Sprintf("%.1f", cpuGflops),
		fmt.Sprintf("%.1f", cpuGpw),
		"compute",
	)
	best, err := mdk.BestTiling(cfg, 1024, 1024, 1024, mdk.FP16)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"energy efficiency: VPU fp16 %.1f Gflops/W vs CPU %.1f Gflops/W (%.0fx) — the co-processor argument of §V in general-purpose form",
		best.GflopsPerWatt(), cpuGpw, best.GflopsPerWatt()/cpuGpw))
	return t, nil
}
