package bench

import (
	"strconv"
	"strings"
	"testing"
)

// quickHarness caches one harness across the package tests (GoogLeNet
// construction and graph compilation cost ~1 s).
var quickHarness *Harness

func harness(t testing.TB) *Harness {
	t.Helper()
	if quickHarness == nil {
		h, err := NewHarness(QuickConfig())
		if err != nil {
			t.Fatal(err)
		}
		quickHarness = h
	}
	return quickHarness
}

// cell parses a leading float out of a table cell like "77.8 ±1.3" or
// "44.1 (paper 44.0)".
func cell(t *testing.T, s string) float64 {
	t.Helper()
	fields := strings.Fields(strings.TrimSuffix(s, "%"))
	if len(fields) == 0 {
		t.Fatalf("empty cell %q", s)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(fields[0], "x"), "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

// skipHeavy skips a full experiment re-run under -short: the race CI
// job runs the suite with -short (race-instrumented experiment runs
// take minutes each and exercise no concurrency the core and pipeline
// suites do not), while the regular test job still runs everything.
func skipHeavy(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
}

// findRow locates a row by its first column.
func findRow(t *testing.T, tbl *Table, key string) []string {
	t.Helper()
	for _, row := range tbl.Rows {
		if row[0] == key {
			return row
		}
	}
	t.Fatalf("table %s has no row %q", tbl.ID, key)
	return nil
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ImagesPerSubset: 0, Subsets: 5, FunctionalImagesPerSubset: 1},
		{ImagesPerSubset: 1, Subsets: 0, FunctionalImagesPerSubset: 1},
		{ImagesPerSubset: 1, Subsets: 1, FunctionalImagesPerSubset: 0},
		{ImagesPerSubset: 1, Subsets: 1, FunctionalImagesPerSubset: 1, Workers: -1},
	}
	for i, cfg := range bad {
		if _, err := NewHarness(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestTableHelpers(t *testing.T) {
	tbl := &Table{ID: "x", Title: "T", Columns: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	if len(tbl.Rows) != 1 {
		t.Error("AddRow failed")
	}
	s := tbl.String()
	if !strings.Contains(s, "x: T") || !strings.Contains(s, "1") {
		t.Errorf("String = %q", s)
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("Markdown = %q", md)
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged row must panic")
		}
	}()
	tbl.AddRow("only-one")
}

func TestExperimentDispatch(t *testing.T) {
	h := harness(t)
	if _, err := h.Experiment("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	ids := ExperimentIDs()
	if len(ids) != 18 {
		t.Errorf("ExperimentIDs = %v", ids)
	}
}

// TestServingShape asserts the serving experiment's qualitative
// content at quick scale: rows for every (config, load) plus capacity
// probes, service time roughly flat across loads, and overload (110%)
// p99 clearly above the 50%-load p99 on every configuration.
func TestServingShape(t *testing.T) {
	skipHeavy(t)
	pts, err := harness(t).ServingPoints()
	if err != nil {
		t.Fatal(err)
	}
	nCfg := len(servingConfigs())
	if want := nCfg * (len(servingLoads) + 1); len(pts) != want {
		t.Fatalf("%d serving points, want %d", len(pts), want)
	}
	p99 := map[string]map[float64]float64{}
	for _, p := range pts {
		if p.LoadFraction == 0 {
			if p.AchievedIPS <= 0 {
				t.Errorf("%s: capacity probe %.2f img/s", p.Device, p.AchievedIPS)
			}
			continue
		}
		if p99[p.Device] == nil {
			p99[p.Device] = map[float64]float64{}
		}
		p99[p.Device][p.LoadFraction] = p.P99MS
		if p.P50MS <= 0 || p.P99MS < p.P95MS || p.P95MS < p.P50MS || p.MaxMS < p.P99MS {
			t.Errorf("%s@%.0f%%: inconsistent quantiles %+v", p.Device, p.LoadFraction*100, p)
		}
		if p.ServiceMeanMS <= 0 {
			t.Errorf("%s@%.0f%%: no service time", p.Device, p.LoadFraction*100)
		}
	}
	for dev, byLoad := range p99 {
		if byLoad[1.1] <= byLoad[0.5] {
			t.Errorf("%s: overload p99 %.1fms not above 50%%-load p99 %.1fms",
				dev, byLoad[1.1], byLoad[0.5])
		}
	}
}

// TestFig6aShape asserts the figure's qualitative content at quick
// scale: VPU ≈ GPU > CPU, all within a loose band of the paper.
func TestFig6aShape(t *testing.T) {
	skipHeavy(t)
	tbl, err := harness(t).Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != QuickConfig().Subsets+2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	mean := findRow(t, tbl, "mean")
	cpu, gpu, vpu := cell(t, mean[1]), cell(t, mean[2]), cell(t, mean[3])
	if !(vpu > cpu && gpu > cpu) {
		t.Errorf("ordering broken: cpu=%.1f gpu=%.1f vpu=%.1f", cpu, gpu, vpu)
	}
	// Loose bands (quick config still reproduces within a few %).
	if cpu < 40 || cpu > 48 {
		t.Errorf("CPU = %.1f img/s, paper 44.0", cpu)
	}
	if gpu < 69 || gpu > 79 {
		t.Errorf("GPU = %.1f img/s, paper 74.2", gpu)
	}
	if vpu < 72 || vpu > 82 {
		t.Errorf("VPU = %.1f img/s, paper 77.2", vpu)
	}
	// VPU within ~10% of GPU ("similar performance").
	if r := vpu / gpu; r < 0.9 || r > 1.15 {
		t.Errorf("VPU/GPU ratio = %.2f, paper ~1.04", r)
	}
}

// TestFig6bShape asserts the scaling curves: near-ideal for VPUs, weak
// for CPU, intermediate for GPU.
func TestFig6bShape(t *testing.T) {
	skipHeavy(t)
	tbl, err := harness(t).Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	last := findRow(t, tbl, "8")
	cpuScale, gpuScale, vpuScale := cell(t, last[2]), cell(t, last[4]), cell(t, last[6])
	if cpuScale < 1.05 || cpuScale > 1.25 {
		t.Errorf("CPU scaling at 8 = %.2f, paper 1.1", cpuScale)
	}
	if gpuScale < 1.75 || gpuScale > 2.05 {
		t.Errorf("GPU scaling at 8 = %.2f, paper 1.9", gpuScale)
	}
	if vpuScale < 7.4 || vpuScale > 8.05 {
		t.Errorf("VPU scaling at 8 = %.2f, paper close to 8", vpuScale)
	}
	// Single-input baselines match the paper's measured latencies.
	one := findRow(t, tbl, "1")
	if v := cell(t, one[1]); v < 25 || v > 27 {
		t.Errorf("CPU single-input = %.1f ms, paper 26.0", v)
	}
	if v := cell(t, one[3]); v < 24.9 || v > 26.9 {
		t.Errorf("GPU single-input = %.1f ms, paper 25.9", v)
	}
	if v := cell(t, one[5]); v < 97 || v > 105 {
		t.Errorf("VPU single-input = %.1f ms, paper 100.7", v)
	}
}

// TestFig7Shape asserts the accuracy experiment: ~32% error in both
// precisions with a sub-1% gap, and a small nonzero confidence
// difference.
func TestFig7Shape(t *testing.T) {
	skipHeavy(t)
	h := harness(t)
	a, err := h.Fig7a()
	if err != nil {
		t.Fatal(err)
	}
	mean := findRow(t, a, "mean")
	e32, e16 := cell(t, mean[1]), cell(t, mean[2])
	// 200 images/subset: wide band around 32%.
	if e32 < 25 || e32 > 40 {
		t.Errorf("FP32 error = %.1f%%, paper 32.01%%", e32)
	}
	if e16 < 25 || e16 > 40 {
		t.Errorf("FP16 error = %.1f%%, paper 31.92%%", e16)
	}
	if d := e32 - e16; d < -1.5 || d > 1.5 {
		t.Errorf("error gap = %.2f%%, paper 0.09%%", d)
	}

	b, err := h.Fig7b()
	if err != nil {
		t.Fatal(err)
	}
	bm := findRow(t, b, "mean")
	diff := cell(t, bm[1])
	if diff <= 1e-4 || diff >= 2e-2 {
		t.Errorf("confidence diff = %.2e, paper 4.4e-3", diff)
	}
}

// TestFig8aShape asserts the power story: VPU img/W several times the
// CPU/GPU values at every batch size.
func TestFig8aShape(t *testing.T) {
	skipHeavy(t)
	tbl, err := harness(t).Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"1", "2", "4", "8"} {
		row := findRow(t, tbl, b)
		cpu, gpu, vpu := cell(t, row[1]), cell(t, row[2]), cell(t, row[3])
		if vpu < 3*gpu {
			t.Errorf("batch %s: VPU %.2f img/W not >3x GPU %.2f", b, vpu, gpu)
		}
		if vpu < 3*cpu {
			t.Errorf("batch %s: VPU %.2f img/W not >3x CPU %.2f", b, vpu, cpu)
		}
	}
	row1 := findRow(t, tbl, "1")
	if v := cell(t, row1[3]); v < 3.8 || v > 4.1 {
		t.Errorf("VPU img/W at 1 = %.2f, paper 3.97", v)
	}
}

// TestFig8bShape asserts the projection: VPU beats both baselines at
// 16 by roughly the paper's factors, and the simulated 16-stick run
// confirms the linear projection.
func TestFig8bShape(t *testing.T) {
	skipHeavy(t)
	tbl, err := harness(t).Fig8b()
	if err != nil {
		t.Fatal(err)
	}
	last := findRow(t, tbl, "16")
	cpu, gpu, vpu := cell(t, last[1]), cell(t, last[2]), cell(t, last[3])
	if last[4] != "projected" {
		t.Errorf("VPU@16 mode = %q", last[4])
	}
	if r := vpu / cpu; r < 3.0 || r > 3.9 {
		t.Errorf("VPU/CPU at 16 = %.2f, paper 3.4", r)
	}
	if r := vpu / gpu; r < 1.7 || r > 2.1 {
		t.Errorf("VPU/GPU at 16 = %.2f, paper 1.9", r)
	}
	if cpu < 42 || cpu > 47 {
		t.Errorf("CPU at 16 = %.1f, paper 44.5", cpu)
	}
	if gpu < 76 || gpu > 84 {
		t.Errorf("GPU at 16 = %.1f, paper 79.9", gpu)
	}
	if vpu < 145 || vpu > 162 {
		t.Errorf("VPU at 16 = %.1f, paper 153.0", vpu)
	}
}

func TestSummaryShape(t *testing.T) {
	skipHeavy(t)
	tbl, err := harness(t).Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("summary rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] == "" || row[2] == "" {
			t.Errorf("row %q has empty cells", row[0])
		}
	}
}

func TestAblationShape(t *testing.T) {
	skipHeavy(t)
	tbl, err := harness(t).Ablation()
	if err != nil {
		t.Fatal(err)
	}
	base := cell(t, findRow(t, tbl, "baseline (paper-faithful)")[1])
	overlap := cell(t, findRow(t, tbl, "overlap (2 in flight per stick)")[1])
	fifo1 := cell(t, findRow(t, tbl, "overlap + FIFO depth 1")[1])
	direct := cell(t, findRow(t, tbl, "all sticks on direct ports")[1])
	free := cell(t, findRow(t, tbl, "zero host thread overhead")[1])
	dyn := cell(t, findRow(t, tbl, "dynamic scheduling")[1])

	if overlap <= base {
		t.Errorf("overlap (%.1f) should beat baseline (%.1f)", overlap, base)
	}
	// FIFO depth 1 keeps the gain: execution dequeues its job, so one
	// slot still double-buffers the next input.
	if r := fifo1 / overlap; r < 0.98 || r > 1.02 {
		t.Errorf("FIFO depth 1 (%.1f) should match overlap depth 2 (%.1f)", fifo1, overlap)
	}
	if direct < base*0.999 {
		t.Errorf("direct ports (%.1f) should not be slower than hubs (%.1f)", direct, base)
	}
	if free <= base {
		t.Errorf("free host ops (%.1f) should beat baseline (%.1f)", free, base)
	}
	// Uniform workload: dynamic ≈ round robin.
	if r := dyn / base; r < 0.97 || r > 1.03 {
		t.Errorf("dynamic/static ratio = %.3f, expected ~1 on uniform work", r)
	}
}

func TestPrecisionAblationShape(t *testing.T) {
	skipHeavy(t)
	tbl, err := harness(t).PrecisionAblation(150)
	if err != nil {
		t.Fatal(err)
	}
	fp32 := cell(t, tbl.Rows[0][1])
	fp16 := cell(t, tbl.Rows[1][1])
	strict := cell(t, tbl.Rows[2][1])
	if d := fp16 - fp32; d < -3 || d > 3 {
		t.Errorf("FP32-acc FP16 error gap = %.2f%%, should be small", d)
	}
	if strict <= fp16 {
		t.Errorf("FP16-accumulate (%.2f%%) should degrade error vs FP32-accumulate (%.2f%%)", strict, fp16)
	}
	if _, err := harness(t).PrecisionAblation(0); err == nil {
		t.Error("zero images accepted")
	}
}

func TestCalibrateNoiseValidation(t *testing.T) {
	if _, _, err := CalibrateNoise(0, 1000, 4); err == nil {
		t.Error("target 0 accepted")
	}
	if _, _, err := CalibrateNoise(1.5, 1000, 4); err == nil {
		t.Error("target > 1 accepted")
	}
	if _, _, err := CalibrateNoise(0.3, 10, 4); err == nil {
		t.Error("tiny sample accepted")
	}
}

// TestMeasureErrorAtCalibratedSigma verifies the shipped calibration
// constant still lands near 32% (regression guard for any change to
// the network, dataset or numerics).
func TestMeasureErrorAtCalibratedSigma(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check skipped in -short")
	}
	got, err := MeasureErrorAt(19.48, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.29 || got > 0.35 {
		t.Errorf("error at calibrated sigma = %.3f, want ~0.32", got)
	}
}

func TestGEMMStudyShape(t *testing.T) {
	skipHeavy(t)
	tbl, err := harness(t).GEMMStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The tiny-tile ablation row must be memory-bound and slower than
	// the best fp16 plan; the CPU's Gflops/W must be far below the VPU.
	var badGflops, bestGflops, cpuGpw, vpuGpw float64
	for _, row := range tbl.Rows {
		switch {
		case strings.HasPrefix(row[0], "VPU 1024^3 fp16 (tile 16x16"):
			badGflops = cell(t, row[1])
			if row[3] != "memory" {
				t.Errorf("tiny tiles bound = %s", row[3])
			}
		case strings.HasPrefix(row[0], "VPU 1024^3 fp16 (tile") && !strings.Contains(row[0], "16x16"):
			bestGflops = cell(t, row[1])
			vpuGpw = cell(t, row[2])
		case strings.HasPrefix(row[0], "CPU"):
			cpuGpw = cell(t, row[2])
		}
	}
	if badGflops >= bestGflops {
		t.Errorf("untiled %.1f Gflops should trail tiled %.1f", badGflops, bestGflops)
	}
	if vpuGpw < 20*cpuGpw {
		t.Errorf("VPU %.1f Gflops/W not >20x CPU %.1f", vpuGpw, cpuGpw)
	}
}

func TestAblationThermalRow(t *testing.T) {
	skipHeavy(t)
	tbl, err := harness(t).Ablation()
	if err != nil {
		t.Fatal(err)
	}
	base := cell(t, findRow(t, tbl, "baseline (paper-faithful)")[1])
	hot := cell(t, findRow(t, tbl, "hot enclosure (thermal throttling)")[1])
	if hot >= base*0.95 {
		t.Errorf("thermal throttling (%.1f img/s) should visibly reduce throughput (%.1f)", hot, base)
	}
}
