package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/sim"
)

// The hedge experiment measures what speculative hedged requests buy
// on tail latency — Dean & Barroso's tail-at-scale defense applied to
// the USB-attached VPU rack. For each multi-VPU configuration it
// probes closed-loop capacity, then offers the same Poisson traffic
// as the resilience experiment (resilienceLoad of capacity) under the
// PR 4 fault levels (none, light, heavy), once per hedge variant:
//
//   - "off": no hedging — the baseline every variant is judged
//     against.
//   - "inf": hedging armed with trigger=∞ (core.HedgeNever). Never
//     fires; must match "off" bit for bit — the gate that proves the
//     hedging machinery stays out of the event stream.
//   - "t2"/"t4": fixed triggers at 2x and 4x the per-stick service
//     unit (sticks/capacity) — hedge an item once it has been in
//     flight that long.
//   - "p95": a live-quantile trigger — hedge an item older than the
//     p95 of observed completion ages (stats.Sample, exact), after a
//     20-completion warmup.
//
// Every variant of one (config, level) cell faces the identical
// arrival, jitter and fault sequences (seeds depend only on config
// and level), so the p99 and goodput deltas are attributable to
// hedging alone. All variants run under the self-healing recovery
// policy: hedging complements recovery — the duplicate answers in
// milliseconds while the reboot takes seconds — it does not replace
// it.

// HedgePoint is one (configuration, fault level, hedge variant)
// measurement — the machine-readable form behind the hedge table and
// the BENCH_PR5.json snapshot.
type HedgePoint struct {
	// Config names the device configuration ("vpu-4" = one 4-stick
	// NCSw target hedging across its own sticks, "pool-4x1" = a
	// health-aware pool of 4 single-stick groups hedging across
	// children under latency routing).
	Config string `json:"config"`
	// Faults is the injected fault level: "probe", "none", "light",
	// "heavy" (the PR 4 resilience plans).
	Faults string `json:"faults"`
	// Hedge is the variant: "probe", "off", "inf", "t2", "t4", "p95".
	Hedge string `json:"hedge"`
	// TriggerMS is the fixed hedge trigger in milliseconds (0 for
	// off/inf/probe; the p95 variant reports its quantile-independent
	// floor, 0).
	TriggerMS float64 `json:"trigger_ms"`
	// Injected counts the faults actually driven in.
	Injected int `json:"injected_faults"`
	// OfferedIPS is the Poisson arrival rate; AchievedIPS the measured
	// steady-state completion rate of delivered (deduplicated) results.
	OfferedIPS  float64 `json:"offered_img_per_s"`
	AchievedIPS float64 `json:"achieved_img_per_s"`
	// SLOMS is the per-item deadline; GoodputPct the percentage of
	// arrivals completing within it (fault drops count against it).
	SLOMS      float64 `json:"slo_ms"`
	GoodputPct float64 `json:"goodput_pct"`
	// Latency tail of delivered results, milliseconds.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// Hedge accounting: duplicates launched, completions where the
	// duplicate won, losing completions a device fully served, and
	// waste as a percentage of all device completions.
	Hedged     int     `json:"hedged"`
	HedgeWins  int     `json:"hedge_wins"`
	HedgeWaste int     `json:"hedge_waste"`
	WastePct   float64 `json:"hedge_waste_pct"`
	// Recovery-side counters, for cross-reading against BENCH_PR4.
	Retries    int `json:"retries"`
	FaultDrops int `json:"fault_drops"`
}

// hedgeVariant names one hedge policy of the sweep.
type hedgeVariant struct {
	name string
	hc   core.HedgeConfig
}

// hedgeBudget is the base hedge-volume cap for every firing variant,
// scaled live by fleet utilization (core.HedgeConfig.DynamicBudget):
// lightly loaded, up to this fraction of dispatches may be
// duplicated; near saturation the effective budget shrinks toward
// zero and hedging stops. Without any budget an aggressive trigger at
// 65% load feeds on its own queueing — each duplicate adds load, load
// adds latency, latency fires more triggers — and the hedge storm can
// saturate a perfectly healthy system (measured: a budgetless 2x
// trigger on the pool config duplicated half the offered items and
// collapsed goodput to 8% with no fault injected at all). The
// utilization scaling cuts that feedback loop at its source instead
// of merely rationing it.
const hedgeBudget = 0.15

// hedgeVariants builds the sweep for one configuration. unit is the
// per-stick service time at measured capacity (sticks/capacity).
func hedgeVariants(unit time.Duration) []hedgeVariant {
	return []hedgeVariant{
		{name: "off", hc: core.HedgeConfig{}},
		{name: "inf", hc: core.HedgeConfig{Trigger: core.HedgeNever}},
		{name: "t2", hc: core.HedgeConfig{Trigger: 2 * unit, Budget: hedgeBudget, DynamicBudget: true}},
		{name: "t4", hc: core.HedgeConfig{Trigger: 4 * unit, Budget: hedgeBudget, DynamicBudget: true}},
		{name: "p95", hc: core.HedgeConfig{Quantile: 0.95, Budget: hedgeBudget, DynamicBudget: true}},
	}
}

// HedgePoints runs the hedge experiment.
func (h *Harness) HedgePoints() ([]HedgePoint, error) {
	images := resilienceWindowScale * h.cfg.ImagesPerSubset
	var points []HedgePoint
	for _, cfg := range resilienceConfigs() {
		capacity, ready, err := h.resilienceCapacity(cfg, images)
		if err != nil {
			return nil, fmt.Errorf("bench: hedge capacity %s: %w", cfg.name, err)
		}
		slo := time.Duration(sloServiceMultiple * float64(cfg.sticks) / capacity * float64(time.Second))
		unit := time.Duration(float64(cfg.sticks) / capacity * float64(time.Second))
		points = append(points, HedgePoint{
			Config:      cfg.name,
			Faults:      "probe",
			Hedge:       "probe",
			AchievedIPS: round2(capacity),
			SLOMS:       round2(slo.Seconds() * 1e3),
		})
		rate := capacity * resilienceLoad
		window := time.Duration(float64(images) / rate * float64(time.Second))
		for _, level := range resilienceLevels() {
			for _, v := range hedgeVariants(unit) {
				pt, err := h.hedgePoint(cfg, level, v, images, rate, ready, window, slo)
				if err != nil {
					return nil, fmt.Errorf("bench: hedge %s %s/%s: %w", cfg.name, level.name, v.name, err)
				}
				points = append(points, pt)
			}
		}
	}
	return points, nil
}

// hedgePoint measures one (configuration, level, variant) cell. The
// run seed depends only on (config, level): every hedge variant of a
// cell faces identical device jitter, arrivals and faults.
func (h *Harness) hedgePoint(cfg resilienceConfig, level resilienceLevel, v hedgeVariant, images int, rate float64, ready time.Duration, window, slo time.Duration) (HedgePoint, error) {
	env := sim.NewEnv()
	col := core.NewCollector(false)
	col.SetSLO(slo)
	// hedgedPool is assigned once the target is built; for the pooled
	// configuration the drop hook consults its hedge state so a lost
	// duplicate is not miscounted as a loss.
	var hedgedPool *core.Pool
	rc := core.RecoveryConfig{
		Timeout:     resilienceTimeout,
		Recover:     true,
		MaxAttempts: resilienceAttempts,
		OnRetry:     func(core.Item, time.Duration) { col.NoteRetry() },
		OnDrop: func(item core.Item, _ time.Duration) {
			if hedgedPool != nil && !hedgedPool.HedgeItemLost(item.Index) {
				return
			}
			col.NoteDrop(core.DropFailed)
		},
		OnOutage: func(_ string, from, to time.Duration, rec bool) { col.NoteOutage(from, to, rec) },
	}
	hc := v.hc
	hc.OnHedge = func(core.Item, int, time.Duration) { col.NoteHedge() }
	hc.OnWin = func(core.Item, int, time.Duration) { col.NoteHedgeWin() }
	hc.OnWaste = func(core.Item, int, time.Duration) { col.NoteHedgeWaste() }
	runName := level.name
	target, devices, err := h.resilienceTarget(env, cfg, runName, rc, hc)
	if err != nil {
		return HedgePoint{}, err
	}
	hedgedPool, _ = target.(*core.Pool)
	names := make([]string, len(devices))
	reg := fault.Registry{}
	for i, d := range devices {
		names[i] = d.Name()
		reg.Add(d.Name(), d)
	}
	plan := level.plan(ready, window, names)
	log, err := fault.Apply(env, plan, rng.New(h.cfg.Seed).Derive("resilience/faults/"+cfg.name+"/"+runName), reg, nil)
	if err != nil {
		return HedgePoint{}, err
	}
	ds, err := h.perfDatasetSized(images)
	if err != nil {
		return HedgePoint{}, err
	}
	src, err := core.NewDatasetSource(ds, 0, images, false)
	if err != nil {
		return HedgePoint{}, err
	}
	arr := core.DelayedArrivals(core.PoissonArrivals(rate), ready)
	asrc, err := core.NewArrivalSource(env, src, arr,
		rng.New(h.cfg.Seed).Derive("resilience/"+cfg.name+"/"+runName))
	if err != nil {
		return HedgePoint{}, err
	}
	job := target.Start(env, asrc, col.Sink())
	env.Run()
	if job.Err != nil {
		return HedgePoint{}, job.Err
	}
	lat := col.Latency()
	ms := func(d time.Duration) float64 { return round2(d.Seconds() * 1e3) }
	triggerMS := 0.0
	if v.hc.Trigger > 0 && v.hc.Trigger != core.HedgeNever {
		triggerMS = round2(v.hc.Trigger.Seconds() * 1e3)
	}
	return HedgePoint{
		Config:      cfg.name,
		Faults:      level.name,
		Hedge:       v.name,
		TriggerMS:   triggerMS,
		Injected:    log.Count(),
		OfferedIPS:  round2(rate),
		AchievedIPS: round2(job.Throughput()),
		SLOMS:       round2(slo.Seconds() * 1e3),
		GoodputPct:  round2(col.Goodput() * 100),
		P50MS:       ms(lat.P50),
		P99MS:       ms(lat.P99),
		Hedged:      col.Hedged,
		HedgeWins:   col.HedgeWins,
		HedgeWaste:  col.HedgeWaste,
		WastePct:    round2(col.HedgeWasteRate() * 100),
		Retries:     col.Retries,
		FaultDrops:  col.FaultDrops,
	}, nil
}

// Hedge renders the hedge experiment as a table: p99 and goodput per
// hedge variant and fault level, with the hedge volume and waste that
// bought them.
func (h *Harness) Hedge() (*Table, error) {
	points, err := h.HedgePoints()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "hedge",
		Title: "Hedged requests: tail latency vs hedge trigger, with and without faults",
		Columns: []string{
			"config", "faults", "hedge", "trigger ms", "goodput %", "p50 ms", "p99 ms",
			"hedged", "wins", "waste %", "retries", "dropped",
		},
		Notes: []string{
			fmt.Sprintf("images per point: %d; Poisson arrivals at %.0f%% of closed-loop capacity start after setup",
				resilienceWindowScale*h.cfg.ImagesPerSubset, resilienceLoad*100),
			"all variants run under self-healing recovery (2s heartbeat); hedging answers in milliseconds, the reboot in seconds",
			"t2/t4 = fixed trigger at 2x/4x the per-stick service unit; p95 = live-quantile trigger after a 20-completion warmup",
			"every variant of one (config, faults) cell faces identical arrivals, jitter and faults",
			fmt.Sprintf("firing variants carry a dynamic hedge budget (%.0f%% base, scaled by fleet headroom to zero at saturation): an unbudgeted aggressive trigger feeds on its own queueing and can saturate a healthy system", hedgeBudget*100),
			"hedging pays most on the monolithic vpu-4 target; the health-aware pool already routes around outages, so duplicates there mostly buy waste",
		},
	}
	type key struct{ config, faults string }
	p99 := map[key]map[string]float64{}
	full := map[key]map[string]HedgePoint{}
	for _, p := range points {
		if p.Hedge == "probe" {
			t.AddRow(p.Config, "-", "capacity",
				fmt.Sprintf("%.1f img/s", p.AchievedIPS), fmt.Sprintf("slo=%.0fms", p.SLOMS),
				"-", "-", "-", "-", "-", "-", "-")
			continue
		}
		k := key{p.Config, p.Faults}
		if p99[k] == nil {
			p99[k] = map[string]float64{}
			full[k] = map[string]HedgePoint{}
		}
		p99[k][p.Hedge] = p.P99MS
		full[k][p.Hedge] = p
		t.AddRow(
			p.Config, p.Faults, p.Hedge,
			fmt.Sprintf("%.0f", p.TriggerMS),
			fmt.Sprintf("%.1f", p.GoodputPct),
			fmt.Sprintf("%.1f", p.P50MS),
			fmt.Sprintf("%.1f", p.P99MS),
			fmt.Sprintf("%d", p.Hedged),
			fmt.Sprintf("%d", p.HedgeWins),
			fmt.Sprintf("%.1f", p.WastePct),
			fmt.Sprintf("%d", p.Retries),
			fmt.Sprintf("%d", p.FaultDrops),
		)
	}
	for _, p := range points {
		k := key{p.Config, p.Faults}
		if p.Hedge != "off" || p.Faults == "none" || p.Faults == "probe" {
			continue
		}
		best, bestName := p.P99MS, ""
		for _, name := range []string{"t2", "t4", "p95"} {
			if v, ok := p99[k][name]; ok && v < best {
				best, bestName = v, name
			}
		}
		if bestName != "" {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s/%s: hedging (%s) cuts p99 from %.0fms to %.0fms (%.1fx)",
				p.Config, p.Faults, bestName, p.P99MS, best, p.P99MS/best))
		}
	}
	// The bit-for-bit claim is gated on the complete measurement, not
	// just the rounded p99 column: every field of each inf point must
	// equal its off point, label aside.
	allMatch := true
	for _, m := range full {
		off, inf := m["off"], m["inf"]
		inf.Hedge = off.Hedge
		if off != inf {
			allMatch = false
		}
	}
	if allMatch {
		t.Notes = append(t.Notes, "trigger=∞ rows match the unhedged baseline bit for bit (hedging armed is free until it fires)")
	}
	return t, nil
}
