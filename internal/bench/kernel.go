package bench

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// The kernel experiment measures the simulation kernel itself — the
// component every other number in this reproduction flows through
// (DESIGN.md §4, §9). Each workload below isolates one hot path of
// internal/sim: event scheduling, cancellable timers, queue put/get,
// queue timeouts, process context switches, and an end-to-end
// open-loop arrival pipeline. The workloads are plain functions over
// the public sim API so the same definitions back both the
// go-test-bench suite (internal/sim/bench_test.go) and the
// machine-readable kernel snapshot (ncsw-bench -kernel -json →
// BENCH_PR7.json).
//
// Workload shape notes:
//   - Event times are scattered by a seeded source, so the scheduler
//     heap sees realistic out-of-order inserts, not the ascending
//     best case.
//   - Batch sizes are fixed small constants: the heap works at a
//     realistic occupancy (hundreds of pending events, like a busy
//     multi-VPU run) instead of growing with the iteration count.
//   - Every workload returns a count derived from the events it
//     actually dispatched, so the compiler cannot elide the work and
//     callers can sanity-check completeness.

// kernelBatch is the pending-event population the scheduling workloads
// maintain: large enough to exercise heap sift depth, small enough to
// stay cache-resident like a real run.
const kernelBatch = 512

// KernelEventSchedule schedules and dispatches n callback-only events
// in kernelBatch waves with scattered timestamps, returning how many
// fired. It isolates Env.schedule + the Env.Run dispatch loop — the
// innermost path of the whole simulator.
func KernelEventSchedule(n int) int {
	e := sim.NewEnv()
	src := rng.New(7)
	fired := 0
	fn := func() { fired++ }
	var now time.Duration
	for done := 0; done < n; {
		m := kernelBatch
		if n-done < m {
			m = n - done
		}
		for i := 0; i < m; i++ {
			e.At(now+time.Duration(1+src.Intn(4*kernelBatch))*time.Microsecond, fn)
		}
		e.Run()
		now = e.Now()
		done += m
	}
	return fired
}

// KernelTimerCancelFire arms n cancellable timers in kernelBatch waves
// with scattered deadlines, cancels three of every four before
// running, and dispatches the rest — the Queue.GetWithin timeout
// pattern, where the deadline usually never arrives. It returns the
// number of timers that fired.
func KernelTimerCancelFire(n int) int {
	e := sim.NewEnv()
	src := rng.New(11)
	fired := 0
	fn := func() { fired++ }
	cancels := make([]func(), 0, kernelBatch)
	var now time.Duration
	for done := 0; done < n; {
		m := kernelBatch
		if n-done < m {
			m = n - done
		}
		cancels = cancels[:0]
		for i := 0; i < m; i++ {
			at := now + time.Duration(1+src.Intn(4*kernelBatch))*time.Microsecond
			cancel := e.AtCancelable(at, fn)
			if i%4 != 0 {
				cancels = append(cancels, cancel)
			}
		}
		for _, cancel := range cancels {
			cancel()
		}
		e.Run()
		now = e.Now()
		done += m
	}
	return fired
}

// kernelQueueResident is the steady-state occupancy of the put/get
// workload: a realistic feed-queue backlog, so the slice-shift cost of
// a naive queue (copying live items on every regrowth) is visible.
const kernelQueueResident = 32

// KernelQueuePutGet performs n TryPut+TryGet pairs against a queue
// holding kernelQueueResident items in steady state — the raw buffer
// path under churn, no processes involved. It returns the number of
// successful gets.
func KernelQueuePutGet(n int) int {
	e := sim.NewEnv()
	q := sim.NewQueue[int](e, "bench/kernel-q", 0)
	for i := 0; i < kernelQueueResident; i++ {
		q.TryPut(i)
	}
	got := 0
	for i := 0; i < n; i++ {
		q.TryPut(i)
		if _, ok := q.TryGet(); ok {
			got++
		}
	}
	return got
}

// KernelQueueTimeout runs a consumer doing n GetWithin waits against a
// producer that satisfies every other wait just before its deadline —
// half the timers fire (timeout path), half are cancelled by an
// arriving item (the common case). It returns the number of items
// actually received.
func KernelQueueTimeout(n int) int {
	e := sim.NewEnv()
	q := sim.NewQueue[int](e, "bench/kernel-timeout", 0)
	const wait = 50 * time.Microsecond
	got := 0
	e.Process("producer", func(p *sim.Proc) {
		// One item per two consumer waits: sleep through one full
		// timeout window, then land an item inside the next one.
		for i := 0; i < n/2; i++ {
			p.Sleep(wait + wait/2)
			q.Put(p, i)
			p.Sleep(wait / 4)
		}
	})
	e.Process("consumer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if _, ok := q.GetWithin(p, wait); ok {
				got++
			}
		}
	})
	e.Run()
	return got
}

// KernelProcessSwitch runs one process through n Sleep(1µs) cycles:
// each iteration is one schedule + one full park/resume context
// switch, the process-handoff cost every blocking primitive pays. It
// returns the number of completed sleeps.
func KernelProcessSwitch(n int) int {
	e := sim.NewEnv()
	done := 0
	e.Process("switcher", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(time.Microsecond)
			done++
		}
	})
	e.Run()
	return done
}

// KernelArrivals drives an end-to-end open-loop pipeline: a generator
// emits n arrivals at a fixed 100µs period into an unbounded queue,
// and four workers drain it at a 350µs service time each (≈88% device
// utilization, the shape of the serving experiments). It returns the
// number of items served — the ops metric is arrivals through the
// whole kernel: scheduling, queueing, and process switches combined.
func KernelArrivals(n int) int {
	const (
		workers = 4
		period  = 100 * time.Microsecond
		service = 350 * time.Microsecond
	)
	e := sim.NewEnv()
	q := sim.NewQueue[int](e, "bench/kernel-arrivals", 0)
	served := 0
	e.Process("generator", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(period)
			q.Put(p, i)
		}
		for i := 0; i < workers; i++ {
			q.Put(p, -1) // end-of-stream sentinel, one per worker
		}
	})
	for w := 0; w < workers; w++ {
		e.Process("worker", func(p *sim.Proc) {
			for {
				item := q.Get(p)
				if item == -1 {
					return
				}
				p.Sleep(service)
				served++
			}
		})
	}
	e.Run()
	return served
}

// KernelPoint is one kernel microbench measurement — the
// machine-readable form behind the kernel table and the BENCH_PR7.json
// snapshot. Baseline* fields carry the pre-rewrite kernel's numbers
// (container/heap scheduler, two-channel handoff, slice-shift queue),
// measured on the same workload definitions at the PR 6 tree; the
// unprefixed fields are measured live.
type KernelPoint struct {
	// Bench names the workload ("event-schedule", "timer-cancel-fire",
	// "queue-putget", "queue-timeout", "process-switch", "arrivals").
	Bench string `json:"bench"`
	// Ops is how many operations the measured run executed.
	Ops int `json:"ops"`
	// OpsPerSec and NsPerOp describe measured speed; AllocsPerOp and
	// BytesPerOp the measured per-op heap traffic (exact floats, not
	// go-test's truncated integers).
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Baseline fields: the same metrics on the pre-rewrite kernel.
	BaselineOpsPerSec   float64 `json:"baseline_ops_per_sec"`
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op"`
	BaselineBytesPerOp  float64 `json:"baseline_bytes_per_op"`
	// Speedup is OpsPerSec / BaselineOpsPerSec.
	Speedup float64 `json:"speedup"`
}

// kernelBaseline is a pre-rewrite measurement of one workload.
type kernelBaseline struct {
	nsPerOp     float64
	allocsPerOp float64
	bytesPerOp  float64
}

// kernelBaselines are the pre-rewrite kernel's numbers on these exact
// workload definitions: container/heap scheduler with `any` boxing on
// every push and pop, two-channel park/resume handoff, slice-shift
// queue, *bool-flag timer cancellation. Measured at the PR 6 tree
// (commit 0237adc) through the same testing.Benchmark capture path
// KernelPoints uses (see measureKernel and the capture helper in
// kernel_baseline_capture_test.go) on the reference
// CI-class machine (Intel Xeon 2.70GHz, linux/amd64, go1.24) — the
// same machine and measurement path that produced the
// committed BENCH_PR7.json, so the before/after columns of that
// snapshot are directly comparable. Alloc and byte figures are exact
// floats (MemAllocs/N), not go-test's truncated integers.
var kernelBaselines = map[string]kernelBaseline{
	"event-schedule":    {nsPerOp: 364.84, allocsPerOp: 2, bytesPerOp: 96.01},
	"timer-cancel-fire": {nsPerOp: 449.21, allocsPerOp: 4, bytesPerOp: 113.02},
	"queue-putget":      {nsPerOp: 12.85, allocsPerOp: 0.0313, bytesPerOp: 16},
	"queue-timeout":     {nsPerOp: 1707.03, allocsPerOp: 11, bytesPerOp: 364},
	"process-switch":    {nsPerOp: 796.87, allocsPerOp: 2, bytesPerOp: 96},
	"arrivals":          {nsPerOp: 2341.68, allocsPerOp: 8.0001, bytesPerOp: 304.01},
}

// kernelWorkloads lists the measurable workloads in report order.
func kernelWorkloads() []struct {
	name string
	fn   func(n int) int
} {
	return []struct {
		name string
		fn   func(n int) int
	}{
		{"event-schedule", KernelEventSchedule},
		{"timer-cancel-fire", KernelTimerCancelFire},
		{"queue-putget", KernelQueuePutGet},
		{"queue-timeout", KernelQueueTimeout},
		{"process-switch", KernelProcessSwitch},
		{"arrivals", KernelArrivals},
	}
}

// KernelPoints measures every kernel workload on this machine and
// pairs each with its committed pre-rewrite baseline. Unlike every
// other experiment in this package the numbers are wall-clock (that is
// the entire point: how fast does the deterministic kernel itself
// run), so two emissions are not byte-identical — the determinism
// gates cover the kernel's simulated outputs instead (the hedge and
// resilience golden tests).
func (h *Harness) KernelPoints() ([]KernelPoint, error) {
	var points []KernelPoint
	for _, w := range kernelWorkloads() {
		points = append(points, measureKernel(w.name, w.fn))
	}
	return points, nil
}

// measureKernel benchmarks one workload via testing.Benchmark — the
// stdlib measurement loop (calibrated iteration counts, exact
// MemAllocs deltas) without this package having to read the wall clock
// itself.
func measureKernel(name string, fn func(n int) int) KernelPoint {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b.N)
	})
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	base := kernelBaselines[name]
	pt := KernelPoint{
		Bench:               name,
		Ops:                 r.N,
		OpsPerSec:           round2(1e9 / ns),
		NsPerOp:             round2(ns),
		AllocsPerOp:         round4(float64(r.MemAllocs) / float64(r.N)),
		BytesPerOp:          round2(float64(r.MemBytes) / float64(r.N)),
		BaselineNsPerOp:     base.nsPerOp,
		BaselineOpsPerSec:   round2(1e9 / base.nsPerOp),
		BaselineAllocsPerOp: base.allocsPerOp,
		BaselineBytesPerOp:  base.bytesPerOp,
	}
	pt.Speedup = round2(pt.OpsPerSec / pt.BaselineOpsPerSec)
	return pt
}

// Kernel renders the kernel microbench experiment as a table:
// before/after ops/sec and allocs/op per hot path.
func (h *Harness) Kernel() (*Table, error) {
	points, err := h.KernelPoints()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "kernel",
		Title: "Simulation-kernel hot paths: rewritten scheduler/handoff/queues vs the PR 6 kernel",
		Columns: []string{
			"bench", "ops/s", "was ops/s", "speedup",
			"allocs/op", "was allocs/op", "B/op", "was B/op",
		},
		Notes: []string{
			"wall-clock measurement (testing.Benchmark, ~1s per workload): the one experiment whose numbers vary by machine",
			"baselines: container/heap + any-boxing scheduler, two-channel handoff, slice-shift queue at the PR 6 tree (see kernelBaselines)",
			"determinism is gated separately: the rewritten kernel must replay the hedge/resilience experiments byte-identically (golden tests)",
		},
	}
	for _, p := range points {
		t.AddRow(
			p.Bench,
			fmt.Sprintf("%.0f", p.OpsPerSec),
			fmt.Sprintf("%.0f", p.BaselineOpsPerSec),
			fmt.Sprintf("%.1fx", p.Speedup),
			fmt.Sprintf("%.4g", p.AllocsPerOp),
			fmt.Sprintf("%.4g", p.BaselineAllocsPerOp),
			fmt.Sprintf("%.4g", p.BytesPerOp),
			fmt.Sprintf("%.4g", p.BaselineBytesPerOp),
		)
	}
	return t, nil
}

// round4 rounds to 4 decimal places (alloc counts per op can be
// legitimately fractional and small).
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }
