package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ncs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/usb"
)

// The resilience experiment measures serving dependability under
// injected hardware faults — the availability axis the ROADMAP's
// production north-star adds to the paper's throughput story. For
// each multi-VPU configuration it probes closed-loop capacity, then
// offers Poisson traffic at resilienceLoad of capacity while a fault
// plan (empty, light, heavy) plays out, once per recovery policy:
//
//   - "none":      health monitoring off entirely — only legal for the
//     empty plan (a hang would deadlock), and the control
//     the empty-plan rows must match bit for bit.
//   - "fail-stop": failures are detected (completion timeout) but the
//     device is abandoned; in-flight items are dropped and
//     survivors absorb the load.
//   - "recovery":  the self-healing pipeline — reset, firmware
//     re-upload, RTOS boot, graph re-allocation, in-flight
//     redelivery within the attempt budget.
//
// Both policies face the identical arrival sequence and the identical
// injected fault sequence (seeds depend only on config and fault
// level), so the goodput gap is attributable to recovery alone.

// resilienceLoad is the offered-load fraction of closed-loop
// capacity: high enough that losing one of four sticks without
// recovery leaves the survivors almost no headroom (0.65 × 4/3 ≈ 87%
// of the degraded capacity, so the outage backlog barely drains),
// low enough that the healthy — or healed — system serves comfortably
// and works the backlog off at speed.
const resilienceLoad = 0.65

// resilienceWindowScale stretches the serving window of this
// experiment (images = scale × ImagesPerSubset): the goodput gap
// between healing and abandoning a device is in the post-recovery
// tail, which a too-short window would truncate.
const resilienceWindowScale = 2

// resilienceTimeout is the completion heartbeat of the monitored
// variants; resilienceAttempts the per-item delivery budget.
const (
	resilienceTimeout  = 2 * time.Second
	resilienceAttempts = 3
)

// ResiliencePoint is one (configuration, fault level, recovery
// policy) measurement — the machine-readable form behind the
// resilience table and the BENCH_PR4.json snapshot.
type ResiliencePoint struct {
	// Config names the device configuration ("vpu-4" = one 4-stick
	// NCSw target, "pool-4x1" = a health-aware pool of 4 single-stick
	// groups under latency routing).
	Config string `json:"config"`
	// Recovery is the policy: "probe", "none", "fail-stop", "recovery".
	Recovery string `json:"recovery"`
	// Faults is the injected fault level: "probe", "none", "light",
	// "heavy".
	Faults string `json:"faults"`
	// Injected counts the faults actually driven in.
	Injected int `json:"injected_faults"`
	// OfferedIPS is the Poisson arrival rate; AchievedIPS the measured
	// steady-state completion rate.
	OfferedIPS  float64 `json:"offered_img_per_s"`
	AchievedIPS float64 `json:"achieved_img_per_s"`
	// SLOMS is the per-item deadline; GoodputPct the percentage of
	// arrivals completing within it (fault drops count against it).
	SLOMS      float64 `json:"slo_ms"`
	GoodputPct float64 `json:"goodput_pct"`
	// Latency tail, milliseconds.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// Availability counters: redeliveries, fault-attributed drops,
	// detected outages and how many recovered.
	Retries    int `json:"retries"`
	FaultDrops int `json:"fault_drops"`
	Outages    int `json:"outages"`
	Recovered  int `json:"recovered"`
	// MTTRMS is the mean detection-to-rejoin time of recovered
	// outages; UptimePct the device-time fraction the sticks were
	// serviceable (abandoned sticks charged to the end of the run).
	MTTRMS    float64 `json:"mttr_ms"`
	UptimePct float64 `json:"uptime_pct"`
}

// resilienceConfig is one device configuration of the experiment.
type resilienceConfig struct {
	name   string
	sticks int
	pooled bool // pool of single-stick children vs one multi-stick target
}

func resilienceConfigs() []resilienceConfig {
	return []resilienceConfig{
		{name: "vpu-4", sticks: 4, pooled: false},
		{name: "pool-4x1", sticks: 4, pooled: true},
	}
}

// resilienceLevel describes one fault intensity; plan builds the
// deterministic scenario relative to the measured setup time and the
// expected serving window.
type resilienceLevel struct {
	name string
	plan func(ready, window time.Duration, devices []string) fault.Plan
}

func resilienceLevels() []resilienceLevel {
	frac := func(ready, window time.Duration, f float64) time.Duration {
		return ready + time.Duration(f*float64(window))
	}
	return []resilienceLevel{
		{name: "none", plan: func(time.Duration, time.Duration, []string) fault.Plan {
			return fault.Plan{}
		}},
		// light: one stick hangs a quarter into the window — the
		// canonical wedged-firmware incident.
		{name: "light", plan: func(ready, window time.Duration, devices []string) fault.Plan {
			return fault.Plan{Events: []fault.Event{
				{Device: devices[1], Kind: fault.StickHang, At: frac(ready, window, 0.25)},
			}}
		}},
		// heavy: a straggler window, a hang, a USB link drop and a
		// transient-error burst, plus a seeded stochastic tail drawing
		// further hangs/drops — the bad day at the rack.
		{name: "heavy", plan: func(ready, window time.Duration, devices []string) fault.Plan {
			return fault.Plan{
				Events: []fault.Event{
					{Device: devices[3], Kind: fault.Slowdown, At: frac(ready, window, 0.10),
						Factor: 3, Duration: time.Duration(0.2 * float64(window))},
					{Device: devices[1], Kind: fault.StickHang, At: frac(ready, window, 0.20)},
					{Device: devices[2], Kind: fault.LinkDrop, At: frac(ready, window, 0.40)},
					{Device: devices[0], Kind: fault.TransientError, At: frac(ready, window, 0.55), Count: 3},
				},
				Processes: []fault.Process{{
					Devices: devices,
					Kinds:   []fault.Kind{fault.StickHang, fault.LinkDrop},
					Rate:    1.2 / window.Seconds(),
					Start:   frac(ready, window, 0.6),
					End:     frac(ready, window, 1.0),
				}},
			}
		}},
	}
}

// ResiliencePoints runs the resilience experiment.
func (h *Harness) ResiliencePoints() ([]ResiliencePoint, error) {
	images := resilienceWindowScale * h.cfg.ImagesPerSubset
	var points []ResiliencePoint
	for _, cfg := range resilienceConfigs() {
		capacity, ready, err := h.resilienceCapacity(cfg, images)
		if err != nil {
			return nil, fmt.Errorf("bench: resilience capacity %s: %w", cfg.name, err)
		}
		slo := time.Duration(sloServiceMultiple * float64(cfg.sticks) / capacity * float64(time.Second))
		points = append(points, ResiliencePoint{
			Config:      cfg.name,
			Recovery:    "probe",
			Faults:      "probe",
			AchievedIPS: round2(capacity),
			SLOMS:       round2(slo.Seconds() * 1e3),
			UptimePct:   100,
		})
		rate := capacity * resilienceLoad
		window := time.Duration(float64(images) / rate * float64(time.Second))
		for _, level := range resilienceLevels() {
			policies := []string{"fail-stop", "recovery"}
			if level.name == "none" {
				// The unmonitored control: the empty-plan rows of both
				// policies must match it bit for bit.
				policies = append([]string{"none"}, policies...)
			}
			for _, policy := range policies {
				pt, err := h.resiliencePoint(cfg, level, policy, images, rate, ready, window, slo)
				if err != nil {
					return nil, fmt.Errorf("bench: resilience %s %s/%s: %w", cfg.name, level.name, policy, err)
				}
				points = append(points, pt)
			}
		}
	}
	return points, nil
}

// resilienceCapacity probes a configuration's closed-loop throughput
// and setup time, fault-free and unmonitored. The probe is
// deterministic and shared by the resilience and hedge experiments,
// so the result is memoized per (config, images) on the harness — an
// all-experiments run pays each full closed-loop simulation once.
func (h *Harness) resilienceCapacity(cfg resilienceConfig, images int) (float64, time.Duration, error) {
	type probe struct {
		capacity float64
		ready    time.Duration
	}
	key := fmt.Sprintf("%s/%d", cfg.name, images)
	if h.capCache == nil {
		h.capCache = map[string]any{}
	}
	if p, ok := h.capCache[key]; ok {
		pr := p.(probe)
		return pr.capacity, pr.ready, nil
	}
	env := sim.NewEnv()
	target, _, err := h.resilienceTarget(env, cfg, "capacity", core.RecoveryConfig{}, core.HedgeConfig{})
	if err != nil {
		return 0, 0, err
	}
	ds, err := h.perfDatasetSized(images)
	if err != nil {
		return 0, 0, err
	}
	src, err := core.NewDatasetSource(ds, 0, images, false)
	if err != nil {
		return 0, 0, err
	}
	job := target.Start(env, src, func(core.Result) {})
	env.Run()
	if job.Err != nil {
		return 0, 0, job.Err
	}
	h.capCache[key] = probe{capacity: job.Throughput(), ready: job.ReadyAt}
	return job.Throughput(), job.ReadyAt, nil
}

// resiliencePoint measures one (configuration, level, policy) cell.
func (h *Harness) resiliencePoint(cfg resilienceConfig, level resilienceLevel, policy string, images int, rate float64, ready time.Duration, window, slo time.Duration) (ResiliencePoint, error) {
	env := sim.NewEnv()
	col := core.NewCollector(false)
	col.SetSLO(slo)
	rc := core.RecoveryConfig{}
	if policy != "none" {
		rc = core.RecoveryConfig{
			Timeout:     resilienceTimeout,
			Recover:     policy == "recovery",
			MaxAttempts: resilienceAttempts,
			OnRetry:     func(core.Item, time.Duration) { col.NoteRetry() },
			OnDrop:      func(core.Item, time.Duration) { col.NoteDrop(core.DropFailed) },
			OnOutage:    func(_ string, from, to time.Duration, rec bool) { col.NoteOutage(from, to, rec) },
		}
	}
	// The run seed depends only on (config, level): both policies face
	// identical device jitter, identical arrivals, identical faults.
	runName := level.name
	target, devices, err := h.resilienceTarget(env, cfg, runName, rc, core.HedgeConfig{})
	if err != nil {
		return ResiliencePoint{}, err
	}
	names := make([]string, len(devices))
	reg := fault.Registry{}
	for i, d := range devices {
		names[i] = d.Name()
		reg.Add(d.Name(), d)
	}
	plan := level.plan(ready, window, names)
	log, err := fault.Apply(env, plan, rng.New(h.cfg.Seed).Derive("resilience/faults/"+cfg.name+"/"+runName), reg, nil)
	if err != nil {
		return ResiliencePoint{}, err
	}
	ds, err := h.perfDatasetSized(images)
	if err != nil {
		return ResiliencePoint{}, err
	}
	src, err := core.NewDatasetSource(ds, 0, images, false)
	if err != nil {
		return ResiliencePoint{}, err
	}
	arr := core.DelayedArrivals(core.PoissonArrivals(rate), ready)
	asrc, err := core.NewArrivalSource(env, src, arr,
		rng.New(h.cfg.Seed).Derive("resilience/"+cfg.name+"/"+runName))
	if err != nil {
		return ResiliencePoint{}, err
	}
	job := target.Start(env, asrc, col.Sink())
	env.Run()
	// Fail-stop abandonments surface as job errors by design; the
	// degradation is the measurement, so they do not fail the
	// experiment — the outage/drop counters carry the story.
	lat := col.Latency()
	ms := func(d time.Duration) float64 { return round2(d.Seconds() * 1e3) }
	uptime := 100.0
	if span := job.Span(); span > 0 && cfg.sticks > 0 {
		down := col.DowntimeThrough(job.DoneAt)
		uptime = 100 * (1 - float64(down)/float64(time.Duration(cfg.sticks)*span))
		if uptime < 0 {
			uptime = 0
		}
	}
	return ResiliencePoint{
		Config:      cfg.name,
		Recovery:    policy,
		Faults:      level.name,
		Injected:    log.Count(),
		OfferedIPS:  round2(rate),
		AchievedIPS: round2(job.Throughput()),
		SLOMS:       round2(slo.Seconds() * 1e3),
		GoodputPct:  round2(col.Goodput() * 100),
		P50MS:       ms(lat.P50),
		P99MS:       ms(lat.P99),
		Retries:     col.Retries,
		FaultDrops:  col.FaultDrops,
		Outages:     col.Outages,
		Recovered:   col.Repaired,
		MTTRMS:      ms(col.MTTR()),
		UptimePct:   round2(uptime),
	}, nil
}

// resilienceTarget builds one configuration's target and returns its
// devices (for the fault registry). Device jitter is seeded per
// (config, runName) so distinct cells draw independent jitter while
// the two policies of one cell stay identical. hc arms hedged
// requests: across sticks for the multi-stick target, across children
// for the pool (the hedge experiment; the resilience experiment
// passes the zero value).
func (h *Harness) resilienceTarget(env *sim.Env, cfg resilienceConfig, runName string, rc core.RecoveryConfig, hc core.HedgeConfig) (core.Target, []*ncs.Device, error) {
	seed := rng.New(h.cfg.Seed).Derive("resilience/" + cfg.name + "/run/" + runName)
	_, ports, err := usb.Testbed(env, usb.DefaultConfig(), cfg.sticks)
	if err != nil {
		return nil, nil, err
	}
	devices := make([]*ncs.Device, cfg.sticks)
	for i, port := range ports {
		d, err := ncs.NewDevice(env, port.Name(), port, ncs.DefaultConfig(), seed)
		if err != nil {
			return nil, nil, err
		}
		devices[i] = d
	}
	opts := core.DefaultVPUOptions()
	opts.Recovery = rc
	if !cfg.pooled {
		opts.Hedge = hc
		t, err := core.NewVPUTarget(devices, h.blob, opts)
		return t, devices, err
	}
	children := make([]core.Target, cfg.sticks)
	for i := range children {
		t, err := core.NewVPUTarget(devices[i:i+1], h.blob, opts)
		if err != nil {
			return nil, nil, err
		}
		children[i] = t
	}
	pool, err := core.NewPool(children, core.PoolOptions{Routing: core.RouteLatency, Hedge: hc})
	return pool, devices, err
}

// Resilience renders the resilience experiment as a table: goodput
// and tail latency per fault level, self-healing recovery vs
// fail-stop abandonment, with availability metrics.
func (h *Harness) Resilience() (*Table, error) {
	points, err := h.ResiliencePoints()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "resilience",
		Title: "Serving under injected faults: self-healing recovery vs fail-stop",
		Columns: []string{
			"config", "faults", "recovery", "goodput %", "p99 ms",
			"outages", "recovered", "retries", "dropped", "mttr ms", "uptime %",
		},
		Notes: []string{
			fmt.Sprintf("images per point: %d; Poisson arrivals at %.0f%% of closed-loop capacity start after setup",
				resilienceWindowScale*h.cfg.ImagesPerSubset, resilienceLoad*100),
			fmt.Sprintf("monitored policies: completion timeout %v, %d delivery attempts per item",
				resilienceTimeout, resilienceAttempts),
			"both policies face the identical arrival and fault sequences; goodput counts fault drops against arrivals",
			"recovery pays the real outage cost: reset, firmware re-upload, RTOS boot, graph re-allocation",
		},
	}
	type key struct{ config, faults string }
	good := map[key]map[string]float64{}
	for _, p := range points {
		if p.Recovery == "probe" {
			t.AddRow(p.Config, "-", "capacity",
				fmt.Sprintf("%.1f img/s", p.AchievedIPS), "-", "-", "-", "-", "-", "-",
				fmt.Sprintf("slo=%.0fms", p.SLOMS))
			continue
		}
		k := key{p.Config, p.Faults}
		if good[k] == nil {
			good[k] = map[string]float64{}
		}
		good[k][p.Recovery] = p.GoodputPct
		t.AddRow(
			p.Config, p.Faults, p.Recovery,
			fmt.Sprintf("%.1f", p.GoodputPct),
			fmt.Sprintf("%.1f", p.P99MS),
			fmt.Sprintf("%d", p.Outages),
			fmt.Sprintf("%d", p.Recovered),
			fmt.Sprintf("%d", p.Retries),
			fmt.Sprintf("%d", p.FaultDrops),
			fmt.Sprintf("%.0f", p.MTTRMS),
			fmt.Sprintf("%.1f", p.UptimePct),
		)
	}
	for _, cfg := range resilienceConfigs() {
		for _, lvl := range []string{"light", "heavy"} {
			g := good[key{cfg.name, lvl}]
			if g == nil {
				continue
			}
			if r, f := g["recovery"], g["fail-stop"]; r > f {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"%s/%s: recovery holds goodput at %.1f%% vs %.1f%% fail-stop", cfg.name, lvl, r, f))
			}
		}
		g := good[key{cfg.name, "none"}]
		if g != nil && g["none"] == g["fail-stop"] && g["none"] == g["recovery"] {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: with an empty plan all three policies are identical (monitoring is free)", cfg.name))
		}
	}
	return t, nil
}
