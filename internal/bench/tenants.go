package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/imagenet"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/tenant"
)

// tenantLoads are the aggregate offered-load fractions of the fleet's
// measured closed-loop capacity. The two highest deliberately
// over-drive the fleet so the schedulers' isolation (or lack of it)
// shows under sustained overload.
var tenantLoads = []float64{0.8, 1.0, 1.2, 1.3}

const (
	// tenantSticks is the fleet: one 4-stick VPU group, the paper's
	// headline configuration.
	tenantSticks = 4
	// tenantSteadyCount well-behaved Poisson tenants each offer
	// tenantSteadyFrac of capacity — comfortably under everyone's fair
	// share, so any goodput they lose is a neighbor's fault.
	tenantSteadyCount = 3
	tenantSteadyFrac  = 0.15
	// tenantQueueDepth bounds each tenant's own admission queue (and,
	// summed, the FIFO shared queue).
	tenantQueueDepth = 16
	// tenantBurstSLOs sizes the flash-crowd on/off window in SLO units:
	// long enough that a burst fills every queue, short enough that the
	// run sees several cycles.
	tenantBurstSLOs = 5
)

// TenantPoint is one (policy, aggregate load, tenant) measurement of
// the multi-tenant experiment — the machine-readable form behind the
// Tenants table and the -json CLI output.
type TenantPoint struct {
	// Policy names the admission-edge scheduler variant: "quiet" (the
	// steady tenants alone, the isolation baseline), "fifo", "wfq",
	// "wfq+quota" or "priority".
	Policy string `json:"policy"`
	// LoadPct is the aggregate offered load as a percent of the
	// fleet's closed-loop capacity.
	LoadPct int `json:"aggregate_load_pct"`
	// Tenant names the traffic class ("steady-a".."steady-c", "flash").
	Tenant string `json:"tenant"`
	// OfferedIPS is the tenant's mean offered rate (img/s).
	OfferedIPS float64 `json:"offered_img_per_s"`
	// AchievedIPS is the tenant's completion rate over the run window.
	AchievedIPS float64 `json:"achieved_img_per_s"`
	// P50MS and P99MS are the tenant's latency quantiles in
	// milliseconds.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// GoodputPct is the percent of the tenant's arrivals that
	// completed within the tenant's SLO; its sheds, expiries and quota
	// rejections all count against it.
	GoodputPct float64 `json:"goodput_pct"`
	// Shed, Expired and QuotaRejected count the tenant's own drops.
	Shed          int `json:"shed"`
	Expired       int `json:"expired"`
	QuotaRejected int `json:"quota_rejected"`
}

// tenantImages bounds the per-session image count: the sweep runs a
// full session per (load, policy) cell, and isolation effects
// stabilize well under 4000 arrivals.
func tenantImages(cfg Config) int {
	const cap = 4000
	if cfg.ImagesPerSubset > cap {
		return cap
	}
	return cfg.ImagesPerSubset
}

// tenantCapacity measures the fleet's closed-loop capacity and setup
// time once (memoized like the resilience probe): the normalization
// every offered load and SLO derives from.
func (h *Harness) tenantCapacity(images int) (float64, time.Duration, error) {
	type probe struct {
		capacity float64
		ready    time.Duration
	}
	key := fmt.Sprintf("tenants/vpu-%d/%d", tenantSticks, images)
	if h.capCache == nil {
		h.capCache = map[string]any{}
	}
	if p, ok := h.capCache[key]; ok {
		pr := p.(probe)
		return pr.capacity, pr.ready, nil
	}
	ds := imagenet.DefaultConfig()
	ds.Images = images
	sess, err := pipeline.New(
		pipeline.WithDataset(ds),
		pipeline.WithNetwork(h.goog),
		pipeline.WithBlob(h.blob),
		pipeline.WithVPUs(tenantSticks),
		pipeline.WithSeed(rng.New(h.cfg.Seed).Derive("tenants/capacity").Uint64()),
	)
	if err != nil {
		return 0, 0, err
	}
	rep, err := sess.Run()
	if err != nil {
		return 0, 0, err
	}
	h.capCache[key] = probe{capacity: rep.Throughput, ready: rep.Job.ReadyAt}
	return rep.Throughput, rep.Job.ReadyAt, nil
}

// tenantSteady builds the three well-behaved tenants: Poisson at
// tenantSteadyFrac of capacity each, delayed past device setup.
func tenantSteady(capacity float64, ready time.Duration, slo time.Duration) []tenant.Tenant {
	rate := tenantSteadyFrac * capacity
	ids := []string{"steady-a", "steady-b", "steady-c"}
	out := make([]tenant.Tenant, len(ids))
	for i, id := range ids {
		out[i] = tenant.Tenant{
			ID:         id,
			Weight:     1,
			Priority:   0,
			SLO:        slo,
			Arrivals:   core.DelayedArrivals(core.PoissonArrivals(rate), ready),
			QueueDepth: tenantQueueDepth,
		}
	}
	return out
}

// tenantFlash builds the hostile tenant: an on/off flash crowd whose
// mean rate lifts the aggregate to the target load, bursting at twice
// its mean. Under the quota variant its admitted rate is capped at
// its mean — the contract it keeps violating during bursts.
func tenantFlash(capacity float64, ready time.Duration, load float64, slo time.Duration, quota bool) tenant.Tenant {
	mean := (load - tenantSteadyCount*tenantSteadyFrac) * capacity
	window := time.Duration(tenantBurstSLOs) * slo
	t := tenant.Tenant{
		ID:         "flash",
		Weight:     1,
		Priority:   1, // below the steady tenants under strict priority
		SLO:        slo,
		Arrivals:   core.DelayedArrivals(core.BurstyArrivals(2*mean, window, window), ready),
		QueueDepth: tenantQueueDepth,
	}
	if quota {
		t.RatePerSec = mean
		t.Burst = tenantQueueDepth
	}
	return t
}

// tenantSession runs one multi-tenant session over the shared fleet.
// The session seed is derived from the cell name alone, so every
// policy variant of one load cell shares arrival instants and device
// jitter — a controlled comparison.
func (h *Harness) tenantSession(cell string, images int, slo time.Duration, tc tenant.Config) (*pipeline.Report, error) {
	ds := imagenet.DefaultConfig()
	ds.Images = images
	sess, err := pipeline.New(
		pipeline.WithDataset(ds),
		pipeline.WithNetwork(h.goog),
		pipeline.WithBlob(h.blob),
		pipeline.WithVPUs(tenantSticks),
		pipeline.WithSLO(slo),
		pipeline.WithTenants(tc),
		pipeline.WithSeed(rng.New(h.cfg.Seed).Derive("tenants/"+cell).Uint64()),
	)
	if err != nil {
		return nil, fmt.Errorf("bench: tenants %s: %w", cell, err)
	}
	rep, err := sess.Run()
	if err != nil {
		return nil, fmt.Errorf("bench: tenants %s: %w", cell, err)
	}
	return rep, nil
}

// tenantRows reduces a session report to one point per tenant.
func tenantRows(rep *pipeline.Report, policy string, loadPct int, offered map[string]float64) []TenantPoint {
	ms := func(d time.Duration) float64 { return round2(d.Seconds() * 1e3) }
	out := make([]TenantPoint, 0, len(rep.Tenants))
	for _, t := range rep.Tenants {
		out = append(out, TenantPoint{
			Policy:        policy,
			LoadPct:       loadPct,
			Tenant:        t.ID,
			OfferedIPS:    round2(offered[t.ID]),
			AchievedIPS:   round2(t.Throughput),
			P50MS:         ms(t.Latency.P50),
			P99MS:         ms(t.Latency.P99),
			GoodputPct:    round2(t.Goodput * 100),
			Shed:          t.Shed,
			Expired:       t.Expired,
			QuotaRejected: t.QuotaRejected,
		})
	}
	return out
}

// tenantPolicies are the admission-edge scheduler variants compared at
// every load cell.
func tenantPolicies() []struct {
	name  string
	sched tenant.Scheduler
	quota bool
} {
	return []struct {
		name  string
		sched tenant.Scheduler
		quota bool
	}{
		{"fifo", tenant.FIFO, false},
		{"wfq", tenant.WeightedFair, false},
		{"wfq+quota", tenant.WeightedFair, true},
		{"priority", tenant.Priority, false},
	}
}

// TenantPoints runs the multi-tenant isolation experiment: a quiet
// baseline (the steady tenants alone), then a hostile mix — three
// steady Poisson tenants plus one flash-crowd tenant lifting the
// aggregate to 80–130% of fleet capacity — under FIFO, weighted-fair,
// weighted-fair-with-quota and strict-priority scheduling at the
// admission edge. Every variant of one load cell shares arrival
// seeds, so the only difference between rows is the scheduler.
func (h *Harness) TenantPoints() ([]TenantPoint, error) {
	images := tenantImages(h.cfg)
	capacity, ready, err := h.tenantCapacity(images)
	if err != nil {
		return nil, fmt.Errorf("bench: tenants capacity: %w", err)
	}
	slo := time.Duration(sloServiceMultiple * float64(tenantSticks) / capacity * float64(time.Second))
	steadyRate := tenantSteadyFrac * capacity

	var points []TenantPoint

	quietPct := int(tenantSteadyCount * tenantSteadyFrac * 100)
	quiet := tenant.Config{Scheduler: tenant.WeightedFair, Tenants: tenantSteady(capacity, ready, slo)}
	offered := map[string]float64{"steady-a": steadyRate, "steady-b": steadyRate, "steady-c": steadyRate}
	rep, err := h.tenantSession("quiet", images, slo, quiet)
	if err != nil {
		return nil, err
	}
	points = append(points, tenantRows(rep, "quiet", quietPct, offered)...)

	for _, load := range tenantLoads {
		pct := int(load*100 + 0.5)
		cell := fmt.Sprintf("load%03d", pct)
		flashMean := (load - tenantSteadyCount*tenantSteadyFrac) * capacity
		offered := map[string]float64{
			"steady-a": steadyRate, "steady-b": steadyRate, "steady-c": steadyRate,
			"flash": flashMean,
		}
		for _, pol := range tenantPolicies() {
			tc := tenant.Config{
				Scheduler: pol.sched,
				Tenants:   append(tenantSteady(capacity, ready, slo), tenantFlash(capacity, ready, load, slo, pol.quota)),
			}
			rep, err := h.tenantSession(cell, images, slo, tc)
			if err != nil {
				return nil, err
			}
			points = append(points, tenantRows(rep, pol.name, pct, offered)...)
		}
	}
	return points, nil
}

// steadyGoodput averages the steady tenants' goodput over the points
// matching the given policy and load (0 load = any).
func steadyGoodput(points []TenantPoint, policy string, loadPct int) float64 {
	sum, n := 0.0, 0
	for _, p := range points {
		if p.Policy != policy || (loadPct != 0 && p.LoadPct != loadPct) {
			continue
		}
		if p.Tenant == "flash" {
			continue
		}
		sum += p.GoodputPct
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Tenants renders the multi-tenant experiment as a table: per-tenant
// goodput, tails and drops per scheduler and load, with isolation
// verdicts comparing the steady tenants against their quiet baseline.
func (h *Harness) Tenants() (*Table, error) {
	points, err := h.TenantPoints()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "tenants",
		Title: "Multi-tenant isolation: per-tenant goodput vs admission scheduler (flash-crowd mix)",
		Columns: []string{
			"policy", "load", "tenant", "offered img/s", "achieved img/s",
			"p50 ms", "p99 ms", "goodput", "shed", "expired", "quota",
		},
		Notes: []string{
			fmt.Sprintf("images per cell: %d; 4-stick VPU fleet; arrivals start after device setup", tenantImages(h.cfg)),
			fmt.Sprintf("mix: %d steady Poisson tenants at %.0f%% of capacity each + one on/off flash crowd lifting the aggregate to the load column", tenantSteadyCount, tenantSteadyFrac*100),
			"per-tenant queues are 16 deep (FIFO: one shared 64-deep queue); goodput is against each tenant's own SLO",
			"'quiet' is the steady tenants alone — the isolation baseline the other rows are judged against",
			"wfq+quota additionally caps the flash tenant's admitted rate at its mean (token bucket), so burst excess is rejected at admission",
		},
	}
	for _, p := range points {
		t.AddRow(
			p.Policy,
			fmt.Sprintf("%d%%", p.LoadPct),
			p.Tenant,
			fmt.Sprintf("%.1f", p.OfferedIPS),
			fmt.Sprintf("%.1f", p.AchievedIPS),
			fmt.Sprintf("%.1f", p.P50MS),
			fmt.Sprintf("%.1f", p.P99MS),
			fmt.Sprintf("%.1f%%", p.GoodputPct),
			fmt.Sprintf("%d", p.Shed),
			fmt.Sprintf("%d", p.Expired),
			fmt.Sprintf("%d", p.QuotaRejected),
		)
	}
	quiet := steadyGoodput(points, "quiet", 0)
	if quiet > 0 {
		worst := int(tenantLoads[len(tenantLoads)-1]*100 + 0.5)
		for _, pol := range tenantPolicies() {
			g := steadyGoodput(points, pol.name, worst)
			t.Notes = append(t.Notes, fmt.Sprintf(
				"isolation@%d%%: %s keeps the steady tenants at %.1f%% goodput (quiet baseline %.1f%%, %.0f%% of it)",
				worst, pol.name, g, quiet, g/quiet*100))
		}
	}
	return t, nil
}
