package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/imagenet"
	"repro/internal/ncs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/usb"
)

// perfResult is one performance measurement: steady-state throughput
// plus the dispersion behind the figure's error bars.
type perfResult struct {
	ImagesPerSec float64
	PerImageMS   float64
	// StdMS is the standard deviation of per-inference (VPU) or
	// per-batch-amortized (CPU/GPU) latencies in milliseconds.
	StdMS float64
}

// runVPU measures an n-stick multi-VPU run over `images` inferences.
// runName isolates the jitter and topology seeds, so distinct subsets
// measure slightly different values — the error bars of Fig. 6a.
func (h *Harness) runVPU(n, images int, runName string) (perfResult, error) {
	env := sim.NewEnv()
	_, ports, err := usb.Testbed(env, usb.DefaultConfig(), n)
	if err != nil {
		return perfResult{}, err
	}
	seed := rng.New(h.cfg.Seed).Derive("vpu-run/" + runName)
	devices := make([]*ncs.Device, n)
	for i, port := range ports {
		d, err := ncs.NewDevice(env, port.Name(), port, ncs.DefaultConfig(), seed)
		if err != nil {
			return perfResult{}, err
		}
		devices[i] = d
	}
	target, err := core.NewVPUTarget(devices, h.blob, core.DefaultVPUOptions())
	if err != nil {
		return perfResult{}, err
	}
	ds, err := h.perfDatasetSized(images)
	if err != nil {
		return perfResult{}, err
	}
	src, err := core.NewDatasetSource(ds, 0, images, false)
	if err != nil {
		return perfResult{}, err
	}
	col := core.NewCollector(true)
	job := target.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		return perfResult{}, job.Err
	}
	var spans stats.Running
	for _, r := range col.Results {
		spans.Add((r.End - r.Start).Seconds() * 1e3)
	}
	ips := job.Throughput()
	return perfResult{
		ImagesPerSec: ips,
		PerImageMS:   1e3 / ips,
		StdMS:        spans.Std(),
	}, nil
}

// runBatchDevice measures a Caffe-style batch engine at the given
// batch size over `images` images.
func (h *Harness) runBatchDevice(dev string, batch, images int, runName string) (perfResult, error) {
	seed := rng.New(h.cfg.Seed).Derive(dev + "-run/" + runName)
	var target *core.BatchTarget
	var err error
	switch dev {
	case "cpu":
		eng, e := devsim.NewCPU(devsim.DefaultCPUConfig(), h.workload, seed)
		if e != nil {
			return perfResult{}, e
		}
		target, err = core.NewCPUTarget(eng, h.goog, batch, false)
	case "gpu":
		eng, e := devsim.NewGPU(devsim.DefaultGPUConfig(), h.workload, seed)
		if e != nil {
			return perfResult{}, e
		}
		target, err = core.NewGPUTarget(eng, h.goog, batch, false)
	default:
		return perfResult{}, fmt.Errorf("bench: unknown device %q", dev)
	}
	if err != nil {
		return perfResult{}, err
	}
	ds, err := h.perfDatasetSized(images)
	if err != nil {
		return perfResult{}, err
	}
	src, err := core.NewDatasetSource(ds, 0, images, false)
	if err != nil {
		return perfResult{}, err
	}
	env := sim.NewEnv()
	col := core.NewCollector(true)
	job := target.Start(env, src, col.Sink())
	env.Run()
	if job.Err != nil {
		return perfResult{}, job.Err
	}
	// Per-batch spans, amortized per image.
	var spans stats.Running
	seen := map[int64]bool{}
	for _, r := range col.Results {
		key := int64(r.Start)
		if seen[key] {
			continue
		}
		seen[key] = true
		spans.Add((r.End - r.Start).Seconds() * 1e3 / float64(batch))
	}
	ips := job.Throughput()
	return perfResult{
		ImagesPerSec: ips,
		PerImageMS:   1e3 / ips,
		StdMS:        spans.Std(),
	}, nil
}

// perfDatasetSized builds a label-only dataset with exactly n images.
func (h *Harness) perfDatasetSized(n int) (*imagenet.Dataset, error) {
	cfg := imagenet.DefaultConfig()
	cfg.Images = n
	cfg.Subsets = 1
	cfg.Seed = h.cfg.Seed + 2012
	return imagenet.New(cfg)
}

// fmtRatio renders a measured-vs-paper pair as "x (paper y)".
func fmtRatio(measured, paper float64, format string) string {
	return fmt.Sprintf(format+" (paper "+format+")", measured, paper)
}

// pctDelta formats the relative deviation from the paper's value.
func pctDelta(measured, paper float64) string {
	if paper == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (measured/paper-1)*100)
}

// round2 keeps tables stable across float formatting quirks.
func round2(v float64) float64 { return math.Round(v*100) / 100 }
