package bench

import (
	"fmt"

	"repro/internal/power"
)

// Summary regenerates the paper's headline claims (abstract, §V, §VII)
// from fresh measurements: the single-VPU vs CPU/GPU latency ratio,
// the multi-VPU throughput parity, the TDP reduction, the >3x
// images-per-Watt advantage and the FP16 error deltas.
func (h *Harness) Summary() (*Table, error) {
	t := &Table{
		ID:      "summary",
		Title:   "Headline claims: paper vs this reproduction",
		Columns: []string{"claim", "paper", "measured"},
	}
	images := h.cfg.ImagesPerSubset

	cpu1, err := h.runBatchDevice("cpu", 1, images, "summary/cpu1")
	if err != nil {
		return nil, err
	}
	gpu1, err := h.runBatchDevice("gpu", 1, images, "summary/gpu1")
	if err != nil {
		return nil, err
	}
	vpu1, err := h.runVPU(1, images, "summary/vpu1")
	if err != nil {
		return nil, err
	}
	cpu8, err := h.runBatchDevice("cpu", 8, images, "summary/cpu8")
	if err != nil {
		return nil, err
	}
	gpu8, err := h.runBatchDevice("gpu", 8, images, "summary/gpu8")
	if err != nil {
		return nil, err
	}
	vpu8, err := h.runVPU(8, images, "summary/vpu8")
	if err != nil {
		return nil, err
	}

	t.AddRow("single-VPU latency vs CPU/GPU (§V)",
		"~4x slower",
		fmt.Sprintf("%.1fx vs CPU, %.1fx vs GPU",
			vpu1.PerImageMS/cpu1.PerImageMS, vpu1.PerImageMS/gpu1.PerImageMS))

	t.AddRow("8-VPU throughput vs GPU (abstract)",
		"equivalent (77.2 vs 74.2 img/s)",
		fmt.Sprintf("%.1f vs %.1f img/s (%.2fx)",
			vpu8.ImagesPerSec, gpu8.ImagesPerSec, vpu8.ImagesPerSec/gpu8.ImagesPerSec))

	t.AddRow("8-VPU throughput vs CPU (Fig. 6a)",
		"40.7% faster (77.2 vs 44.0)",
		fmt.Sprintf("%.1f vs %.1f img/s (+%.1f%%)",
			vpu8.ImagesPerSec, cpu8.ImagesPerSec, (vpu8.ImagesPerSec/cpu8.ImagesPerSec-1)*100))

	chipAgg := 8 * power.VPUChipTDPWatts
	stickAgg := power.MultiVPUTDP(8)
	t.AddRow("TDP reduction at equal throughput (abstract)",
		"up to 8x",
		fmt.Sprintf("%.1fx (chip TDP, 80 W vs %.1f W) / %.1fx (stick TDP, 80 W vs %.0f W)",
			power.CPUTDPWatts/chipAgg, chipAgg, power.CPUTDPWatts/stickAgg, stickAgg))

	vpuW := power.ImagesPerWatt(vpu1.ImagesPerSec, power.NCSStickPeakWatts)
	gpuW := power.ImagesPerWatt(gpu8.ImagesPerSec, power.GPUTDPWatts)
	cpuW := power.ImagesPerWatt(cpu8.ImagesPerSec, power.CPUTDPWatts)
	t.AddRow("throughput/Watt advantage (abstract)",
		"over 3x",
		fmt.Sprintf("%.1fx vs GPU, %.1fx vs CPU (%.2f vs %.2f / %.2f img/W)",
			vpuW/gpuW, vpuW/cpuW, vpuW, gpuW, cpuW))

	fig7, err := h.fig7()
	if err != nil {
		return nil, err
	}
	var e32, e16, cd float64
	for _, s := range fig7.subsets {
		e32 += s.err32()
		e16 += s.err16()
		cd += s.confDiff()
	}
	n := float64(len(fig7.subsets))
	t.AddRow("top-1 error (FP16, §IV-B)",
		"31.92% (0.09% from FP32)",
		fmt.Sprintf("%.2f%% (%+.2f%% from FP32)", e16/n*100, (e32-e16)/n*100))
	t.AddRow("confidence difference (Fig. 7b)",
		"0.44%",
		fmt.Sprintf("%.2f%%", cd/n*100))

	return t, nil
}
