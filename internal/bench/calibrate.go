package bench

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/imagenet"
	"repro/internal/nn"
	"repro/internal/rng"
)

// CalibrateNoise searches for the dataset noise sigma at which the
// reference FP32 pipeline measures the target top-1 error. It is the
// tool that produced imagenet.CalibratedNoiseSigma; rerun it (via
// cmd/calib-noise) whenever the micro network or the dataset geometry
// changes. The search is a bisection over the (empirically monotone)
// sigma-to-error curve.
func CalibrateNoise(targetErr float64, images, iterations int) (sigma float64, achieved float64, err error) {
	if targetErr <= 0 || targetErr >= 1 {
		return 0, 0, fmt.Errorf("bench: target error %g out of (0,1)", targetErr)
	}
	if images < 100 {
		return 0, 0, fmt.Errorf("bench: need >= 100 calibration images, got %d", images)
	}
	lo, hi := 1.0, 128.0
	loErr, err := MeasureErrorAt(lo, images)
	if err != nil {
		return 0, 0, err
	}
	hiErr, err := MeasureErrorAt(hi, images)
	if err != nil {
		return 0, 0, err
	}
	if targetErr < loErr || targetErr > hiErr {
		return 0, 0, fmt.Errorf("bench: target %.3f outside achievable [%.3f, %.3f]", targetErr, loErr, hiErr)
	}
	var mid, midErr float64
	for i := 0; i < iterations; i++ {
		mid = (lo + hi) / 2
		midErr, err = MeasureErrorAt(mid, images)
		if err != nil {
			return 0, 0, err
		}
		if midErr < targetErr {
			lo = mid
		} else {
			hi = mid
		}
	}
	return mid, midErr, nil
}

// MeasureErrorAt runs the reference FP32 pipeline at one noise level
// over the first `images` validation images and returns the top-1
// error.
func MeasureErrorAt(sigma float64, images int) (float64, error) {
	cfg := imagenet.DefaultConfig()
	cfg.NoiseSigma = sigma
	cfg.Images = images
	ds, err := imagenet.New(cfg)
	if err != nil {
		return 0, err
	}
	net := nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(microWeightSeed))
	if err := nn.CalibrateClassifier(net, nn.MicroClassifierName, nn.MicroPoolName,
		ds.PreprocessedPrototypes(), classifierTemperature); err != nil {
		return 0, err
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > images {
		workers = images
	}
	wrong := make([]int, workers)
	errs := make([]error, workers)
	per := (images + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > images {
			hi = images
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				img := ds.Preprocessed(i)
				in := img.Reshape(1, 3, cfg.Size, cfg.Size)
				out, err := net.Forward(in, nn.FP32)
				if err != nil {
					errs[w] = err
					return
				}
				if pred, _ := out.ArgMax(); pred != ds.Label(i) {
					wrong[w]++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for w := range wrong {
		if errs[w] != nil {
			return 0, errs[w]
		}
		total += wrong[w]
	}
	return float64(total) / float64(images), nil
}
