package bench

import "fmt"

// Paper-reported values for Fig. 6 (§IV-A).
var (
	// paperFig6aIPS are the average throughputs at batch 8 / 8 VPUs.
	paperFig6aIPS = map[string]float64{"cpu": 44.0, "gpu": 74.2, "vpu": 77.2}
	// paperFig6bSingleMS are the single-input latencies used as
	// normalization baselines.
	paperFig6bSingleMS = map[string]float64{"cpu": 26.0, "gpu": 25.9, "vpu": 100.7}
	// paperFig6bScaling8 are the reported relative speedups at 8.
	paperFig6bScaling8 = map[string]float64{"cpu": 1.1, "gpu": 1.9, "vpu": 7.8}
)

// Fig6a regenerates Figure 6a: inference throughput per validation
// subset at batch size 8 (8 active VPUs) for the CPU, GPU and
// multi-VPU configurations.
func (h *Harness) Fig6a() (*Table, error) {
	t := &Table{
		ID:    "fig6a",
		Title: "Inference performance per subset, 8-input batches (img/s)",
		Columns: []string{
			"subset", "CPU img/s", "GPU img/s", "VPU(multi) img/s",
		},
		Notes: []string{
			fmt.Sprintf("images per subset: %d (paper: 10000)", h.cfg.ImagesPerSubset),
			"paper averages: CPU 44.0, GPU 74.2, VPU 77.2 img/s",
		},
	}
	var cpuSum, gpuSum, vpuSum float64
	for k := 0; k < h.cfg.Subsets; k++ {
		run := fmt.Sprintf("fig6a/set%d", k+1)
		cpu, err := h.runBatchDevice("cpu", 8, h.cfg.ImagesPerSubset, run)
		if err != nil {
			return nil, err
		}
		gpu, err := h.runBatchDevice("gpu", 8, h.cfg.ImagesPerSubset, run)
		if err != nil {
			return nil, err
		}
		vpu, err := h.runVPU(8, h.cfg.ImagesPerSubset, run)
		if err != nil {
			return nil, err
		}
		cpuSum += cpu.ImagesPerSec
		gpuSum += gpu.ImagesPerSec
		vpuSum += vpu.ImagesPerSec
		t.AddRow(
			fmt.Sprintf("Set-%d", k+1),
			fmt.Sprintf("%.1f ±%.1f", cpu.ImagesPerSec, cpu.StdMS),
			fmt.Sprintf("%.1f ±%.1f", gpu.ImagesPerSec, gpu.StdMS),
			fmt.Sprintf("%.1f ±%.1f", vpu.ImagesPerSec, vpu.StdMS),
		)
	}
	n := float64(h.cfg.Subsets)
	t.AddRow(
		"mean",
		fmtRatio(cpuSum/n, paperFig6aIPS["cpu"], "%.1f"),
		fmtRatio(gpuSum/n, paperFig6aIPS["gpu"], "%.1f"),
		fmtRatio(vpuSum/n, paperFig6aIPS["vpu"], "%.1f"),
	)
	t.AddRow(
		"vs paper",
		pctDelta(cpuSum/n, paperFig6aIPS["cpu"]),
		pctDelta(gpuSum/n, paperFig6aIPS["gpu"]),
		pctDelta(vpuSum/n, paperFig6aIPS["vpu"]),
	)
	return t, nil
}

// Fig6bBatches are the batch sizes of Figure 6b; the number of active
// VPU chips is coupled with the input size.
var Fig6bBatches = []int{1, 2, 4, 8}

// Fig6b regenerates Figure 6b: per-device performance scaling with
// batch size, normalized to each device's single-input latency.
func (h *Harness) Fig6b() (*Table, error) {
	t := &Table{
		ID:    "fig6b",
		Title: "Normalized performance scaling vs batch size (single-input = 1.0)",
		Columns: []string{
			"batch", "CPU ms/img", "CPU scale", "GPU ms/img", "GPU scale", "VPU ms/img", "VPU scale",
		},
		Notes: []string{
			"paper single-input baselines: CPU 26.0 ms, GPU 25.9 ms, VPU 100.7 ms",
			"paper scaling at 8: CPU 1.1x, GPU 1.9x, VPU close to 8x",
		},
	}
	images := h.cfg.ImagesPerSubset
	base := map[string]float64{}
	for _, b := range Fig6bBatches {
		run := fmt.Sprintf("fig6b/b%d", b)
		cpu, err := h.runBatchDevice("cpu", b, images, run)
		if err != nil {
			return nil, err
		}
		gpu, err := h.runBatchDevice("gpu", b, images, run)
		if err != nil {
			return nil, err
		}
		vpu, err := h.runVPU(b, images, run)
		if err != nil {
			return nil, err
		}
		if b == 1 {
			base["cpu"], base["gpu"], base["vpu"] = cpu.PerImageMS, gpu.PerImageMS, vpu.PerImageMS
		}
		t.AddRow(
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%.1f", cpu.PerImageMS),
			fmt.Sprintf("%.2fx", base["cpu"]/cpu.PerImageMS),
			fmt.Sprintf("%.1f", gpu.PerImageMS),
			fmt.Sprintf("%.2fx", base["gpu"]/gpu.PerImageMS),
			fmt.Sprintf("%.1f", vpu.PerImageMS),
			fmt.Sprintf("%.2fx", base["vpu"]/vpu.PerImageMS),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured single-input baselines: CPU %.1f ms (paper 26.0), GPU %.1f ms (paper 25.9), VPU %.1f ms (paper 100.7)",
			base["cpu"], base["gpu"], base["vpu"]))
	return t, nil
}
