package bench

import "testing"

// TestSLOShape asserts the slo experiment's qualitative content at
// quick scale: one capacity probe per configuration plus one point
// per (load, variant), coherent quantiles, equal offered traffic
// across variants of a cell, and the two headline effects — adaptive
// assembly shrinking the realized batch below the knee, bounded
// admission shedding (only) past it.
func TestSLOShape(t *testing.T) {
	skipHeavy(t)
	pts, err := harness(t).SLOPoints()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, cfg := range sloConfigs() {
		want += 1 + len(sloLoads)*len(sloVariants(cfg))
	}
	if len(pts) != want {
		t.Fatalf("%d slo points, want %d", len(pts), want)
	}
	type cell struct {
		dev  string
		load float64
	}
	offered := map[cell]float64{}
	meanBatch := map[cell]map[string]float64{}
	for _, p := range pts {
		if p.LoadFraction == 0 {
			if p.AchievedIPS <= 0 || p.SLOMS <= 0 {
				t.Errorf("%s: capacity probe %.2f img/s, slo %.1fms", p.Device, p.AchievedIPS, p.SLOMS)
			}
			continue
		}
		if p.P50MS <= 0 || p.P99MS < p.P95MS || p.P95MS < p.P50MS || p.MaxMS < p.P99MS {
			t.Errorf("%s %s/%s@%.0f%%: inconsistent quantiles %+v",
				p.Device, p.Batching, p.Admission, p.LoadFraction*100, p)
		}
		if p.GoodputPct < 0 || p.GoodputPct > 100 || p.ShedPct < 0 || p.ShedPct > 100 {
			t.Errorf("%s %s/%s@%.0f%%: goodput %.1f%% shed %.1f%% out of range",
				p.Device, p.Batching, p.Admission, p.LoadFraction*100, p.GoodputPct, p.ShedPct)
		}
		if p.Admission == "open" && p.ShedPct != 0 {
			t.Errorf("%s %s/open@%.0f%%: unbounded ingress shed %.1f%%",
				p.Device, p.Batching, p.LoadFraction*100, p.ShedPct)
		}
		k := cell{p.Device, p.LoadFraction}
		if prev, ok := offered[k]; ok && prev != p.OfferedIPS {
			t.Errorf("%s@%.0f%%: variants saw different offered rates %.2f vs %.2f",
				p.Device, p.LoadFraction*100, prev, p.OfferedIPS)
		}
		offered[k] = p.OfferedIPS
		if p.MeanBatch > 0 {
			if meanBatch[k] == nil {
				meanBatch[k] = map[string]float64{}
			}
			if p.Admission == "open" {
				meanBatch[k][p.Batching] = p.MeanBatch
			}
		}
	}
	for _, dev := range []string{"cpu-b8", "gpu-b8"} {
		k := cell{dev, sloLoads[0]}
		mb := meanBatch[k]
		if mb["fixed"] == 0 || mb["adaptive"] == 0 {
			t.Errorf("%s@%.0f%%: missing mean batch sizes %v", dev, sloLoads[0]*100, mb)
			continue
		}
		if mb["adaptive"] >= mb["fixed"] {
			t.Errorf("%s@%.0f%%: adaptive mean batch %.1f not below fixed %.1f",
				dev, sloLoads[0]*100, mb["adaptive"], mb["fixed"])
		}
	}
}
