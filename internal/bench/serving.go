package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/devsim"
	"repro/internal/ncs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/usb"
)

// servingLoads are the offered-load fractions of each configuration's
// measured closed-loop capacity. 1.1 deliberately over-drives the
// device to show unbounded queue growth past the knee.
var servingLoads = []float64{0.5, 0.7, 0.9, 1.1}

// kneeFactor declares saturation: the lowest load whose p99 exceeds
// kneeFactor × the p99 at the lightest load is reported as the knee.
const kneeFactor = 3.0

// ServingPoint is one (configuration, offered load) measurement of
// the serving experiment — the machine-readable form behind the
// Serving table and the -json CLI output.
type ServingPoint struct {
	// Device names the configuration ("cpu-b8", "vpu-4", ...).
	Device string `json:"device"`
	// LoadFraction is offered rate / closed-loop capacity; 0 marks the
	// closed-loop capacity probe itself.
	LoadFraction float64 `json:"load_fraction"`
	// OfferedIPS is the Poisson arrival rate (img/s); 0 for the probe.
	OfferedIPS float64 `json:"offered_img_per_s"`
	// AchievedIPS is the measured steady-state completion rate.
	AchievedIPS float64 `json:"achieved_img_per_s"`
	// Latency tail and split, milliseconds.
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	MaxMS         float64 `json:"max_ms"`
	QueueMeanMS   float64 `json:"queue_mean_ms"`
	ServiceMeanMS float64 `json:"service_mean_ms"`
}

// servingConfigs are the device groups compared by the serving
// experiment: each batch engine at its latency-friendly and
// throughput-friendly batch sizes, and the paper's single- and
// multi-stick VPU pipelines.
type servingConfig struct {
	name   string
	dev    string // "cpu", "gpu", "vpu"
	batch  int    // batch size (cpu/gpu)
	sticks int    // stick count (vpu)
}

func servingConfigs() []servingConfig {
	return []servingConfig{
		{name: "cpu-b1", dev: "cpu", batch: 1},
		{name: "cpu-b8", dev: "cpu", batch: 8},
		{name: "gpu-b1", dev: "gpu", batch: 1},
		{name: "gpu-b8", dev: "gpu", batch: 8},
		{name: "vpu-1", dev: "vpu", sticks: 1},
		{name: "vpu-4", dev: "vpu", sticks: 4},
	}
}

// ServingPoints runs the serving experiment: for every configuration,
// a closed-loop capacity probe followed by open-loop Poisson traffic
// at fractions of that capacity, measuring the latency distribution
// at each offered load. Arrivals are delayed past the configuration's
// setup time (measured by the probe), so every point measures
// steady-state serving, not boot backlog.
func (h *Harness) ServingPoints() ([]ServingPoint, error) {
	images := h.cfg.ImagesPerSubset
	var points []ServingPoint
	for _, cfg := range servingConfigs() {
		capacity, ready, err := h.servingCapacity(cfg, images)
		if err != nil {
			return nil, fmt.Errorf("bench: serving capacity %s: %w", cfg.name, err)
		}
		points = append(points, ServingPoint{
			Device:      cfg.name,
			AchievedIPS: round2(capacity),
		})
		for _, frac := range servingLoads {
			pt, err := h.servePoint(cfg, images, frac, capacity*frac, ready)
			if err != nil {
				return nil, fmt.Errorf("bench: serving %s@%.2f: %w", cfg.name, frac, err)
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// Serving renders the serving experiment as a table: tail latency vs
// offered load per device group, with a per-group saturation note.
func (h *Harness) Serving() (*Table, error) {
	points, err := h.ServingPoints()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "serving",
		Title: "Tail latency vs offered load (open-loop Poisson arrivals)",
		Columns: []string{
			"group", "load", "offered img/s", "achieved img/s",
			"p50 ms", "p95 ms", "p99 ms", "queue ms", "service ms",
		},
		Notes: []string{
			fmt.Sprintf("images per point: %d; arrivals start after device setup", h.cfg.ImagesPerSubset),
			"load is the fraction of the group's measured closed-loop capacity; 'capacity' rows are the probe",
			"queue/service are mean queueing delay vs mean in-device time per item",
		},
	}
	base := map[string]float64{} // p99 at the lightest load per device
	knee := map[string]float64{}
	for _, p := range points {
		if p.LoadFraction == 0 {
			t.AddRow(p.Device, "capacity", "-", fmt.Sprintf("%.1f", p.AchievedIPS),
				"-", "-", "-", "-", "-")
			continue
		}
		if _, ok := base[p.Device]; !ok {
			base[p.Device] = p.P99MS
		}
		if _, ok := knee[p.Device]; !ok && p.P99MS > kneeFactor*base[p.Device] {
			knee[p.Device] = p.LoadFraction
		}
		t.AddRow(
			p.Device,
			fmt.Sprintf("%.0f%%", p.LoadFraction*100),
			fmt.Sprintf("%.1f", p.OfferedIPS),
			fmt.Sprintf("%.1f", p.AchievedIPS),
			fmt.Sprintf("%.1f", p.P50MS),
			fmt.Sprintf("%.1f", p.P95MS),
			fmt.Sprintf("%.1f", p.P99MS),
			fmt.Sprintf("%.1f", p.QueueMeanMS),
			fmt.Sprintf("%.1f", p.ServiceMeanMS),
		)
	}
	for _, cfg := range servingConfigs() {
		if frac, ok := knee[cfg.name]; ok {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: p99 knee at %.0f%% load (> %.0fx the %.0f%%-load p99)",
				cfg.name, frac*100, kneeFactor, servingLoads[0]*100))
		} else {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: no p99 knee up to %.0f%% load", cfg.name, servingLoads[len(servingLoads)-1]*100))
		}
	}
	return t, nil
}

// servingCapacity measures a configuration's closed-loop throughput
// and setup time (Job.ReadyAt) — the normalization for offered load
// and the arrival delay of the open-loop points.
func (h *Harness) servingCapacity(cfg servingConfig, images int) (float64, time.Duration, error) {
	env := sim.NewEnv()
	target, err := h.servingTarget(env, cfg, "capacity")
	if err != nil {
		return 0, 0, err
	}
	ds, err := h.perfDatasetSized(images)
	if err != nil {
		return 0, 0, err
	}
	src, err := core.NewDatasetSource(ds, 0, images, false)
	if err != nil {
		return 0, 0, err
	}
	job := target.Start(env, src, func(core.Result) {})
	env.Run()
	if job.Err != nil {
		return 0, 0, job.Err
	}
	return job.Throughput(), job.ReadyAt, nil
}

// servePoint measures one open-loop point: Poisson arrivals at rate,
// delayed past the configuration's setup time.
func (h *Harness) servePoint(cfg servingConfig, images int, frac, rate float64, ready time.Duration) (ServingPoint, error) {
	env := sim.NewEnv()
	runName := fmt.Sprintf("load%.2f", frac)
	target, err := h.servingTarget(env, cfg, runName)
	if err != nil {
		return ServingPoint{}, err
	}
	ds, err := h.perfDatasetSized(images)
	if err != nil {
		return ServingPoint{}, err
	}
	src, err := core.NewDatasetSource(ds, 0, images, false)
	if err != nil {
		return ServingPoint{}, err
	}
	arr := core.DelayedArrivals(core.PoissonArrivals(rate), ready)
	asrc, err := core.NewArrivalSource(env, src, arr,
		rng.New(h.cfg.Seed).Derive("serving/"+cfg.name+"/"+runName))
	if err != nil {
		return ServingPoint{}, err
	}
	col := core.NewCollector(false)
	job := target.Start(env, asrc, col.Sink())
	env.Run()
	if job.Err != nil {
		return ServingPoint{}, job.Err
	}
	lat := col.Latency()
	ms := func(d time.Duration) float64 { return round2(d.Seconds() * 1e3) }
	return ServingPoint{
		Device:        cfg.name,
		LoadFraction:  frac,
		OfferedIPS:    round2(rate),
		AchievedIPS:   round2(job.Throughput()),
		P50MS:         ms(lat.P50),
		P95MS:         ms(lat.P95),
		P99MS:         ms(lat.P99),
		MaxMS:         ms(lat.Max),
		QueueMeanMS:   ms(lat.QueueMean),
		ServiceMeanMS: ms(lat.ServiceMean),
	}, nil
}

// servingTarget builds one configuration's target inside env, seeded
// per run so distinct points draw independent jitter, like the other
// experiments.
func (h *Harness) servingTarget(env *sim.Env, cfg servingConfig, runName string) (core.Target, error) {
	seed := rng.New(h.cfg.Seed).Derive("serving/" + cfg.name + "/run/" + runName)
	switch cfg.dev {
	case "cpu":
		eng, err := devsim.NewCPU(devsim.DefaultCPUConfig(), h.workload, seed)
		if err != nil {
			return nil, err
		}
		return core.NewCPUTarget(eng, h.goog, cfg.batch, false)
	case "gpu":
		eng, err := devsim.NewGPU(devsim.DefaultGPUConfig(), h.workload, seed)
		if err != nil {
			return nil, err
		}
		return core.NewGPUTarget(eng, h.goog, cfg.batch, false)
	case "vpu":
		_, ports, err := usb.Testbed(env, usb.DefaultConfig(), cfg.sticks)
		if err != nil {
			return nil, err
		}
		devices := make([]*ncs.Device, cfg.sticks)
		for i, port := range ports {
			d, err := ncs.NewDevice(env, port.Name(), port, ncs.DefaultConfig(), seed)
			if err != nil {
				return nil, err
			}
			devices[i] = d
		}
		return core.NewVPUTarget(devices, h.blob, core.DefaultVPUOptions())
	default:
		return nil, fmt.Errorf("bench: unknown serving device %q", cfg.dev)
	}
}
