package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
)

// sloLoads are the offered-load fractions of each configuration's
// measured closed-loop capacity; 1.1 and 1.3 deliberately over-drive
// the device to show what each serving edge does past the knee.
var sloLoads = []float64{0.5, 0.7, 0.9, 1.1, 1.3}

// sloServiceMultiple sizes the SLO target per configuration: the
// deadline is this many full-batch service intervals of the device at
// its closed-loop capacity — loose enough that a healthy device meets
// it easily below the knee, tight enough that an unbounded queue
// blows through it the moment the queue starts growing.
const sloServiceMultiple = 4.0

// sloAdmissionDepth bounds the ingress of the "bounded" variants:
// roughly two full batches of backlog, mirroring the pool feed depth
// philosophy (small, device-speed-matched buffers).
const sloAdmissionDepth = 16

// sloMaxWaitFraction sizes the adaptive assembler's max-wait as a
// fraction of the SLO target: a partial batch never burns more than
// this share of the deadline waiting for company.
const sloMaxWaitFraction = 0.125

// SLOPoint is one (configuration, variant, offered load) measurement
// of the slo experiment — the machine-readable form behind the SLO
// table and the BENCH_PR3.json snapshot.
type SLOPoint struct {
	// Device names the configuration ("cpu-b8", "vpu-4", ...).
	Device string `json:"device"`
	// Batching is "fixed" or "adaptive" for the batch engines, "n/a"
	// for the per-item VPU pipeline.
	Batching string `json:"batching"`
	// Admission is "open" (unbounded ingress) or "bounded" (admission
	// queue with shedding and deadline expiry).
	Admission string `json:"admission"`
	// LoadFraction is offered rate / closed-loop capacity; 0 marks
	// the closed-loop capacity probe itself.
	LoadFraction float64 `json:"load_fraction"`
	// OfferedIPS is the Poisson arrival rate (img/s); 0 for the probe.
	OfferedIPS float64 `json:"offered_img_per_s"`
	// AchievedIPS is the measured steady-state completion rate.
	AchievedIPS float64 `json:"achieved_img_per_s"`
	// SLOMS is the per-item deadline of this configuration (ms).
	SLOMS float64 `json:"slo_ms"`
	// GoodputPct is the percentage of arrivals completing within the
	// SLO; shed and expired arrivals count against it.
	GoodputPct float64 `json:"goodput_pct"`
	// ShedPct is the percentage of arrivals dropped at the admission
	// edge (overload policy + deadline expiry).
	ShedPct float64 `json:"shed_pct"`
	// MeanBatch is the realized mean batch size (batch engines only).
	MeanBatch float64 `json:"mean_batch,omitempty"`
	// Latency tail and split, milliseconds.
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	MaxMS         float64 `json:"max_ms"`
	QueueMeanMS   float64 `json:"queue_mean_ms"`
	ServiceMeanMS float64 `json:"service_mean_ms"`
}

// sloVariant is one serving-edge configuration of the experiment.
type sloVariant struct {
	batching  string // "fixed" | "adaptive" | "n/a"
	admission string // "open" | "bounded"
}

// sloVariants returns the serving edges compared for a device: the
// PR2 baseline (fixed batch, unbounded ingress), adaptive assembly on
// the same open ingress, and adaptive assembly behind bounded
// admission. The per-item VPU pipeline has no batch assembler, so it
// compares open vs bounded only.
func sloVariants(cfg servingConfig) []sloVariant {
	if cfg.dev == "vpu" {
		return []sloVariant{
			{batching: "n/a", admission: "open"},
			{batching: "n/a", admission: "bounded"},
		}
	}
	return []sloVariant{
		{batching: "fixed", admission: "open"},
		{batching: "adaptive", admission: "open"},
		{batching: "adaptive", admission: "bounded"},
	}
}

// sloConfigs are the device groups of the slo experiment: the two
// throughput-friendly batch engines (where adaptive assembly has
// something to win) and the paper's 4-stick VPU pipeline (where only
// admission control applies).
func sloConfigs() []servingConfig {
	return []servingConfig{
		{name: "cpu-b8", dev: "cpu", batch: 8},
		{name: "gpu-b8", dev: "gpu", batch: 8},
		{name: "vpu-4", dev: "vpu", sticks: 4},
	}
}

// SLOPoints runs the slo experiment: for every configuration, a
// closed-loop capacity probe (shared with the serving experiment)
// followed, at each offered load from 50% to 130% of capacity, by one
// run per serving-edge variant — fixed vs adaptive batch assembly,
// open vs bounded admission — all against the same Poisson arrival
// sequence, measuring tail latency, goodput against the
// configuration's SLO, and the realized shed rate.
func (h *Harness) SLOPoints() ([]SLOPoint, error) {
	images := h.cfg.ImagesPerSubset
	var points []SLOPoint
	for _, cfg := range sloConfigs() {
		capacity, ready, err := h.servingCapacity(cfg, images)
		if err != nil {
			return nil, fmt.Errorf("bench: slo capacity %s: %w", cfg.name, err)
		}
		slo := h.sloTarget(cfg, capacity)
		points = append(points, SLOPoint{
			Device:      cfg.name,
			Batching:    "probe",
			Admission:   "probe",
			AchievedIPS: round2(capacity),
			SLOMS:       round2(slo.Seconds() * 1e3),
		})
		for _, frac := range sloLoads {
			for _, v := range sloVariants(cfg) {
				pt, err := h.sloPoint(cfg, v, images, frac, capacity*frac, ready, slo)
				if err != nil {
					return nil, fmt.Errorf("bench: slo %s %s/%s@%.2f: %w",
						cfg.name, v.batching, v.admission, frac, err)
				}
				points = append(points, pt)
			}
		}
	}
	return points, nil
}

// sloTarget derives a configuration's per-item deadline from its
// measured capacity: sloServiceMultiple full-batch service intervals.
func (h *Harness) sloTarget(cfg servingConfig, capacity float64) time.Duration {
	unit := cfg.batch
	if cfg.dev == "vpu" {
		unit = cfg.sticks
	}
	return time.Duration(sloServiceMultiple * float64(unit) / capacity * float64(time.Second))
}

// sloPoint measures one (configuration, variant, load) cell.
func (h *Harness) sloPoint(cfg servingConfig, v sloVariant, images int, frac, rate float64, ready time.Duration, slo time.Duration) (SLOPoint, error) {
	env := sim.NewEnv()
	runName := fmt.Sprintf("load%.2f", frac)
	target, err := h.servingTarget(env, cfg, runName)
	if err != nil {
		return SLOPoint{}, err
	}
	var batcher *core.BatchTarget
	if bt, ok := target.(*core.BatchTarget); ok {
		batcher = bt
		if v.batching == "adaptive" {
			bt.SetAssembly(core.BatchAssembly{
				MaxWait:  time.Duration(sloMaxWaitFraction * float64(slo)),
				Adaptive: true,
			})
		}
	}
	ds, err := h.perfDatasetSized(images)
	if err != nil {
		return SLOPoint{}, err
	}
	src, err := core.NewDatasetSource(ds, 0, images, false)
	if err != nil {
		return SLOPoint{}, err
	}
	arr := core.DelayedArrivals(core.PoissonArrivals(rate), ready)
	// The arrival seed depends only on (device, load), not the
	// variant: every serving edge faces the identical traffic.
	asrc, err := core.NewArrivalSource(env, src, arr,
		rng.New(h.cfg.Seed).Derive("slo/"+cfg.name+"/"+runName))
	if err != nil {
		return SLOPoint{}, err
	}
	col := core.NewCollector(false)
	col.SetSLO(slo)
	feed := core.Source(asrc)
	if v.admission == "bounded" {
		aq, err := core.NewAdmissionQueue(env, asrc, core.AdmissionOptions{
			Depth:    sloAdmissionDepth,
			Policy:   core.ShedNewest,
			Deadline: slo,
			OnDrop:   func(_ core.Item, reason core.DropReason, _ time.Duration) { col.NoteDrop(reason) },
		})
		if err != nil {
			return SLOPoint{}, err
		}
		feed = aq
	}
	job := target.Start(env, feed, col.Sink())
	env.Run()
	if job.Err != nil {
		return SLOPoint{}, job.Err
	}
	lat := col.Latency()
	msOf := func(d time.Duration) float64 { return round2(d.Seconds() * 1e3) }
	pt := SLOPoint{
		Device:        cfg.name,
		Batching:      v.batching,
		Admission:     v.admission,
		LoadFraction:  frac,
		OfferedIPS:    round2(rate),
		AchievedIPS:   round2(job.Throughput()),
		SLOMS:         msOf(slo),
		GoodputPct:    round2(col.Goodput() * 100),
		ShedPct:       round2(col.ShedRate() * 100),
		P50MS:         msOf(lat.P50),
		P95MS:         msOf(lat.P95),
		P99MS:         msOf(lat.P99),
		MaxMS:         msOf(lat.Max),
		QueueMeanMS:   msOf(lat.QueueMean),
		ServiceMeanMS: msOf(lat.ServiceMean),
	}
	if batcher != nil && batcher.Batches() > 0 {
		pt.MeanBatch = round2(float64(job.Images) / float64(batcher.Batches()))
	}
	return pt, nil
}

// SLO renders the slo experiment as a table: per device group and
// offered load, the three serving edges side by side, with notes on
// where adaptive assembly beats the fixed batch and where bounded
// admission holds goodput past the knee.
func (h *Harness) SLO() (*Table, error) {
	points, err := h.SLOPoints()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "slo",
		Title: "SLO-aware serving: adaptive batching + admission control vs the fixed/open baseline",
		Columns: []string{
			"group", "batching", "admission", "load", "offered img/s",
			"p50 ms", "p99 ms", "goodput %", "shed %", "mean batch",
		},
		Notes: []string{
			fmt.Sprintf("images per point: %d; Poisson arrivals start after device setup", h.cfg.ImagesPerSubset),
			fmt.Sprintf("SLO per group: %.0f full-batch service intervals at closed-loop capacity", sloServiceMultiple),
			fmt.Sprintf("bounded admission: depth %d, shed-newest, items expire at the SLO deadline", sloAdmissionDepth),
			"goodput counts arrivals completing within the SLO; shed and expired arrivals count against it",
		},
	}
	type key struct {
		dev  string
		load float64
	}
	fixedP99 := map[key]float64{}
	adaptiveP99 := map[key]float64{}
	openGood := map[key]float64{}
	boundedGood := map[key]float64{}
	for _, p := range points {
		if p.LoadFraction == 0 {
			t.AddRow(p.Device, "-", "-", "capacity",
				fmt.Sprintf("%.1f", p.AchievedIPS),
				"-", "-", "-", "-",
				fmt.Sprintf("slo=%.0fms", p.SLOMS))
			continue
		}
		k := key{p.Device, p.LoadFraction}
		switch {
		case p.Batching == "fixed" && p.Admission == "open":
			fixedP99[k] = p.P99MS
		case p.Batching == "adaptive" && p.Admission == "open":
			adaptiveP99[k] = p.P99MS
		}
		if p.Admission == "open" && p.Batching != "fixed" {
			openGood[k] = p.GoodputPct
		}
		if p.Admission == "bounded" {
			boundedGood[k] = p.GoodputPct
		}
		mb := "-"
		if p.MeanBatch > 0 {
			mb = fmt.Sprintf("%.1f", p.MeanBatch)
		}
		t.AddRow(
			p.Device, p.Batching, p.Admission,
			fmt.Sprintf("%.0f%%", p.LoadFraction*100),
			fmt.Sprintf("%.1f", p.OfferedIPS),
			fmt.Sprintf("%.1f", p.P50MS),
			fmt.Sprintf("%.1f", p.P99MS),
			fmt.Sprintf("%.1f", p.GoodputPct),
			fmt.Sprintf("%.1f", p.ShedPct),
			mb,
		)
	}
	for _, cfg := range sloConfigs() {
		if cfg.dev == "vpu" {
			continue
		}
		k := key{cfg.name, sloLoads[0]}
		if a, f := adaptiveP99[k], fixedP99[k]; a > 0 && f > a {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: adaptive batching cuts p99 at %.0f%% load from %.1fms to %.1fms (%.1fx)",
				cfg.name, sloLoads[0]*100, f, a, f/a))
		}
	}
	for _, cfg := range sloConfigs() {
		k := key{cfg.name, sloLoads[len(sloLoads)-1]}
		if o, b := openGood[k], boundedGood[k]; b > o {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: past the knee (%.0f%% load) bounded admission holds goodput at %.1f%% vs %.1f%% open",
				cfg.name, sloLoads[len(sloLoads)-1]*100, b, o))
		}
	}
	return t, nil
}
