package bench

import (
	"fmt"
	"time"

	"repro/internal/imagenet"
	"repro/internal/pipeline"
	"repro/internal/rng"
)

// splitHeadWindow is the boundary in-flight window used by the cut
// sweep: two tail batches. A window below the tail's batch size
// serializes batch assembly against the head (the tail waits
// (batch-window)/head-rate after every batch run); one extra batch of
// slack lets the next batch assemble while the previous one executes,
// and it dwarfs the head's own concurrency (4 sticks × the 2-deep
// overlap pipeline). The depth sweep below shows the strangle →
// saturate curve.
const splitHeadWindow = 64

// splitDepths is the boundary-window sweep run at the best cut.
var splitDepths = []int{4, 8, 16, 32, 64, 128}

// SplitPoint is one measurement of the split-inference experiment —
// the machine-readable form behind the Split table and the -json CLI
// output. Baselines run whole inferences (single device groups and
// equal-fleet dealt pools); cut points run the same fleet as a
// model-parallel pipeline partitioned at a whole-network layer
// boundary; depth points re-run the best cut under different boundary
// in-flight windows; replicas points re-run the best cut with one
// stage widened into a pool of identical replica groups
// (pipeline.Stage.Replicas).
type SplitPoint struct {
	// Config names the fleet ("gpu-b32", "pool-4vpu+gpu",
	// "split-4vpu+gpu", ...).
	Config string `json:"config"`
	// Kind classifies the point: "baseline", "cut", "depth" or
	// "replicas".
	Kind string `json:"kind"`
	// Cut is the whole-network partition index (-1 for baselines).
	Cut int `json:"cut"`
	// CutLayer is the last layer of the head segment ("-" for
	// baselines).
	CutLayer string `json:"cut_layer"`
	// QueueDepth is the boundary in-flight window (0 for baselines).
	QueueDepth int `json:"queue_depth"`
	// Replicas is the widened stage's replica-group count (0 for
	// every unreplicated point; the Config name says which stage was
	// widened).
	Replicas int `json:"replicas"`
	// ThroughputIPS is the measured steady-state completion rate.
	ThroughputIPS float64 `json:"throughput_img_per_s"`
	// P50MS and P99MS are the per-item latency quantiles in
	// milliseconds.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// splitImages bounds the per-point image count: the sweep runs a full
// session per (cut, tail) pair, so paper-scale configs cap it — the
// sweep compares steady-state throughputs, which stabilize well under
// 2000 images.
func splitImages(cfg Config) int {
	const cap = 2000
	if cfg.ImagesPerSubset > cap {
		return cap
	}
	return cfg.ImagesPerSubset
}

// splitSession runs one split-experiment session and reduces its
// report to a point.
func (h *Harness) splitSession(name string, kind string, cut int, cutLayer string, depth int, opts []pipeline.Option) (SplitPoint, error) {
	images := splitImages(h.cfg)
	ds := imagenet.DefaultConfig()
	ds.Images = images
	base := []pipeline.Option{
		pipeline.WithDataset(ds),
		pipeline.WithSeed(rng.New(h.cfg.Seed).Derive("split/" + name).Uint64()),
	}
	sess, err := pipeline.New(append(base, opts...)...)
	if err != nil {
		return SplitPoint{}, fmt.Errorf("bench: split %s: %w", name, err)
	}
	rep, err := sess.Run()
	if err != nil {
		return SplitPoint{}, fmt.Errorf("bench: split %s: %w", name, err)
	}
	ms := func(d time.Duration) float64 { return round2(d.Seconds() * 1e3) }
	return SplitPoint{
		Config:        name,
		Kind:          kind,
		Cut:           cut,
		CutLayer:      cutLayer,
		QueueDepth:    depth,
		ThroughputIPS: round2(rep.Throughput),
		P50MS:         ms(rep.Latency.P50),
		P99MS:         ms(rep.Latency.P99),
	}, nil
}

// SplitPoints runs the split-inference experiment: whole-inference
// baselines at equal fleet, a partition-point sweep over every valid
// GoogLeNet cut with a 4-stick VPU head feeding a CPU or GPU tail,
// and a boundary-window sweep at the best GPU-tail cut.
func (h *Harness) SplitPoints() ([]SplitPoint, error) {
	names := h.goog.LayerNames()
	cuts := h.goog.ValidCuts()
	layerAt := func(cut int) string { return names[cut-1] }

	var points []SplitPoint
	baselines := []struct {
		name string
		opts []pipeline.Option
	}{
		{"cpu-b32", []pipeline.Option{pipeline.WithCPU(32)}},
		{"gpu-b32", []pipeline.Option{pipeline.WithGPU(32)}},
		{"vpu-4", []pipeline.Option{pipeline.WithVPUs(4)}},
		{"pool-4vpu+cpu", []pipeline.Option{pipeline.WithVPUs(4), pipeline.WithCPU(32)}},
		{"pool-4vpu+gpu", []pipeline.Option{pipeline.WithVPUs(4), pipeline.WithGPU(32)}},
	}
	for _, b := range baselines {
		pt, err := h.splitSession(b.name, "baseline", -1, "-", 0, b.opts)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}

	head := func(window int) pipeline.Stage {
		st := pipeline.VPUStage(4)
		st.Queue = window
		return st
	}
	tails := []struct {
		name  string
		stage pipeline.Stage
	}{
		{"split-4vpu+cpu", pipeline.CPUStage(32)},
		{"split-4vpu+gpu", pipeline.GPUStage(32)},
	}
	bestCut, bestIPS := -1, 0.0
	for _, cut := range cuts {
		for _, tail := range tails {
			name := fmt.Sprintf("%s@%s", tail.name, layerAt(cut))
			pt, err := h.splitSession(name, "cut", cut, layerAt(cut), splitHeadWindow,
				[]pipeline.Option{
					pipeline.WithStages(head(splitHeadWindow), tail.stage),
					pipeline.WithCut(cut),
				})
			if err != nil {
				return nil, err
			}
			points = append(points, pt)
			if tail.name == "split-4vpu+gpu" && pt.ThroughputIPS > bestIPS {
				bestCut, bestIPS = cut, pt.ThroughputIPS
			}
		}
	}

	for _, depth := range splitDepths {
		name := fmt.Sprintf("split-4vpu+gpu@%s/w%d", layerAt(bestCut), depth)
		pt, err := h.splitSession(name, "depth", bestCut, layerAt(bestCut), depth,
			[]pipeline.Option{
				pipeline.WithStages(head(depth), pipeline.GPUStage(32)),
				pipeline.WithCut(bestCut),
			})
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}

	// Stage-parallel replicas at the best cut: widen one stage into a
	// pool of identical replica groups (pipeline.Stage.Replicas) and
	// see what extra hardware at the bottleneck buys over recutting.
	replicaCases := []struct {
		name       string
		head, tail pipeline.Stage
	}{
		{"split-2x4vpu+gpu", head(splitHeadWindow).Replicated(2), pipeline.GPUStage(32)},
		{"split-4vpu+2xgpu", head(splitHeadWindow), pipeline.GPUStage(32).Replicated(2)},
	}
	for _, rc := range replicaCases {
		name := fmt.Sprintf("%s@%s", rc.name, layerAt(bestCut))
		pt, err := h.splitSession(name, "replicas", bestCut, layerAt(bestCut), splitHeadWindow,
			[]pipeline.Option{
				pipeline.WithStages(rc.head, rc.tail),
				pipeline.WithCut(bestCut),
			})
		if err != nil {
			return nil, err
		}
		pt.Replicas = 2
		points = append(points, pt)
	}
	return points, nil
}

// Split renders the split-inference experiment as a table: throughput
// and tail latency per partition point against the whole-inference
// baselines, with the winning cut called out.
func (h *Harness) Split() (*Table, error) {
	points, err := h.SplitPoints()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "split",
		Title: "Split inference: throughput vs partition point (4-VPU head + batch tail)",
		Columns: []string{
			"config", "cut", "cut layer", "window", "rep", "img/s", "p50 ms", "p99 ms",
		},
		Notes: []string{
			fmt.Sprintf("images per point: %d; closed-loop drain per session", splitImages(h.cfg)),
			"baselines run whole inferences; split rows run the same devices as a two-stage pipeline",
			"window is the boundary in-flight bound between head and tail (credit-based backpressure)",
			"replicas rows widen one stage of the best cut into a pool of identical replica groups (extra hardware at the bottleneck, same partition)",
		},
	}
	bestBase, bestBaseName := 0.0, ""
	bestSplit, bestSplitName := 0.0, ""
	for _, p := range points {
		cut, layer, window, rep := "-", p.CutLayer, "-", "-"
		if p.Kind != "baseline" {
			cut = fmt.Sprintf("%d", p.Cut)
			window = fmt.Sprintf("%d", p.QueueDepth)
		}
		if p.Kind == "replicas" {
			rep = fmt.Sprintf("%d", p.Replicas)
		}
		t.AddRow(
			p.Config, cut, layer, window, rep,
			fmt.Sprintf("%.1f", p.ThroughputIPS),
			fmt.Sprintf("%.1f", p.P50MS),
			fmt.Sprintf("%.1f", p.P99MS),
		)
		switch p.Kind {
		case "baseline":
			if p.ThroughputIPS > bestBase {
				bestBase, bestBaseName = p.ThroughputIPS, p.Config
			}
		case "cut":
			if p.ThroughputIPS > bestSplit {
				bestSplit, bestSplitName = p.ThroughputIPS, p.Config
			}
		}
	}
	for _, p := range points {
		if p.Kind == "replicas" && bestSplit > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: %.1f img/s (%+.0f%% vs the best unreplicated cut at %.1f img/s)",
				p.Config, p.ThroughputIPS, (p.ThroughputIPS/bestSplit-1)*100, bestSplit))
		}
	}
	if bestSplit > bestBase {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"winner: %s at %.1f img/s beats best whole-inference baseline %s (%.1f img/s, +%.0f%%)",
			bestSplitName, bestSplit, bestBaseName, bestBase, (bestSplit/bestBase-1)*100))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"no cut beats the best whole-inference baseline %s (%.1f img/s); best split %s at %.1f img/s",
			bestBaseName, bestBase, bestSplitName, bestSplit))
	}
	return t, nil
}
