package bench

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graphfile"
	"repro/internal/imagenet"
	"repro/internal/nn"
	"repro/internal/rng"
)

// Fixed parameters of the accuracy pipeline. The dataset's noise level
// (imagenet.CalibratedNoiseSigma) was calibrated against exactly this
// configuration, so these do not follow Config.Seed. The classifier
// temperature sets the softmax logit scale: 150 places the top-1
// confidences where the FP16-vs-FP32 confidence difference lands in
// the paper's regime (Fig. 7b, ~4e-3) while leaving the top-1
// decision — and therefore the error rate — untouched (argmax is
// invariant to logit scaling in FP32; in FP16 it moves the error by
// under 0.1%, the paper's "negligible difference").
const (
	microWeightSeed       = 42
	classifierTemperature = 150.0
)

// Paper-reported values for Fig. 7 (§IV-B).
var (
	paperFig7aErr      = map[string]float64{"cpu": 0.3201, "vpu": 0.3192}
	paperFig7bConfDiff = 0.0044
)

// fig7Data caches the expensive functional comparison shared by
// Fig7a and Fig7b.
type fig7Data struct {
	subsets []fig7Subset
}

type fig7Subset struct {
	n       int
	wrong32 int
	wrong16 int
	diffSum float64 // Σ |conf32 - conf16| over both-correct images
	diffN   int
}

func (s fig7Subset) err32() float64 { return float64(s.wrong32) / float64(s.n) }
func (s fig7Subset) err16() float64 { return float64(s.wrong16) / float64(s.n) }
func (s fig7Subset) confDiff() float64 {
	if s.diffN == 0 {
		return 0
	}
	return s.diffSum / float64(s.diffN)
}

var fig7Cache struct {
	sync.Mutex
	byKey map[string]*fig7Data
}

// fig7 runs (or returns the cached) FP32-vs-FP16 comparison: the same
// preprocessed images through the FP32 network (the CPU/Caffe path)
// and through the FP16 network parsed from the compiled graph file
// (the NCS path). Ground-truth labels go through the bounding-box
// annotation extraction, as in §IV-B.
func (h *Harness) fig7() (*fig7Data, error) {
	key := fmt.Sprintf("%d/%d", h.cfg.FunctionalImagesPerSubset, h.cfg.Subsets)
	fig7Cache.Lock()
	if fig7Cache.byKey == nil {
		fig7Cache.byKey = map[string]*fig7Data{}
	}
	if d, ok := fig7Cache.byKey[key]; ok {
		fig7Cache.Unlock()
		return d, nil
	}
	fig7Cache.Unlock()

	dcfg := imagenet.DefaultConfig()
	dcfg.Images = h.cfg.FunctionalImagesPerSubset * h.cfg.Subsets
	dcfg.Subsets = h.cfg.Subsets
	ds, err := imagenet.New(dcfg)
	if err != nil {
		return nil, err
	}

	// The FP32 network (CPU path) with the prototype-calibrated
	// classifier, and its FP16 twin from the graph-file round trip
	// (exactly what mvNCCompile + the NCS firmware do to the weights).
	net32 := nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(microWeightSeed))
	if err := nn.CalibrateClassifier(net32, nn.MicroClassifierName, nn.MicroPoolName,
		ds.PreprocessedPrototypes(), classifierTemperature); err != nil {
		return nil, err
	}
	blob, err := graphfile.Compile(net32)
	if err != nil {
		return nil, err
	}
	net16, _, err := graphfile.Parse(blob)
	if err != nil {
		return nil, err
	}

	data := &fig7Data{subsets: make([]fig7Subset, h.cfg.Subsets)}
	for k := 0; k < h.cfg.Subsets; k++ {
		lo, hi := ds.SubsetRange(k)
		sub, err := h.fig7Subset(ds, net32, net16, lo, hi)
		if err != nil {
			return nil, err
		}
		data.subsets[k] = sub
	}
	fig7Cache.Lock()
	fig7Cache.byKey[key] = data
	fig7Cache.Unlock()
	return data, nil
}

// fig7Subset classifies images [lo, hi) under both precisions with a
// deterministic parallel reduction (chunks merged in index order).
func (h *Harness) fig7Subset(ds *imagenet.Dataset, net32, net16 *nn.Graph, lo, hi int) (fig7Subset, error) {
	workers := h.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := hi - lo
	if workers > n {
		workers = n
	}
	chunks := make([]fig7Subset, workers)
	errs := make([]error, workers)
	per := (n + workers - 1) / workers

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cLo := lo + w*per
		cHi := cLo + per
		if cHi > hi {
			cHi = hi
		}
		if cLo >= cHi {
			continue
		}
		wg.Add(1)
		go func(w, cLo, cHi int) {
			defer wg.Done()
			var acc fig7Subset
			for i := cLo; i < cHi; i++ {
				label, err := ds.LabelFromAnnotation(ds.Annotation(i))
				if err != nil {
					errs[w] = err
					return
				}
				img := ds.Preprocessed(i)
				in := img.Reshape(1, 3, ds.Config().Size, ds.Config().Size)
				out32, err := net32.Forward(in, nn.FP32)
				if err != nil {
					errs[w] = err
					return
				}
				out16, err := net16.Forward(in, nn.FP16)
				if err != nil {
					errs[w] = err
					return
				}
				p32, c32 := out32.ArgMax()
				p16, c16 := out16.ArgMax()
				acc.n++
				if p32 != label {
					acc.wrong32++
				}
				if p16 != label {
					acc.wrong16++
				}
				if p32 == label && p16 == label {
					d := float64(c32) - float64(c16)
					if d < 0 {
						d = -d
					}
					acc.diffSum += d
					acc.diffN++
				}
			}
			chunks[w] = acc
		}(w, cLo, cHi)
	}
	wg.Wait()

	var total fig7Subset
	for w := range chunks {
		if errs[w] != nil {
			return fig7Subset{}, errs[w]
		}
		total.n += chunks[w].n
		total.wrong32 += chunks[w].wrong32
		total.wrong16 += chunks[w].wrong16
		total.diffSum += chunks[w].diffSum
		total.diffN += chunks[w].diffN
	}
	return total, nil
}

// Fig7a regenerates Figure 7a: top-1 inference error per subset for
// the CPU (FP32) and VPU (FP16) implementations.
func (h *Harness) Fig7a() (*Table, error) {
	data, err := h.fig7()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig7a",
		Title:   "Top-1 inference error per subset: CPU (FP32) vs VPU (FP16)",
		Columns: []string{"subset", "CPU FP32 error", "VPU FP16 error"},
		Notes: []string{
			fmt.Sprintf("images per subset: %d (paper: 10000)", h.cfg.FunctionalImagesPerSubset),
			"paper averages: CPU 32.01%, VPU 31.92% (difference 0.09%)",
		},
	}
	var e32, e16 float64
	for k, s := range data.subsets {
		e32 += s.err32()
		e16 += s.err16()
		t.AddRow(
			fmt.Sprintf("Set-%d", k+1),
			fmt.Sprintf("%.2f%%", s.err32()*100),
			fmt.Sprintf("%.2f%%", s.err16()*100),
		)
	}
	n := float64(len(data.subsets))
	t.AddRow("mean",
		fmtRatio(e32/n*100, paperFig7aErr["cpu"]*100, "%.2f%%"),
		fmtRatio(e16/n*100, paperFig7aErr["vpu"]*100, "%.2f%%"),
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured FP32-FP16 error difference: %+.2f%% (paper: +0.09%%)", (e32-e16)/n*100))
	return t, nil
}

// Fig7b regenerates Figure 7b: the absolute confidence difference
// between the FP32 and FP16 implementations per subset, filtered to
// images both precisions classify correctly.
func (h *Harness) Fig7b() (*Table, error) {
	data, err := h.fig7()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig7b",
		Title:   "Absolute confidence difference per subset, CPU (FP32) vs VPU (FP16)",
		Columns: []string{"subset", "abs diff", "filtered images"},
		Notes: []string{
			"paper average: 0.44% (4.4e-3) after filtering top-1 miss-predictions",
		},
	}
	var sum float64
	for k, s := range data.subsets {
		sum += s.confDiff()
		t.AddRow(
			fmt.Sprintf("Set-%d", k+1),
			fmt.Sprintf("%.2e", s.confDiff()),
			fmt.Sprintf("%d", s.diffN),
		)
	}
	mean := sum / float64(len(data.subsets))
	t.AddRow("mean", fmtRatio(mean, paperFig7bConfDiff, "%.2e"), "")
	return t, nil
}
