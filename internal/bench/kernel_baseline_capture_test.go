package bench

import (
	"fmt"
	"os"
	"testing"
)

func TestCaptureKernelBaseline(t *testing.T) {
	if os.Getenv("NCSW_CAPTURE_KERNEL_BASELINE") == "" {
		t.Skip("capture disabled")
	}
	for _, w := range kernelWorkloads() {
		p := measureKernel(w.name, w.fn)
		fmt.Printf("%q: {nsPerOp: %g, allocsPerOp: %g, bytesPerOp: %g},\n",
			p.Bench, p.NsPerOp, p.AllocsPerOp, p.BytesPerOp)
	}
}
