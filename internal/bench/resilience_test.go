package bench

import (
	"reflect"
	"testing"
)

// TestResilienceShape asserts the resilience experiment's qualitative
// content at quick scale — the PR's acceptance bar:
//
//  1. with the empty plan, the unmonitored control and both monitored
//     policies produce identical results (monitoring is free);
//  2. under every injected fault level, the recovery policy holds
//     strictly higher goodput than fail-stop against the identical
//     fault and arrival sequences;
//  3. the availability counters are coherent (recovery repairs every
//     outage, fail-stop repairs none, uptime falls with faults).
func TestResilienceShape(t *testing.T) {
	skipHeavy(t)
	pts, err := harness(t).ResiliencePoints()
	if err != nil {
		t.Fatal(err)
	}
	want := len(resilienceConfigs()) * (1 + 3 + 2*(len(resilienceLevels())-1))
	if len(pts) != want {
		t.Fatalf("%d resilience points, want %d", len(pts), want)
	}
	type cell struct{ config, faults string }
	byCell := map[cell]map[string]ResiliencePoint{}
	for _, p := range pts {
		if p.Recovery == "probe" {
			if p.AchievedIPS <= 0 || p.SLOMS <= 0 {
				t.Errorf("%s: capacity probe %.2f img/s, slo %.1fms", p.Config, p.AchievedIPS, p.SLOMS)
			}
			continue
		}
		k := cell{p.Config, p.Faults}
		if byCell[k] == nil {
			byCell[k] = map[string]ResiliencePoint{}
		}
		byCell[k][p.Recovery] = p
		if p.GoodputPct < 0 || p.GoodputPct > 100 || p.UptimePct < 0 || p.UptimePct > 100 {
			t.Errorf("%s %s/%s: goodput %.1f%% uptime %.1f%% out of range",
				p.Config, p.Faults, p.Recovery, p.GoodputPct, p.UptimePct)
		}
	}
	for _, cfg := range resilienceConfigs() {
		// (1) The empty plan is indistinguishable across policies.
		none := byCell[cell{cfg.name, "none"}]
		for _, policy := range []string{"fail-stop", "recovery"} {
			a, b := none["none"], none[policy]
			b.Recovery = a.Recovery
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s: empty-plan %s differs from the unmonitored control:\n%+v\nvs\n%+v",
					cfg.name, policy, b, a)
			}
		}
		if none["none"].Injected != 0 || none["none"].Outages != 0 {
			t.Errorf("%s: empty plan injected %d faults, %d outages",
				cfg.name, none["none"].Injected, none["none"].Outages)
		}
		// (2) + (3) per fault level.
		for _, lvl := range []string{"light", "heavy"} {
			c := byCell[cell{cfg.name, lvl}]
			rec, fs := c["recovery"], c["fail-stop"]
			if rec.Injected == 0 || rec.Injected != fs.Injected {
				t.Errorf("%s/%s: fault sequences differ or are empty (%d vs %d injected)",
					cfg.name, lvl, rec.Injected, fs.Injected)
			}
			if rec.GoodputPct <= fs.GoodputPct {
				t.Errorf("%s/%s: recovery goodput %.1f%% not strictly above fail-stop %.1f%%",
					cfg.name, lvl, rec.GoodputPct, fs.GoodputPct)
			}
			if rec.Outages == 0 || rec.Recovered != rec.Outages {
				t.Errorf("%s/%s: recovery repaired %d of %d outages", cfg.name, lvl, rec.Recovered, rec.Outages)
			}
			if fs.Recovered != 0 {
				t.Errorf("%s/%s: fail-stop repaired %d outages", cfg.name, lvl, fs.Recovered)
			}
			if rec.MTTRMS <= 0 {
				t.Errorf("%s/%s: recovery MTTR %.1fms", cfg.name, lvl, rec.MTTRMS)
			}
			if rec.UptimePct >= 100 || fs.UptimePct >= rec.UptimePct {
				t.Errorf("%s/%s: uptime recovery %.1f%% vs fail-stop %.1f%% incoherent",
					cfg.name, lvl, rec.UptimePct, fs.UptimePct)
			}
		}
	}
}

// TestResilienceDeterministic re-runs one faulted cell on a fresh
// harness and asserts bit-identical points — the reproducibility
// claim the CI determinism gate enforces end to end.
func TestResilienceDeterministic(t *testing.T) {
	skipHeavy(t)
	run := func() []ResiliencePoint {
		cfg := QuickConfig()
		cfg.ImagesPerSubset = 100 // determinism needs no statistical weight
		h, err := NewHarness(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := h.ResiliencePoints()
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Error("two runs of the resilience experiment differ")
	}
}
