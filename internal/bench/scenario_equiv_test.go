package bench

import (
	"fmt"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/scenario"
)

// TestScenarioReproducesSLOBench pins the scenario engine to the
// hand-wired harness: a scenario expressing the slo experiment's
// cpu-b8 adaptive/bounded cell at 110% load must reproduce the
// bench's numbers bit-for-bit — same seeds, same Poisson arrival
// sequence, same admission edge, same adaptive assembler. The
// committed scenarios/slo-bounded.json is then held to the same
// standard, so the corpus file cannot silently drift from the bench
// it claims to mirror.
func TestScenarioReproducesSLOBench(t *testing.T) {
	h, err := NewHarness(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := servingConfig{name: "cpu-b8", dev: "cpu", batch: 8}
	images := h.cfg.ImagesPerSubset
	capacity, ready, err := h.servingCapacity(cfg, images)
	if err != nil {
		t.Fatal(err)
	}
	slo := h.sloTarget(cfg, capacity)
	const frac = 1.1
	rate := capacity * frac
	pt, err := h.sloPoint(cfg, sloVariant{batching: "adaptive", admission: "bounded"},
		images, frac, rate, ready, slo)
	if err != nil {
		t.Fatal(err)
	}

	// Build the scenario from the same derived values, nanosecond
	// durations and full-precision rate, so nothing is lost in the
	// JSON round trip.
	runName := fmt.Sprintf("load%.2f", frac)
	maxWait := time.Duration(sloMaxWaitFraction * float64(slo))
	delay := ""
	if ready > 0 {
		delay = fmt.Sprintf(`, "delay": "%dns"`, int64(ready))
	}
	src := fmt.Sprintf(`{
		"name": "slo-bounded-equiv",
		"seed": %d,
		"images": %d,
		"dataset": {"images": %d, "subsets": 1, "seed": %d},
		"fleet": {"groups": [{"kind": "cpu", "batch": %d, "seed_label": "serving/%s/run/%s"}]},
		"traffic": {
			"arrivals": {"process": "poisson", "rate": %s%s},
			"arrival_label": "slo/%s/%s"
		},
		"slo": "%dns",
		"admission": {"depth": %d, "policy": "shed-newest"},
		"batching": {"max_wait": "%dns", "adaptive": true}
	}`, h.cfg.Seed, images, images, h.cfg.Seed+2012,
		cfg.batch, cfg.name, runName,
		strconv.FormatFloat(rate, 'g', -1, 64), delay, cfg.name, runName,
		int64(slo), sloAdmissionDepth, int64(maxWait))

	sc, err := scenario.Parse([]byte(src), "slo-bounded-equiv.json")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}

	rep := res.Report
	msOf := func(d time.Duration) float64 { return round2(d.Seconds() * 1e3) }
	checks := []struct {
		name      string
		got, want float64
	}{
		{"achieved img/s", round2(rep.Throughput), pt.AchievedIPS},
		{"goodput %", round2(rep.Goodput * 100), pt.GoodputPct},
		{"shed %", round2(rep.ShedRate * 100), pt.ShedPct},
		{"p50 ms", msOf(rep.Latency.P50), pt.P50MS},
		{"p95 ms", msOf(rep.Latency.P95), pt.P95MS},
		{"p99 ms", msOf(rep.Latency.P99), pt.P99MS},
		{"max ms", msOf(rep.Latency.Max), pt.MaxMS},
		{"queue mean ms", msOf(rep.Latency.QueueMean), pt.QueueMeanMS},
		{"service mean ms", msOf(rep.Latency.ServiceMean), pt.ServiceMeanMS},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: scenario %v != bench %v", c.name, c.got, c.want)
		}
	}

	// The committed corpus file must be this exact scenario: same
	// parameters, same report, byte for byte.
	dir, err := scenario.DefaultCorpusDir()
	if err != nil {
		t.Fatal(err)
	}
	committed, err := scenario.LoadFile(filepath.Join(dir, "slo-bounded.json"))
	if err != nil {
		t.Fatal(err)
	}
	cres, err := committed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cres.Report.String(), res.Report.String(); got != want {
		t.Errorf("scenarios/slo-bounded.json drifted from the bench-derived parameters:\n--- committed ---\n%s\n--- derived ---\n%s",
			got, want)
	}
}
