package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The kernel-replay golden gate: the PR 7 kernel rewrite (specialized
// scheduler heap, single-rendezvous handoff, ring-buffer queues,
// index-based timer cancellation) claims to change no observable
// semantics. The committed goldens under testdata/ are the quick-scale
// hedge and resilience points JSON-encoded as produced by the
// PRE-rewrite kernel (the PR 6 tree, commit 0237adc); every future
// kernel must keep replaying them byte for byte. This extends the CI
// double-emission determinism gate (same-binary reproducibility) with
// cross-version reproducibility — the stronger property the rewrite
// was gated on.
//
// Regenerate (only when an experiment legitimately changes, never to
// paper over a kernel-ordering regression):
//
//	NCSW_UPDATE_GOLDEN=1 go test -run TestKernelReplaysGolden ./internal/bench

// goldenConfig is the scale the goldens were captured at — the
// TestResilienceDeterministic scale: full experiment structure,
// no statistical weight needed.
func goldenConfig() Config {
	cfg := QuickConfig()
	cfg.ImagesPerSubset = 100
	return cfg
}

// goldenJSON canonicalizes points for byte comparison.
func goldenJSON(t *testing.T, points any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(points); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under NCSW_UPDATE_GOLDEN=1.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("NCSW_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (capture with NCSW_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from the pre-rewrite kernel's golden (%d vs %d bytes) — the kernel changed observable event ordering", name, len(got), len(want))
	}
}

// TestKernelReplaysGoldenResilience asserts the current kernel
// replays the pre-rewrite resilience experiment byte for byte.
func TestKernelReplaysGoldenResilience(t *testing.T) {
	skipHeavy(t)
	h, err := NewHarness(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := h.ResiliencePoints()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "kernel_golden_resilience.json", goldenJSON(t, pts))
}

// TestKernelReplaysGoldenHedge asserts the current kernel replays the
// pre-rewrite hedge experiment byte for byte.
func TestKernelReplaysGoldenHedge(t *testing.T) {
	skipHeavy(t)
	h, err := NewHarness(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := h.HedgePoints()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "kernel_golden_hedge.json", goldenJSON(t, pts))
}
