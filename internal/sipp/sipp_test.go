package sipp

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func ramp(h, w int) *tensor.T {
	img := tensor.New(h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.Data[y*w+x] = float32(x) * 255 / float32(w-1)
		}
	}
	return img
}

func noisy(h, w int, seed uint64, sigma float32) *tensor.T {
	img := tensor.New(h, w)
	src := rng.New(seed)
	for i := range img.Data {
		img.Data[i] = 128 + sigma*src.NormFloat32()
	}
	return img
}

func variance(img *tensor.T) float64 {
	var sum, sum2 float64
	for _, v := range img.Data {
		sum += float64(v)
		sum2 += float64(v) * float64(v)
	}
	n := float64(img.Elems())
	m := sum / n
	return sum2/n - m*m
}

func TestToneMapGammaOneIsIdentity(t *testing.T) {
	tm, err := NewGammaToneMap(1.0)
	if err != nil {
		t.Fatal(err)
	}
	img := ramp(4, 64)
	out := tm.Apply(img)
	for i := range img.Data {
		if math.Abs(float64(out.Data[i]-img.Data[i])) > 0.01 {
			t.Fatalf("gamma 1 changed pixel %d: %g -> %g", i, img.Data[i], out.Data[i])
		}
	}
}

func TestToneMapGammaBrightens(t *testing.T) {
	tm, err := NewGammaToneMap(0.5) // gamma < 1 brightens midtones
	if err != nil {
		t.Fatal(err)
	}
	mid := tensor.New(1, 1)
	mid.Data[0] = 64
	out := tm.Apply(mid)
	want := 255 * math.Sqrt(64.0/255)
	if math.Abs(float64(out.Data[0])-want) > 1 {
		t.Errorf("gamma 0.5 of 64 = %g, want ~%g", out.Data[0], want)
	}
	// Monotonicity across the range.
	r := ramp(1, 256)
	o := tm.Apply(r)
	for i := 1; i < 256; i++ {
		if o.Data[i] < o.Data[i-1] {
			t.Fatal("tone map not monotone")
		}
	}
}

func TestToneMapClamps(t *testing.T) {
	tm, _ := NewGammaToneMap(2)
	img := tensor.New(1, 2)
	img.Data[0], img.Data[1] = -10, 300
	out := tm.Apply(img)
	if out.Data[0] != tm.lut[0] || out.Data[1] != tm.lut[255] {
		t.Error("out-of-range pixels not clamped")
	}
	if _, err := NewGammaToneMap(0); err == nil {
		t.Error("gamma 0 accepted")
	}
}

func TestDenoisePreservesConstant(t *testing.T) {
	d, err := NewDenoise(1.2)
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(8, 8)
	img.Fill(77)
	out := d.Apply(img)
	for i, v := range out.Data {
		if math.Abs(float64(v-77)) > 1e-3 {
			t.Fatalf("constant image changed at %d: %g", i, v)
		}
	}
}

func TestDenoiseReducesNoise(t *testing.T) {
	d, _ := NewDenoise(1.2)
	img := noisy(64, 64, 3, 20)
	before := variance(img)
	after := variance(d.Apply(img))
	if after >= before/3 {
		t.Errorf("denoise variance %g -> %g; expected a strong reduction", before, after)
	}
	if _, err := NewDenoise(-1); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestHoGEdgeOnRamp(t *testing.T) {
	hg := NewHoGEdge()
	img := ramp(16, 16)
	out := hg.Apply(img)
	// A horizontal ramp has constant horizontal gradient: uniform
	// magnitude in the interior, no vertical component.
	inner := out.At(8, 8)
	if inner <= 0 {
		t.Fatal("ramp gradient magnitude should be positive")
	}
	if math.Abs(float64(out.At(4, 8)-inner)) > 1e-3 {
		t.Error("interior gradient should be uniform on a ramp")
	}
	// A flat image has zero magnitude.
	flat := tensor.New(16, 16)
	flat.Fill(100)
	for _, v := range hg.Apply(flat).Data {
		if v != 0 {
			t.Fatal("flat image has nonzero gradient")
		}
	}
}

func TestHoGCellHistograms(t *testing.T) {
	hg := NewHoGEdge()
	img := ramp(16, 16) // pure horizontal gradient -> orientation 0
	hist, err := hg.CellHistograms(img, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !hist.ShapeOf.Equal(tensor.Shape{2, 2, 9}) {
		t.Fatalf("histogram shape = %v", hist.ShapeOf)
	}
	// The gradient of a horizontal ramp points along +x: orientation 0
	// (bin 0) must dominate every cell.
	for cyx := 0; cyx < 4; cyx++ {
		cell := hist.Data[cyx*9 : (cyx+1)*9]
		for b := 1; b < 9; b++ {
			if cell[b] > cell[0] {
				t.Errorf("cell %d: bin %d (%g) exceeds bin 0 (%g)", cyx, b, cell[b], cell[0])
			}
		}
	}
	if _, err := hg.CellHistograms(img, 0); err == nil {
		t.Error("cell 0 accepted")
	}
	if _, err := hg.CellHistograms(img, 64); err == nil {
		t.Error("cell larger than image accepted")
	}
}

func TestHarrisCornerResponse(t *testing.T) {
	hc := NewHarrisCorner()
	// Bright square in the top-left quadrant on a dark background.
	img := tensor.New(32, 32)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			img.Set(255, y, x)
		}
	}
	resp := hc.Apply(img)
	corner := resp.At(15, 15) // the square's inner corner
	edge := resp.At(15, 8)    // middle of an edge
	flat := resp.At(24, 24)   // background
	if corner <= 0 {
		t.Fatalf("corner response = %g, want positive", corner)
	}
	if corner <= edge {
		t.Errorf("corner (%g) should dominate edge (%g)", corner, edge)
	}
	if math.Abs(float64(flat)) > float64(corner)/100 {
		t.Errorf("flat response %g not negligible vs corner %g", flat, corner)
	}
	// Edges yield negative responses (det ≈ 0, trace > 0).
	if edge >= 0 {
		t.Errorf("edge response = %g, want negative", edge)
	}
}

func TestPipelineDurationModel(t *testing.T) {
	p := DefaultPipeline()
	tm, _ := NewGammaToneMap(0.8)
	d, _ := NewDenoise(1.2)
	p.Add(tm).Add(d).Add(NewHarrisCorner())
	if p.Stages() != 3 {
		t.Fatal("stages")
	}
	h, w := 224, 224
	dur, err := p.Duration(h, w)
	if err != nil {
		t.Fatal(err)
	}
	// 224*224 pixels + fill (1+5+5 lines) ≈ 52640 cycles at 600 MHz
	// ≈ 88 µs: the point of the SIPP — preprocessing is essentially
	// free next to a ~96 ms inference.
	want := time.Duration(float64(h*w+(1+5+5)*w) / 600e6 * float64(time.Second))
	if dur != want {
		t.Errorf("duration = %v, want %v", dur, want)
	}
	if dur > 200*time.Microsecond {
		t.Errorf("SIPP preprocessing %v should be ~100 µs", dur)
	}
}

func TestPipelineCMXLimit(t *testing.T) {
	p, err := NewPipeline(600e6, 4096) // absurdly small CMX
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewDenoise(1.2)
	p.Add(d)
	if _, err := p.Duration(224, 1024); err == nil {
		t.Error("oversized line buffers accepted")
	}
	// Narrow images fit.
	if _, err := p.Duration(224, 64); err != nil {
		t.Errorf("narrow image rejected: %v", err)
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := NewPipeline(0, 1); err == nil {
		t.Error("zero clock accepted")
	}
	p := DefaultPipeline()
	if _, err := p.Duration(8, 8); err == nil {
		t.Error("empty pipeline accepted")
	}
	tm, _ := NewGammaToneMap(1)
	p.Add(tm)
	if _, err := p.Duration(0, 8); err == nil {
		t.Error("zero-height image accepted")
	}
	if _, _, err := p.Run(tensor.New(3, 4, 4)); err == nil {
		t.Error("3-D input accepted")
	}
}

func TestPipelineRunFunctional(t *testing.T) {
	p := DefaultPipeline()
	tm, _ := NewGammaToneMap(1.0)
	d, _ := NewDenoise(1.0)
	p.Add(tm).Add(d)
	img := noisy(32, 32, 9, 15)
	out, dur, err := p.Run(img)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Error("no duration")
	}
	if !out.ShapeOf.Equal(img.ShapeOf) {
		t.Errorf("shape changed: %v", out.ShapeOf)
	}
	if variance(out) >= variance(img) {
		t.Error("pipeline did not smooth the image")
	}
}

func TestLuma(t *testing.T) {
	rgb := tensor.New(3, 2, 2)
	// Pure white pixel 0, pure red pixel 1.
	rgb.Set(255, 0, 0, 0)
	rgb.Set(255, 1, 0, 0)
	rgb.Set(255, 2, 0, 0)
	rgb.Set(255, 0, 0, 1)
	y, err := Luma(rgb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(y.At(0, 0))-255) > 0.1 {
		t.Errorf("white luma = %g", y.At(0, 0))
	}
	if math.Abs(float64(y.At(0, 1))-0.299*255) > 0.1 {
		t.Errorf("red luma = %g, want %g", y.At(0, 1), 0.299*255)
	}
	if _, err := Luma(tensor.New(2, 2)); err == nil {
		t.Error("2-D input accepted")
	}
	if _, err := Luma(tensor.New(1, 2, 2)); err == nil {
		t.Error("single-channel input accepted")
	}
}

func TestKernelMetadata(t *testing.T) {
	tm, _ := NewGammaToneMap(1)
	d, _ := NewDenoise(1)
	for _, tc := range []struct {
		k      Kernel
		name   string
		window int
	}{
		{tm, "tonemap", 1},
		{d, "denoise", 5},
		{NewHoGEdge(), "hog-edge", 3},
		{NewHarrisCorner(), "harris", 5},
	} {
		if tc.k.Name() != tc.name || tc.k.Window() != tc.window {
			t.Errorf("kernel %T metadata: %s/%d", tc.k, tc.k.Name(), tc.k.Window())
		}
	}
}
