// Package sipp models the Streaming Image Processing Pipeline of the
// Myriad 2 (§II-A of the paper): fully programmable hardware-
// accelerated kernels for common image-processing operations — tone
// mapping, Harris corner detection, the HoG edge operator, denoising —
// each connected to the CMX memory block through a crossbar, with a
// local controller per filter managing read/writeback. The typical
// kernel configuration is 5×5 per target output pixel, and filters
// can output one completely computed pixel per cycle.
//
// The package provides both halves of each kernel: the functional
// image operation (so pipelines produce real pixels) and the timing
// model (one pixel per cycle per filter, pipelined across stages, plus
// a per-stage line-buffer footprint that must fit in CMX). The paper
// notes that combining SHAVE execution with SIPP filtering is
// feasible; the pipeline model here is what an NCSw preprocessing
// stage would cost on-device.
package sipp

import (
	"fmt"
	"time"

	"repro/internal/tensor"
)

// Kernel is one hardware-accelerated filter stage.
type Kernel interface {
	// Name identifies the filter.
	Name() string
	// Window returns the filter's support size (w×w input pixels per
	// output pixel; 1 for pointwise filters).
	Window() int
	// Apply computes the filter on a single-channel image (H, W) in
	// [0,255], returning a new image of the same shape.
	Apply(in *tensor.T) *tensor.T
}

// Pipeline is an ordered chain of filters streaming through CMX.
type Pipeline struct {
	ClockHz  float64
	CMXBytes int
	stages   []Kernel
}

// NewPipeline creates a pipeline at the given clock with the given
// CMX budget. Use the Myriad 2 defaults via DefaultPipeline.
func NewPipeline(clockHz float64, cmxBytes int) (*Pipeline, error) {
	if clockHz <= 0 || cmxBytes <= 0 {
		return nil, fmt.Errorf("sipp: invalid pipeline parameters (%g Hz, %d bytes)", clockHz, cmxBytes)
	}
	return &Pipeline{ClockHz: clockHz, CMXBytes: cmxBytes}, nil
}

// DefaultPipeline returns a pipeline on the Myriad 2's 600 MHz clock
// and 2 MB CMX.
func DefaultPipeline() *Pipeline {
	p, err := NewPipeline(600e6, 2<<20)
	if err != nil {
		panic(err) // static arguments cannot fail
	}
	return p
}

// Add appends a filter stage and returns the pipeline for chaining.
func (p *Pipeline) Add(k Kernel) *Pipeline {
	p.stages = append(p.stages, k)
	return p
}

// Stages returns the number of filter stages.
func (p *Pipeline) Stages() int { return len(p.stages) }

// lineBufferBytes is the CMX footprint of one stage on a W-wide image:
// each filter's local controller keeps Window input lines plus one
// output line, 2 bytes per pixel (FP16 planes).
func lineBufferBytes(k Kernel, width int) int {
	return (k.Window() + 1) * width * 2
}

// CMXFootprint returns the total line-buffer bytes the pipeline needs
// for a given image width.
func (p *Pipeline) CMXFootprint(width int) int {
	total := 0
	for _, k := range p.stages {
		total += lineBufferBytes(k, width)
	}
	return total
}

// Duration returns the modelled execution time for an h×w image: the
// stages are fully pipelined through the crossbar, so the image
// streams once (one pixel per cycle) plus a per-stage fill latency of
// Window lines. It returns an error when the line buffers exceed CMX —
// the configuration a real SIPP setup would reject.
func (p *Pipeline) Duration(h, w int) (time.Duration, error) {
	if h <= 0 || w <= 0 {
		return 0, fmt.Errorf("sipp: invalid image %dx%d", h, w)
	}
	if len(p.stages) == 0 {
		return 0, fmt.Errorf("sipp: empty pipeline")
	}
	if fp := p.CMXFootprint(w); fp > p.CMXBytes {
		return 0, fmt.Errorf("sipp: line buffers need %d bytes, CMX has %d", fp, p.CMXBytes)
	}
	cycles := h * w // streaming: 1 output pixel per cycle
	for _, k := range p.stages {
		cycles += k.Window() * w // fill latency per stage
	}
	return time.Duration(float64(cycles) / p.ClockHz * float64(time.Second)), nil
}

// Run applies the stages in order (functionally) and returns the
// final image along with the modelled duration.
func (p *Pipeline) Run(in *tensor.T) (*tensor.T, time.Duration, error) {
	if in.Rank() != 2 {
		return nil, 0, fmt.Errorf("sipp: pipeline wants a (H, W) plane, got %v", in.ShapeOf)
	}
	d, err := p.Duration(in.Dim(0), in.Dim(1))
	if err != nil {
		return nil, 0, err
	}
	img := in
	for _, k := range p.stages {
		img = k.Apply(img)
	}
	return img, d, nil
}

// Luma converts a (3, H, W) RGB image in [0,255] to a single (H, W)
// luminance plane with the BT.601 weights, the form the SIPP's
// luminance-denoise path consumes.
func Luma(rgb *tensor.T) (*tensor.T, error) {
	if rgb.Rank() != 3 || rgb.Dim(0) != 3 {
		return nil, fmt.Errorf("sipp: Luma wants (3, H, W), got %v", rgb.ShapeOf)
	}
	h, w := rgb.Dim(1), rgb.Dim(2)
	out := tensor.New(h, w)
	plane := h * w
	r, g, b := rgb.Data[:plane], rgb.Data[plane:2*plane], rgb.Data[2*plane:3*plane]
	for i := range out.Data {
		out.Data[i] = 0.299*r[i] + 0.587*g[i] + 0.114*b[i]
	}
	return out, nil
}
