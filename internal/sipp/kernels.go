package sipp

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ToneMap is the SIPP tone-mapping filter: a pointwise 256-entry
// lookup table with linear interpolation, programmed here with a gamma
// curve.
type ToneMap struct {
	lut [256]float32
}

// NewGammaToneMap builds a tone map applying out = 255·(in/255)^gamma.
func NewGammaToneMap(gamma float64) (*ToneMap, error) {
	if gamma <= 0 {
		return nil, fmt.Errorf("sipp: gamma %g must be positive", gamma)
	}
	t := &ToneMap{}
	for i := range t.lut {
		t.lut[i] = float32(255 * math.Pow(float64(i)/255, gamma))
	}
	return t, nil
}

// Name implements Kernel.
func (t *ToneMap) Name() string { return "tonemap" }

// Window implements Kernel: pointwise.
func (t *ToneMap) Window() int { return 1 }

// Apply implements Kernel.
func (t *ToneMap) Apply(in *tensor.T) *tensor.T {
	out := tensor.New(in.ShapeOf...)
	for i, v := range in.Data {
		out.Data[i] = t.lookup(v)
	}
	return out
}

func (t *ToneMap) lookup(v float32) float32 {
	if v <= 0 {
		return t.lut[0]
	}
	if v >= 255 {
		return t.lut[255]
	}
	lo := int(v)
	frac := v - float32(lo)
	hi := lo + 1
	if hi > 255 {
		hi = 255
	}
	return t.lut[lo]*(1-frac) + t.lut[hi]*frac
}

// Denoise is the luminance-denoise filter: a 5×5 Gaussian smoothing
// kernel with edge clamping.
type Denoise struct {
	weights [5][5]float32
}

// NewDenoise builds the 5×5 Gaussian denoiser with the given sigma.
func NewDenoise(sigma float64) (*Denoise, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("sipp: denoise sigma %g must be positive", sigma)
	}
	d := &Denoise{}
	var sum float64
	for y := -2; y <= 2; y++ {
		for x := -2; x <= 2; x++ {
			w := math.Exp(-float64(x*x+y*y) / (2 * sigma * sigma))
			d.weights[y+2][x+2] = float32(w)
			sum += w
		}
	}
	inv := float32(1 / sum)
	for y := range d.weights {
		for x := range d.weights[y] {
			d.weights[y][x] *= inv
		}
	}
	return d, nil
}

// Name implements Kernel.
func (d *Denoise) Name() string { return "denoise" }

// Window implements Kernel.
func (d *Denoise) Window() int { return 5 }

// Apply implements Kernel.
func (d *Denoise) Apply(in *tensor.T) *tensor.T {
	h, w := in.Dim(0), in.Dim(1)
	out := tensor.New(h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc float32
			for ky := -2; ky <= 2; ky++ {
				sy := clamp(y+ky, 0, h-1)
				row := in.Data[sy*w:]
				for kx := -2; kx <= 2; kx++ {
					sx := clamp(x+kx, 0, w-1)
					acc += d.weights[ky+2][kx+2] * row[sx]
				}
			}
			out.Data[y*w+x] = acc
		}
	}
	return out
}

// HoGEdge is the Histogram-of-Oriented-Gradients edge operator: per
// pixel it produces the gradient magnitude; CellHistograms aggregates
// the orientation histograms HoG descriptors are built from.
type HoGEdge struct {
	// Bins is the orientation bin count for CellHistograms (default 9,
	// unsigned orientation over [0, π)).
	Bins int
}

// NewHoGEdge returns the standard 9-bin operator.
func NewHoGEdge() *HoGEdge { return &HoGEdge{Bins: 9} }

// Name implements Kernel.
func (hg *HoGEdge) Name() string { return "hog-edge" }

// Window implements Kernel: 3×3 Sobel support.
func (hg *HoGEdge) Window() int { return 3 }

// Apply implements Kernel: outputs the Sobel gradient magnitude.
func (hg *HoGEdge) Apply(in *tensor.T) *tensor.T {
	gx, gy := sobel(in)
	out := tensor.New(in.ShapeOf...)
	for i := range out.Data {
		out.Data[i] = float32(math.Hypot(float64(gx.Data[i]), float64(gy.Data[i])))
	}
	return out
}

// CellHistograms divides the image into cell×cell blocks and returns
// per-cell orientation histograms of shape (cellsY, cellsX, Bins),
// magnitude-weighted — the HoG descriptor core.
func (hg *HoGEdge) CellHistograms(in *tensor.T, cell int) (*tensor.T, error) {
	if cell <= 0 {
		return nil, fmt.Errorf("sipp: cell size %d", cell)
	}
	bins := hg.Bins
	if bins <= 0 {
		bins = 9
	}
	h, w := in.Dim(0), in.Dim(1)
	cy, cx := h/cell, w/cell
	if cy == 0 || cx == 0 {
		return nil, fmt.Errorf("sipp: image %dx%d smaller than cell %d", h, w, cell)
	}
	gx, gy := sobel(in)
	out := tensor.New(cy, cx, bins)
	for y := 0; y < cy*cell; y++ {
		for x := 0; x < cx*cell; x++ {
			i := y*w + x
			mag := math.Hypot(float64(gx.Data[i]), float64(gy.Data[i]))
			if mag == 0 {
				continue
			}
			// Unsigned orientation in [0, π).
			theta := math.Atan2(float64(gy.Data[i]), float64(gx.Data[i]))
			if theta < 0 {
				theta += math.Pi
			}
			bin := int(theta / math.Pi * float64(bins))
			if bin >= bins {
				bin = bins - 1
			}
			out.Data[((y/cell)*cx+(x/cell))*bins+bin] += float32(mag)
		}
	}
	return out, nil
}

// HarrisCorner is the Harris corner detector filter: the 5×5
// structure-tensor response R = det(M) − k·trace(M)².
type HarrisCorner struct {
	// K is the Harris sensitivity constant (typically 0.04–0.06).
	K float32
}

// NewHarrisCorner returns the detector with k = 0.04.
func NewHarrisCorner() *HarrisCorner { return &HarrisCorner{K: 0.04} }

// Name implements Kernel.
func (hc *HarrisCorner) Name() string { return "harris" }

// Window implements Kernel.
func (hc *HarrisCorner) Window() int { return 5 }

// Apply implements Kernel: outputs the per-pixel corner response.
func (hc *HarrisCorner) Apply(in *tensor.T) *tensor.T {
	h, w := in.Dim(0), in.Dim(1)
	gx, gy := sobel(in)
	out := tensor.New(h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sxx, syy, sxy float64
			for ky := -2; ky <= 2; ky++ {
				sy := clamp(y+ky, 0, h-1)
				for kx := -2; kx <= 2; kx++ {
					sx := clamp(x+kx, 0, w-1)
					ix := float64(gx.Data[sy*w+sx])
					iy := float64(gy.Data[sy*w+sx])
					sxx += ix * ix
					syy += iy * iy
					sxy += ix * iy
				}
			}
			det := sxx*syy - sxy*sxy
			tr := sxx + syy
			out.Data[y*w+x] = float32(det - float64(hc.K)*tr*tr)
		}
	}
	return out
}

// sobel computes 3×3 Sobel gradients with edge clamping.
func sobel(in *tensor.T) (gx, gy *tensor.T) {
	h, w := in.Dim(0), in.Dim(1)
	gx = tensor.New(h, w)
	gy = tensor.New(h, w)
	at := func(y, x int) float32 {
		return in.Data[clamp(y, 0, h-1)*w+clamp(x, 0, w-1)]
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tl, tc, tr := at(y-1, x-1), at(y-1, x), at(y-1, x+1)
			ml, mr := at(y, x-1), at(y, x+1)
			bl, bc, br := at(y+1, x-1), at(y+1, x), at(y+1, x+1)
			gx.Data[y*w+x] = (tr + 2*mr + br) - (tl + 2*ml + bl)
			gy.Data[y*w+x] = (bl + 2*bc + br) - (tl + 2*tc + tr)
		}
	}
	return gx, gy
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
