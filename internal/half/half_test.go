package half

import (
	"math"
	"testing"
)

func TestKnownConversions(t *testing.T) {
	cases := []struct {
		name string
		f    float32
		bits uint16
	}{
		{"zero", 0, 0x0000},
		{"negzero", float32(math.Copysign(0, -1)), 0x8000},
		{"one", 1, 0x3C00},
		{"negone", -1, 0xBC00},
		{"two", 2, 0x4000},
		{"half", 0.5, 0x3800},
		{"sixty-five-k", 65504, 0x7BFF},
		{"min-normal", 6.103515625e-05, 0x0400},
		{"min-subnormal", 5.960464477539063e-08, 0x0001},
		{"pi", float32(math.Pi), 0x4248},
		{"third", float32(1.0 / 3.0), 0x3555},
		{"thousand", 1000, 0x63D0},
		{"img-mean", 104, 0x5680},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := FromFloat32(c.f)
			if got.Bits() != c.bits {
				t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got.Bits(), c.bits)
			}
		})
	}
}

func TestRoundTripExactForAllFiniteHalves(t *testing.T) {
	for b := uint32(0); b <= 0xFFFF; b++ {
		h := FromBits(uint16(b))
		if h.IsNaN() {
			continue
		}
		back := FromFloat32(h.Float32())
		if back != h {
			t.Fatalf("round trip failed for bits %#04x: got %#04x", b, back.Bits())
		}
	}
}

func TestNaNRoundTripStaysNaN(t *testing.T) {
	for b := uint32(0); b <= 0xFFFF; b++ {
		h := FromBits(uint16(b))
		if !h.IsNaN() {
			continue
		}
		f := h.Float32()
		if !math.IsNaN(float64(f)) {
			t.Fatalf("bits %#04x should expand to NaN, got %g", b, f)
		}
		if !FromFloat32(f).IsNaN() {
			t.Fatalf("bits %#04x lost NaN-ness on round trip", b)
		}
	}
}

func TestOverflowToInfinity(t *testing.T) {
	if got := FromFloat32(65520); got != PositiveInfinity {
		t.Errorf("FromFloat32(65520) = %#04x, want +Inf (65520 is the overflow threshold)", got.Bits())
	}
	if got := FromFloat32(-65520); got != NegativeInfinity {
		t.Errorf("FromFloat32(-65520) = %#04x, want -Inf", got.Bits())
	}
	// 65519.999... rounds down to MaxValue.
	if got := FromFloat32(65519); got != MaxValue {
		t.Errorf("FromFloat32(65519) = %#04x, want MaxValue", got.Bits())
	}
	if got := FromFloat32(float32(math.Inf(1))); got != PositiveInfinity {
		t.Errorf("FromFloat32(+Inf) = %#04x", got.Bits())
	}
}

func TestUnderflowToZero(t *testing.T) {
	// Half of the smallest subnormal rounds to zero (ties-to-even).
	tiny := float32(2.980232238769531e-08) // 2^-25 exactly
	if got := FromFloat32(tiny); got != PositiveZero {
		t.Errorf("FromFloat32(2^-25) = %#04x, want +0 (tie rounds to even)", got.Bits())
	}
	// Just above the tie rounds up to the smallest subnormal.
	if got := FromFloat32(tiny * 1.0001); got != MinSubnormal {
		t.Errorf("FromFloat32(just above 2^-25) = %#04x, want MinSubnormal", got.Bits())
	}
	if got := FromFloat32(-tiny); got != NegativeZero {
		t.Errorf("FromFloat32(-2^-25) = %#04x, want -0", got.Bits())
	}
}

func TestRoundToNearestEvenTies(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 and the next half
	// (1+2^-10); ties-to-even keeps the even mantissa (1.0).
	tie := float32(1) + float32(math.Ldexp(1, -11))
	if got := FromFloat32(tie); got.Float32() != 1 {
		t.Errorf("tie at 1+2^-11 rounded to %g, want 1", got.Float32())
	}
	// (1+2^-10) + 2^-11 is halfway between odd mantissa 1+2^-10 and
	// even 1+2^-9; must round up to the even one.
	tie2 := float32(1) + float32(math.Ldexp(1, -10)) + float32(math.Ldexp(1, -11))
	want := float32(1) + float32(math.Ldexp(1, -9))
	if got := FromFloat32(tie2); got.Float32() != want {
		t.Errorf("tie above odd mantissa rounded to %g, want %g", got.Float32(), want)
	}
}

func TestMantissaCarryIntoExponent(t *testing.T) {
	// 2047.9999 should round up to 2048 (mantissa all-ones carries).
	f := float32(2047.999)
	got := FromFloat32(f)
	if got.Float32() != 2048 {
		t.Errorf("FromFloat32(%g) = %g, want 2048", f, got.Float32())
	}
}

func TestPredicates(t *testing.T) {
	if !QuietNaN.IsNaN() {
		t.Error("QuietNaN.IsNaN() = false")
	}
	if PositiveInfinity.IsNaN() {
		t.Error("+Inf reported as NaN")
	}
	if !PositiveInfinity.IsInf(1) || !PositiveInfinity.IsInf(0) || PositiveInfinity.IsInf(-1) {
		t.Error("IsInf sign handling wrong for +Inf")
	}
	if !NegativeInfinity.IsInf(-1) || NegativeInfinity.IsInf(1) {
		t.Error("IsInf sign handling wrong for -Inf")
	}
	if !PositiveZero.IsZero() || !NegativeZero.IsZero() || MinSubnormal.IsZero() {
		t.Error("IsZero wrong")
	}
	if !MinSubnormal.IsSubnormal() || MinNormal.IsSubnormal() || PositiveZero.IsSubnormal() {
		t.Error("IsSubnormal wrong")
	}
	if !MaxValue.IsFinite() || PositiveInfinity.IsFinite() || QuietNaN.IsFinite() {
		t.Error("IsFinite wrong")
	}
	if !NegativeZero.Signbit() || PositiveZero.Signbit() {
		t.Error("Signbit wrong")
	}
}

func TestNegAbs(t *testing.T) {
	one := FromFloat32(1)
	if one.Neg().Float32() != -1 {
		t.Error("Neg(1) != -1")
	}
	if one.Neg().Abs() != one {
		t.Error("Abs(-1) != 1")
	}
	if NegativeZero.Abs() != PositiveZero {
		t.Error("Abs(-0) != +0")
	}
}

func TestString(t *testing.T) {
	cases := map[Float16]string{
		FromFloat32(1.5):  "1.5",
		PositiveInfinity:  "+Inf",
		NegativeInfinity:  "-Inf",
		QuietNaN:          "NaN",
		FromFloat32(-2.5): "-2.5",
	}
	for h, want := range cases {
		if got := h.String(); got != want {
			t.Errorf("String(%#04x) = %q, want %q", h.Bits(), got, want)
		}
	}
}

func TestFromFloat64MatchesFloat32Path(t *testing.T) {
	vals := []float64{0, 1, -1, 0.1, 3.14159, 1e-7, 6e4, -123.456}
	for _, v := range vals {
		if FromFloat64(v) != FromFloat32(float32(v)) {
			t.Errorf("FromFloat64(%g) diverges from FromFloat32", v)
		}
	}
}
