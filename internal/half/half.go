// Package half implements IEEE 754 binary16 ("half precision") floating
// point arithmetic in software.
//
// The Myriad 2 VPU performs inference in native FP16; the paper's NCSw
// framework converts FP32 pixel data to FP16 with the OpenEXR half class
// before offloading to the Neural Compute Stick. This package is the Go
// equivalent of that conversion layer: bit-exact binary16 encoding with
// round-to-nearest-even, plus the small set of arithmetic helpers the
// inference engine needs to emulate an FP16 datapath.
//
// All conversions are deterministic and allocation-free. The zero value
// of Float16 is +0.
package half

import "math"

// Float16 is an IEEE 754 binary16 value stored in its raw bit pattern:
// 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
type Float16 uint16

// Special bit patterns.
const (
	// PositiveZero is +0: all bits clear.
	PositiveZero Float16 = 0x0000
	// NegativeZero is -0: sign bit only.
	NegativeZero Float16 = 0x8000
	// PositiveInfinity is +Inf: exponent all ones, mantissa zero.
	PositiveInfinity Float16 = 0x7C00
	// NegativeInfinity is -Inf: sign bit plus the +Inf pattern.
	NegativeInfinity Float16 = 0xFC00
	// QuietNaN is one canonical NaN encoding; IsNaN accepts all of them.
	QuietNaN Float16 = 0x7E00

	// MaxValue is the largest finite half: 65504.
	MaxValue Float16 = 0x7BFF
	// MinNormal is the smallest positive normal half: 2^-14.
	MinNormal Float16 = 0x0400
	// MinSubnormal is the smallest positive subnormal half: 2^-24.
	MinSubnormal Float16 = 0x0001
)

const (
	signMask     = 0x8000
	expMask      = 0x7C00
	mantissaMask = 0x03FF
	expShift     = 10
	expBias      = 15
)

// FromBits reinterprets a raw 16-bit pattern as a Float16.
func FromBits(b uint16) Float16 { return Float16(b) }

// Bits returns the raw 16-bit pattern of h.
func (h Float16) Bits() uint16 { return uint16(h) }

// FromFloat32 converts f to the nearest representable half using
// round-to-nearest-even, the rounding mode the Myriad 2 VAU implements.
// Values with magnitude above MaxValue round to infinity; values below
// the subnormal range flush to (signed) zero only when they round to it.
func FromFloat32(f float32) Float16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & signMask
	exp := int32(b>>23) & 0xFF
	man := b & 0x7FFFFF

	if exp == 0xFF { // infinity or NaN
		if man != 0 {
			m := uint16(man >> 13)
			if m == 0 {
				m = 1 // keep NaN-ness after truncation
			}
			return Float16(sign | expMask | m)
		}
		return Float16(sign | expMask)
	}

	e := exp - 127 + expBias
	if e >= 0x1F { // overflow to infinity
		return Float16(sign | expMask)
	}
	if e <= 0 { // subnormal half, or underflow to zero
		if e < -10 {
			return Float16(sign)
		}
		man |= 0x800000 // restore the implicit leading bit
		shift := uint32(14 - e)
		halfway := uint32(1) << (shift - 1)
		m := man >> shift
		rem := man & (1<<shift - 1)
		if rem > halfway || (rem == halfway && m&1 == 1) {
			m++ // may carry into the normal range, which is still correct
		}
		return Float16(sign | uint16(m))
	}

	// Normal range: round the 23-bit mantissa to 10 bits.
	m := man >> 13
	rem := man & 0x1FFF
	if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
		m++
		if m == 0x400 { // mantissa overflowed into the exponent
			m = 0
			e++
			if e >= 0x1F {
				return Float16(sign | expMask)
			}
		}
	}
	return Float16(sign | uint16(e)<<expShift | uint16(m))
}

// FromFloat64 converts f to the nearest half. The conversion goes
// through float32 first; because binary16 has far fewer significant
// bits than binary32 this cannot double-round incorrectly except for
// values that are already irrepresentable border cases in float32.
func FromFloat64(f float64) Float16 { return FromFloat32(float32(f)) }

// Float32 expands h to the exactly representable float32 value.
func (h Float16) Float32() float32 {
	sign := uint32(h&signMask) << 16
	exp := uint32(h>>expShift) & 0x1F
	man := uint32(h & mantissaMask)

	switch {
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal half: normalize into a float32 normal.
		e := uint32(127 - expBias + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= mantissaMask
		return math.Float32frombits(sign | e<<23 | man<<13)
	case exp == 0x1F:
		if man != 0 {
			return math.Float32frombits(sign | 0x7F800000 | man<<13)
		}
		return math.Float32frombits(sign | 0x7F800000)
	}
	return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
}

// Float64 expands h to float64.
func (h Float16) Float64() float64 { return float64(h.Float32()) }

// IsNaN reports whether h is any NaN encoding.
func (h Float16) IsNaN() bool {
	return h&expMask == expMask && h&mantissaMask != 0
}

// IsInf reports whether h is an infinity. sign > 0 tests only +Inf,
// sign < 0 only -Inf, and sign == 0 either.
func (h Float16) IsInf(sign int) bool {
	if h&expMask != expMask || h&mantissaMask != 0 {
		return false
	}
	switch {
	case sign > 0:
		return h&signMask == 0
	case sign < 0:
		return h&signMask != 0
	default:
		return true
	}
}

// IsZero reports whether h is +0 or -0.
func (h Float16) IsZero() bool { return h&^signMask == 0 }

// IsSubnormal reports whether h is a nonzero subnormal.
func (h Float16) IsSubnormal() bool {
	return h&expMask == 0 && h&mantissaMask != 0
}

// IsFinite reports whether h is neither infinite nor NaN.
func (h Float16) IsFinite() bool { return h&expMask != expMask }

// Signbit reports whether the sign bit of h is set.
func (h Float16) Signbit() bool { return h&signMask != 0 }

// Neg returns h with its sign flipped. Neg(NaN) is a NaN.
func (h Float16) Neg() Float16 { return h ^ signMask }

// Abs returns h with its sign bit cleared.
func (h Float16) Abs() Float16 { return h &^ signMask }

// String formats h with enough precision to round-trip.
func (h Float16) String() string {
	return formatFloat(h)
}
