package half

import (
	"math"
	"strconv"
)

// The arithmetic helpers below emulate an FP16 datapath by computing in
// float32 and rounding the result back to half. For Add, Sub and Mul
// the float32 intermediate is exact (two 11-bit significands fit in a
// 24-bit one), so the single rounding step yields the correctly rounded
// binary16 result — the same answer a hardware FP16 unit produces.

// Add returns a+b rounded to the nearest half.
func Add(a, b Float16) Float16 { return FromFloat32(a.Float32() + b.Float32()) }

// Sub returns a-b rounded to the nearest half.
func Sub(a, b Float16) Float16 { return FromFloat32(a.Float32() - b.Float32()) }

// Mul returns a*b rounded to the nearest half.
func Mul(a, b Float16) Float16 { return FromFloat32(a.Float32() * b.Float32()) }

// Div returns a/b rounded to the nearest half. The float32 quotient is
// not always exact, so in rare cases the result may differ from a
// correctly rounded binary16 division by one ULP; the inference engine
// only divides by powers of two (pooling) where the result is exact.
func Div(a, b Float16) Float16 { return FromFloat32(a.Float32() / b.Float32()) }

// FMA returns a*b+c rounded to the nearest half. The product is exact
// in float32; the addition uses float64 so the single final rounding to
// half is correct for all finite inputs.
func FMA(a, b, c Float16) Float16 {
	p := float64(a.Float32()) * float64(b.Float32())
	return FromFloat64(p + float64(c.Float32()))
}

// Sqrt returns the square root of h rounded to the nearest half.
func Sqrt(h Float16) Float16 {
	return FromFloat64(math.Sqrt(h.Float64()))
}

// Exp returns e**h rounded to the nearest half.
func Exp(h Float16) Float16 {
	return FromFloat64(math.Exp(h.Float64()))
}

// Max returns the larger of a and b. If either is NaN the other is
// returned, matching IEEE 754 maxNum semantics.
func Max(a, b Float16) Float16 {
	switch {
	case a.IsNaN():
		return b
	case b.IsNaN():
		return a
	case a.Float32() >= b.Float32():
		return a
	default:
		return b
	}
}

// Min returns the smaller of a and b with maxNum-style NaN handling.
func Min(a, b Float16) Float16 {
	switch {
	case a.IsNaN():
		return b
	case b.IsNaN():
		return a
	case a.Float32() <= b.Float32():
		return a
	default:
		return b
	}
}

// Less reports a < b under the usual total order on the extended reals.
// Any comparison involving NaN is false.
func Less(a, b Float16) bool {
	if a.IsNaN() || b.IsNaN() {
		return false
	}
	return a.Float32() < b.Float32()
}

// Equal reports numeric equality (so +0 == -0, NaN != NaN).
func Equal(a, b Float16) bool {
	if a.IsNaN() || b.IsNaN() {
		return false
	}
	return a.Float32() == b.Float32()
}

// ULPDistance returns the number of representable halves between a and
// b (0 when bit-identical up to signed-zero equivalence). It is the
// standard "units in the last place" metric over the monotone integer
// mapping of the binary16 encoding. The result is undefined for NaNs.
func ULPDistance(a, b Float16) int {
	ia, ib := ordinal(a), ordinal(b)
	if ia > ib {
		return int(ia - ib)
	}
	return int(ib - ia)
}

// ordinal maps the half encoding onto a monotone signed integer line so
// that consecutive representable values differ by exactly 1.
func ordinal(h Float16) int32 {
	v := int32(h & 0x7FFF)
	if h&signMask != 0 {
		return -v
	}
	return v
}

// NextUp returns the smallest half greater than h.
// NextUp(+Inf) = +Inf, NextUp(NaN) = NaN.
func NextUp(h Float16) Float16 {
	switch {
	case h.IsNaN() || h == PositiveInfinity:
		return h
	case h == NegativeZero || h == PositiveZero:
		return MinSubnormal
	case h.Signbit():
		return h - 1
	default:
		return h + 1
	}
}

// NextDown returns the largest half smaller than h.
func NextDown(h Float16) Float16 {
	switch {
	case h.IsNaN() || h == NegativeInfinity:
		return h
	case h == PositiveZero || h == NegativeZero:
		return MinSubnormal | signMask
	case h.Signbit():
		return h + 1
	default:
		return h - 1
	}
}

func formatFloat(h Float16) string {
	switch {
	case h.IsNaN():
		return "NaN"
	case h == PositiveInfinity:
		return "+Inf"
	case h == NegativeInfinity:
		return "-Inf"
	}
	return strconv.FormatFloat(h.Float64(), 'g', -1, 32)
}
