package half

// Slice kernels used by the FP16 execution mode of the inference
// engine. They operate on plain []float32 buffers so tensors keep a
// single storage type; "FP16" tensors are float32 buffers whose every
// element is exactly representable in binary16.

// Quantize converts src to halves, allocating the result.
func Quantize(src []float32) []Float16 {
	dst := make([]Float16, len(src))
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
	return dst
}

// Dequantize expands src to float32, allocating the result.
func Dequantize(src []Float16) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = v.Float32()
	}
	return dst
}

// RoundSlice rounds every element of s through binary16 in place,
// leaving a float32 buffer whose values are all exactly representable
// as halves. This is how the engine models an FP16 activation tensor.
func RoundSlice(s []float32) {
	for i, v := range s {
		s[i] = FromFloat32(v).Float32()
	}
}

// Rounded returns a copy of s with every element rounded through
// binary16.
func Rounded(s []float32) []float32 {
	out := make([]float32, len(s))
	for i, v := range s {
		out[i] = FromFloat32(v).Float32()
	}
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference
// between a and b, which must have equal length.
func MaxAbsDiff(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("half: MaxAbsDiff length mismatch")
	}
	var m float32
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// DotFP16 computes the dot product of a and b the way the engine's
// FP16 mode does: inputs are rounded to half, products are exact, and
// the accumulation is kept in float32 (the Myriad 2 VAU offers FP32
// accumulate for FP16 operands). The final sum is rounded back to half.
func DotFP16(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("half: DotFP16 length mismatch")
	}
	var acc float32
	for i := range a {
		x := FromFloat32(a[i]).Float32()
		y := FromFloat32(b[i]).Float32()
		acc += x * y
	}
	return FromFloat32(acc).Float32()
}

// DotFP16Strict is DotFP16 with the accumulator itself held in
// binary16, modelling the lower-precision accumulate path. It loses
// considerably more precision on long reductions and exists for the
// precision ablation experiments.
func DotFP16Strict(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("half: DotFP16Strict length mismatch")
	}
	acc := PositiveZero
	for i := range a {
		x := FromFloat32(a[i])
		y := FromFloat32(b[i])
		acc = FMA(x, y, acc)
	}
	return acc.Float32()
}
