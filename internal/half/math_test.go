package half

import (
	"math"
	"testing"
	"testing/quick"
)

func TestArithmeticBasics(t *testing.T) {
	one, two, three := FromFloat32(1), FromFloat32(2), FromFloat32(3)
	if Add(one, two) != three {
		t.Error("1+2 != 3")
	}
	if Sub(three, two) != one {
		t.Error("3-2 != 1")
	}
	if Mul(two, three) != FromFloat32(6) {
		t.Error("2*3 != 6")
	}
	if Div(three, two) != FromFloat32(1.5) {
		t.Error("3/2 != 1.5")
	}
	if FMA(two, three, one) != FromFloat32(7) {
		t.Error("2*3+1 != 7")
	}
	if Sqrt(FromFloat32(9)) != three {
		t.Error("sqrt(9) != 3")
	}
	if Exp(PositiveZero) != one {
		t.Error("exp(0) != 1")
	}
}

func TestAddIsCorrectlyRounded(t *testing.T) {
	// 2048 + 1 in half: 1 is below half a ULP of 2048 (ULP = 2), so the
	// sum must stay 2048 under round-to-nearest-even.
	big := FromFloat32(2048)
	if got := Add(big, FromFloat32(1)); got != big {
		t.Errorf("2048+1 = %v, want 2048 (sticky rounding)", got)
	}
	// 2048 + 3 must round to 2052? ULP at 2048 is 2, 2051 is halfway
	// between 2050 and 2052 — representables are 2048, 2050, 2052; 2051
	// ties between 2050 (odd mantissa) and 2052 (even). Check evenness.
	got := Add(big, FromFloat32(3))
	if got.Float32() != 2052 {
		t.Errorf("2048+3 = %v, want 2052 (tie to even)", got)
	}
}

func TestSaturationToInfinity(t *testing.T) {
	if got := Add(MaxValue, MaxValue); got != PositiveInfinity {
		t.Errorf("max+max = %v, want +Inf", got)
	}
	if got := Mul(FromFloat32(300), FromFloat32(300)); got != PositiveInfinity {
		t.Errorf("300*300 = %v, want +Inf (overflow is what makes FP16 inference delicate)", got)
	}
}

func TestMaxMinNaNHandling(t *testing.T) {
	one := FromFloat32(1)
	if Max(QuietNaN, one) != one || Max(one, QuietNaN) != one {
		t.Error("Max should ignore NaN operands")
	}
	if Min(QuietNaN, one) != one || Min(one, QuietNaN) != one {
		t.Error("Min should ignore NaN operands")
	}
	if Max(FromFloat32(2), one).Float32() != 2 {
		t.Error("Max(2,1) != 2")
	}
	if Min(FromFloat32(2), one) != one {
		t.Error("Min(2,1) != 1")
	}
}

func TestComparisons(t *testing.T) {
	if !Less(FromFloat32(1), FromFloat32(2)) {
		t.Error("1 < 2 failed")
	}
	if Less(QuietNaN, FromFloat32(1)) || Less(FromFloat32(1), QuietNaN) {
		t.Error("NaN comparisons must be false")
	}
	if !Equal(PositiveZero, NegativeZero) {
		t.Error("+0 must equal -0 numerically")
	}
	if Equal(QuietNaN, QuietNaN) {
		t.Error("NaN must not equal NaN")
	}
}

func TestULPDistance(t *testing.T) {
	if d := ULPDistance(FromFloat32(1), FromFloat32(1)); d != 0 {
		t.Errorf("ULP(1,1) = %d", d)
	}
	if d := ULPDistance(FromFloat32(1), NextUp(FromFloat32(1))); d != 1 {
		t.Errorf("ULP(1,nextup 1) = %d, want 1", d)
	}
	if d := ULPDistance(MinSubnormal, MinSubnormal.Neg()); d != 2 {
		t.Errorf("ULP(min,-min) = %d, want 2 (crosses zero)", d)
	}
	if d := ULPDistance(PositiveZero, NegativeZero); d != 0 {
		t.Errorf("ULP(+0,-0) = %d, want 0", d)
	}
}

func TestNextUpDown(t *testing.T) {
	if NextUp(PositiveZero) != MinSubnormal {
		t.Error("NextUp(+0) wrong")
	}
	if NextDown(PositiveZero) != MinSubnormal.Neg() {
		t.Error("NextDown(+0) wrong")
	}
	if NextUp(MaxValue) != PositiveInfinity {
		t.Error("NextUp(max) wrong")
	}
	if NextUp(PositiveInfinity) != PositiveInfinity {
		t.Error("NextUp(+Inf) should saturate")
	}
	if NextDown(NegativeInfinity) != NegativeInfinity {
		t.Error("NextDown(-Inf) should saturate")
	}
	if !NextUp(QuietNaN).IsNaN() {
		t.Error("NextUp(NaN) should stay NaN")
	}
	// NextUp on a negative number moves toward zero.
	if NextUp(FromFloat32(-1)).Float32() >= -0.9990 || NextUp(FromFloat32(-1)).Float32() <= -1 {
		t.Errorf("NextUp(-1) = %v", NextUp(FromFloat32(-1)))
	}
}

// Property: conversion round trip h -> f32 -> h is the identity for
// every non-NaN half. (Exhaustive variant lives in half_test.go; the
// quick version exercises the generator plumbing.)
func TestQuickRoundTrip(t *testing.T) {
	f := func(b uint16) bool {
		h := FromBits(b)
		if h.IsNaN() {
			return FromFloat32(h.Float32()).IsNaN()
		}
		return FromFloat32(h.Float32()) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FromFloat32 is monotone — a <= b implies half(a) <= half(b).
func TestQuickMonotoneConversion(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return !Less(FromFloat32(b), FromFloat32(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: rounding error is bounded by half a ULP for in-range values.
func TestQuickRoundingErrorBound(t *testing.T) {
	f := func(a float32) bool {
		if math.IsNaN(float64(a)) || math.IsInf(float64(a), 0) {
			return true
		}
		if a > 65504 || a < -65504 {
			return true // out of half range, saturates
		}
		h := FromFloat32(a)
		lo, hi := NextDown(h).Float32(), NextUp(h).Float32()
		// The rounded value must be at least as close as the neighbors.
		d := math.Abs(float64(h.Float32()) - float64(a))
		return d <= math.Abs(float64(lo)-float64(a)) && d <= math.Abs(float64(hi)-float64(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative and Mul distributes sign correctly.
func TestQuickArithmeticLaws(t *testing.T) {
	comm := func(a, b uint16) bool {
		x, y := FromBits(a), FromBits(b)
		if x.IsNaN() || y.IsNaN() {
			return true
		}
		return Add(x, y) == Add(y, x) || Add(x, y).IsNaN()
	}
	if err := quick.Check(comm, &quick.Config{MaxCount: 3000}); err != nil {
		t.Errorf("Add not commutative: %v", err)
	}
	sign := func(a, b uint16) bool {
		x, y := FromBits(a), FromBits(b)
		if x.IsNaN() || y.IsNaN() || x.IsZero() || y.IsZero() {
			return true
		}
		p := Mul(x, y)
		if p.IsNaN() {
			return true
		}
		return p.Signbit() == (x.Signbit() != y.Signbit())
	}
	if err := quick.Check(sign, &quick.Config{MaxCount: 3000}); err != nil {
		t.Errorf("Mul sign law violated: %v", err)
	}
}

// Property: Neg is an involution and flips Signbit.
func TestQuickNeg(t *testing.T) {
	f := func(b uint16) bool {
		h := FromBits(b)
		return h.Neg().Neg() == h && h.Neg().Signbit() != h.Signbit()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
