package half

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantizeDequantize(t *testing.T) {
	src := []float32{0, 1, -1, 0.1, 3.14159, 65504, -65504}
	q := Quantize(src)
	d := Dequantize(q)
	if len(q) != len(src) || len(d) != len(src) {
		t.Fatal("length mismatch")
	}
	for i := range src {
		if d[i] != FromFloat32(src[i]).Float32() {
			t.Errorf("index %d: dequantized %g, want %g", i, d[i], FromFloat32(src[i]).Float32())
		}
	}
}

func TestRoundSliceInPlace(t *testing.T) {
	s := []float32{0.1, 0.2, 0.3}
	want := Rounded(s)
	RoundSlice(s)
	for i := range s {
		if s[i] != want[i] {
			t.Errorf("index %d: in-place %g, copy %g", i, s[i], want[i])
		}
	}
	// After rounding, re-rounding is a no-op (idempotence).
	again := Rounded(s)
	for i := range s {
		if again[i] != s[i] {
			t.Errorf("RoundSlice not idempotent at %d", i)
		}
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{1, 2.5, 2}
	if got := MaxAbsDiff(a, b); got != 1 {
		t.Errorf("MaxAbsDiff = %g, want 1", got)
	}
	if got := MaxAbsDiff(a, a); got != 0 {
		t.Errorf("MaxAbsDiff(a,a) = %g, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	MaxAbsDiff(a, b[:2])
}

func TestDotFP16AgainstExact(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{0.5, 0.25, 2, -1}
	// Exactly representable operands: dot = 0.5+0.5+6-4 = 3.
	if got := DotFP16(a, b); got != 3 {
		t.Errorf("DotFP16 = %g, want 3", got)
	}
	if got := DotFP16Strict(a, b); got != 3 {
		t.Errorf("DotFP16Strict = %g, want 3", got)
	}
}

func TestDotFP16StrictLosesMorePrecision(t *testing.T) {
	// A long reduction of small values: the strict FP16 accumulator
	// stalls once the running sum dwarfs each addend, while the FP32
	// accumulator keeps absorbing them.
	n := 4096
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = 1
		b[i] = 1
	}
	exact := float32(n)
	loose := DotFP16(a, b)
	strict := DotFP16Strict(a, b)
	if math.Abs(float64(loose-exact)) > math.Abs(float64(strict-exact)) {
		t.Errorf("expected strict accumulation (%g) to be worse than fp32 accumulation (%g) vs exact %g",
			strict, loose, exact)
	}
	// FP16 cannot even represent 4096+1, so the strict sum saturates
	// well below n at 2048 (where ULP becomes 2 and +1 stops landing).
	if strict >= exact {
		t.Errorf("strict accumulator should have stagnated below %g, got %g", exact, strict)
	}
}

// Property: quantize/dequantize equals elementwise FromFloat32 rounding.
func TestQuickQuantizeMatchesScalar(t *testing.T) {
	f := func(src []float32) bool {
		d := Dequantize(Quantize(src))
		for i := range src {
			want := FromFloat32(src[i]).Float32()
			if d[i] != want && !(math.IsNaN(float64(d[i])) && math.IsNaN(float64(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: RoundSlice output is always exactly representable in half.
func TestQuickRoundSliceRepresentable(t *testing.T) {
	f := func(src []float32) bool {
		RoundSlice(src)
		for _, v := range src {
			if math.IsNaN(float64(v)) {
				continue
			}
			if FromFloat32(v).Float32() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
