package vpu

import (
	"math"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func googleEngine(t testing.TB) *Engine {
	t.Helper()
	g := nn.NewGoogLeNet(rng.New(1))
	e, err := NewEngine(DefaultConfig(), g, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPeakThroughput(t *testing.T) {
	cfg := DefaultConfig()
	// 12 SHAVEs x 8 lanes x 600 MHz = 57.6 GMAC/s.
	if got := cfg.PeakMACsPerSecond(); math.Abs(got-57.6e9) > 1 {
		t.Errorf("peak = %g, want 57.6e9", got)
	}
}

// TestGoogLeNetExecCalibration is the calibration anchor: on-device
// execution of GoogLeNet must land near 96 ms so the full NCS pipeline
// (USB + command + exec) reproduces the paper's 100.7 ms single-stick
// latency.
func TestGoogLeNetExecCalibration(t *testing.T) {
	e := googleEngine(t)
	got := e.BaseExecDuration()
	lo, hi := 90*time.Millisecond, 102*time.Millisecond
	if got < lo || got > hi {
		t.Errorf("GoogLeNet exec = %v, want in [%v, %v] (calibration target ~96 ms)", got, lo, hi)
	}
}

func TestLayerProfileConsistency(t *testing.T) {
	e := googleEngine(t)
	prof := e.LayerProfile()
	if len(prof) != 142 {
		t.Fatalf("profile rows = %d, want 142", len(prof))
	}
	var sum time.Duration
	for _, lc := range prof {
		if lc.Total < lc.Compute || lc.Total < lc.Memory {
			t.Errorf("layer %s total %v below components (%v, %v)", lc.Name, lc.Total, lc.Compute, lc.Memory)
		}
		switch lc.Bound {
		case "compute":
			if lc.Compute < lc.Memory {
				t.Errorf("layer %s marked compute-bound but memory dominates", lc.Name)
			}
		case "memory":
			if lc.Memory < lc.Compute {
				t.Errorf("layer %s marked memory-bound but compute dominates", lc.Name)
			}
		default:
			t.Errorf("layer %s has bound %q", lc.Name, lc.Bound)
		}
		sum += lc.Total
	}
	if sum != e.BaseExecDuration() {
		t.Errorf("profile sum %v != base %v", sum, e.BaseExecDuration())
	}
}

func TestConvLayersComputeBound(t *testing.T) {
	// The big convolutions must be compute-bound on this device —
	// that is what makes the VPU's MAC efficiency the headline — while
	// elementwise layers (relu, concat, dropout) are memory-bound.
	e := googleEngine(t)
	byBound := map[string]map[string]int{}
	for _, lc := range e.LayerProfile() {
		if byBound[lc.Kind] == nil {
			byBound[lc.Kind] = map[string]int{}
		}
		byBound[lc.Kind][lc.Bound]++
	}
	if byBound["conv"]["memory"] > byBound["conv"]["compute"]/4 {
		t.Errorf("too many memory-bound convs: %v", byBound["conv"])
	}
	for _, kind := range []string{"relu", "concat", "dropout"} {
		if byBound[kind]["compute"] > 0 {
			t.Errorf("%s layers should be memory-bound: %v", kind, byBound[kind])
		}
	}
}

func TestJitterIsSmallAndDeterministic(t *testing.T) {
	a := googleEngine(t)
	base := a.BaseExecDuration()
	var durations []time.Duration
	for i := 0; i < 100; i++ {
		d := a.NextExecDuration()
		if math.Abs(float64(d-base)/float64(base)) > 0.10 {
			t.Errorf("jittered duration %v deviates >10%% from base %v", d, base)
		}
		durations = append(durations, d)
	}
	if a.Inferences() != 100 {
		t.Errorf("Inferences = %d", a.Inferences())
	}
	// Re-creating the engine with identical seeds replays the stream.
	b := googleEngine(t)
	for i := 0; i < 100; i++ {
		if d := b.NextExecDuration(); d != durations[i] {
			t.Fatalf("jitter stream diverged at %d", i)
		}
	}
}

func TestZeroJitterExact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0
	g := nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(1))
	e, err := NewEngine(cfg, g, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if e.NextExecDuration() != e.BaseExecDuration() {
		t.Error("zero jitter must reproduce base duration")
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0
	g := nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(1))
	e, err := NewEngine(cfg, g, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	d := e.NextExecDuration()
	horizon := 2 * d
	got := e.EnergyJoules(horizon)
	want := d.Seconds()*cfg.ActivePowerW + d.Seconds()*cfg.IdlePowerW
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("energy = %g, want %g", got, want)
	}
	// A fully busy horizon uses active power only.
	if got := e.EnergyJoules(d); math.Abs(got-d.Seconds()*cfg.ActivePowerW) > 1e-9 {
		t.Errorf("busy-only energy = %g", got)
	}
	// Horizon shorter than busy time must not go negative.
	if got := e.EnergyJoules(d / 2); got <= 0 {
		t.Errorf("energy = %g", got)
	}
}

func TestEngineValidation(t *testing.T) {
	g := nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(1))
	if _, err := NewEngine(DefaultConfig(), nil, rng.New(0)); err == nil {
		t.Error("nil graph accepted")
	}
	bad := DefaultConfig()
	bad.ComputeEfficiency = 0
	if _, err := NewEngine(bad, g, rng.New(0)); err == nil {
		t.Error("zero efficiency accepted")
	}
	bad = DefaultConfig()
	bad.ComputeEfficiency = 1.5
	if _, err := NewEngine(bad, g, rng.New(0)); err == nil {
		t.Error("efficiency > 1 accepted")
	}
	bad = DefaultConfig()
	bad.DDRBandwidth = -1
	if _, err := NewEngine(bad, g, rng.New(0)); err == nil {
		t.Error("negative bandwidth accepted")
	}
	bad = DefaultConfig()
	bad.NumSHAVEs = 0
	if _, err := NewEngine(bad, g, rng.New(0)); err == nil {
		t.Error("zero SHAVEs accepted")
	}
	bad = DefaultConfig()
	bad.LayerOverhead = -time.Microsecond
	if _, err := NewEngine(bad, g, rng.New(0)); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestInferFunctional(t *testing.T) {
	cfg := DefaultConfig()
	g := nn.NewMicroGoogLeNet(nn.MicroConfig{Classes: 10, Input: 32}, rng.New(3))
	g.QuantizeWeightsFP16()
	e, err := NewEngine(cfg, g, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(3, 32, 32)
	img.FillNormal(rng.New(5), 0, 64)
	out, err := e.Infer(img)
	if err != nil {
		t.Fatal(err)
	}
	if !out.ShapeOf.Equal(tensor.Shape{10}) {
		t.Fatalf("out shape = %v", out.ShapeOf)
	}
	var sum float64
	for _, v := range out.Data {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-2 {
		t.Errorf("confidences sum to %g", sum)
	}
	// FP16 execution: output exactly representable.
	if !out.IsFP16Exact() {
		t.Error("VPU output must be FP16-exact")
	}
}

func TestMoreSHAVEsFaster(t *testing.T) {
	// Scaling the SHAVE count must reduce compute-bound time — the
	// knob behind the paper's observation that VPU performance comes
	// from the parallel vector array.
	g := nn.NewGoogLeNet(rng.New(1))
	cfg := DefaultConfig()
	e12, err := NewEngine(cfg, g, rng.New(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg6 := cfg
	cfg6.NumSHAVEs = 6
	e6, err := NewEngine(cfg6, g, rng.New(0))
	if err != nil {
		t.Fatal(err)
	}
	if e6.BaseExecDuration() <= e12.BaseExecDuration() {
		t.Errorf("6 SHAVEs (%v) should be slower than 12 (%v)",
			e6.BaseExecDuration(), e12.BaseExecDuration())
	}
	ratio := float64(e6.BaseExecDuration()) / float64(e12.BaseExecDuration())
	if ratio < 1.5 || ratio > 2.1 {
		t.Errorf("halving SHAVEs changed time by %.2fx, expected near 2x (compute dominated)", ratio)
	}
}
