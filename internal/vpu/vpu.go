// Package vpu models the Movidius Myriad 2 VPU (MA2450) of the Neural
// Compute Stick: the 12-SHAVE vector array, the CMX/LPDDR3 memory
// system, the per-layer execution cost, and the power islands.
//
// The model is a calibrated per-layer roofline (DESIGN.md §2): each
// layer costs max(compute, memory) plus a runtime-scheduler overhead,
// where compute comes from the layer's MAC count over the SHAVE
// array's effective FP16 throughput and memory from the activation and
// weight traffic over the DDR interface. The single calibration target
// is the paper's measured single-inference latency for GoogLeNet
// (100.7 ms including USB transfer, ≈96 ms on-device); everything else
// — multi-device scaling, images/Watt, the Fig. 8b projection — must
// emerge from the model.
//
// Functional execution is orthogonal: the engine can also run the
// network numerically in FP16 (via internal/nn) to produce the actual
// classification outputs the accuracy experiments compare.
package vpu

import (
	"fmt"
	"time"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Config describes the chip and the calibrated model constants.
type Config struct {
	// Architecture (Myriad 2 MA2450, §II-A of the paper).
	NumSHAVEs int     // 12 SHAVE VLIW vector processors
	ClockHz   float64 // 600 MHz nominal
	LanesFP16 int     // 128-bit VAU = 8 FP16 MACs per cycle per SHAVE
	CMXBytes  int     // 2 MB Connection Matrix scratchpad
	DDRBytes  int64   // 4 GB LPDDR3 global memory

	// Calibrated model constants.
	//
	// ComputeEfficiency is the achieved fraction of peak SHAVE MAC
	// throughput on convolution workloads (im2col layout overheads,
	// VLLIW schedule gaps, CMX bank conflicts). Calibrated so a full
	// GoogLeNet inference executes in ≈96 ms on-device, matching the
	// paper's 100.7 ms end-to-end single-stick latency once USB
	// transfer and command overhead are added.
	ComputeEfficiency float64
	// DDRBandwidth is effective LPDDR3 streaming bandwidth for
	// activations and weights (bytes/s).
	DDRBandwidth float64
	// LayerOverhead is the runtime scheduler's fixed cost to launch
	// one layer across the SHAVE array.
	LayerOverhead time.Duration
	// JitterSigma is the lognormal sigma applied per inference,
	// modelling DVFS/arbitration noise; it produces the error bars.
	JitterSigma float64

	// Power model (§V: chip TDP 0.9 W). Power islands let idle SHAVEs
	// be gated, so idle draw is far below active draw.
	IdlePowerW   float64 // SoC with SHAVE islands gated
	ActivePowerW float64 // all 12 SHAVE islands running
}

// DefaultConfig returns the calibrated MA2450 model.
func DefaultConfig() Config {
	return Config{
		NumSHAVEs:         12,
		ClockHz:           600e6,
		LanesFP16:         8,
		CMXBytes:          2 << 20,
		DDRBytes:          4 << 30,
		ComputeEfficiency: 0.340,
		DDRBandwidth:      2.5e9,
		LayerOverhead:     22 * time.Microsecond,
		JitterSigma:       0.012,
		IdlePowerW:        0.30,
		ActivePowerW:      0.90,
	}
}

func (c Config) validate() error {
	if c.NumSHAVEs <= 0 || c.ClockHz <= 0 || c.LanesFP16 <= 0 {
		return fmt.Errorf("vpu: invalid architecture in %+v", c)
	}
	if c.ComputeEfficiency <= 0 || c.ComputeEfficiency > 1 {
		return fmt.Errorf("vpu: efficiency %g out of (0,1]", c.ComputeEfficiency)
	}
	if c.DDRBandwidth <= 0 {
		return fmt.Errorf("vpu: non-positive DDR bandwidth")
	}
	if c.LayerOverhead < 0 || c.JitterSigma < 0 {
		return fmt.Errorf("vpu: negative overhead or jitter")
	}
	return nil
}

// PeakMACsPerSecond returns the theoretical FP16 MAC throughput of the
// SHAVE array (57.6 GMAC/s for the default config; the "1000 Gflops"
// marketing figure counts differently).
func (c Config) PeakMACsPerSecond() float64 {
	return float64(c.NumSHAVEs) * float64(c.LanesFP16) * c.ClockHz
}

// LayerCost is the modelled execution cost of one layer.
type LayerCost struct {
	Name    string
	Kind    string
	Compute time.Duration // SHAVE array busy time
	Memory  time.Duration // DDR streaming time
	Total   time.Duration // max(compute, memory) + overhead
	Bound   string        // "compute" or "memory"
}

// Engine is one VPU executing one compiled network. It is driven in
// virtual time by the NCS device model and can optionally compute
// results numerically.
type Engine struct {
	cfg    Config
	graph  *nn.Graph
	layers []LayerCost
	base   time.Duration // sum of layer totals, before jitter
	jitter *rng.Source

	// accounting
	inferences int64
	busy       time.Duration
}

// NewEngine builds the per-layer cost table for g under cfg. The
// graph's weights should already be FP16 (parsed from a graph file);
// functional execution runs in FP16 mode regardless.
func NewEngine(cfg Config, g *nn.Graph, seed *rng.Source) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("vpu: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("vpu: %w", err)
	}
	e := &Engine{cfg: cfg, graph: g, jitter: seed.Derive("vpu-jitter")}
	peak := cfg.PeakMACsPerSecond() * cfg.ComputeEfficiency
	for _, ls := range g.PerLayerStats() {
		comp := time.Duration(float64(ls.Stats.MACs) / peak * float64(time.Second))
		// FP16 activations in and out, plus weights streamed from DDR.
		bytes := 2 * (ls.Stats.InputElems + ls.Stats.OutputElems + ls.Stats.Params)
		mem := time.Duration(float64(bytes) / cfg.DDRBandwidth * float64(time.Second))
		lc := LayerCost{
			Name:    ls.Name,
			Kind:    ls.Kind,
			Compute: comp,
			Memory:  mem,
		}
		if comp >= mem {
			lc.Total = comp + cfg.LayerOverhead
			lc.Bound = "compute"
		} else {
			lc.Total = mem + cfg.LayerOverhead
			lc.Bound = "memory"
		}
		e.layers = append(e.layers, lc)
		e.base += lc.Total
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Graph returns the executed network.
func (e *Engine) Graph() *nn.Graph { return e.graph }

// BaseExecDuration returns the jitter-free single-inference execution
// time on the SHAVE array (no USB, no host).
func (e *Engine) BaseExecDuration() time.Duration { return e.base }

// NextExecDuration returns the execution time for the next inference,
// with the deterministic jitter stream applied. Each call consumes one
// jitter sample.
func (e *Engine) NextExecDuration() time.Duration {
	d := time.Duration(float64(e.base) * e.jitter.Jitter(e.cfg.JitterSigma))
	e.inferences++
	e.busy += d
	return d
}

// LayerProfile returns the per-layer cost table (the mvNCProfile
// report).
func (e *Engine) LayerProfile() []LayerCost {
	return append([]LayerCost(nil), e.layers...)
}

// Infer computes the network output for one preprocessed CHW image in
// FP16, returning the class confidence vector. This is the functional
// half of the device; it does not consume virtual time.
func (e *Engine) Infer(img *tensor.T) (*tensor.T, error) {
	in := img.Reshape(append(tensor.Shape{1}, e.graph.InputShape()...)...)
	out, err := e.graph.Forward(in, nn.FP16)
	if err != nil {
		return nil, err
	}
	return out.Reshape(e.graph.OutputShape()...), nil
}

// Inferences returns the number of ExecDuration draws so far.
func (e *Engine) Inferences() int64 { return e.inferences }

// BusyTime returns the accumulated SHAVE-array busy time.
func (e *Engine) BusyTime() time.Duration { return e.busy }

// EnergyJoules returns the chip energy over a horizon: busy time at
// active power plus the remainder at idle power (power islands gate
// the SHAVE array between inferences).
func (e *Engine) EnergyJoules(horizon time.Duration) float64 {
	idle := horizon - e.busy
	if idle < 0 {
		idle = 0
	}
	return e.busy.Seconds()*e.cfg.ActivePowerW + idle.Seconds()*e.cfg.IdlePowerW
}
