// Package rng provides the deterministic pseudo-random source used
// everywhere randomness appears in the reproduction: network weight
// initialization, the synthetic ImageNet dataset, and the small timing
// jitter that produces the error bars in the figures.
//
// Determinism is a design requirement (DESIGN.md §4): two runs of any
// experiment must produce identical tables. The stdlib math/rand would
// work, but owning the generator pins the sequence independent of Go
// releases and gives cheap named sub-streams, so the dataset generator
// and the weight initializer can never perturb one another.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a splitmix64 generator. It is tiny, passes BigCrush-level
// statistical testing for this purpose, and supports O(1) seeding so
// per-image and per-layer sub-streams are cheap.
type Source struct {
	state uint64
	// spare caches the second output of the polar normal transform.
	spare    float64
	hasSpare bool
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Derive returns an independent sub-stream identified by name. The
// sub-stream seed mixes the parent seed with an FNV-1a hash of the
// name, so call order does not matter and streams never collide for
// distinct names in practice.
func (s *Source) Derive(name string) *Source {
	h := fnv.New64a()
	h.Write([]byte(name))
	return New(mix64(s.state ^ h.Sum64()))
}

// DeriveIndex returns an independent sub-stream for a numeric index,
// e.g. one stream per image in the synthetic dataset.
func (s *Source) DeriveIndex(i int) *Source {
	return New(mix64(s.state ^ (0x9E3779B97F4A7C15 * uint64(i+1))))
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix64(s.state)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (s *Source) Float32() float32 {
	return float32(s.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform integer in [0, n). It panics when n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style bounded generation without modulo bias for the
	// ranges used here (n is always far below 2^63).
	return int(s.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate via the Marsaglia
// polar method, caching the spare value.
func (s *Source) NormFloat64() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.hasSpare = true
		return u * f
	}
}

// NormFloat32 returns a standard normal variate as float32.
func (s *Source) NormFloat32() float32 { return float32(s.NormFloat64()) }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Jitter returns a multiplicative noise factor exp(sigma*N(0,1)),
// i.e. lognormal with median 1. The device models use it to produce
// the small run-to-run variation behind the figures' error bars.
func (s *Source) Jitter(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return math.Exp(sigma * s.NormFloat64())
}
