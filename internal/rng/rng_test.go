package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions across different seeds", same)
	}
}

func TestDeriveIsOrderIndependent(t *testing.T) {
	parent1 := New(7)
	w1 := parent1.Derive("weights").Uint64()
	d1 := parent1.Derive("dataset").Uint64()

	parent2 := New(7)
	d2 := parent2.Derive("dataset").Uint64()
	w2 := parent2.Derive("weights").Uint64()

	if w1 != w2 || d1 != d2 {
		t.Error("Derive must not depend on call order")
	}
	if w1 == d1 {
		t.Error("distinct names should give distinct streams")
	}
}

func TestDeriveIndexStreamsDiffer(t *testing.T) {
	p := New(7)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		v := p.DeriveIndex(i).Uint64()
		if seen[v] {
			t.Fatalf("collision at index %d", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	s := New(99)
	n := 100000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := s.Float64()
		sum += v
		buckets[int(v*10)]++
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %g, want ~0.5", mean)
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d badly unbalanced: %d", i, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(123)
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g", variance)
	}
}

func TestIntn(t *testing.T) {
	s := New(5)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		counts[s.Intn(7)]++
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("Intn(7) value %d count %d, want ~1000", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	s.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestJitter(t *testing.T) {
	s := New(17)
	if s.Jitter(0) != 1 {
		t.Error("Jitter(0) must be exactly 1")
	}
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		j := s.Jitter(0.02)
		if j <= 0 {
			t.Fatalf("jitter must be positive, got %g", j)
		}
		sum += math.Log(j)
	}
	if math.Abs(sum/float64(n)) > 0.002 {
		t.Errorf("log-jitter mean = %g, want ~0", sum/float64(n))
	}
}

// Property: Perm always returns a valid permutation for any small n.
func TestQuickPerm(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Derive twice with the same name yields the same stream.
func TestQuickDeriveStable(t *testing.T) {
	f := func(seed uint64, name string) bool {
		a := New(seed).Derive(name)
		b := New(seed).Derive(name)
		return a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
