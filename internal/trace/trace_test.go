package trace

import (
	"strings"
	"testing"
	"time"
)

const ms = time.Millisecond

func TestAddAndSpans(t *testing.T) {
	tl := New()
	tl.Add("vpu1", Exec, 10*ms, 20*ms, "img3")
	tl.Add("vpu0", Load, 0, 5*ms, "")
	if tl.Len() != 2 {
		t.Fatalf("Len = %d", tl.Len())
	}
	spans := tl.Spans()
	if spans[0].Track != "vpu0" || spans[1].Track != "vpu1" {
		t.Error("Spans must be sorted by start time")
	}
	if spans[1].Duration() != 10*ms {
		t.Errorf("Duration = %v", spans[1].Duration())
	}
}

func TestDisabledDropsSpans(t *testing.T) {
	tl := Disabled()
	tl.Add("x", Exec, 0, ms, "")
	if tl.Len() != 0 || tl.Enabled() {
		t.Error("disabled timeline stored a span")
	}
	if !New().Enabled() {
		t.Error("New must be enabled")
	}
}

func TestInvertedSpanPanics(t *testing.T) {
	tl := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tl.Add("x", Exec, 5*ms, 2*ms, "")
}

func TestInvertedSpanPanicsEvenWhenDisabled(t *testing.T) {
	tl := Disabled()
	defer func() {
		if recover() == nil {
			t.Error("disabled timeline must still catch inverted spans")
		}
	}()
	tl.Add("x", Exec, 5*ms, 2*ms, "")
}

func TestTracksFirstSeenOrder(t *testing.T) {
	tl := New()
	tl.Add("b", Exec, 10*ms, 20*ms, "")
	tl.Add("a", Exec, 0, 5*ms, "")
	tl.Add("b", Load, 30*ms, 40*ms, "")
	tracks := tl.Tracks()
	if len(tracks) != 2 || tracks[0] != "b" || tracks[1] != "a" {
		t.Errorf("Tracks = %v", tracks)
	}
}

func TestBusyTime(t *testing.T) {
	tl := New()
	tl.Add("v", Exec, 0, 10*ms, "")
	tl.Add("v", Exec, 20*ms, 25*ms, "")
	tl.Add("v", Load, 10*ms, 12*ms, "")
	tl.Add("w", Exec, 0, 100*ms, "")
	if got := tl.BusyTime("v", Exec); got != 15*ms {
		t.Errorf("BusyTime = %v, want 15ms", got)
	}
	if got := tl.BusyTime("v", Load); got != 2*ms {
		t.Errorf("BusyTime load = %v", got)
	}
	if got := tl.BusyTime("nope", Exec); got != 0 {
		t.Errorf("BusyTime missing track = %v", got)
	}
}

func TestOverlap(t *testing.T) {
	tl := New()
	// Two execs overlapping for 5ms, a third disjoint.
	tl.Add("a", Exec, 0, 10*ms, "")
	tl.Add("b", Exec, 5*ms, 15*ms, "")
	tl.Add("c", Exec, 20*ms, 30*ms, "")
	if got := tl.Overlap(Exec); got != 5*ms {
		t.Errorf("Overlap = %v, want 5ms", got)
	}
	// Load spans do not contribute to Exec overlap.
	tl.Add("d", Load, 0, 30*ms, "")
	if got := tl.Overlap(Exec); got != 5*ms {
		t.Errorf("Overlap after load = %v", got)
	}
}

func TestOverlapTriple(t *testing.T) {
	tl := New()
	tl.Add("a", Exec, 0, 10*ms, "")
	tl.Add("b", Exec, 0, 10*ms, "")
	tl.Add("c", Exec, 0, 10*ms, "")
	// Any >= 2 depth counts once: still 10ms.
	if got := tl.Overlap(Exec); got != 10*ms {
		t.Errorf("triple overlap = %v, want 10ms", got)
	}
}

func TestOverlapAdjacentSpansNoOverlap(t *testing.T) {
	tl := New()
	tl.Add("a", Exec, 0, 10*ms, "")
	tl.Add("b", Exec, 10*ms, 20*ms, "")
	if got := tl.Overlap(Exec); got != 0 {
		t.Errorf("adjacent spans overlap = %v, want 0", got)
	}
}

func TestCSV(t *testing.T) {
	tl := New()
	tl.Add("vpu0", Load, 0, 2*ms, "img0")
	csv := tl.CSV()
	if !strings.HasPrefix(csv, "track,kind,start_us,end_us,note\n") {
		t.Error("missing header")
	}
	if !strings.Contains(csv, "vpu0,load,0,2000,img0") {
		t.Errorf("row missing: %q", csv)
	}
}

func TestRender(t *testing.T) {
	tl := New()
	tl.Add("vpu0", Load, 0, 10*ms, "")
	tl.Add("vpu0", Exec, 10*ms, 90*ms, "")
	tl.Add("vpu1", Load, 10*ms, 20*ms, "")
	tl.Add("vpu1", Exec, 20*ms, 100*ms, "")
	out := tl.Render(40)
	if !strings.Contains(out, "vpu0") || !strings.Contains(out, "vpu1") {
		t.Error("tracks missing from render")
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "L") {
		t.Error("glyphs missing from render")
	}
	if !strings.Contains(out, "legend") {
		t.Error("legend missing")
	}
	// Each track row must be width+2 runes between the pipes.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			if len(inner) != 40 {
				t.Errorf("row width = %d, want 40", len(inner))
			}
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	if got := New().Render(40); !strings.Contains(got, "empty") {
		t.Errorf("empty render = %q", got)
	}
}

func TestAfter(t *testing.T) {
	tl := New()
	tl.Add("a", Exec, 0, 10*ms, "setup")
	tl.Add("a", Exec, 15*ms, 25*ms, "steady")
	tl.Add("b", Load, 18*ms, 30*ms, "crossing")
	cut := tl.After(20 * ms)
	if cut.Len() != 2 {
		t.Fatalf("After kept %d spans, want 2", cut.Len())
	}
	spans := cut.Spans()
	// "steady" is clamped to [0, 5ms]; "crossing" to [0, 10ms].
	for _, s := range spans {
		if s.Start != 0 {
			t.Errorf("span %q start = %v, want 0 (clamped)", s.Note, s.Start)
		}
	}
	if got := cut.BusyTime("a", Exec); got != 5*ms {
		t.Errorf("shifted busy = %v, want 5ms", got)
	}
	if got := cut.BusyTime("b", Load); got != 10*ms {
		t.Errorf("shifted load busy = %v, want 10ms", got)
	}
}

func TestRenderMinWidth(t *testing.T) {
	tl := New()
	tl.Add("a", Exec, 0, ms, "")
	out := tl.Render(1) // clamps to 10
	if !strings.Contains(out, "#") {
		t.Error("clamped render missing glyph")
	}
}
