// Package trace records execution timelines from the simulated
// multi-VPU pipeline — the events behind Fig. 4 of the paper (fork
// threads, load inputs, run VPU kernels, read output, join threads) —
// and renders them as text or CSV for inspection.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind labels a timeline span with the Fig. 4 vocabulary.
type Kind string

// Span kinds used by the NCSw scheduler and device models.
const (
	// Fork marks a worker being spawned.
	Fork Kind = "fork"
	// Load is the host -> device input transfer plus queueing.
	Load Kind = "load"
	// Exec is VPU kernels running.
	Exec Kind = "exec"
	// Read is result retrieval from the device.
	Read Kind = "read"
	// Join marks a worker being joined.
	Join Kind = "join"
	// Compute is host-side batch compute (CPU/GPU).
	Compute Kind = "compute"
	// Fault is a fault injection (instant, or a slowdown window).
	Fault Kind = "fault"
	// Down is a detected outage: detection to rejoin/abandonment.
	Down Kind = "down"
)

// Span is one labelled interval on one track (a device or thread).
type Span struct {
	Track string
	Kind  Kind
	Start time.Duration
	End   time.Duration
	Note  string
}

// Duration returns End - Start.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Timeline accumulates spans. The zero value is ready to use. It is
// not safe for concurrent use; the simulation kernel is single-
// threaded, so recording needs no locks.
type Timeline struct {
	spans   []Span
	enabled bool
}

// New returns an enabled timeline.
func New() *Timeline { return &Timeline{enabled: true} }

// Disabled returns a timeline that drops all spans; schedulers can
// record unconditionally without paying for storage.
func Disabled() *Timeline { return &Timeline{} }

// Enabled reports whether the timeline stores spans.
func (t *Timeline) Enabled() bool { return t.enabled }

// Add records a span. Inverted spans (End < Start) panic: virtual time
// cannot run backwards, so they indicate a scheduler bug.
func (t *Timeline) Add(track string, kind Kind, start, end time.Duration, note string) {
	if end < start {
		panic(fmt.Sprintf("trace: inverted span on %s: %v > %v", track, start, end))
	}
	if !t.enabled {
		return
	}
	t.spans = append(t.spans, Span{Track: track, Kind: kind, Start: start, End: end, Note: note})
}

// Len returns the number of stored spans.
func (t *Timeline) Len() int { return len(t.spans) }

// Spans returns a copy of the stored spans, ordered by start time
// (stable on insertion order for ties).
func (t *Timeline) Spans() []Span {
	out := append([]Span(nil), t.spans...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Tracks returns the distinct track names in first-seen order.
func (t *Timeline) Tracks() []string {
	var names []string
	seen := map[string]bool{}
	for _, s := range t.spans {
		if !seen[s.Track] {
			seen[s.Track] = true
			names = append(names, s.Track)
		}
	}
	return names
}

// BusyTime sums span durations per track and kind.
func (t *Timeline) BusyTime(track string, kind Kind) time.Duration {
	var total time.Duration
	for _, s := range t.spans {
		if s.Track == track && s.Kind == kind {
			total += s.Duration()
		}
	}
	return total
}

// Overlap returns the total time during which at least two tracks had
// an Exec span running simultaneously — the quantity Fig. 4 is about:
// loads on one stick overlapping execution on the others.
func (t *Timeline) Overlap(kind Kind) time.Duration {
	type edge struct {
		at    time.Duration
		delta int
	}
	var edges []edge
	for _, s := range t.spans {
		if s.Kind != kind {
			continue
		}
		edges = append(edges, edge{s.Start, +1}, edge{s.End, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // process ends before starts at ties
	})
	var overlap time.Duration
	depth := 0
	var since time.Duration
	for _, e := range edges {
		if depth >= 2 {
			overlap += e.at - since
		}
		depth += e.delta
		since = e.at
	}
	return overlap
}

// After returns a new timeline containing only the spans that end
// after cut, with every timestamp shifted so cut becomes zero (span
// starts clamp at zero). It isolates the steady-state window from
// setup work such as firmware boot.
func (t *Timeline) After(cut time.Duration) *Timeline {
	out := New()
	for _, s := range t.spans {
		if s.End <= cut {
			continue
		}
		start := s.Start - cut
		if start < 0 {
			start = 0
		}
		out.Add(s.Track, s.Kind, start, s.End-cut, s.Note)
	}
	return out
}

// CSV renders the timeline as "track,kind,start_us,end_us,note" rows.
func (t *Timeline) CSV() string {
	var b strings.Builder
	b.WriteString("track,kind,start_us,end_us,note\n")
	for _, s := range t.Spans() {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%s\n",
			s.Track, s.Kind, s.Start.Microseconds(), s.End.Microseconds(), s.Note)
	}
	return b.String()
}

// Render draws an ASCII timeline with one row per track, width columns
// wide — the textual Fig. 4. Each kind paints a different rune.
func (t *Timeline) Render(width int) string {
	if width < 10 {
		width = 10
	}
	spans := t.Spans()
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	var maxEnd time.Duration
	for _, s := range spans {
		if s.End > maxEnd {
			maxEnd = s.End
		}
	}
	if maxEnd == 0 {
		maxEnd = 1
	}
	glyph := map[Kind]byte{
		Fork: 'F', Load: 'L', Exec: '#', Read: 'R', Join: 'J', Compute: 'C',
		Fault: '!', Down: 'X',
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline 0 .. %v (1 col = %v)\n", maxEnd, maxEnd/time.Duration(width))
	for _, track := range t.Tracks() {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		// Two passes: fault-injection marks paint last so an overlapping
		// exec/down span cannot hide the instant a fault fired.
		for _, faultPass := range []bool{false, true} {
			for _, s := range spans {
				if s.Track != track || (s.Kind == Fault) != faultPass {
					continue
				}
				g, ok := glyph[s.Kind]
				if !ok {
					g = '?'
				}
				i0 := int(int64(s.Start) * int64(width) / int64(maxEnd))
				if i0 >= width {
					i0 = width - 1 // a span starting exactly at maxEnd
				}
				i1 := int(int64(s.End) * int64(width) / int64(maxEnd))
				if i1 >= width {
					i1 = width - 1
				}
				if s.Kind == Fault && s.Start == s.End {
					i1 = i0 // point fault: a single mark
				}
				for i := i0; i <= i1; i++ {
					row[i] = g
				}
			}
		}
		fmt.Fprintf(&b, "%-12s |%s|\n", track, row)
	}
	b.WriteString("legend: F=fork L=load #=exec R=read J=join C=compute !=fault X=down\n")
	return b.String()
}
