package nn

import (
	"testing"

	"repro/internal/tensor"
)

func TestMaxPoolBasic(t *testing.T) {
	p := &Pool{LayerName: "p", PoolOp: MaxPool, K: 2, Stride: 2}
	in := tensor.New(1, 1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	shape, err := p.OutShape([]tensor.Shape{{1, 4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !shape.Equal(tensor.Shape{1, 2, 2}) {
		t.Fatalf("shape = %v", shape)
	}
	out := tensor.New(1, 1, 2, 2)
	p.Forward(out, []*tensor.T{in})
	want := []float32{5, 7, 13, 15}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

func TestAvgPoolBasic(t *testing.T) {
	p := &Pool{LayerName: "p", PoolOp: AvgPool, K: 2, Stride: 2}
	in := tensor.New(1, 1, 2, 2)
	in.Data = []float32{1, 2, 3, 4}
	out := tensor.New(1, 1, 1, 1)
	p.Forward(out, []*tensor.T{in})
	if out.Data[0] != 2.5 {
		t.Errorf("avg = %g, want 2.5", out.Data[0])
	}
}

func TestPoolCeilModeShapes(t *testing.T) {
	// GoogLeNet pool1: 112x112, k3 s2 ceil -> 56x56 (floor gives 55).
	ceil := &Pool{LayerName: "p", PoolOp: MaxPool, K: 3, Stride: 2, CeilMode: true}
	floor := &Pool{LayerName: "p", PoolOp: MaxPool, K: 3, Stride: 2}
	in := []tensor.Shape{{64, 112, 112}}
	cs, err := ceil.OutShape(in)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := floor.OutShape(in)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Equal(tensor.Shape{64, 56, 56}) {
		t.Errorf("ceil shape = %v, want (64, 56, 56)", cs)
	}
	if !fs.Equal(tensor.Shape{64, 55, 55}) {
		t.Errorf("floor shape = %v, want (64, 55, 55)", fs)
	}
}

func TestPoolPaddedWindowClipping(t *testing.T) {
	// 3x3 stride-1 pad-1 max pool (the inception pool branch): shape
	// is preserved and edge windows clip to the valid region.
	p := &Pool{LayerName: "p", PoolOp: MaxPool, K: 3, Stride: 1, Pad: 1, CeilMode: true}
	shape, err := p.OutShape([]tensor.Shape{{1, 3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !shape.Equal(tensor.Shape{1, 3, 3}) {
		t.Fatalf("shape = %v, want (1, 3, 3)", shape)
	}
	in := tensor.New(1, 1, 3, 3)
	for i := range in.Data {
		in.Data[i] = float32(i) // max at bottom-right = 8
	}
	out := tensor.New(1, 1, 3, 3)
	p.Forward(out, []*tensor.T{in})
	if out.At(0, 0, 0, 0) != 4 { // window {0,1,3,4}
		t.Errorf("corner = %g, want 4", out.At(0, 0, 0, 0))
	}
	if out.At(0, 0, 2, 2) != 8 {
		t.Errorf("br = %g, want 8", out.At(0, 0, 2, 2))
	}
}

func TestAvgPoolPadDividesByValidArea(t *testing.T) {
	// Caffe average pooling divides by the clipped window area.
	p := &Pool{LayerName: "p", PoolOp: AvgPool, K: 3, Stride: 1, Pad: 1, CeilMode: true}
	in := tensor.New(1, 1, 2, 2)
	in.Data = []float32{4, 4, 4, 4}
	out := tensor.New(1, 1, 2, 2)
	p.Forward(out, []*tensor.T{in})
	for i, v := range out.Data {
		if v != 4 {
			t.Errorf("out[%d] = %g, want 4 (valid-area division)", i, v)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	p := &Pool{LayerName: "p", PoolOp: AvgPool, Global: true}
	shape, err := p.OutShape([]tensor.Shape{{8, 7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !shape.Equal(tensor.Shape{8, 1, 1}) {
		t.Fatalf("global shape = %v", shape)
	}
	in := tensor.New(2, 3, 4, 4)
	for c := 0; c < 3; c++ {
		for i := 0; i < 16; i++ {
			in.Data[c*16+i] = float32(c) // batch 0: plane c filled with c
			in.Data[48+c*16+i] = 10      // batch 1: all 10
		}
	}
	out := tensor.New(2, 3, 1, 1)
	p.Forward(out, []*tensor.T{in})
	for c := 0; c < 3; c++ {
		if out.At(0, c, 0, 0) != float32(c) {
			t.Errorf("batch0 chan %d = %g", c, out.At(0, c, 0, 0))
		}
		if out.At(1, c, 0, 0) != 10 {
			t.Errorf("batch1 chan %d = %g", c, out.At(1, c, 0, 0))
		}
	}
}

func TestPoolShapeErrors(t *testing.T) {
	p := &Pool{LayerName: "p", PoolOp: MaxPool, K: 5, Stride: 2}
	if _, err := p.OutShape([]tensor.Shape{{1, 3, 3}}); err == nil {
		t.Error("pool larger than input should error")
	}
	if _, err := p.OutShape([]tensor.Shape{{1, 3}}); err == nil {
		t.Error("non-CHW input should error")
	}
	if _, err := p.OutShape([]tensor.Shape{{1, 8, 8}, {1, 8, 8}}); err == nil {
		t.Error("two inputs should error")
	}
}

func TestPoolKindNames(t *testing.T) {
	if (&Pool{PoolOp: MaxPool}).Kind() != "maxpool" {
		t.Error("max kind")
	}
	if (&Pool{PoolOp: AvgPool}).Kind() != "avgpool" {
		t.Error("avg kind")
	}
}

func TestPoolStats(t *testing.T) {
	p := &Pool{LayerName: "p", PoolOp: MaxPool, K: 3, Stride: 2, CeilMode: true}
	s := p.Stats([]tensor.Shape{{64, 112, 112}})
	if s.MACs != int64(64*56*56*9) {
		t.Errorf("MACs = %d", s.MACs)
	}
	if s.Params != 0 {
		t.Error("pool has no params")
	}
}

func TestPoolNegativeInputsMax(t *testing.T) {
	// A max window of all-negative values must return the true max,
	// not zero (regression guard for -Inf initialisation).
	p := &Pool{LayerName: "p", PoolOp: MaxPool, K: 2, Stride: 2}
	in := tensor.New(1, 1, 2, 2)
	in.Data = []float32{-5, -3, -9, -4}
	out := tensor.New(1, 1, 1, 1)
	p.Forward(out, []*tensor.T{in})
	if out.Data[0] != -3 {
		t.Errorf("max of negatives = %g, want -3", out.Data[0])
	}
}
