package nn

import (
	"sync"

	"repro/internal/gemm"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv is a 2-D convolution with square or rectangular kernels,
// symmetric padding and stride, implemented as im2col + GEMM — the
// same lowering Caffe and the NCSDK graph compiler use, so the
// MAC/byte counts the cost models consume correspond to the real
// execution strategy.
type Conv struct {
	LayerName string
	InC, OutC int
	KH, KW    int
	Stride    int
	Pad       int
	Weights   *tensor.T // (OutC, InC, KH, KW)
	Bias      *tensor.T // (OutC)
}

// NewConv constructs a convolution layer with MSRA-initialized weights
// drawn from a sub-stream of src derived from the layer name, so
// adding layers never perturbs the weights of existing ones.
func NewConv(name string, inC, outC, k, stride, pad int, src *rng.Source) *Conv {
	return NewConvRect(name, inC, outC, k, k, stride, pad, src)
}

// NewConvRect is NewConv with a rectangular kernel.
func NewConvRect(name string, inC, outC, kh, kw, stride, pad int, src *rng.Source) *Conv {
	c := &Conv{
		LayerName: name,
		InC:       inC, OutC: outC,
		KH: kh, KW: kw,
		Stride: stride, Pad: pad,
		Weights: tensor.New(outC, inC, kh, kw),
		Bias:    tensor.New(outC),
	}
	s := src.Derive("conv/" + name)
	c.Weights.FillMSRA(s, inC*kh*kw)
	// Small positive bias keeps a healthy fraction of ReLUs active in
	// the randomly initialized full-size network.
	c.Bias.FillNormal(s, 0.01, 0.005)
	return c
}

// Name implements Layer.
func (c *Conv) Name() string { return c.LayerName }

// Kind implements Layer.
func (c *Conv) Kind() string { return "conv" }

// outHW computes the spatial output dimensions.
func (c *Conv) outHW(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	return oh, ow
}

// OutShape implements Layer.
func (c *Conv) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(c.LayerName, in, 1); err != nil {
		return nil, err
	}
	ic, h, w, err := chw(c.LayerName, in[0])
	if err != nil {
		return nil, err
	}
	if ic != c.InC {
		return nil, shapeError(c.LayerName, "input channels %d, layer expects %d", ic, c.InC)
	}
	oh, ow := c.outHW(h, w)
	if oh <= 0 || ow <= 0 {
		return nil, shapeError(c.LayerName, "kernel %dx%d stride %d pad %d does not fit input %dx%d",
			c.KH, c.KW, c.Stride, c.Pad, h, w)
	}
	return tensor.Shape{c.OutC, oh, ow}, nil
}

// colBuffers recycles im2col scratch across forward calls; convolution
// dominates runtime and the buffers are large (conv2 of GoogLeNet
// needs 64·9·56·56 floats ≈ 7 MB).
var colBuffers = sync.Pool{New: func() any { return new([]float32) }}

// Forward implements Layer.
func (c *Conv) Forward(out *tensor.T, ins []*tensor.T) {
	in := ins[0]
	h, w := in.Dim(2), in.Dim(3)
	n := in.Dim(0)
	oh, ow := c.outHW(h, w)
	k := c.InC * c.KH * c.KW
	spatial := oh * ow

	bufp := colBuffers.Get().(*[]float32)
	if cap(*bufp) < k*spatial {
		*bufp = make([]float32, k*spatial)
	}
	col := (*bufp)[:k*spatial]
	defer colBuffers.Put(bufp)

	wmat := c.Weights.Data // (OutC) x (k), already contiguous
	for b := 0; b < n; b++ {
		src := in.Data[b*c.InC*h*w : (b+1)*c.InC*h*w]
		im2col(col, src, c.InC, h, w, c.KH, c.KW, c.Stride, c.Pad, oh, ow)
		dst := out.Data[b*c.OutC*spatial : (b+1)*c.OutC*spatial]
		gemm.Mul(dst, wmat, col, c.OutC, k, spatial)
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.Bias.Data[oc]
			row := dst[oc*spatial : (oc+1)*spatial]
			for i := range row {
				row[i] += bias
			}
		}
	}
}

// im2col lowers one CHW image into the (C*KH*KW) x (OH*OW) patch
// matrix with zero padding.
func im2col(col, src []float32, cIn, h, w, kh, kw, stride, pad, oh, ow int) {
	row := 0
	for ci := 0; ci < cIn; ci++ {
		plane := src[ci*h*w:]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				dst := col[row*oh*ow:]
				i := 0
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[i] = 0
							i++
						}
						continue
					}
					srow := plane[sy*w:]
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride - pad + kx
						if sx < 0 || sx >= w {
							dst[i] = 0
						} else {
							dst[i] = srow[sx]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Stats implements Layer.
func (c *Conv) Stats(in []tensor.Shape) Stats {
	out, err := c.OutShape(in)
	if err != nil {
		return Stats{}
	}
	outElems := int64(out.Elems())
	return Stats{
		MACs:        outElems * int64(c.InC*c.KH*c.KW),
		Params:      int64(c.Weights.Elems() + c.Bias.Elems()),
		InputElems:  int64(in[0].Elems()),
		OutputElems: outElems,
	}
}

// Tensors implements the weighted interface.
func (c *Conv) Tensors() []*tensor.T { return []*tensor.T{c.Weights, c.Bias} }
