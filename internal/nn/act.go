package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation, applied elementwise.
type ReLU struct {
	LayerName string
}

// Name implements Layer.
func (r *ReLU) Name() string { return r.LayerName }

// Kind implements Layer.
func (r *ReLU) Kind() string { return "relu" }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(r.LayerName, in, 1); err != nil {
		return nil, err
	}
	return in[0].Clone(), nil
}

// Forward implements Layer.
func (r *ReLU) Forward(out *tensor.T, ins []*tensor.T) {
	src := ins[0].Data
	dst := out.Data
	for i, v := range src {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// Stats implements Layer.
func (r *ReLU) Stats(in []tensor.Shape) Stats {
	e := int64(in[0].Elems())
	return Stats{MACs: e, InputElems: e, OutputElems: e}
}

// LRN is Caffe's across-channel local response normalization,
// b_c = a_c / (k + (alpha/n)·Σ_{c'∈window} a_{c'}²)^beta,
// with GoogLeNet's parameters n=5, alpha=1e-4, beta=0.75, k=1.
type LRN struct {
	LayerName string
	Size      int
	Alpha     float32
	Beta      float32
	K         float32
}

// NewLRN builds the GoogLeNet-parameterized LRN layer.
func NewLRN(name string) *LRN {
	return &LRN{LayerName: name, Size: 5, Alpha: 1e-4, Beta: 0.75, K: 1}
}

// Name implements Layer.
func (l *LRN) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *LRN) Kind() string { return "lrn" }

// OutShape implements Layer.
func (l *LRN) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	if _, _, _, err := chw(l.LayerName, in[0]); err != nil {
		return nil, err
	}
	return in[0].Clone(), nil
}

// Forward implements Layer.
func (l *LRN) Forward(out *tensor.T, ins []*tensor.T) {
	in := ins[0]
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	half := l.Size / 2
	plane := h * w
	scale := l.Alpha / float32(l.Size)
	for b := 0; b < n; b++ {
		base := b * c * plane
		for i := 0; i < plane; i++ {
			for ci := 0; ci < c; ci++ {
				lo, hi := ci-half, ci+half
				if lo < 0 {
					lo = 0
				}
				if hi >= c {
					hi = c - 1
				}
				var ss float32
				for cj := lo; cj <= hi; cj++ {
					v := in.Data[base+cj*plane+i]
					ss += v * v
				}
				den := float32(math.Pow(float64(l.K+scale*ss), float64(l.Beta)))
				out.Data[base+ci*plane+i] = in.Data[base+ci*plane+i] / den
			}
		}
	}
}

// Stats implements Layer. Each output needs ~Size multiply-adds for
// the window sum plus the powf, which we fold into a few MACs.
func (l *LRN) Stats(in []tensor.Shape) Stats {
	e := int64(in[0].Elems())
	return Stats{MACs: e * int64(l.Size+4), InputElems: e, OutputElems: e}
}

// Dropout is an inference-time identity; it exists so the compiled
// graph has the same topology as the training-time prototxt, exactly
// like Caffe's deploy networks.
type Dropout struct {
	LayerName string
	Ratio     float32
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.LayerName }

// Kind implements Layer.
func (d *Dropout) Kind() string { return "dropout" }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(d.LayerName, in, 1); err != nil {
		return nil, err
	}
	return in[0].Clone(), nil
}

// Forward implements Layer.
func (d *Dropout) Forward(out *tensor.T, ins []*tensor.T) {
	copy(out.Data, ins[0].Data)
}

// Stats implements Layer.
func (d *Dropout) Stats(in []tensor.Shape) Stats {
	e := int64(in[0].Elems())
	return Stats{InputElems: e, OutputElems: e}
}
