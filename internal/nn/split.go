package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Split cuts the graph at a layer boundary into a head and a tail
// segment for pipeline-parallel inference: the head runs layers
// [0, cut) and outputs the cut activation, the tail runs layers
// [cut, Len) consuming that activation as its input tensor. Both
// segments share the original Layer values (weight-preserving: a
// calibrated or quantized layer stays calibrated in its segment), and
// both are re-validated so a shape-breaking cut fails here, not at
// execution.
//
// A cut is valid when every tail layer consumes only the cut node or
// other tail layers — i.e. exactly one tensor crosses the boundary.
// ValidCuts enumerates the interior cuts satisfying this.
//
// The degenerate cuts return the receiver itself for the non-empty
// side: Split(0) = (nil, g), Split(Len) = (g, nil). Callers composing
// pipelines use that to collapse an empty stage rather than run a
// zero-layer segment.
func (g *Graph) Split(cut int) (head, tail *Graph, err error) {
	n := len(g.order)
	switch {
	case cut < 0 || cut > n:
		return nil, nil, fmt.Errorf("nn: cut %d out of range [0,%d]", cut, n)
	case cut == 0:
		return nil, g, nil
	case cut == n:
		return g, nil, nil
	}
	if err := g.checkCut(cut); err != nil {
		return nil, nil, err
	}
	cutNode := g.order[cut-1]

	head = &Graph{
		name:       g.name + "/head",
		inputShape: g.inputShape.Clone(),
		nodes:      map[string]*node{},
		output:     cutNode,
	}
	for _, name := range g.order[:cut] {
		nd := g.nodes[name]
		head.nodes[name] = &node{
			layer:    nd.layer,
			inputs:   append([]string(nil), nd.inputs...),
			outShape: nd.outShape.Clone(),
		}
		head.order = append(head.order, name)
	}

	var cutShape tensor.Shape = g.nodes[cutNode].outShape.Clone()
	tail = &Graph{
		name:       g.name + "/tail",
		inputShape: cutShape,
		nodes:      map[string]*node{},
		output:     g.output,
	}
	for _, name := range g.order[cut:] {
		nd := g.nodes[name]
		inputs := make([]string, len(nd.inputs))
		for i, in := range nd.inputs {
			if in == cutNode {
				// The cut activation is the tail's input tensor.
				inputs[i] = InputName
			} else {
				inputs[i] = in
			}
		}
		tail.nodes[name] = &node{
			layer:    nd.layer,
			inputs:   inputs,
			outShape: nd.outShape.Clone(),
		}
		tail.order = append(tail.order, name)
	}

	if err := head.Validate(); err != nil {
		return nil, nil, fmt.Errorf("nn: split head at %d: %w", cut, err)
	}
	if err := tail.Validate(); err != nil {
		return nil, nil, fmt.Errorf("nn: split tail at %d: %w", cut, err)
	}
	return head, tail, nil
}

// checkCut verifies the single-tensor-boundary property of an
// interior cut: every tail layer's inputs resolve to the cut node or
// to earlier tail layers, and the graph's output lies in the tail.
func (g *Graph) checkCut(cut int) error {
	cutNode := g.order[cut-1]
	inTail := make(map[string]bool, len(g.order)-cut)
	outputSeen := false
	for _, name := range g.order[cut:] {
		for _, in := range g.nodes[name].inputs {
			if in != cutNode && !inTail[in] {
				return fmt.Errorf("nn: cut %d after %q invalid: tail layer %q consumes %q across the boundary",
					cut, cutNode, name, in)
			}
		}
		inTail[name] = true
		if name == g.output {
			outputSeen = true
		}
	}
	if !outputSeen {
		return fmt.Errorf("nn: cut %d after %q invalid: graph output %q is not in the tail",
			cut, cutNode, g.output)
	}
	return nil
}

// ValidCuts returns every interior cut index where Split succeeds, in
// ascending order. For sequential networks that is every boundary;
// for branching networks (inception modules) only the junctions where
// a single tensor crosses — branch interiors are excluded.
func (g *Graph) ValidCuts() []int {
	var cuts []int
	for cut := 1; cut < len(g.order); cut++ {
		if g.checkCut(cut) == nil {
			cuts = append(cuts, cut)
		}
	}
	return cuts
}
