// Package nn implements the convolutional-network inference engine the
// reproduction runs on every target device. It provides the layer set
// GoogLeNet needs (convolution, max/average pooling, ReLU, LRN, depth
// concatenation, dropout, fully connected, softmax), a DAG graph
// executor, and builders for the full GoogLeNet (Inception-v1)
// architecture and a scaled-down MicroGoogLeNet used by the accuracy
// experiments.
//
// One engine serves both precisions: FP32 is plain float32 execution;
// FP16 models the Myriad 2 datapath by rounding weights at compile
// time and every activation tensor through IEEE binary16 after each
// layer, with float32 accumulation inside reductions (the VAU's FP32
// accumulate mode). The Fig. 7 confidence differences in the paper are
// reproduced by this genuine rounding, not by injected noise.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Precision selects the numeric mode of a forward pass.
type Precision int

const (
	// FP32 executes in plain float32 (the CPU/GPU Caffe path).
	FP32 Precision = iota
	// FP16 rounds every activation through binary16 after each layer
	// (the VPU path; weights are rounded at graph-compile time) while
	// reductions accumulate in float32, the VAU's FP32-accumulate
	// option.
	FP16
	// FP16Strict additionally keeps the accumulators of convolution
	// and fully connected reductions in binary16 — the VAU's native
	// FP16 MAC path. It diverges measurably further from FP32 (the
	// magnitude the paper's Fig. 7b reports) at a substantial software
	// emulation cost.
	FP16Strict
)

// String returns the precision name.
func (p Precision) String() string {
	switch p {
	case FP16:
		return "FP16"
	case FP16Strict:
		return "FP16-strict"
	default:
		return "FP32"
	}
}

// strictLayer is implemented by layers with long reductions that have
// a dedicated FP16-accumulate path.
type strictLayer interface {
	// ForwardFP16Strict computes the layer with binary16 accumulators.
	ForwardFP16Strict(out *tensor.T, ins []*tensor.T)
}

// Stats describes the static cost of one layer at batch size 1. The
// device models in internal/vpu and internal/devsim convert these
// counts into time using their calibrated roofline parameters.
type Stats struct {
	MACs        int64 // multiply-accumulate operations
	Params      int64 // learnable parameters (weights + biases)
	InputElems  int64 // total elements read across all inputs
	OutputElems int64 // elements written
}

// Add returns the elementwise sum of two Stats.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		MACs:        s.MACs + o.MACs,
		Params:      s.Params + o.Params,
		InputElems:  s.InputElems + o.InputElems,
		OutputElems: s.OutputElems + o.OutputElems,
	}
}

// Layer is one operator in the network graph. Implementations are
// stateless at execution time apart from their weights; Forward must
// be safe for concurrent use on distinct output tensors, since the
// multi-VPU scheduler runs devices in parallel.
type Layer interface {
	// Name returns the unique layer name within its graph.
	Name() string
	// Kind returns the operator type ("conv", "pool", ...).
	Kind() string
	// OutShape computes the output shape from the input shapes
	// (batch excluded; shapes are CHW or flat). It returns an error
	// for incompatible inputs.
	OutShape(in []tensor.Shape) (tensor.Shape, error)
	// Forward computes the layer function. ins carries one tensor per
	// declared input, each shaped N×(input shape); out has shape
	// N×OutShape and is fully overwritten.
	Forward(out *tensor.T, ins []*tensor.T)
	// Stats reports the per-inference cost at batch 1 for the given
	// input shapes.
	Stats(in []tensor.Shape) Stats
}

// weighted is implemented by layers that carry learnable parameters;
// the graph compiler and FP16 quantizer iterate these.
type weighted interface {
	// Tensors returns the parameter tensors in a stable order.
	Tensors() []*tensor.T
}

// shapeError builds a descriptive error for OutShape failures.
func shapeError(layer, format string, args ...any) error {
	return fmt.Errorf("nn: layer %q: %s", layer, fmt.Sprintf(format, args...))
}

// wantInputs validates the input arity of a layer.
func wantInputs(layer string, in []tensor.Shape, n int) error {
	if len(in) != n {
		return shapeError(layer, "expected %d input(s), got %d", n, len(in))
	}
	return nil
}

// chw extracts (C, H, W) from a 3-D shape.
func chw(layer string, s tensor.Shape) (c, h, w int, err error) {
	if len(s) != 3 {
		return 0, 0, 0, shapeError(layer, "expected CHW input, got %v", s)
	}
	return s[0], s[1], s[2], nil
}

// batchOf verifies that t is a batched tensor (N×shape) and returns N.
func batchOf(t *tensor.T, shape tensor.Shape) int {
	if t.Rank() != len(shape)+1 {
		panic(fmt.Sprintf("nn: tensor rank %d does not carry batch over shape %v", t.Rank(), shape))
	}
	for i, d := range shape {
		if t.Dim(i+1) != d {
			panic(fmt.Sprintf("nn: tensor %v does not match batched shape %v", t.ShapeOf, shape))
		}
	}
	return t.Dim(0)
}
