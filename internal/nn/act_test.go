package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestReLU(t *testing.T) {
	r := &ReLU{LayerName: "r"}
	in := tensor.FromSlice([]float32{-1, 0, 2.5, -0.001}, 1, 4)
	out := tensor.New(1, 4)
	r.Forward(out, []*tensor.T{in})
	want := []float32{0, 0, 2.5, 0}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
	shape, err := r.OutShape([]tensor.Shape{{3, 4, 5}})
	if err != nil || !shape.Equal(tensor.Shape{3, 4, 5}) {
		t.Errorf("OutShape = %v, %v", shape, err)
	}
	if _, err := r.OutShape(nil); err == nil {
		t.Error("no inputs should error")
	}
}

func TestLRNKnownValue(t *testing.T) {
	// Single channel, single pixel: b = a / (1 + (alpha/5)·a²)^0.75.
	l := NewLRN("n")
	in := tensor.New(1, 1, 1, 1)
	in.Data[0] = 100
	out := tensor.New(1, 1, 1, 1)
	l.Forward(out, []*tensor.T{in})
	den := math.Pow(1+1e-4/5*100*100, 0.75)
	want := 100 / den
	if math.Abs(float64(out.Data[0])-want) > 1e-4 {
		t.Errorf("LRN = %g, want %g", out.Data[0], want)
	}
}

func TestLRNWindowClipping(t *testing.T) {
	// 3 channels, window 5: every channel sees all three (clipped).
	l := NewLRN("n")
	in := tensor.New(1, 3, 1, 1)
	in.Data = []float32{1, 2, 3}
	out := tensor.New(1, 3, 1, 1)
	l.Forward(out, []*tensor.T{in})
	ss := 1.0 + 4.0 + 9.0
	den := math.Pow(1+1e-4/5*ss, 0.75)
	for c, a := range []float64{1, 2, 3} {
		want := a / den
		if math.Abs(float64(out.Data[c])-want) > 1e-5 {
			t.Errorf("chan %d = %g, want %g", c, out.Data[c], want)
		}
	}
}

func TestLRNPreservesSignAndShrinks(t *testing.T) {
	l := NewLRN("n")
	in := tensor.New(1, 8, 2, 2)
	in.FillNormal(rng.New(4), 0, 50)
	out := tensor.New(1, 8, 2, 2)
	l.Forward(out, []*tensor.T{in})
	for i := range in.Data {
		if in.Data[i] == 0 {
			continue
		}
		if (in.Data[i] > 0) != (out.Data[i] > 0) {
			t.Fatal("LRN changed a sign")
		}
		if math.Abs(float64(out.Data[i])) > math.Abs(float64(in.Data[i]))+1e-6 {
			t.Fatal("LRN response larger than input (denominator >= 1)")
		}
	}
}

func TestDropoutIsIdentityAtInference(t *testing.T) {
	d := &Dropout{LayerName: "d", Ratio: 0.4}
	in := tensor.New(2, 5)
	in.FillNormal(rng.New(1), 0, 1)
	out := tensor.New(2, 5)
	d.Forward(out, []*tensor.T{in})
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatal("dropout must be identity at inference")
		}
	}
	if d.Kind() != "dropout" {
		t.Error("kind")
	}
}

func TestSoftmaxDistribution(t *testing.T) {
	s := &Softmax{LayerName: "s"}
	in := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 4)
	out := tensor.New(1, 4)
	s.Forward(out, []*tensor.T{in})
	var sum float32
	for i, v := range out.Data {
		if v <= 0 || v >= 1 {
			t.Errorf("prob[%d] = %g out of (0,1)", i, v)
		}
		sum += v
		if i > 0 && out.Data[i] <= out.Data[i-1] {
			t.Error("softmax must be monotone in logits")
		}
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Errorf("probabilities sum to %g", sum)
	}
}

func TestSoftmaxLargeLogitsStable(t *testing.T) {
	// Without max subtraction exp(500) overflows float32.
	s := &Softmax{LayerName: "s"}
	in := tensor.FromSlice([]float32{500, 499, 0}, 1, 3)
	out := tensor.New(1, 3)
	s.Forward(out, []*tensor.T{in})
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed")
		}
	}
	if out.Data[0] <= out.Data[1] {
		t.Error("ordering lost")
	}
}

func TestSoftmaxPerBatchRow(t *testing.T) {
	s := &Softmax{LayerName: "s"}
	in := tensor.FromSlice([]float32{0, 0, 10, 0}, 2, 2)
	out := tensor.New(2, 2)
	s.Forward(out, []*tensor.T{in})
	if math.Abs(float64(out.Data[0])-0.5) > 1e-6 {
		t.Errorf("row0 uniform expected, got %g", out.Data[0])
	}
	if out.Data[2] < 0.99 {
		t.Errorf("row1 should be confident, got %g", out.Data[2])
	}
}

func TestConcat(t *testing.T) {
	c := &Concat{LayerName: "c"}
	shape, err := c.OutShape([]tensor.Shape{{2, 3, 3}, {5, 3, 3}, {1, 3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !shape.Equal(tensor.Shape{8, 3, 3}) {
		t.Fatalf("shape = %v", shape)
	}
	a := tensor.New(1, 1, 2, 2)
	a.Fill(1)
	b := tensor.New(1, 2, 2, 2)
	b.Fill(2)
	out := tensor.New(1, 3, 2, 2)
	c.Forward(out, []*tensor.T{a, b})
	for i := 0; i < 4; i++ {
		if out.Data[i] != 1 {
			t.Error("first channel block wrong")
		}
	}
	for i := 4; i < 12; i++ {
		if out.Data[i] != 2 {
			t.Error("second channel block wrong")
		}
	}
}

func TestConcatBatched(t *testing.T) {
	c := &Concat{LayerName: "c"}
	a := tensor.New(2, 1, 1, 1)
	a.Data = []float32{10, 20}
	b := tensor.New(2, 1, 1, 1)
	b.Data = []float32{30, 40}
	out := tensor.New(2, 2, 1, 1)
	c.Forward(out, []*tensor.T{a, b})
	want := []float32{10, 30, 20, 40}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("out = %v, want %v", out.Data, want)
		}
	}
}

func TestConcatErrors(t *testing.T) {
	c := &Concat{LayerName: "c"}
	if _, err := c.OutShape([]tensor.Shape{{2, 3, 3}}); err == nil {
		t.Error("single input should error")
	}
	if _, err := c.OutShape([]tensor.Shape{{2, 3, 3}, {2, 4, 4}}); err == nil {
		t.Error("spatial mismatch should error")
	}
}

func TestFullyConnectedKnown(t *testing.T) {
	fc := NewFullyConnected("fc", 3, 2, rng.New(0))
	copy(fc.Weights.Data, []float32{1, 0, 0, 0, 1, 1})
	fc.Bias.Data = []float32{0.5, -1}
	in := tensor.FromSlice([]float32{2, 3, 4}, 1, 3)
	out := tensor.New(1, 2)
	fc.Forward(out, []*tensor.T{in})
	if out.Data[0] != 2.5 || out.Data[1] != 6 {
		t.Errorf("fc out = %v, want [2.5 6]", out.Data)
	}
}

func TestFullyConnectedAcceptsCHWInput(t *testing.T) {
	fc := NewFullyConnected("fc", 12, 4, rng.New(1))
	shape, err := fc.OutShape([]tensor.Shape{{3, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !shape.Equal(tensor.Shape{4}) {
		t.Errorf("shape = %v", shape)
	}
	if _, err := fc.OutShape([]tensor.Shape{{5, 2, 2}}); err == nil {
		t.Error("elem mismatch should error")
	}
}

func TestLayerStatsElementwise(t *testing.T) {
	in := []tensor.Shape{{4, 8, 8}}
	e := int64(4 * 8 * 8)
	if s := (&ReLU{LayerName: "r"}).Stats(in); s.MACs != e || s.OutputElems != e {
		t.Error("relu stats")
	}
	if s := NewLRN("l").Stats(in); s.MACs != e*9 {
		t.Errorf("lrn stats = %d", s.MACs)
	}
	if s := (&Dropout{LayerName: "d"}).Stats(in); s.MACs != 0 {
		t.Error("dropout stats")
	}
	if s := (&Softmax{LayerName: "s"}).Stats([]tensor.Shape{{10}}); s.MACs != 80 {
		t.Error("softmax stats")
	}
	if s := (&Concat{LayerName: "c"}).Stats([]tensor.Shape{{2, 2, 2}, {3, 2, 2}}); s.OutputElems != 20 {
		t.Error("concat stats")
	}
	fc := NewFullyConnected("fc", 1024, 1000, rng.New(0))
	if s := fc.Stats([]tensor.Shape{{1024}}); s.MACs != 1024000 || s.Params != 1024*1000+1000 {
		t.Error("fc stats")
	}
}
