package nn

import (
	"repro/internal/half"
	"repro/internal/tensor"
)

// FP16-strict forward paths: the reduction accumulators themselves are
// held in binary16, modelling the Myriad 2 VAU's native FP16 multiply-
// accumulate. Inputs and weights are assumed already FP16-exact (the
// graph executor quantizes activations between layers and the graph
// compiler quantizes weights), so each product is exact in float32 and
// only the running sum rounds — exactly the hardware behaviour.
//
// These paths are software emulation of per-element rounding and run
// an order of magnitude slower than the GEMM path; they exist for the
// Fig. 7 accuracy experiments and the precision ablation, never for
// the performance experiments (whose timing comes from the cost
// models, not from wall-clock execution).

// accumulateFP16 folds products into a binary16 accumulator.
func accumulateFP16(acc half.Float16, w, x []float32) half.Float16 {
	for i, wv := range w {
		if wv == 0 {
			continue
		}
		p := wv * x[i] // exact: both operands are FP16-exact
		acc = half.FromFloat32(acc.Float32() + p)
	}
	return acc
}

// ForwardFP16Strict implements strictLayer for Conv.
func (c *Conv) ForwardFP16Strict(out *tensor.T, ins []*tensor.T) {
	in := ins[0]
	n := in.Dim(0)
	h, w := in.Dim(2), in.Dim(3)
	oh, ow := c.outHW(h, w)
	k := c.InC * c.KH * c.KW
	spatial := oh * ow

	bufp := colBuffers.Get().(*[]float32)
	if cap(*bufp) < k*spatial {
		*bufp = make([]float32, k*spatial)
	}
	col := (*bufp)[:k*spatial]
	defer colBuffers.Put(bufp)

	// Column-major gather buffer: one patch (length k) at a time keeps
	// the strict inner loop contiguous.
	patch := make([]float32, k)
	for b := 0; b < n; b++ {
		src := in.Data[b*c.InC*h*w : (b+1)*c.InC*h*w]
		im2col(col, src, c.InC, h, w, c.KH, c.KW, c.Stride, c.Pad, oh, ow)
		dst := out.Data[b*c.OutC*spatial : (b+1)*c.OutC*spatial]
		for s := 0; s < spatial; s++ {
			for i := 0; i < k; i++ {
				patch[i] = col[i*spatial+s]
			}
			for oc := 0; oc < c.OutC; oc++ {
				wrow := c.Weights.Data[oc*k : (oc+1)*k]
				acc := half.FromFloat32(c.Bias.Data[oc])
				acc = accumulateFP16(acc, wrow, patch)
				dst[oc*spatial+s] = acc.Float32()
			}
		}
	}
}

// ForwardFP16Strict implements strictLayer for FullyConnected.
func (f *FullyConnected) ForwardFP16Strict(out *tensor.T, ins []*tensor.T) {
	in := ins[0]
	n := in.Dim(0)
	for b := 0; b < n; b++ {
		x := in.Data[b*f.InF : (b+1)*f.InF]
		y := out.Data[b*f.OutF : (b+1)*f.OutF]
		for o := 0; o < f.OutF; o++ {
			row := f.Weights.Data[o*f.InF : (o+1)*f.InF]
			acc := half.FromFloat32(f.Bias.Data[o])
			acc = accumulateFP16(acc, row, x)
			y[o] = acc.Float32()
		}
	}
}

var (
	_ strictLayer = (*Conv)(nil)
	_ strictLayer = (*FullyConnected)(nil)
)
