package nn

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// TestSplitDegenerate locks the degenerate contract: cut 0 and cut
// Len return the receiver itself on the non-empty side, so pipeline
// builders can collapse empty stages without copying.
func TestSplitDegenerate(t *testing.T) {
	g := NewMicroGoogLeNet(DefaultMicroConfig(), rng.New(1))
	head, tail, err := g.Split(0)
	if err != nil || head != nil || tail != g {
		t.Fatalf("Split(0) = %v, %v, %v; want nil, g, nil", head, tail, err)
	}
	head, tail, err = g.Split(g.Len())
	if err != nil || head != g || tail != nil {
		t.Fatalf("Split(Len) = %v, %v, %v; want g, nil, nil", head, tail, err)
	}
	if _, _, err := g.Split(-1); err == nil {
		t.Error("Split(-1) accepted")
	}
	if _, _, err := g.Split(g.Len() + 1); err == nil {
		t.Error("Split(Len+1) accepted")
	}
}

// TestSplitInvalidCut asserts branch interiors are rejected: a cut
// inside an inception module leaves concat inputs across the
// boundary.
func TestSplitInvalidCut(t *testing.T) {
	g := NewGoogLeNet(rng.New(1))
	valid := map[int]bool{}
	for _, c := range g.ValidCuts() {
		valid[c] = true
	}
	if len(valid) == 0 {
		t.Fatal("GoogLeNet has no valid cuts")
	}
	tested := false
	for cut := 1; cut < g.Len(); cut++ {
		if valid[cut] {
			continue
		}
		if _, _, err := g.Split(cut); err == nil {
			t.Fatalf("invalid cut %d (after %q) accepted", cut, g.LayerNames()[cut-1])
		}
		tested = true
	}
	if !tested {
		t.Skip("every cut valid; nothing to reject")
	}
}

// TestSplitGoogLeNetShapes walks every valid GoogLeNet cut and checks
// the segment geometry: head output shape = tail input shape, layer
// counts sum to the whole, MACs are preserved across the boundary,
// and the segments share Layer values with the original (weights are
// not copied).
func TestSplitGoogLeNetShapes(t *testing.T) {
	g := NewGoogLeNet(rng.New(1))
	whole := g.TotalStats()
	cuts := g.ValidCuts()
	if len(cuts) < 10 {
		t.Fatalf("GoogLeNet: only %d valid cuts, want a rich boundary set", len(cuts))
	}
	for _, cut := range cuts {
		head, tail, err := g.Split(cut)
		if err != nil {
			t.Fatalf("Split(%d): %v", cut, err)
		}
		if head.Len()+tail.Len() != g.Len() {
			t.Errorf("cut %d: %d+%d layers, want %d", cut, head.Len(), tail.Len(), g.Len())
		}
		if !head.OutputShape().Equal(tail.InputShape()) {
			t.Errorf("cut %d: head out %v != tail in %v", cut, head.OutputShape(), tail.InputShape())
		}
		if !tail.OutputShape().Equal(g.OutputShape()) {
			t.Errorf("cut %d: tail out %v != whole out %v", cut, tail.OutputShape(), g.OutputShape())
		}
		if got := head.TotalStats().MACs + tail.TotalStats().MACs; got != whole.MACs {
			t.Errorf("cut %d: MACs %d, want %d", cut, got, whole.MACs)
		}
		cutNode := g.LayerNames()[cut-1]
		if head.Output() != cutNode {
			t.Errorf("cut %d: head output %q, want %q", cut, head.Output(), cutNode)
		}
		for _, name := range head.LayerNames() {
			if head.Layer(name) != g.Layer(name) {
				t.Errorf("cut %d: head layer %q copied, want shared", cut, name)
			}
		}
		for _, name := range tail.LayerNames() {
			if tail.Layer(name) != g.Layer(name) {
				t.Errorf("cut %d: tail layer %q copied, want shared", cut, name)
			}
		}
	}
}

// TestSplitForwardEquivalence runs the micro network whole and split
// at every valid cut: Forward(head)→Forward(tail) must reproduce the
// whole graph's output bit for bit (same layers, same weights, same
// float order — the split changes routing, not arithmetic).
func TestSplitForwardEquivalence(t *testing.T) {
	g := NewMicroGoogLeNet(DefaultMicroConfig(), rng.New(7))
	in := tensor.New(append(tensor.Shape{2}, g.InputShape()...)...)
	src := rng.New(99)
	for i := range in.Data {
		in.Data[i] = float32(src.Float64()*2 - 1)
	}
	want, err := g.Forward(in, FP32)
	if err != nil {
		t.Fatal(err)
	}
	cuts := g.ValidCuts()
	if len(cuts) == 0 {
		t.Fatal("micro network has no valid cuts")
	}
	for _, cut := range cuts {
		head, tail, err := g.Split(cut)
		if err != nil {
			t.Fatalf("Split(%d): %v", cut, err)
		}
		mid, err := head.Forward(in, FP32)
		if err != nil {
			t.Fatalf("cut %d head forward: %v", cut, err)
		}
		got, err := tail.Forward(mid, FP32)
		if err != nil {
			t.Fatalf("cut %d tail forward: %v", cut, err)
		}
		if len(got.Data) != len(want.Data) {
			t.Fatalf("cut %d: output size %d, want %d", cut, len(got.Data), len(want.Data))
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("cut %d: output[%d] = %v, want %v (split must be bit-exact)",
					cut, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestSplitDoesNotMutateOriginal checks Split leaves the receiver
// usable: order, output and shapes unchanged, and a second Split at
// another cut still works.
func TestSplitDoesNotMutateOriginal(t *testing.T) {
	g := NewGoogLeNet(rng.New(1))
	outBefore := g.Output()
	lenBefore := g.Len()
	cuts := g.ValidCuts()
	if _, _, err := g.Split(cuts[0]); err != nil {
		t.Fatal(err)
	}
	if g.Output() != outBefore || g.Len() != lenBefore {
		t.Fatalf("Split mutated the graph: output %q len %d", g.Output(), g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid after Split: %v", err)
	}
	if _, _, err := g.Split(cuts[len(cuts)-1]); err != nil {
		t.Fatalf("second Split failed: %v", err)
	}
}
