package nn

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/tensor"
)

// expf is float32 exp. A dedicated float32 implementation is not worth
// the complexity: math.Exp is correctly rounded in float64 and a single
// rounding to float32 keeps the error below 1 ULP.
func expf(x float32) float32 { return float32(math.Exp(float64(x))) }

// InputName is the reserved node name for the graph input tensor.
const InputName = "data"

// node ties a layer to its input edges.
type node struct {
	layer    Layer
	inputs   []string
	outShape tensor.Shape
}

// Graph is a directed acyclic network assembled layer by layer. Layers
// must be added in a valid topological order (inputs before
// consumers), which every real network description satisfies — Caffe
// prototxts are written the same way.
type Graph struct {
	name       string
	inputShape tensor.Shape // CHW, batch excluded
	order      []string
	nodes      map[string]*node
	output     string
}

// NewGraph creates an empty graph with the given name and CHW input
// shape.
func NewGraph(name string, inputShape tensor.Shape) *Graph {
	if !inputShape.Valid() {
		panic(fmt.Sprintf("nn: invalid input shape %v", inputShape))
	}
	return &Graph{
		name:       name,
		inputShape: inputShape.Clone(),
		nodes:      map[string]*node{},
	}
}

// Name returns the graph name.
func (g *Graph) Name() string { return g.name }

// InputShape returns the CHW input shape.
func (g *Graph) InputShape() tensor.Shape { return g.inputShape.Clone() }

// Add appends a layer consuming the named inputs ("data" or earlier
// layer names) and returns the layer name for chaining. Shape
// inference runs immediately so a malformed network fails at build
// time, not at execution.
func (g *Graph) Add(l Layer, inputs ...string) (string, error) {
	name := l.Name()
	if name == InputName {
		return "", fmt.Errorf("nn: layer name %q is reserved", InputName)
	}
	if _, dup := g.nodes[name]; dup {
		return "", fmt.Errorf("nn: duplicate layer name %q", name)
	}
	if len(inputs) == 0 {
		return "", fmt.Errorf("nn: layer %q has no inputs", name)
	}
	shapes := make([]tensor.Shape, len(inputs))
	for i, in := range inputs {
		s, err := g.shapeOf(in)
		if err != nil {
			return "", fmt.Errorf("nn: layer %q: %w", name, err)
		}
		shapes[i] = s
	}
	out, err := l.OutShape(shapes)
	if err != nil {
		return "", err
	}
	g.nodes[name] = &node{layer: l, inputs: append([]string(nil), inputs...), outShape: out}
	g.order = append(g.order, name)
	g.output = name
	return name, nil
}

// MustAdd is Add for static builders where failure is a bug.
func (g *Graph) MustAdd(l Layer, inputs ...string) string {
	name, err := g.Add(l, inputs...)
	if err != nil {
		panic(err)
	}
	return name
}

func (g *Graph) shapeOf(name string) (tensor.Shape, error) {
	if name == InputName {
		return g.inputShape, nil
	}
	n, ok := g.nodes[name]
	if !ok {
		return nil, fmt.Errorf("unknown input %q (layers must be added after their inputs)", name)
	}
	return n.outShape, nil
}

// SetOutput overrides the output node (defaults to the last added).
func (g *Graph) SetOutput(name string) error {
	if _, ok := g.nodes[name]; !ok {
		return fmt.Errorf("nn: unknown output %q", name)
	}
	g.output = name
	return nil
}

// Output returns the output node name.
func (g *Graph) Output() string { return g.output }

// OutputShape returns the CHW/flat shape of the output node.
func (g *Graph) OutputShape() tensor.Shape {
	return g.nodes[g.output].outShape.Clone()
}

// Len returns the number of layers.
func (g *Graph) Len() int { return len(g.order) }

// LayerNames returns the topological layer order.
func (g *Graph) LayerNames() []string { return append([]string(nil), g.order...) }

// Layer returns the named layer, or nil.
func (g *Graph) Layer(name string) Layer {
	if n, ok := g.nodes[name]; ok {
		return n.layer
	}
	return nil
}

// InputsOf returns the input edge names of a layer.
func (g *Graph) InputsOf(name string) []string {
	if n, ok := g.nodes[name]; ok {
		return append([]string(nil), n.inputs...)
	}
	return nil
}

// ShapeOf returns the output shape of the named node (or the input).
func (g *Graph) ShapeOf(name string) (tensor.Shape, error) { return g.shapeOf(name) }

// Forward runs a batched inference. in must have shape N×InputShape.
// With FP16 precision the input and every intermediate activation are
// rounded through binary16 (weights are assumed already quantized via
// QuantizeWeightsFP16, which the graph compiler performs).
func (g *Graph) Forward(in *tensor.T, prec Precision) (*tensor.T, error) {
	n := batchOf(in, g.inputShape)

	acts := map[string]*tensor.T{}
	input := in
	if prec != FP32 {
		input = in.Clone()
		input.QuantizeFP16()
	}
	acts[InputName] = input

	// Track how many consumers each intermediate has left so buffers
	// can be dropped as soon as possible; GoogLeNet at batch 8 would
	// otherwise hold >1 GB of activations.
	remaining := map[string]int{}
	for _, name := range g.order {
		for _, inp := range g.nodes[name].inputs {
			remaining[inp]++
		}
	}
	remaining[g.output]++ // the caller consumes the output

	var out *tensor.T
	for _, name := range g.order {
		nd := g.nodes[name]
		ins := make([]*tensor.T, len(nd.inputs))
		for i, inp := range nd.inputs {
			t, ok := acts[inp]
			if !ok {
				return nil, fmt.Errorf("nn: activation %q missing (graph corrupted)", inp)
			}
			ins[i] = t
		}
		shape := append(tensor.Shape{n}, nd.outShape...)
		dst := tensor.New(shape...)
		if sl, ok := nd.layer.(strictLayer); ok && prec == FP16Strict {
			sl.ForwardFP16Strict(dst, ins)
		} else {
			nd.layer.Forward(dst, ins)
		}
		if prec != FP32 {
			dst.QuantizeFP16()
		}
		acts[name] = dst
		if name == g.output {
			out = dst
		}
		for _, inp := range nd.inputs {
			remaining[inp]--
			if remaining[inp] == 0 && inp != InputName {
				delete(acts, inp)
			}
		}
	}
	if out == nil {
		return nil, fmt.Errorf("nn: graph %q has no output", g.name)
	}
	return out, nil
}

// QuantizeWeightsFP16 rounds every parameter tensor through binary16
// in place. The NCSDK graph compiler performs the same conversion when
// building the NCS graph file.
func (g *Graph) QuantizeWeightsFP16() {
	for _, name := range g.order {
		if w, ok := g.nodes[name].layer.(weighted); ok {
			for _, t := range w.Tensors() {
				t.QuantizeFP16()
			}
		}
	}
}

// LayerStats pairs a layer name with its static cost.
type LayerStats struct {
	Name  string
	Kind  string
	Out   tensor.Shape
	Stats Stats
}

// PerLayerStats returns the per-layer cost table in topological order
// (batch 1). The device cost models and the profiling tool consume it.
func (g *Graph) PerLayerStats() []LayerStats {
	out := make([]LayerStats, 0, len(g.order))
	for _, name := range g.order {
		nd := g.nodes[name]
		shapes := make([]tensor.Shape, len(nd.inputs))
		for i, inp := range nd.inputs {
			shapes[i], _ = g.shapeOf(inp)
		}
		out = append(out, LayerStats{
			Name:  name,
			Kind:  nd.layer.Kind(),
			Out:   nd.outShape.Clone(),
			Stats: nd.layer.Stats(shapes),
		})
	}
	return out
}

// TotalStats sums PerLayerStats (batch 1).
func (g *Graph) TotalStats() Stats {
	var total Stats
	for _, ls := range g.PerLayerStats() {
		total = total.Add(ls.Stats)
	}
	return total
}

// Summary renders a human-readable per-layer table, the analogue of
// mvNCProfile's report.
func (g *Graph) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q  input %v  output %v\n", g.name, g.inputShape, g.OutputShape())
	fmt.Fprintf(&b, "%-24s %-9s %-18s %12s %12s\n", "layer", "kind", "output", "MACs", "params")
	var total Stats
	for _, ls := range g.PerLayerStats() {
		fmt.Fprintf(&b, "%-24s %-9s %-18s %12d %12d\n",
			ls.Name, ls.Kind, ls.Out.String(), ls.Stats.MACs, ls.Stats.Params)
		total = total.Add(ls.Stats)
	}
	fmt.Fprintf(&b, "%-24s %-9s %-18s %12d %12d\n", "TOTAL", "", "", total.MACs, total.Params)
	return b.String()
}

// Validate re-checks graph integrity: unique names, resolvable edges,
// consistent shape inference, acyclicity (implied by ordering). It is
// used by the graph-file parser to reject corrupted blobs.
func (g *Graph) Validate() error {
	if len(g.order) == 0 {
		return fmt.Errorf("nn: graph %q is empty", g.name)
	}
	if len(g.order) != len(g.nodes) {
		return fmt.Errorf("nn: graph %q order/node count mismatch", g.name)
	}
	seen := map[string]bool{InputName: true}
	for _, name := range g.order {
		nd, ok := g.nodes[name]
		if !ok {
			return fmt.Errorf("nn: node %q in order but missing", name)
		}
		shapes := make([]tensor.Shape, len(nd.inputs))
		for i, inp := range nd.inputs {
			if !seen[inp] {
				return fmt.Errorf("nn: layer %q consumes %q before it is produced", name, inp)
			}
			shapes[i], _ = g.shapeOf(inp)
		}
		out, err := nd.layer.OutShape(shapes)
		if err != nil {
			return err
		}
		if !out.Equal(nd.outShape) {
			return fmt.Errorf("nn: layer %q cached shape %v, recomputed %v", name, nd.outShape, out)
		}
		seen[name] = true
	}
	if _, ok := g.nodes[g.output]; !ok {
		return fmt.Errorf("nn: output %q missing", g.output)
	}
	return nil
}

// Kinds returns the sorted set of operator kinds used by the graph.
func (g *Graph) Kinds() []string {
	set := map[string]bool{}
	for _, name := range g.order {
		set[g.nodes[name].layer.Kind()] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
