package nn

import (
	"strings"
	"testing"

	"repro/internal/half"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// tinyGraph builds a small conv->relu->pool->fc->softmax network used
// across the graph tests.
func tinyGraph(t testing.TB, seed uint64) *Graph {
	t.Helper()
	src := rng.New(seed)
	g := NewGraph("tiny", tensor.Shape{2, 8, 8})
	c := g.MustAdd(NewConv("conv", 2, 4, 3, 1, 1, src), InputName)
	r := g.MustAdd(&ReLU{LayerName: "relu"}, c)
	p := g.MustAdd(&Pool{LayerName: "pool", PoolOp: AvgPool, Global: true}, r)
	f := g.MustAdd(NewFullyConnected("fc", 4, 3, src), p)
	g.MustAdd(&Softmax{LayerName: "prob"}, f)
	return g
}

func TestGraphBuildAndShapes(t *testing.T) {
	g := tinyGraph(t, 1)
	if g.Len() != 5 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Output() != "prob" {
		t.Errorf("Output = %q", g.Output())
	}
	if !g.OutputShape().Equal(tensor.Shape{3}) {
		t.Errorf("OutputShape = %v", g.OutputShape())
	}
	s, err := g.ShapeOf("pool")
	if err != nil || !s.Equal(tensor.Shape{4, 1, 1}) {
		t.Errorf("ShapeOf(pool) = %v, %v", s, err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if got := g.Kinds(); strings.Join(got, ",") != "avgpool,conv,fc,relu,softmax" {
		t.Errorf("Kinds = %v", got)
	}
}

func TestGraphAddErrors(t *testing.T) {
	src := rng.New(1)
	g := NewGraph("g", tensor.Shape{1, 4, 4})
	if _, err := g.Add(&ReLU{LayerName: InputName}, InputName); err == nil {
		t.Error("reserved name must be rejected")
	}
	if _, err := g.Add(&ReLU{LayerName: "r"}, "nonexistent"); err == nil {
		t.Error("unknown input must be rejected")
	}
	if _, err := g.Add(&ReLU{LayerName: "r"}); err == nil {
		t.Error("no inputs must be rejected")
	}
	if _, err := g.Add(&ReLU{LayerName: "r"}, InputName); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(&ReLU{LayerName: "r"}, InputName); err == nil {
		t.Error("duplicate name must be rejected")
	}
	// Shape errors propagate from the layer.
	if _, err := g.Add(NewConv("c", 5, 2, 3, 1, 1, src), InputName); err == nil {
		t.Error("channel mismatch must fail at Add time")
	}
}

func TestGraphForwardShapeAndDistribution(t *testing.T) {
	g := tinyGraph(t, 2)
	in := tensor.New(4, 2, 8, 8)
	in.FillNormal(rng.New(3), 0, 1)
	out, err := g.Forward(in, FP32)
	if err != nil {
		t.Fatal(err)
	}
	if !out.ShapeOf.Equal(tensor.Shape{4, 3}) {
		t.Fatalf("out shape = %v", out.ShapeOf)
	}
	for b := 0; b < 4; b++ {
		var sum float32
		for c := 0; c < 3; c++ {
			sum += out.At(b, c)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("batch %d probs sum to %g", b, sum)
		}
	}
}

func TestGraphForwardDeterministic(t *testing.T) {
	g := tinyGraph(t, 4)
	in := tensor.New(1, 2, 8, 8)
	in.FillNormal(rng.New(5), 0, 1)
	a, err := g.Forward(in, FP32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Forward(in, FP32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same input produced different outputs")
		}
	}
}

func TestGraphForwardFP16RoundsActivations(t *testing.T) {
	g := tinyGraph(t, 6)
	g.QuantizeWeightsFP16()
	in := tensor.New(1, 2, 8, 8)
	in.FillNormal(rng.New(7), 0, 1)
	out16, err := g.Forward(in, FP16)
	if err != nil {
		t.Fatal(err)
	}
	if !out16.IsFP16Exact() {
		t.Error("FP16 output must be exactly representable in binary16")
	}
	out32, err := g.Forward(in, FP32)
	if err != nil {
		t.Fatal(err)
	}
	// The two precisions must agree approximately but not (generally)
	// exactly — this small difference is the Fig. 7b signal.
	if d := half.MaxAbsDiff(out16.Data, out32.Data); d > 0.05 {
		t.Errorf("FP16 diverges too far from FP32: %g", d)
	}
	// The input tensor itself must not be mutated by FP16 execution.
	for _, v := range in.Data {
		if v != 0 && half.FromFloat32(v).Float32() == v {
			continue
		}
		return // found an unrounded value => input untouched
	}
	t.Error("input tensor appears to have been quantized in place")
}

func TestGraphSetOutput(t *testing.T) {
	g := tinyGraph(t, 8)
	if err := g.SetOutput("pool"); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 2, 8, 8)
	out, err := g.Forward(in, FP32)
	if err != nil {
		t.Fatal(err)
	}
	if !out.ShapeOf.Equal(tensor.Shape{1, 4, 1, 1}) {
		t.Errorf("intermediate output shape = %v", out.ShapeOf)
	}
	if err := g.SetOutput("nope"); err == nil {
		t.Error("unknown output must be rejected")
	}
}

func TestGraphPerLayerStats(t *testing.T) {
	g := tinyGraph(t, 9)
	ls := g.PerLayerStats()
	if len(ls) != 5 {
		t.Fatalf("stats rows = %d", len(ls))
	}
	if ls[0].Name != "conv" || ls[0].Kind != "conv" {
		t.Error("first row should be conv")
	}
	wantConvMACs := int64(4*8*8) * int64(2*9)
	if ls[0].Stats.MACs != wantConvMACs {
		t.Errorf("conv MACs = %d, want %d", ls[0].Stats.MACs, wantConvMACs)
	}
	total := g.TotalStats()
	var sum int64
	for _, l := range ls {
		sum += l.Stats.MACs
	}
	if total.MACs != sum {
		t.Error("TotalStats must sum per-layer stats")
	}
}

func TestGraphSummaryContainsLayers(t *testing.T) {
	g := tinyGraph(t, 10)
	s := g.Summary()
	for _, want := range []string{"conv", "prob", "TOTAL", "tiny"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestGraphInputsOfAndLayer(t *testing.T) {
	g := tinyGraph(t, 11)
	if ins := g.InputsOf("relu"); len(ins) != 1 || ins[0] != "conv" {
		t.Errorf("InputsOf(relu) = %v", ins)
	}
	if g.Layer("conv") == nil || g.Layer("missing") != nil {
		t.Error("Layer lookup wrong")
	}
	if g.InputsOf("missing") != nil {
		t.Error("InputsOf(missing) should be nil")
	}
}

func TestQuantizeWeightsFP16(t *testing.T) {
	g := tinyGraph(t, 12)
	conv := g.Layer("conv").(*Conv)
	if conv.Weights.IsFP16Exact() {
		t.Skip("weights happen to be exact; seed choice degenerate")
	}
	g.QuantizeWeightsFP16()
	if !conv.Weights.IsFP16Exact() {
		t.Error("conv weights not quantized")
	}
	fc := g.Layer("fc").(*FullyConnected)
	if !fc.Weights.IsFP16Exact() {
		t.Error("fc weights not quantized")
	}
}

func TestGraphValidateCatchesCorruption(t *testing.T) {
	g := tinyGraph(t, 13)
	// Reach into the graph and corrupt a cached shape.
	g.nodes["pool"].outShape = tensor.Shape{9, 9, 9}
	if err := g.Validate(); err == nil {
		t.Error("Validate must catch a corrupted cached shape")
	}
}

func TestEmptyGraphInvalid(t *testing.T) {
	g := NewGraph("empty", tensor.Shape{1, 2, 2})
	if err := g.Validate(); err == nil {
		t.Error("empty graph must be invalid")
	}
}

func TestNewGraphPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGraph("bad", tensor.Shape{0, 2, 2})
}

func TestMustAddPanics(t *testing.T) {
	g := NewGraph("g", tensor.Shape{1, 4, 4})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.MustAdd(&ReLU{LayerName: "r"}, "missing")
}
