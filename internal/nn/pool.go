package nn

import (
	"math"

	"repro/internal/tensor"
)

// PoolKind distinguishes max from average pooling.
type PoolKind int

const (
	// MaxPool takes the maximum over each window.
	MaxPool PoolKind = iota
	// AvgPool averages each window (dividing by the window's
	// intersection with the padded image, as Caffe does).
	AvgPool
)

// Pool is a 2-D spatial pooling layer. GoogLeNet's pooling layers use
// Caffe's ceil-mode output rounding, so CeilMode defaults to on in the
// builders.
type Pool struct {
	LayerName string
	PoolOp    PoolKind
	K         int
	Stride    int
	Pad       int
	CeilMode  bool
	// Global pools over the full input (GoogLeNet's final 7x7 average
	// pool is expressed this way by the builder for robustness to
	// input geometry).
	Global bool
}

// Name implements Layer.
func (p *Pool) Name() string { return p.LayerName }

// Kind implements Layer.
func (p *Pool) Kind() string {
	if p.PoolOp == MaxPool {
		return "maxpool"
	}
	return "avgpool"
}

func (p *Pool) outDim(in int) int {
	if p.Global {
		return 1
	}
	num := float64(in + 2*p.Pad - p.K)
	if p.CeilMode {
		return int(math.Ceil(num/float64(p.Stride))) + 1
	}
	return int(math.Floor(num/float64(p.Stride))) + 1
}

// OutShape implements Layer.
func (p *Pool) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(p.LayerName, in, 1); err != nil {
		return nil, err
	}
	c, h, w, err := chw(p.LayerName, in[0])
	if err != nil {
		return nil, err
	}
	if p.Global {
		return tensor.Shape{c, 1, 1}, nil
	}
	oh, ow := p.outDim(h), p.outDim(w)
	if oh <= 0 || ow <= 0 {
		return nil, shapeError(p.LayerName, "pool %dx%d stride %d does not fit input %dx%d",
			p.K, p.K, p.Stride, h, w)
	}
	// Caffe clips the last window so it starts inside the (padded)
	// image; mirror that to keep shapes identical.
	if p.Pad > 0 {
		if (oh-1)*p.Stride >= h+p.Pad {
			oh--
		}
		if (ow-1)*p.Stride >= w+p.Pad {
			ow--
		}
	}
	return tensor.Shape{c, oh, ow}, nil
}

// Forward implements Layer.
func (p *Pool) Forward(out *tensor.T, ins []*tensor.T) {
	in := ins[0]
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh, ow := out.Dim(2), out.Dim(3)

	k, stride, pad := p.K, p.Stride, p.Pad
	if p.Global {
		k, stride, pad = h, 1, 0
		if w > k {
			k = w // Global pooling window covers the full plane.
		}
	}

	for b := 0; b < n; b++ {
		for ci := 0; ci < c; ci++ {
			src := in.Data[(b*c+ci)*h*w:]
			dst := out.Data[(b*c+ci)*oh*ow:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					y0, x0 := oy*stride-pad, ox*stride-pad
					y1, x1 := y0+k, x0+k
					if p.Global {
						y0, x0, y1, x1 = 0, 0, h, w
					}
					cy0, cx0 := max(y0, 0), max(x0, 0)
					cy1, cx1 := min(y1, h), min(x1, w)
					if p.PoolOp == MaxPool {
						best := float32(math.Inf(-1))
						for y := cy0; y < cy1; y++ {
							row := src[y*w:]
							for x := cx0; x < cx1; x++ {
								if row[x] > best {
									best = row[x]
								}
							}
						}
						if cy1 <= cy0 || cx1 <= cx0 {
							best = 0 // window entirely in padding
						}
						dst[oy*ow+ox] = best
					} else {
						var sum float32
						for y := cy0; y < cy1; y++ {
							row := src[y*w:]
							for x := cx0; x < cx1; x++ {
								sum += row[x]
							}
						}
						area := (cy1 - cy0) * (cx1 - cx0)
						if area <= 0 {
							dst[oy*ow+ox] = 0
						} else {
							dst[oy*ow+ox] = sum / float32(area)
						}
					}
				}
			}
		}
	}
}

// Stats implements Layer. Pooling performs one compare or add per
// window element; we count those as MAC-equivalents because the SHAVE
// CMU/VAU issue them at the same rate.
func (p *Pool) Stats(in []tensor.Shape) Stats {
	out, err := p.OutShape(in)
	if err != nil {
		return Stats{}
	}
	k := p.K
	if p.Global {
		k = in[0][1] // full height; width assumed comparable
	}
	outElems := int64(out.Elems())
	return Stats{
		MACs:        outElems * int64(k*k),
		InputElems:  int64(in[0].Elems()),
		OutputElems: outElems,
	}
}
