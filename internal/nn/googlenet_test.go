package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestGoogLeNetTopology(t *testing.T) {
	g := NewGoogLeNet(rng.New(1))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.InputShape().Equal(tensor.Shape{3, 224, 224}) {
		t.Errorf("input shape = %v", g.InputShape())
	}
	if !g.OutputShape().Equal(tensor.Shape{1000}) {
		t.Errorf("output shape = %v", g.OutputShape())
	}
	// 9 inception modules x (6 convs + 6 relus + 1 pool + 1 concat)
	// plus the stem and the head: 142 layers total in the deploy net.
	if g.Len() != 142 {
		t.Errorf("layer count = %d, want 142", g.Len())
	}
}

func TestGoogLeNetIntermediateShapes(t *testing.T) {
	g := NewGoogLeNet(rng.New(1))
	checks := map[string]tensor.Shape{
		"conv1/7x7_s2":        {64, 112, 112},
		"pool1/3x3_s2":        {64, 56, 56},
		"conv2/3x3":           {192, 56, 56},
		"pool2/3x3_s2":        {192, 28, 28},
		"inception_3a/output": {256, 28, 28},
		"inception_3b/output": {480, 28, 28},
		"pool3/3x3_s2":        {480, 14, 14},
		"inception_4a/output": {512, 14, 14},
		"inception_4e/output": {832, 14, 14},
		"pool4/3x3_s2":        {832, 7, 7},
		"inception_5b/output": {1024, 7, 7},
		"pool5/7x7_s1":        {1024, 1, 1},
		"loss3/classifier":    {1000},
	}
	for name, want := range checks {
		got, err := g.ShapeOf(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("%s shape = %v, want %v", name, got, want)
		}
	}
}

func TestGoogLeNetCostMatchesPublished(t *testing.T) {
	g := NewGoogLeNet(rng.New(1))
	total := g.TotalStats()
	// Published figures for Inception-v1: ~1.5 GFLOPs ≈ 0.75 G
	// multiply-adds for the convs alone at 224x224 (Szegedy et al.
	// report "1.5 billion multiply-adds"); with our MAC-equivalent
	// accounting for pooling/LRN the deploy net lands near 1.6 GMACs.
	// Guard the order of magnitude tightly: the device cost models are
	// calibrated against this count.
	gmacs := float64(total.MACs) / 1e9
	if gmacs < 1.3 || gmacs > 1.9 {
		t.Errorf("GoogLeNet MACs = %.3f G, expected ~1.6 G", gmacs)
	}
	// ~7.0 M parameters (6.99 M in the BVLC release).
	mp := float64(total.Params) / 1e6
	if mp < 6.5 || mp > 7.5 {
		t.Errorf("GoogLeNet params = %.2f M, expected ~7.0 M", mp)
	}
}

func TestGoogLeNetDeterministicWeights(t *testing.T) {
	a := NewGoogLeNet(rng.New(42))
	b := NewGoogLeNet(rng.New(42))
	ca := a.Layer("inception_4c/5x5").(*Conv)
	cb := b.Layer("inception_4c/5x5").(*Conv)
	for i := range ca.Weights.Data {
		if ca.Weights.Data[i] != cb.Weights.Data[i] {
			t.Fatal("weights differ across identical seeds")
		}
	}
}

// TestGoogLeNetForward runs a full functional inference. It is the
// slowest unit test in the package (one 1.4 GMAC forward pass) but
// proves the whole 142-layer graph executes and normalizes.
func TestGoogLeNetForward(t *testing.T) {
	if testing.Short() {
		t.Skip("full GoogLeNet forward skipped in -short")
	}
	g := NewGoogLeNet(rng.New(1))
	in := tensor.New(1, 3, 224, 224)
	in.FillNormal(rng.New(2), 0, 64)
	out, err := g.Forward(in, FP32)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) || v < 0 {
			t.Fatal("invalid probability")
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("probabilities sum to %g", sum)
	}
}

func TestInceptionSpecOutChannels(t *testing.T) {
	s := InceptionSpec{64, 96, 128, 16, 32, 32}
	if s.OutChannels() != 256 {
		t.Errorf("OutChannels = %d, want 256", s.OutChannels())
	}
}

func TestMicroGoogLeNetTopology(t *testing.T) {
	g := NewMicroGoogLeNet(DefaultMicroConfig(), rng.New(1))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.InputShape().Equal(tensor.Shape{3, 32, 32}) {
		t.Errorf("input shape = %v", g.InputShape())
	}
	if !g.OutputShape().Equal(tensor.Shape{100}) {
		t.Errorf("output shape = %v", g.OutputShape())
	}
	// Must exercise every operator kind of the full network.
	kinds := map[string]bool{}
	for _, k := range g.Kinds() {
		kinds[k] = true
	}
	for _, want := range []string{"conv", "maxpool", "avgpool", "lrn", "concat", "dropout", "fc", "softmax", "relu"} {
		if !kinds[want] {
			t.Errorf("micro network missing operator kind %q", want)
		}
	}
}

func TestMicroGoogLeNetForward(t *testing.T) {
	g := NewMicroGoogLeNet(DefaultMicroConfig(), rng.New(1))
	in := tensor.New(2, 3, 32, 32)
	in.FillNormal(rng.New(3), 0, 64)
	out, err := g.Forward(in, FP32)
	if err != nil {
		t.Fatal(err)
	}
	if !out.ShapeOf.Equal(tensor.Shape{2, 100}) {
		t.Fatalf("out shape = %v", out.ShapeOf)
	}
	for b := 0; b < 2; b++ {
		var sum float64
		for c := 0; c < 100; c++ {
			sum += float64(out.At(b, c))
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Errorf("batch %d sums to %g", b, sum)
		}
	}
}

func TestMicroConfigValidation(t *testing.T) {
	for _, cfg := range []MicroConfig{{Classes: 1, Input: 32}, {Classes: 10, Input: 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			NewMicroGoogLeNet(cfg, rng.New(0))
		}()
	}
}

func TestCalibrateClassifier(t *testing.T) {
	cfg := MicroConfig{Classes: 8, Input: 32}
	g := NewMicroGoogLeNet(cfg, rng.New(1))
	src := rng.New(99)
	protos := make([]*tensor.T, cfg.Classes)
	for c := range protos {
		p := tensor.New(3, 32, 32)
		p.FillNormal(src.DeriveIndex(c), 0, 64)
		protos[c] = p
	}
	if err := CalibrateClassifier(g, MicroClassifierName, MicroPoolName, protos, 8); err != nil {
		t.Fatal(err)
	}
	// After calibration, every noise-free prototype must classify to
	// its own class: nearest-prototype in feature space is exact at
	// zero noise.
	for c, p := range protos {
		in := p.Reshape(1, 3, 32, 32)
		out, err := g.Forward(in, FP32)
		if err != nil {
			t.Fatal(err)
		}
		pred, conf := out.ArgMax()
		if pred != c {
			t.Errorf("prototype %d predicted as %d", c, pred)
		}
		if conf <= 1.0/float32(cfg.Classes) {
			t.Errorf("prototype %d confidence %g not above uniform", c, conf)
		}
	}
	// Output selection must be restored.
	if g.Output() != "prob" {
		t.Errorf("output not restored: %q", g.Output())
	}
}

func TestCalibrateClassifierErrors(t *testing.T) {
	cfg := MicroConfig{Classes: 4, Input: 32}
	g := NewMicroGoogLeNet(cfg, rng.New(1))
	protos := []*tensor.T{tensor.New(3, 32, 32)}
	if err := CalibrateClassifier(g, MicroClassifierName, MicroPoolName, protos, 8); err == nil {
		t.Error("wrong prototype count must error")
	}
	protos4 := make([]*tensor.T, 4)
	for i := range protos4 {
		protos4[i] = tensor.New(3, 32, 32)
	}
	if err := CalibrateClassifier(g, "conv1", MicroPoolName, protos4, 8); err == nil {
		t.Error("non-FC layer must error")
	}
	if err := CalibrateClassifier(g, MicroClassifierName, "missing", protos4, 8); err == nil {
		t.Error("missing embedding layer must error")
	}
	// Zero prototypes give zero embeddings after ReLU+avgpool only if
	// biases were zero; with our biases they are fine, so craft a
	// direct zero-embedding failure via the wrong embedding layer size
	// instead.
	if err := CalibrateClassifier(g, MicroClassifierName, "conv1", protos4, 8); err == nil {
		t.Error("embedding size mismatch must error")
	}
}

func TestPrecisionString(t *testing.T) {
	if FP32.String() != "FP32" || FP16.String() != "FP16" {
		t.Error("Precision.String wrong")
	}
}
