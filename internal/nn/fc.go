package nn

import (
	"repro/internal/gemm"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// FullyConnected (Caffe "InnerProduct") computes y = Wx + b over the
// flattened input.
type FullyConnected struct {
	LayerName string
	InF, OutF int
	Weights   *tensor.T // (OutF, InF)
	Bias      *tensor.T // (OutF)
}

// NewFullyConnected constructs an FC layer with Xavier weights drawn
// from a name-derived sub-stream of src.
func NewFullyConnected(name string, inF, outF int, src *rng.Source) *FullyConnected {
	f := &FullyConnected{
		LayerName: name,
		InF:       inF, OutF: outF,
		Weights: tensor.New(outF, inF),
		Bias:    tensor.New(outF),
	}
	s := src.Derive("fc/" + name)
	f.Weights.FillXavier(s, inF)
	return f
}

// Name implements Layer.
func (f *FullyConnected) Name() string { return f.LayerName }

// Kind implements Layer.
func (f *FullyConnected) Kind() string { return "fc" }

// OutShape implements Layer.
func (f *FullyConnected) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(f.LayerName, in, 1); err != nil {
		return nil, err
	}
	if in[0].Elems() != f.InF {
		return nil, shapeError(f.LayerName, "input %v has %d elems, layer expects %d",
			in[0], in[0].Elems(), f.InF)
	}
	return tensor.Shape{f.OutF}, nil
}

// Forward implements Layer.
func (f *FullyConnected) Forward(out *tensor.T, ins []*tensor.T) {
	in := ins[0]
	n := in.Dim(0)
	for b := 0; b < n; b++ {
		x := in.Data[b*f.InF : (b+1)*f.InF]
		y := out.Data[b*f.OutF : (b+1)*f.OutF]
		gemm.MatVec(y, f.Weights.Data, x, f.OutF, f.InF)
		for i := range y {
			y[i] += f.Bias.Data[i]
		}
	}
}

// Stats implements Layer.
func (f *FullyConnected) Stats(in []tensor.Shape) Stats {
	return Stats{
		MACs:        int64(f.InF) * int64(f.OutF),
		Params:      int64(f.Weights.Elems() + f.Bias.Elems()),
		InputElems:  int64(f.InF),
		OutputElems: int64(f.OutF),
	}
}

// Tensors implements the weighted interface.
func (f *FullyConnected) Tensors() []*tensor.T { return []*tensor.T{f.Weights, f.Bias} }

// Softmax normalizes the input into a probability distribution; its
// output is the per-label confidence the NCAPI returns (Listing 1).
type Softmax struct {
	LayerName string
}

// Name implements Layer.
func (s *Softmax) Name() string { return s.LayerName }

// Kind implements Layer.
func (s *Softmax) Kind() string { return "softmax" }

// OutShape implements Layer.
func (s *Softmax) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(s.LayerName, in, 1); err != nil {
		return nil, err
	}
	return in[0].Clone(), nil
}

// Forward implements Layer. The max-subtraction trick keeps the
// exponentials in range, which is essential in FP16 where exp(12) is
// already near the top of the format.
func (s *Softmax) Forward(out *tensor.T, ins []*tensor.T) {
	in := ins[0]
	n := in.Dim(0)
	per := in.Elems() / n
	for b := 0; b < n; b++ {
		x := in.Data[b*per : (b+1)*per]
		y := out.Data[b*per : (b+1)*per]
		maxv := x[0]
		for _, v := range x[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		for i, v := range x {
			e := expf(v - maxv)
			y[i] = e
			sum += e
		}
		inv := 1 / sum
		for i := range y {
			y[i] *= inv
		}
	}
}

// Stats implements Layer. exp costs several FLOPs; count 8 per element.
func (s *Softmax) Stats(in []tensor.Shape) Stats {
	e := int64(in[0].Elems())
	return Stats{MACs: e * 8, InputElems: e, OutputElems: e}
}

// Concat joins inputs along the channel axis (GoogLeNet's DepthConcat
// at the end of every inception module).
type Concat struct {
	LayerName string
}

// Name implements Layer.
func (c *Concat) Name() string { return c.LayerName }

// Kind implements Layer.
func (c *Concat) Kind() string { return "concat" }

// OutShape implements Layer.
func (c *Concat) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) < 2 {
		return nil, shapeError(c.LayerName, "concat needs at least 2 inputs, got %d", len(in))
	}
	_, h, w, err := chw(c.LayerName, in[0])
	if err != nil {
		return nil, err
	}
	total := 0
	for i, s := range in {
		ci, hi, wi, err := chw(c.LayerName, s)
		if err != nil {
			return nil, err
		}
		if hi != h || wi != w {
			return nil, shapeError(c.LayerName, "input %d spatial %dx%d mismatches %dx%d", i, hi, wi, h, w)
		}
		total += ci
	}
	return tensor.Shape{total, h, w}, nil
}

// Forward implements Layer.
func (c *Concat) Forward(out *tensor.T, ins []*tensor.T) {
	n := ins[0].Dim(0)
	h, w := ins[0].Dim(2), ins[0].Dim(3)
	plane := h * w
	outC := out.Dim(1)
	for b := 0; b < n; b++ {
		off := 0
		for _, in := range ins {
			ci := in.Dim(1)
			src := in.Data[b*ci*plane : (b+1)*ci*plane]
			dst := out.Data[(b*outC+off)*plane:]
			copy(dst[:ci*plane], src)
			off += ci
		}
	}
}

// Stats implements Layer. Concat is pure data movement.
func (c *Concat) Stats(in []tensor.Shape) Stats {
	var e int64
	for _, s := range in {
		e += int64(s.Elems())
	}
	return Stats{InputElems: e, OutputElems: e}
}
