package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestConvOutShape(t *testing.T) {
	src := rng.New(1)
	cases := []struct {
		name         string
		inC, outC, k int
		stride, pad  int
		in           tensor.Shape
		want         tensor.Shape
		wantErr      bool
	}{
		{"googlenet-conv1", 3, 64, 7, 2, 3, tensor.Shape{3, 224, 224}, tensor.Shape{64, 112, 112}, false},
		{"1x1", 64, 128, 1, 1, 0, tensor.Shape{64, 28, 28}, tensor.Shape{128, 28, 28}, false},
		{"3x3-pad", 16, 32, 3, 1, 1, tensor.Shape{16, 8, 8}, tensor.Shape{32, 8, 8}, false},
		{"5x5-pad2", 16, 32, 5, 1, 2, tensor.Shape{16, 14, 14}, tensor.Shape{32, 14, 14}, false},
		{"channel-mismatch", 3, 8, 3, 1, 1, tensor.Shape{4, 8, 8}, nil, true},
		{"too-small", 3, 8, 9, 1, 0, tensor.Shape{3, 4, 4}, nil, true},
		{"bad-rank", 3, 8, 3, 1, 1, tensor.Shape{3, 8}, nil, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			conv := NewConv(c.name, c.inC, c.outC, c.k, c.stride, c.pad, src)
			got, err := conv.OutShape([]tensor.Shape{c.in})
			if c.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(c.want) {
				t.Errorf("OutShape = %v, want %v", got, c.want)
			}
		})
	}
}

// TestConvKnownValues checks the convolution arithmetic against a hand
// computation.
func TestConvKnownValues(t *testing.T) {
	conv := NewConv("c", 1, 1, 3, 1, 1, rng.New(0))
	// Kernel = all ones, bias = 0: output is the 3x3 box sum.
	conv.Weights.Fill(1)
	conv.Bias.Fill(0)
	in := tensor.New(1, 1, 3, 3)
	for i := range in.Data {
		in.Data[i] = float32(i + 1) // 1..9
	}
	out := tensor.New(1, 1, 3, 3)
	conv.Forward(out, []*tensor.T{in})
	// Center = sum(1..9) = 45; corner (0,0) = 1+2+4+5 = 12.
	if out.At(0, 0, 1, 1) != 45 {
		t.Errorf("center = %g, want 45", out.At(0, 0, 1, 1))
	}
	if out.At(0, 0, 0, 0) != 12 {
		t.Errorf("corner = %g, want 12", out.At(0, 0, 0, 0))
	}
	if out.At(0, 0, 2, 2) != 5+6+8+9 {
		t.Errorf("br corner = %g, want 28", out.At(0, 0, 2, 2))
	}
}

func TestConvBias(t *testing.T) {
	conv := NewConv("c", 1, 2, 1, 1, 0, rng.New(0))
	conv.Weights.Fill(0)
	conv.Bias.Data[0] = 1.5
	conv.Bias.Data[1] = -2
	in := tensor.New(1, 1, 2, 2)
	out := tensor.New(1, 2, 2, 2)
	conv.Forward(out, []*tensor.T{in})
	if out.At(0, 0, 0, 0) != 1.5 || out.At(0, 1, 1, 1) != -2 {
		t.Error("bias not applied per output channel")
	}
}

func TestConvStride(t *testing.T) {
	conv := NewConv("c", 1, 1, 1, 2, 0, rng.New(0))
	conv.Weights.Fill(1)
	conv.Bias.Fill(0)
	in := tensor.New(1, 1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out := tensor.New(1, 1, 2, 2)
	conv.Forward(out, []*tensor.T{in})
	want := []float32{0, 2, 8, 10}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

// convNaive is a direct convolution reference used to validate the
// im2col+GEMM path.
func convNaive(out *tensor.T, in *tensor.T, c *Conv) {
	n := in.Dim(0)
	h, w := in.Dim(2), in.Dim(3)
	oh, ow := out.Dim(2), out.Dim(3)
	for b := 0; b < n; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := float64(c.Bias.Data[oc])
					for ic := 0; ic < c.InC; ic++ {
						for ky := 0; ky < c.KH; ky++ {
							sy := oy*c.Stride - c.Pad + ky
							if sy < 0 || sy >= h {
								continue
							}
							for kx := 0; kx < c.KW; kx++ {
								sx := ox*c.Stride - c.Pad + kx
								if sx < 0 || sx >= w {
									continue
								}
								acc += float64(c.Weights.At(oc, ic, ky, kx)) *
									float64(in.At(b, ic, sy, sx))
							}
						}
					}
					out.Set(float32(acc), b, oc, oy, ox)
				}
			}
		}
	}
}

func TestConvMatchesNaive(t *testing.T) {
	src := rng.New(7)
	for _, tc := range []struct{ inC, outC, k, stride, pad, hw, batch int }{
		{3, 8, 3, 1, 1, 9, 1},
		{4, 6, 5, 1, 2, 11, 2},
		{2, 4, 7, 2, 3, 16, 1},
		{5, 5, 1, 1, 0, 6, 3},
		{3, 2, 3, 2, 0, 10, 1},
	} {
		conv := NewConv("c", tc.inC, tc.outC, tc.k, tc.stride, tc.pad, src)
		in := tensor.New(tc.batch, tc.inC, tc.hw, tc.hw)
		in.FillNormal(src, 0, 1)
		shape, err := conv.OutShape([]tensor.Shape{{tc.inC, tc.hw, tc.hw}})
		if err != nil {
			t.Fatal(err)
		}
		got := tensor.New(append(tensor.Shape{tc.batch}, shape...)...)
		want := got.Clone()
		conv.Forward(got, []*tensor.T{in})
		convNaive(want, in, conv)
		for i := range got.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
				t.Fatalf("config %+v: element %d: got %g, want %g", tc, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestConvRectKernel(t *testing.T) {
	src := rng.New(9)
	conv := NewConvRect("c", 2, 3, 1, 5, 1, 2, src)
	shape, err := conv.OutShape([]tensor.Shape{{2, 7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	// 1x5 kernel with pad 2: height unchanged only if pad applies both
	// dims — our symmetric pad grows height; oh = 7+4-1+1 = 11.
	if !shape.Equal(tensor.Shape{3, 11, 7}) {
		t.Errorf("rect OutShape = %v", shape)
	}
}

func TestConvStats(t *testing.T) {
	conv := NewConv("c", 64, 192, 3, 1, 1, rng.New(0))
	s := conv.Stats([]tensor.Shape{{64, 28, 28}})
	wantMACs := int64(192*28*28) * int64(64*9)
	if s.MACs != wantMACs {
		t.Errorf("MACs = %d, want %d", s.MACs, wantMACs)
	}
	if s.Params != int64(192*64*9+192) {
		t.Errorf("Params = %d", s.Params)
	}
	if s.InputElems != 64*28*28 || s.OutputElems != 192*28*28 {
		t.Error("elem counts wrong")
	}
	// Invalid input shape reports zero stats rather than panicking.
	if z := conv.Stats([]tensor.Shape{{3, 4}}); z != (Stats{}) {
		t.Error("invalid shape should yield zero stats")
	}
}

func TestConvDeterministicInit(t *testing.T) {
	a := NewConv("same", 3, 8, 3, 1, 1, rng.New(5))
	b := NewConv("same", 3, 8, 3, 1, 1, rng.New(5))
	for i := range a.Weights.Data {
		if a.Weights.Data[i] != b.Weights.Data[i] {
			t.Fatal("same name+seed must give identical weights")
		}
	}
	c := NewConv("other", 3, 8, 3, 1, 1, rng.New(5))
	if a.Weights.Data[0] == c.Weights.Data[0] {
		t.Error("different layer names should give different streams")
	}
}

// Property: convolution is linear — conv(αx) = α·conv(x) when bias=0.
func TestQuickConvLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		conv := NewConv("c", 2, 3, 3, 1, 1, src)
		conv.Bias.Fill(0)
		in := tensor.New(1, 2, 6, 6)
		in.FillNormal(src, 0, 1)
		out1 := tensor.New(1, 3, 6, 6)
		conv.Forward(out1, []*tensor.T{in})
		in2 := in.Clone()
		in2.Scale(3)
		out2 := tensor.New(1, 3, 6, 6)
		conv.Forward(out2, []*tensor.T{in2})
		for i := range out1.Data {
			if math.Abs(float64(out2.Data[i]-3*out1.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: batched forward equals per-sample forwards.
func TestQuickConvBatchConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		conv := NewConv("c", 2, 4, 3, 1, 1, src)
		batch := tensor.New(3, 2, 5, 5)
		batch.FillNormal(src, 0, 1)
		outB := tensor.New(3, 4, 5, 5)
		conv.Forward(outB, []*tensor.T{batch})
		per := 2 * 5 * 5
		outPer := 4 * 5 * 5
		for b := 0; b < 3; b++ {
			one := tensor.FromSlice(batch.Data[b*per:(b+1)*per], 1, 2, 5, 5)
			out1 := tensor.New(1, 4, 5, 5)
			conv.Forward(out1, []*tensor.T{one})
			for i := range out1.Data {
				if out1.Data[i] != outB.Data[b*outPer+i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
