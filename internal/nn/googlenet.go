package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// InceptionSpec gives the branch widths of one inception module, in
// the order of Table 1 of Szegedy et al.: the 1x1 branch, the 3x3
// reduce/expand pair, the 5x5 reduce/expand pair, and the pool
// projection.
type InceptionSpec struct {
	C1, C3r, C3, C5r, C5, CP int
}

// OutChannels returns the concatenated output depth of the module.
func (s InceptionSpec) OutChannels() int { return s.C1 + s.C3 + s.C5 + s.CP }

// AddInception appends a full inception module named prefix to g,
// consuming input, and returns the concat output name. The module is
// the 4-branch structure of Szegedy et al.: 1x1, 1x1→3x3, 1x1→5x5 and
// 3x3 maxpool→1x1, depth-concatenated.
func AddInception(g *Graph, prefix, input string, spec InceptionSpec, inC int, src *rng.Source) string {
	conv := func(name string, in string, ic, oc, k, pad int) string {
		c := g.MustAdd(NewConv(prefix+"/"+name, ic, oc, k, 1, pad, src), in)
		return g.MustAdd(&ReLU{LayerName: prefix + "/relu_" + name}, c)
	}
	b1 := conv("1x1", input, inC, spec.C1, 1, 0)
	r3 := conv("3x3_reduce", input, inC, spec.C3r, 1, 0)
	b3 := conv("3x3", r3, spec.C3r, spec.C3, 3, 1)
	r5 := conv("5x5_reduce", input, inC, spec.C5r, 1, 0)
	b5 := conv("5x5", r5, spec.C5r, spec.C5, 5, 2)
	pool := g.MustAdd(&Pool{
		LayerName: prefix + "/pool", PoolOp: MaxPool, K: 3, Stride: 1, Pad: 1, CeilMode: true,
	}, input)
	bp := conv("pool_proj", pool, inC, spec.CP, 1, 0)
	return g.MustAdd(&Concat{LayerName: prefix + "/output"}, b1, b3, b5, bp)
}

// googLeNetSpecs are the nine inception modules of the BVLC deploy
// network, 3a through 5b.
var googLeNetSpecs = []struct {
	name string
	spec InceptionSpec
}{
	{"inception_3a", InceptionSpec{64, 96, 128, 16, 32, 32}},
	{"inception_3b", InceptionSpec{128, 128, 192, 32, 96, 64}},
	{"inception_4a", InceptionSpec{192, 96, 208, 16, 48, 64}},
	{"inception_4b", InceptionSpec{160, 112, 224, 24, 64, 64}},
	{"inception_4c", InceptionSpec{128, 128, 256, 24, 64, 64}},
	{"inception_4d", InceptionSpec{112, 144, 288, 32, 64, 64}},
	{"inception_4e", InceptionSpec{256, 160, 320, 32, 128, 128}},
	{"inception_5a", InceptionSpec{256, 160, 320, 32, 128, 128}},
	{"inception_5b", InceptionSpec{384, 192, 384, 48, 128, 128}},
}

// GoogLeNetClasses is the ILSVRC class count.
const GoogLeNetClasses = 1000

// GoogLeNetInputShape is the network's CHW input geometry (the paper:
// "The input geometry of the network is 224x224").
var GoogLeNetInputShape = tensor.Shape{3, 224, 224}

// NewGoogLeNet builds the full BVLC GoogLeNet (Inception-v1) deploy
// architecture: conv/pool/LRN stem, nine inception modules with the
// published widths, global average pooling, dropout, the 1000-way
// classifier and softmax. Auxiliary training heads are omitted, as in
// the deploy prototxt the paper ran.
//
// Weights are deterministic pseudo-random (seeded by src); the
// performance experiments only depend on layer geometry, which matches
// the original network exactly (≈ 1.4 GMACs, ≈ 7.0 M parameters).
func NewGoogLeNet(src *rng.Source) *Graph {
	g := NewGraph("bvlc_googlenet", GoogLeNetInputShape)

	conv := func(name, in string, ic, oc, k, stride, pad int) string {
		c := g.MustAdd(NewConv(name, ic, oc, k, stride, pad, src), in)
		return g.MustAdd(&ReLU{LayerName: "relu_" + name}, c)
	}
	maxpool := func(name, in string) string {
		return g.MustAdd(&Pool{LayerName: name, PoolOp: MaxPool, K: 3, Stride: 2, CeilMode: true}, in)
	}

	// Stem.
	x := conv("conv1/7x7_s2", InputName, 3, 64, 7, 2, 3)
	x = maxpool("pool1/3x3_s2", x)
	x = g.MustAdd(NewLRN("pool1/norm1"), x)
	x = conv("conv2/3x3_reduce", x, 64, 64, 1, 1, 0)
	x = conv("conv2/3x3", x, 64, 192, 3, 1, 1)
	x = g.MustAdd(NewLRN("conv2/norm2"), x)
	x = maxpool("pool2/3x3_s2", x)

	inC := 192
	for _, m := range googLeNetSpecs {
		x = AddInception(g, m.name, x, m.spec, inC, src)
		inC = m.spec.OutChannels()
		// Grid reductions after 3b and 4e.
		if m.name == "inception_3b" {
			x = maxpool("pool3/3x3_s2", x)
		}
		if m.name == "inception_4e" {
			x = maxpool("pool4/3x3_s2", x)
		}
	}

	x = g.MustAdd(&Pool{LayerName: "pool5/7x7_s1", PoolOp: AvgPool, Global: true}, x)
	x = g.MustAdd(&Dropout{LayerName: "pool5/drop_7x7_s1", Ratio: 0.4}, x)
	x = g.MustAdd(NewFullyConnected("loss3/classifier", 1024, GoogLeNetClasses, src), x)
	g.MustAdd(&Softmax{LayerName: "prob"}, x)
	return g
}

// MicroConfig parameterizes the scaled-down inception network used by
// the accuracy experiments (DESIGN.md §2: running the full 224×224
// GoogLeNet functionally over 50 000 images is infeasible in pure Go,
// and the Fig. 7 quantities only need a real inception-style network
// with a controllable task).
type MicroConfig struct {
	Classes int // number of synthetic classes
	Input   int // square input size in pixels
}

// DefaultMicroConfig mirrors the experiment defaults: 100 classes at
// 32×32 input.
func DefaultMicroConfig() MicroConfig { return MicroConfig{Classes: 100, Input: 32} }

// MicroClassifierName is the FC layer whose weights the prototype
// calibration replaces.
const MicroClassifierName = "classifier"

// MicroPoolName is the embedding layer (global average pool) feeding
// the classifier.
const MicroPoolName = "pool_global"

// NewMicroGoogLeNet builds the scaled inception network: a conv/pool/
// LRN stem, three inception modules, global average pooling and a
// classifier. The topology exercises every operator kind the full
// network uses (conv, max/avg pool, LRN, concat, dropout, FC, softmax).
func NewMicroGoogLeNet(cfg MicroConfig, src *rng.Source) *Graph {
	if cfg.Classes <= 1 || cfg.Input < 16 {
		panic(fmt.Sprintf("nn: invalid MicroConfig %+v", cfg))
	}
	g := NewGraph("micro_googlenet", tensor.Shape{3, cfg.Input, cfg.Input})

	c1 := g.MustAdd(NewConv("conv1", 3, 16, 3, 1, 1, src), InputName)
	r1 := g.MustAdd(&ReLU{LayerName: "relu_conv1"}, c1)
	p1 := g.MustAdd(&Pool{LayerName: "pool1", PoolOp: MaxPool, K: 2, Stride: 2, CeilMode: true}, r1)
	n1 := g.MustAdd(NewLRN("norm1"), p1)

	x := AddInception(g, "micro_1", n1, InceptionSpec{8, 8, 16, 4, 8, 8}, 16, src)
	x = AddInception(g, "micro_2", x, InceptionSpec{16, 12, 24, 4, 12, 12}, 40, src)
	x = g.MustAdd(&Pool{LayerName: "pool2", PoolOp: MaxPool, K: 3, Stride: 2, CeilMode: true}, x)
	x = AddInception(g, "micro_3", x, InceptionSpec{24, 16, 32, 8, 16, 16}, 64, src)

	x = g.MustAdd(&Pool{LayerName: MicroPoolName, PoolOp: AvgPool, Global: true}, x)
	x = g.MustAdd(&Dropout{LayerName: "drop", Ratio: 0.4}, x)
	x = g.MustAdd(NewFullyConnected(MicroClassifierName, 88, cfg.Classes, src), x)
	g.MustAdd(&Softmax{LayerName: "prob"}, x)
	return g
}

// CalibrateClassifier rewrites the weights of the named FC layer so
// each row is the (scaled) embedding of its class prototype: the
// network then implements nearest-prototype classification in its own
// feature space, giving the synthetic task a deterministic, noise-
// controlled error rate (the substitution for the pre-trained BVLC
// weights, DESIGN.md §2).
//
// protos[c] is the class-c prototype image, already preprocessed the
// way inference inputs are. temperature scales the logits so softmax
// confidences are informative rather than saturated.
func CalibrateClassifier(g *Graph, fcName, embeddingLayer string, protos []*tensor.T, temperature float32) error {
	fc, ok := g.Layer(fcName).(*FullyConnected)
	if !ok {
		return fmt.Errorf("nn: %q is not a fully connected layer", fcName)
	}
	if len(protos) != fc.OutF {
		return fmt.Errorf("nn: %d prototypes for %d classes", len(protos), fc.OutF)
	}
	saved := g.Output()
	if err := g.SetOutput(embeddingLayer); err != nil {
		return err
	}
	defer func() {
		if err := g.SetOutput(saved); err != nil {
			panic(err) // restoring a previously valid output cannot fail
		}
	}()

	// Mean embedding norm normalizes the temperature across tasks.
	embeds := make([][]float32, len(protos))
	var meanNorm float64
	for c, p := range protos {
		in := p.Reshape(append(tensor.Shape{1}, g.InputShape()...)...)
		out, err := g.Forward(in, FP32)
		if err != nil {
			return err
		}
		e := append([]float32(nil), out.Data...)
		if len(e) != fc.InF {
			return fmt.Errorf("nn: embedding layer %q yields %d values, classifier expects %d",
				embeddingLayer, len(e), fc.InF)
		}
		var n2 float64
		for _, v := range e {
			n2 += float64(v) * float64(v)
		}
		norm := sqrt64(n2)
		if norm == 0 {
			return fmt.Errorf("nn: prototype %d has zero embedding", c)
		}
		for i := range e {
			e[i] = float32(float64(e[i]) / norm)
		}
		embeds[c] = e
		meanNorm += norm
	}
	meanNorm /= float64(len(protos))

	// Logits become temperature · (ê_c · f(x)) / meanNorm ≈ temperature
	// times a cosine similarity, so softmax confidences stay in an
	// informative range for any task scale.
	scale := temperature / float32(meanNorm)
	for c, e := range embeds {
		for i, v := range e {
			fc.Weights.Data[c*fc.InF+i] = v * scale
		}
		fc.Bias.Data[c] = 0
	}
	return nil
}

func sqrt64(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
