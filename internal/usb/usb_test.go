package usb

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func mustFabric(t *testing.T, env *sim.Env, cfg Config) *Fabric {
	t.Helper()
	f, err := NewFabric(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSingleTransferDuration(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultConfig()
	f := mustFabric(t, env, cfg)
	port, err := f.AttachDevice("d0", -1)
	if err != nil {
		t.Fatal(err)
	}
	n := 294 * 1024 // one FP16 224x224x3 tensor
	var took time.Duration
	env.Process("xfer", func(p *sim.Proc) {
		start := p.Now()
		port.Transfer(p, n)
		took = p.Now() - start
	})
	env.Run()
	want := port.MinDuration(n)
	if took != want {
		t.Errorf("uncontended transfer took %v, MinDuration says %v", took, want)
	}
	// Sanity: a ~300 KB transfer should take single-digit milliseconds.
	if took < 1*time.Millisecond || took > 10*time.Millisecond {
		t.Errorf("transfer time %v outside expected range", took)
	}
	if port.BytesMoved() != int64(n) {
		t.Errorf("BytesMoved = %d", port.BytesMoved())
	}
}

func TestZeroByteTransferPaysSetup(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultConfig()
	f := mustFabric(t, env, cfg)
	port, _ := f.AttachDevice("d0", -1)
	var took time.Duration
	env.Process("xfer", func(p *sim.Proc) {
		start := p.Now()
		port.Transfer(p, 0)
		took = p.Now() - start
	})
	env.Run()
	if took != cfg.SetupLatency {
		t.Errorf("zero transfer took %v, want setup %v", took, cfg.SetupLatency)
	}
}

func TestHubContentionSlowsSharers(t *testing.T) {
	cfg := DefaultConfig()
	n := 2 << 20 // 2 MB so contention dominates setup costs

	solo := measureConcurrent(t, cfg, 1, n)
	trio := measureConcurrent(t, cfg, 3, n)
	if trio <= solo {
		t.Fatalf("3 concurrent sharers (%v) should be slower than solo (%v)", trio, solo)
	}
	// Three devices at 110 MB/s want 330 MB/s through a 300 MB/s hub:
	// mild contention, so the slowdown must be well under 3x.
	if float64(trio)/float64(solo) > 2 {
		t.Errorf("slowdown %.2fx too severe for mild oversubscription", float64(trio)/float64(solo))
	}
}

// measureConcurrent runs k simultaneous n-byte transfers behind one
// hub and returns the makespan.
func measureConcurrent(t *testing.T, cfg Config, k, n int) time.Duration {
	t.Helper()
	env := sim.NewEnv()
	f := mustFabric(t, env, cfg)
	hub := f.AddHub()
	for i := 0; i < k; i++ {
		port, err := f.AttachDevice("d", hub)
		if err != nil {
			t.Fatal(err)
		}
		env.Process("xfer", func(p *sim.Proc) {
			port.Transfer(p, n)
		})
	}
	env.Run()
	return env.Now()
}

func TestDirectPortFasterThanHubUnderLoad(t *testing.T) {
	cfg := DefaultConfig()
	n := 1 << 20

	// Two devices on one hub vs two devices on separate direct ports.
	hubTime := measureConcurrent(t, cfg, 2, n)

	env := sim.NewEnv()
	f := mustFabric(t, env, cfg)
	for i := 0; i < 2; i++ {
		port, _ := f.AttachDevice("d", -1)
		env.Process("xfer", func(p *sim.Proc) { port.Transfer(p, n) })
	}
	env.Run()
	directTime := env.Now()

	if directTime > hubTime {
		t.Errorf("direct ports (%v) should be no slower than shared hub (%v)", directTime, hubTime)
	}
}

func TestAttachDeviceErrors(t *testing.T) {
	env := sim.NewEnv()
	f := mustFabric(t, env, DefaultConfig())
	if _, err := f.AttachDevice("d", 0); err == nil {
		t.Error("attaching to a nonexistent hub must fail")
	}
	if _, err := f.AttachDevice("d", -2); err == nil {
		t.Error("hub -2 must fail")
	}
	f.AddHub()
	if _, err := f.AttachDevice("d", 0); err != nil {
		t.Errorf("valid hub attach failed: %v", err)
	}
	if f.Hubs() != 1 {
		t.Errorf("Hubs = %d", f.Hubs())
	}
}

func TestConfigValidation(t *testing.T) {
	env := sim.NewEnv()
	bad := []Config{
		{RootBandwidth: 0, HubBandwidth: 1, DeviceBandwidth: 1, ChunkBytes: 1},
		{RootBandwidth: 1, HubBandwidth: 1, DeviceBandwidth: 1, ChunkBytes: 0},
		{RootBandwidth: 1, HubBandwidth: 1, DeviceBandwidth: 1, ChunkBytes: 1, SetupLatency: -1},
	}
	for i, cfg := range bad {
		if _, err := NewFabric(env, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNegativeTransferPanics(t *testing.T) {
	env := sim.NewEnv()
	f := mustFabric(t, env, DefaultConfig())
	port, _ := f.AttachDevice("d", -1)
	env.Process("p", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		port.Transfer(p, -1)
	})
	env.Run()
}

func TestTestbedTopology(t *testing.T) {
	env := sim.NewEnv()
	f, ports, err := Testbed(env, DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 8 {
		t.Fatalf("ports = %d", len(ports))
	}
	if f.Hubs() != 2 {
		t.Errorf("hubs = %d, want 2", f.Hubs())
	}
	// First two ports have 2 hops (device, root); the rest 3.
	for i, p := range ports {
		want := 3
		if i < 2 {
			want = 2
		}
		if len(p.path) != want {
			t.Errorf("port %d path length %d, want %d", i, len(p.path), want)
		}
	}
}

func TestTestbedErrors(t *testing.T) {
	env := sim.NewEnv()
	if _, _, err := Testbed(env, DefaultConfig(), 0); err == nil {
		t.Error("0 devices must fail")
	}
	if _, _, err := Testbed(env, Config{}, 4); err == nil {
		t.Error("invalid config must fail")
	}
}

func TestTestbed16DevicesForProjection(t *testing.T) {
	env := sim.NewEnv()
	_, ports, err := Testbed(env, DefaultConfig(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 16 {
		t.Fatalf("ports = %d", len(ports))
	}
	// Hub devices split evenly: 7 on each hub beyond the 2 direct.
	counts := map[*sim.Resource]int{}
	for _, p := range ports[2:] {
		counts[p.path[1].res]++
	}
	for _, c := range counts {
		if c != 7 {
			t.Errorf("hub has %d devices, want 7", c)
		}
	}
}

func TestAggregateThroughputRespectsRootCap(t *testing.T) {
	// Many devices on direct ports: aggregate throughput must not
	// exceed the root controller's bandwidth.
	cfg := DefaultConfig()
	cfg.SetupLatency = 0
	env := sim.NewEnv()
	f := mustFabric(t, env, cfg)
	n := 4 << 20
	k := 8
	for i := 0; i < k; i++ {
		port, _ := f.AttachDevice("d", -1)
		env.Process("xfer", func(p *sim.Proc) { port.Transfer(p, n) })
	}
	env.Run()
	total := float64(k * n)
	rate := total / env.Now().Seconds()
	if rate > cfg.RootBandwidth*1.01 {
		t.Errorf("aggregate rate %.0f exceeds root cap %.0f", rate, cfg.RootBandwidth)
	}
	// And it should get reasonably close to the cap under saturation.
	if rate < cfg.RootBandwidth*0.6 {
		t.Errorf("aggregate rate %.0f far below root cap %.0f", rate, cfg.RootBandwidth)
	}
}

// TestInjectSlowdownStretchesTransfers: a degraded link stretches
// every hop occupancy; clearing it restores the baseline exactly.
func TestInjectSlowdownStretchesTransfers(t *testing.T) {
	env := sim.NewEnv()
	f := mustFabric(t, env, DefaultConfig())
	port, err := f.AttachDevice("d0", -1)
	if err != nil {
		t.Fatal(err)
	}
	n := 294 * 1024
	var normal, slowed, restored time.Duration
	env.Process("xfer", func(p *sim.Proc) {
		move := func() time.Duration {
			start := p.Now()
			port.Transfer(p, n)
			return p.Now() - start
		}
		normal = move()
		port.InjectSlowdown(3)
		slowed = move()
		port.ClearSlowdown()
		restored = move()
	})
	env.Run()
	// Hop time dominates over the fixed setup latency, so x3 on the
	// hops should land past 2x overall.
	if slowed < normal*2 {
		t.Errorf("degraded transfer %v not clearly slower than baseline %v", slowed, normal)
	}
	if restored != normal {
		t.Errorf("transfer after ClearSlowdown %v, want baseline %v", restored, normal)
	}
}
