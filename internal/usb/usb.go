// Package usb models the host I/O fabric the NCS devices hang off: a
// USB 3.0 root controller, optional hubs, and per-device links. The
// paper's testbed (Fig. 5) connects 6 sticks through two USB 3.0 hubs
// and 2 sticks directly to motherboard ports; the shared hub uplinks
// are where the "small penalty ... due to the data transferring
// involved" comes from, and this model reproduces that contention.
//
// Transfers are store-and-forward in fixed-size chunks: each chunk
// crosses the device link, then the hub uplink (if any), then the root
// controller, holding one hop at a time. Chunking lets concurrent
// transfers interleave fairly on shared hops, approximating the
// round-robin arbitration of real bulk traffic while keeping the
// simulation deterministic.
package usb

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Config sets fabric bandwidths and protocol overheads. Bandwidths are
// bytes per second of effective bulk throughput (well below the 5 Gb/s
// line rate, as in practice).
type Config struct {
	// RootBandwidth is the host controller's aggregate throughput.
	RootBandwidth float64
	// HubBandwidth is each hub's uplink throughput.
	HubBandwidth float64
	// DeviceBandwidth caps a single device's link (the NCS's USB
	// implementation, not the cable, is the limit).
	DeviceBandwidth float64
	// ChunkBytes is the store-and-forward granularity.
	ChunkBytes int
	// SetupLatency is the fixed per-transfer cost (driver submit, bulk
	// protocol handshake).
	SetupLatency time.Duration
}

// DefaultConfig matches the paper's testbed hardware: a USB 3.0 xHCI
// root, Sandstrøm USB 3.0 hubs, and NCS sticks whose practical bulk
// throughput tops out near 110 MB/s.
func DefaultConfig() Config {
	return Config{
		RootBandwidth:   400e6,
		HubBandwidth:    300e6,
		DeviceBandwidth: 110e6,
		ChunkBytes:      128 << 10,
		SetupLatency:    200 * time.Microsecond,
	}
}

func (c Config) validate() error {
	if c.RootBandwidth <= 0 || c.HubBandwidth <= 0 || c.DeviceBandwidth <= 0 {
		return fmt.Errorf("usb: non-positive bandwidth in %+v", c)
	}
	if c.ChunkBytes <= 0 {
		return fmt.Errorf("usb: non-positive chunk size %d", c.ChunkBytes)
	}
	if c.SetupLatency < 0 {
		return fmt.Errorf("usb: negative setup latency %v", c.SetupLatency)
	}
	return nil
}

// hop is one shared link along a transfer path.
type hop struct {
	res *sim.Resource
	bw  float64
}

// Fabric is the assembled topology.
type Fabric struct {
	env  *sim.Env
	cfg  Config
	root hop
	hubs []hop
}

// NewFabric creates a fabric with the given config.
func NewFabric(env *sim.Env, cfg Config) (*Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Fabric{
		env:  env,
		cfg:  cfg,
		root: hop{res: env.NewResource("usb/root", 1), bw: cfg.RootBandwidth},
	}, nil
}

// AddHub adds a hub and returns its index.
func (f *Fabric) AddHub() int {
	id := len(f.hubs)
	f.hubs = append(f.hubs, hop{
		res: f.env.NewResource(fmt.Sprintf("usb/hub%d", id), 1),
		bw:  f.cfg.HubBandwidth,
	})
	return id
}

// Hubs returns the number of hubs.
func (f *Fabric) Hubs() int { return len(f.hubs) }

// Port is one attached device's path to the host.
type Port struct {
	fabric *Fabric
	name   string
	path   []hop // device link, [hub], root — in transfer order
	// bytesMoved accumulates traffic for reporting.
	bytesMoved int64
	// slow is the fault-injected link-degradation factor (<=1 = none):
	// a flaky link retrying bulk packets stretches every hop occupancy.
	slow float64
}

// InjectSlowdown models a degraded link (bulk retries, a renegotiated
// speed): every hop occupancy of this port's transfers is stretched
// ×factor until ClearSlowdown. The fault-injection hook internal/fault
// drives for Slowdown faults.
func (p *Port) InjectSlowdown(factor float64) {
	if factor > 1 {
		p.slow = factor
	}
}

// ClearSlowdown ends a link-degradation window.
func (p *Port) ClearSlowdown() { p.slow = 0 }

// AttachDevice attaches a device either behind hub (0 <= hub <
// Hubs()) or directly to the root (hub == -1), as in Fig. 5.
func (f *Fabric) AttachDevice(name string, hub int) (*Port, error) {
	dev := hop{res: f.env.NewResource("usb/dev/"+name, 1), bw: f.cfg.DeviceBandwidth}
	path := []hop{dev}
	switch {
	case hub == -1:
		// direct to root
	case hub >= 0 && hub < len(f.hubs):
		path = append(path, f.hubs[hub])
	default:
		return nil, fmt.Errorf("usb: hub %d does not exist (have %d)", hub, len(f.hubs))
	}
	path = append(path, f.root)
	return &Port{fabric: f, name: name, path: path}, nil
}

// Name returns the port's device name.
func (p *Port) Name() string { return p.name }

// BytesMoved returns the total traffic through this port.
func (p *Port) BytesMoved() int64 { return p.bytesMoved }

// Transfer moves n bytes between host and device, blocking proc in
// virtual time for the full duration (bulk transfers are symmetric
// enough that direction is not modelled). Zero-byte transfers still
// pay the setup latency (a real command/status round trip).
func (p *Port) Transfer(proc *sim.Proc, n int) {
	if n < 0 {
		panic(fmt.Sprintf("usb: negative transfer size %d", n))
	}
	proc.Sleep(p.fabric.cfg.SetupLatency)
	chunk := p.fabric.cfg.ChunkBytes
	for moved := 0; moved < n; moved += chunk {
		sz := chunk
		if n-moved < sz {
			sz = n - moved
		}
		for _, h := range p.path {
			h.res.Acquire(proc)
			d := durationFor(sz, h.bw)
			if p.slow > 1 {
				// Degraded link: retries stretch the hop occupancy (and,
				// since the hop is held, everyone sharing it feels it —
				// as real bulk retries do).
				d = time.Duration(float64(d) * p.slow)
			}
			proc.Sleep(d)
			h.res.Release()
		}
	}
	p.bytesMoved += int64(n)
}

// MinDuration estimates the uncontended time for an n-byte transfer;
// experiments use it to report overhead attribution.
func (p *Port) MinDuration(n int) time.Duration {
	d := p.fabric.cfg.SetupLatency
	chunk := p.fabric.cfg.ChunkBytes
	for moved := 0; moved < n; moved += chunk {
		sz := chunk
		if n-moved < sz {
			sz = n - moved
		}
		for _, h := range p.path {
			d += durationFor(sz, h.bw)
		}
	}
	return d
}

func durationFor(bytes int, bw float64) time.Duration {
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}

// Testbed assembles the paper's Fig. 5 topology for n devices: the
// first 2 devices use motherboard ports, the rest spread across two
// hubs (3+3 at n=8). For n > 8 additional devices keep alternating
// between the two hubs (used by the Fig. 8b projection run).
func Testbed(env *sim.Env, cfg Config, n int) (*Fabric, []*Port, error) {
	f, err := NewFabric(env, cfg)
	if err != nil {
		return nil, nil, err
	}
	if n <= 0 {
		return nil, nil, fmt.Errorf("usb: testbed needs at least one device, got %d", n)
	}
	h0 := f.AddHub()
	h1 := f.AddHub()
	ports := make([]*Port, n)
	for i := 0; i < n; i++ {
		hub := -1
		if i >= 2 { // devices 2.. go behind hubs, alternating
			if (i-2)%2 == 0 {
				hub = h0
			} else {
				hub = h1
			}
		}
		p, err := f.AttachDevice(fmt.Sprintf("ncs%d", i), hub)
		if err != nil {
			return nil, nil, err
		}
		ports[i] = p
	}
	return f, ports, nil
}
