package scenario

import (
	"strings"
	"testing"
	"time"
)

// minimal is the smallest valid scenario; the table tests below
// mutate one section at a time.
const minimal = `{
	"name": "t",
	"images": 16,
	"fleet": {"groups": [{"kind": "cpu"}]}
}`

// parseCompile exercises the full static path: strict parse,
// semantic validation, and compilation (where cut names resolve).
func parseCompile(src string) error {
	sc, err := Parse([]byte(src), "test.json")
	if err != nil {
		return err
	}
	_, err = sc.Compile()
	return err
}

// TestValidationRules holds one case per validation rule: every
// malformed scenario must fail with an error naming the offending
// field path.
func TestValidationRules(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{
			name: "unknown device kind",
			src:  `{"name":"t","fleet":{"groups":[{"kind":"tpu"}]}}`,
			want: `fleet.groups[0].kind: unknown device kind "tpu"`,
		},
		{
			name: "negative arrival rate",
			src: `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
				"traffic":{"arrivals":{"process":"poisson","rate":-5}}}`,
			want: "traffic.arrivals.rate: arrival rate -5",
		},
		{
			name: "conflicting tenant and arrival sections",
			src: `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
				"traffic":{
					"arrivals":{"process":"poisson","rate":10},
					"tenants":{"tenants":[{"id":"a","arrivals":{"process":"poisson","rate":5}}]}}}`,
			want: "traffic: arrivals and tenants are mutually exclusive",
		},
		{
			name: "invalid cut name",
			src: `{"name":"t","network":"googlenet",
				"fleet":{"stages":[{"kind":"vpu","devices":2},{"kind":"gpu","batch":4}],
				"cuts":["no_such_layer"]}}`,
			want: `fleet.cuts[0]: no layer "no_such_layer"`,
		},
		{
			name: "cut inside an inception module",
			src: `{"name":"t","network":"googlenet",
				"fleet":{"stages":[{"kind":"vpu","devices":2},{"kind":"gpu","batch":4}],
				"cuts":["inception_3a/1x1"]}}`,
			want: `fleet.cuts[0]: no legal cut after layer "inception_3a/1x1"`,
		},
		{
			name: "hot-reload of a non-reloadable field",
			src: `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
				"reloads":[{"at":1000,"routing":"round-robin"}]}`,
			want: "reloads[0].routing: unknown field",
		},
		{
			name: "unknown top-level field",
			src:  `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},"floot":{}}`,
			want: "floot: unknown field",
		},
		{
			name: "reload sets no knob",
			src: `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
				"reloads":[{"at":1000}]}`,
			want: "reloads[0]: reload sets no knob",
		},
		{
			name: "admission without arrivals",
			src: `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
				"admission":{"depth":8}}`,
			want: "admission: needs traffic.arrivals",
		},
		{
			name: "hedge budget reload without a hedge section",
			src: `{"name":"t","fleet":{"groups":[{"kind":"vpu","devices":4}]},
				"reloads":[{"at":1000,"hedge_budget":0.1}]}`,
			want: "reloads[0].hedge_budget: needs a hedge section",
		},
		{
			name: "admission depth reload without an admission section",
			src: `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
				"reloads":[{"at":1000,"admission_depth":4}]}`,
			want: "reloads[0].admission_depth: needs an admission section",
		},
		{
			name: "bursty on-phase too short for the rate",
			src: `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
				"traffic":{"arrivals":{"process":"bursty","rate":2,"on":100,"off":200}}}`,
			want: "traffic.arrivals.on: on-phase 100ms holds no arrivals",
		},
		{
			name: "nested phased schedule",
			src: `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
				"traffic":{"arrivals":{"process":"phased","phases":[
					{"process":"phased","duration":1000}]}}}`,
			want: "traffic.arrivals.phases[0].process: phased schedules cannot nest",
		},
		{
			name: "every phase silent",
			src: `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
				"traffic":{"arrivals":{"process":"phased","phases":[
					{"process":"silence","duration":1000}]}}}`,
			want: "traffic.arrivals.phases: every phase silent",
		},
		{
			name: "missing scenario name",
			src:  `{"fleet":{"groups":[{"kind":"cpu"}]}}`,
			want: "name: required",
		},
		{
			name: "groups and stages together",
			src: `{"name":"t","fleet":{
				"groups":[{"kind":"cpu"}],
				"stages":[{"kind":"cpu"},{"kind":"gpu"}],"cuts":[10]}}`,
			want: "fleet: groups and stages are mutually exclusive",
		},
		{
			name: "cut count mismatch",
			src: `{"name":"t","fleet":{
				"stages":[{"kind":"vpu","devices":2},{"kind":"gpu"}],"cuts":[]}}`,
			want: "fleet.cuts: 0 cuts for 2 stages",
		},
		{
			name: "unknown routing",
			src:  `{"name":"t","fleet":{"groups":[{"kind":"cpu"}],"routing":"lifo"}}`,
			want: `fleet.routing: unknown routing "lifo"`,
		},
		{
			name: "unknown tenant scheduler",
			src: `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
				"traffic":{"tenants":{"scheduler":"lottery",
					"tenants":[{"id":"a","arrivals":{"process":"poisson","rate":5}}]}}}`,
			want: `traffic.tenants.scheduler: unknown scheduler "lottery"`,
		},
		{
			name: "tenant without arrivals",
			src: `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
				"traffic":{"tenants":{"tenants":[{"id":"a"}]}}}`,
			want: "traffic.tenants.tenants[0].arrivals: required",
		},
		{
			name: "wrong field type",
			src:  `{"name":"t","images":"many","fleet":{"groups":[{"kind":"cpu"}]}}`,
			want: "cannot decode",
		},
		{
			name: "bad duration string",
			src: `{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
				"slo":"fortnight"}`,
			want: `invalid duration "fortnight"`,
		},
		{
			name: "hedge without trigger or quantile",
			src: `{"name":"t","fleet":{"groups":[{"kind":"vpu","devices":4}]},
				"hedge":{"budget":0.1}}`,
			want: "hedge: needs a trigger or a quantile",
		},
		{
			name: "dynamic hedge without budget",
			src: `{"name":"t","fleet":{"groups":[{"kind":"vpu","devices":4}]},
				"hedge":{"quantile":0.95,"dynamic":true}}`,
			want: "hedge.dynamic: needs a positive budget",
		},
		{
			name: "slowdown event without factor",
			src: `{"name":"t","fleet":{"groups":[{"kind":"vpu","devices":2}]},
				"faults":{"events":[{"device":"ncs0","kind":"slowdown","at":1000}]}}`,
			want: "faults.events[0].factor: slowdown factor 0",
		},
		{
			name: "unknown fault kind",
			src: `{"name":"t","fleet":{"groups":[{"kind":"vpu","devices":2}]},
				"faults":{"events":[{"device":"ncs0","kind":"meltdown","at":1000}]}}`,
			want: `faults.events[0].kind: unknown fault kind "meltdown"`,
		},
		{
			name: "empty fleet",
			src:  `{"name":"t","fleet":{}}`,
			want: "fleet: needs groups or stages",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := parseCompile(tc.src)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "test.json") {
				t.Fatalf("error %q does not name the file", err)
			}
		})
	}
}

// TestDurations checks the two accepted duration spellings: JSON
// numbers are milliseconds, JSON strings are Go duration syntax
// (including exact nanosecond counts).
func TestDurations(t *testing.T) {
	sc, err := Parse([]byte(`{
		"name":"t",
		"fleet":{"groups":[{"kind":"cpu"}]},
		"slo":250,
		"batching":{"max_wait":"6500000ns"},
		"reloads":[{"at":"1.5s","slo":100}]
	}`), "t.json")
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.SLO.Std(); got != 250*time.Millisecond {
		t.Errorf("slo = %v, want 250ms", got)
	}
	if got := sc.Batching.MaxWait.Std(); got != 6500000*time.Nanosecond {
		t.Errorf("max_wait = %v, want 6.5ms", got)
	}
	if got := sc.Reloads[0].At.Std(); got != 1500*time.Millisecond {
		t.Errorf("reload at = %v, want 1.5s", got)
	}
}

// TestCutResolution checks that named cuts resolve to the documented
// whole-network indices and numeric cuts pass through.
func TestCutResolution(t *testing.T) {
	sc, err := Parse([]byte(`{
		"name":"t","network":"googlenet",
		"fleet":{"stages":[{"kind":"vpu","devices":2},{"kind":"gpu","batch":4}],
			"cuts":["inception_4e/output"]}
	}`), "t.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Cuts) != 1 || cfg.Cuts[0] != 109 {
		t.Errorf("cuts = %v, want [109] (after inception_4e/output)", cfg.Cuts)
	}

	sc2, err := Parse([]byte(`{
		"name":"t","network":"googlenet",
		"fleet":{"stages":[{"kind":"vpu","devices":2},{"kind":"gpu","batch":4}],
			"cuts":[38]}
	}`), "t.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := sc2.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg2.Cuts) != 1 || cfg2.Cuts[0] != 38 {
		t.Errorf("cuts = %v, want [38]", cfg2.Cuts)
	}
}

// TestRunSmoke runs the minimal scenario twice and demands identical
// renderings — the determinism contract in miniature.
func TestRunSmoke(t *testing.T) {
	src := `{
		"name": "smoke",
		"images": 32,
		"dataset": {"images": 32, "subsets": 1},
		"fleet": {"groups": [{"kind": "cpu", "batch": 4}]}
	}`
	sc, err := Parse([]byte(src), "smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Report.Images != 32 {
		t.Errorf("completed %d images, want 32", r1.Report.Images)
	}
	sc2, err := Parse([]byte(src), "smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sc2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Errorf("two runs of the same scenario rendered differently")
	}
	p := r1.Point()
	if p.Name != "smoke" || p.Images != 32 || p.ThroughputIPS <= 0 {
		t.Errorf("point = %+v", p)
	}
}
