// Package scenario is the declarative scenario engine: a JSON file
// format describing everything a serving experiment needs — fleet
// topology (device groups or pipeline stages with cuts), traffic
// (open-loop arrival processes or a multi-tenant mix), the fault
// plan, the SLO and the serving knobs (admission, hedging, batch
// assembly), plus scheduled mid-run knob reloads — and the machinery
// to load, validate, compile and run such a file as a
// pipeline.Session.
//
// A scenario file is a complete, committed, executable description of
// a serving day: the corpus under scenarios/ doubles as the
// integration regression suite (each file is golden-pinned at quick
// scale), and `ncsw-bench -scenario <file|dir>` runs one file or
// sweeps a directory. Loading is strict — unknown fields, malformed
// values and semantic violations are all errors carrying the file
// name and the JSON field path (e.g. "fleet.groups[0].kind") — and
// running is deterministic: the same file produces bit-identical
// reports on every run.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Duration is a JSON-friendly time.Duration: a JSON number is read as
// milliseconds (the natural unit of serving latency), a JSON string
// as Go duration syntax ("250ms", "1.5s", "6500000ns").
type Duration time.Duration

// Std converts to the standard library representation.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// UnmarshalJSON accepts a millisecond number or a duration string.
func (d *Duration) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	if len(s) > 0 && s[0] == '"' {
		var str string
		if err := json.Unmarshal(b, &str); err != nil {
			return err
		}
		v, err := time.ParseDuration(str)
		if err != nil {
			return fmt.Errorf("invalid duration %q (want Go syntax, e.g. \"250ms\")", str)
		}
		*d = Duration(v)
		return nil
	}
	var ms float64
	if err := json.Unmarshal(b, &ms); err != nil {
		return fmt.Errorf("invalid duration %s (want milliseconds or a duration string)", s)
	}
	*d = Duration(ms * float64(time.Millisecond))
	return nil
}

// MarshalJSON renders the duration in Go syntax.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Cut names one pipeline cut: either a whole-network layer index
// (JSON number) or the name of the last layer of the stage before the
// cut (JSON string) — resolved against the workload network at
// compile time.
type Cut struct {
	// Name is the layer the cut falls after ("" for index cuts).
	Name string
	// Index is the whole-network cut index (valid when Name is "").
	Index int
}

// UnmarshalJSON accepts a layer name or a cut index.
func (c *Cut) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	if len(s) > 0 && s[0] == '"' {
		return json.Unmarshal(b, &c.Name)
	}
	if err := json.Unmarshal(b, &c.Index); err != nil {
		return fmt.Errorf("invalid cut %s (want a layer name or a cut index)", s)
	}
	return nil
}

// MarshalJSON renders the cut as it was declared.
func (c Cut) MarshalJSON() ([]byte, error) {
	if c.Name != "" {
		return json.Marshal(c.Name)
	}
	return json.Marshal(c.Index)
}

// GroupSpec declares one device group of the fleet.
type GroupSpec struct {
	// Kind is the device family: "cpu", "gpu" or "vpu".
	Kind string `json:"kind"`
	// Batch is the CPU/GPU batch size (default 8).
	Batch int `json:"batch,omitempty"`
	// Devices is the VPU stick count (default 1).
	Devices int `json:"devices,omitempty"`
	// Weight is the static/weighted routing weight (0 = unset).
	Weight float64 `json:"weight,omitempty"`
	// SeedLabel pins the group's batch-engine jitter stream to a
	// derivation label (see pipeline.Group.SeedLabel).
	SeedLabel string `json:"seed_label,omitempty"`
}

// StageSpec declares one stage of a model-parallel pipeline fleet.
type StageSpec struct {
	GroupSpec
	// Replicas widens the stage to a pool of identical groups (0 or
	// 1 = a single group).
	Replicas int `json:"replicas,omitempty"`
	// Queue bounds the in-flight window to the next stage (0 =
	// session queue depth).
	Queue int `json:"queue,omitempty"`
}

// FleetSpec declares the device topology: flat groups under a routing
// policy, or pipeline stages joined at cuts.
type FleetSpec struct {
	// Groups are the device groups of a flat (routed) fleet.
	Groups []GroupSpec `json:"groups,omitempty"`
	// Stages are the stages of a model-parallel pipeline fleet
	// (mutually exclusive with Groups).
	Stages []StageSpec `json:"stages,omitempty"`
	// Cuts are the len(Stages)-1 network boundaries between stages,
	// each a layer name or a cut index.
	Cuts []Cut `json:"cuts,omitempty"`
	// Routing selects the device-group scheduler of a flat fleet:
	// "throughput-weighted" (default), "static-split", "round-robin",
	// "work-stealing" or "latency-ewma".
	Routing string `json:"routing,omitempty"`
	// QueueDepth bounds the per-group feed queues (0 = default 2).
	QueueDepth int `json:"queue_depth,omitempty"`
}

// ArrivalSpec declares an open-loop arrival process.
type ArrivalSpec struct {
	// Process selects the arrival law: "deterministic", "poisson",
	// "bursty", "trace" or "phased" (plus "silence" for a quiet phase
	// inside a phased schedule).
	Process string `json:"process"`
	// Rate is the mean arrival rate in items/sec (deterministic,
	// poisson, bursty).
	Rate float64 `json:"rate,omitempty"`
	// On and Off are the bursty duty-cycle phases.
	On  Duration `json:"on,omitempty"`
	Off Duration `json:"off,omitempty"`
	// Instants is the explicit trace of arrival times.
	Instants []Duration `json:"instants,omitempty"`
	// Phases is the piecewise schedule of a phased process: each
	// phase runs its own law for its duration, in order.
	Phases []PhaseSpec `json:"phases,omitempty"`
	// Cycle repeats a phased schedule forever (diurnal load curves).
	Cycle bool `json:"cycle,omitempty"`
	// Delay holds the whole process back by a warmup offset.
	Delay Duration `json:"delay,omitempty"`
}

// PhaseSpec is one phase of a phased arrival schedule: an arrival law
// plus how long it holds. Process "silence" declares a quiet phase.
type PhaseSpec struct {
	ArrivalSpec
	// Duration is how long the phase lasts (required > 0).
	Duration Duration `json:"duration"`
}

// TenantSpec declares one traffic class of a multi-tenant scenario.
type TenantSpec struct {
	// ID names the tenant (unique, non-empty).
	ID string `json:"id"`
	// Weight is the fair-share weight (default 1).
	Weight float64 `json:"weight,omitempty"`
	// Priority is the strict-priority class (lower first).
	Priority int `json:"priority,omitempty"`
	// SLO is the tenant's own latency target (0 = session SLO).
	SLO Duration `json:"slo,omitempty"`
	// Arrivals is the tenant's arrival process (required).
	Arrivals *ArrivalSpec `json:"arrivals"`
	// QueueDepth bounds the tenant's own queue (0 = unbounded).
	QueueDepth int `json:"queue_depth,omitempty"`
	// Overload is the tenant queue's full-queue policy:
	// "shed-newest" (default), "shed-oldest" or "block".
	Overload string `json:"overload,omitempty"`
	// MaxInFlight caps admitted-but-uncompleted items (0 = none).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// RatePerSec and Burst are the token-bucket rate quota.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
}

// TenantsSpec declares the multi-tenant mix and its scheduler.
type TenantsSpec struct {
	// Scheduler is the admission-edge policy: "fifo" (default),
	// "weighted-fair" (alias "fair") or "priority".
	Scheduler string `json:"scheduler,omitempty"`
	// SharedDepth bounds the FIFO shared queue (fair schedulers
	// ignore it).
	SharedDepth int `json:"shared_depth,omitempty"`
	// SharedOverload is the FIFO shared queue's policy.
	SharedOverload string `json:"shared_overload,omitempty"`
	// Tenants is the traffic-class registry, in registration order.
	Tenants []TenantSpec `json:"tenants"`
}

// TrafficSpec declares what drives the run: a single open-loop
// arrival process, or a multi-tenant mix (mutually exclusive).
type TrafficSpec struct {
	// Arrivals is the single-tenant arrival process.
	Arrivals *ArrivalSpec `json:"arrivals,omitempty"`
	// ArrivalLabel pins the arrival stream's seed derivation label
	// (see pipeline.Config.ArrivalLabel).
	ArrivalLabel string `json:"arrival_label,omitempty"`
	// Tenants is the multi-tenant mix.
	Tenants *TenantsSpec `json:"tenants,omitempty"`
}

// AdmissionSpec bounds the session ingress.
type AdmissionSpec struct {
	// Depth is the admission queue bound (required >= 1).
	Depth int `json:"depth"`
	// Policy is the overload behavior: "shed-newest" (default),
	// "shed-oldest" or "block".
	Policy string `json:"policy,omitempty"`
	// Shrink ties the effective depth to device-pool health.
	Shrink bool `json:"shrink,omitempty"`
	// MinDepth floors the health-shrunk depth (0 = 1).
	MinDepth int `json:"min_depth,omitempty"`
}

// HedgeSpec arms speculative hedged requests.
type HedgeSpec struct {
	// Trigger is the fixed in-flight age that launches a duplicate.
	Trigger Duration `json:"trigger,omitempty"`
	// Quantile derives the trigger from the live completion-age
	// distribution (in (0,1); 0 = off).
	Quantile float64 `json:"quantile,omitempty"`
	// MinSamples is the quantile warmup (0 = default).
	MinSamples int `json:"min_samples,omitempty"`
	// Budget caps hedge volume as a fraction of dispatches (0 =
	// unlimited).
	Budget float64 `json:"budget,omitempty"`
	// Dynamic scales Budget by observed fleet headroom.
	Dynamic bool `json:"dynamic,omitempty"`
}

// BatchingSpec tunes batch assembly on CPU/GPU groups.
type BatchingSpec struct {
	// MaxWait bounds partial-batch assembly (0 = fill to size).
	MaxWait Duration `json:"max_wait,omitempty"`
	// Adaptive sizes batches from the observed backlog.
	Adaptive bool `json:"adaptive,omitempty"`
}

// FaultEventSpec is one scripted fault.
type FaultEventSpec struct {
	// Device names the target ("ncs0".."ncsN", "cpu", "gpu", ...).
	Device string `json:"device"`
	// Kind is the fault class: "hang", "link-drop", "transient",
	// "slowdown" or "batch-oom".
	Kind string `json:"kind"`
	// At is the virtual instant the fault fires.
	At Duration `json:"at"`
	// Duration is the slowdown window (slowdown only).
	Duration Duration `json:"duration,omitempty"`
	// Factor is the slowdown service-time multiplier (slowdown only).
	Factor float64 `json:"factor,omitempty"`
	// Count is how many inferences/batches fail (transient,
	// batch-oom; default 1).
	Count int `json:"count,omitempty"`
}

// FaultProcessSpec is a seeded-stochastic fault generator.
type FaultProcessSpec struct {
	// Devices are the candidate targets.
	Devices []string `json:"devices"`
	// Kinds are the fault classes drawn from.
	Kinds []string `json:"kinds"`
	// Rate is the mean fault rate (faults/sec over the device set).
	Rate float64 `json:"rate"`
	// Start and End bound the active window (End > Start).
	Start Duration `json:"start,omitempty"`
	End   Duration `json:"end"`
	// Factor and Window parameterize drawn slowdowns.
	Factor float64  `json:"factor,omitempty"`
	Window Duration `json:"window,omitempty"`
}

// FaultsSpec is the scenario's deterministic fault plan.
type FaultsSpec struct {
	// Events are the scripted faults.
	Events []FaultEventSpec `json:"events,omitempty"`
	// Processes are the seeded-stochastic generators.
	Processes []FaultProcessSpec `json:"processes,omitempty"`
}

// RecoverySpec configures health monitoring and self-healing.
type RecoverySpec struct {
	// Timeout is the completion heartbeat (required > 0).
	Timeout Duration `json:"timeout"`
	// Recover re-opens unhealthy devices (default true; false is
	// fail-stop).
	Recover *bool `json:"recover,omitempty"`
	// MaxAttempts bounds deliveries per item (0 = default 3).
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// ReloadSpec schedules a mid-run operator intervention: at virtual
// instant At, every knob the spec sets is hot-reloaded into the
// running session. Only the reloadable knobs appear here — SLO, hedge
// budget, admission depth; anything else in a reload object is an
// unknown field.
type ReloadSpec struct {
	// At is the virtual instant the reload applies.
	At Duration `json:"at"`
	// SLO replaces the serving deadline from At on.
	SLO *Duration `json:"slo,omitempty"`
	// HedgeBudget replaces the hedge-volume budget from At on.
	HedgeBudget *float64 `json:"hedge_budget,omitempty"`
	// AdmissionDepth re-bounds the ingress from At on.
	AdmissionDepth *int `json:"admission_depth,omitempty"`
}

// DatasetSpec overrides the synthetic dataset parameters (zero
// fields keep the imagenet defaults).
type DatasetSpec struct {
	// Images, Classes, Subsets and Size override imagenet.Config.
	Images  int `json:"images,omitempty"`
	Classes int `json:"classes,omitempty"`
	Subsets int `json:"subsets,omitempty"`
	Size    int `json:"size,omitempty"`
	// Seed overrides the dataset seed (0 = imagenet default).
	Seed uint64 `json:"seed,omitempty"`
}

// Scenario is one declarative serving experiment: everything a
// pipeline session can express, as data.
type Scenario struct {
	// Name identifies the scenario (required; reports and goldens
	// key on it).
	Name string `json:"name"`
	// Description says what the scenario models.
	Description string `json:"description,omitempty"`
	// Seed drives every stochastic component (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// NetSeed seeds the network weights (0 = the conventional 42).
	NetSeed uint64 `json:"net_seed,omitempty"`
	// Images is how many images the run classifies (0 = whole
	// dataset).
	Images int `json:"images,omitempty"`
	// Network selects the workload: "auto" (default), "googlenet" or
	// "micro".
	Network string `json:"network,omitempty"`
	// Dataset overrides the synthetic dataset parameters.
	Dataset *DatasetSpec `json:"dataset,omitempty"`
	// Fleet is the device topology (required).
	Fleet FleetSpec `json:"fleet"`
	// Traffic drives the run open-loop (omit for a closed-loop
	// drain-the-dataset throughput run).
	Traffic *TrafficSpec `json:"traffic,omitempty"`
	// SLO is the session serving deadline (0 = no deadline).
	SLO Duration `json:"slo,omitempty"`
	// Admission bounds the ingress.
	Admission *AdmissionSpec `json:"admission,omitempty"`
	// Hedge arms speculative duplicates.
	Hedge *HedgeSpec `json:"hedge,omitempty"`
	// Batching tunes CPU/GPU batch assembly.
	Batching *BatchingSpec `json:"batching,omitempty"`
	// Faults is the fault plan.
	Faults *FaultsSpec `json:"faults,omitempty"`
	// Recovery configures self-healing (defaulted when the fault
	// plan needs it).
	Recovery *RecoverySpec `json:"recovery,omitempty"`
	// Reloads are the scheduled mid-run knob swaps.
	Reloads []ReloadSpec `json:"reloads,omitempty"`

	// File is the path the scenario was loaded from ("" when parsed
	// from memory); error messages and reports carry its base name.
	File string `json:"-"`

	// src is the label Parse was given (the file name); later errors
	// (Compile, Run) carry it when File is unset.
	src string
}

// field is one node of the strict-parsing schema: the set of known
// JSON keys at that nesting level. A nil child is a scalar (or an
// array of scalars); a non-nil child applies to an object value or to
// every element of an array value.
type field map[string]field

func arrivalFields(top bool) field {
	f := field{
		"process":  nil,
		"rate":     nil,
		"on":       nil,
		"off":      nil,
		"instants": nil,
		"delay":    nil,
	}
	if top {
		f["cycle"] = nil
		ph := arrivalFields(false)
		ph["duration"] = nil
		f["phases"] = ph
	}
	return f
}

func groupFields(stage bool) field {
	f := field{
		"kind":       nil,
		"batch":      nil,
		"devices":    nil,
		"weight":     nil,
		"seed_label": nil,
	}
	if stage {
		f["replicas"] = nil
		f["queue"] = nil
	}
	return f
}

// rootSchema is the full scenario schema, used to reject unknown
// fields with an exact path before typed decoding.
var rootSchema = field{
	"name":        nil,
	"description": nil,
	"seed":        nil,
	"net_seed":    nil,
	"images":      nil,
	"network":     nil,
	"dataset": field{
		"images": nil, "classes": nil, "subsets": nil, "size": nil, "seed": nil,
	},
	"fleet": field{
		"groups":      groupFields(false),
		"stages":      groupFields(true),
		"cuts":        nil,
		"routing":     nil,
		"queue_depth": nil,
	},
	"traffic": field{
		"arrivals":      arrivalFields(true),
		"arrival_label": nil,
		"tenants": field{
			"scheduler":       nil,
			"shared_depth":    nil,
			"shared_overload": nil,
			"tenants": field{
				"id":            nil,
				"weight":        nil,
				"priority":      nil,
				"slo":           nil,
				"arrivals":      arrivalFields(true),
				"queue_depth":   nil,
				"overload":      nil,
				"max_in_flight": nil,
				"rate_per_sec":  nil,
				"burst":         nil,
			},
		},
	},
	"slo": nil,
	"admission": field{
		"depth": nil, "policy": nil, "shrink": nil, "min_depth": nil,
	},
	"hedge": field{
		"trigger": nil, "quantile": nil, "min_samples": nil, "budget": nil, "dynamic": nil,
	},
	"batching": field{
		"max_wait": nil, "adaptive": nil,
	},
	"faults": field{
		"events": field{
			"device": nil, "kind": nil, "at": nil, "duration": nil, "factor": nil, "count": nil,
		},
		"processes": field{
			"devices": nil, "kinds": nil, "rate": nil, "start": nil, "end": nil, "factor": nil, "window": nil,
		},
	},
	"recovery": field{
		"timeout": nil, "recover": nil, "max_attempts": nil,
	},
	"reloads": field{
		"at": nil, "slo": nil, "hedge_budget": nil, "admission_depth": nil,
	},
}

// checkFields walks the generically-decoded document against the
// schema and rejects the first unknown key, carrying its full path.
// Keys are visited in sorted order so the error is deterministic.
func checkFields(path string, v any, sc field) error {
	switch val := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(val))
		for k := range val {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			child, ok := sc[k]
			p := k
			if path != "" {
				p = path + "." + k
			}
			if !ok {
				return fmt.Errorf("%s: unknown field", p)
			}
			if child != nil {
				if err := checkFields(p, val[k], child); err != nil {
					return err
				}
			}
		}
	case []any:
		for i, e := range val {
			if err := checkFields(fmt.Sprintf("%s[%d]", path, i), e, sc); err != nil {
				return err
			}
		}
	}
	return nil
}

// errLabel returns the name a scenario's errors carry: the file base
// name when loaded from disk, the Parse label otherwise, the
// scenario's own name as a last resort.
func (sc *Scenario) errLabel() string {
	if sc.File != "" {
		return filepath.Base(sc.File)
	}
	if sc.src != "" {
		return sc.src
	}
	return sc.Name
}

// Parse decodes and validates one scenario document. name labels
// errors (use the file name); every error it returns carries that
// label and, where one exists, the JSON field path of the offending
// value.
func Parse(data []byte, name string) (*Scenario, error) {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %s: %s", name, fmt.Sprintf(format, args...))
	}
	var raw any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fail("%v", err)
	}
	obj, ok := raw.(map[string]any)
	if !ok {
		return nil, fail("top level must be a JSON object")
	}
	if err := checkFields("", obj, rootSchema); err != nil {
		return nil, fail("%v", err)
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		if ute, isType := err.(*json.UnmarshalTypeError); isType {
			return nil, fail("%s: cannot decode %s (want %s)", ute.Field, ute.Value, ute.Type)
		}
		return nil, fail("%v", err)
	}
	sc.src = name
	if err := sc.Validate(); err != nil {
		return nil, fail("%v", err)
	}
	return &sc, nil
}

// LoadFile loads and validates one scenario file.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %v", filepath.Base(path), err)
	}
	sc, err := Parse(data, filepath.Base(path))
	if err != nil {
		return nil, err
	}
	sc.File = path
	return sc, nil
}

// LoadDir loads every *.json file of a directory (non-recursive), in
// file-name order — the corpus sweep.
func LoadDir(dir string) ([]*Scenario, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	var scs []*Scenario
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		sc, err := LoadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		scs = append(scs, sc)
	}
	if len(scs) == 0 {
		return nil, fmt.Errorf("scenario: no *.json scenarios in %s", dir)
	}
	return scs, nil
}

// LoadPath loads a scenario file, or sweeps a scenario directory.
func LoadPath(path string) ([]*Scenario, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	if info.IsDir() {
		return LoadDir(path)
	}
	sc, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	return []*Scenario{sc}, nil
}
