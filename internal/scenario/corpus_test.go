package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the scenarios/golden/ files from this run")

// TestCorpus runs every committed scenario under scenarios/ at its
// declared (quick) scale and pins the full report rendering against
// scenarios/golden/<name>.golden. Each scenario also runs twice from
// a fresh parse — emission must be byte-identical — so the corpus
// doubles as the determinism suite. Regenerate goldens with
//
//	go test ./internal/scenario/ -run TestCorpus -update
func TestCorpus(t *testing.T) {
	dir, err := DefaultCorpusDir()
	if err != nil {
		t.Fatal(err)
	}
	scs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 6 {
		t.Fatalf("corpus holds %d scenarios, want at least 6", len(scs))
	}
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			got := res.String()

			// Determinism: a fresh parse of the same file must emit
			// byte-identical text.
			again, err := LoadFile(sc.File)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := again.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got2 := res2.String(); got2 != got {
				t.Fatalf("second run differs from first:\n--- first ---\n%s\n--- second ---\n%s", got, got2)
			}

			base := strings.TrimSuffix(filepath.Base(sc.File), ".json")
			golden := filepath.Join(dir, "golden", base+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if got != string(want) {
				t.Errorf("report drifted from %s (run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
					golden, got, want)
			}
		})
	}
}
