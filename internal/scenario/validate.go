package scenario

import (
	"fmt"
	"math"
	"time"
)

// Validation: every rule failure is an error whose message begins
// with the JSON field path of the offending value ("fleet.groups[0]
// .kind: ..."), so a scenario author can fix a file from the error
// alone. Parse wraps these with the file name. Cut names are the one
// thing validated later — they need the workload network, so Compile
// resolves and checks them.

func pathErr(path, format string, args ...any) error {
	return fmt.Errorf("%s: %s", path, fmt.Sprintf(format, args...))
}

func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 1) && !math.IsNaN(v)
}

func finiteNonNegative(v float64) bool {
	return v >= 0 && !math.IsInf(v, 1) && !math.IsNaN(v)
}

// knownKinds, knownRoutings, knownPolicies and knownSchedulers are
// the accepted enum spellings; the compile helpers map them onto the
// typed constants.
const (
	knownKinds      = "cpu, gpu or vpu"
	knownRoutings   = "throughput-weighted, static-split, round-robin, work-stealing or latency-ewma"
	knownPolicies   = "shed-newest, shed-oldest or block"
	knownSchedulers = "fifo, weighted-fair or priority"
	knownFaults     = "hang, link-drop, transient, slowdown or batch-oom"
	knownProcesses  = "deterministic, poisson, bursty, trace or phased"
)

func validKind(k string) bool {
	return k == "cpu" || k == "gpu" || k == "vpu"
}

func validRouting(r string) bool {
	switch r {
	case "", "throughput-weighted", "static-split", "round-robin", "work-stealing", "latency-ewma":
		return true
	}
	return false
}

func validPolicy(p string) bool {
	return p == "" || p == "shed-newest" || p == "shed-oldest" || p == "block"
}

func validScheduler(s string) bool {
	return s == "" || s == "fifo" || s == "fair" || s == "weighted-fair" || s == "priority"
}

func validFaultKind(k string) bool {
	switch k {
	case "hang", "link-drop", "transient", "slowdown", "batch-oom":
		return true
	}
	return false
}

// Validate checks every semantic rule a scenario must satisfy before
// compilation; the returned error names the offending field path.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return pathErr("name", "required (a scenario must name itself)")
	}
	if sc.Images < 0 {
		return pathErr("images", "negative image count %d", sc.Images)
	}
	switch sc.Network {
	case "", "auto", "googlenet", "micro":
	default:
		return pathErr("network", "unknown network %q (want auto, googlenet or micro)", sc.Network)
	}
	if d := sc.Dataset; d != nil {
		if d.Images < 0 || d.Classes < 0 || d.Subsets < 0 || d.Size < 0 {
			return pathErr("dataset", "negative dataset parameter")
		}
	}
	if err := sc.validateFleet(); err != nil {
		return err
	}
	if err := sc.validateTraffic(); err != nil {
		return err
	}
	if sc.SLO < 0 {
		return pathErr("slo", "negative deadline %v", sc.SLO.Std())
	}
	if err := sc.validateKnobs(); err != nil {
		return err
	}
	if err := sc.validateFaults(); err != nil {
		return err
	}
	if err := sc.validateReloads(); err != nil {
		return err
	}
	return nil
}

func (sc *Scenario) validateFleet() error {
	f := &sc.Fleet
	if len(f.Groups) == 0 && len(f.Stages) == 0 {
		return pathErr("fleet", "needs groups or stages")
	}
	if len(f.Groups) > 0 && len(f.Stages) > 0 {
		return pathErr("fleet", "groups and stages are mutually exclusive")
	}
	for i, g := range f.Groups {
		if err := validateGroup(fmt.Sprintf("fleet.groups[%d]", i), g); err != nil {
			return err
		}
	}
	for i, s := range f.Stages {
		p := fmt.Sprintf("fleet.stages[%d]", i)
		if err := validateGroup(p, s.GroupSpec); err != nil {
			return err
		}
		if s.Replicas < 0 {
			return pathErr(p+".replicas", "negative replica count %d", s.Replicas)
		}
		if s.Queue < 0 {
			return pathErr(p+".queue", "negative queue bound %d", s.Queue)
		}
	}
	if len(f.Cuts) > 0 && len(f.Stages) == 0 {
		return pathErr("fleet.cuts", "cuts need stages")
	}
	if len(f.Stages) > 0 && len(f.Cuts) != len(f.Stages)-1 {
		return pathErr("fleet.cuts", "%d cuts for %d stages (need stages-1)", len(f.Cuts), len(f.Stages))
	}
	if !validRouting(f.Routing) {
		return pathErr("fleet.routing", "unknown routing %q (want %s)", f.Routing, knownRoutings)
	}
	if f.QueueDepth < 0 {
		return pathErr("fleet.queue_depth", "negative queue depth %d", f.QueueDepth)
	}
	return nil
}

func validateGroup(path string, g GroupSpec) error {
	if !validKind(g.Kind) {
		return pathErr(path+".kind", "unknown device kind %q (want %s)", g.Kind, knownKinds)
	}
	if g.Batch < 0 {
		return pathErr(path+".batch", "negative batch size %d", g.Batch)
	}
	if g.Devices < 0 {
		return pathErr(path+".devices", "negative device count %d", g.Devices)
	}
	if !finiteNonNegative(g.Weight) {
		return pathErr(path+".weight", "weight %g (need finite >= 0)", g.Weight)
	}
	return nil
}

func (sc *Scenario) validateTraffic() error {
	t := sc.Traffic
	if t == nil {
		return nil
	}
	if t.Arrivals != nil && t.Tenants != nil {
		return pathErr("traffic", "arrivals and tenants are mutually exclusive (tenant lanes carry their own arrival processes)")
	}
	if t.ArrivalLabel != "" && t.Arrivals == nil {
		return pathErr("traffic.arrival_label", "needs traffic.arrivals")
	}
	if t.Arrivals != nil {
		if err := validateArrival("traffic.arrivals", t.Arrivals, false); err != nil {
			return err
		}
	}
	if ts := t.Tenants; ts != nil {
		if !validScheduler(ts.Scheduler) {
			return pathErr("traffic.tenants.scheduler", "unknown scheduler %q (want %s)", ts.Scheduler, knownSchedulers)
		}
		if ts.SharedDepth < 0 {
			return pathErr("traffic.tenants.shared_depth", "negative depth %d", ts.SharedDepth)
		}
		if !validPolicy(ts.SharedOverload) {
			return pathErr("traffic.tenants.shared_overload", "unknown overload policy %q (want %s)", ts.SharedOverload, knownPolicies)
		}
		if len(ts.Tenants) == 0 {
			return pathErr("traffic.tenants.tenants", "need at least one tenant")
		}
		for i, tn := range ts.Tenants {
			if err := validateTenant(fmt.Sprintf("traffic.tenants.tenants[%d]", i), tn); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateTenant(path string, t TenantSpec) error {
	if t.ID == "" {
		return pathErr(path+".id", "required")
	}
	if !finiteNonNegative(t.Weight) {
		return pathErr(path+".weight", "weight %g (need finite >= 0)", t.Weight)
	}
	if t.SLO < 0 {
		return pathErr(path+".slo", "negative deadline %v", t.SLO.Std())
	}
	if t.Arrivals == nil {
		return pathErr(path+".arrivals", "required (every tenant drives its own traffic)")
	}
	if err := validateArrival(path+".arrivals", t.Arrivals, false); err != nil {
		return err
	}
	if t.QueueDepth < 0 {
		return pathErr(path+".queue_depth", "negative depth %d", t.QueueDepth)
	}
	if !validPolicy(t.Overload) {
		return pathErr(path+".overload", "unknown overload policy %q (want %s)", t.Overload, knownPolicies)
	}
	if t.MaxInFlight < 0 {
		return pathErr(path+".max_in_flight", "negative quota %d", t.MaxInFlight)
	}
	if !finiteNonNegative(t.RatePerSec) {
		return pathErr(path+".rate_per_sec", "rate quota %g (need finite >= 0)", t.RatePerSec)
	}
	if t.Burst < 0 {
		return pathErr(path+".burst", "negative burst %d", t.Burst)
	}
	return nil
}

// validateArrival checks one arrival spec; the checks mirror the
// constructor preconditions in internal/core exactly, so a validated
// spec can never panic a constructor. nested marks a phase of a
// phased schedule, where "silence" is legal and "phased" is not.
func validateArrival(path string, a *ArrivalSpec, nested bool) error {
	switch a.Process {
	case "deterministic", "poisson":
		if !finitePositive(a.Rate) {
			return pathErr(path+".rate", "arrival rate %g (need positive finite)", a.Rate)
		}
	case "bursty":
		if !finitePositive(a.Rate) {
			return pathErr(path+".rate", "arrival rate %g (need positive finite)", a.Rate)
		}
		if a.On <= 0 {
			return pathErr(path+".on", "on-phase %v (need > 0)", a.On.Std())
		}
		if a.Off < 0 {
			return pathErr(path+".off", "negative off-phase %v", a.Off.Std())
		}
		if period := time.Duration(float64(time.Second) / a.Rate); a.On.Std() < period {
			return pathErr(path+".on", "on-phase %v holds no arrivals at %g/s (period %v)", a.On.Std(), a.Rate, period)
		}
	case "trace":
		if len(a.Instants) == 0 {
			return pathErr(path+".instants", "empty trace")
		}
		for i, ins := range a.Instants {
			if ins < 0 {
				return pathErr(fmt.Sprintf("%s.instants[%d]", path, i), "negative instant %v", ins.Std())
			}
		}
	case "phased":
		if nested {
			return pathErr(path+".process", "phased schedules cannot nest")
		}
		if len(a.Phases) == 0 {
			return pathErr(path+".phases", "need at least one phase")
		}
		silent := true
		for i, ph := range a.Phases {
			p := fmt.Sprintf("%s.phases[%d]", path, i)
			if ph.Duration <= 0 {
				return pathErr(p+".duration", "phase duration %v (need > 0)", ph.Duration.Std())
			}
			if ph.Process != "silence" {
				silent = false
			}
			if err := validateArrival(p, &ph.ArrivalSpec, true); err != nil {
				return err
			}
		}
		if silent {
			return pathErr(path+".phases", "every phase silent")
		}
	case "silence":
		if !nested {
			return pathErr(path+".process", "silence is only meaningful as a phase of a phased schedule")
		}
	default:
		return pathErr(path+".process", "unknown arrival process %q (want %s)", a.Process, knownProcesses)
	}
	if a.Cycle && a.Process != "phased" {
		return pathErr(path+".cycle", "only meaningful with a phased process")
	}
	if a.Delay < 0 {
		return pathErr(path+".delay", "negative delay %v", a.Delay.Std())
	}
	return nil
}

func (sc *Scenario) validateKnobs() error {
	if ad := sc.Admission; ad != nil {
		if ad.Depth < 1 {
			return pathErr("admission.depth", "depth %d (need >= 1)", ad.Depth)
		}
		if !validPolicy(ad.Policy) {
			return pathErr("admission.policy", "unknown overload policy %q (want %s)", ad.Policy, knownPolicies)
		}
		if ad.MinDepth < 0 {
			return pathErr("admission.min_depth", "negative floor %d", ad.MinDepth)
		}
		if sc.Traffic == nil || sc.Traffic.Arrivals == nil {
			return pathErr("admission", "needs traffic.arrivals (a bounded ingress is only meaningful against offered load)")
		}
	}
	if h := sc.Hedge; h != nil {
		if h.Trigger < 0 {
			return pathErr("hedge.trigger", "negative trigger %v", h.Trigger.Std())
		}
		if h.Quantile < 0 || h.Quantile >= 1 {
			return pathErr("hedge.quantile", "quantile %g (need 0 <= q < 1)", h.Quantile)
		}
		if h.Trigger == 0 && h.Quantile == 0 {
			return pathErr("hedge", "needs a trigger or a quantile")
		}
		if h.MinSamples < 0 {
			return pathErr("hedge.min_samples", "negative warmup %d", h.MinSamples)
		}
		if !finiteNonNegative(h.Budget) {
			return pathErr("hedge.budget", "budget %g (need finite >= 0)", h.Budget)
		}
		if h.Dynamic && h.Budget == 0 {
			return pathErr("hedge.dynamic", "needs a positive budget")
		}
	}
	if b := sc.Batching; b != nil {
		if b.MaxWait < 0 {
			return pathErr("batching.max_wait", "negative wait %v", b.MaxWait.Std())
		}
	}
	if r := sc.Recovery; r != nil {
		if r.Timeout <= 0 {
			return pathErr("recovery.timeout", "heartbeat %v (need > 0)", r.Timeout.Std())
		}
		if r.MaxAttempts < 0 {
			return pathErr("recovery.max_attempts", "negative budget %d", r.MaxAttempts)
		}
	}
	return nil
}

func (sc *Scenario) validateFaults() error {
	f := sc.Faults
	if f == nil {
		return nil
	}
	for i, e := range f.Events {
		p := fmt.Sprintf("faults.events[%d]", i)
		if e.Device == "" {
			return pathErr(p+".device", "required")
		}
		if !validFaultKind(e.Kind) {
			return pathErr(p+".kind", "unknown fault kind %q (want %s)", e.Kind, knownFaults)
		}
		if e.At < 0 {
			return pathErr(p+".at", "negative instant %v", e.At.Std())
		}
		if e.Kind == "slowdown" {
			if e.Factor <= 1 || math.IsInf(e.Factor, 1) || math.IsNaN(e.Factor) {
				return pathErr(p+".factor", "slowdown factor %g (need finite > 1)", e.Factor)
			}
			if e.Duration <= 0 {
				return pathErr(p+".duration", "slowdown window %v (need > 0)", e.Duration.Std())
			}
		}
		if e.Count < 0 {
			return pathErr(p+".count", "negative count %d", e.Count)
		}
	}
	for i, pr := range f.Processes {
		p := fmt.Sprintf("faults.processes[%d]", i)
		if len(pr.Devices) == 0 {
			return pathErr(p+".devices", "required")
		}
		if len(pr.Kinds) == 0 {
			return pathErr(p+".kinds", "required")
		}
		for j, k := range pr.Kinds {
			if !validFaultKind(k) {
				return pathErr(fmt.Sprintf("%s.kinds[%d]", p, j), "unknown fault kind %q (want %s)", k, knownFaults)
			}
		}
		if !finitePositive(pr.Rate) {
			return pathErr(p+".rate", "fault rate %g (need positive finite)", pr.Rate)
		}
		if pr.Start < 0 {
			return pathErr(p+".start", "negative instant %v", pr.Start.Std())
		}
		if pr.End <= pr.Start {
			return pathErr(p+".end", "window end %v at or before start %v", pr.End.Std(), pr.Start.Std())
		}
		if pr.Factor != 0 && (pr.Factor <= 1 || math.IsInf(pr.Factor, 1) || math.IsNaN(pr.Factor)) {
			return pathErr(p+".factor", "slowdown factor %g (need finite > 1)", pr.Factor)
		}
		if pr.Window < 0 {
			return pathErr(p+".window", "negative window %v", pr.Window.Std())
		}
	}
	return nil
}

func (sc *Scenario) validateReloads() error {
	for i, rl := range sc.Reloads {
		p := fmt.Sprintf("reloads[%d]", i)
		if rl.At < 0 {
			return pathErr(p+".at", "negative instant %v", rl.At.Std())
		}
		if rl.SLO == nil && rl.HedgeBudget == nil && rl.AdmissionDepth == nil {
			return pathErr(p, "reload sets no knob (want slo, hedge_budget or admission_depth)")
		}
		if rl.SLO != nil && *rl.SLO < 0 {
			return pathErr(p+".slo", "negative deadline %v", rl.SLO.Std())
		}
		if rl.HedgeBudget != nil {
			if !finiteNonNegative(*rl.HedgeBudget) {
				return pathErr(p+".hedge_budget", "budget %g (need finite >= 0)", *rl.HedgeBudget)
			}
			if sc.Hedge == nil {
				return pathErr(p+".hedge_budget", "needs a hedge section (hedging cannot be turned on mid-run)")
			}
		}
		if rl.AdmissionDepth != nil {
			if *rl.AdmissionDepth < 1 {
				return pathErr(p+".admission_depth", "depth %d (need >= 1)", *rl.AdmissionDepth)
			}
			if sc.Admission == nil {
				return pathErr(p+".admission_depth", "needs an admission section (admission cannot be turned on mid-run, only resized)")
			}
		}
	}
	return nil
}
