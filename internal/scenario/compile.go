package scenario

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/imagenet"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/tenant"
)

// Compilation: a validated scenario lowers onto pipeline.Config — the
// same struct the hand-wired benches and options build — so a
// scenario session is indistinguishable from a hand-coded one. The
// one piece of late validation lives here: named cuts are resolved
// against the workload network's layer list, which only exists once
// the network kind is known.

func compileKind(k string) pipeline.GroupKind {
	switch k {
	case "cpu":
		return pipeline.GroupCPU
	case "gpu":
		return pipeline.GroupGPU
	}
	return pipeline.GroupVPU
}

func compileRouting(r string) core.Routing {
	switch r {
	case "static-split":
		return core.RouteStatic
	case "round-robin":
		return core.RouteRoundRobin
	case "work-stealing":
		return core.RouteWorkStealing
	case "latency-ewma":
		return core.RouteLatency
	}
	return core.RouteWeighted
}

func compilePolicy(p string) core.OverloadPolicy {
	switch p {
	case "shed-oldest":
		return core.ShedOldest
	case "block":
		return core.Block
	}
	return core.ShedNewest
}

func compileScheduler(s string) tenant.Scheduler {
	switch s {
	case "fair", "weighted-fair":
		return tenant.WeightedFair
	case "priority":
		return tenant.Priority
	}
	return tenant.FIFO
}

func compileFaultKind(k string) fault.Kind {
	switch k {
	case "hang":
		return fault.StickHang
	case "link-drop":
		return fault.LinkDrop
	case "transient":
		return fault.TransientError
	case "slowdown":
		return fault.Slowdown
	}
	return fault.BatchOOM
}

func compileGroup(g GroupSpec) pipeline.Group {
	return pipeline.Group{
		Kind:      compileKind(g.Kind),
		Batch:     g.Batch,
		Devices:   g.Devices,
		Weight:    g.Weight,
		SeedLabel: g.SeedLabel,
	}
}

// compileArrivals lowers a validated arrival spec onto the core
// constructors. Validation mirrored every constructor precondition,
// so this can never panic.
func compileArrivals(a *ArrivalSpec) core.Arrivals {
	var arr core.Arrivals
	switch a.Process {
	case "deterministic":
		arr = core.DeterministicArrivals(a.Rate)
	case "poisson":
		arr = core.PoissonArrivals(a.Rate)
	case "bursty":
		arr = core.BurstyArrivals(a.Rate, a.On.Std(), a.Off.Std())
	case "trace":
		instants := make([]time.Duration, len(a.Instants))
		for i, ins := range a.Instants {
			instants[i] = ins.Std()
		}
		arr = core.TraceArrivals(instants)
	case "phased":
		phases := make([]core.Phase, len(a.Phases))
		for i := range a.Phases {
			ph := &a.Phases[i]
			var inner core.Arrivals
			if ph.Process != "silence" {
				inner = compileArrivals(&ph.ArrivalSpec)
			}
			phases[i] = core.Phase{Arrivals: inner, Duration: ph.Duration.Std()}
		}
		arr = core.PhasedArrivals(phases, a.Cycle)
	}
	if a.Delay > 0 {
		arr = core.DelayedArrivals(arr, a.Delay.Std())
	}
	return arr
}

// structureGraph builds a throwaway copy of the workload network for
// cut-name resolution. Only the topology matters — layer names and
// valid cut points are independent of the weights — so the seed is
// arbitrary and the session still constructs its own network exactly
// as a hand-coded config would.
func structureGraph(network string) *nn.Graph {
	if network == "micro" {
		return nn.NewMicroGoogLeNet(nn.DefaultMicroConfig(), rng.New(1))
	}
	return nn.NewGoogLeNet(rng.New(1))
}

// resolveCuts maps declared cuts (layer names or indices) onto
// whole-network cut indices, checking each against the network's
// legal cut points.
func resolveCuts(cuts []Cut, network string) ([]int, error) {
	if len(cuts) == 0 {
		return nil, nil
	}
	g := structureGraph(network)
	names := g.LayerNames()
	valid := make(map[int]bool)
	for _, c := range g.ValidCuts() {
		valid[c] = true
	}
	out := make([]int, len(cuts))
	for i, c := range cuts {
		p := fmt.Sprintf("fleet.cuts[%d]", i)
		idx := c.Index
		if c.Name != "" {
			found := -1
			for j, n := range names {
				if n == c.Name {
					found = j
					break
				}
			}
			if found < 0 {
				return nil, pathErr(p, "no layer %q in %s (layers: %s ...)", c.Name, g.Name(), strings.Join(names[:4], ", "))
			}
			idx = found + 1 // cut after the named layer
		}
		if !valid[idx] && idx != 0 && idx != g.Len() {
			if c.Name != "" {
				return nil, pathErr(p, "no legal cut after layer %q (cut %d of %s)", c.Name, idx, g.Name())
			}
			return nil, pathErr(p, "no legal cut at %d (nn.Graph.ValidCuts enumerates the legal ones)", idx)
		}
		out[i] = idx
	}
	return out, nil
}

// Compile validates the scenario and lowers it onto a
// pipeline.Config ready for pipeline.NewFromConfig. Reloads are not
// part of the config — Run schedules them onto the built session.
func (sc *Scenario) Compile() (pipeline.Config, error) {
	fail := func(err error) (pipeline.Config, error) {
		return pipeline.Config{}, fmt.Errorf("scenario %s: %v", sc.errLabel(), err)
	}
	if err := sc.Validate(); err != nil {
		return fail(err)
	}
	cfg := pipeline.Config{
		Seed:    sc.Seed,
		NetSeed: sc.NetSeed,
		Images:  sc.Images,
		SLO:     sc.SLO.Std(),
	}
	switch sc.Network {
	case "googlenet":
		cfg.Network = pipeline.NetGoogLeNet
	case "micro":
		cfg.Network = pipeline.NetMicro
	}
	if d := sc.Dataset; d != nil {
		dc := imagenet.DefaultConfig()
		if d.Images > 0 {
			dc.Images = d.Images
		}
		if d.Classes > 0 {
			dc.Classes = d.Classes
		}
		if d.Subsets > 0 {
			dc.Subsets = d.Subsets
		}
		if d.Size > 0 {
			dc.Size = d.Size
		}
		if d.Seed != 0 {
			dc.Seed = d.Seed
		}
		cfg.Dataset = dc
	}
	for _, g := range sc.Fleet.Groups {
		cfg.Groups = append(cfg.Groups, compileGroup(g))
	}
	for _, s := range sc.Fleet.Stages {
		cfg.Stages = append(cfg.Stages, pipeline.Stage{
			Group:    compileGroup(s.GroupSpec),
			Queue:    s.Queue,
			Replicas: s.Replicas,
		})
	}
	cuts, err := resolveCuts(sc.Fleet.Cuts, sc.Network)
	if err != nil {
		return fail(err)
	}
	cfg.Cuts = cuts
	cfg.Routing = compileRouting(sc.Fleet.Routing)
	cfg.QueueDepth = sc.Fleet.QueueDepth
	if t := sc.Traffic; t != nil {
		if t.Arrivals != nil {
			cfg.Arrivals = compileArrivals(t.Arrivals)
			cfg.ArrivalLabel = t.ArrivalLabel
		}
		if ts := t.Tenants; ts != nil {
			tc := tenant.Config{
				Scheduler:      compileScheduler(ts.Scheduler),
				SharedDepth:    ts.SharedDepth,
				SharedOverload: compilePolicy(ts.SharedOverload),
			}
			for _, tn := range ts.Tenants {
				tc.Tenants = append(tc.Tenants, tenant.Tenant{
					ID:          tn.ID,
					Weight:      tn.Weight,
					Priority:    tn.Priority,
					SLO:         tn.SLO.Std(),
					Arrivals:    compileArrivals(tn.Arrivals),
					QueueDepth:  tn.QueueDepth,
					Overload:    compilePolicy(tn.Overload),
					MaxInFlight: tn.MaxInFlight,
					RatePerSec:  tn.RatePerSec,
					Burst:       tn.Burst,
				})
			}
			cfg.Tenants = tc
		}
	}
	if ad := sc.Admission; ad != nil {
		cfg.AdmissionDepth = ad.Depth
		cfg.AdmissionPolicy = compilePolicy(ad.Policy)
		cfg.AdmissionShrink = ad.Shrink
		cfg.AdmissionMinDepth = ad.MinDepth
	}
	if h := sc.Hedge; h != nil {
		cfg.Hedge = core.HedgeConfig{
			Trigger:       h.Trigger.Std(),
			Quantile:      h.Quantile,
			MinSamples:    h.MinSamples,
			Budget:        h.Budget,
			DynamicBudget: h.Dynamic,
		}
	}
	if b := sc.Batching; b != nil {
		cfg.BatchMaxWait = b.MaxWait.Std()
		cfg.AdaptiveBatch = b.Adaptive
	}
	if f := sc.Faults; f != nil {
		for _, e := range f.Events {
			cfg.Faults.Events = append(cfg.Faults.Events, fault.Event{
				Device:   e.Device,
				Kind:     compileFaultKind(e.Kind),
				At:       e.At.Std(),
				Duration: e.Duration.Std(),
				Factor:   e.Factor,
				Count:    e.Count,
			})
		}
		for _, pr := range f.Processes {
			kinds := make([]fault.Kind, len(pr.Kinds))
			for i, k := range pr.Kinds {
				kinds[i] = compileFaultKind(k)
			}
			cfg.Faults.Processes = append(cfg.Faults.Processes, fault.Process{
				Devices: pr.Devices,
				Kinds:   kinds,
				Rate:    pr.Rate,
				Start:   pr.Start.Std(),
				End:     pr.End.Std(),
				Factor:  pr.Factor,
				Window:  pr.Window.Std(),
			})
		}
	}
	if r := sc.Recovery; r != nil {
		rc := core.RecoveryConfig{
			Timeout:     r.Timeout.Std(),
			Recover:     true,
			MaxAttempts: r.MaxAttempts,
		}
		if r.Recover != nil {
			rc.Recover = *r.Recover
		}
		cfg.Recovery = rc
	}
	return cfg, nil
}
