package scenario

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/pipeline"
)

// Result is the outcome of one scenario run: the scenario and the
// session report it produced.
type Result struct {
	// Scenario is the scenario that ran.
	Scenario *Scenario
	// Report is the session's unified report.
	Report *pipeline.Report
}

// Run compiles the scenario, builds the session, schedules the
// declared reloads and runs to completion. Deterministic: the same
// scenario produces a bit-identical Result rendering on every run.
func (sc *Scenario) Run() (*Result, error) {
	name := sc.errLabel()
	cfg, err := sc.Compile()
	if err != nil {
		return nil, err
	}
	sess, err := pipeline.NewFromConfig(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %v", name, err)
	}
	for _, rl := range sc.Reloads {
		rl := rl
		sess.ScheduleReload(rl.At.Std(), func(s *pipeline.Session) error {
			if rl.SLO != nil {
				if err := s.ReloadSLO(rl.SLO.Std()); err != nil {
					return err
				}
			}
			if rl.HedgeBudget != nil {
				if err := s.ReloadHedgeBudget(*rl.HedgeBudget); err != nil {
					return err
				}
			}
			if rl.AdmissionDepth != nil {
				if err := s.ReloadAdmissionDepth(*rl.AdmissionDepth); err != nil {
					return err
				}
			}
			return nil
		})
	}
	rep, err := sess.Run()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %v", name, err)
	}
	if errs := sess.ReloadErrs(); len(errs) > 0 {
		return nil, fmt.Errorf("scenario %s: %v", name, errs[0])
	}
	return &Result{Scenario: sc, Report: rep}, nil
}

// String renders the result as the golden-pinned text: a scenario
// header followed by the session report. Deterministic.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== scenario %s ==\n", r.Scenario.Name)
	if r.Scenario.Description != "" {
		fmt.Fprintf(&b, "%s\n", r.Scenario.Description)
	}
	b.WriteString(r.Report.String())
	return b.String()
}

// Point is the JSON-friendly summary of one scenario run, mirroring
// the bench experiment point style (milliseconds, two decimals).
type Point struct {
	// Name and File identify the scenario.
	Name string `json:"name"`
	File string `json:"file,omitempty"`
	// Images is the number of completed inferences.
	Images int `json:"images"`
	// ThroughputIPS is the aggregate steady-state rate.
	ThroughputIPS float64 `json:"throughput_img_per_s"`
	// GoodputPct and ShedPct are the SLO and admission outcomes.
	GoodputPct float64 `json:"goodput_pct"`
	ShedPct    float64 `json:"shed_pct"`
	// P50MS, P95MS and P99MS summarize serving latency.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// FaultsInjected and Hedged count fault-plan and hedging events.
	FaultsInjected int `json:"faults_injected,omitempty"`
	Hedged         int `json:"hedged,omitempty"`
	// Tenants is the number of declared traffic classes.
	Tenants int `json:"tenants,omitempty"`
	// SimTimeMS is the total virtual time of the run.
	SimTimeMS float64 `json:"sim_time_ms"`
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func ms(d time.Duration) float64 { return round2(d.Seconds() * 1e3) }

// Point summarizes the result for machine consumption.
func (r *Result) Point() Point {
	rep := r.Report
	file := ""
	if r.Scenario.File != "" {
		file = filepath.Base(r.Scenario.File)
	}
	return Point{
		Name:           r.Scenario.Name,
		File:           file,
		Images:         rep.Images,
		ThroughputIPS:  round2(rep.Throughput),
		GoodputPct:     round2(rep.Goodput * 100),
		ShedPct:        round2(rep.ShedRate * 100),
		P50MS:          ms(rep.Latency.P50),
		P95MS:          ms(rep.Latency.P95),
		P99MS:          ms(rep.Latency.P99),
		FaultsInjected: rep.FaultsInjected,
		Hedged:         rep.Hedged,
		Tenants:        len(rep.Tenants),
		SimTimeMS:      ms(rep.SimTime),
	}
}

// DefaultCorpusDir locates the committed scenario corpus: it walks up
// from the working directory to the repository root (the directory
// holding go.mod) and returns its scenarios/ directory.
func DefaultCorpusDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", fmt.Errorf("scenario: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			corpus := filepath.Join(dir, "scenarios")
			if info, err := os.Stat(corpus); err == nil && info.IsDir() {
				return corpus, nil
			}
			return "", fmt.Errorf("scenario: no scenarios/ corpus under module root %s", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("scenario: no go.mod above working directory")
		}
		dir = parent
	}
}
