package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParse throws arbitrary bytes at the strict parser: whatever the
// input, Parse must never panic, and every rejection must name the
// file. When parsing succeeds, compilation of cut-free scenarios must
// not panic either (cut resolution builds a network per call, too
// slow for the fuzz loop).
func FuzzParse(f *testing.F) {
	seeds := []string{
		minimal,
		``,
		`{}`,
		`[]`,
		`null`,
		`{"name":`,
		`{"name":"t","fleet":{"groups":[{"kind":"cpu"}]}}`,
		`{"name":"t","fleet":{"groups":[{"kind":"tpu"}]}}`,
		`{"name":"t","images":"many","fleet":{"groups":[{"kind":"cpu"}]}}`,
		`{"name":"t","slo":"fortnight","fleet":{"groups":[{"kind":"cpu"}]}}`,
		`{"name":"t","slo":-250,"fleet":{"groups":[{"kind":"cpu"}]}}`,
		`{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},"floot":1}`,
		`{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
			"traffic":{"arrivals":{"process":"phased","cycle":true,"phases":[
				{"process":"silence","duration":"20s"},
				{"process":"poisson","rate":40,"duration":"30s"}]}}}`,
		`{"name":"t","fleet":{"groups":[{"kind":"vpu","devices":4}]},
			"traffic":{"arrivals":{"process":"poisson","rate":20,"delay":"10s"}},
			"slo":600,"admission":{"depth":24,"shrink":true},
			"faults":{"events":[{"device":"ncs0","kind":"hang","at":"15s"}]},
			"recovery":{"timeout":"2s"},
			"reloads":[{"at":"18s","admission_depth":12}]}`,
		`{"name":"t","fleet":{"groups":[{"kind":"cpu"}]},
			"traffic":{"tenants":{"scheduler":"weighted-fair","tenants":[
				{"id":"a","weight":3,"arrivals":{"process":"poisson","rate":15}},
				{"id":"b","arrivals":{"process":"bursty","rate":60,"on":"5s","off":"10s"}}]}}}`,
		`{"name":"t","network":"googlenet","fleet":{
			"stages":[{"kind":"vpu","devices":2},{"kind":"gpu","batch":4}],
			"cuts":["inception_4e/output"]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	// The committed corpus files are the richest seeds of all.
	if dir, err := DefaultCorpusDir(); err == nil {
		if entries, err := os.ReadDir(dir); err == nil {
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
					continue
				}
				if data, err := os.ReadFile(filepath.Join(dir, e.Name())); err == nil {
					f.Add(data)
				}
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data, "fuzz.json")
		if err != nil {
			if !strings.Contains(err.Error(), "fuzz.json") {
				t.Fatalf("rejection does not name the file: %v", err)
			}
			return
		}
		if len(sc.Fleet.Cuts) == 0 {
			if _, err := sc.Compile(); err != nil {
				t.Fatalf("validated cut-free scenario failed to compile: %v", err)
			}
		}
	})
}
