package imagenet

import (
	"bytes"
	"fmt"

	"repro/internal/tensor"
)

// PPM codec (binary P6). The paper's NCSw decodes JPEGs with OpenCV
// and explicitly excludes decoding time from its measurements; the
// file-based source here uses PPM so the I/O path (read file → decode
// → CHW tensor → preprocess) is exercised end to end with a format
// implementable from scratch.

// EncodePPM renders a 3-channel CHW tensor with values in [0,255]
// into a binary PPM (P6) image.
func EncodePPM(img *tensor.T) ([]byte, error) {
	if img.Rank() != 3 || img.Dim(0) != 3 {
		return nil, fmt.Errorf("imagenet: EncodePPM wants (3,H,W), got %v", img.ShapeOf)
	}
	h, w := img.Dim(1), img.Dim(2)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "P6\n%d %d\n255\n", w, h)
	plane := h * w
	for i := 0; i < plane; i++ {
		for c := 0; c < 3; c++ {
			v := img.Data[c*plane+i]
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			buf.WriteByte(byte(v + 0.5)) // round to nearest
		}
	}
	return buf.Bytes(), nil
}

// DecodePPM parses a binary PPM (P6) image into a (3,H,W) tensor with
// values in [0,255].
func DecodePPM(data []byte) (*tensor.T, error) {
	r := bytes.NewReader(data)
	var magic string
	if _, err := fmt.Fscan(r, &magic); err != nil || magic != "P6" {
		return nil, fmt.Errorf("imagenet: not a P6 PPM")
	}
	w, err := readPPMInt(r)
	if err != nil {
		return nil, err
	}
	h, err := readPPMInt(r)
	if err != nil {
		return nil, err
	}
	maxv, err := readPPMInt(r)
	if err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 || w > 1<<14 || h > 1<<14 {
		return nil, fmt.Errorf("imagenet: implausible PPM size %dx%d", w, h)
	}
	if maxv != 255 {
		return nil, fmt.Errorf("imagenet: unsupported max value %d", maxv)
	}
	// Exactly one whitespace byte separates the header from pixels.
	if _, err := r.ReadByte(); err != nil {
		return nil, fmt.Errorf("imagenet: truncated PPM header")
	}
	plane := w * h
	need := 3 * plane
	pix := make([]byte, need)
	if n, _ := r.Read(pix); n != need {
		return nil, fmt.Errorf("imagenet: PPM pixel data truncated (%d of %d bytes)", n, need)
	}
	img := tensor.New(3, h, w)
	for i := 0; i < plane; i++ {
		for c := 0; c < 3; c++ {
			img.Data[c*plane+i] = float32(pix[i*3+c])
		}
	}
	return img, nil
}

// readPPMInt scans one whitespace-delimited integer, skipping PPM
// comments.
func readPPMInt(r *bytes.Reader) (int, error) {
	// Skip whitespace and comment lines.
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("imagenet: truncated PPM header")
		}
		switch {
		case b == '#':
			for {
				c, err := r.ReadByte()
				if err != nil {
					return 0, fmt.Errorf("imagenet: truncated PPM comment")
				}
				if c == '\n' {
					break
				}
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			// keep skipping
		default:
			if err := r.UnreadByte(); err != nil {
				return 0, err
			}
			var v int
			if _, err := fmt.Fscan(r, &v); err != nil {
				return 0, fmt.Errorf("imagenet: bad PPM integer: %w", err)
			}
			return v, nil
		}
	}
}

// Resize bilinearly resamples a CHW tensor to (c, newH, newW). It is
// the geometry-adaptation step a file-based source applies when image
// files do not match the network input (OpenCV's resize in NCSw).
func Resize(img *tensor.T, newH, newW int) *tensor.T {
	if img.Rank() != 3 {
		panic(fmt.Sprintf("imagenet: Resize wants CHW, got %v", img.ShapeOf))
	}
	if newH <= 0 || newW <= 0 {
		panic(fmt.Sprintf("imagenet: Resize to %dx%d", newH, newW))
	}
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	if h == newH && w == newW {
		return img.Clone()
	}
	out := tensor.New(c, newH, newW)
	scaleY := float64(h) / float64(newH)
	scaleX := float64(w) / float64(newW)
	for ch := 0; ch < c; ch++ {
		src := img.Data[ch*h*w:]
		dst := out.Data[ch*newH*newW:]
		for y := 0; y < newH; y++ {
			fy := (float64(y)+0.5)*scaleY - 0.5
			y0 := int(fy)
			if fy < 0 {
				y0 = 0
				fy = 0
			}
			y1 := y0 + 1
			if y1 >= h {
				y1 = h - 1
			}
			wy := float32(fy - float64(y0))
			for x := 0; x < newW; x++ {
				fx := (float64(x)+0.5)*scaleX - 0.5
				x0 := int(fx)
				if fx < 0 {
					x0 = 0
					fx = 0
				}
				x1 := x0 + 1
				if x1 >= w {
					x1 = w - 1
				}
				wx := float32(fx - float64(x0))
				top := src[y0*w+x0]*(1-wx) + src[y0*w+x1]*wx
				bot := src[y1*w+x0]*(1-wx) + src[y1*w+x1]*wx
				dst[y*newW+x] = top*(1-wy) + bot*wy
			}
		}
	}
	return out
}
