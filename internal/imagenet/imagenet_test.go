package imagenet

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func smallConfig() Config {
	return Config{
		Classes: 10, Images: 200, Subsets: 5,
		Channels: 3, Size: 16, NoiseSigma: 40, Seed: 7,
	}
}

func mustDataset(t testing.TB, cfg Config) *Dataset {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Classes: 1, Images: 10, Subsets: 1, Channels: 3, Size: 8},
		{Classes: 2, Images: 0, Subsets: 1, Channels: 3, Size: 8},
		{Classes: 2, Images: 4, Subsets: 5, Channels: 3, Size: 8},
		{Classes: 2, Images: 4, Subsets: 0, Channels: 3, Size: 8},
		{Classes: 2, Images: 4, Subsets: 1, Channels: 0, Size: 8},
		{Classes: 2, Images: 4, Subsets: 1, Channels: 3, Size: 8, NoiseSigma: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a := mustDataset(t, smallConfig())
	b := mustDataset(t, smallConfig())
	for i := 0; i < 20; i++ {
		if a.Label(i) != b.Label(i) {
			t.Fatalf("labels diverge at %d", i)
		}
		ia, ib := a.Image(i), b.Image(i)
		for j := range ia.Data {
			if ia.Data[j] != ib.Data[j] {
				t.Fatalf("image %d diverges at pixel %d", i, j)
			}
		}
	}
	// Image access order must not matter.
	c := mustDataset(t, smallConfig())
	img5 := c.Image(5)
	img5again := mustDataset(t, smallConfig()).Image(5)
	_ = mustDataset(t, smallConfig()).Image(3)
	for j := range img5.Data {
		if img5.Data[j] != img5again.Data[j] {
			t.Fatal("image generation depends on access order")
		}
	}
}

func TestLabelsCoverClasses(t *testing.T) {
	d := mustDataset(t, smallConfig())
	counts := make([]int, d.Classes())
	for i := 0; i < d.Len(); i++ {
		l := d.Label(i)
		if l < 0 || l >= d.Classes() {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("class %d never appears in 200 images", c)
		}
	}
}

func TestPixelsInRange(t *testing.T) {
	cfg := smallConfig()
	cfg.NoiseSigma = 500 // extreme noise must still clamp
	d := mustDataset(t, cfg)
	img := d.Image(0)
	for _, v := range img.Data {
		if v < 0 || v > 255 {
			t.Fatalf("pixel %g out of [0,255]", v)
		}
	}
}

func TestZeroNoiseReproducesPrototype(t *testing.T) {
	cfg := smallConfig()
	cfg.NoiseSigma = 0
	d := mustDataset(t, cfg)
	i := 3
	img := d.Image(i)
	proto := d.Prototype(d.Label(i))
	for j := range img.Data {
		if img.Data[j] != proto.Data[j] {
			t.Fatal("zero-noise image differs from prototype")
		}
	}
}

func TestMeanAndPreprocess(t *testing.T) {
	d := mustDataset(t, smallConfig())
	mean := d.Mean()
	if len(mean) != 3 {
		t.Fatalf("mean has %d channels", len(mean))
	}
	for ch, m := range mean {
		// Uniform [0,256) prototypes: mean near 127.5.
		if m < 110 || m > 145 {
			t.Errorf("channel %d mean = %g, expected ~127.5", ch, m)
		}
	}
	img := d.Image(0)
	raw := img.Clone()
	d.Preprocess(img)
	plane := 16 * 16
	for ch := 0; ch < 3; ch++ {
		for j := 0; j < plane; j++ {
			want := raw.Data[ch*plane+j] - mean[ch]
			if img.Data[ch*plane+j] != want {
				t.Fatal("preprocess arithmetic wrong")
			}
		}
	}
	pre := d.Preprocessed(0)
	for j := range pre.Data {
		if pre.Data[j] != img.Data[j] {
			t.Fatal("Preprocessed != Image+Preprocess")
		}
	}
}

func TestPreprocessedPrototypes(t *testing.T) {
	d := mustDataset(t, smallConfig())
	pp := d.PreprocessedPrototypes()
	if len(pp) != d.Classes() {
		t.Fatalf("got %d prototypes", len(pp))
	}
	// Originals must stay untouched (raw pixel space).
	for _, v := range d.Prototype(0).Data {
		if v < 0 {
			t.Fatal("Prototype mutated by PreprocessedPrototypes")
		}
	}
	// Preprocessed ones are roughly zero-mean.
	var sum float64
	for _, v := range pp[0].Data {
		sum += float64(v)
	}
	if m := sum / float64(pp[0].Elems()); math.Abs(m) > 40 {
		t.Errorf("preprocessed prototype mean = %g, expected near 0", m)
	}
}

func TestSubsets(t *testing.T) {
	d := mustDataset(t, smallConfig())
	total := 0
	prevHi := 0
	for k := 0; k < 5; k++ {
		lo, hi := d.SubsetRange(k)
		if lo != prevHi {
			t.Errorf("subset %d starts at %d, want %d", k, lo, prevHi)
		}
		if d.SubsetSize(k) != hi-lo {
			t.Error("SubsetSize mismatch")
		}
		total += hi - lo
		prevHi = hi
	}
	if total != d.Len() {
		t.Errorf("subsets cover %d of %d images", total, d.Len())
	}
	if d.SubsetName(0) != "Set-1" || d.SubsetName(4) != "Set-5" {
		t.Error("subset naming")
	}
}

func TestSubsetRemainderGoesToLast(t *testing.T) {
	cfg := smallConfig()
	cfg.Images = 203 // 5 subsets of 40 + last gets 43
	d := mustDataset(t, cfg)
	if d.SubsetSize(0) != 40 || d.SubsetSize(4) != 43 {
		t.Errorf("sizes = %d, %d", d.SubsetSize(0), d.SubsetSize(4))
	}
}

func TestIndexPanics(t *testing.T) {
	d := mustDataset(t, smallConfig())
	for _, f := range []func(){
		func() { d.Image(-1) },
		func() { d.Image(200) },
		func() { d.Label(200) },
		func() { d.Prototype(10) },
		func() { d.SubsetRange(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFileName(t *testing.T) {
	d := mustDataset(t, smallConfig())
	if got := d.FileName(0); got != "ILSVRC2012_val_00000001" {
		t.Errorf("FileName(0) = %q", got)
	}
}

func TestSynsets(t *testing.T) {
	s := Synsets(100, rng.New(1))
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[string]bool{}
	for _, syn := range s {
		if !strings.HasPrefix(syn.WNID, "n") || len(syn.WNID) != 9 {
			t.Errorf("bad WNID %q", syn.WNID)
		}
		if seen[syn.WNID] {
			t.Errorf("duplicate WNID %q", syn.WNID)
		}
		seen[syn.WNID] = true
		if !strings.Contains(syn.Name, " ") {
			t.Errorf("gloss %q not two words", syn.Name)
		}
	}
	// Deterministic.
	s2 := Synsets(100, rng.New(1))
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("synsets not deterministic")
		}
	}
}

func TestAnnotationRoundTrip(t *testing.T) {
	d := mustDataset(t, smallConfig())
	a := d.Annotation(7)
	if a.Filename != d.FileName(7) {
		t.Error("filename mismatch")
	}
	if a.Size.Width != 16 || a.Size.Depth != 3 {
		t.Error("size record wrong")
	}
	bb := a.Objects[0].BndBox
	if bb.XMin < 0 || bb.XMax >= 16 || bb.XMin >= bb.XMax || bb.YMin >= bb.YMax {
		t.Errorf("degenerate bbox %+v", bb)
	}
	data, err := MarshalAnnotation(a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<bndbox>") {
		t.Error("XML missing bndbox")
	}
	back, err := ParseAnnotation(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Objects[0].Name != a.Objects[0].Name || back.Objects[0].BndBox != bb {
		t.Error("round trip lost data")
	}
	// The paper's label-extraction path.
	label, err := d.LabelFromAnnotation(back)
	if err != nil {
		t.Fatal(err)
	}
	if label != d.Label(7) {
		t.Errorf("annotation label %d, dataset label %d", label, d.Label(7))
	}
}

func TestParseAnnotationErrors(t *testing.T) {
	if _, err := ParseAnnotation([]byte("not xml")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseAnnotation([]byte("<annotation></annotation>")); err == nil {
		t.Error("empty annotation accepted")
	}
	d := mustDataset(t, smallConfig())
	if _, err := d.LabelFromAnnotation(Annotation{Objects: []Object{{Name: "n99999999"}}}); err == nil {
		t.Error("unknown WNID accepted")
	}
	if _, err := d.LabelFromAnnotation(Annotation{}); err == nil {
		t.Error("no-object annotation accepted")
	}
}

func TestPPMRoundTrip(t *testing.T) {
	d := mustDataset(t, smallConfig())
	img := d.Image(0)
	data, err := EncodePPM(img)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "P6\n16 16\n255\n") {
		t.Errorf("header = %q", data[:20])
	}
	back, err := DecodePPM(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.ShapeOf.Equal(tensor.Shape{3, 16, 16}) {
		t.Fatalf("shape = %v", back.ShapeOf)
	}
	for i := range img.Data {
		if math.Abs(float64(img.Data[i]-back.Data[i])) > 0.5 {
			t.Fatalf("pixel %d: %g vs %g (8-bit quantization bound exceeded)", i, img.Data[i], back.Data[i])
		}
	}
}

func TestPPMComments(t *testing.T) {
	data := []byte("P6\n# a comment\n2 1\n# more\n255\n\x01\x02\x03\x04\x05\x06")
	img, err := DecodePPM(data)
	if err != nil {
		t.Fatal(err)
	}
	if img.Dim(2) != 2 || img.Dim(1) != 1 {
		t.Errorf("shape = %v", img.ShapeOf)
	}
	if img.At(0, 0, 1) != 4 { // second pixel R channel
		t.Errorf("pixel = %g", img.At(0, 0, 1))
	}
}

func TestPPMErrors(t *testing.T) {
	cases := [][]byte{
		[]byte("P5\n1 1\n255\n\x00"),         // wrong magic
		[]byte("P6\n1 1\n127\n\x00\x00\x00"), // unsupported maxval
		[]byte("P6\n1 1\n255\n\x00"),         // truncated pixels
		[]byte("P6\n0 1\n255\n"),             // zero width
		[]byte("P6\n99999 99999 \n255\n"),    // implausible size
		[]byte("P6\n1"),                      // truncated header
		{},                                   // empty
	}
	for i, c := range cases {
		if _, err := DecodePPM(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEncodePPMErrors(t *testing.T) {
	if _, err := EncodePPM(tensor.New(1, 4, 4)); err == nil {
		t.Error("single channel accepted")
	}
	if _, err := EncodePPM(tensor.New(12)); err == nil {
		t.Error("flat tensor accepted")
	}
}

func TestResizeIdentity(t *testing.T) {
	d := mustDataset(t, smallConfig())
	img := d.Image(0)
	same := Resize(img, 16, 16)
	for i := range img.Data {
		if same.Data[i] != img.Data[i] {
			t.Fatal("identity resize changed pixels")
		}
	}
	same.Data[0] = -1
	if img.Data[0] == -1 {
		t.Fatal("identity resize aliases input")
	}
}

func TestResizeConstantImage(t *testing.T) {
	img := tensor.New(3, 8, 8)
	img.Fill(42)
	out := Resize(img, 13, 5)
	if !out.ShapeOf.Equal(tensor.Shape{3, 13, 5}) {
		t.Fatalf("shape = %v", out.ShapeOf)
	}
	for _, v := range out.Data {
		if math.Abs(float64(v-42)) > 1e-4 {
			t.Fatalf("bilinear of constant image = %g", v)
		}
	}
}

func TestResizeGradientPreservesMonotonicity(t *testing.T) {
	img := tensor.New(1, 1, 8)
	for x := 0; x < 8; x++ {
		img.Data[x] = float32(x)
	}
	out := Resize(img, 1, 16)
	for x := 1; x < 16; x++ {
		if out.Data[x] < out.Data[x-1] {
			t.Fatalf("upscaled gradient not monotone at %d: %v", x, out.Data)
		}
	}
}

func TestResizePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Resize(tensor.New(4), 2, 2) },
		func() { Resize(tensor.New(1, 2, 2), 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: every generated image classifies pixels into [0,255] and
// the label matches the annotation-extracted label.
func TestQuickImageInvariants(t *testing.T) {
	d := mustDataset(t, smallConfig())
	f := func(raw uint16) bool {
		i := int(raw) % d.Len()
		img := d.Image(i)
		for _, v := range img.Data {
			if v < 0 || v > 255 {
				return false
			}
		}
		label, err := d.LabelFromAnnotation(d.Annotation(i))
		return err == nil && label == d.Label(i)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
