package imagenet

import (
	"encoding/xml"
	"fmt"
)

// Annotation is one record of the ILSVRC Validation Bounding Box
// Annotations, in the published XML schema. The paper estimates its
// miss-prediction rate "by extracting the labels from the Validation
// Bounding Box Annotations dataset"; the experiment harness does the
// same through ParseAnnotation rather than reading labels directly off
// the Dataset, so the full label-extraction path is exercised.
type Annotation struct {
	XMLName  xml.Name `xml:"annotation"`
	Folder   string   `xml:"folder"`
	Filename string   `xml:"filename"`
	Size     ImgSize  `xml:"size"`
	Objects  []Object `xml:"object"`
}

// ImgSize is the annotated image geometry.
type ImgSize struct {
	Width  int `xml:"width"`
	Height int `xml:"height"`
	Depth  int `xml:"depth"`
}

// Object is one annotated instance with its bounding box.
type Object struct {
	Name   string `xml:"name"` // the WNID — this is the ground-truth label
	BndBox BndBox `xml:"bndbox"`
}

// BndBox is a pixel-coordinate bounding box.
type BndBox struct {
	XMin int `xml:"xmin"`
	YMin int `xml:"ymin"`
	XMax int `xml:"xmax"`
	YMax int `xml:"ymax"`
}

// Annotation builds the bounding-box record for image i. The box is a
// deterministic pseudo-random crop covering most of the frame (the
// synthetic "object").
func (d *Dataset) Annotation(i int) Annotation {
	d.checkIndex(i)
	label := d.Label(i)
	src := d.root.Derive("bbox").DeriveIndex(i)
	// Margins up to a quarter of the frame on each side.
	quarter := d.cfg.Size / 4
	if quarter < 1 {
		quarter = 1
	}
	xmin := src.Intn(quarter)
	ymin := src.Intn(quarter)
	xmax := d.cfg.Size - 1 - src.Intn(quarter)
	ymax := d.cfg.Size - 1 - src.Intn(quarter)
	return Annotation{
		Folder:   "val",
		Filename: d.FileName(i),
		Size:     ImgSize{Width: d.cfg.Size, Height: d.cfg.Size, Depth: d.cfg.Channels},
		Objects: []Object{{
			Name:   d.synsets[label].WNID,
			BndBox: BndBox{XMin: xmin, YMin: ymin, XMax: xmax, YMax: ymax},
		}},
	}
}

// MarshalAnnotation renders the record as ILSVRC-style XML.
func MarshalAnnotation(a Annotation) ([]byte, error) {
	return xml.MarshalIndent(a, "", "\t")
}

// ParseAnnotation decodes an annotation XML document.
func ParseAnnotation(data []byte) (Annotation, error) {
	var a Annotation
	if err := xml.Unmarshal(data, &a); err != nil {
		return Annotation{}, fmt.Errorf("imagenet: bad annotation: %w", err)
	}
	if len(a.Objects) == 0 {
		return Annotation{}, fmt.Errorf("imagenet: annotation %q has no objects", a.Filename)
	}
	return a, nil
}

// LabelFromAnnotation resolves the annotation's WNID back to a class
// index against the dataset's synset table — the paper's §IV-B label
// extraction step. It returns an error for unknown WNIDs.
func (d *Dataset) LabelFromAnnotation(a Annotation) (int, error) {
	if len(a.Objects) == 0 {
		return 0, fmt.Errorf("imagenet: annotation %q has no objects", a.Filename)
	}
	wnid := a.Objects[0].Name
	for c, s := range d.synsets {
		if s.WNID == wnid {
			return c, nil
		}
	}
	return 0, fmt.Errorf("imagenet: unknown WNID %q", wnid)
}
