// Package imagenet provides the synthetic stand-in for the ILSVRC 2012
// Validation dataset the paper evaluates on (50 000 images, analysed
// as 5 subsets of 10 000, §IV-A), plus the surrounding assets: a
// WordNet-style synset table, bounding-box annotations in the ILSVRC
// XML format (the paper extracts ground-truth labels from the
// Validation Bounding Box Annotations), a PPM image codec for
// file-based sources, mean subtraction and bilinear resizing.
//
// The dataset is a noisy-prototype classification task (DESIGN.md §2):
// every class has a deterministic prototype image, and validation
// image i is its class prototype plus Gaussian pixel noise, clamped to
// [0, 255]. The noise level is calibrated so a nearest-prototype
// classifier in the MicroGoogLeNet feature space lands at the paper's
// ≈32% top-1 error; the FP16-vs-FP32 comparison of Fig. 7 then
// measures genuine arithmetic differences on an identical pipeline.
// Everything derives from named RNG streams: image i is identical
// across runs, machines and subset splits.
package imagenet

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Config parameterizes the synthetic dataset.
type Config struct {
	Classes int
	Images  int // total validation images
	Subsets int // evaluation splits ("Set-1" .. "Set-N")
	// Channels and Size give the raw image geometry (CHW).
	Channels, Size int
	// NoiseSigma is the Gaussian pixel noise in [0,255] units.
	// The default is calibrated against MicroGoogLeNet for ~32% top-1
	// error (see bench.CalibrateNoise and the fig7 experiment).
	NoiseSigma float64
	Seed       uint64
}

// DefaultConfig mirrors the paper's evaluation shape: 50 000 images in
// 5 subsets. Classes/geometry follow nn.DefaultMicroConfig; the noise
// level is the calibrated constant.
func DefaultConfig() Config {
	return Config{
		Classes:    100,
		Images:     50000,
		Subsets:    5,
		Channels:   3,
		Size:       32,
		NoiseSigma: CalibratedNoiseSigma,
		Seed:       2012,
	}
}

// CalibratedNoiseSigma is the pixel-noise level at which the reference
// pipeline (MicroGoogLeNet with weight seed 42, the calibrated
// classifier temperature, FP32) measures 32.02% top-1 error over the
// full 50 000-image validation set, matching Fig. 7a's averages
// (32.01% CPU, 31.92% VPU). Recalibrate with bench.CalibrateNoise
// (cmd/calib-noise) if the network or dataset geometry changes.
const CalibratedNoiseSigma = 19.48

func (c Config) validate() error {
	if c.Classes < 2 {
		return fmt.Errorf("imagenet: need >= 2 classes, got %d", c.Classes)
	}
	if c.Images < 1 {
		return fmt.Errorf("imagenet: need >= 1 image, got %d", c.Images)
	}
	if c.Subsets < 1 || c.Subsets > c.Images {
		return fmt.Errorf("imagenet: %d subsets for %d images", c.Subsets, c.Images)
	}
	if c.Channels < 1 || c.Size < 1 {
		return fmt.Errorf("imagenet: invalid geometry %dx%dx%d", c.Channels, c.Size, c.Size)
	}
	if c.NoiseSigma < 0 {
		return fmt.Errorf("imagenet: negative noise sigma")
	}
	return nil
}

// Dataset is the generated validation set. All accessors are
// deterministic functions of (Config, index); images are produced on
// demand rather than stored.
type Dataset struct {
	cfg     Config
	root    *rng.Source
	protos  []*tensor.T // raw pixel space prototypes, one per class
	mean    []float32   // per-channel mean of the prototypes ("training mean")
	synsets []Synset
}

// New generates the prototype table and channel means for cfg.
func New(cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Dataset{cfg: cfg, root: rng.New(cfg.Seed)}
	protoSrc := d.root.Derive("prototypes")
	d.protos = make([]*tensor.T, cfg.Classes)
	sums := make([]float64, cfg.Channels)
	for c := range d.protos {
		p := d.makePrototype(protoSrc.DeriveIndex(c))
		d.protos[c] = p
		for ch := 0; ch < cfg.Channels; ch++ {
			plane := p.Data[ch*cfg.Size*cfg.Size : (ch+1)*cfg.Size*cfg.Size]
			for _, v := range plane {
				sums[ch] += float64(v)
			}
		}
	}
	d.mean = make([]float32, cfg.Channels)
	per := float64(cfg.Classes * cfg.Size * cfg.Size)
	for ch := range d.mean {
		d.mean[ch] = float32(sums[ch] / per)
	}
	d.synsets = Synsets(cfg.Classes, d.root.Derive("synsets"))
	return d, nil
}

// protoGridSize is the low-resolution seed grid a prototype is
// upsampled from. Class identity must live in low spatial frequencies:
// real object classes differ in large-scale structure, and a signal
// that survives the network's pooling stages keeps the classification
// margin orders of magnitude above FP16 rounding noise — which is what
// makes the paper's Fig. 7 observation (negligible FP16 effect)
// reproducible. Per-pixel white-noise prototypes fail both ways: their
// margin collapses in global average pooling and FP16 rounding then
// dominates the decision.
const protoGridSize = 4

// makePrototype builds one class prototype: a random low-resolution
// grid per channel, bilinearly upsampled to the full image size.
func (d *Dataset) makePrototype(src *rng.Source) *tensor.T {
	grid := tensor.New(d.cfg.Channels, protoGridSize, protoGridSize)
	grid.FillUniform(src, 0, 256)
	p := Resize(grid, d.cfg.Size, d.cfg.Size)
	clampPixels(p.Data)
	return p
}

// Config returns the dataset configuration.
func (d *Dataset) Config() Config { return d.cfg }

// Len returns the number of validation images.
func (d *Dataset) Len() int { return d.cfg.Images }

// Classes returns the class count.
func (d *Dataset) Classes() int { return d.cfg.Classes }

// Synset returns the synset record for a class.
func (d *Dataset) Synset(class int) Synset { return d.synsets[class] }

// Label returns the ground-truth class of image i.
func (d *Dataset) Label(i int) int {
	d.checkIndex(i)
	return d.root.Derive("labels").DeriveIndex(i).Intn(d.cfg.Classes)
}

// Prototype returns the raw-pixel prototype of a class. The returned
// tensor is shared; callers must not modify it.
func (d *Dataset) Prototype(class int) *tensor.T {
	if class < 0 || class >= d.cfg.Classes {
		panic(fmt.Sprintf("imagenet: class %d out of range", class))
	}
	return d.protos[class]
}

// Image generates validation image i in raw pixel space ([0,255] CHW):
// its class prototype plus clamped Gaussian noise.
func (d *Dataset) Image(i int) *tensor.T {
	d.checkIndex(i)
	label := d.Label(i)
	img := d.protos[label].Clone()
	noise := d.root.Derive("noise").DeriveIndex(i)
	sigma := float32(d.cfg.NoiseSigma)
	for j := range img.Data {
		img.Data[j] += sigma * noise.NormFloat32()
	}
	clampPixels(img.Data)
	return img
}

// Mean returns the per-channel training means (the analogue of the
// ILSVRC 2012 training-set means the paper feeds Caffe).
func (d *Dataset) Mean() []float32 { return append([]float32(nil), d.mean...) }

// Preprocess subtracts the channel means in place, converting a raw
// image into network input space.
func (d *Dataset) Preprocess(img *tensor.T) {
	size := d.cfg.Size * d.cfg.Size
	for ch := 0; ch < d.cfg.Channels; ch++ {
		m := d.mean[ch]
		plane := img.Data[ch*size : (ch+1)*size]
		for j := range plane {
			plane[j] -= m
		}
	}
}

// Preprocessed returns image i ready for inference.
func (d *Dataset) Preprocessed(i int) *tensor.T {
	img := d.Image(i)
	d.Preprocess(img)
	return img
}

// PreprocessedPrototypes returns mean-subtracted copies of all class
// prototypes, the inputs nn.CalibrateClassifier consumes.
func (d *Dataset) PreprocessedPrototypes() []*tensor.T {
	out := make([]*tensor.T, len(d.protos))
	for c, p := range d.protos {
		img := p.Clone()
		d.Preprocess(img)
		out[c] = img
	}
	return out
}

// SubsetSize returns the image count of subset k (0-based); the last
// subset absorbs the remainder.
func (d *Dataset) SubsetSize(k int) int {
	lo, hi := d.SubsetRange(k)
	return hi - lo
}

// SubsetRange returns the [lo, hi) image index range of subset k.
func (d *Dataset) SubsetRange(k int) (int, int) {
	if k < 0 || k >= d.cfg.Subsets {
		panic(fmt.Sprintf("imagenet: subset %d out of range", k))
	}
	per := d.cfg.Images / d.cfg.Subsets
	lo := k * per
	hi := lo + per
	if k == d.cfg.Subsets-1 {
		hi = d.cfg.Images
	}
	return lo, hi
}

// SubsetName returns the paper's subset naming ("Set-1" ... "Set-5").
func (d *Dataset) SubsetName(k int) string { return fmt.Sprintf("Set-%d", k+1) }

// FileName returns the ILSVRC-style validation file stem for image i.
func (d *Dataset) FileName(i int) string {
	d.checkIndex(i)
	return fmt.Sprintf("ILSVRC2012_val_%08d", i+1)
}

func (d *Dataset) checkIndex(i int) {
	if i < 0 || i >= d.cfg.Images {
		panic(fmt.Sprintf("imagenet: image %d out of range [0,%d)", i, d.cfg.Images))
	}
}

func clampPixels(data []float32) {
	for i, v := range data {
		if v < 0 {
			data[i] = 0
		} else if v > 255 {
			data[i] = 255
		}
	}
}
