package imagenet

import (
	"fmt"

	"repro/internal/rng"
)

// Synset is one WordNet-style category record, as ImageNet publishes
// them: an n-prefixed WordNet ID plus a human-readable gloss.
type Synset struct {
	WNID string // e.g. "n02084071"
	Name string // e.g. "brindled crested dog"
}

// Word lists for deterministic gloss generation. The combinations are
// synthetic but shaped like ILSVRC-1000 glosses.
var (
	synsetAdjectives = []string{
		"brindled", "crested", "spotted", "lesser", "greater", "common",
		"striped", "dwarf", "giant", "northern", "southern", "horned",
		"ringed", "masked", "golden", "silver", "mottled", "banded",
		"tufted", "plumed", "speckled", "slender", "stout", "painted",
	}
	synsetNouns = []string{
		"dog", "cat", "shark", "terrier", "retriever", "warbler", "finch",
		"beetle", "crane", "kite", "lizard", "salamander", "monkey",
		"antelope", "fox", "owl", "heron", "tortoise", "viper", "whale",
		"ferry", "teapot", "abacus", "accordion", "balloon", "banjo",
		"barrel", "bassoon", "beacon", "bobsled", "buckle", "cannon",
	}
)

// Synsets generates n deterministic synset records. WNIDs are unique
// by construction; glosses combine the word lists and may repeat only
// after len(adjectives)*len(nouns) entries (768 > the default 100).
func Synsets(n int, src *rng.Source) []Synset {
	if n < 0 {
		panic(fmt.Sprintf("imagenet: %d synsets", n))
	}
	perm := src.Perm(len(synsetAdjectives) * len(synsetNouns))
	out := make([]Synset, n)
	for i := range out {
		combo := perm[i%len(perm)]
		adj := synsetAdjectives[combo%len(synsetAdjectives)]
		noun := synsetNouns[combo/len(synsetAdjectives)]
		out[i] = Synset{
			// Offset into a plausible WordNet-ID range; sequential and
			// collision-free.
			WNID: fmt.Sprintf("n%08d", 1000000+i*977),
			Name: adj + " " + noun,
		}
	}
	return out
}
