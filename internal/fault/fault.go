// Package fault is the deterministic fault-injection subsystem: it
// describes failure scenarios for the simulated hardware — stick
// firmware hangs, USB link drops, transient inference errors,
// straggler slowdowns — and drives them into the device models in
// virtual time, so every failure scenario is scripted or seeded and
// bit-for-bit reproducible.
//
// The paper's co-processor platform (and every NCSDK user's lived
// experience) involves flaky USB-attached hardware: internal/ncs
// already models the mvncStatus error surface (MVNC_GONE, MVNC_BUSY),
// and this package is what finally triggers it. The device models
// expose small injection hooks (ncs.Device, usb.Port, the devsim batch
// engines); a Plan names which faults hit which devices when; Apply
// expands the plan (scripted events plus seeded-stochastic processes)
// and runs a driver process that injects each fault at its instant.
// Detection and self-healing live one layer up, in internal/core
// (RecoveryConfig on the multi-VPU target, health-aware Pool routing).
package fault

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Kind identifies a fault class.
type Kind int

const (
	// StickHang freezes a device's firmware: queued inferences are
	// accepted but never complete until the host resets the device.
	StickHang Kind = iota
	// LinkDrop severs a device's USB link: the device goes away
	// (MVNC_GONE), in-flight work is lost, and every subsequent call
	// fails until the host re-enumerates and re-opens it.
	LinkDrop
	// TransientError makes the next inference(s) on a device complete
	// with an error (a recoverable Myriad runtime fault).
	TransientError
	// Slowdown stretches a device's service time ×Factor for a window —
	// the straggler fault (thermal trouble, a flaky link retrying).
	Slowdown
	// BatchOOM makes a batch engine's next Count submissions fail with
	// an OOM-style allocator error (cudaMalloc on a fragmented GPU,
	// the MKL arena on an overcommitted host). The consuming
	// core.BatchTarget splits the failed batch — the first half runs,
	// the failed half is re-enqueued — so items are delayed, never
	// lost, and no serving-side recovery is needed.
	BatchOOM
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case StickHang:
		return "hang"
	case LinkDrop:
		return "link-drop"
	case TransientError:
		return "transient"
	case Slowdown:
		return "slowdown"
	case BatchOOM:
		return "batch-oom"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Injection hooks. The device models implement these implicitly; a
// registry entry may carry several hook objects (an NCS stick and its
// USB port, say), and a fault is delivered to every hook supporting
// its kind.
type (
	// Hanger is implemented by devices that can freeze (ncs.Device).
	Hanger interface{ InjectHang() }
	// Dropper is implemented by devices whose link can sever
	// (ncs.Device).
	Dropper interface{ InjectLinkDrop() }
	// Erratic is implemented by devices that can fail single
	// inferences (ncs.Device).
	Erratic interface{ InjectTransientErrors(n int) }
	// Slower is implemented by anything whose service can be stretched
	// (ncs.Device, usb.Port, devsim.CPU, devsim.GPU).
	Slower interface {
		InjectSlowdown(factor float64)
		ClearSlowdown()
	}
	// OOMer is implemented by batch engines whose next submissions can
	// fail allocator-style (devsim.CPU, devsim.GPU) — the BatchOOM
	// hook.
	OOMer interface{ InjectBatchFailures(n int) }
)

// Event is one scripted fault.
type Event struct {
	// Device names the target (a registry key, e.g. "ncs0" or "cpu").
	Device string
	// Kind selects the fault class.
	Kind Kind
	// At is the virtual instant the fault fires.
	At time.Duration
	// Duration is the Slowdown window (required > 0 for Slowdown,
	// ignored otherwise).
	Duration time.Duration
	// Factor is the Slowdown service-time multiplier (required > 1 for
	// Slowdown, ignored otherwise).
	Factor float64
	// Count is how many inferences a TransientError fails, or how many
	// batch submissions a BatchOOM fails (default 1).
	Count int
}

// Process is a seeded-stochastic fault generator: faults arrive as a
// Poisson process at Rate over [Start, End), each hitting a uniformly
// drawn device with a uniformly drawn kind. Expansion happens up front
// from the plan seed, so two runs of the same plan inject the
// identical sequence.
type Process struct {
	// Devices are the candidate targets (registry keys).
	Devices []string
	// Kinds are the fault classes drawn from.
	Kinds []Kind
	// Rate is the mean fault arrival rate (faults/sec over the whole
	// device set).
	Rate float64
	// Start and End bound the active window; End > Start is required
	// (the expansion must be finite).
	Start, End time.Duration
	// Factor and Window parameterize drawn Slowdown faults
	// (defaults 4 and 2s).
	Factor float64
	// Window is the drawn Slowdown duration.
	Window time.Duration
}

// Plan is a full failure scenario: scripted events plus stochastic
// processes. The zero value is the empty plan (no faults).
type Plan struct {
	Events    []Event
	Processes []Process
}

// Empty reports whether the plan injects nothing.
func (pl Plan) Empty() bool { return len(pl.Events) == 0 && len(pl.Processes) == 0 }

// NeedsRecovery reports whether the plan can kill inferences outright
// (hang, link drop, transient error) — scenarios that need health
// monitoring on the serving side to terminate; a slowdown-only plan
// does not.
func (pl Plan) NeedsRecovery() bool {
	needs := func(k Kind) bool { return k == StickHang || k == LinkDrop || k == TransientError }
	for _, e := range pl.Events {
		if needs(e.Kind) {
			return true
		}
	}
	for _, p := range pl.Processes {
		for _, k := range p.Kinds {
			if needs(k) {
				return true
			}
		}
	}
	return false
}

// Validate checks the plan's own shape (device resolution happens in
// Apply, against the registry).
func (pl Plan) Validate() error {
	for i, e := range pl.Events {
		if e.Device == "" {
			return fmt.Errorf("fault: event %d has no device", i)
		}
		if e.At < 0 {
			return fmt.Errorf("fault: event %d at negative instant %v", i, e.At)
		}
		if e.Kind < StickHang || e.Kind > BatchOOM {
			return fmt.Errorf("fault: event %d has unknown kind %v", i, e.Kind)
		}
		if e.Kind == Slowdown && (e.Factor <= 1 || e.Duration <= 0) {
			return fmt.Errorf("fault: slowdown event %d needs factor > 1 and duration > 0 (got ×%g for %v)",
				i, e.Factor, e.Duration)
		}
		if e.Count < 0 {
			return fmt.Errorf("fault: event %d has negative count %d", i, e.Count)
		}
	}
	for i, p := range pl.Processes {
		if len(p.Devices) == 0 || len(p.Kinds) == 0 {
			return fmt.Errorf("fault: process %d needs devices and kinds", i)
		}
		if !(p.Rate > 0) || math.IsInf(p.Rate, 1) {
			return fmt.Errorf("fault: process %d rate must be positive and finite (got %g)", i, p.Rate)
		}
		if p.Start < 0 || p.End <= p.Start {
			return fmt.Errorf("fault: process %d window [%v, %v) is not a finite forward window", i, p.Start, p.End)
		}
		for _, k := range p.Kinds {
			if k < StickHang || k > BatchOOM {
				return fmt.Errorf("fault: process %d has unknown kind %v", i, k)
			}
		}
	}
	return nil
}

// Registry maps device names to their injection hooks. One name may
// carry several hook objects — register an NCS stick together with its
// USB port so a Slowdown degrades both the SHAVE clock and the link.
type Registry map[string][]any

// Add registers hooks under name (appending to any already present).
func (r Registry) Add(name string, hooks ...any) {
	r[name] = append(r[name], hooks...)
}

// supports reports whether any hook of the named device handles kind.
func (r Registry) supports(name string, kind Kind) bool {
	for _, h := range r[name] {
		switch kind {
		case StickHang:
			if _, ok := h.(Hanger); ok {
				return true
			}
		case LinkDrop:
			if _, ok := h.(Dropper); ok {
				return true
			}
		case TransientError:
			if _, ok := h.(Erratic); ok {
				return true
			}
		case Slowdown:
			if _, ok := h.(Slower); ok {
				return true
			}
		case BatchOOM:
			if _, ok := h.(OOMer); ok {
				return true
			}
		}
	}
	return false
}

// Injection is one applied fault — the log/trace record.
type Injection struct {
	Device string
	Kind   Kind
	At     time.Duration
	// Until is the slowdown window end (== At for point faults).
	Until time.Duration
	// Factor is the slowdown multiplier (0 for point faults).
	Factor float64
	// Count is the transient-error burst size (0 otherwise).
	Count int
}

// String renders one injection for logs.
func (in Injection) String() string {
	switch in.Kind {
	case Slowdown:
		return fmt.Sprintf("%v %s ×%g on %s until %v", in.At, in.Kind, in.Factor, in.Device, in.Until)
	case TransientError, BatchOOM:
		return fmt.Sprintf("%v %s ×%d on %s", in.At, in.Kind, in.Count, in.Device)
	}
	return fmt.Sprintf("%v %s on %s", in.At, in.Kind, in.Device)
}

// Log records every fault the driver injected, in injection order.
type Log struct {
	Injections []Injection
}

// Count returns the number of injected faults.
func (l *Log) Count() int {
	if l == nil {
		return 0
	}
	return len(l.Injections)
}

// Apply expands the plan — scripted events merged with the seeded
// expansion of every stochastic process, ordered by instant — and
// starts a driver process in env that injects each fault at its time.
// Every target must resolve in the registry with a hook supporting the
// fault's kind, so a typo'd device name fails fast instead of silently
// injecting nothing. observe (optional) sees each injection as it is
// applied — the hook timeline annotation hangs off. The returned Log
// fills in as the simulation runs.
func Apply(env *sim.Env, plan Plan, seed *rng.Source, reg Registry, observe func(Injection)) (*Log, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if seed == nil {
		seed = rng.New(1)
	}
	events := expand(plan, seed)
	for i, e := range events {
		if _, ok := reg[e.Device]; !ok {
			return nil, fmt.Errorf("fault: event %d targets unknown device %q (registry has %d devices)",
				i, e.Device, len(reg))
		}
		if !reg.supports(e.Device, e.Kind) {
			return nil, fmt.Errorf("fault: device %q has no hook for %v faults", e.Device, e.Kind)
		}
	}
	log := &Log{}
	if len(events) == 0 {
		return log, nil
	}
	// Note: the driver keeps the simulation alive until the plan's
	// last instant (including slowdown window ends) — the scenario is
	// part of the simulated universe, so a plan extending past the
	// workload extends SimTime and the idle-power integrals with it.
	// Keep plans inside the serving window when those aggregates
	// matter.
	slowGen := map[string]int{}
	env.Process("fault-driver", func(p *sim.Proc) {
		for _, e := range events {
			if e.At > p.Now() {
				p.Sleep(e.At - p.Now())
			}
			inj := inject(p, reg, e, slowGen)
			log.Injections = append(log.Injections, inj)
			if observe != nil {
				observe(inj)
			}
		}
	})
	return log, nil
}

// expand turns the plan into a time-ordered event list: scripted
// events plus the deterministic Poisson expansion of every stochastic
// process (each process draws from its own derived sub-stream, so
// adding a process never perturbs another's sequence).
func expand(plan Plan, seed *rng.Source) []Event {
	events := append([]Event(nil), plan.Events...)
	for pi, proc := range plan.Processes {
		r := seed.Derive(fmt.Sprintf("process/%d", pi))
		t := proc.Start
		for {
			gap := -math.Log(1-r.Float64()) / proc.Rate
			t += time.Duration(gap * float64(time.Second))
			if t >= proc.End {
				break
			}
			e := Event{
				Device:   proc.Devices[r.Intn(len(proc.Devices))],
				Kind:     proc.Kinds[r.Intn(len(proc.Kinds))],
				At:       t,
				Factor:   proc.Factor,
				Duration: proc.Window,
			}
			if e.Kind == Slowdown {
				if e.Factor <= 1 {
					e.Factor = 4
				}
				if e.Duration <= 0 {
					e.Duration = 2 * time.Second
				}
			}
			events = append(events, e)
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// inject delivers one fault to every supporting hook of its device.
// Slowdowns schedule their own clear at the window end; when windows
// on one device overlap, the newest injection wins (its factor
// applies and only its own end clears the device — an older window's
// clear must not cut a newer one short), tracked by a per-device
// generation counter.
func inject(p *sim.Proc, reg Registry, e Event, slowGen map[string]int) Injection {
	inj := Injection{Device: e.Device, Kind: e.Kind, At: p.Now(), Until: p.Now()}
	hooks := reg[e.Device]
	switch e.Kind {
	case StickHang:
		for _, h := range hooks {
			if hh, ok := h.(Hanger); ok {
				hh.InjectHang()
			}
		}
	case LinkDrop:
		for _, h := range hooks {
			if hh, ok := h.(Dropper); ok {
				hh.InjectLinkDrop()
			}
		}
	case TransientError:
		n := e.Count
		if n == 0 {
			n = 1
		}
		inj.Count = n
		for _, h := range hooks {
			if hh, ok := h.(Erratic); ok {
				hh.InjectTransientErrors(n)
			}
		}
	case BatchOOM:
		n := e.Count
		if n == 0 {
			n = 1
		}
		inj.Count = n
		for _, h := range hooks {
			if hh, ok := h.(OOMer); ok {
				hh.InjectBatchFailures(n)
			}
		}
	case Slowdown:
		inj.Factor = e.Factor
		inj.Until = p.Now() + e.Duration
		slowGen[e.Device]++
		gen := slowGen[e.Device]
		var slowed []Slower
		for _, h := range hooks {
			if hh, ok := h.(Slower); ok {
				hh.InjectSlowdown(e.Factor)
				slowed = append(slowed, hh)
			}
		}
		p.Env().After(e.Duration, func() {
			if slowGen[e.Device] != gen {
				return // a newer overlapping window owns the device now
			}
			for _, hh := range slowed {
				hh.ClearSlowdown()
			}
		})
	}
	return inj
}
