package fault

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// recorder implements every hook and records what hit it, with the
// virtual instant observed from the owning env.
type recorder struct {
	env    *sim.Env
	events []string
	at     []time.Duration
}

func (r *recorder) note(s string) { r.events = append(r.events, s); r.at = append(r.at, r.env.Now()) }

func (r *recorder) InjectHang()                   { r.note("hang") }
func (r *recorder) InjectLinkDrop()               { r.note("drop") }
func (r *recorder) InjectTransientErrors(n int)   { r.note("transient") }
func (r *recorder) InjectSlowdown(factor float64) { r.note("slow") }
func (r *recorder) ClearSlowdown()                { r.note("clear") }

func TestScriptedEventsFireInOrder(t *testing.T) {
	env := sim.NewEnv()
	rec := &recorder{env: env}
	reg := Registry{}
	reg.Add("dev0", rec)
	plan := Plan{Events: []Event{
		{Device: "dev0", Kind: Slowdown, At: 10 * time.Millisecond, Factor: 3, Duration: 20 * time.Millisecond},
		{Device: "dev0", Kind: StickHang, At: 50 * time.Millisecond},
		{Device: "dev0", Kind: TransientError, At: 5 * time.Millisecond, Count: 2},
	}}
	log, err := Apply(env, plan, rng.New(1), reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	env.Run()
	want := []string{"transient", "slow", "clear", "hang"}
	if !reflect.DeepEqual(rec.events, want) {
		t.Fatalf("hook order = %v, want %v", rec.events, want)
	}
	wantAt := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 30 * time.Millisecond, 50 * time.Millisecond}
	if !reflect.DeepEqual(rec.at, wantAt) {
		t.Fatalf("hook instants = %v, want %v", rec.at, wantAt)
	}
	if log.Count() != 3 {
		t.Errorf("log has %d injections, want 3", log.Count())
	}
}

func TestStochasticExpansionIsDeterministic(t *testing.T) {
	plan := Plan{Processes: []Process{{
		Devices: []string{"a", "b", "c"},
		Kinds:   []Kind{StickHang, LinkDrop, Slowdown},
		Rate:    5,
		Start:   time.Second,
		End:     5 * time.Second,
	}}}
	run := func() []Injection {
		env := sim.NewEnv()
		reg := Registry{}
		for _, name := range []string{"a", "b", "c"} {
			reg.Add(name, &recorder{env: env})
		}
		log, err := Apply(env, plan, rng.New(42), reg, nil)
		if err != nil {
			t.Fatal(err)
		}
		env.Run()
		return log.Injections
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("stochastic process injected nothing over a 4 s window at 5/s")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two runs of the same seeded plan differ:\n%v\nvs\n%v", first, second)
	}
	for _, in := range first {
		if in.At < time.Second || in.At >= 5*time.Second {
			t.Errorf("injection %v outside the process window", in)
		}
	}
}

func TestApplyRejectsBadPlans(t *testing.T) {
	env := sim.NewEnv()
	reg := Registry{}
	reg.Add("dev0", &recorder{env: env})
	cases := []Plan{
		{Events: []Event{{Device: "ghost", Kind: StickHang}}},                                   // unknown device
		{Events: []Event{{Device: "dev0", Kind: Slowdown, Factor: 0.5, Duration: time.Second}}}, // bad factor
		{Events: []Event{{Device: "dev0", Kind: StickHang, At: -time.Second}}},                  // negative instant
		{Processes: []Process{{Devices: []string{"dev0"}, Kinds: []Kind{StickHang}, Rate: -1, End: time.Second}}},
		{Processes: []Process{{Devices: []string{"dev0"}, Kinds: []Kind{StickHang}, Rate: 1}}}, // empty window
	}
	for i, plan := range cases {
		if _, err := Apply(env, plan, rng.New(1), reg, nil); err == nil {
			t.Errorf("case %d: bad plan accepted", i)
		}
	}
}

func TestApplyRejectsUnsupportedHook(t *testing.T) {
	env := sim.NewEnv()
	reg := Registry{}
	type slowOnly struct{ Slower }
	reg.Add("port0", slowOnly{})
	plan := Plan{Events: []Event{{Device: "port0", Kind: StickHang}}}
	if _, err := Apply(env, plan, rng.New(1), reg, nil); err == nil {
		t.Error("hang against a slowdown-only hook accepted")
	}
}

func TestNeedsRecovery(t *testing.T) {
	if (Plan{}).NeedsRecovery() {
		t.Error("empty plan needs recovery")
	}
	slow := Plan{Events: []Event{{Device: "d", Kind: Slowdown, Factor: 2, Duration: time.Second}}}
	if slow.NeedsRecovery() {
		t.Error("slowdown-only plan needs recovery")
	}
	hang := Plan{Events: []Event{{Device: "d", Kind: StickHang}}}
	if !hang.NeedsRecovery() {
		t.Error("hang plan does not need recovery")
	}
	proc := Plan{Processes: []Process{{Devices: []string{"d"}, Kinds: []Kind{LinkDrop}, Rate: 1, End: time.Second}}}
	if !proc.NeedsRecovery() {
		t.Error("link-drop process does not need recovery")
	}
}

// TestOverlappingSlowdownsNewestWins: when slowdown windows overlap
// on one device, the older window's scheduled clear must not cut the
// newer window short — the device clears only at the newest window's
// own end.
func TestOverlappingSlowdownsNewestWins(t *testing.T) {
	env := sim.NewEnv()
	rec := &recorder{env: env}
	reg := Registry{}
	reg.Add("d", rec)
	plan := Plan{Events: []Event{
		{Device: "d", Kind: Slowdown, At: 10 * time.Millisecond, Factor: 2, Duration: 20 * time.Millisecond},
		{Device: "d", Kind: Slowdown, At: 20 * time.Millisecond, Factor: 3, Duration: 20 * time.Millisecond},
	}}
	if _, err := Apply(env, plan, rng.New(1), reg, nil); err != nil {
		t.Fatal(err)
	}
	env.Run()
	want := []string{"slow", "slow", "clear"}
	if !reflect.DeepEqual(rec.events, want) {
		t.Fatalf("hook order = %v, want %v (old window's clear must be suppressed)", rec.events, want)
	}
	if last := rec.at[len(rec.at)-1]; last != 40*time.Millisecond {
		t.Fatalf("cleared at %v, want 40ms (the newer window's end)", last)
	}
}
