package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	// Path is the import path.
	Path string
	// Fset is the file set the package was parsed into (shared across
	// the whole Universe).
	Fset *token.FileSet
	// Files are the parsed non-test Go files, comments included.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's expression/object tables.
	Info *types.Info
	// Standard marks a Go standard-library package; those are loaded
	// only to feed the type-checker, never analyzed.
	Standard bool
}

// Universe loads packages by shelling out to `go list` for module- and
// build-aware file listing, then parses and type-checks everything
// from source with go/parser and go/types. It exists because this
// module has no external dependencies: golang.org/x/tools/go/packages
// would do this job, and the Universe is the stdlib-only stand-in.
//
// Standard-library dependencies are type-checked with function bodies
// ignored (only their exported shape matters); module packages get
// full checking. All packages share one FileSet and one type
// identity space, so a core.Item seen from internal/bench is the same
// *types.Named as one seen from internal/core.
type Universe struct {
	fset *token.FileSet
	pkgs map[string]*Package
}

// NewUniverse returns an empty universe. Loading is lazy: packages
// are listed, parsed and checked on first demand.
func NewUniverse() *Universe {
	return &Universe{fset: token.NewFileSet(), pkgs: map[string]*Package{}}
}

// listPkg is the subset of `go list -json` output the loader uses.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
}

// goList runs `go list -json` with the given arguments (flags such as
// -deps included) and returns the decoded packages in listing order —
// with -deps that is dependency order, dependencies first, exactly
// what the type-checker needs.
func goList(args []string) ([]*listPkg, error) {
	args = append([]string{"list", "-json=ImportPath,Dir,GoFiles,Standard"}, args...)
	cmd := exec.Command("go", args...)
	// Force the pure-Go build so cgo-flavoured stdlib variants (net,
	// os/user) never reach the source type-checker.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists patterns with the go tool and returns the matched
// non-standard packages, parsed and type-checked, in listing order.
// The dependency closure is loaded too (the type-checker needs it),
// but only packages the patterns themselves matched are returned for
// analysis.
func (u *Universe) Load(patterns ...string) ([]*Package, error) {
	// -deps emits the full closure in dependency order; the plain
	// listing tells us which packages the patterns matched.
	listed, err := goList(append([]string{"-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	matched, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, lp := range matched {
		want[lp.ImportPath] = true
	}
	var sel []*Package
	for _, lp := range listed {
		p, err := u.check(lp)
		if err != nil {
			return nil, err
		}
		if want[lp.ImportPath] {
			sel = append(sel, p)
		}
	}
	return sel, nil
}

// Package loads (or returns the cached) package for one import path,
// pulling in its dependency closure as needed.
func (u *Universe) Package(path string) (*Package, error) {
	if p, ok := u.pkgs[path]; ok {
		return p, nil
	}
	listed, err := goList([]string{"-deps", path})
	if err != nil {
		return nil, err
	}
	for _, lp := range listed {
		if _, err := u.check(lp); err != nil {
			return nil, err
		}
	}
	p, ok := u.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("lint: %s not resolved by go list", path)
	}
	return p, nil
}

// check parses and type-checks one listed package (its dependencies
// must already be in the universe — go list -deps order guarantees it).
func (u *Universe) check(lp *listPkg) (*Package, error) {
	if p, ok := u.pkgs[lp.ImportPath]; ok {
		return p, nil
	}
	if lp.ImportPath == "unsafe" {
		p := &Package{Path: "unsafe", Fset: u.fset, Types: types.Unsafe, Standard: true}
		u.pkgs["unsafe"] = p
		return p, nil
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		af, err := parser.ParseFile(u.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, af)
	}
	p, err := u.typeCheck(lp.ImportPath, files, lp.Standard)
	if err != nil {
		return nil, err
	}
	u.pkgs[lp.ImportPath] = p
	return p, nil
}

// TypeCheckFiles parses and type-checks an ad-hoc file list as a
// package with the given import path, resolving imports through the
// universe. The fixture harness (linttest) uses it to build packages
// out of testdata that the go tool itself never sees. The result is
// not cached: fixtures may not import each other.
func (u *Universe) TypeCheckFiles(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		af, err := parser.ParseFile(u.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, af)
	}
	return u.typeCheck(path, files, false)
}

// typeCheck runs go/types over parsed files, resolving imports from
// the universe (loading them on demand).
func (u *Universe) typeCheck(path string, files []*ast.File, standard bool) (*Package, error) {
	var typeErrs []error
	cfg := types.Config{
		Importer:         importerFunc(u.importPkg),
		IgnoreFuncBodies: standard,
		FakeImportC:      true,
		Error:            func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tp, _ := cfg.Check(path, u.fset, files, info)
	if len(typeErrs) > 0 && !standard {
		return nil, fmt.Errorf("lint: type-checking %s: %v (and %d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	return &Package{Path: path, Fset: u.fset, Files: files, Types: tp, Info: info, Standard: standard}, nil
}

// importPkg resolves one import for the type-checker, loading the
// package on demand if a fixture pulled in something outside the
// already-listed closure.
func (u *Universe) importPkg(path string) (*types.Package, error) {
	p, err := u.Package(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

// Import implements types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
