package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each fixture declares its expected findings inline with // want
// comments; allowlist paths assert by silence (a fixture full of
// violations, zero wants). The import path given to linttest.Run is
// what the analyzer's scope rules key on.

func TestWalltime(t *testing.T) {
	linttest.Run(t, lint.Walltime, "testdata/src/walltime", "repro/internal/fixture/walltime")
}

func TestWalltimeAllowsCmd(t *testing.T) {
	linttest.Run(t, lint.Walltime, "testdata/src/walltimecmd", "repro/cmd/fixture")
}

func TestSeededrand(t *testing.T) {
	linttest.Run(t, lint.Seededrand, "testdata/src/seededrand", "repro/internal/fixture/seededrand")
}

// Seededrand covers the whole module, cmd/ included — the same
// fixture under a cmd/ path must flag identically except that the
// fixture's want comments already encode the expectations, so here we
// reuse the internal fixture under a cmd path and expect the same
// findings.
func TestSeededrandCoversCmd(t *testing.T) {
	linttest.Run(t, lint.Seededrand, "testdata/src/seededrand", "repro/cmd/fixture")
}

func TestMaprange(t *testing.T) {
	linttest.Run(t, lint.Maprange, "testdata/src/maprange", "repro/internal/fixture/maprange")
}

func TestExportdoc(t *testing.T) {
	linttest.Run(t, lint.Exportdoc, "testdata/src/exportdoc", "repro/internal/fixture/exportdoc")
}

func TestExportdocSkipsNonInternal(t *testing.T) {
	linttest.Run(t, lint.Exportdoc, "testdata/src/exportdocouter", "repro/tools/fixture")
}

func TestResultstamp(t *testing.T) {
	linttest.Run(t, lint.Resultstamp, "testdata/src/resultstamp", "repro/internal/fixture/resultstamp")
}

func TestMalformedDirectives(t *testing.T) {
	linttest.Run(t, lint.Walltime, "testdata/src/malformed", "repro/internal/fixture/malformed")
}
